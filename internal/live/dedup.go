package live

import (
	"sync"
	"time"

	"repro/internal/dmwire"
)

// dedupTable gives tokened (non-idempotent) requests at-most-once
// execution across client retries: the first arrival of a token executes
// the handler and records the response; any duplicate — a retransmission
// after a lost response, a second attempt racing the first over a fresh
// connection — waits for that execution and replays the recorded bytes
// instead of applying the mutation again (DESIGN.md §D8).
//
// Entries are pruned opportunistically on insert once their completion is
// older than the retention window; retries arrive within a call's overall
// deadline, which is orders of magnitude shorter.
type dedupTable struct {
	mu        sync.Mutex
	m         map[dmwire.Token]*dedupEntry
	inserts   int
	retention time.Duration
}

type dedupEntry struct {
	done     chan struct{} // closed when status/resp are final
	status   byte
	resp     []byte // private copy, owned by the table
	doneAtNS int64  // completion time, 0 while in flight
}

// prunePeriod is how many inserts pass between retention sweeps.
const prunePeriod = 1024

// run executes fn under the token's at-most-once guarantee. A zero token
// bypasses the table. cached reports that resp is table-owned replayed
// memory, which the caller must not recycle into the buffer pool.
func (t *dedupTable) run(tok dmwire.Token, fn func() (byte, []byte)) (status byte, resp []byte, cached bool) {
	if tok.IsZero() {
		status, resp = fn()
		return status, resp, false
	}
	t.mu.Lock()
	if t.m == nil {
		t.m = make(map[dmwire.Token]*dedupEntry)
	}
	if e, dup := t.m[tok]; dup {
		t.mu.Unlock()
		<-e.done
		return e.status, e.resp, true
	}
	e := &dedupEntry{done: make(chan struct{}), status: dmwire.StatusErr}
	t.m[tok] = e
	t.inserts++
	if t.inserts%prunePeriod == 0 {
		t.pruneLocked(time.Now())
	}
	t.mu.Unlock()

	// If fn panics the entry still completes (as StatusErr) so duplicate
	// waiters are never wedged.
	defer func() {
		e.doneAtNS = time.Now().UnixNano()
		close(e.done)
	}()
	status, resp = fn()
	e.status = status
	e.resp = append([]byte(nil), resp...)
	return status, resp, false
}

// pruneLocked drops entries whose execution completed before the
// retention window; in-flight entries are never dropped.
func (t *dedupTable) pruneLocked(now time.Time) {
	if t.retention <= 0 {
		return
	}
	cutoff := now.Add(-t.retention).UnixNano()
	for tok, e := range t.m {
		select {
		case <-e.done:
			if e.doneAtNS < cutoff {
				delete(t.m, tok)
			}
		default:
		}
	}
}

// size reports the number of live entries (tests, monitoring).
func (t *dedupTable) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
