package live

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
)

// benchSetup starts a loopback server and registered client for real-time
// benchmarking.
func benchSetup(b *testing.B) (*Server, *Client) {
	b.Helper()
	srv := NewServer(ServerConfig{NumPages: 1 << 15, PageSize: 4096})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	if err := cl.Register(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		cl.Close()
		srv.Close()
	})
	return srv, cl
}

// BenchmarkLiveStageFreeRef measures the fused stage+free cycle over real
// loopback TCP at several payload sizes.
func BenchmarkLiveStageFreeRef(b *testing.B) {
	for _, size := range []int{4096, 32768, 262144} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			_, cl := benchSetup(b)
			payload := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ref, err := cl.StageRef(payload)
				if err != nil {
					b.Fatal(err)
				}
				if err := cl.FreeRef(ref); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLiveReadRef measures read-through-ref latency for a resident
// 32 KiB object.
func BenchmarkLiveReadRef(b *testing.B) {
	_, cl := benchSetup(b)
	ref, err := cl.StageRef(make([]byte, 32768))
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 32768)
	b.SetBytes(32768)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.ReadRef(ref, 0, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// benchServer starts just a loopback server (clients dialed separately).
func benchServer(b *testing.B, cfg ServerConfig) (*Server, string) {
	b.Helper()
	srv := NewServer(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	b.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// BenchmarkLiveParallelStageReadRef is the aggregate-throughput benchmark
// for the striped hot path: N clients, each on its own TCP connection,
// concurrently run a 32 KiB StageRef+ReadRef+FreeRef cycle. Aggregate
// MB/s across clients is the figure of merit; it is what the global-mutex
// design serializes and the striped design must scale.
func BenchmarkLiveParallelStageReadRef(b *testing.B) {
	const size = 32768
	for _, clients := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			_, addr := benchServer(b, ServerConfig{NumPages: 1 << 15, PageSize: 4096})
			cls := make([]*Client, clients)
			for i := range cls {
				cl, err := Dial(addr)
				if err != nil {
					b.Fatal(err)
				}
				if err := cl.Register(); err != nil {
					b.Fatal(err)
				}
				cls[i] = cl
				b.Cleanup(func() { cl.Close() })
			}
			payload := make([]byte, size)
			// Each iteration stages 32 KiB and reads it back: 64 KiB moved.
			b.SetBytes(2 * size)
			var iters atomic.Int64
			iters.Store(int64(b.N))
			b.ResetTimer()
			var wg sync.WaitGroup
			errs := make(chan error, clients)
			for _, cl := range cls {
				wg.Add(1)
				go func(cl *Client) {
					defer wg.Done()
					buf := make([]byte, size)
					for iters.Add(-1) >= 0 {
						ref, err := cl.StageRef(payload)
						if err != nil {
							errs <- err
							return
						}
						if err := cl.ReadRef(ref, 0, buf); err != nil {
							errs <- err
							return
						}
						if err := cl.FreeRef(ref); err != nil {
							errs <- err
							return
						}
					}
				}(cl)
			}
			wg.Wait()
			b.StopTimer()
			close(errs)
			for err := range errs {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkLiveParallelMixed exercises the full metadata + data-plane mix
// in parallel: per-client alloc/write/read/createref/free cycles on 8 KiB
// regions, stressing the VA allocators, translator, and refcounts from
// independent PIDs at once.
func BenchmarkLiveParallelMixed(b *testing.B) {
	const size = 8192
	for _, clients := range []int{1, 4} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			_, addr := benchServer(b, ServerConfig{NumPages: 1 << 15, PageSize: 4096})
			cls := make([]*Client, clients)
			for i := range cls {
				cl, err := Dial(addr)
				if err != nil {
					b.Fatal(err)
				}
				if err := cl.Register(); err != nil {
					b.Fatal(err)
				}
				cls[i] = cl
				b.Cleanup(func() { cl.Close() })
			}
			payload := make([]byte, size)
			b.SetBytes(2 * size)
			var iters atomic.Int64
			iters.Store(int64(b.N))
			b.ResetTimer()
			var wg sync.WaitGroup
			errs := make(chan error, clients)
			for _, cl := range cls {
				wg.Add(1)
				go func(cl *Client) {
					defer wg.Done()
					buf := make([]byte, size)
					for iters.Add(-1) >= 0 {
						a, err := cl.Alloc(size)
						if err != nil {
							errs <- err
							return
						}
						if err := cl.Write(a, payload); err != nil {
							errs <- err
							return
						}
						if err := cl.Read(a, buf); err != nil {
							errs <- err
							return
						}
						ref, err := cl.CreateRef(a, size)
						if err != nil {
							errs <- err
							return
						}
						if err := cl.Free(a); err != nil {
							errs <- err
							return
						}
						if err := cl.FreeRef(ref); err != nil {
							errs <- err
							return
						}
					}
				}(cl)
			}
			wg.Wait()
			b.StopTimer()
			close(errs)
			for err := range errs {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkLiveCoWWrite measures a map+write+unmap cycle against a shared
// region (each iteration triggers one page copy).
func BenchmarkLiveCoWWrite(b *testing.B) {
	_, cl := benchSetup(b)
	ref, err := cl.StageRef(make([]byte, 32768))
	if err != nil {
		b.Fatal(err)
	}
	small := []byte("dirty")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr, err := cl.MapRef(ref)
		if err != nil {
			b.Fatal(err)
		}
		if err := cl.Write(addr, small); err != nil {
			b.Fatal(err)
		}
		if err := cl.Free(addr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveSmallOpThroughput is the tentpole's figure of merit:
// aggregate small-op throughput with N workers multiplexing 4 KiB
// StageRef+ReadRef+FreeRef cycles (via the async ops, whose frames ride
// the submission queue) over ONE shared connection, with the coalescing
// writer on versus off (CoalesceLimit=-1 on both ends). With several
// requests in flight per conn, group commit turns the per-frame write()
// storm into few vectored writes; the frames/batch and batches/s extra
// metrics (from the server's writer counters: responses to a pipelined
// request stream pile up behind the in-flight flush and group-commit)
// show it happening.
func BenchmarkLiveSmallOpThroughput(b *testing.B) {
	const size = 4096
	for _, batch := range []string{"on", "off"} {
		for _, workers := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("batch=%s/clients=%d", batch, workers), func(b *testing.B) {
				scfg := ServerConfig{NumPages: 1 << 15, PageSize: 4096}
				ccfg := DefaultClientConfig()
				if batch == "off" {
					scfg.CoalesceLimit = -1
					ccfg.Net.CoalesceLimit = -1
				}
				srv, addr := benchServer(b, scfg)
				cl, err := DialConfig(ccfg, addr)
				if err != nil {
					b.Fatal(err)
				}
				if err := cl.Register(); err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { cl.Close() })
				payload := make([]byte, size)
				// Each iteration stages 4 KiB and reads it back.
				b.SetBytes(2 * size)
				before := srv.WriteStats()
				var iters atomic.Int64
				iters.Store(int64(b.N))
				var wg sync.WaitGroup
				errs := make(chan error, workers)
				b.ResetTimer()
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						buf := make([]byte, size)
						for iters.Add(-1) >= 0 {
							ref, err := cl.StageRefAsync(payload).Wait()
							if err != nil {
								errs <- err
								return
							}
							if err := cl.ReadRefAsync(ref, 0, buf).Wait(); err != nil {
								errs <- err
								return
							}
							if err := cl.FreeRef(ref); err != nil {
								errs <- err
								return
							}
						}
					}()
				}
				wg.Wait()
				elapsed := b.Elapsed()
				b.StopTimer()
				close(errs)
				for err := range errs {
					b.Fatal(err)
				}
				after := srv.WriteStats()
				batches := after.Batches - before.Batches
				coalesced := (after.Frames - before.Frames) -
					(after.DirectFrames - before.DirectFrames) -
					(after.InlineFrames - before.InlineFrames)
				if batches > 0 {
					b.ReportMetric(float64(coalesced)/float64(batches), "frames/batch")
					b.ReportMetric(float64(batches)/elapsed.Seconds(), "batches/s")
				}
			})
		}
	}
}

// BenchmarkLiveAsyncWritePipeline measures what the futures buy a single
// caller: a ring of `depth` in-flight WriteAsync ops, waiting on the
// oldest before issuing the next. depth=1 is the synchronous baseline;
// deeper rings overlap round trips and feed the coalescing writer
// multi-frame batches.
func BenchmarkLiveAsyncWritePipeline(b *testing.B) {
	const size = 4096
	for _, depth := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			_, cl := benchSetup(b)
			a, err := cl.Alloc(size)
			if err != nil {
				b.Fatal(err)
			}
			src := make([]byte, size)
			b.SetBytes(size)
			b.ResetTimer()
			ring := make([]*AsyncOp, 0, depth)
			for i := 0; i < b.N; i++ {
				if len(ring) == depth {
					if err := ring[0].Wait(); err != nil {
						b.Fatal(err)
					}
					ring = ring[1:]
				}
				ring = append(ring, cl.WriteAsync(a, src))
			}
			for _, op := range ring {
				if err := op.Wait(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
