// Package cxlsim implements DmRPC-CXL (paper §V-B): a G-FAM
// (Global Fabric-Attached Memory) device shared by all hosts in a CXL
// fabric, a coordinator server managing free-page ownership, and a
// per-compute-server DM layer providing allocation, page tables with
// permission flags, page-fault handling and a *distributed* copy-on-write
// built on ISA-style atomics against the fabric memory.
//
// Emulation note (paper §VI-A / §VI-G): there is no commodity CXL pool; the
// paper itself emulates one with cross-socket NUMA throttled to 265 ns
// (165 ns CXL memory + 100 ns switch). We emulate one level lower with a
// memsim.Device at the same calibrated latency; SetAccessLatency drives the
// Fig 12 latency sweep.
package cxlsim

import (
	"fmt"

	"repro/internal/dm"
	"repro/internal/memsim"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Coordinator RPC methods (reliable network protocol, §V-B1).
const (
	MReserve rpc.Method = 0x0200 + iota
	MReturn
)

// Config tunes the CXL fabric and every host DM layer attached to it.
type Config struct {
	// Memory is the G-FAM device: 265 ns effective latency by default.
	Memory memsim.Config
	// CopyBytesPerSecond is the effective bandwidth of one core doing a
	// CPU-driven load/store copy through CXL (uncached), used for CoW and
	// unconditional copies.
	CopyBytesPerSecond int64
	// PTETime is the cost of one local page-table update.
	PTETime sim.Time
	// FaultTime is the trap overhead of one page fault.
	FaultTime sim.Time
	// ReserveBatch is how many free pages a host pulls from the coordinator
	// at once.
	ReserveBatch int
	// HighWater: a host returns pages above this to the coordinator.
	HighWater int
	// UnconditionalCopy makes CreateRef copy the region eagerly (the
	// DmRPC-CXL-copy baseline of Fig 7).
	UnconditionalCopy bool
	// LDFam switches the device from G-FAM (one DPA space shared by all
	// hosts, the paper's choice for DmRPC-CXL) to LD-FAM (§II-B2): the
	// physical device is partitioned into up to MaxLogicalDevices logical
	// devices, each exposed to a single host, so refs cannot be shared
	// across hosts. Exists to demonstrate *why* the paper builds on G-FAM.
	LDFam bool
	// MaxLogicalDevices bounds LD-FAM partitioning (the spec allows 16).
	// Zero means 16.
	MaxLogicalDevices int
}

// DefaultConfig mirrors the paper's emulated CXL pool.
func DefaultConfig() Config {
	return Config{
		Memory: memsim.Config{
			NumPages:       1 << 16, // 256 MiB
			PageSize:       4096,
			AccessLatency:  265,            // ns: 165 CXL memory + 100 switch
			BytesPerSecond: 64_000_000_000, // G-FAM device bandwidth
		},
		CopyBytesPerSecond: 6_000_000_000, // one core's uncached CXL copy rate
		PTETime:            20,
		FaultTime:          800, // kernel trap + handler entry/exit
		ReserveBatch:       256,
		HighWater:          1024,
	}
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	if err := c.Memory.Validate(); err != nil {
		return err
	}
	switch {
	case c.CopyBytesPerSecond <= 0:
		return fmt.Errorf("cxlsim: CopyBytesPerSecond must be positive")
	case c.PTETime < 0 || c.FaultTime < 0:
		return fmt.Errorf("cxlsim: times must be non-negative")
	case c.ReserveBatch <= 0:
		return fmt.Errorf("cxlsim: ReserveBatch must be positive")
	case c.HighWater < c.ReserveBatch:
		return fmt.Errorf("cxlsim: HighWater must be >= ReserveBatch")
	case c.MaxLogicalDevices < 0:
		return fmt.Errorf("cxlsim: MaxLogicalDevices must be non-negative")
	}
	return nil
}

// maxLDs returns the LD-FAM partition bound.
func (c Config) maxLDs() int {
	if c.MaxLogicalDevices == 0 {
		return 16
	}
	return c.MaxLogicalDevices
}

// GFAM is the fabric-attached memory device plus the shared-ref metadata
// region. In hardware the ref metadata (the shared page list) lives inside
// G-FAM itself; here it is a registry on the device object, charged one
// device access per lookup/insert.
type GFAM struct {
	dev      *memsim.Device
	cfg      Config
	refs     map[uint64]*gfamRef
	nextKey  uint64
	deviceID uint32
	nextHost uint32
}

type gfamRef struct {
	frames []memsim.FrameID
	size   int64
	// owner is the creating host's logical-device id; in LD-FAM mode only
	// that host may map or read the ref (§II-B2).
	owner uint32
}

// NewGFAM creates the fabric memory device.
func NewGFAM(eng *sim.Engine, deviceID uint32, cfg Config) *GFAM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &GFAM{
		dev:      memsim.New(eng, fmt.Sprintf("gfam%d", deviceID), cfg.Memory),
		cfg:      cfg,
		refs:     make(map[uint64]*gfamRef),
		deviceID: deviceID,
	}
}

// Device exposes the underlying memory device (traffic accounting,
// latency sweeps).
func (g *GFAM) Device() *memsim.Device { return g.dev }

// DeviceID returns the fabric device identity carried in Refs.
func (g *GFAM) DeviceID() uint32 { return g.deviceID }

// LiveRefs returns the number of outstanding shared refs.
func (g *GFAM) LiveRefs() int { return len(g.refs) }

// metaAccess charges one fabric access for ref-metadata traffic.
func (g *GFAM) metaAccess(p *sim.Proc) {
	p.Sleep(g.cfg.Memory.AccessLatency)
}

// Coordinator manages free-page ownership across hosts (§V-B1). All pages
// start owned by the coordinator; hosts reserve batches and return excess.
type Coordinator struct {
	node *rpc.Node
	gfam *GFAM
	free *memsim.FreeList

	// parts holds per-host partitions in LD-FAM mode, carved lazily from
	// free (each logical device gets NumPages/MaxLogicalDevices frames).
	parts map[uint32]*memsim.FreeList

	reserves stats64
	returns  stats64
}

type stats64 struct{ n int64 }

func (s *stats64) inc() { s.n++ }

// NewCoordinator creates the coordinator service on host h.
func NewCoordinator(h *simnet.Host, port int, gfam *GFAM, rpcCfg rpc.Config) *Coordinator {
	c := &Coordinator{
		node:  rpc.NewNode(h, port, "cxl-coordinator", rpcCfg),
		gfam:  gfam,
		free:  memsim.NewFreeList(gfam.cfg.Memory.NumPages),
		parts: make(map[uint32]*memsim.FreeList),
	}
	c.node.Handle(MReserve, c.handleReserve)
	c.node.Handle(MReturn, c.handleReturn)
	return c
}

// Start launches the coordinator's RPC stack.
func (c *Coordinator) Start() { c.node.Start() }

// Addr returns the coordinator's RPC address.
func (c *Coordinator) Addr() simnet.Addr { return c.node.Addr() }

// FreePages returns how many pages the coordinator currently owns.
func (c *Coordinator) FreePages() int { return c.free.Len() }

// ReserveCalls returns how many reserve requests hosts have made.
func (c *Coordinator) ReserveCalls() int64 { return c.reserves.n }

// ReturnCalls returns how many return requests hosts have made.
func (c *Coordinator) ReturnCalls() int64 { return c.returns.n }

func (c *Coordinator) handleReserve(ctx *rpc.Ctx, body []byte) ([]byte, error) {
	d := rpc.NewDec(body)
	n := int(d.U32())
	host := d.U32()
	if err := d.Err(); err != nil {
		return nil, err
	}
	c.reserves.inc()
	pool, err := c.pool(host)
	if err != nil {
		return nil, err
	}
	frames := pool.PopN(n)
	if len(frames) == 0 {
		return nil, &rpc.AppError{Status: 2, Msg: dm.ErrOutOfMemory.Error()}
	}
	e := rpc.NewEnc(4 + 4*len(frames))
	e.U32(uint32(len(frames)))
	for _, f := range frames {
		e.U32(uint32(f))
	}
	return e.Bytes(), nil
}

func (c *Coordinator) handleReturn(ctx *rpc.Ctx, body []byte) ([]byte, error) {
	d := rpc.NewDec(body)
	n := int(d.U32())
	host := d.U32()
	pool, err := c.pool(host)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		pool.Push(memsim.FrameID(d.U32()))
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	c.returns.inc()
	return nil, nil
}

// pool resolves the free list a host draws from: the shared G-FAM pool, or
// the host's logical-device partition in LD-FAM mode (carved lazily).
func (c *Coordinator) pool(host uint32) (*memsim.FreeList, error) {
	if !c.gfam.cfg.LDFam {
		return c.free, nil
	}
	if p, ok := c.parts[host]; ok {
		return p, nil
	}
	if len(c.parts) >= c.gfam.cfg.maxLDs() {
		return nil, &rpc.AppError{Status: 1, Msg: "cxlsim: logical devices exhausted"}
	}
	size := c.gfam.cfg.Memory.NumPages / c.gfam.cfg.maxLDs()
	p := memsim.NewEmptyFreeList()
	p.PushAll(c.free.PopN(size))
	c.parts[host] = p
	return p, nil
}

// HostDM is one compute server's DM layer ("mainly runs in the kernel
// space", §V-B1): it owns a local free-page FIFO, talks to the coordinator
// for ownership, and backs the per-process Spaces on this host.
type HostDM struct {
	host  *simnet.Host
	node  *rpc.Node
	gfam  *GFAM
	coord simnet.Addr
	cfg   Config
	local *memsim.FreeList
	// id is this host's logical-device identity within the fabric.
	id uint32

	nextSpace uint32
	spaces    map[uint32]*Space
}

// NewHostDM attaches a DM layer to host h, using port for coordinator
// traffic.
func NewHostDM(h *simnet.Host, port int, gfam *GFAM, coord simnet.Addr, rpcCfg rpc.Config) *HostDM {
	hd := &HostDM{
		host:   h,
		node:   rpc.NewNode(h, port, h.Name()+"/cxl-dm", rpcCfg),
		gfam:   gfam,
		coord:  coord,
		cfg:    gfam.cfg,
		local:  memsim.NewEmptyFreeList(),
		id:     gfam.nextHost,
		spaces: make(map[uint32]*Space),
	}
	gfam.nextHost++
	hd.node.Start()
	return hd
}

// Host returns the compute server this DM layer runs on.
func (hd *HostDM) Host() *simnet.Host { return hd.host }

// LocalFreePages returns the size of the host's reserved free-page FIFO.
func (hd *HostDM) LocalFreePages() int { return hd.local.Len() }

// popFrame takes one free page, reserving a batch from the coordinator if
// the local FIFO is empty.
func (hd *HostDM) popFrame(p *sim.Proc) (memsim.FrameID, error) {
	if f, ok := hd.local.Pop(); ok {
		return f, nil
	}
	resp, err := hd.node.Call(p, hd.coord, MReserve,
		rpc.NewEnc(8).U32(uint32(hd.cfg.ReserveBatch)).U32(hd.id).Bytes())
	if err != nil {
		ae, ok := err.(*rpc.AppError)
		if ok && ae.Status == 2 {
			return memsim.NoFrame, dm.ErrOutOfMemory
		}
		return memsim.NoFrame, err
	}
	d := rpc.NewDec(resp)
	n := int(d.U32())
	for i := 0; i < n; i++ {
		hd.local.Push(memsim.FrameID(d.U32()))
	}
	if err := d.Err(); err != nil {
		return memsim.NoFrame, err
	}
	f, ok := hd.local.Pop()
	if !ok {
		return memsim.NoFrame, dm.ErrOutOfMemory
	}
	return f, nil
}

// pushFrame returns one page to the local FIFO, giving a batch back to the
// coordinator when the FIFO exceeds the high-water mark.
func (hd *HostDM) pushFrame(p *sim.Proc, f memsim.FrameID) error {
	hd.local.Push(f)
	if hd.local.Len() <= hd.cfg.HighWater {
		return nil
	}
	batch := hd.local.PopN(hd.cfg.ReserveBatch)
	e := rpc.NewEnc(8 + 4*len(batch))
	e.U32(uint32(len(batch)))
	e.U32(hd.id)
	for _, fr := range batch {
		e.U32(uint32(fr))
	}
	_, err := hd.node.Call(p, hd.coord, MReturn, e.Bytes())
	return err
}

// NewSpace creates a process address space on this host.
func (hd *HostDM) NewSpace() *Space {
	id := hd.nextSpace
	hd.nextSpace++
	s := &Space{
		hd:  hd,
		id:  id,
		va:  dm.NewVAAllocator(hd.cfg.Memory.PageSize, 1<<16, 1<<40),
		pte: make(map[uint64]pte),
	}
	hd.spaces[id] = s
	return s
}

// pte is a page-table entry: the backing frame plus the permission flag
// that drives copy-on-write (§V-B3).
type pte struct {
	frame    memsim.FrameID
	writable bool
}

// Space is one process's CXL virtual address space; it implements
// dm.Space. Read/Write model load/store instructions: they go straight to
// the fabric device with no network hop.
type Space struct {
	hd  *HostDM
	id  uint32
	va  *dm.VAAllocator
	pte map[uint64]pte

	faults    int64
	cowCopies int64
}

var (
	_ dm.Space     = (*Space)(nil)
	_ dm.RefStager = (*Space)(nil)
	_ dm.RefReader = (*Space)(nil)
)

// Faults returns how many page faults this space took.
func (s *Space) Faults() int64 { return s.faults }

// CoWCopies returns how many copy-on-write page copies this space caused.
func (s *Space) CoWCopies() int64 { return s.cowCopies }

func (s *Space) pageSize() int64 { return int64(s.hd.cfg.Memory.PageSize) }

// Alloc reserves a CXL virtual address range. No physical pages are mapped
// ("At this time, no CXL physical pages are mapped to this virtual
// address", §V-B2).
func (s *Space) Alloc(p *sim.Proc, size int64) (dm.RemoteAddr, error) {
	p.Sleep(s.hd.cfg.PTETime) // vma-tree update
	return s.va.Alloc(size)
}

// Free releases the region at addr, dropping page references; pages whose
// count reaches zero go to the host's free FIFO ("The process that frees
// the page lastly is in charge of the reclamation", §V-B3).
func (s *Space) Free(p *sim.Proc, addr dm.RemoteAddr) error {
	size, err := s.va.Free(addr)
	if err != nil {
		return err
	}
	pages := dm.PageCount(size, int(s.pageSize()))
	if pages == 0 {
		pages = 1
	}
	base := uint64(addr) / uint64(s.pageSize())
	var held []memsim.FrameID
	for i := 0; i < pages; i++ {
		vp := base + uint64(i)
		if e, ok := s.pte[vp]; ok {
			p.Sleep(s.hd.cfg.PTETime)
			delete(s.pte, vp)
			held = append(held, e.frame)
		}
	}
	if len(held) == 0 {
		return nil
	}
	counts := s.hd.gfam.dev.AddRefBatch(p, held, -1)
	for i, f := range held {
		if counts[i] == 0 {
			if err := s.hd.pushFrame(p, f); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkRange verifies [addr, addr+size) is inside one region's
// page-rounded extent.
func (s *Space) checkRange(addr dm.RemoteAddr, size int64) error {
	base, regSize, err := s.va.Lookup(addr)
	if err != nil {
		return err
	}
	extent := int64(dm.PageCount(regSize, int(s.pageSize()))) * s.pageSize()
	if extent == 0 {
		extent = s.pageSize()
	}
	if int64(addr)-int64(base)+size > extent {
		return dm.ErrOutOfRange
	}
	return nil
}

// materialize maps a fresh zeroed frame at vp if none is present (the
// first-touch store fault, §V-B2 case 1) and returns the entry.
func (s *Space) materialize(p *sim.Proc, vp uint64) (pte, error) {
	if e, ok := s.pte[vp]; ok {
		return e, nil
	}
	p.Sleep(s.hd.cfg.FaultTime)
	s.faults++
	f, err := s.hd.popFrame(p)
	if err != nil {
		return pte{}, err
	}
	s.hd.gfam.dev.ZeroFrame(p, f)
	s.hd.gfam.dev.SetRef(f, 1)
	e := pte{frame: f, writable: true}
	p.Sleep(s.hd.cfg.PTETime)
	s.pte[vp] = e
	return e, nil
}

// Write models store instructions covering [addr, addr+len(src)),
// running the three-case store protocol of §V-B3.
func (s *Space) Write(p *sim.Proc, addr dm.RemoteAddr, src []byte) error {
	if err := s.checkRange(addr, int64(len(src))); err != nil {
		return err
	}
	size := int64(len(src))
	off := int64(0)
	for off < size {
		vp := (uint64(addr) + uint64(off)) / uint64(s.pageSize())
		pageOff := (int64(addr) + off) % s.pageSize()
		n := s.pageSize() - pageOff
		if n > size-off {
			n = size - off
		}
		e, err := s.writableEntry(p, vp)
		if err != nil {
			return err
		}
		s.hd.gfam.dev.Write(p, e.frame, int(pageOff), src[off:off+n])
		off += n
	}
	return nil
}

// writableEntry implements the store fault cases: unmapped → map fresh
// page; read-only shared → CoW; read-only sole owner → flip writable.
func (s *Space) writableEntry(p *sim.Proc, vp uint64) (pte, error) {
	e, ok := s.pte[vp]
	if !ok {
		return s.materialize(p, vp)
	}
	if e.writable {
		return e, nil
	}
	// Read-only: fault and consult the fabric refcount.
	p.Sleep(s.hd.cfg.FaultTime)
	s.faults++
	dev := s.hd.gfam.dev
	if dev.LoadRef(p, e.frame) > 1 {
		nf, err := s.hd.popFrame(p)
		if err != nil {
			return pte{}, err
		}
		s.cowCopies++
		dev.CopyFramesCPU(p, []memsim.FrameID{nf}, []memsim.FrameID{e.frame}, s.hd.cfg.CopyBytesPerSecond)
		dev.SetRef(nf, 1)
		dev.AddRef(p, e.frame, -1)
		e = pte{frame: nf, writable: true}
	} else {
		e.writable = true
	}
	p.Sleep(s.hd.cfg.PTETime)
	s.pte[vp] = e
	return e, nil
}

// Read models load instructions; loads of unmapped pages fault once and
// read as zeros without consuming a physical page.
func (s *Space) Read(p *sim.Proc, addr dm.RemoteAddr, dst []byte) error {
	if err := s.checkRange(addr, int64(len(dst))); err != nil {
		return err
	}
	size := int64(len(dst))
	off := int64(0)
	for off < size {
		vp := (uint64(addr) + uint64(off)) / uint64(s.pageSize())
		pageOff := (int64(addr) + off) % s.pageSize()
		n := s.pageSize() - pageOff
		if n > size-off {
			n = size - off
		}
		if e, ok := s.pte[vp]; ok {
			s.hd.gfam.dev.Read(p, e.frame, int(pageOff), dst[off:off+n])
		} else {
			p.Sleep(s.hd.cfg.FaultTime)
			for i := off; i < off+n; i++ {
				dst[i] = 0
			}
		}
		off += n
	}
	return nil
}

// CreateRef shares [addr, addr+size): refcounts rise atomically in fabric
// memory and the creator's PTEs flip to read-only (§V-B3). In
// UnconditionalCopy mode the region is physically copied instead (the
// -copy baseline).
func (s *Space) CreateRef(p *sim.Proc, addr dm.RemoteAddr, size int64) (dm.Ref, error) {
	if size <= 0 {
		return dm.Ref{}, dm.ErrOutOfRange
	}
	if err := s.checkRange(addr, size); err != nil {
		return dm.Ref{}, err
	}
	basePage := uint64(addr) / uint64(s.pageSize())
	pages := dm.PageCount(int64(uint64(addr)%uint64(s.pageSize()))+size, int(s.pageSize()))
	frames := make([]memsim.FrameID, 0, pages)
	for i := 0; i < pages; i++ {
		e, err := s.materialize(p, basePage+uint64(i))
		if err != nil {
			return dm.Ref{}, err
		}
		frames = append(frames, e.frame)
	}
	dev := s.hd.gfam.dev
	var refFrames []memsim.FrameID
	if s.hd.cfg.UnconditionalCopy {
		refFrames = make([]memsim.FrameID, pages)
		for i := range refFrames {
			f, err := s.hd.popFrame(p)
			if err != nil {
				return dm.Ref{}, err
			}
			refFrames[i] = f
		}
		dev.CopyFramesCPU(p, refFrames, frames, s.hd.cfg.CopyBytesPerSecond)
		for _, f := range refFrames {
			dev.SetRef(f, 1)
		}
	} else {
		dev.AddRefBatch(p, frames, 1)
		// Mark the creator's own view read-only so its next write CoWs.
		for i := 0; i < pages; i++ {
			vp := basePage + uint64(i)
			e := s.pte[vp]
			e.writable = false
			p.Sleep(s.hd.cfg.PTETime)
			s.pte[vp] = e
		}
		refFrames = frames
	}
	g := s.hd.gfam
	g.metaAccess(p) // publish the page list into fabric metadata
	key := g.nextKey
	g.nextKey++
	g.refs[key] = &gfamRef{frames: refFrames, size: size, owner: s.hd.id}
	return dm.Ref{Server: g.deviceID, Key: key, Size: size}, nil
}

// MapRef maps the ref's pages read-only into this space (§V-B3).
func (s *Space) MapRef(p *sim.Proc, ref dm.Ref) (dm.RemoteAddr, error) {
	g := s.hd.gfam
	if ref.Server != g.deviceID {
		return 0, dm.ErrBadAddress
	}
	g.metaAccess(p)
	ent, ok := g.refs[ref.Key]
	if !ok {
		return 0, dm.ErrBadRef
	}
	if g.cfg.LDFam && ent.owner != s.hd.id {
		// LD-FAM exposes each logical device to exactly one host: foreign
		// refs address a DPA space this host cannot reach.
		return 0, dm.ErrBadAddress
	}
	addr, err := s.va.Alloc(ent.size)
	if err != nil {
		return 0, err
	}
	basePage := uint64(addr) / uint64(s.pageSize())
	g.dev.AddRefBatch(p, ent.frames, 1)
	for i, f := range ent.frames {
		p.Sleep(s.hd.cfg.PTETime)
		s.pte[basePage+uint64(i)] = pte{frame: f, writable: false}
	}
	return addr, nil
}

// StageRef writes data into fresh CXL pages and publishes a ref holding
// them (see dm.RefStager). All work is local stores plus one metadata
// publish — no VA region or extra fabric round trips.
func (s *Space) StageRef(p *sim.Proc, data []byte) (dm.Ref, error) {
	if len(data) == 0 {
		return dm.Ref{}, dm.ErrOutOfRange
	}
	pages := dm.PageCount(int64(len(data)), int(s.pageSize()))
	dev := s.hd.gfam.dev
	frames := make([]memsim.FrameID, 0, pages)
	for i := 0; i < pages; i++ {
		f, err := s.hd.popFrame(p)
		if err != nil {
			for _, g := range frames {
				s.hd.local.Push(g)
			}
			return dm.Ref{}, err
		}
		lo := i * int(s.pageSize())
		hi := lo + int(s.pageSize())
		if hi > len(data) {
			hi = len(data)
		}
		dev.Write(p, f, 0, data[lo:hi])
		dev.SetRef(f, 1)
		frames = append(frames, f)
	}
	g := s.hd.gfam
	g.metaAccess(p)
	key := g.nextKey
	g.nextKey++
	g.refs[key] = &gfamRef{frames: frames, size: int64(len(data)), owner: s.hd.id}
	return dm.Ref{Server: g.deviceID, Key: key, Size: int64(len(data))}, nil
}

// ReadRef loads [off, off+len(dst)) of the ref's snapshot through a
// transient read-only view: page-table setup cost per page plus the fabric
// loads, no refcount traffic (see dm.RefReader).
func (s *Space) ReadRef(p *sim.Proc, ref dm.Ref, off int64, dst []byte) error {
	g := s.hd.gfam
	if ref.Server != g.deviceID {
		return dm.ErrBadAddress
	}
	g.metaAccess(p)
	ent, ok := g.refs[ref.Key]
	if !ok {
		return dm.ErrBadRef
	}
	if g.cfg.LDFam && ent.owner != s.hd.id {
		return dm.ErrBadAddress
	}
	size := int64(len(dst))
	if off < 0 || off+size > ent.size {
		return dm.ErrOutOfRange
	}
	pos := int64(0)
	for pos < size {
		page := int((off + pos) / s.pageSize())
		pageOff := (off + pos) % s.pageSize()
		n := s.pageSize() - pageOff
		if n > size-pos {
			n = size - pos
		}
		p.Sleep(s.hd.cfg.PTETime)
		g.dev.Read(p, ent.frames[page], int(pageOff), dst[pos:pos+n])
		pos += n
	}
	return nil
}

// CheckInvariants validates fabric-wide bookkeeping across the
// coordinator, every host's local FIFO, every space's page table and the
// ref registry:
//
//  1. each frame's fabric refcount equals its PTE holds plus ref holds;
//  2. no frame is simultaneously free (coordinator or host FIFO) and held;
//  3. free + held frames account for every frame exactly once.
//
// For tests; takes no simulated time.
func CheckInvariants(g *GFAM, coord *Coordinator, hosts []*HostDM) error {
	holds := make(map[memsim.FrameID]int32)
	for _, hd := range hosts {
		for _, sp := range hd.spaces {
			for _, e := range sp.pte {
				holds[e.frame]++
			}
		}
	}
	for _, ref := range g.refs {
		for _, f := range ref.frames {
			holds[f]++
		}
	}
	for f, want := range holds {
		if got := g.dev.RefCount(f); got != want {
			return fmt.Errorf("frame %d refcount %d, want %d holds", f, got, want)
		}
	}
	free := make(map[memsim.FrameID]string)
	collect := func(name string, fl *memsim.FreeList) error {
		n := fl.Len()
		for _, f := range fl.PopN(n) {
			if prev, dup := free[f]; dup {
				return fmt.Errorf("frame %d free in both %s and %s", f, prev, name)
			}
			free[f] = name
			fl.Push(f)
		}
		return nil
	}
	if err := collect("coordinator", coord.free); err != nil {
		return err
	}
	for host, p := range coord.parts {
		if err := collect(fmt.Sprintf("ld%d", host), p); err != nil {
			return err
		}
	}
	for i, hd := range hosts {
		if err := collect(fmt.Sprintf("host%d", i), hd.local); err != nil {
			return err
		}
	}
	for f := range holds {
		if where, bad := free[f]; bad {
			return fmt.Errorf("frame %d is held but also free in %s", f, where)
		}
	}
	if len(free)+len(holds) != g.cfg.Memory.NumPages {
		return fmt.Errorf("frames leak: %d free + %d held != %d total",
			len(free), len(holds), g.cfg.Memory.NumPages)
	}
	return nil
}

// FreeRef drops the reference's own hold (repo extension, mirroring
// dmnet.Client.FreeRef; see DESIGN.md).
func (s *Space) FreeRef(p *sim.Proc, ref dm.Ref) error {
	g := s.hd.gfam
	if ref.Server != g.deviceID {
		return dm.ErrBadAddress
	}
	g.metaAccess(p)
	ent, ok := g.refs[ref.Key]
	if !ok {
		return dm.ErrBadRef
	}
	delete(g.refs, ref.Key)
	counts := g.dev.AddRefBatch(p, ent.frames, -1)
	for i, f := range ent.frames {
		if counts[i] == 0 {
			if err := s.hd.pushFrame(p, f); err != nil {
				return err
			}
		}
	}
	return nil
}
