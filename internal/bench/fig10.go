package bench

import (
	"io"

	"repro/internal/msvc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig10aRow is one (mode, image size) throughput measurement of the 7-tier
// cloud image processing application (§VI-E, Fig 10a).
type Fig10aRow struct {
	Mode       msvc.Mode
	ImageSize  int
	Throughput float64
	// Gbps is application goodput (images in+out per second times size).
	Gbps float64
}

// Fig10aResult holds the Fig 10a sweep.
type Fig10aResult struct {
	Rows []Fig10aRow
}

// Fig10a reproduces Fig 10a: end-to-end throughput versus image size for
// eRPC, DmRPC-net and DmRPC-CXL.
func Fig10a(scale Scale) Fig10aResult {
	sizes := []int{1024, 4096, 32768}
	if scale == Full {
		// The paper's headline 4.2x/8.3x factors appear at the top of the
		// size sweep, where eRPC's goodput has long plateaued and DmRPC's
		// is still climbing.
		sizes = []int{1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072, 262144}
	}
	warm, meas := scale.windows()
	var res Fig10aResult
	for _, mode := range []msvc.Mode{msvc.ModeERPC, msvc.ModeDmNet, msvc.ModeDmCXL} {
		for _, size := range sizes {
			pl := msvc.NewPlatform(msvc.DefaultConfig(mode))
			app := msvc.NewImageApp(pl, 2)
			pl.Start()
			img := make([]byte, size)
			r := workload.RunClosed(pl.Eng, workload.ClosedConfig{
				Clients: 32, Warmup: warm, Measure: meas,
			}, func(p *sim.Proc) error {
				_, err := app.Do(p, img)
				return err
			})
			res.Rows = append(res.Rows, Fig10aRow{
				Mode:       mode,
				ImageSize:  size,
				Throughput: r.Throughput(),
				Gbps:       r.Throughput() * float64(size) * 8 * 2 / 1e9,
			})
			pl.Shutdown()
		}
	}
	return res
}

// Print writes the Fig 10a table.
func (r Fig10aResult) Print(w io.Writer) {
	header(w, "fig10a", "7-tier cloud image processing: throughput vs image size")
	t := stats.NewTable("system", "image size", "throughput", "goodput")
	for _, row := range r.Rows {
		t.AddRow(row.Mode, stats.Bytes(int64(row.ImageSize)), stats.Rate(row.Throughput),
			stats.Gbps(int64(row.Gbps*1e9/8), int64(sim.Second)))
	}
	io.WriteString(w, t.String())
}

// Get returns the row for (mode, size).
func (r Fig10aResult) Get(mode msvc.Mode, size int) (Fig10aRow, bool) {
	for _, row := range r.Rows {
		if row.Mode == mode && row.ImageSize == size {
			return row, true
		}
	}
	return Fig10aRow{}, false
}

// Fig10bRow is one mode's latency distribution for 4 KiB images (Fig 10b).
type Fig10bRow struct {
	Mode    msvc.Mode
	Latency stats.Summary
}

// Fig10bResult holds the Fig 10b measurements.
type Fig10bResult struct {
	Rows []Fig10bRow
}

// fig10bImageSize matches the paper ("The image size is fixed to 4 KB").
const fig10bImageSize = 4096

// Fig10b reproduces Fig 10b: average and tail latency of the pipeline at
// 4 KiB images under the same load the throughput experiment applies —
// the regime where pass-by-value's extra data movement turns into
// queueing delay, which is what the paper's percentile plot captures.
func Fig10b(scale Scale) Fig10bResult {
	warm, meas := scale.windows()
	var res Fig10bResult
	for _, mode := range []msvc.Mode{msvc.ModeERPC, msvc.ModeDmNet, msvc.ModeDmCXL} {
		pl := msvc.NewPlatform(msvc.DefaultConfig(mode))
		app := msvc.NewImageApp(pl, 2)
		pl.Start()
		img := make([]byte, fig10bImageSize)
		r := workload.RunClosed(pl.Eng, workload.ClosedConfig{
			Clients: 32, Warmup: warm, Measure: meas,
		}, func(p *sim.Proc) error {
			_, err := app.Do(p, img)
			return err
		})
		res.Rows = append(res.Rows, Fig10bRow{Mode: mode, Latency: r.Latency.Summarize()})
		pl.Shutdown()
	}
	return res
}

// Print writes the Fig 10b table.
func (r Fig10bResult) Print(w io.Writer) {
	header(w, "fig10b", "7-tier cloud image processing: latency at 4KiB images")
	t := stats.NewTable("system", "avg", "p99", "p99.5", "p99.9")
	for _, row := range r.Rows {
		t.AddRow(row.Mode, stats.Dur(int64(row.Latency.Mean)), stats.Dur(row.Latency.P99),
			stats.Dur(row.Latency.P995), stats.Dur(row.Latency.P999))
	}
	io.WriteString(w, t.String())
}

// Get returns the row for mode.
func (r Fig10bResult) Get(mode msvc.Mode) (Fig10bRow, bool) {
	for _, row := range r.Rows {
		if row.Mode == mode {
			return row, true
		}
	}
	return Fig10bRow{}, false
}
