// Package core is the DmRPC library itself (paper §IV): it combines the
// datacenter RPC layer with a disaggregated-memory backend to give
// microservices size-aware argument transfer —
//
//   - small objects pass by value inside the RPC message, exactly like a
//     traditional RPC ("to avoid memory management overhead");
//   - large objects pass by reference: the producer stages the bytes in
//     disaggregated memory once, and only a small Ref travels down the RPC
//     chain; consumers map the Ref when (and if) they actually touch the
//     data, with page-granular copy-on-write keeping every party's view
//     private ("users are not aware of the two different modes", §IV-B).
//
// The same Client API runs over three configurations used throughout the
// reproduction's experiments:
//
//	eRPC baseline:  NewInlineClient (everything passes by value)
//	DmRPC-net:      NewClient with a dmnet.Client space
//	DmRPC-CXL:      NewClient with a cxlsim.Space
package core

import (
	"errors"
	"fmt"

	"repro/internal/dm"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// DefaultInlineThreshold is the size-aware transfer cutoff: argument
// payloads at or below this many bytes pass by value.
const DefaultInlineThreshold = 1024

// Config tunes a DmRPC client.
type Config struct {
	// InlineThreshold is the size-aware cutoff in bytes. Zero means
	// DefaultInlineThreshold; negative means "always pass by reference".
	InlineThreshold int
	// ForceInline disables pass-by-reference entirely, producing the eRPC
	// pass-by-value baseline from the same application code.
	ForceInline bool
}

func (c Config) threshold() int {
	if c.ForceInline {
		return int(^uint(0) >> 1) // MaxInt: everything inlines
	}
	if c.InlineThreshold == 0 {
		return DefaultInlineThreshold
	}
	if c.InlineThreshold < 0 {
		return -1
	}
	return c.InlineThreshold
}

// Client is one microservice's DmRPC handle: its RPC node plus its view of
// the disaggregated memory pool.
type Client struct {
	node  *rpc.Node
	space dm.Space
	cfg   Config
}

// NewClient builds a DmRPC client over node and a DM backend.
func NewClient(node *rpc.Node, space dm.Space, cfg Config) *Client {
	if space == nil && !cfg.ForceInline {
		panic("core: a DM space is required unless ForceInline is set")
	}
	return &Client{node: node, space: space, cfg: cfg}
}

// NewInlineClient builds the pass-by-value baseline client (no DM).
func NewInlineClient(node *rpc.Node) *Client {
	return &Client{node: node, cfg: Config{ForceInline: true}}
}

// Node returns the client's RPC node.
func (c *Client) Node() *rpc.Node { return c.node }

// Space returns the client's DM backend (nil for the inline baseline).
func (c *Client) Space() dm.Space { return c.space }

// Host returns the host this client runs on.
func (c *Client) Host() *simnet.Host { return c.node.Host() }

// Call proxies to the RPC node.
func (c *Client) Call(p *sim.Proc, to simnet.Addr, m rpc.Method, body []byte) ([]byte, error) {
	return c.node.Call(p, to, m, body)
}

// Arg is a size-aware RPC argument: either inline bytes or a Ref into
// disaggregated memory. Args are small values meant to be embedded in RPC
// message bodies via Encode/DecodeArg.
type Arg struct {
	isRef  bool
	inline []byte
	ref    dm.Ref
}

// IsRef reports whether the argument passes by reference.
func (a Arg) IsRef() bool { return a.isRef }

// Ref returns the underlying Ref; valid only when IsRef.
func (a Arg) Ref() dm.Ref { return a.ref }

// Inline returns the inline payload (nil for ref arguments). The slice is
// aliased, not copied; treat it as read-only.
func (a Arg) Inline() []byte {
	if a.isRef {
		return nil
	}
	return a.inline
}

// Size returns the argument's logical payload size.
func (a Arg) Size() int64 {
	if a.isRef {
		return a.ref.Size
	}
	return int64(len(a.inline))
}

// WireSize returns how many bytes the argument occupies inside an RPC
// message — the quantity the pass-by-reference design shrinks.
func (a Arg) WireSize() int {
	if a.isRef {
		return 1 + dm.EncodedRefSize
	}
	return 1 + 4 + len(a.inline)
}

// Encode appends the argument to an RPC message.
func (a Arg) Encode(e *rpc.Enc) {
	if a.isRef {
		e.U8(1)
		a.ref.Encode(e)
		return
	}
	e.U8(0)
	e.Blob(a.inline)
}

// DecodeArg reads an Arg from an RPC message.
func DecodeArg(d *rpc.Dec) Arg {
	if d.U8() == 1 {
		return Arg{isRef: true, ref: dm.DecodeRef(d)}
	}
	return Arg{inline: d.Blob()}
}

// InlineArg builds a pass-by-value argument from data without consulting
// any threshold. The bytes are aliased, not copied.
func InlineArg(data []byte) Arg { return Arg{inline: data} }

// RefArg wraps an existing Ref as an argument (for data already staged in
// DM).
func RefArg(ref dm.Ref) Arg { return Arg{isRef: true, ref: ref} }

// MakeArg stages data as an RPC argument using size-aware transfer: at or
// below the threshold the bytes inline; above it they are staged in
// disaggregated memory once and a Ref is created. Backends implementing
// dm.RefStager stage in one fused operation (one round trip on the net
// backend); otherwise this is Listing 1's ralloc+rwrite+create_ref+rfree
// sequence. Either way the Ref's own hold keeps the pages alive.
func (c *Client) MakeArg(p *sim.Proc, data []byte) (Arg, error) {
	if len(data) <= c.cfg.threshold() {
		return Arg{inline: data}, nil
	}
	if st, ok := c.space.(dm.RefStager); ok {
		ref, err := st.StageRef(p, data)
		if err != nil {
			return Arg{}, err
		}
		return Arg{isRef: true, ref: ref}, nil
	}
	addr, err := c.space.Alloc(p, int64(len(data)))
	if err != nil {
		return Arg{}, err
	}
	if err := c.space.Write(p, addr, data); err != nil {
		return Arg{}, err
	}
	ref, err := c.space.CreateRef(p, addr, int64(len(data)))
	if err != nil {
		return Arg{}, err
	}
	if err := c.space.Free(p, addr); err != nil {
		return Arg{}, err
	}
	return Arg{isRef: true, ref: ref}, nil
}

// errInlineNoSpace is returned when ref operations hit an inline-only
// client.
var errInlineNoSpace = errors.New("core: pass-by-reference argument reached a client with no DM space")

// Data is a consumer's opened view of an Arg. For inline args it is the
// local bytes. For ref args, reads go directly through the ref (no
// mapping) when the backend supports dm.RefReader; the first Write
// establishes a private mapping (map_ref) so copy-on-write isolation
// applies, after which all accesses go through the mapping.
type Data struct {
	c      *Client
	isRef  bool
	inline []byte
	ref    dm.Ref
	mapped bool
	addr   dm.RemoteAddr
	size   int64
}

// Open materializes an argument for access. Opening a ref argument is
// free: no data moves (and no mapping is created) until Read or Write.
// Callers that never touch the payload (pure forwarders) simply never call
// Open — that is the entire point of pass by reference.
func (c *Client) Open(p *sim.Proc, a Arg) (*Data, error) {
	if !a.isRef {
		return &Data{c: c, inline: a.inline, size: int64(len(a.inline))}, nil
	}
	if c.space == nil {
		return nil, errInlineNoSpace
	}
	d := &Data{c: c, isRef: true, ref: a.ref, size: a.ref.Size}
	if _, fast := c.space.(dm.RefReader); !fast {
		if err := d.ensureMapped(p); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// ensureMapped lazily establishes this consumer's private mapping.
func (d *Data) ensureMapped(p *sim.Proc) error {
	if d.mapped {
		return nil
	}
	addr, err := d.c.space.MapRef(p, d.ref)
	if err != nil {
		return err
	}
	d.addr = addr
	d.mapped = true
	return nil
}

// Size returns the payload length.
func (d *Data) Size() int64 { return d.size }

// Read copies len(dst) bytes starting at off into dst. Inline data charges
// a local memcpy; unmapped ref data reads straight through the ref;
// mapped data reads through this consumer's (possibly CoW-diverged) view.
func (d *Data) Read(p *sim.Proc, off int64, dst []byte) error {
	if off < 0 || off+int64(len(dst)) > d.size {
		return dm.ErrOutOfRange
	}
	if !d.isRef {
		d.c.Host().Memcpy(p, len(dst))
		copy(dst, d.inline[off:])
		return nil
	}
	if !d.mapped {
		if rr, ok := d.c.space.(dm.RefReader); ok {
			return rr.ReadRef(p, d.ref, off, dst)
		}
		if err := d.ensureMapped(p); err != nil {
			return err
		}
	}
	return d.c.space.Read(p, d.addr.Add(off), dst)
}

// Write stores src at off. Inline data mutates the local copy (pass by
// value already isolated it); ref data maps first (if needed) and writes
// through the DM path, triggering copy-on-write on shared pages.
func (d *Data) Write(p *sim.Proc, off int64, src []byte) error {
	if off < 0 || off+int64(len(src)) > d.size {
		return dm.ErrOutOfRange
	}
	if !d.isRef {
		d.c.Host().Memcpy(p, len(src))
		copy(d.inline[off:], src)
		return nil
	}
	if err := d.ensureMapped(p); err != nil {
		return err
	}
	return d.c.space.Write(p, d.addr.Add(off), src)
}

// Bytes reads the whole payload into a fresh buffer.
func (d *Data) Bytes(p *sim.Proc) ([]byte, error) {
	buf := make([]byte, d.size)
	if err := d.Read(p, 0, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Close releases the consumer's mapping (rfree). The Ref itself stays
// valid for other consumers; release it with Client.Release.
func (d *Data) Close(p *sim.Proc) error {
	if !d.mapped {
		return nil
	}
	d.mapped = false
	return d.c.space.Free(p, d.addr)
}

// Release drops a ref argument's own hold on its pages; call it when no
// further consumer will map the argument. Inline arguments need no
// release.
func (c *Client) Release(p *sim.Proc, a Arg) error {
	if !a.isRef {
		return nil
	}
	if c.space == nil {
		return errInlineNoSpace
	}
	return c.space.FreeRef(p, a.ref)
}

// ReleaseAsync schedules Release off the critical path: reclamation is
// deferred to a background process, the way production RPC stacks defer
// buffer frees. Errors surface as panics (a failed free is a bug, not a
// runtime condition).
func (c *Client) ReleaseAsync(a Arg) {
	if !a.isRef {
		return
	}
	if c.space == nil {
		panic(errInlineNoSpace)
	}
	eng := c.node.Host().Network().Engine()
	eng.Spawn("release-ref", func(p *sim.Proc) {
		if err := c.space.FreeRef(p, a.ref); err != nil {
			panic(err)
		}
	})
}

// String renders the argument for logs.
func (a Arg) String() string {
	if a.isRef {
		return fmt.Sprintf("arg(ref %v)", a.ref)
	}
	return fmt.Sprintf("arg(inline %dB)", len(a.inline))
}
