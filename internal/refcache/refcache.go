// Package refcache is a size-bounded, frequency-admission payload
// cache for located DM refs (DESIGN.md §D15). It is the client-side
// half of the hot-ref read path: immutable staged-once payloads are
// retained (zero-copy lease Bufs) keyed by (server, ref key), admitted
// TinyLFU-style — an LRU victim is only evicted when a count-min
// sketch says the candidate is accessed at least as often — and served
// back without crossing the wire. Concurrent fetches of the same cold
// key are coalesced through a singleflight table so N readers cost one
// RPC.
//
// Coherence is the caller's contract, not the cache's: entries carry a
// TTL (the session lease, so nothing outlives a reap) and the owner
// invalidates on free, local write, epoch advance, and shard ejection.
// The cache itself only promises that every value it hands out has
// been Retain'd for the caller and that its own holds are released on
// eviction, invalidation and Flush.
//
// The package deliberately knows nothing about live or pool clients —
// values are anything refcounted — so it sits below both without an
// import cycle.
package refcache

import (
	"container/list"
	"sync"
	"time"
)

// Value is the refcounted payload the cache stores. The cache takes
// one Retain for its own table hold and one per reader it serves;
// every hold is paired with exactly one Release.
type Value interface {
	Retain()
	Release()
}

// Key identifies a cached payload: the located ref's nominal home
// server and its ref key. Replicated refs cache under the primary's ID
// regardless of which replica actually served the bytes, so repeat
// reads dedup across failover.
type Key struct {
	Server uint32
	Ref    uint64
}

// Config sizes the cache.
type Config struct {
	// MaxBytes bounds the sum of cached payload sizes. <= 0 disables
	// admission entirely (every Get misses).
	MaxBytes int64
	// DefaultTTL caps entry lifetime when the caller passes ttl <= 0
	// (for example, a session with leasing disabled). 0 means
	// DefaultTTL below.
	DefaultTTL time.Duration
}

// DefaultTTL bounds staleness when no session lease is available to
// derive a tighter cap from.
const DefaultTTL = 30 * time.Second

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits          int64 // served from cache
	Misses        int64 // not present (loader ran or caller went to the wire)
	Admits        int64 // entries inserted
	Rejects       int64 // candidates refused by the admission sketch
	Evictions     int64 // entries displaced by the byte budget
	Invalidations int64 // entries dropped by Invalidate*/Flush/TTL expiry
	Coalesced     int64 // GetOrLoad callers served by another caller's flight
	Bytes         int64 // current cached payload bytes (gauge)
	Entries       int64 // current entry count (gauge)
	NegHits       int64 // reads short-circuited by a freed-ref tombstone
	NegAdds       int64 // tombstones recorded by Deny
	NegEntries    int64 // current tombstone count (gauge)
}

// MaxNegEntries bounds the freed-ref tombstone set; when full, the
// tombstone closest to expiry is shed first.
const MaxNegEntries = 1024

type entry[V Value] struct {
	key    Key
	val    V
	size   int64
	expire time.Time // zero = no TTL
	elem   *list.Element
}

// flight is one in-progress load. Waiters register under the cache
// mutex before blocking on done; the loader retains the value once per
// registered waiter before closing done, so every waiter owns exactly
// one hold.
type flight[V Value] struct {
	done    chan struct{}
	val     V
	err     error
	waiters int
	// noAdmit is set when an invalidation lands while the load is in
	// flight: the fetched bytes may predate a free, so they are handed
	// to the waiters (who raced the free anyway) but never cached.
	noAdmit bool
}

// Cache is the hot-ref payload cache. All methods are safe for
// concurrent use.
type Cache[V Value] struct {
	mu      sync.Mutex
	cfg     Config
	table   map[Key]*entry[V]
	lru     *list.List // front = most recent
	flights map[Key]*flight[V]
	sketch  sketch
	bytes   int64
	st      Stats
	// neg is the freed-ref tombstone set (DESIGN.md §D16): Deny records
	// that a key was freed, and Denied lets read paths short-circuit the
	// replica failover walk for it — a probe storm against a dead key
	// costs one map lookup instead of R wire errors. Tombstones expire
	// by TTL and are cleared per-server by InvalidateServer (the epoch
	// watcher), since an epoch advance means the server's key population
	// changed and the denial may be stale.
	neg map[Key]time.Time
}

// New builds a cache. A nil *Cache is valid and always misses, so
// callers can hold one unconditionally.
func New[V Value](cfg Config) *Cache[V] {
	if cfg.DefaultTTL <= 0 {
		cfg.DefaultTTL = DefaultTTL
	}
	c := &Cache[V]{
		cfg:     cfg,
		table:   make(map[Key]*entry[V]),
		lru:     list.New(),
		flights: make(map[Key]*flight[V]),
		neg:     make(map[Key]time.Time),
	}
	c.sketch.init(cfg.MaxBytes)
	return c
}

// Get returns the cached value for k, retained for the caller, or
// (zero, false) on a miss. Every call counts toward the key's
// admission frequency.
func (c *Cache[V]) Get(k Key) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sketch.add(k)
	e := c.lookup(k)
	if e == nil {
		c.st.Misses++
		return zero, false
	}
	c.st.Hits++
	c.lru.MoveToFront(e.elem)
	e.val.Retain()
	return e.val, true
}

// GetOrLoad returns the cached value for k or runs load to fetch it,
// coalescing concurrent loads of the same key into one call. The
// returned value is retained for the caller (one Release owed) whether
// it came from the table, the flight, or a fresh load. size is the
// payload size used for budget accounting; ttl caps the entry's
// lifetime (<= 0 uses the config default). Load errors are returned to
// every coalesced caller and never cached.
func (c *Cache[V]) GetOrLoad(k Key, size int64, ttl time.Duration, load func() (V, error)) (V, error) {
	var zero V
	if c == nil {
		return zero, errNilCache
	}
	c.mu.Lock()
	c.sketch.add(k)
	if e := c.lookup(k); e != nil {
		c.st.Hits++
		c.lru.MoveToFront(e.elem)
		e.val.Retain()
		v := e.val
		c.mu.Unlock()
		return v, nil
	}
	c.st.Misses++
	if f := c.flights[k]; f != nil {
		f.waiters++
		c.st.Coalesced++
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return zero, f.err
		}
		return f.val, nil
	}
	f := &flight[V]{done: make(chan struct{})}
	c.flights[k] = f
	c.mu.Unlock()

	val, err := load()

	c.mu.Lock()
	delete(c.flights, k)
	f.err = err
	if err == nil {
		f.val = val
		for i := 0; i < f.waiters; i++ {
			val.Retain()
		}
		if !f.noAdmit {
			c.admit(k, val, size, ttl)
		}
	}
	c.mu.Unlock()
	close(f.done)
	return val, err
}

// Add offers a value for admission without a read: the async-read
// paths use it after a wire fetch already filled the caller's buffer.
// mk is invoked only if the sketch admits the key, so rejected offers
// cost nothing; the cache owns the sole hold on the made value.
func (c *Cache[V]) Add(k Key, size int64, ttl time.Duration, mk func() V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sketch.add(k)
	if c.lookup(k) != nil {
		return
	}
	if f := c.flights[k]; f != nil && f.noAdmit {
		return
	}
	if !c.wouldAdmit(k, size) {
		c.st.Rejects++
		return
	}
	// admit takes the cache's own Retain; drop the hold mk minted with
	// so the cache ends up the sole owner.
	v := mk()
	c.admit(k, v, size, ttl)
	v.Release()
}

// Deny records a freed-ref tombstone for k: until it expires (ttl <= 0
// uses the config default) Denied(k) reports true, letting read paths
// fail a dead key fast instead of probing every replica. Deny also
// drops any cached payload for k and poisons in-flight loads — a freed
// ref must never serve cached bytes. The tombstone set is bounded by
// MaxNegEntries; when full, the entry closest to expiry is shed.
func (c *Cache[V]) Deny(k Key, ttl time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if f := c.flights[k]; f != nil {
		f.noAdmit = true
	}
	if e := c.table[k]; e != nil {
		c.drop(e)
		c.st.Invalidations++
	}
	if ttl <= 0 {
		ttl = c.cfg.DefaultTTL
	}
	if _, have := c.neg[k]; !have && len(c.neg) >= MaxNegEntries {
		var victim Key
		var soonest time.Time
		for nk, exp := range c.neg {
			if soonest.IsZero() || exp.Before(soonest) {
				victim, soonest = nk, exp
			}
		}
		delete(c.neg, victim)
	}
	c.neg[k] = time.Now().Add(ttl)
	c.st.NegAdds++
}

// Denied reports whether k carries a live freed-ref tombstone. A true
// return counts as a negative hit.
func (c *Cache[V]) Denied(k Key) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	exp, ok := c.neg[k]
	if !ok {
		return false
	}
	if time.Now().After(exp) {
		delete(c.neg, k)
		return false
	}
	c.st.NegHits++
	return true
}

// Invalidate drops k if cached and poisons any in-flight load of it.
// Reports whether an entry was dropped. Tombstones are untouched —
// invalidation means "refetch", denial means "gone", and a free path
// that wants both calls Invalidate then Deny.
func (c *Cache[V]) Invalidate(k Key) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if f := c.flights[k]; f != nil {
		f.noAdmit = true
	}
	e := c.table[k]
	if e == nil {
		return false
	}
	c.drop(e)
	c.st.Invalidations++
	return true
}

// InvalidateServer drops every entry homed on server and poisons its
// in-flight loads — the epoch-advance, ejection and reap path. Returns
// the number of entries dropped.
func (c *Cache[V]) InvalidateServer(server uint32) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, f := range c.flights {
		if k.Server == server {
			f.noAdmit = true
		}
	}
	n := 0
	for k, e := range c.table {
		if k.Server == server {
			c.drop(e)
			n++
		}
	}
	// An epoch advance means the server's key population changed, so its
	// tombstones may deny keys that exist again — clear them (§D16).
	for k := range c.neg {
		if k.Server == server {
			delete(c.neg, k)
		}
	}
	c.st.Invalidations += int64(n)
	return n
}

// Flush drops everything and poisons all in-flight loads; Close paths
// use it so the cache's Buf holds return to the pool.
func (c *Cache[V]) Flush() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, f := range c.flights {
		f.noAdmit = true
	}
	n := len(c.table)
	for _, e := range c.table {
		c.drop(e)
	}
	clear(c.neg)
	c.st.Invalidations += int64(n)
}

// Stats snapshots the counters.
func (c *Cache[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.st
	st.Bytes = c.bytes
	st.Entries = int64(len(c.table))
	st.NegEntries = int64(len(c.neg))
	return st
}

// lookup returns the live entry for k, reaping it first if its TTL
// expired. Caller holds c.mu.
func (c *Cache[V]) lookup(k Key) *entry[V] {
	e := c.table[k]
	if e == nil {
		return nil
	}
	if !e.expire.IsZero() && time.Now().After(e.expire) {
		c.drop(e)
		c.st.Invalidations++
		return nil
	}
	return e
}

// wouldAdmit runs the TinyLFU contest without mutating the LRU: the
// candidate wins only if it is at least as frequent as every victim
// the byte budget would force out. Caller holds c.mu.
func (c *Cache[V]) wouldAdmit(k Key, size int64) bool {
	if size <= 0 || size > c.cfg.MaxBytes {
		return false
	}
	need := c.bytes + size - c.cfg.MaxBytes
	if need <= 0 {
		return true
	}
	cf := c.sketch.estimate(k)
	for el := c.lru.Back(); el != nil && need > 0; el = el.Prev() {
		v := el.Value.(*entry[V])
		if c.sketch.estimate(v.key) > cf {
			return false
		}
		need -= v.size
	}
	return need <= 0
}

// admit inserts val (taking the cache's own Retain) if the admission
// contest passes, evicting colder victims to fit; otherwise it counts
// a reject and releases nothing — the caller keeps its holds either
// way. Caller holds c.mu.
func (c *Cache[V]) admit(k Key, val V, size int64, ttl time.Duration) {
	if !c.wouldAdmit(k, size) {
		c.st.Rejects++
		return
	}
	for c.bytes+size > c.cfg.MaxBytes {
		el := c.lru.Back()
		if el == nil {
			return
		}
		c.drop(el.Value.(*entry[V]))
		c.st.Evictions++
	}
	if ttl <= 0 {
		ttl = c.cfg.DefaultTTL
	}
	val.Retain()
	e := &entry[V]{key: k, val: val, size: size, expire: time.Now().Add(ttl)}
	e.elem = c.lru.PushFront(e)
	c.table[k] = e
	c.bytes += size
	c.st.Admits++
}

// drop removes e and releases the cache's hold. Caller holds c.mu.
func (c *Cache[V]) drop(e *entry[V]) {
	delete(c.table, e.key)
	c.lru.Remove(e.elem)
	c.bytes -= e.size
	e.val.Release()
}

type nilCacheError struct{}

func (nilCacheError) Error() string { return "refcache: GetOrLoad on nil cache" }

var errNilCache = nilCacheError{}
