package pool

import (
	"bytes"
	"testing"

	"repro/internal/dm"
	"repro/internal/dmwire"
)

// TestReplicatedStagePlacement pins the R=2 placement invariant: every
// staged payload gets a pool-minted cluster key (ReplicaKeyBit set), its
// copies land on exactly the ring successors of that key, both copies
// are real (server-side live-ref counts double), and FreeRef releases
// every copy.
func TestReplicatedStagePlacement(t *testing.T) {
	const k, objects = 3, 16
	srvs, p := startCluster(t, k, smallShard(), Config{ReplicaFactor: 2, RepairInterval: -1})

	body := bytes.Repeat([]byte{0x7c}, 8192)
	refs := make([]dm.Ref, objects)
	for i := range refs {
		ref, err := p.StageRef(body)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Key&dmwire.ReplicaKeyBit == 0 {
			t.Fatalf("ref %d key %#x lacks the replica key bit", i, ref.Key)
		}
		want := p.ring.Successors(ref.Key, 2)
		got := p.Replicas(ref)
		if len(got) != 2 || len(want) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("ref %d replicas %v, ring successors %v", i, got, want)
		}
		if ref.Server != want[0] {
			t.Fatalf("ref %d primary %d, want first successor %d", i, ref.Server, want[0])
		}
		// Both copies must be independently readable, shard-direct.
		local := ref
		local.Server = 0
		for _, id := range got {
			buf := make([]byte, len(body))
			if err := p.shards[id].cl.ReadRef(local, 0, buf); err != nil {
				t.Fatalf("ref %d: replica on shard %d unreadable: %v", i, id, err)
			}
			if !bytes.Equal(buf, body) {
				t.Fatalf("ref %d: replica on shard %d has wrong bytes", i, id)
			}
		}
		refs[i] = ref
	}

	total := 0
	for _, srv := range srvs {
		total += srv.LiveRefs()
	}
	if total != 2*objects {
		t.Fatalf("cluster holds %d live refs, want %d (2 copies each)", total, 2*objects)
	}
	if n := p.TrackedRefs(); n != objects {
		t.Fatalf("TrackedRefs = %d, want %d", n, objects)
	}
	if n := p.UnderReplicated(); n != 0 {
		t.Fatalf("UnderReplicated = %d on a healthy cluster", n)
	}

	// Per-shard accounting: primaries sum to N, copies to 2N.
	prim, reps := 0, 0
	for _, st := range p.ReplicaStats() {
		prim += st.RefsPrimary
		reps += st.RefsReplica
	}
	if prim != objects || reps != 2*objects {
		t.Fatalf("ReplicaStats: %d primaries / %d replicas, want %d / %d",
			prim, reps, objects, 2*objects)
	}

	// StageRefKeyed's co-location key is documented as ignored at R > 1:
	// the ref still gets a minted cluster key.
	kr, err := p.StageRefKeyed(42, body)
	if err != nil {
		t.Fatal(err)
	}
	if kr.Key == 42 || kr.Key&dmwire.ReplicaKeyBit == 0 {
		t.Fatalf("keyed stage at R=2 produced key %#x, want a minted cluster key", kr.Key)
	}
	refs = append(refs, kr)

	for i, ref := range refs {
		if err := p.FreeRef(ref); err != nil {
			t.Fatalf("free %d: %v", i, err)
		}
	}
	for id, srv := range srvs {
		if lr := srv.LiveRefs(); lr != 0 {
			t.Errorf("shard %d still holds %d refs after frees", id, lr)
		}
	}
	if n := p.TrackedRefs(); n != 0 {
		t.Fatalf("TrackedRefs = %d after frees", n)
	}
	checkAllInvariants(t, srvs)
}

// TestReplicatedReadFailover pins read failover without any network
// fault: the primary's copy is deleted shard-direct, after which
// ReadRef, ReadRefLease and ReadRefAsync must all serve from the
// surviving replica and count the failovers.
func TestReplicatedReadFailover(t *testing.T) {
	srvs, p := startCluster(t, 3, smallShard(), Config{ReplicaFactor: 2, RepairInterval: -1})
	body := bytes.Repeat([]byte{0x3e}, 8192)
	ref, err := p.StageRef(body)
	if err != nil {
		t.Fatal(err)
	}
	reps := p.Replicas(ref)
	if len(reps) != 2 {
		t.Fatalf("replicas %v, want 2", reps)
	}

	// Kill the primary's copy behind the pool's back.
	local := ref
	local.Server = 0
	if err := p.shards[ref.Server].cl.FreeRef(local); err != nil {
		t.Fatal(err)
	}

	got := make([]byte, len(body))
	if err := p.ReadRef(ref, 0, got); err != nil {
		t.Fatalf("failover read: %v", err)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("failover read returned wrong bytes")
	}
	b, err := p.ReadRefLease(ref, 0, ref.Size)
	if err != nil {
		t.Fatalf("failover lease read: %v", err)
	}
	if !bytes.Equal(b.Bytes(), body) {
		t.Fatal("failover lease read returned wrong bytes")
	}
	b.Release()
	clear(got)
	if err := p.ReadRefAsync(ref, 0, got).Wait(); err != nil {
		t.Fatalf("failover async read: %v", err)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("failover async read returned wrong bytes")
	}

	if n := p.FailoverReads(); n != 3 {
		t.Fatalf("FailoverReads = %d, want 3", n)
	}
	secondary := reps[1]
	if n := p.ReplicaStats()[secondary].FailoverReads; n != 3 {
		t.Fatalf("shard %d served %d failover reads, want 3", secondary, n)
	}

	// FreeRef still succeeds: the surviving copy is released.
	if err := p.FreeRef(ref); err != nil {
		t.Fatal(err)
	}
	checkAllInvariants(t, srvs)
}

// TestReplicatedSingleShardDegrades covers R > members: a one-shard ring
// places the single possible copy, reads work, and the gauge does not
// report refs as under-replicated when the ring itself is too small to
// do better.
func TestReplicatedSingleShardDegrades(t *testing.T) {
	srvs, p := startCluster(t, 1, smallShard(), Config{ReplicaFactor: 2, RepairInterval: -1})
	body := bytes.Repeat([]byte{9}, 8192)
	ref, err := p.StageRef(body)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Replicas(ref); len(got) != 1 {
		t.Fatalf("replicas %v on a 1-shard ring", got)
	}
	if n := p.UnderReplicated(); n != 0 {
		t.Fatalf("UnderReplicated = %d, want 0 (ring smaller than R)", n)
	}
	got := make([]byte, len(body))
	if err := p.ReadRef(ref, 0, got); err != nil || !bytes.Equal(got, body) {
		t.Fatalf("read: %v", err)
	}
	if err := p.FreeRef(ref); err != nil {
		t.Fatal(err)
	}
	checkAllInvariants(t, srvs)
}
