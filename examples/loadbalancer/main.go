// Loadbalancer contrasts pass-by-value and pass-by-reference through an
// application-layer load balancer (paper §VI-B, Fig 6): the same LB
// topology runs under the eRPC baseline and under DmRPC-net, and the
// program reports the LB server's request rate and memory-bus traffic.
//
//	go run ./examples/loadbalancer
package main

import (
	"fmt"

	"repro/internal/msvc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	const reqSize = 32768
	fmt.Printf("load balancer demo: 3 senders -> LB -> 3 receivers, %s requests\n\n",
		stats.Bytes(reqSize))

	for _, mode := range []msvc.Mode{msvc.ModeERPC, msvc.ModeDmNet} {
		pl := msvc.NewPlatform(msvc.DefaultConfig(mode))
		app := msvc.NewLBApp(pl, 3, 3)
		pl.Start()

		payload := make([]byte, reqSize)
		before := app.LB().Host.MemBytesMoved()
		i := 0
		res := workload.RunClosed(pl.Eng, workload.ClosedConfig{
			Clients: 12,
			Warmup:  2 * sim.Millisecond,
			Measure: 20 * sim.Millisecond,
		}, func(p *sim.Proc) error {
			i++
			return app.Do(p, i, payload)
		})
		memPerReq := int64(0)
		if res.Ops > 0 {
			memPerReq = (app.LB().Host.MemBytesMoved() - before) / res.Ops
		}
		fmt.Printf("%-10s LB rate %-12s LB memory traffic %s/request\n",
			mode, stats.Rate(res.Throughput()), stats.Bytes(memPerReq))
		pl.Shutdown()
	}
	fmt.Println("\nthe DmRPC LB forwards 20-byte refs, so its memory bus stays idle")
}
