package trace

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/msvc"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/simnet"
)

const mEcho rpc.Method = 1

// rig: one client, one server, collector on both.
func newRig(t *testing.T, maxSpans int) (*sim.Engine, *rpc.Node, *rpc.Node, *Collector) {
	t.Helper()
	eng := sim.NewEngine(1)
	net := simnet.New(eng, simnet.DefaultConfig())
	srv := rpc.NewNode(net.AddHost("srv"), 1, "srv", rpc.DefaultConfig())
	srv.Handle(mEcho, func(ctx *rpc.Ctx, body []byte) ([]byte, error) {
		ctx.P.Sleep(10 * sim.Microsecond)
		if string(body) == "fail" {
			return nil, errors.New("boom")
		}
		return append(body, '!'), nil
	})
	cli := rpc.NewNode(net.AddHost("cli"), 1, "cli", rpc.DefaultConfig())
	c := New(maxSpans)
	srv.SetObserver(c)
	cli.SetObserver(c)
	srv.Start()
	cli.Start()
	return eng, cli, srv, c
}

func TestCollectorAggregates(t *testing.T) {
	eng, cli, srv, c := newRig(t, 16)
	defer eng.Shutdown()
	eng.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if _, err := cli.Call(p, srv.Addr(), mEcho, []byte("ping")); err != nil {
				t.Errorf("call: %v", err)
			}
		}
		if _, err := cli.Call(p, srv.Addr(), mEcho, []byte("fail")); err == nil {
			t.Error("expected failure")
		}
	})
	eng.Run()

	serve, ok := c.Get(KindServe, "srv", mEcho)
	if !ok {
		t.Fatal("no serve row")
	}
	if serve.Count != 6 || serve.Errors != 1 {
		t.Fatalf("serve count=%d errors=%d", serve.Count, serve.Errors)
	}
	if serve.AvgNs < 10_000 {
		t.Fatalf("serve avg %dns, want >= handler sleep", serve.AvgNs)
	}
	if serve.ReqBytes != 6*4 {
		t.Fatalf("serve ReqBytes = %d", serve.ReqBytes)
	}
	if serve.RespBytes != 5*5 { // failures return no body
		t.Fatalf("serve RespBytes = %d", serve.RespBytes)
	}

	call, ok := c.Get(KindCall, "cli", mEcho)
	if !ok {
		t.Fatal("no call row")
	}
	if call.Count != 6 || call.Errors != 1 {
		t.Fatalf("call count=%d errors=%d", call.Count, call.Errors)
	}
	// Call latency includes the network; must exceed serve latency.
	if call.AvgNs <= serve.AvgNs {
		t.Fatalf("call avg %d <= serve avg %d", call.AvgNs, serve.AvgNs)
	}
}

func TestSpanLogBounded(t *testing.T) {
	eng, cli, srv, c := newRig(t, 4)
	defer eng.Shutdown()
	eng.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			cli.Call(p, srv.Addr(), mEcho, []byte("x"))
		}
	})
	eng.Run()
	spans := c.Spans()
	if len(spans) != 4 {
		t.Fatalf("span log holds %d, want 4", len(spans))
	}
	// The log is completion-ordered: end times are monotone.
	for i := 1; i < len(spans); i++ {
		if spans[i].End < spans[i-1].End {
			t.Fatal("span log out of order")
		}
	}
	if spans[0].Duration() <= 0 {
		t.Fatal("zero-duration span")
	}
}

func TestSpanLogDisabled(t *testing.T) {
	eng, cli, srv, c := newRig(t, 0)
	defer eng.Shutdown()
	eng.Spawn("driver", func(p *sim.Proc) {
		cli.Call(p, srv.Addr(), mEcho, []byte("x"))
	})
	eng.Run()
	if len(c.Spans()) != 0 {
		t.Fatal("spans recorded while disabled")
	}
	if _, ok := c.Get(KindServe, "srv", mEcho); !ok {
		t.Fatal("aggregation must stay on")
	}
}

func TestReportRendering(t *testing.T) {
	eng, cli, srv, c := newRig(t, 0)
	defer eng.Shutdown()
	eng.Spawn("driver", func(p *sim.Proc) {
		cli.Call(p, srv.Addr(), mEcho, []byte("x"))
	})
	eng.Run()
	var b strings.Builder
	c.Report(&b)
	out := b.String()
	for _, want := range []string{"serve", "call", "srv", "cli", "0x0001"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// Custom method names.
	c.MethodName = func(m rpc.Method) string { return "echo" }
	b.Reset()
	c.Report(&b)
	if !strings.Contains(b.String(), "echo") {
		t.Fatal("custom method name not used")
	}
}

func TestDumpSpans(t *testing.T) {
	eng, cli, srv, c := newRig(t, 8)
	defer eng.Shutdown()
	eng.Spawn("driver", func(p *sim.Proc) {
		cli.Call(p, srv.Addr(), mEcho, []byte("x"))
		cli.Call(p, srv.Addr(), mEcho, []byte("fail"))
	})
	eng.Run()
	var b strings.Builder
	c.DumpSpans(&b)
	out := b.String()
	if !strings.Contains(out, "srv") || !strings.Contains(out, "serve") {
		t.Fatalf("dump missing spans:\n%s", out)
	}
	if !strings.Contains(out, "!") {
		t.Fatal("error span not marked")
	}
}

func TestReset(t *testing.T) {
	eng, cli, srv, c := newRig(t, 8)
	defer eng.Shutdown()
	eng.Spawn("driver", func(p *sim.Proc) {
		cli.Call(p, srv.Addr(), mEcho, []byte("x"))
	})
	eng.Run()
	c.Reset()
	if len(c.Rows()) != 0 || len(c.Spans()) != 0 {
		t.Fatal("Reset left data")
	}
}

func TestPlatformAttachTracer(t *testing.T) {
	pl := msvc.NewPlatform(msvc.DefaultConfig(msvc.ModeDmNet))
	defer pl.Shutdown()
	ch := msvc.NewChain(pl, 3)
	c := New(0)
	pl.AttachTracer(c)
	pl.Start()
	var err error
	pl.Eng.Spawn("driver", func(p *sim.Proc) {
		_, err = ch.Do(p, make([]byte, 8192))
	})
	pl.Eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	rows := c.Rows()
	if len(rows) == 0 {
		t.Fatal("no telemetry from chain run")
	}
	// Every chain service must appear, and the forwarding method must have
	// been served twice (two middle hops) plus once at the terminal.
	serveCount := int64(0)
	for _, r := range rows {
		if r.Kind == KindServe && r.Method == msvc.MChain {
			serveCount += r.Count
		}
	}
	if serveCount != 3 {
		t.Fatalf("MChain served %d times, want 3", serveCount)
	}
}

func TestRowsSortedByTotalTime(t *testing.T) {
	c := New(0)
	// Two synthetic keys with different totals via direct observer calls.
	tok := c.ServeStart("fast", 1, simnet.Addr{}, 10, 0)
	c.ServeEnd(tok, 5, 100, nil)
	tok = c.ServeStart("slow", 2, simnet.Addr{}, 10, 0)
	c.ServeEnd(tok, 5, 10_000, nil)
	rows := c.Rows()
	if len(rows) != 2 || rows[0].Node != "slow" {
		t.Fatalf("rows not sorted by total time: %+v", rows)
	}
}

func TestForeignTokenIgnored(t *testing.T) {
	c := New(0)
	c.ServeEnd("not-a-token", 0, 0, nil) // must not panic
	c.CallEnd(nil, 0, 0, nil)
	if len(c.Rows()) != 0 {
		t.Fatal("foreign tokens produced rows")
	}
}
