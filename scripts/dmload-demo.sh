#!/bin/sh
# dmload-demo.sh K BASE_PORT — launch a local K-shard DM cluster as real
# dmserverd processes and drive it with the dmload harness in ATTACH
# mode: the socialnet mix (60/30/10), YCSB-style kv, and the blob sweep,
# each for a few seconds, with the JSON report printed at the end. The
# in-process fault-schedule path (-kill-shard) is exercised separately
# in a -launch'ed run, since attached processes are outside the
# harness's reach. Invoked by `make load-demo` (K=3 BASE_PORT=7860).
set -eu

K=${1:-3}
BASE_PORT=${2:-7860}
DURATION=${DURATION:-5s}
GO=${GO:-go}

tmp=$(mktemp -d)
trap 'kill $pids 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$tmp"' EXIT INT TERM

$GO build -o "$tmp/dmserverd" ./cmd/dmserverd
$GO build -o "$tmp/dmctl" ./cmd/dmctl
$GO build -o "$tmp/dmload" ./cmd/dmload

pids=""
servers=""
i=0
while [ "$i" -lt "$K" ]; do
    port=$((BASE_PORT + i))
    "$tmp/dmserverd" -listen "127.0.0.1:$port" -shard-id "$i" \
        -pages 16384 -lease-ttl 2s >"$tmp/shard$i.log" 2>&1 &
    pids="$pids $!"
    servers="$servers${servers:+,}127.0.0.1:$port"
    i=$((i + 1))
done

# Wait for every shard to accept connections.
i=0
while [ "$i" -lt "$K" ]; do
    port=$((BASE_PORT + i))
    tries=0
    until "$tmp/dmctl" -server "127.0.0.1:$port" stage -text ping >/dev/null 2>&1; do
        tries=$((tries + 1))
        if [ "$tries" -gt 50 ]; then
            echo "shard $i on port $port never came up:" >&2
            cat "$tmp/shard$i.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    i=$((i + 1))
done

echo "== $K-shard cluster up on $servers =="
"$tmp/dmload" -shards "$servers" -replicas 2 \
    -scenarios socialnet,kv,blob -workers 8 \
    -warmup 1s -duration "$DURATION" \
    -out "$tmp/report.json"
echo "== attach-mode report =="
cat "$tmp/report.json"

echo "== kill-a-shard run (in-process cluster, R=2) =="
"$tmp/dmload" -launch 3 -replicas 2 -scenarios kv -workers 8 \
    -warmup 500ms -duration "$DURATION" -repair-interval 300ms \
    -kill-shard 1 -kill-at 1s -restart-after 1s \
    -out "$tmp/fault.json"
echo "== fault report =="
cat "$tmp/fault.json"

# The bar the demo exists to hold: reads during failover may retry, but
# none may return wrong bytes.
if grep -q '"payload-loss": 0' "$tmp/fault.json"; then
    echo "== load demo complete: zero payload loss under failover =="
else
    echo "load demo FAILED: payload loss detected" >&2
    exit 1
fi
