package msvc

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Social-network methods.
const (
	MSNRelay rpc.Method = 0x0430 + iota
	MSNCompose
	MSNHome
	MSNStore
	MSNFetch
)

// Social-network operation codes (first byte of every MSNRelay body).
const (
	snOpCompose = 0
	snOpHome    = 1
	snOpUser    = 2
)

// SocialNetConfig sizes the application.
type SocialNetConfig struct {
	// MediaSize is the post payload in bytes.
	MediaSize int
	// PostsPerRead is how many posts a timeline read returns (real
	// DeathStarBench timelines return a page of posts, not one).
	PostsPerRead int
	// Clients is the number of workload-generator hosts (wrk2-style
	// closed/open-loop generators run from several machines so the
	// generator's NIC is not the bottleneck).
	Clients int
}

// DefaultSocialNetConfig mirrors the Fig 11 setup: 8 KiB media, timeline
// pages of 3 posts, 3 generator hosts.
func DefaultSocialNetConfig() SocialNetConfig {
	return SocialNetConfig{MediaSize: 8192, PostsPerRead: 3, Clients: 3}
}

func (c SocialNetConfig) withDefaults() SocialNetConfig {
	d := DefaultSocialNetConfig()
	if c.MediaSize == 0 {
		c.MediaSize = d.MediaSize
	}
	if c.PostsPerRead == 0 {
		c.PostsPerRead = d.PostsPerRead
	}
	if c.Clients == 0 {
		c.Clients = d.Clients
	}
	if c.MediaSize < 0 || c.PostsPerRead < 0 || c.Clients < 0 {
		panic("msvc: negative SocialNetConfig values")
	}
	return c
}

// SocialNet is the DeathStarBench-style social network of §VI-F. The mixed
// workload is 60% read-home-timeline / 30% read-user-timeline / 10%
// compose-post. Every request traverses the three data movers (load
// balancer, proxy, php-fpm); read-user-timeline traverses five (adding the
// user-timeline and media-frontend movers), matching the paper's traffic
// description. All services deploy across three servers.
type SocialNet struct {
	pl      *Platform
	cfg     SocialNetConfig
	clients []*Service
	nextCli int

	lb, proxy, phpfpm   *Service // data movers for every request
	userSvc, mediaSvc   *Service // extra movers on read-user-timeline
	composeSvc, homeSvc *Service // application logic
	storage             *Service // post storage
	posts               []core.Arg
}

// NewSocialNet deploys the service graph over three servers (§VI-F) plus
// generator hosts. Call before Platform.Start.
func NewSocialNet(pl *Platform, cfg SocialNetConfig) *SocialNet {
	cfg = cfg.withDefaults()
	h1 := pl.AddHost("sn-server1")
	h2 := pl.AddHost("sn-server2")
	h3 := pl.AddHost("sn-server3")
	sn := &SocialNet{
		pl:  pl,
		cfg: cfg,

		lb:    pl.NewServiceOn(h1, "sn-lb"),
		proxy: pl.NewServiceOn(h1, "sn-proxy"),

		phpfpm:   pl.NewServiceOn(h2, "sn-phpfpm"),
		userSvc:  pl.NewServiceOn(h2, "sn-user-timeline"),
		mediaSvc: pl.NewServiceOn(h2, "sn-media-frontend"),

		composeSvc: pl.NewServiceOn(h3, "sn-compose-post"),
		homeSvc:    pl.NewServiceOn(h3, "sn-home-timeline"),
		storage:    pl.NewServiceOn(h3, "sn-post-storage"),
	}
	for i := 0; i < cfg.Clients; i++ {
		sn.clients = append(sn.clients, pl.NewService(fmt.Sprintf("sn-client%d", i)))
	}

	// Data movers forward by op code without touching payloads.
	relay := func(s *Service, next map[uint8]*Service) {
		s.Node.Handle(MSNRelay, func(ctx *rpc.Ctx, body []byte) ([]byte, error) {
			if len(body) < 1 {
				return nil, &rpc.AppError{Status: 1, Msg: "empty relay"}
			}
			n, ok := next[body[0]]
			if !ok {
				return nil, &rpc.AppError{Status: 1, Msg: "no route"}
			}
			m := MSNRelay
			switch n {
			case sn.composeSvc:
				m = MSNCompose
			case sn.homeSvc:
				m = MSNHome
			}
			return pl.forward(ctx, s, n.Addr(), m, body)
		})
	}
	relay(sn.lb, map[uint8]*Service{snOpCompose: sn.proxy, snOpHome: sn.proxy, snOpUser: sn.proxy})
	relay(sn.proxy, map[uint8]*Service{snOpCompose: sn.phpfpm, snOpHome: sn.phpfpm, snOpUser: sn.phpfpm})
	relay(sn.phpfpm, map[uint8]*Service{snOpCompose: sn.composeSvc, snOpHome: sn.homeSvc, snOpUser: sn.userSvc})
	relay(sn.userSvc, map[uint8]*Service{snOpUser: sn.mediaSvc})
	relay(sn.mediaSvc, map[uint8]*Service{snOpUser: sn.homeSvc})

	// compose-post: persist the media argument in post storage.
	sn.composeSvc.Node.Handle(MSNCompose, func(ctx *rpc.Ctx, body []byte) ([]byte, error) {
		pl.Overhead(ctx.P, sn.composeSvc)
		return ctx.Node.Call(ctx.P, sn.storage.Addr(), MSNStore, body[1:])
	})
	sn.storage.Node.Handle(MSNStore, func(ctx *rpc.Ctx, body []byte) ([]byte, error) {
		pl.Overhead(ctx.P, sn.storage)
		arg := core.DecodeArg(rpc.NewDec(body))
		if !arg.IsRef() {
			// Pass-by-value: the storage service owns a private copy.
			buf := make([]byte, arg.Size())
			d, err := sn.storage.C.Open(ctx.P, arg)
			if err != nil {
				return nil, err
			}
			if err := d.Read(ctx.P, 0, buf); err != nil {
				return nil, err
			}
			arg = core.InlineArg(buf)
		}
		id := uint64(len(sn.posts))
		sn.posts = append(sn.posts, arg)
		return rpc.NewEnc(8).U64(id).Bytes(), nil
	})

	// read timelines: the home-timeline service asks storage for a page of
	// posts; the response payload (all the media, or just the Refs)
	// unwinds through every mover back to the client.
	sn.homeSvc.Node.Handle(MSNHome, func(ctx *rpc.Ctx, body []byte) ([]byte, error) {
		pl.Overhead(ctx.P, sn.homeSvc)
		d := rpc.NewDec(body)
		_ = d.U8() // op
		start := d.U64()
		count := d.U16()
		fetch := rpc.NewEnc(10).U64(start).U16(count).Bytes()
		return pl.forward(ctx, sn.homeSvc, sn.storage.Addr(), MSNFetch, fetch)
	})
	sn.storage.Node.Handle(MSNFetch, func(ctx *rpc.Ctx, body []byte) ([]byte, error) {
		pl.Overhead(ctx.P, sn.storage)
		d := rpc.NewDec(body)
		start := d.U64()
		count := int(d.U16())
		if len(sn.posts) == 0 {
			return nil, &rpc.AppError{Status: 2, Msg: "no posts"}
		}
		e := rpc.NewEnc(2 + count*(sn.cfg.MediaSize+8))
		e.U16(uint16(count))
		for i := 0; i < count; i++ {
			arg := sn.posts[(start+uint64(i))%uint64(len(sn.posts))]
			if !arg.IsRef() {
				// Serving a by-value post streams it out of storage memory.
				sn.storage.Host.MemTouch(ctx.P, int(arg.Size()))
			}
			arg.Encode(e)
		}
		return e.Bytes(), nil
	})
	return sn
}

// Clients returns the workload-generator services.
func (sn *SocialNet) Clients() []*Service { return sn.clients }

// Posts returns how many posts storage holds.
func (sn *SocialNet) Posts() int { return len(sn.posts) }

// client rotates ops across generator hosts.
func (sn *SocialNet) client() *Service {
	c := sn.clients[sn.nextCli%len(sn.clients)]
	sn.nextCli++
	return c
}

// Compose publishes one post with MediaSize bytes of media.
func (sn *SocialNet) Compose(p *sim.Proc) error {
	cli := sn.client()
	media := make([]byte, sn.cfg.MediaSize)
	apps.FillMedia(media, uint64(len(sn.posts))) // distinguishable content
	arg, err := cli.C.MakeArg(p, media)
	if err != nil {
		return err
	}
	e := rpc.NewEnc(1 + arg.WireSize())
	e.U8(snOpCompose)
	arg.Encode(e)
	_, err = cli.Node.Call(p, sn.lb.Addr(), MSNRelay, e.Bytes())
	// Ownership of the ref passes to post storage; the client never
	// releases it.
	return err
}

// readTimeline issues a read op and consumes the returned page of posts.
func (sn *SocialNet) readTimeline(p *sim.Proc, op uint8) error {
	if len(sn.posts) == 0 {
		return fmt.Errorf("socialnet: no posts to read")
	}
	cli := sn.client()
	start := uint64(sn.pl.Eng.Rand().Intn(len(sn.posts)))
	e := rpc.NewEnc(16)
	e.U8(op)
	e.U64(start)
	e.U16(uint16(sn.cfg.PostsPerRead))
	resp, err := cli.Node.Call(p, sn.lb.Addr(), MSNRelay, e.Bytes())
	if err != nil {
		return err
	}
	d := rpc.NewDec(resp)
	count := int(d.U16())
	for i := 0; i < count; i++ {
		arg := core.DecodeArg(d)
		data, err := cli.C.Open(p, arg)
		if err != nil {
			return err
		}
		buf, err := data.Bytes(p)
		if err != nil {
			return err
		}
		cli.Host.MemTouch(p, len(buf))
		if err := data.Close(p); err != nil {
			return err
		}
	}
	return d.Err()
}

// ReadHome performs one read-home-timeline request (3 data movers).
func (sn *SocialNet) ReadHome(p *sim.Proc) error { return sn.readTimeline(p, snOpHome) }

// ReadUser performs one read-user-timeline request (5 data movers).
func (sn *SocialNet) ReadUser(p *sim.Proc) error { return sn.readTimeline(p, snOpUser) }

// MixedOp returns the paper's 60/30/10 workload mix (§VI-F).
func (sn *SocialNet) MixedOp() workload.Op {
	return workload.Mix(sn.pl.Eng, []workload.Weighted{
		{Weight: 60, Name: "read-home-timeline", Op: sn.ReadHome},
		{Weight: 30, Name: "read-user-timeline", Op: sn.ReadUser},
		{Weight: 10, Name: "compose-post", Op: sn.Compose},
	})
}

// Prepopulate composes n posts before measurement. Must run after
// Platform.Start; it drives the engine until the composes finish.
func (sn *SocialNet) Prepopulate(n int) error {
	var err error
	sn.pl.Eng.Spawn("prepopulate", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if e := sn.Compose(p); e != nil {
				err = e
				return
			}
		}
	})
	sn.pl.Eng.Run()
	return err
}
