package live

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dm"
	"repro/internal/rpc"
)

// startNode serves a node on loopback and returns its address.
func startNode(t *testing.T, n *Node) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := n.Serve(ln); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		n.Close()
		<-done
	})
	return ln.Addr().String()
}

func TestNodeCallRoundTrip(t *testing.T) {
	srv := NewNode()
	srv.Handle(1, func(from net.Addr, body []byte) ([]byte, error) {
		return append([]byte("echo:"), body...), nil
	})
	addr := startNode(t, srv)

	cli := NewNode()
	defer cli.Close()
	resp, err := cli.Call(addr, 1, []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "echo:hi" {
		t.Fatalf("resp %q", resp)
	}
}

func TestNodeUnknownMethod(t *testing.T) {
	srv := NewNode()
	addr := startNode(t, srv)
	cli := NewNode()
	defer cli.Close()
	if _, err := cli.Call(addr, 99, nil); err == nil {
		t.Fatal("unknown method succeeded")
	}
}

func TestNodeHandlerErrorsMapToDmErrors(t *testing.T) {
	srv := NewNode()
	srv.Handle(2, func(from net.Addr, body []byte) ([]byte, error) {
		return nil, dm.ErrOutOfMemory
	})
	srv.Handle(3, func(from net.Addr, body []byte) ([]byte, error) {
		return nil, errors.New("custom failure")
	})
	addr := startNode(t, srv)
	cli := NewNode()
	defer cli.Close()
	if _, err := cli.Call(addr, 2, nil); !errors.Is(err, dm.ErrOutOfMemory) {
		t.Fatalf("dm error lost: %v", err)
	}
	var ae *rpc.AppError
	if _, err := cli.Call(addr, 3, nil); !errors.As(err, &ae) || ae.Msg != "custom failure" {
		t.Fatalf("custom error lost: %v", err)
	}
}

func TestNodeConcurrentCalls(t *testing.T) {
	srv := NewNode()
	srv.Handle(1, func(from net.Addr, body []byte) ([]byte, error) {
		return body, nil
	})
	addr := startNode(t, srv)
	cli := NewNode()
	defer cli.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("msg-%d", i))
			resp, err := cli.Call(addr, 1, msg)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(resp, msg) {
				errs <- fmt.Errorf("cross-talk: %q", resp)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestNodeDuplicateHandlerPanics(t *testing.T) {
	n := NewNode()
	n.Handle(1, func(from net.Addr, body []byte) ([]byte, error) { return nil, nil })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Handle did not panic")
		}
	}()
	n.Handle(1, func(from net.Addr, body []byte) ([]byte, error) { return nil, nil })
}

func TestNodeReconnectsAfterPeerRestart(t *testing.T) {
	srv := NewNode()
	srv.Handle(1, func(from net.Addr, body []byte) ([]byte, error) { return body, nil })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srv.Serve(ln)

	cli := NewNode()
	defer cli.Close()
	if _, err := cli.Call(addr, 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Restart the server on the same address.
	srv.Close()
	srv2 := NewNode()
	srv2.Handle(1, func(from net.Addr, body []byte) ([]byte, error) { return body, nil })
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv2.Serve(ln2) }()
	defer func() { srv2.Close(); <-done }()

	// The client's cached connection is dead; Call must redial.
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		if _, lastErr = cli.Call(addr, 1, []byte("b")); lastErr == nil {
			return
		}
	}
	t.Fatalf("never reconnected: %v", lastErr)
}

// TestLiveMicroservicesEndToEnd runs the paper's flow over real TCP:
// producer -> forwarder -> consumer microservices exchanging a size-aware
// Arg whose payload lives in a live DM server.
func TestLiveMicroservicesEndToEnd(t *testing.T) {
	// The DM pool.
	dmSrv, dmAddr := startServer(t, ServerConfig{NumPages: 1024, PageSize: 4096})

	// Consumer microservice: opens the Arg, checksums the payload.
	consumerDM := dialClient(t, dmAddr)
	consumer := NewNode()
	consumer.Handle(0x0500, func(from net.Addr, body []byte) ([]byte, error) {
		arg := core.DecodeArg(rpc.NewDec(body))
		d, err := consumerDM.Open(arg)
		if err != nil {
			return nil, err
		}
		buf, err := d.Bytes()
		if err != nil {
			return nil, err
		}
		var sum uint64
		for _, b := range buf {
			sum += uint64(b)
		}
		if err := d.Close(); err != nil {
			return nil, err
		}
		return rpc.NewEnc(8).U64(sum).Bytes(), nil
	})
	consumerAddr := startNode(t, consumer)

	// Forwarder microservice: relays the Arg without touching the payload.
	forwarder := NewNode()
	forwarder.Handle(0x0500, func(from net.Addr, body []byte) ([]byte, error) {
		if len(body) > 64 {
			return nil, fmt.Errorf("forwarder saw %dB: payload leaked into the RPC", len(body))
		}
		return forwarder.Call(consumerAddr, 0x0500, body)
	})
	forwarderAddr := startNode(t, forwarder)

	// Producer: stages 64 KiB, sends only the Arg through the chain.
	producerDM := dialClient(t, dmAddr)
	producer := NewNode()
	defer producer.Close()
	payload := make([]byte, 65536)
	var want uint64
	for i := range payload {
		payload[i] = byte(i * 7)
		want += uint64(payload[i])
	}
	arg, err := producerDM.MakeArg(payload, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := rpc.NewEnc(arg.WireSize())
	arg.Encode(e)
	resp, err := producer.Call(forwarderAddr, 0x0500, e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got := rpc.NewDec(resp).U64(); got != want {
		t.Fatalf("checksum %d, want %d", got, want)
	}
	if err := producerDM.Release(arg); err != nil {
		t.Fatal(err)
	}
	if err := dmSrv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
