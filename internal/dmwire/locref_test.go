package dmwire

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/dm"
)

// TestLocatedRefRoundTrip pins both versions of the ref codec: v1 refs
// round-trip with their shard identity, and a legacy v0 wire form (a bare
// 20-byte dm.Ref) still parses — old single-server refs keep working.
func TestLocatedRefRoundTrip(t *testing.T) {
	v1 := Locate(dm.Ref{Server: 1234, Key: 0xdeadbeef, Size: 1 << 20})
	b := v1.Marshal()
	if len(b) != LocatedRefSize {
		t.Fatalf("v1 wire size = %d, want %d", len(b), LocatedRefSize)
	}
	got, err := UnmarshalLocatedRef(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != v1 {
		t.Fatalf("v1 round-trip = %+v, want %+v", got, v1)
	}
	if !got.Located() || got.Shard() != 1234 {
		t.Fatalf("v1 ref not located to shard 1234: %+v", got)
	}

	legacy := dm.Ref{Server: 2, Key: 42, Size: 4096}
	got, err = UnmarshalLocatedRef(legacy.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != RefV0 || got.Ref != legacy {
		t.Fatalf("legacy ref parsed as %+v", got)
	}
	if got.Located() {
		t.Fatal("v0 ref claims to be located")
	}
	if !bytes.Equal(got.Marshal(), legacy.Marshal()) {
		t.Fatal("v0 re-encoding diverges from dm.Ref.Marshal")
	}

	if _, err := UnmarshalLocatedRef([]byte{9, 0, 0}); !errors.Is(err, ErrBadRefVersion) {
		t.Fatalf("unknown version accepted: %v", err)
	}
}

// TestEnvelopeLocatedArg pins the flag-2 located argument form inside
// call envelopes alongside the legacy forms.
func TestEnvelopeLocatedArg(t *testing.T) {
	env := CallEnvelope{
		Method: "m",
		Args: []CallArg{
			{IsRef: true, Located: true, Ref: dm.Ref{Server: 3, Key: 7, Size: 64}},
			{IsRef: true, Ref: dm.Ref{Server: 0, Key: 8, Size: 32}},
			{Inline: []byte("tail")},
		},
	}
	dec, err := UnmarshalCallEnvelope(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Args) != 3 {
		t.Fatalf("decoded %d args, want 3", len(dec.Args))
	}
	if !dec.Args[0].Located || dec.Args[0].Ref.Server != 3 {
		t.Fatalf("located arg lost its shard: %+v", dec.Args[0])
	}
	if dec.Args[1].Located {
		t.Fatalf("v0 ref arg decoded as located: %+v", dec.Args[1])
	}
	if !bytes.Equal(dec.Marshal(), env.Marshal()) {
		t.Fatal("envelope with located arg does not round-trip")
	}
}

// FuzzLocatedRef fuzzes the versioned ref decoder: no input may panic,
// and any accepted body must re-encode prefix-identically (the codec is
// canonical per version).
func FuzzLocatedRef(f *testing.F) {
	f.Add(Locate(dm.Ref{Server: 5, Key: 11, Size: 8192}).Marshal())
	f.Add(dm.Ref{Server: 0, Key: 1, Size: 64}.Marshal())
	f.Add([]byte{RefV1})
	f.Fuzz(func(t *testing.T, body []byte) {
		r, err := UnmarshalLocatedRef(body)
		if err != nil {
			return
		}
		reenc := r.Marshal()
		if len(reenc) > len(body) || !bytes.Equal(reenc, body[:len(reenc)]) {
			t.Fatal("accepted located ref does not round-trip")
		}
	})
}
