package liverpc

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/live"
)

func deployTestChain(t *testing.T, hops int, cfg Config, dmAddrs ...string) *ChainDeployment {
	t.Helper()
	d, err := DeployChain(hops, dmAddrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func TestChainByRefAndByValueAgree(t *testing.T) {
	srv, dmAddr := startDM(t, smallDM())
	payload := make([]byte, 32*1024)
	apps.FillPayload(payload, 7)
	want := apps.Aggregate(payload)

	byRef := deployTestChain(t, 3, Config{InlineThreshold: 1024}, dmAddr)
	got, err := byRef.Client.Do(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("by-ref chain sum = %d, want %d", got, want)
	}

	byVal := deployTestChain(t, 3, Config{ForceInline: true}, dmAddr)
	got, err = byVal.Client.Do(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("by-value chain sum = %d, want %d", got, want)
	}

	// The by-ref run must leave nothing behind once Do released its ref.
	if n := srv.LiveRefs(); n != 0 {
		t.Fatalf("LiveRefs after chain runs = %d, want 0", n)
	}
	if err := srv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSocialNetComposeAndRead(t *testing.T) {
	srv, dmAddr := startDM(t, smallDM())
	dep, err := DeploySocialNet([]string{dmAddr}, Config{InlineThreshold: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	cdm := dialDM(t, dmAddr)
	cl := NewSocialNetClient(cdm, dep.Frontend, Config{InlineThreshold: 256})
	defer cl.Close()

	// Mix of small (inline) and large (by-ref) media.
	sizes := []int{64, 4096, 128, 8192}
	media := make([][]byte, len(sizes))
	for i, sz := range sizes {
		media[i] = make([]byte, sz)
		apps.FillMedia(media[i], uint64(i))
		id, err := cl.Compose(media[i])
		if err != nil {
			t.Fatalf("compose %d: %v", i, err)
		}
		if id != uint64(i) {
			t.Fatalf("compose %d returned id %d", i, id)
		}
	}

	got, err := cl.ReadHome(0, uint16(len(sizes)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sizes) {
		t.Fatalf("ReadHome returned %d posts, want %d", len(got), len(sizes))
	}
	for i, buf := range got {
		if !bytes.Equal(buf, media[i]) {
			t.Fatalf("post %d media mismatch (len %d vs %d)", i, len(buf), len(media[i]))
		}
	}
	if err := srv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSocialNetAdoptSurvivesComposerCrash is the ownership-handoff proof:
// storage adopts composed media under its own DM session, so a post
// remains readable after the composing client dies without cleanup and
// the lease reaper collects its session.
func TestSocialNetAdoptSurvivesComposerCrash(t *testing.T) {
	ttl := 100 * time.Millisecond
	srv, dmAddr := startDM(t, live.ServerConfig{
		NumPages: 256, PageSize: 4096,
		LeaseTTL: ttl, DrainTimeout: 100 * time.Millisecond,
	})
	dep, err := DeploySocialNet([]string{dmAddr}, Config{InlineThreshold: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	// Composer with heartbeats disabled: once it stops calling, its lease
	// silently expires — a crash as far as the server can tell.
	ccfg := live.DefaultClientConfig()
	ccfg.HeartbeatInterval = -1
	cdm, err := live.DialConfig(ccfg, dmAddr)
	if err != nil {
		t.Fatal(err)
	}
	if err := cdm.Register(); err != nil {
		t.Fatal(err)
	}
	composer := NewCaller(cdm, Config{InlineThreshold: 256})

	media := make([]byte, 16*1024) // well above the threshold: travels by ref
	apps.FillMedia(media, 42)
	arg, err := composer.Stage(media)
	if err != nil {
		t.Fatal(err)
	}
	if !arg.IsRef() {
		t.Fatal("media did not stage by ref")
	}
	if _, err := composer.Call(dep.Frontend, SNCompose, arg); err != nil {
		t.Fatal(err)
	}
	// Crash: drop the transport without releasing the staged ref. The
	// composer's own hold dies with its lease; storage's adopted hold on
	// the same frames must not.
	composer.Close()
	cdm.Close()

	// Wait for the reaper to collect the composer's session: its staged
	// ref disappears, leaving exactly storage's adopted ref live.
	deadline := time.Now().Add(20 * ttl)
	for time.Now().Before(deadline) {
		if srv.LiveRefs() == 1 {
			break
		}
		time.Sleep(ttl / 4)
	}
	if n := srv.LiveRefs(); n != 1 {
		t.Fatalf("LiveRefs after composer reap = %d, want 1 (storage's adopted ref)", n)
	}

	rdm := dialDM(t, dmAddr)
	reader := NewSocialNetClient(rdm, dep.Frontend, Config{InlineThreshold: 256})
	defer reader.Close()
	var got [][]byte
	for time.Now().Before(deadline) {
		got, err = reader.ReadHome(0, 1)
		if err == nil {
			break
		}
		time.Sleep(ttl / 4)
	}
	if err != nil {
		t.Fatalf("read after composer crash: %v", err)
	}
	if len(got) != 1 || !bytes.Equal(got[0], media) {
		t.Fatalf("post corrupted after composer reap: got %d posts", len(got))
	}
	if err := srv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
