package pool

import (
	"bytes"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dm"
	"repro/internal/faultnet"
	"repro/internal/live"
)

// TestChaosPartitionOneShard is the pool's failover gauntlet, run under
// -race in make check: three shards serve a concurrent stage/read burst,
// one shard is partitioned mid-burst, and the cluster must
//
//   - keep serving on the survivors throughout (reads of refs staged on
//     them before the partition included),
//   - eject the partitioned shard from the ring once its heartbeats
//     accumulate consecutive failures (observed via the topology
//     callback), after which every new stage succeeds and lands on a
//     survivor,
//   - have the partitioned server reap the client's session within ~1
//     lease TTL (its pages return to the free pool), and
//   - hold D6/D8 conservation on every shard at the end.
func TestChaosPartitionOneShard(t *testing.T) {
	const shards = 3
	const victim = 1
	const leaseTTL = 400 * time.Millisecond

	scfg := live.ServerConfig{NumPages: 1024, PageSize: 4096, LeaseTTL: leaseTTL}
	srvs := make([]*live.Server, shards)
	addrs := make([]string, shards)
	injs := make(map[string]*faultnet.Injector, shards)
	for i := 0; i < shards; i++ {
		srv, addr := startShard(t, uint32(i), scfg)
		srvs[i] = srv
		addrs[i] = addr
		injs[addr] = faultnet.New()
	}

	ejected := make(chan uint32, shards)
	pcfg := Config{
		Shards:         addrs,
		UnhealthyAfter: 2,
		RejoinPoll:     -1, // a reaped session cannot rejoin; don't poll
		OnTopology: func(shard uint32, healthy bool) {
			if !healthy {
				ejected <- shard
			}
		},
	}
	pcfg.Client.HeartbeatInterval = 50 * time.Millisecond
	pcfg.Client.Net.CallTimeout = 500 * time.Millisecond
	pcfg.Client.Net.AttemptTimeout = 100 * time.Millisecond
	pcfg.Client.Net.DialTimeout = 100 * time.Millisecond
	pcfg.Client.Net.Dialer = func(addr string, timeout time.Duration) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return injs[addr].Conn(c), nil
	}
	p, err := Dial(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	if err := p.Register(); err != nil {
		t.Fatal(err)
	}

	body := bytes.Repeat([]byte{0x5a}, 8192)

	// Seed refs on the survivors before any fault, to prove existing
	// placements keep resolving through the partition.
	var seeded []dm.Ref
	for key := uint64(0); len(seeded) < 8; key++ {
		id, _ := p.ring.Lookup(key)
		if id == victim {
			continue
		}
		ref, err := p.StageRefKeyed(key, body)
		if err != nil {
			t.Fatal(err)
		}
		seeded = append(seeded, ref)
	}

	// Concurrent burst: stagers and readers hammer the pool across the
	// partition transition. Errors are expected only on ops routed to the
	// victim between the cut and its ejection.
	var stop atomic.Bool
	var survivorFails atomic.Int64
	partitioned := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				ref, err := p.StageRef(body)
				if err == nil {
					if err := p.ReadRef(ref, 0, make([]byte, len(body))); err != nil && ref.Server != victim {
						survivorFails.Add(1)
					}
					p.FreeRef(ref)
				}
				select {
				case <-partitioned:
					// After the cut, reads of pre-partition survivor refs
					// must keep working.
					sr := seeded[i%len(seeded)]
					if err := p.ReadRef(sr, 0, make([]byte, len(body))); err != nil {
						survivorFails.Add(1)
					}
				default:
				}
			}
		}(g)
	}

	time.Sleep(100 * time.Millisecond) // mid-burst
	injs[addrs[victim]].Partition()
	close(partitioned)

	// The victim's failing heartbeats must eject it from the ring.
	select {
	case id := <-ejected:
		if id != victim {
			t.Fatalf("ejected shard %d, want %d", id, victim)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("partitioned shard was never ejected")
	}
	stop.Store(true)
	wg.Wait()
	if n := survivorFails.Load(); n != 0 {
		t.Fatalf("%d survivor ops failed during the partition", n)
	}

	// Post-ejection, every new stage must succeed and avoid the victim.
	for i := 0; i < 24; i++ {
		ref, err := p.StageRef(body)
		if err != nil {
			t.Fatalf("stage %d after ejection: %v", i, err)
		}
		if ref.Server == victim {
			t.Fatalf("stage %d landed on the ejected shard", i)
		}
		got := make([]byte, len(body))
		if err := p.ReadRef(ref, 0, got); err != nil {
			t.Fatalf("read %d after ejection: %v", i, err)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("read %d wrong bytes", i)
		}
		if err := p.FreeRef(ref); err != nil {
			t.Fatalf("free %d after ejection: %v", i, err)
		}
	}
	if h := p.Healthy(); len(h) != shards-1 {
		t.Fatalf("healthy set %v, want %d survivors", h, shards-1)
	}

	// The victim reaps the dead session within ~1 lease TTL of the cut:
	// everything the pool staged there is reclaimed.
	waitFor(t, 2*leaseTTL+time.Second, "victim lease reap", func() bool {
		return srvs[victim].LiveRefs() == 0 && srvs[victim].FreePages() == scfg.NumPages
	})

	// Conservation on every shard, survivors included.
	for _, ref := range seeded {
		if err := p.FreeRef(ref); err != nil {
			t.Fatal(err)
		}
	}
	checkAllInvariants(t, srvs)
	if st := p.Stats(); st.Retries == 0 || st.HeartbeatFailures == 0 {
		t.Fatalf("chaos run recorded no retries/heartbeat failures: %+v", st)
	}
}
