// Command benchdiff compares two benchfmt JSON perf records (the
// BENCH_*.json files benchjson and dmload write) and flags regressions:
// results are matched by name, the named metrics compared, and any
// change past the threshold in the metric's bad direction fails the run
// with exit status 1 — so a perf record can gate CI the way a test does.
//
// Usage:
//
//	benchdiff old.json new.json
//	benchdiff -metrics ns_per_op,mb_per_sec,hit-rate,p99-ns -threshold 0.10 old.json new.json
//
// Metric names are the benchfmt field tags (ns_per_op, mb_per_sec,
// bytes_per_op, allocs_per_op) or any Extra unit (p99-ns, hit-rate,
// repair-secs, ...). Direction is inferred from the name: throughputs
// (mb_per_sec, hit-rate, and *ops-s* rates) are higher-better,
// everything else — times, bytes, allocs, error counts — lower-better.
// Results present in only one report are reported but do not fail the
// run (benchmarks come and go across PRs); a metric listed in -metrics
// but absent from a matched pair is skipped the same way.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/benchfmt"
)

func main() {
	metrics := flag.String("metrics", "ns_per_op,mb_per_sec", "comma-separated metrics to compare: benchfmt field tags or Extra units")
	threshold := flag.Float64("threshold", 0.10, "relative change in the bad direction that fails the run")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-metrics m1,m2] [-threshold 0.10] old.json new.json")
		os.Exit(2)
	}
	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	oldBy := byName(oldRep)
	regressions := 0
	for _, nr := range newRep.Results {
		or, ok := oldBy[nr.Name]
		if !ok {
			fmt.Printf("%-60s new result (no baseline)\n", nr.Name)
			continue
		}
		delete(oldBy, nr.Name)
		for _, m := range strings.Split(*metrics, ",") {
			m = strings.TrimSpace(m)
			if m == "" {
				continue
			}
			ov, oOK := metric(or, m)
			nv, nOK := metric(nr, m)
			if !oOK || !nOK {
				continue // metric absent on one side: nothing to compare
			}
			if ov == 0 {
				continue // no meaningful relative change from a zero baseline
			}
			rel := (nv - ov) / ov
			bad := rel // lower-better: an increase is the regression
			if higherBetter(m) {
				bad = -rel
			}
			verdict := "ok"
			if bad > *threshold {
				verdict = "REGRESSION"
				regressions++
			}
			fmt.Printf("%-60s %-12s %14g -> %-14g %+7.1f%%  %s\n",
				nr.Name, m, ov, nv, rel*100, verdict)
		}
	}
	for name := range oldBy {
		fmt.Printf("%-60s result vanished from the new report\n", name)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) regressed past %.0f%%\n", regressions, *threshold*100)
		os.Exit(1)
	}
}

func load(path string) (benchfmt.Report, error) {
	var r benchfmt.Report
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// byName indexes a report's results; on a duplicate name the last one
// wins, matching how a reader scanning the file would resolve it.
func byName(r benchfmt.Report) map[string]benchfmt.Result {
	m := make(map[string]benchfmt.Result, len(r.Results))
	for _, res := range r.Results {
		m[res.Name] = res
	}
	return m
}

// metric resolves a named metric on one result: the fixed benchfmt
// fields by their JSON tags, anything else from Extra.
func metric(r benchfmt.Result, name string) (float64, bool) {
	switch name {
	case "ns_per_op":
		return r.NsPerOp, r.NsPerOp != 0
	case "mb_per_sec":
		return r.MBPerSec, r.MBPerSec != 0
	case "bytes_per_op":
		return float64(r.BytesPerOp), r.BytesPerOp != 0
	case "allocs_per_op":
		return float64(r.AllocsPerOp), r.AllocsPerOp != 0
	}
	v, ok := r.Extra[name]
	return v, ok
}

// higherBetter infers a metric's good direction from its name:
// throughput-shaped metrics rise when things improve, everything else
// (latencies, sizes, counts of bad events) falls.
func higherBetter(name string) bool {
	switch name {
	case "mb_per_sec", "hit-rate":
		return true
	}
	return strings.Contains(name, "ops-s") || strings.Contains(name, "ops/s")
}
