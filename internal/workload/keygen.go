package workload

import (
	"math"
	"math/rand/v2"
)

// KeyGen draws keys from a fixed key space [0, N). Implementations are
// deterministic per seed — the same (seed, parameters) always yields the
// same sequence — so a run is reproducible and two harnesses (the
// simulator's and the live cluster's) sampling the same generator see
// the same skew. Generators are NOT safe for concurrent use: give each
// worker its own, seeded with DeriveSeed(seed, workerID).
type KeyGen interface {
	// Next returns the next key in [0, N()).
	Next() uint64
	// N returns the key-space size.
	N() uint64
}

// DeriveSeed mixes a run seed with a worker index into an independent
// per-worker seed (splitmix64 finalizer), so workers share one -seed
// flag without sampling correlated streams.
func DeriveSeed(seed, worker uint64) uint64 {
	z := seed + (worker+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func newRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x6a09e667f3bcc909))
}

// Uniform draws keys uniformly from [0, n).
type Uniform struct {
	n   uint64
	rng *rand.Rand
}

// NewUniform builds a deterministic uniform generator over [0, n).
func NewUniform(n, seed uint64) *Uniform {
	if n == 0 {
		panic("workload: key space must be non-empty")
	}
	return &Uniform{n: n, rng: newRand(seed)}
}

// Next returns the next uniform key.
func (u *Uniform) Next() uint64 { return u.rng.Uint64N(u.n) }

// N returns the key-space size.
func (u *Uniform) N() uint64 { return u.n }

// Zipf draws popularity ranks from a Zipfian distribution over [0, n):
// rank 0 is the hottest key, with P(k) ∝ 1/(k+1)^s. The YCSB-standard
// skew is s=0.99, where the top 1% of a 1M-key space absorbs roughly a
// third of all accesses — the "celebrity post" shape real traffic has.
//
// For s in (0, 1) this is Gray et al.'s rejection-free inverse-CDF
// method (the one YCSB's ZipfianGenerator uses), which the stdlib's
// rand.Zipf (valid only for s > 1) cannot cover; for s > 1 it delegates
// to the stdlib sampler; s == 0 degenerates to uniform and s == 1 is
// nudged to the nearest representable neighbourhood (the harmonic case
// has no closed-form eta).
type Zipf struct {
	n   uint64
	rng *rand.Rand

	// Gray-method state (s < 1).
	theta, zetan, eta, half float64
	// Stdlib sampler (s > 1).
	std *rand.Zipf
	// uniform fallback (s == 0).
	uni bool
}

// NewZipf builds a deterministic Zipfian generator over [0, n) with
// exponent s >= 0.
func NewZipf(n uint64, s float64, seed uint64) *Zipf {
	if n == 0 {
		panic("workload: key space must be non-empty")
	}
	if s < 0 || math.IsNaN(s) {
		panic("workload: Zipf exponent must be >= 0")
	}
	z := &Zipf{n: n, rng: newRand(seed)}
	switch {
	case s == 0:
		z.uni = true
	case s > 1:
		z.std = rand.NewZipf(z.rng, s, 1, n-1)
	default:
		if s == 1 {
			s = math.Nextafter(1, 0) // eta is singular exactly at 1
		}
		z.theta = s
		z.zetan = zeta(n, s)
		z.eta = (1 - math.Pow(2/float64(n), 1-s)) / (1 - zeta(2, s)/z.zetan)
		z.half = 1 + math.Pow(0.5, s)
	}
	return z
}

// zeta returns the generalized harmonic number H_{n,theta}. O(n) but
// computed once per generator; key spaces are at most a few million.
func zeta(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next rank (0 = hottest).
func (z *Zipf) Next() uint64 {
	if z.uni {
		return z.rng.Uint64N(z.n)
	}
	if z.std != nil {
		return z.std.Uint64()
	}
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < z.half {
		return 1
	}
	k := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, 1/(1-z.theta)))
	if k >= z.n {
		k = z.n - 1
	}
	return k
}

// N returns the key-space size.
func (z *Zipf) N() uint64 { return z.n }

// TopMass returns the expected probability mass of the hottest k ranks
// under this generator's skew — the analytic yardstick the skew tests
// (and capacity planning for a hot-ref cache) compare samples against.
// Only meaningful for the Gray-method range (0 < s <= 1); for uniform it
// is k/n.
func (z *Zipf) TopMass(k uint64) float64 {
	if k >= z.n {
		return 1
	}
	if z.uni {
		return float64(k) / float64(z.n)
	}
	return zeta(k, z.theta) / z.zetan
}
