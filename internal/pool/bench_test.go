package pool

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dm"
	"repro/internal/live"
)

// benchCluster spins up k in-process shards and a registered pool.
func benchCluster(b *testing.B, k int) ([]*live.Server, *Client) {
	b.Helper()
	cfg := live.ServerConfig{NumPages: 4096, PageSize: 4096}
	addrs := make([]string, k)
	srvs := make([]*live.Server, k)
	for i := 0; i < k; i++ {
		srvs[i], addrs[i] = startShard(b, uint32(i), cfg)
	}
	p, err := Dial(Config{Shards: addrs})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { p.Close() })
	if err := p.Register(); err != nil {
		b.Fatal(err)
	}
	return srvs, p
}

// BenchmarkPoolStageThroughput measures aggregate stage bandwidth as the
// cluster grows 1 -> 2 -> 4 shards, weak-scaling style: each shard
// brings its own fixed client population (workersPerShard synchronous
// stagers), as each added server would in a real deployment. A single
// synchronous stager per shard is latency-bound — its round trip is
// mostly syscall and scheduler wakeup gaps — so added shards (each an
// independent connection plus stager) overlap those gaps and aggregate
// bandwidth rises with cluster size. The remap-frac metric is the
// deterministic fraction of the keyspace that would move if one more
// shard joined the ring at that size — the consistent-hashing stability
// cost of the next scale-out step.
func BenchmarkPoolStageThroughput(b *testing.B) {
	const payload = 8 << 10
	const workersPerShard = 1
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			_, p := benchCluster(b, k)
			body := make([]byte, payload)
			b.SetBytes(payload)
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workersPerShard*k; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						ref, err := p.StageRef(body)
						if err != nil {
							b.Error(err)
							return
						}
						if err := p.FreeRef(ref); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			r := NewRing(0)
			for id := uint32(0); id < uint32(k); id++ {
				r.Add(id)
			}
			frac := remapFraction(r, 20_000, func() { r.Add(uint32(k)) })
			b.ReportMetric(frac, "remap-frac")
		})
	}
}

// BenchmarkPoolReadRefThroughput measures aggregate by-ref read
// bandwidth under the same weak-scaling population.
func BenchmarkPoolReadRefThroughput(b *testing.B) {
	const payload = 8 << 10
	const workersPerShard = 1
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			_, p := benchCluster(b, k)
			// One resident object per shard; readers fan over them.
			refs := make([]dm.Ref, 0, k)
			for key := uint64(0); len(refs) < k && key < 1<<16; key++ {
				id, _ := p.ring.Lookup(key)
				if int(id) == len(refs) {
					ref, err := p.StageRefKeyed(key, make([]byte, payload))
					if err != nil {
						b.Fatal(err)
					}
					refs = append(refs, ref)
				}
			}
			if len(refs) < k {
				b.Fatalf("could not place one object per shard (%d/%d)", len(refs), k)
			}
			b.SetBytes(payload)
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workersPerShard*k; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					dst := make([]byte, payload)
					for {
						i := next.Add(1)
						if i > int64(b.N) {
							return
						}
						if err := p.ReadRef(refs[int(i)%len(refs)], 0, dst); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}
