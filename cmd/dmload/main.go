// Command dmload is the cluster load harness: it drives a K-shard
// dmserverd cluster — launched in-process or attached over the network —
// with open-loop (Poisson) or closed-loop load through the paper's
// application scenarios (socialnet, kv, blob) at Zipf-skewed popularity,
// optionally crashing and reviving a shard mid-run, and emits a benchfmt
// JSON report (per-scenario and per-class throughput, p50/p99/p999,
// error/retry/failover counters) diffable across PRs next to the
// BENCH_*.json records.
//
// Usage:
//
//	dmload -launch 4 -replicas 2 -scenarios socialnet,kv,blob \
//	       -workers 16 -rate 2000 -duration 10s -out BENCH_load.json
//	dmload -shards host1:7640,host2:7640 -scenarios kv -workers 8
//	dmload -launch 3 -replicas 2 -scenarios kv -kill-shard 1 \
//	       -kill-at 2s -restart-after 3s
//	dmload -launch 3 -replicas 2 -scenarios kv -join-shard -join-at 2s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/live"
	"repro/internal/loadgen"
)

func main() {
	launch := flag.Int("launch", 0, "launch an in-process cluster with this many shards (0 = attach via -shards)")
	shards := flag.String("shards", "", "comma-separated dmserverd addresses to attach to (shard ID = position)")
	pages := flag.Int("pages", 1<<14, "pool pages per launched shard")
	pageSize := flag.Int("pagesize", 4096, "page size per launched shard")
	leaseTTL := flag.Duration("lease-ttl", 2*time.Second, "session lease TTL on launched shards; leasing drives the heartbeats that failure detection needs (0 disables)")
	scenarios := flag.String("scenarios", "socialnet,kv,blob", "comma-separated scenarios to run in order")
	replicas := flag.Int("replicas", 1, "replica factor R for harness sessions")
	workers := flag.Int("workers", 8, "concurrent simulated users per scenario")
	rate := flag.Float64("rate", 0, "offered load in ops/s, Poisson arrivals (0 = closed loop)")
	warmup := flag.Duration("warmup", time.Second, "unrecorded warmup before the measure window")
	duration := flag.Duration("duration", 5*time.Second, "measured window per scenario")
	ramp := flag.Duration("ramp", 0, "linear ramp of the offered rate at run start (open loop)")
	endpoint := flag.String("endpoint", "rr", "worker→endpoint mapping: rr (round-robin) or pin (seeded-random pinning)")
	seed := flag.Uint64("seed", 1, "master seed; workers derive independent streams")
	users := flag.Int("users", 64, "simulated-user population (socialnet authors)")
	keys := flag.Int("keys", 1024, "kv key-space size")
	zipfS := flag.Float64("zipf-s", 0.99, "Zipf skew parameter (0 = uniform)")
	mix := flag.String("mix", "60/30/10", "socialnet compose/read-home/read-user mix, percent")
	mediaSize := flag.Int("media-size", 8<<10, "socialnet post-media bytes")
	frontends := flag.Int("frontends", 2, "socialnet frontend movers")
	valueSize := flag.Int("value-size", 4<<10, "kv value bytes")
	readFrac := flag.Float64("read-frac", 0.9, "kv read fraction")
	blobSizes := flag.String("blob-sizes", "65536,262144,1048576", "comma-separated blob payload sweep, bytes")
	hops := flag.Int("hops", 3, "blob chain length")
	cacheBytes := flag.Int64("cache-bytes", 0, "pool-level hot-ref cache budget in bytes for harness sessions (0 disables); hit counters land in the report")
	heartbeat := flag.Duration("heartbeat", 0, "session heartbeat interval (0 = library default)")
	repairEvery := flag.Duration("repair-interval", 0, "replica repair scan pacing (0 = library default)")
	killShard := flag.Int("kill-shard", -1, "crash this shard during each run (needs -launch)")
	killAt := flag.Duration("kill-at", 2*time.Second, "crash offset from run start")
	restartAfter := flag.Duration("restart-after", 2*time.Second, "revive the shard this long after the crash (0 = stay down)")
	joinShard := flag.Bool("join-shard", false, "grow the cluster by one shard during each run (needs -launch); implies -registry")
	joinAt := flag.Duration("join-at", 2*time.Second, "join offset from run start")
	registry := flag.Bool("registry", false, "publish staged refs to the shard-side registry (DESIGN.md §D16 handoff + anti-entropy)")
	out := flag.String("out", "", "write the JSON report here (empty = stdout)")
	flag.Parse()

	env := &loadgen.Env{
		Replicas:  *replicas,
		Seed:      *seed,
		Users:     *users,
		Keys:      *keys,
		ZipfS:     *zipfS,
		MediaSize: *mediaSize,
		Frontends: *frontends,
		ValueSize: *valueSize,
		ReadFrac:  *readFrac,
		Hops:      *hops,
	}
	// Snappy failure-detection profile: a load harness wants ejection,
	// failover and repair to show up inside a seconds-long run, not the
	// conservative service defaults.
	env.Pool.UnhealthyAfter = 2
	env.Pool.RejoinPoll = 200 * time.Millisecond
	env.Pool.RepairInterval = *repairEvery
	env.Pool.CacheBytes = *cacheBytes
	env.Pool.RegistryHandoff = *registry || *joinShard
	env.Pool.Client.HeartbeatInterval = *heartbeat
	if env.Pool.Client.HeartbeatInterval == 0 {
		env.Pool.Client.HeartbeatInterval = 100 * time.Millisecond
	}
	env.Pool.Client.Net.CallTimeout = 500 * time.Millisecond
	env.Pool.Client.Net.AttemptTimeout = 100 * time.Millisecond
	env.Pool.Client.Net.DialTimeout = 100 * time.Millisecond
	switch *endpoint {
	case "rr":
		env.Endpoint = loadgen.RoundRobin
	case "pin":
		env.Endpoint = loadgen.Pinned
	default:
		log.Fatalf("dmload: unknown -endpoint %q (want rr or pin)", *endpoint)
	}
	if _, err := fmt.Sscanf(*mix, "%d/%d/%d", &env.Mix.Compose, &env.Mix.ReadHome, &env.Mix.ReadUser); err != nil {
		log.Fatalf("dmload: bad -mix %q: %v", *mix, err)
	}
	for _, f := range strings.Split(*blobSizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			log.Fatalf("dmload: bad -blob-sizes entry %q", f)
		}
		env.BlobSizes = append(env.BlobSizes, n)
	}

	var cluster *loadgen.Cluster
	if *launch > 0 {
		scfg := live.ServerConfig{NumPages: *pages, PageSize: *pageSize, LeaseTTL: *leaseTTL}
		c, err := loadgen.Launch(*launch, scfg)
		if err != nil {
			log.Fatal(err)
		}
		cluster = c
		defer cluster.Close()
		env.Shards = c.Addrs
		fmt.Fprintf(os.Stderr, "dmload: launched %d shards x %d pages (%d MiB each)\n",
			*launch, *pages, *pages**pageSize>>20)
	} else {
		if *shards == "" {
			log.Fatal("dmload: need -launch K or -shards addr,addr,...")
		}
		for _, a := range strings.Split(*shards, ",") {
			env.Shards = append(env.Shards, strings.TrimSpace(a))
		}
	}
	env.Defaults()
	defer env.CloseSessions()
	if *killShard >= 0 && cluster == nil {
		log.Fatal("dmload: -kill-shard needs a -launch'ed cluster")
	}
	if *killShard >= len(env.Shards) {
		log.Fatalf("dmload: -kill-shard %d out of range (K=%d)", *killShard, len(env.Shards))
	}
	if *joinShard && cluster == nil {
		log.Fatal("dmload: -join-shard needs a -launch'ed cluster")
	}

	rep := benchfmt.NewReport()
	rep.Env = []string{
		fmt.Sprintf("goos: %s", runtime.GOOS),
		fmt.Sprintf("goarch: %s", runtime.GOARCH),
		fmt.Sprintf("cpus: %d", runtime.NumCPU()),
		fmt.Sprintf("dmload: shards=%d replicas=%d workers=%d rate=%g duration=%s endpoint=%s seed=%d users=%d keys=%d zipf-s=%g mix=%s cache-bytes=%d",
			len(env.Shards), *replicas, *workers, *rate, *duration, *endpoint, *seed, *users, *keys, *zipfS, *mix, *cacheBytes),
	}
	if *killShard >= 0 {
		rep.Env = append(rep.Env, fmt.Sprintf("dmload-fault: kill-shard=%d kill-at=%s restart-after=%s",
			*killShard, *killAt, *restartAfter))
	}
	if *joinShard {
		rep.Env = append(rep.Env, fmt.Sprintf("dmload-fault: join-shard join-at=%s", *joinAt))
	}

	for _, name := range strings.Split(*scenarios, ",") {
		var s loadgen.Scenario
		switch strings.TrimSpace(name) {
		case "socialnet":
			s = loadgen.SocialNet()
		case "kv":
			s = loadgen.KV()
		case "blob":
			s = loadgen.Blob()
		default:
			log.Fatalf("dmload: unknown scenario %q (want socialnet, kv or blob)", name)
		}
		if err := s.Setup(env); err != nil {
			log.Fatalf("dmload: %s setup: %v", s.Name(), err)
		}
		stop := scheduleFault(cluster, *killShard, *killAt, *restartAfter)
		stopJoin := func() {}
		if *joinShard {
			stopJoin = scheduleJoin(cluster, env, *joinAt)
		}
		res, err := loadgen.Run(s, env, loadgen.RunConfig{
			Workers: *workers,
			Rate:    *rate,
			Warmup:  *warmup,
			Measure: *duration,
			Ramp:    *ramp,
			Seed:    *seed,
		})
		stop()
		stopJoin()
		s.Close()
		if err != nil {
			log.Fatalf("dmload: %s run: %v", name, err)
		}
		printResult(res)
		loadgen.Append(&rep, res)
	}

	if *out == "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(append(b, '\n'))
		return
	}
	if err := rep.WriteFile(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dmload: wrote %s\n", *out)
}

// scheduleFault arms the kill/restart timers against the launched
// cluster; the returned stop cancels any not-yet-fired step.
func scheduleFault(c *loadgen.Cluster, shard int, killAt, restartAfter time.Duration) func() {
	if c == nil || shard < 0 {
		return func() {}
	}
	stop := make(chan struct{})
	go func() {
		select {
		case <-time.After(killAt):
		case <-stop:
			return
		}
		fmt.Fprintf(os.Stderr, "dmload: crashing shard %d\n", shard)
		if err := c.Kill(shard); err != nil {
			fmt.Fprintf(os.Stderr, "dmload: kill shard %d: %v\n", shard, err)
			return
		}
		if restartAfter <= 0 {
			return
		}
		select {
		case <-time.After(restartAfter):
		case <-stop:
			return
		}
		fmt.Fprintf(os.Stderr, "dmload: reviving shard %d\n", shard)
		if err := c.Restart(shard); err != nil {
			fmt.Fprintf(os.Stderr, "dmload: restart shard %d: %v\n", shard, err)
		}
	}()
	return func() { close(stop) }
}

// scheduleJoin arms the join-a-shard timer: at joinAt it grows the
// launched cluster by one shard and admits the newcomer to every
// running session, whose rebalancers then migrate remapped refs onto
// it (DESIGN.md §D16). The returned stop cancels a not-yet-fired join
// and waits the goroutine out, so env.Shards is stable again before
// the next scenario's Setup.
func scheduleJoin(c *loadgen.Cluster, env *loadgen.Env, joinAt time.Duration) func() {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-time.After(joinAt):
		case <-stop:
			return
		}
		i, addr, err := c.Join()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmload: join shard: %v\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "dmload: joining shard %d at %s\n", i, addr)
		if err := env.JoinShard(addr); err != nil {
			fmt.Fprintf(os.Stderr, "dmload: admit shard %d: %v\n", i, err)
			return
		}
		env.Shards = append(env.Shards, addr)
	}()
	return func() {
		close(stop)
		<-done
	}
}

// printResult writes the human-readable per-scenario summary to stderr
// (stdout may be carrying the JSON report).
func printResult(res loadgen.RunResult) {
	fmt.Fprintf(os.Stderr, "%s: %d ops in %s (%.0f ops/s", res.Scenario, res.Ops, res.Measure, res.Achieved)
	if res.Offered > 0 {
		fmt.Fprintf(os.Stderr, ", offered %.0f, drops %d", res.Offered, res.Drops)
	}
	fmt.Fprintf(os.Stderr, ") errors=%d\n", res.Errors)
	classes := make([]string, 0, len(res.Classes))
	for class := range res.Classes {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		c := res.Classes[class]
		fmt.Fprintf(os.Stderr, "  %-10s %8d ops  p50=%-10s p99=%-10s p999=%-10s errors=%d\n",
			class, c.Ops, time.Duration(c.Latency.P50), time.Duration(c.Latency.P99),
			time.Duration(c.Latency.P999), c.Errors)
	}
	keys := make([]string, 0, len(res.Counters))
	for k := range res.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		if v := res.Counters[k]; v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	if len(parts) > 0 {
		fmt.Fprintf(os.Stderr, "  counters: %s\n", strings.Join(parts, " "))
	}
}
