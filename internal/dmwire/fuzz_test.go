package dmwire

import (
	"bytes"
	"testing"

	"repro/internal/registry"
)

// FuzzUnmarshal throws arbitrary bodies at every request/response decoder
// in the protocol: none may panic, and any body a decoder accepts must
// re-encode to a prefix-identical wire form (the codecs are
// canonical — no alternative encodings). Seeded with one valid frame per
// codec so the fuzzer starts from the interesting region.
func FuzzUnmarshal(f *testing.F) {
	f.Add(uint8(0), RegisterResp{PID: 7, LeaseMillis: 15000}.Marshal())
	f.Add(uint8(0), RegisterResp{PID: 7, LeaseMillis: 15000, Credits: 256, Epoch: 9}.Marshal())
	f.Add(uint8(0), RegisterResp{PID: 7, LeaseMillis: 15000, Epoch: 1}.Marshal())
	f.Add(uint8(1), AllocReq{PID: 1, Size: 4096}.Marshal())
	f.Add(uint8(2), AllocResp{Addr: 0x1000}.Marshal())
	f.Add(uint8(3), FreeReq{PID: 1, Addr: 0x1000}.Marshal())
	f.Add(uint8(4), CreateRefReq{PID: 1, Addr: 0x1000, Size: 64}.Marshal())
	f.Add(uint8(5), RefKeyResp{Key: 9}.Marshal())
	f.Add(uint8(6), MapRefReq{PID: 1, Key: 9}.Marshal())
	f.Add(uint8(7), MapRefResp{Addr: 0x2000, Size: 64}.Marshal())
	f.Add(uint8(8), FreeRefReq{Key: 9}.Marshal())
	f.Add(uint8(9), ReadReq{PID: 1, Addr: 0x1000, Size: 64}.Marshal())
	f.Add(uint8(10), WriteReq{PID: 1, Addr: 0x1000, Data: []byte("hi")}.Marshal())
	f.Add(uint8(11), StageReq{PID: 1, Data: []byte("hi")}.Marshal())
	f.Add(uint8(12), ReadRefReq{Key: 9, Off: 0, Size: 2}.Marshal())
	f.Add(uint8(13), HeartbeatReq{PID: 1}.Marshal())
	f.Add(uint8(14), HeartbeatResp{LeaseMillis: 100}.Marshal())
	f.Add(uint8(14), HeartbeatResp{LeaseMillis: 100, Credits: 32}.Marshal())
	f.Add(uint8(14), HeartbeatResp{LeaseMillis: 100, Credits: 32, Epoch: 9}.Marshal())
	f.Add(uint8(14), HeartbeatResp{LeaseMillis: 100, Epoch: 1}.Marshal())
	f.Add(uint8(15), Token{CID: 3, Seq: 4}.Marshal())
	f.Add(uint8(16), StageAtReq{PID: 1, Key: ReplicaKeyBit | 9, Data: []byte("hi")}.Marshal())
	f.Add(uint8(17), RegPutReq{Entry: registry.Entry{Key: ReplicaKeyBit | 9, Size: 64, Epoch: 1, Replicas: []uint32{0, 2}}}.Marshal())
	f.Add(uint8(18), RegGetResp{Entry: registry.Entry{Key: ReplicaKeyBit | 9, Size: 64, Epoch: 3, Replicas: []uint32{1}}}.Marshal())
	f.Add(uint8(19), RegSyncResp{Entries: []registry.Entry{
		{Key: ReplicaKeyBit | 9, Size: 64, Epoch: 1, Replicas: []uint32{0, 2}},
		{Key: ReplicaKeyBit | 10, Size: 32, Epoch: 2, Replicas: []uint32{1}},
	}}.Marshal())
	f.Add(uint8(19), RegSyncReq{AfterKey: ReplicaKeyBit, Limit: 256}.Marshal())
	f.Fuzz(func(t *testing.T, which uint8, body []byte) {
		check := func(name string, reenc []byte, err error) {
			t.Helper()
			if err != nil {
				return
			}
			if len(reenc) > len(body) || !bytes.Equal(reenc, body[:len(reenc)]) {
				t.Fatalf("%s: accepted body does not round-trip", name)
			}
		}
		switch which % 20 {
		case 0:
			r, err := UnmarshalRegisterResp(body)
			check("RegisterResp", r.Marshal(), err)
		case 1:
			r, err := UnmarshalAllocReq(body)
			check("AllocReq", r.Marshal(), err)
		case 2:
			r, err := UnmarshalAllocResp(body)
			check("AllocResp", r.Marshal(), err)
		case 3:
			r, err := UnmarshalFreeReq(body)
			check("FreeReq", r.Marshal(), err)
		case 4:
			r, err := UnmarshalCreateRefReq(body)
			check("CreateRefReq", r.Marshal(), err)
		case 5:
			r, err := UnmarshalRefKeyResp(body)
			check("RefKeyResp", r.Marshal(), err)
		case 6:
			r, err := UnmarshalMapRefReq(body)
			check("MapRefReq", r.Marshal(), err)
		case 7:
			r, err := UnmarshalMapRefResp(body)
			check("MapRefResp", r.Marshal(), err)
		case 8:
			r, err := UnmarshalFreeRefReq(body)
			check("FreeRefReq", r.Marshal(), err)
		case 9:
			r, err := UnmarshalReadReq(body)
			check("ReadReq", r.Marshal(), err)
		case 10:
			r, err := UnmarshalWriteReq(body)
			check("WriteReq", r.Marshal(), err)
		case 11:
			r, err := UnmarshalStageReq(body)
			check("StageReq", r.Marshal(), err)
		case 12:
			r, err := UnmarshalReadRefReq(body)
			check("ReadRefReq", r.Marshal(), err)
		case 13:
			r, err := UnmarshalHeartbeatReq(body)
			check("HeartbeatReq", r.Marshal(), err)
		case 14:
			r, err := UnmarshalHeartbeatResp(body)
			check("HeartbeatResp", r.Marshal(), err)
		case 15:
			tok, err := UnmarshalToken(body)
			check("Token", tok.Marshal(), err)
		case 16:
			r, err := UnmarshalStageAtReq(body)
			check("StageAtReq", r.Marshal(), err)
		case 17:
			r, err := UnmarshalRegPutReq(body)
			check("RegPutReq", r.Marshal(), err)
		case 18:
			r, err := UnmarshalRegGetResp(body)
			check("RegGetResp", r.Marshal(), err)
		case 19:
			r, err := UnmarshalRegSyncResp(body)
			check("RegSyncResp", r.Marshal(), err)
			q, err := UnmarshalRegSyncReq(body)
			check("RegSyncReq", q.Marshal(), err)
			g, err := UnmarshalRegGetReq(body)
			check("RegGetReq", g.Marshal(), err)
		}
	})
}

// FuzzStatusRoundTrip pins the error-status mapping: any status byte with
// any message must map to an error (or nil for OK) whose status maps back
// to itself for the statuses the protocol defines.
func FuzzStatusRoundTrip(f *testing.F) {
	for s := byte(0); s <= StatusRefExists; s++ {
		f.Add(s, "boom")
	}
	f.Fuzz(func(t *testing.T, status byte, msg string) {
		err := ErrOf(status, msg)
		if status == StatusOK {
			if err != nil {
				t.Fatalf("StatusOK mapped to %v", err)
			}
			return
		}
		if err == nil {
			t.Fatalf("status %d mapped to nil", status)
		}
		if status <= StatusRefExists {
			if got := StatusOf(err); got != status {
				t.Fatalf("status %d round-tripped to %d", status, got)
			}
		}
	})
}
