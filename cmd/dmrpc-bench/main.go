// Command dmrpc-bench regenerates the paper's evaluation tables and
// figures (§VI) from the simulation.
//
// Usage:
//
//	dmrpc-bench -list
//	dmrpc-bench -experiment fig5a
//	dmrpc-bench -experiment all -scale full
//
// Every experiment prints rows in the same shape the paper plots: systems
// down the side, the swept parameter across, throughput/latency/traffic as
// the measured quantity. EXPERIMENTS.md records the paper-vs-measured
// comparison for each.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	exp := flag.String("experiment", "all", "experiment id (see -list) or 'all'")
	scaleFlag := flag.String("scale", "quick", "measurement windows: quick | full")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	var scale bench.Scale
	switch *scaleFlag {
	case "quick":
		scale = bench.Quick
	case "full":
		scale = bench.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or full)\n", *scaleFlag)
		os.Exit(2)
	}

	run := func(e bench.Experiment) {
		start := time.Now()
		e.Run(os.Stdout, scale)
		fmt.Printf("[%s finished in %v wall time]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range bench.All() {
			run(e)
		}
		return
	}
	e, ok := bench.Find(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	run(e)
}
