package live

import "sync"

// Size-classed frame/payload buffer pool for the live hot path. The TCP
// framing layer allocates one payload buffer per frame on both sides of
// the wire; at data-plane rates that is gigabytes per second of garbage,
// so buffers are recycled through per-class sync.Pools instead.
//
// Ownership rules (DESIGN.md §4 D7):
//   - readFrameBuf hands the payload to its caller, who must putBuf it
//     after the last use of the payload and anything aliasing it.
//   - A buffer sent over a channel (client response dispatch) transfers
//     ownership to the receiver.
//   - Fast (run-to-completion) handlers may return pooled response
//     bodies; the serve loop putBufs them after the response is written.
//     A fast handler's response must therefore never alias its request.
//   - putBuf on a buffer that did not come from getBuf is safe: only
//     slices whose capacity matches a size class are pooled.

const (
	minBufClassBits = 9  // 512 B
	maxBufClassBits = 21 // 2 MiB; larger buffers fall back to make
)

var bufPools [maxBufClassBits - minBufClassBits + 1]sync.Pool

// bufClass returns the smallest class index whose size fits n, or -1 if n
// is larger than every class.
func bufClass(n int) int {
	for c := minBufClassBits; c <= maxBufClassBits; c++ {
		if n <= 1<<c {
			return c - minBufClassBits
		}
	}
	return -1
}

// getBuf returns a length-n buffer, pooled when a size class fits. The
// contents are unspecified: callers overwrite or clear it.
func getBuf(n int) []byte {
	c := bufClass(n)
	if c < 0 {
		return make([]byte, n)
	}
	if v := bufPools[c].Get(); v != nil {
		return v.([]byte)[:n]
	}
	return make([]byte, n, 1<<(c+minBufClassBits))
}

// putBuf recycles a buffer obtained from getBuf. Buffers whose capacity
// does not exactly match a size class (handler-allocated responses, tiny
// codec outputs) are dropped for the GC, which keeps double-pooling of
// re-sliced foreign memory impossible.
func putBuf(b []byte) {
	c := capClass(cap(b))
	if c < 0 {
		return
	}
	bufPools[c].Put(b[:cap(b)])
}

// capClass maps an exact power-of-two capacity to its class, or -1.
func capClass(c int) int {
	if c == 0 || c&(c-1) != 0 {
		return -1
	}
	bits := 0
	for v := c; v > 1; v >>= 1 {
		bits++
	}
	if bits < minBufClassBits || bits > maxBufClassBits {
		return -1
	}
	return bits - minBufClassBits
}
