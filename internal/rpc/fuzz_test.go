package rpc

import (
	"testing"
)

// FuzzDec hardens the wire decoder: arbitrary bytes must never panic, and
// after any error all further reads return zero values.
func FuzzDec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 5, 'h', 'e'})
	f.Add(NewEnc(32).U8(1).U32(2).Str("x").Blob([]byte{9}).Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDec(data)
		_ = d.U8()
		_ = d.U16()
		_ = d.Blob()
		_ = d.Str()
		_ = d.U64()
		if d.Err() != nil {
			// Sticky error: everything after must be zero.
			if d.U32() != 0 || len(d.Blob()) != 0 {
				t.Fatal("reads after error returned data")
			}
		}
	})
}

// FuzzEncDecRoundTrip checks arbitrary field values survive a round trip.
func FuzzEncDecRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint16(2), uint32(3), uint64(4), "s", []byte{5})
	f.Fuzz(func(t *testing.T, a uint8, b uint16, c uint32, d uint64, s string, blob []byte) {
		e := NewEnc(0)
		e.U8(a).U16(b).U32(c).U64(d).Str(s).Blob(blob)
		dec := NewDec(e.Bytes())
		if dec.U8() != a || dec.U16() != b || dec.U32() != c || dec.U64() != d {
			t.Fatal("numeric mismatch")
		}
		if dec.Str() != s || string(dec.Blob()) != string(blob) {
			t.Fatal("bytes mismatch")
		}
		if dec.Err() != nil {
			t.Fatal(dec.Err())
		}
	})
}
