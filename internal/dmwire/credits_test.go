package dmwire

import (
	"bytes"
	"testing"
)

// TestRegisterRespCreditForms pins the three length-disambiguated wire
// forms of the register response and their round-trips: credits force the
// 17-byte extended form (with and without a shard), no credits keep the
// legacy 8/12-byte bodies byte-identical to pre-credit servers.
func TestRegisterRespCreditForms(t *testing.T) {
	for _, tc := range []struct {
		name    string
		r       RegisterResp
		wantLen int
	}{
		{"base", RegisterResp{PID: 7, LeaseMillis: 15000}, 8},
		{"legacy shard", RegisterResp{PID: 7, LeaseMillis: 15000, HasShard: true, Shard: 3}, 12},
		{"credits", RegisterResp{PID: 7, LeaseMillis: 15000, Credits: 256}, 17},
		{"credits+shard", RegisterResp{PID: 9, LeaseMillis: 500, HasShard: true, Shard: 2, Credits: 64}, 17},
		{"credits max", RegisterResp{PID: 1, LeaseMillis: 1, Credits: 1<<32 - 1}, 17},
		{"epoch", RegisterResp{PID: 7, LeaseMillis: 15000, Epoch: 9}, 25},
		{"credits+epoch", RegisterResp{PID: 7, LeaseMillis: 15000, Credits: 256, Epoch: 9}, 25},
		{"credits+epoch+shard", RegisterResp{PID: 9, LeaseMillis: 500, HasShard: true, Shard: 2, Credits: 64, Epoch: 1 << 40}, 25},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.r.Marshal()
			if len(b) != tc.wantLen {
				t.Fatalf("marshalled length = %d, want %d", len(b), tc.wantLen)
			}
			got, err := UnmarshalRegisterResp(b)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.r {
				t.Fatalf("round trip = %+v, want %+v", got, tc.r)
			}
		})
	}
}

// TestRegisterRespLegacyBytesStillDecode: a pre-credit server's exact
// bytes decode with Credits = 0, and the re-encoding reproduces them —
// the interop contract in both directions.
func TestRegisterRespLegacyBytesStillDecode(t *testing.T) {
	legacy := RegisterResp{PID: 42, LeaseMillis: 9000, HasShard: true, Shard: 5}
	b := legacy.Marshal()
	got, err := UnmarshalRegisterResp(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Credits != 0 || got != legacy {
		t.Fatalf("legacy decode = %+v, want %+v with zero credits", got, legacy)
	}
	if !bytes.Equal(got.Marshal(), b) {
		t.Fatal("legacy bytes not reproduced by re-encoding")
	}
}

// TestRegisterRespEpochFoldBack: a 25-byte body whose epoch field is
// zero is non-canonical — canonical encoders only emit the epoch form
// when the epoch is set — so it decodes to the 8-byte base form and its
// re-encoding is a prefix of the input, the fuzz invariant.
func TestRegisterRespEpochFoldBack(t *testing.T) {
	for _, flags := range []byte{registerRespExt | registerRespEpoch, registerRespExt | registerRespEpoch | 1} {
		long := make([]byte, 0, 25)
		long = appendU32(long, 42)   // PID
		long = appendU32(long, 9000) // LeaseMillis
		long = append(long, flags)
		long = appendU32(long, 5)                   // Shard
		long = appendU32(long, 64)                  // Credits
		long = append(long, 0, 0, 0, 0, 0, 0, 0, 0) // epoch = 0
		got, err := UnmarshalRegisterResp(long)
		if err != nil {
			t.Fatal(err)
		}
		want := RegisterResp{PID: 42, LeaseMillis: 9000}
		if got != want {
			t.Fatalf("flags %#x: fold-back decode = %+v, want %+v", flags, got, want)
		}
		reenc := got.Marshal()
		if len(reenc) > len(long) || !bytes.Equal(reenc, long[:len(reenc)]) {
			t.Fatalf("flags %#x: re-encoding is not a prefix of the long form", flags)
		}
	}
}

// TestHeartbeatRespCreditForms: the renewed window rides the heartbeat
// response as a 4-byte suffix, absent when credits are off.
func TestHeartbeatRespCreditForms(t *testing.T) {
	for _, tc := range []struct {
		name    string
		r       HeartbeatResp
		wantLen int
	}{
		{"base", HeartbeatResp{LeaseMillis: 250}, 4},
		{"credits", HeartbeatResp{LeaseMillis: 250, Credits: 128}, 8},
		{"epoch", HeartbeatResp{LeaseMillis: 250, Epoch: 7}, 16},
		{"credits+epoch", HeartbeatResp{LeaseMillis: 250, Credits: 128, Epoch: 1 << 40}, 16},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.r.Marshal()
			if len(b) != tc.wantLen {
				t.Fatalf("marshalled length = %d, want %d", len(b), tc.wantLen)
			}
			got, err := UnmarshalHeartbeatResp(b)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.r {
				t.Fatalf("round trip = %+v, want %+v", got, tc.r)
			}
		})
	}
}

// TestHeartbeatRespEpochFoldBack: a 16-byte body carrying an explicit
// zero epoch is non-canonical — it decodes to the shorter form and its
// re-encoding is a prefix of the input, which is the invariant the
// fuzz target enforces for every accepted body.
func TestHeartbeatRespEpochFoldBack(t *testing.T) {
	for _, tc := range []struct {
		name string
		r    HeartbeatResp
	}{
		{"zero epoch zero credits", HeartbeatResp{LeaseMillis: 300}},
		{"zero epoch with credits", HeartbeatResp{LeaseMillis: 300, Credits: 64}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			long := make([]byte, 0, 16)
			long = append(long, tc.r.Marshal()[:4]...)
			long = appendU32(long, tc.r.Credits)
			long = append(long, 0, 0, 0, 0, 0, 0, 0, 0) // epoch = 0
			got, err := UnmarshalHeartbeatResp(long)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.r {
				t.Fatalf("fold-back decode = %+v, want %+v", got, tc.r)
			}
			reenc := got.Marshal()
			if len(reenc) > len(long) || !bytes.Equal(reenc, long[:len(reenc)]) {
				t.Fatal("re-encoding is not a prefix of the long form")
			}
		})
	}
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
