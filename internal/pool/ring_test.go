package pool

import "testing"

// TestRingDeterministic pins that ring layout and lookups are pure
// functions of membership — two independently built rings agree on every
// key, which is what lets separate processes resolve the same located
// refs.
func TestRingDeterministic(t *testing.T) {
	a, b := NewRing(64), NewRing(64)
	for id := uint32(0); id < 5; id++ {
		a.Add(id)
	}
	// Different insertion order must not matter.
	for id := int32(4); id >= 0; id-- {
		b.Add(uint32(id))
	}
	for key := uint64(0); key < 10_000; key++ {
		sa, oka := a.Lookup(key)
		sb, okb := b.Lookup(key)
		if !oka || !okb || sa != sb {
			t.Fatalf("key %d: ring A -> (%d,%v), ring B -> (%d,%v)", key, sa, oka, sb, okb)
		}
	}
}

// TestRingDistribution checks placement balance: N sequential keys over
// K shards, each shard within ±15% of the uniform share. Deterministic
// (fixed hash, no seed), so a pass here is a pass everywhere.
func TestRingDistribution(t *testing.T) {
	const keys, shards = 100_000, 4
	r := NewRing(0) // DefaultVnodes
	for id := uint32(0); id < shards; id++ {
		r.Add(id)
	}
	counts := make([]int, shards)
	for key := uint64(0); key < keys; key++ {
		id, ok := r.Lookup(key)
		if !ok {
			t.Fatal("lookup failed on a populated ring")
		}
		counts[id]++
	}
	want := float64(keys) / shards
	for id, n := range counts {
		if dev := (float64(n) - want) / want; dev < -0.15 || dev > 0.15 {
			t.Fatalf("shard %d holds %d of %d keys (%.1f%% off uniform; counts %v)",
				id, n, keys, dev*100, counts)
		}
	}
}

// remapFraction measures how many of n keys move when mutate changes the
// ring.
func remapFraction(r *Ring, n uint64, mutate func()) float64 {
	before := make([]uint32, n)
	for key := uint64(0); key < n; key++ {
		before[key], _ = r.Lookup(key)
	}
	mutate()
	moved := 0
	for key := uint64(0); key < n; key++ {
		if after, ok := r.Lookup(key); !ok || after != before[key] {
			moved++
		}
	}
	return float64(moved) / float64(n)
}

// TestRingRemapFraction pins consistent hashing's stability property:
// joining a (K+1)th shard remaps about 1/(K+1) of the keyspace, and
// removing one member of K remaps about 1/K — never the wholesale
// reshuffle modulo-hashing would cause. Bounds allow 1.5x the ideal
// fraction for vnode-sampling noise.
func TestRingRemapFraction(t *testing.T) {
	const keys = 50_000
	r := NewRing(0)
	for id := uint32(0); id < 3; id++ {
		r.Add(id)
	}
	if f := remapFraction(r, keys, func() { r.Add(3) }); f > 1.5/4 {
		t.Fatalf("join remapped %.1f%% of keys, want <= %.1f%%", f*100, 100*1.5/4)
	}
	// A join can only move keys ONTO the new shard; sanity-check it got a
	// meaningful share.
	if f := remapFraction(r, keys, func() { r.Remove(1) }); f > 1.5/4 {
		t.Fatalf("leave remapped %.1f%% of keys, want <= %.1f%%", f*100, 100*1.5/4)
	}
	if r.Contains(1) || r.Size() != 3 {
		t.Fatalf("membership after remove: %v", r.Members())
	}
	// Keys never resolve to an ejected member.
	for key := uint64(0); key < keys; key++ {
		if id, _ := r.Lookup(key); id == 1 {
			t.Fatalf("key %d resolved to removed shard", key)
		}
	}
}

// TestRingSuccessors pins the replica-placement walk: Successors(key, 1)
// agrees with Lookup on every key, Successors(key, n) returns n DISTINCT
// shards (adjacent vnodes of one shard must collapse), asking for more
// shards than exist returns every member, and the set is deterministic
// across independently built rings — the property that lets any client
// recompute a replicated ref's placement from its bare key.
func TestRingSuccessors(t *testing.T) {
	const shards = 5
	a, b := NewRing(0), NewRing(0)
	for id := uint32(0); id < shards; id++ {
		a.Add(id)
		b.Add(shards - 1 - id) // reverse insertion order
	}
	for key := uint64(0); key < 10_000; key++ {
		one := a.Successors(key, 1)
		if own, _ := a.Lookup(key); len(one) != 1 || one[0] != own {
			t.Fatalf("key %d: Successors(1)=%v, Lookup=%d", key, one, own)
		}
		succ := a.Successors(key, 3)
		if len(succ) != 3 {
			t.Fatalf("key %d: got %d successors, want 3", key, len(succ))
		}
		seen := map[uint32]struct{}{}
		for _, id := range succ {
			if _, dup := seen[id]; dup {
				t.Fatalf("key %d: duplicate shard %d in successor set %v", key, id, succ)
			}
			seen[id] = struct{}{}
		}
		if other := b.Successors(key, 3); len(other) != 3 ||
			other[0] != succ[0] || other[1] != succ[1] || other[2] != succ[2] {
			t.Fatalf("key %d: rings disagree: %v vs %v", key, succ, other)
		}
		if all := a.Successors(key, shards+3); len(all) != shards {
			t.Fatalf("key %d: over-asking returned %d shards, want %d", key, len(all), shards)
		}
	}
	if a.Successors(1, 0) != nil {
		t.Fatal("Successors(key, 0) != nil")
	}
	if NewRing(8).Successors(1, 2) != nil {
		t.Fatal("Successors on empty ring != nil")
	}
}

// successorRemapFraction measures how many of n keys change their R-way
// successor SET when mutate changes the ring.
func successorRemapFraction(r *Ring, n uint64, rf int, mutate func()) float64 {
	before := make([][]uint32, n)
	for key := uint64(0); key < n; key++ {
		before[key] = r.Successors(key, rf)
	}
	mutate()
	moved := 0
	for key := uint64(0); key < n; key++ {
		after := r.Successors(key, rf)
		same := len(after) == len(before[key])
		for i := 0; same && i < len(after); i++ {
			same = after[i] == before[key][i]
		}
		if !same {
			moved++
		}
	}
	return float64(moved) / float64(n)
}

// TestRingSuccessorSetRemap extends the stability property to replica
// SETS: with R=2 over K shards, a membership change disturbs a key's
// successor set only when the changed shard enters or leaves its first R
// positions — about R/K of the keyspace, never a wholesale reshuffle.
// Bounds allow 1.5x the ideal fraction for vnode-sampling noise.
func TestRingSuccessorSetRemap(t *testing.T) {
	const keys, rf = 50_000, 2
	r := NewRing(0)
	for id := uint32(0); id < 4; id++ {
		r.Add(id)
	}
	join := successorRemapFraction(r, keys, rf, func() { r.Add(4) })
	if join > 1.5*rf/5 || join == 0 {
		t.Fatalf("join remapped %.1f%% of successor sets, want (0, %.1f%%]", join*100, 100*1.5*rf/5)
	}
	leave := successorRemapFraction(r, keys, rf, func() { r.Remove(1) })
	if leave > 1.5*rf/5 || leave == 0 {
		t.Fatalf("leave remapped %.1f%% of successor sets, want (0, %.1f%%]", leave*100, 100*1.5*rf/5)
	}
}

// TestRingEmptyAndRejoin covers the edges: empty ring lookups fail,
// and remove-then-add restores the exact prior layout.
func TestRingEmptyAndRejoin(t *testing.T) {
	r := NewRing(32)
	if _, ok := r.Lookup(1); ok {
		t.Fatal("lookup on empty ring succeeded")
	}
	for id := uint32(0); id < 3; id++ {
		r.Add(id)
	}
	before := make([]uint32, 1000)
	for key := range before {
		before[key], _ = r.Lookup(uint64(key))
	}
	r.Remove(2)
	r.Add(2)
	for key := range before {
		if after, _ := r.Lookup(uint64(key)); after != before[key] {
			t.Fatalf("key %d moved from %d to %d across remove+rejoin", key, before[key], after)
		}
	}
}
