package live

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dm"
)

// transportSetup starts a loopback server and a fresh registered client
// whose latency histogram covers only this benchmark (heartbeats off so
// renewal RPCs never pollute the percentiles).
func transportSetup(b *testing.B, scfg ServerConfig) (*Server, *Client) {
	b.Helper()
	srv, addr := benchServer(b, scfg)
	ccfg := DefaultClientConfig()
	ccfg.HeartbeatInterval = -1
	cl, err := DialConfig(ccfg, addr)
	if err != nil {
		b.Fatal(err)
	}
	if err := cl.Register(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cl.Close() })
	return srv, cl
}

// reportLatency attaches the client's per-op latency percentiles to the
// benchmark result. The p50-ns/p99-ns/p999-ns units land in benchjson's
// Extra map; `make bench-transport` requires all three on every result.
func reportLatency(b *testing.B, cl *Client) {
	b.Helper()
	s := cl.Latency()
	b.ReportMetric(float64(s.P50), "p50-ns")
	b.ReportMetric(float64(s.P99), "p99-ns")
	b.ReportMetric(float64(s.P999), "p999-ns")
}

// BenchmarkTransportSmallOpClosedLoop is the closed-loop latency probe:
// `workers` goroutines share one connection, each running a synchronous
// 4 KiB StageRef+ReadRef+FreeRef cycle and never holding more than one
// request in flight. Tail percentiles here expose head-of-line blocking
// in the coalescing writer and dispatch path rather than queueing delay.
func BenchmarkTransportSmallOpClosedLoop(b *testing.B) {
	const size = 4096
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("clients=%d", workers), func(b *testing.B) {
			_, cl := transportSetup(b, ServerConfig{NumPages: 1 << 15, PageSize: 4096})
			payload := make([]byte, size)
			b.SetBytes(2 * size)
			var iters atomic.Int64
			iters.Store(int64(b.N))
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			b.ResetTimer()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					buf := make([]byte, size)
					for iters.Add(-1) >= 0 {
						ref, err := cl.StageRef(payload)
						if err != nil {
							errs <- err
							return
						}
						if err := cl.ReadRef(ref, 0, buf); err != nil {
							errs <- err
							return
						}
						if err := cl.FreeRef(ref); err != nil {
							errs <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			close(errs)
			for err := range errs {
				b.Fatal(err)
			}
			reportLatency(b, cl)
		})
	}
}

// BenchmarkTransportAsyncOpenLoop is the open-loop counterpart: a single
// caller keeps a deep ring of WriteAsync futures in flight, so submission
// outruns completion and ops queue behind the credit gate and coalescing
// writer. The p99/p999 spread versus the closed-loop probe is the
// queueing delay the credit window is meant to bound.
func BenchmarkTransportAsyncOpenLoop(b *testing.B) {
	const size = 4096
	for _, depth := range []int{16, 64} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			_, cl := transportSetup(b, ServerConfig{NumPages: 1 << 15, PageSize: 4096})
			a, err := cl.Alloc(size)
			if err != nil {
				b.Fatal(err)
			}
			src := make([]byte, size)
			b.SetBytes(size)
			b.ResetTimer()
			ring := make([]*AsyncOp, 0, depth)
			for i := 0; i < b.N; i++ {
				if len(ring) == depth {
					if err := ring[0].Wait(); err != nil {
						b.Fatal(err)
					}
					ring = ring[1:]
				}
				ring = append(ring, cl.WriteAsync(a, src))
			}
			for _, op := range ring {
				if err := op.Wait(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportLatency(b, cl)
		})
	}
}

// benchDelivered keeps the copy-mode destination alive across iterations
// so escape analysis cannot quietly stack-allocate what a real caller
// retaining the payload would put on the heap.
var benchDelivered []byte

// BenchmarkTransportReadRefDelivery contrasts the two delivery modes for
// a resident 32 KiB object. "copy" models the legacy caller that retains
// the data: a fresh destination slice per op, filled by ReadRef. "lease"
// delivers the pooled response frame itself via ReadRefLease and returns
// it with Release, so the steady state allocates no payload-sized memory
// at all — B/op and allocs/op must come out lower than the copy row in
// the same run.
func BenchmarkTransportReadRefDelivery(b *testing.B) {
	const size = 32768
	stage := func(b *testing.B, cl *Client) dm.Ref {
		b.Helper()
		ref, err := cl.StageRef(make([]byte, size))
		if err != nil {
			b.Fatal(err)
		}
		return ref
	}
	b.Run("copy", func(b *testing.B) {
		_, cl := transportSetup(b, ServerConfig{NumPages: 1 << 15, PageSize: 4096})
		ref := stage(b, cl)
		b.SetBytes(size)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst := make([]byte, size)
			if err := cl.ReadRef(ref, 0, dst); err != nil {
				b.Fatal(err)
			}
			if dst[0] != 0 {
				b.Fatal("corrupt read")
			}
			benchDelivered = dst
		}
		b.StopTimer()
		reportLatency(b, cl)
	})
	b.Run("lease", func(b *testing.B) {
		_, cl := transportSetup(b, ServerConfig{NumPages: 1 << 15, PageSize: 4096})
		ref := stage(b, cl)
		b.SetBytes(size)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf, err := cl.ReadRefLease(ref, 0, size)
			if err != nil {
				b.Fatal(err)
			}
			if buf.Bytes()[0] != 0 {
				b.Fatal("corrupt read")
			}
			buf.Release()
		}
		b.StopTimer()
		reportLatency(b, cl)
		if n := LeasedBufs(); n != 0 {
			b.Fatalf("leaked %d leased buffers", n)
		}
	})
}
