package bench

import (
	"strings"
	"testing"

	"repro/internal/msvc"
)

// These tests assert the paper's qualitative shapes — who wins, in which
// regime, and in roughly what direction — on Quick-scale runs. Absolute
// numbers are not asserted (see EXPERIMENTS.md for the measured values).

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation")
	}
	r := Fig5(Quick)
	get := func(m msvc.Mode, hops int) Fig5Row {
		row, ok := r.Get(m, hops)
		if !ok {
			t.Fatalf("missing row %v/%d", m, hops)
		}
		return row
	}
	// At one hop, eRPC throughput beats DmRPC-net (pass by value wins for
	// a single transfer; paper: "except for only 1 RPC call").
	if get(msvc.ModeERPC, 1).Throughput < get(msvc.ModeDmNet, 1).Throughput {
		t.Error("eRPC should win at 1 hop")
	}
	// For deeper chains DmRPC-net overtakes eRPC, and DmRPC-CXL leads.
	for _, hops := range []int{5, 7} {
		e, n, c := get(msvc.ModeERPC, hops), get(msvc.ModeDmNet, hops), get(msvc.ModeDmCXL, hops)
		if n.Throughput <= e.Throughput {
			t.Errorf("hops=%d: DmRPC-net %.0f <= eRPC %.0f", hops, n.Throughput, e.Throughput)
		}
		if c.Throughput <= n.Throughput {
			t.Errorf("hops=%d: DmRPC-CXL %.0f <= DmRPC-net %.0f", hops, c.Throughput, n.Throughput)
		}
		// Latency ordering mirrors it (Fig 5b).
		if n.AvgLatency >= e.AvgLatency {
			t.Errorf("hops=%d: DmRPC-net latency %d >= eRPC %d", hops, n.AvgLatency, e.AvgLatency)
		}
		if c.AvgLatency >= n.AvgLatency {
			t.Errorf("hops=%d: DmRPC-CXL latency %d >= DmRPC-net %d", hops, c.AvgLatency, n.AvgLatency)
		}
	}
	// eRPC's relative decay with chain length is steeper than DmRPC-net's
	// (the paper's "merely change" vs "decreases").
	eDecay := get(msvc.ModeERPC, 1).Throughput / get(msvc.ModeERPC, 7).Throughput
	nDecay := get(msvc.ModeDmNet, 1).Throughput / get(msvc.ModeDmNet, 7).Throughput
	if eDecay < 1.3*nDecay {
		t.Errorf("eRPC decay %.2fx not clearly steeper than DmRPC-net %.2fx", eDecay, nDecay)
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation")
	}
	r := Fig6(Quick)
	const size = 32768
	e, _ := r.Get(msvc.ModeERPC, size)
	n, _ := r.Get(msvc.ModeDmNet, size)
	c, _ := r.Get(msvc.ModeDmCXL, size)
	// DmRPC forwards refs: the LB's memory traffic per request is tiny;
	// eRPC's scales with the payload.
	if e.LBMemBytesPerReq < size {
		t.Errorf("eRPC LB mem/req = %d, want >= %d", e.LBMemBytesPerReq, size)
	}
	if n.LBMemBytesPerReq > size/8 {
		t.Errorf("DmRPC-net LB mem/req = %d, want tiny", n.LBMemBytesPerReq)
	}
	if c.LBMemBytesPerReq > size/8 {
		t.Errorf("DmRPC-CXL LB mem/req = %d, want tiny", c.LBMemBytesPerReq)
	}
	// And the DmRPC LB sustains a higher request rate at large payloads.
	if n.Throughput <= e.Throughput {
		t.Errorf("DmRPC-net LB rate %.0f <= eRPC %.0f at 32KiB", n.Throughput, e.Throughput)
	}
	// eRPC LB memory traffic grows with request size (Fig 6b trend).
	e4, _ := r.Get(msvc.ModeERPC, 4096)
	if e.LBMemBytesPerReq <= e4.LBMemBytesPerReq {
		t.Error("eRPC LB memory traffic should grow with request size")
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation")
	}
	r := Fig7(Quick)
	const big = 262144
	for _, sys := range []string{"DmRPC-net", "DmRPC-CXL"} {
		cow, ok1 := r.Get(sys, big)
		cp, ok2 := r.Get(sys+"-copy", big)
		if !ok1 || !ok2 {
			t.Fatalf("missing rows for %s", sys)
		}
		// CoW create_ref must be several times faster than unconditional
		// copy at large sizes (paper: up to 7.3x net / 22.8x CXL).
		if cow.Rate < 3*cp.Rate {
			t.Errorf("%s: CoW rate %.0f not >> copy rate %.0f", sys, cow.Rate, cp.Rate)
		}
		if cow.AvgLatency*3 > cp.AvgLatency {
			t.Errorf("%s: CoW latency %d not << copy latency %d", sys, cow.AvgLatency, cp.AvgLatency)
		}
		// Fig 7c: memory traffic per request with CoW is orders of
		// magnitude below the copy variant.
		if cow.TrafficPerReq*100 > cp.TrafficPerReq {
			t.Errorf("%s: CoW traffic %d not << copy traffic %d", sys, cow.TrafficPerReq, cp.TrafficPerReq)
		}
	}
	// The advantage grows with request size.
	for _, sys := range []string{"DmRPC-net", "DmRPC-CXL"} {
		cowS, _ := r.Get(sys, 4096)
		cpS, _ := r.Get(sys+"-copy", 4096)
		cowL, _ := r.Get(sys, big)
		cpL, _ := r.Get(sys+"-copy", big)
		if cowL.Rate/cpL.Rate <= cowS.Rate/cpS.Rate {
			t.Errorf("%s: CoW advantage should grow with size", sys)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation")
	}
	r := Fig8(Quick)
	get := func(sys string, pct int) Fig8Row {
		row, ok := r.Get(sys, pct)
		if !ok {
			t.Fatalf("missing row %s/%d", sys, pct)
		}
		return row
	}
	// DmRPC beats Ray beats Spark at every write percentage.
	for _, pct := range []int{0, 50, 100} {
		ray, spark := get("Ray", pct), get("Spark", pct)
		if ray.Throughput <= spark.Throughput {
			t.Errorf("pct=%d: Ray %.0f <= Spark %.0f", pct, ray.Throughput, spark.Throughput)
		}
		for _, sys := range []string{"DmRPC-net", "DmRPC-CXL"} {
			if get(sys, pct).Throughput <= ray.Throughput {
				t.Errorf("pct=%d: %s <= Ray", pct, sys)
			}
		}
	}
	// DmRPC throughput decreases with write percentage (CoW copies);
	// Ray/Spark stay flat (unconditional copies regardless).
	for _, sys := range []string{"DmRPC-net", "DmRPC-CXL"} {
		if get(sys, 100).Throughput >= get(sys, 0).Throughput {
			t.Errorf("%s: throughput should decay with write%%", sys)
		}
	}
	rayVar := get("Ray", 100).Throughput / get("Ray", 0).Throughput
	if rayVar < 0.9 || rayVar > 1.1 {
		t.Errorf("Ray throughput should be flat across write%%, got ratio %.2f", rayVar)
	}
	// Headline margins: at 0%% writes the paper reports large gaps.
	if get("DmRPC-CXL", 0).Throughput < 10*get("Ray", 0).Throughput {
		t.Error("DmRPC-CXL should be >= 10x Ray at 0% writes")
	}
	if get("DmRPC-net", 0).Throughput < 4*get("Ray", 0).Throughput {
		t.Error("DmRPC-net should be >= 4x Ray at 0% writes")
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation")
	}
	ra := Fig10a(Quick)
	const big = 32768
	e, _ := ra.Get(msvc.ModeERPC, big)
	n, _ := ra.Get(msvc.ModeDmNet, big)
	c, _ := ra.Get(msvc.ModeDmCXL, big)
	// At large images DmRPC-net and DmRPC-CXL clearly beat eRPC (paper:
	// 4.2x and 8.3x).
	if n.Throughput < 1.5*e.Throughput {
		t.Errorf("DmRPC-net %.0f not >= 1.5x eRPC %.0f at 32KiB", n.Throughput, e.Throughput)
	}
	if c.Throughput < n.Throughput {
		t.Errorf("DmRPC-CXL %.0f below DmRPC-net %.0f at 32KiB", c.Throughput, n.Throughput)
	}
	// DmRPC gains grow with image size.
	n1, _ := ra.Get(msvc.ModeDmNet, 1024)
	e1, _ := ra.Get(msvc.ModeERPC, 1024)
	if n.Throughput/e.Throughput <= n1.Throughput/e1.Throughput {
		t.Error("DmRPC-net advantage should grow with image size")
	}

	rb := Fig10b(Quick)
	eb, _ := rb.Get(msvc.ModeERPC)
	nb, _ := rb.Get(msvc.ModeDmNet)
	cb, _ := rb.Get(msvc.ModeDmCXL)
	// Latency ordering at 4KiB: CXL < net < eRPC (paper: 1.7x / 1.1x).
	if nb.Latency.Mean >= eb.Latency.Mean {
		t.Errorf("DmRPC-net avg %.0f >= eRPC %.0f", nb.Latency.Mean, eb.Latency.Mean)
	}
	if cb.Latency.Mean >= nb.Latency.Mean {
		t.Errorf("DmRPC-CXL avg %.0f >= DmRPC-net %.0f", cb.Latency.Mean, nb.Latency.Mean)
	}
}

func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation")
	}
	r := Fig11(Quick)
	// DmRPC-net sustains a higher request rate than eRPC (paper: 3.1x).
	eMax := r.MaxUnsaturatedRate(msvc.ModeERPC)
	nMax := r.MaxUnsaturatedRate(msvc.ModeDmNet)
	if nMax <= eMax {
		t.Errorf("DmRPC-net max rate %.0f <= eRPC %.0f", nMax, eMax)
	}
	// At the lowest common offered rate, DmRPC-net latency is lower.
	low := r.Rows[0].Offered
	e, ok1 := r.Get(msvc.ModeERPC, low)
	n, ok2 := r.Get(msvc.ModeDmNet, low)
	if !ok1 || !ok2 {
		t.Fatal("missing low-rate rows")
	}
	if n.AvgNs >= e.AvgNs {
		t.Errorf("DmRPC-net avg %d >= eRPC %d at light load", n.AvgNs, e.AvgNs)
	}
	if n.P99Ns >= e.P99Ns {
		t.Errorf("DmRPC-net p99 %d >= eRPC %d at light load", n.P99Ns, e.P99Ns)
	}
}

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation")
	}
	for _, r := range []Fig12Result{Fig12a(Quick), Fig12b(Quick)} {
		if len(r.Rows) < 3 {
			t.Fatalf("%s: too few rows", r.Title)
		}
		// Throughput decreases mildly and monotonically-ish with latency:
		// the last point is below the first but not collapsed (paper:
		// "slightly decreases").
		first := r.Rows[0].Normalized
		last := r.Rows[len(r.Rows)-1].Normalized
		if first != 1 {
			t.Errorf("%s: first point not normalized to 1", r.Title)
		}
		if last >= 1 {
			t.Errorf("%s: no decrease across the latency sweep", r.Title)
		}
		if last < 0.4 {
			t.Errorf("%s: collapse (%.2f) contradicts 'slightly decreases'", r.Title, last)
		}
	}
}

func TestAblationTranslationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation")
	}
	r := AblationTranslation(Quick)
	// The paper reports 0.17%; anything clearly under a few percent
	// supports the claim that software translation is negligible.
	if r.SharePct < 0 || r.SharePct > 3 {
		t.Errorf("translation share %.3f%%, want < 3%%", r.SharePct)
	}
	if r.AccessNs <= r.BaselineNs {
		t.Error("translation must add nonzero time")
	}
}

func TestAblationSizeAwareShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation")
	}
	r := AblationSizeAware(Quick)
	// Small payloads: pass by value wins; large payloads: pass by
	// reference wins; size-aware tracks the winner in both regimes.
	small, large := 256, 32768
	valS, _ := r.Get("always-value", small)
	refS, _ := r.Get("always-ref", small)
	awS, _ := r.Get("size-aware", small)
	if valS.Throughput <= refS.Throughput {
		t.Errorf("at %dB pass-by-value %.0f should beat pass-by-ref %.0f", small, valS.Throughput, refS.Throughput)
	}
	valL, _ := r.Get("always-value", large)
	refL, _ := r.Get("always-ref", large)
	awL, _ := r.Get("size-aware", large)
	if refL.Throughput <= valL.Throughput {
		t.Errorf("at %dB pass-by-ref %.0f should beat pass-by-value %.0f", large, refL.Throughput, valL.Throughput)
	}
	if awS.Throughput < 0.7*valS.Throughput {
		t.Errorf("size-aware not tracking value winner at %dB", small)
	}
	if awL.Throughput < 0.7*refL.Throughput {
		t.Errorf("size-aware not tracking ref winner at %dB", large)
	}
}

func TestAblationDMScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation")
	}
	r := AblationDMScale(Quick)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// More memory servers must raise staging throughput meaningfully.
	if r.Rows[1].Throughput < 1.3*r.Rows[0].Throughput {
		t.Errorf("2 servers %.0f not >= 1.3x 1 server %.0f",
			r.Rows[1].Throughput, r.Rows[0].Throughput)
	}
	if r.Rows[2].Throughput < r.Rows[1].Throughput {
		t.Errorf("4 servers %.0f below 2 servers %.0f",
			r.Rows[2].Throughput, r.Rows[1].Throughput)
	}
}

// TestExperimentsAreDeterministic: the entire stack — engine, network,
// transport, DM backends, workload generators — must give byte-identical
// results across runs with the same seed.
func TestExperimentsAreDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation")
	}
	a := Fig8(Quick)
	b := Fig8(Quick)
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("run diverged at row %d: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
}

func TestAllExperimentsRegisteredAndPrintable(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"fig5a", "fig5b", "fig6", "fig7a", "fig7b", "fig7c",
		"fig8a", "fig8b", "fig10a", "fig10b", "fig11", "fig12a", "fig12b", "sec5a2",
		"abl-sizeaware", "abl-dmscale"} {
		if !ids[want] {
			t.Errorf("experiment %s not registered", want)
		}
	}
	if _, ok := Find("fig5a"); !ok {
		t.Error("Find failed for fig5a")
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find matched a nonexistent id")
	}
}

func TestPrintersProduceTables(t *testing.T) {
	// Printing should work on empty results without panicking.
	var b strings.Builder
	Fig5Result{}.Print(&b)
	Fig5Result{}.PrintLatency(&b)
	Fig6Result{}.Print(&b)
	Fig7Result{}.PrintRate(&b)
	Fig8Result{}.PrintThroughput(&b)
	Fig10aResult{}.Print(&b)
	Fig10bResult{}.Print(&b)
	Fig11Result{}.Print(&b)
	Fig12Result{}.Print(&b)
	TranslationResult{}.Print(&b)
	SizeAwareResult{}.Print(&b)
	if !strings.Contains(b.String(), "fig5a") {
		t.Error("banner missing")
	}
}
