// Package benchfmt defines the repo's cross-PR perf record: the JSON
// shape cmd/benchjson distills from `go test -bench` output and
// cmd/dmload emits directly from load-harness runs, so BENCH_*.json
// files from either producer diff the same way across PRs.
package benchfmt

import (
	"encoding/json"
	"os"
	"time"
)

// Result is one measurement: a benchmark line's parsed metrics or one
// load-harness scenario's aggregates.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Extra collects custom metric units the fixed fields don't know
	// (e.g. "crossover-bytes" from the chain benchmark, "p99-ns" and
	// "failover-reads" from the load harness).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is a whole run: environment header lines plus every result.
type Report struct {
	Date    string   `json:"date"`
	Env     []string `json:"env"`
	Results []Result `json:"results"`
}

// NewReport returns an empty report stamped with the current UTC time.
func NewReport() Report {
	return Report{Date: time.Now().UTC().Format(time.RFC3339)}
}

// WriteFile marshals the report (indented, trailing newline — the form
// committed as BENCH_*.json) to path.
func (r Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
