package pool

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/live"
)

// TestPoolReadRefLease: zero-copy reads work through the sharded pool's
// located refs — each lease routes to the owning shard, delivers the
// staged bytes, and balances the package lease gauge on Release.
func TestPoolReadRefLease(t *testing.T) {
	srvs, p := startCluster(t, 3, smallShard(), Config{})
	base := live.LeasedBufs()

	const n = 12
	payloads := make([][]byte, n)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{byte('a' + i)}, 4096+i)
		ref, err := p.StageRef(payloads[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := p.ReadRefLease(ref, 0, ref.Size)
		if err != nil {
			t.Fatalf("lease read %d (shard %d): %v", i, ref.Server, err)
		}
		if !bytes.Equal(b.Bytes(), payloads[i]) {
			t.Fatalf("lease read %d mismatch", i)
		}
		// Windowed read off the same ref.
		w, err := p.ReadRefLease(ref, 7, 64)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w.Bytes(), payloads[i][7:71]) {
			t.Fatalf("windowed lease read %d mismatch", i)
		}
		w.Release()
		b.Release()
		if err := p.FreeRef(ref); err != nil {
			t.Fatal(err)
		}
	}
	if got := live.LeasedBufs(); got != base {
		t.Fatalf("gauge after releases = %d, want %d", got, base)
	}
	checkAllInvariants(t, srvs)
}

// TestPoolLatencySummaries: the pool aggregates per-shard op latency into
// a merged summary, and the per-shard breakdown has one row per shard
// with consistent ordering (p50 <= p99 within each populated row).
func TestPoolLatencySummaries(t *testing.T) {
	_, p := startCluster(t, 2, smallShard(), Config{})
	for i := 0; i < 32; i++ {
		ref, err := p.StageRef(bytes.Repeat([]byte{byte(i)}, 2048))
		if err != nil {
			t.Fatal(err)
		}
		if err := p.FreeRef(ref); err != nil {
			t.Fatal(err)
		}
	}
	agg := p.Latency()
	if agg.Count == 0 {
		t.Fatal("aggregate latency summary recorded nothing")
	}
	if agg.P50 > agg.P99 || agg.P99 > agg.Max {
		t.Fatalf("aggregate percentiles not ordered: %+v", agg)
	}
	per := p.ShardLatency()
	if len(per) != 2 {
		t.Fatalf("ShardLatency rows = %d, want 2", len(per))
	}
	var total int64
	for id, s := range per {
		total += s.Count
		if s.Count > 0 && s.P50 > s.P99 {
			t.Fatalf("shard %d percentiles not ordered: %+v", id, s)
		}
	}
	if total != agg.Count {
		t.Fatalf("per-shard counts sum to %d, aggregate has %d", total, agg.Count)
	}
	// Sanity for the dmctl rendering path: both shards did work.
	if per[0].Count == 0 && per[1].Count == 0 {
		t.Fatal(fmt.Sprintf("no shard recorded latency: %+v", per))
	}
}
