package bench

import (
	"io"

	"repro/internal/cxlsim"
	"repro/internal/dm"
	"repro/internal/dmnet"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/workload"
)

// mFig8 is the callee-side method of the Fig 8 micro-benchmark.
const mFig8 rpc.Method = 0x0500

// fig8BlockSize is the raw data block size (§VI-D: 32 KiB).
const fig8BlockSize = 32768

// Fig8Row is one (system, write percentage) measurement of the Ray/Spark
// comparison (§VI-D, Fig 8): share a 32 KiB block with a remote
// microservice which writes a percentage of it. Single-threaded.
type Fig8Row struct {
	System     string
	WritePct   int
	Throughput float64
	AvgLatency sim.Time
}

// Fig8Result holds the Fig 8 sweep.
type Fig8Result struct {
	Rows []Fig8Row
}

// fig8System is one configured system: op performs a full round.
type fig8System struct {
	name     string
	eng      *sim.Engine
	op       workload.Op
	shutdown func()
}

// setupFig8DmNet wires caller/callee services over a DmRPC-net pool.
func setupFig8DmNet(writePct int) *fig8System {
	eng := sim.NewEngine(1)
	net := simnet.New(eng, simnet.DefaultConfig())
	scfg := dmnet.DefaultServerConfig()
	scfg.Memory.NumPages = 1 << 13
	scfg.RPC.Workers = 4
	srv := dmnet.NewServer(net.AddHost("dmserver"), 1, 0, scfg)
	srv.Start()

	an := rpc.NewNode(net.AddHost("caller"), 1, "caller", rpc.DefaultConfig())
	bn := rpc.NewNode(net.AddHost("callee"), 1, "callee", rpc.DefaultConfig())
	ac := dmnet.NewClient(an, []simnet.Addr{srv.Addr()})
	bc := dmnet.NewClient(bn, []simnet.Addr{srv.Addr()})
	registerFig8Callee(bn, bc, writePct)
	an.Start()
	bn.Start()

	var addr dm.RemoteAddr
	eng.Spawn("setup", func(p *sim.Proc) {
		must(ac.Register(p))
		must(bc.Register(p))
		a, err := ac.Alloc(p, fig8BlockSize)
		must(err)
		must(ac.Write(p, a, make([]byte, fig8BlockSize)))
		addr = a
	})
	eng.Run()
	return &fig8System{
		name: "DmRPC-net", eng: eng, shutdown: eng.Shutdown,
		op: fig8DmOp(an, ac, bn.Addr(), &addr),
	}
}

// setupFig8CXL wires caller/callee spaces over a CXL fabric with the given
// pool access latency (also reused by the Fig 12a latency sweep).
func setupFig8CXL(writePct int, latency sim.Time) *fig8System {
	eng := sim.NewEngine(1)
	net := simnet.New(eng, simnet.DefaultConfig())
	ccfg := cxlsim.DefaultConfig()
	ccfg.Memory.NumPages = 1 << 13
	ccfg.Memory.AccessLatency = latency
	gfam := cxlsim.NewGFAM(eng, 0, ccfg)
	coord := cxlsim.NewCoordinator(net.AddHost("coord"), 1, gfam, rpc.DefaultConfig())
	coord.Start()

	ah := net.AddHost("caller")
	bh := net.AddHost("callee")
	an := rpc.NewNode(ah, 1, "caller", rpc.DefaultConfig())
	bn := rpc.NewNode(bh, 1, "callee", rpc.DefaultConfig())
	as := cxlsim.NewHostDM(ah, 2, gfam, coord.Addr(), rpc.DefaultConfig()).NewSpace()
	bs := cxlsim.NewHostDM(bh, 2, gfam, coord.Addr(), rpc.DefaultConfig()).NewSpace()
	registerFig8Callee(bn, bs, writePct)
	an.Start()
	bn.Start()

	var addr dm.RemoteAddr
	eng.Spawn("setup", func(p *sim.Proc) {
		a, err := as.Alloc(p, fig8BlockSize)
		must(err)
		must(as.Write(p, a, make([]byte, fig8BlockSize)))
		addr = a
	})
	eng.Run()
	return &fig8System{
		name: "DmRPC-CXL", eng: eng, shutdown: eng.Shutdown,
		op: fig8DmOp(an, as, bn.Addr(), &addr),
	}
}

// registerFig8Callee installs the callee handler: map the ref, write the
// requested percentage (prefix), unmap.
func registerFig8Callee(node *rpc.Node, space dm.Space, writePct int) {
	node.Handle(mFig8, func(ctx *rpc.Ctx, body []byte) ([]byte, error) {
		d := rpc.NewDec(body)
		ref := dm.DecodeRef(d)
		if err := d.Err(); err != nil {
			return nil, err
		}
		addr, err := space.MapRef(ctx.P, ref)
		if err != nil {
			return nil, err
		}
		n := int(ref.Size) * writePct / 100
		if n > 0 {
			if err := space.Write(ctx.P, addr, make([]byte, n)); err != nil {
				return nil, err
			}
		}
		if err := space.Free(ctx.P, addr); err != nil {
			return nil, err
		}
		return nil, nil
	})
}

// fig8DmOp returns the caller-side round: create_ref -> RPC -> free_ref.
func fig8DmOp(an *rpc.Node, space dm.Space, callee simnet.Addr, addr *dm.RemoteAddr) workload.Op {
	return func(p *sim.Proc) error {
		ref, err := space.CreateRef(p, *addr, fig8BlockSize)
		if err != nil {
			return err
		}
		e := rpc.NewEnc(dm.EncodedRefSize)
		ref.Encode(e)
		if _, err := an.Call(p, callee, mFig8, e.Bytes()); err != nil {
			return err
		}
		return space.FreeRef(p, ref)
	}
}

// setupFig8Store wires the Ray- or Spark-style baseline: put a new object,
// send its ref, callee fetches the whole object and mutates its heap copy.
func setupFig8Store(name string, scfg store.Config, writePct int) *fig8System {
	eng := sim.NewEngine(1)
	net := simnet.New(eng, simnet.DefaultConfig())
	ah := net.AddHost("caller")
	bh := net.AddHost("callee")
	asn := store.NewNode(ah, 2, scfg)
	bsn := store.NewNode(bh, 2, scfg)
	asn.Start()
	bsn.Start()
	acl := store.NewClient(asn)
	bcl := store.NewClient(bsn)

	an := rpc.NewNode(ah, 1, "caller", rpc.DefaultConfig())
	bn := rpc.NewNode(bh, 1, "callee", rpc.DefaultConfig())
	bn.Handle(mFig8, func(ctx *rpc.Ctx, body []byte) ([]byte, error) {
		ref := store.DecodeObjectRef(rpc.NewDec(body))
		obj, err := bcl.Get(ctx.P, ref)
		if err != nil {
			return nil, err
		}
		n := len(obj) * writePct / 100
		if n > 0 {
			// Mutate the private heap copy.
			bh.Memcpy(ctx.P, n)
			copy(obj[:n], make([]byte, n))
		}
		bcl.Delete(ref) // drop the cached replica
		return nil, nil
	})
	an.Start()
	bn.Start()

	block := make([]byte, fig8BlockSize)
	return &fig8System{
		name: name, eng: eng, shutdown: eng.Shutdown,
		op: func(p *sim.Proc) error {
			ref, err := acl.Put(p, block)
			if err != nil {
				return err
			}
			e := rpc.NewEnc(24)
			ref.Encode(e)
			if _, err := an.Call(p, bn.Addr(), mFig8, e.Bytes()); err != nil {
				return err
			}
			acl.Delete(ref)
			return nil
		},
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// Fig8 reproduces Fig 8a/8b: single-threaded throughput and latency of
// sharing a 32 KiB block, versus the write percentage, for DmRPC-net,
// DmRPC-CXL, Ray and Spark.
func Fig8(scale Scale) Fig8Result {
	pcts := []int{0, 50, 100}
	if scale == Full {
		pcts = []int{0, 25, 50, 75, 100}
	}
	warm, meas := scale.windows()
	var res Fig8Result
	for _, pct := range pcts {
		systems := []*fig8System{
			setupFig8DmNet(pct),
			setupFig8CXL(pct, cxlsim.DefaultConfig().Memory.AccessLatency),
			setupFig8Store("Ray", store.RayConfig(), pct),
			setupFig8Store("Spark", store.SparkConfig(), pct),
		}
		for _, sys := range systems {
			r := workload.RunClosed(sys.eng, workload.ClosedConfig{
				Clients: 1, Warmup: warm, Measure: meas,
			}, sys.op)
			res.Rows = append(res.Rows, Fig8Row{
				System:     sys.name,
				WritePct:   pct,
				Throughput: r.Throughput(),
				AvgLatency: sim.Time(r.Latency.Mean()),
			})
			sys.shutdown()
		}
	}
	return res
}

// PrintThroughput writes the Fig 8a table.
func (r Fig8Result) PrintThroughput(w io.Writer) {
	header(w, "fig8a", "32KiB block sharing throughput vs write percentage (single thread)")
	t := stats.NewTable("system", "write%", "throughput")
	for _, row := range r.Rows {
		t.AddRow(row.System, row.WritePct, stats.Rate(row.Throughput))
	}
	io.WriteString(w, t.String())
}

// PrintLatency writes the Fig 8b table.
func (r Fig8Result) PrintLatency(w io.Writer) {
	header(w, "fig8b", "32KiB block sharing latency vs write percentage (single thread)")
	t := stats.NewTable("system", "write%", "avg latency")
	for _, row := range r.Rows {
		t.AddRow(row.System, row.WritePct, stats.Dur(row.AvgLatency))
	}
	io.WriteString(w, t.String())
}

// Get returns the row for (system, pct).
func (r Fig8Result) Get(system string, pct int) (Fig8Row, bool) {
	for _, row := range r.Rows {
		if row.System == system && row.WritePct == pct {
			return row, true
		}
	}
	return Fig8Row{}, false
}
