#!/bin/sh
# pool-demo.sh K BASE_PORT — launch a local K-shard DM cluster and run
# dmctl pool smoke traffic against it.
#
# Starts K dmserverd processes on sequential loopback ports, each
# announcing its shard ID (-shard-id i), then drives the sharded client
# layer end to end: stage, spread read, per-shard stats, and the chain
# app with every hop on its own pool session. All servers are torn down
# on exit. Invoked by `make pool-demo` (K=3 BASE_PORT=7740 by default).
set -eu

K=${1:-3}
BASE_PORT=${2:-7740}
GO=${GO:-go}

tmp=$(mktemp -d)
trap 'kill $pids 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$tmp"' EXIT INT TERM

$GO build -o "$tmp/dmserverd" ./cmd/dmserverd
$GO build -o "$tmp/dmctl" ./cmd/dmctl

pids=""
servers=""
i=0
while [ "$i" -lt "$K" ]; do
    port=$((BASE_PORT + i))
    "$tmp/dmserverd" -listen "127.0.0.1:$port" -shard-id "$i" \
        -pages 8192 >"$tmp/shard$i.log" 2>&1 &
    pids="$pids $!"
    servers="$servers${servers:+,}127.0.0.1:$port"
    i=$((i + 1))
done

# Wait for every shard to accept connections.
i=0
while [ "$i" -lt "$K" ]; do
    port=$((BASE_PORT + i))
    tries=0
    until "$tmp/dmctl" -server "127.0.0.1:$port" stage -text ping >/dev/null 2>&1; do
        tries=$((tries + 1))
        if [ "$tries" -gt 50 ]; then
            echo "shard $i on port $port never came up:" >&2
            cat "$tmp/shard$i.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    i=$((i + 1))
done

echo "== $K-shard cluster up on $servers =="
"$tmp/dmctl" -server "$servers" pool stage -text "hello sharded disaggregated memory"
"$tmp/dmctl" -server "$servers" pool read -size 16384 -n 48
"$tmp/dmctl" -server "$servers" pool stats -size 16384 -n 100
"$tmp/dmctl" -server "$servers" pool chain -hops 3 -size 65536 -n 50
echo "== pool demo complete =="
