package pool

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dm"
	"repro/internal/faultnet"
	"repro/internal/live"
)

// cachePoolCfg is the snappy client profile the cache coherence tests
// share: fast heartbeats so epoch piggybacks arrive quickly, and a
// pool-level hot-ref cache.
func cachePoolCfg(addrs []string, cacheBytes int64) Config {
	cfg := Config{
		Shards:         addrs,
		UnhealthyAfter: 2,
		RejoinPoll:     100 * time.Millisecond,
		CacheBytes:     cacheBytes,
	}
	cfg.Client.HeartbeatInterval = 50 * time.Millisecond
	cfg.Client.Net.CallTimeout = 500 * time.Millisecond
	cfg.Client.Net.AttemptTimeout = 100 * time.Millisecond
	cfg.Client.Net.DialTimeout = 100 * time.Millisecond
	return cfg
}

func dialCachePool(t *testing.T, cfg Config) *Client {
	t.Helper()
	p, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	if err := p.Register(); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCacheFreeThenRefetchCoheres is the §D15 raced-coherence check: a
// ref cached by one session is freed by ANOTHER session, and the cache
// holder must stop serving the stale payload within about one heartbeat
// — the server's epoch bump rides the next HeartbeatResp, which
// invalidates every cached entry homed on that shard.
func TestCacheFreeThenRefetchCoheres(t *testing.T) {
	srv, addr := startShard(t, 0, live.ServerConfig{
		NumPages: 256, PageSize: 4096, LeaseTTL: 2 * time.Second,
	})
	_ = srv

	owner := dialCachePool(t, cachePoolCfg([]string{addr}, 0)) // stages and frees, no cache
	reader := dialCachePool(t, cachePoolCfg([]string{addr}, 1<<20))

	body := bytes.Repeat([]byte{0xc3}, 8192)
	ref, err := owner.StageRef(body)
	if err != nil {
		t.Fatal(err)
	}

	// Populate, then hit: the second whole-object read must come from
	// memory.
	got := make([]byte, len(body))
	for i := 0; i < 2; i++ {
		if err := reader.ReadRef(ref, 0, got); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("read %d returned wrong bytes", i)
		}
	}
	if cs := reader.CacheStats(); cs.Hits == 0 || cs.Admits == 0 {
		t.Fatalf("cache never populated: %+v", cs)
	}

	// The OTHER session frees the ref. The reader's cache still holds the
	// payload, but the server's epoch advanced; the reader's next
	// heartbeat must carry it and drop the entry, after which a refetch
	// fails with the truth (the ref is gone) instead of serving a ghost.
	if err := owner.FreeRef(ref); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "epoch-driven invalidation to stop stale reads", func() bool {
		return reader.ReadRef(ref, 0, got) != nil
	})
	if cs := reader.CacheStats(); cs.Invalidations == 0 {
		t.Fatalf("stale reads stopped without any invalidation: %+v", cs)
	}
}

// TestCacheWriteThroughOwnSessionInvalidates checks the local write
// hook: a Write through the caching session conservatively drops every
// cached payload homed on the written shard, immediately — no heartbeat
// round trip — and the next read refetches from the wire.
func TestCacheWriteThroughOwnSessionInvalidates(t *testing.T) {
	_, addr := startShard(t, 0, live.ServerConfig{
		NumPages: 256, PageSize: 4096, LeaseTTL: 2 * time.Second,
	})
	p := dialCachePool(t, cachePoolCfg([]string{addr}, 1<<20))

	body := bytes.Repeat([]byte{0x7e}, 8192)
	ref, err := p.StageRef(body)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(body))
	for i := 0; i < 2; i++ {
		if err := p.ReadRef(ref, 0, got); err != nil {
			t.Fatal(err)
		}
	}
	before := p.CacheStats()
	if before.Hits == 0 {
		t.Fatalf("cache never hit before the write: %+v", before)
	}

	// An unrelated write on the same shard: refs are CoW snapshots, so
	// the cached bytes are actually still valid — the invalidation is
	// deliberate conservatism, and what we assert is that it HAPPENS.
	waddr, err := p.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(waddr, bytes.Repeat([]byte{0x01}, 512)); err != nil {
		t.Fatal(err)
	}
	after := p.CacheStats()
	if after.Invalidations <= before.Invalidations {
		t.Fatalf("write did not invalidate locally: before %+v after %+v", before, after)
	}

	// The refetch misses, goes to the wire, and returns the same bytes.
	if err := p.ReadRef(ref, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("post-invalidation refetch returned wrong bytes")
	}
	if cs := p.CacheStats(); cs.Misses <= after.Misses {
		t.Fatalf("post-invalidation read did not go to the wire: %+v", cs)
	}
	if err := p.FreeRef(ref); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(waddr); err != nil {
		t.Fatal(err)
	}
}

// TestChaosKillShardCacheOn is the cache-on replication gauntlet, run
// under -race in make check: an R=2 cluster of three shards serves a
// hot read set through the pool cache, one shard is CRASHED (listener
// and memory gone), and the cluster must keep every payload readable
// byte-identical — cache hits and failover reads mixed — with zero
// payload loss, and release every leased zero-copy buffer by Close
// (the live.LeasedBufs gauge returns to its baseline).
func TestChaosKillShardCacheOn(t *testing.T) {
	const shards = 3
	const victim = 1
	const objects = 24

	baseline := live.LeasedBufs()

	scfg := live.ServerConfig{NumPages: 1024, PageSize: 4096, LeaseTTL: 2 * time.Second}
	srvs := make([]*live.Server, shards)
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		if i == victim {
			continue
		}
		srvs[i], addrs[i] = startShard(t, uint32(i), scfg)
	}
	vcfg := scfg
	vcfg.HasShard, vcfg.ShardID = true, victim
	srv1 := live.NewServer(vcfg)
	rst, vln, err := faultnet.NewRestartable("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv1.Serve(vln) // accept error after Crash is expected
	srvs[victim], addrs[victim] = srv1, rst.Addr()

	var ejections atomic.Int64
	ejected := make(chan uint32, shards)
	pcfg := cachePoolCfg(addrs, 4<<20)
	pcfg.ReplicaFactor = 2
	pcfg.RepairInterval = 100 * time.Millisecond
	pcfg.OnTopology = func(shard uint32, healthy bool) {
		if !healthy {
			ejections.Add(1)
			ejected <- shard
		}
	}
	p := dialCachePool(t, pcfg)

	bodyOf := func(i int) []byte { return bytes.Repeat([]byte{byte(i + 1)}, 8192) }
	refs := make([]dm.Ref, objects)
	for i := range refs {
		ref, err := p.StageRef(bodyOf(i))
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}

	// Populate the cache, then prove it hits.
	readAll := func(tag string) {
		t.Helper()
		var wg sync.WaitGroup
		var fails atomic.Int64
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				got := make([]byte, 8192)
				for i := w; i < objects; i += 4 {
					if err := p.ReadRef(refs[i], 0, got); err != nil {
						t.Errorf("%s: ref %d: %v", tag, i, err)
						fails.Add(1)
						continue
					}
					if !bytes.Equal(got, bodyOf(i)) {
						t.Errorf("%s: ref %d returned wrong bytes", tag, i)
						fails.Add(1)
					}
				}
			}(w)
		}
		wg.Wait()
		if fails.Load() != 0 {
			t.Fatalf("%s: %d payloads lost or corrupt", tag, fails.Load())
		}
	}
	readAll("pre-crash populate")
	readAll("pre-crash hits")
	if cs := p.CacheStats(); cs.Hits == 0 {
		t.Fatalf("hot set produced no cache hits: %+v", cs)
	}

	// Crash the victim: connections cut, memory gone.
	rst.Crash()
	srv1.Close()
	select {
	case id := <-ejected:
		if id != victim {
			t.Fatalf("ejected shard %d, want %d", id, victim)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("crashed shard was never ejected")
	}

	// Zero payload loss with the cache on: every object — victim-primary
	// included — reads back byte-identical, repeatedly, through whatever
	// mix of cache hits and failover reads the moment demands.
	for round := 0; round < 3; round++ {
		readAll("post-crash")
	}

	// Drain: replicated frees tolerate the lost copies.
	for i, ref := range refs {
		if err := p.FreeRef(ref); err != nil {
			t.Fatalf("free ref %d: %v", i, err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Every zero-copy lease the cache (or any read path) retained must be
	// back: the package gauge returns to its pre-test baseline.
	if got := live.LeasedBufs(); got != baseline {
		t.Fatalf("leased buffers leaked: gauge %d, baseline %d", got, baseline)
	}
	for i, srv := range srvs {
		if i == victim {
			continue
		}
		if err := srv.CheckInvariants(); err != nil {
			t.Errorf("survivor shard %d invariants: %v", i, err)
		}
	}
}
