// Package memsim models a physical memory device made of fixed-size page
// frames plus a linear reference-count region, as used by both the
// DmRPC-net DM server ("pinned memory" + refcount array, paper §V-A1) and
// the CXL G-FAM device ("majority of the physical memory ... while the
// remaining memory records the reference count", paper §V-B1).
//
// Data is functionally real: frames are real bytes and reads/writes move
// them. Cost is virtual: every access charges a configurable access latency
// plus transfer time on a shared bandwidth pipe, and all traffic is
// accounted so experiments can report memory-bandwidth pressure (Fig 6,
// Fig 7c).
package memsim

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// FrameID identifies a physical page frame within a Device. NoFrame marks
// an unmapped slot.
type FrameID int32

// NoFrame is the invalid frame id.
const NoFrame FrameID = -1

// Config describes a memory device.
type Config struct {
	// NumPages is the number of page frames.
	NumPages int
	// PageSize is the frame size in bytes (power of two not required but
	// conventional; the paper uses 4 KiB).
	PageSize int
	// AccessLatency is charged once per access operation (75 ns local DRAM,
	// 265 ns emulated CXL pool; paper §VI-A).
	AccessLatency sim.Time
	// BytesPerSecond is the device bandwidth shared by all accesses.
	BytesPerSecond int64
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	if c.NumPages <= 0 {
		return fmt.Errorf("memsim: NumPages must be positive, got %d", c.NumPages)
	}
	if c.PageSize <= 0 {
		return fmt.Errorf("memsim: PageSize must be positive, got %d", c.PageSize)
	}
	if c.AccessLatency < 0 {
		return fmt.Errorf("memsim: AccessLatency must be non-negative, got %d", c.AccessLatency)
	}
	if c.BytesPerSecond <= 0 {
		return fmt.Errorf("memsim: BytesPerSecond must be positive, got %d", c.BytesPerSecond)
	}
	return nil
}

// Device is a simulated physical memory device.
type Device struct {
	eng    *sim.Engine
	cfg    Config
	data   []byte  // NumPages * PageSize backing store
	refcnt []int32 // one per frame; the "refcount region"
	bus    *sim.Pipe

	readBytes  stats.Counter
	writeBytes stats.Counter
	atomics    stats.Counter
	copies     stats.Counter // page copies (CoW or unconditional)
}

// New creates a device. It panics on an invalid config (a programming
// error, not a runtime condition).
func New(eng *sim.Engine, name string, cfg Config) *Device {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Device{
		eng:    eng,
		cfg:    cfg,
		data:   make([]byte, cfg.NumPages*cfg.PageSize),
		refcnt: make([]int32, cfg.NumPages),
		bus:    sim.NewPipe(eng, name+"/bus", cfg.BytesPerSecond),
	}
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// NumPages returns the number of frames.
func (d *Device) NumPages() int { return d.cfg.NumPages }

// PageSize returns the frame size in bytes.
func (d *Device) PageSize() int { return d.cfg.PageSize }

// SetAccessLatency changes the per-access latency; used by the Fig 12
// CXL-latency sweep.
func (d *Device) SetAccessLatency(l sim.Time) { d.cfg.AccessLatency = l }

// frame returns the backing bytes of frame f without charging any cost.
// Exported accessors charge; this is for internal use and tests.
func (d *Device) frame(f FrameID) []byte {
	if f < 0 || int(f) >= d.cfg.NumPages {
		panic(fmt.Sprintf("memsim: frame %d out of range [0,%d)", f, d.cfg.NumPages))
	}
	off := int(f) * d.cfg.PageSize
	return d.data[off : off+d.cfg.PageSize : off+d.cfg.PageSize]
}

// RawFrame exposes frame bytes with no simulated cost. Intended for test
// assertions and for callers that account cost themselves.
func (d *Device) RawFrame(f FrameID) []byte { return d.frame(f) }

// charge applies the access cost model: fixed latency plus bus time.
func (d *Device) charge(p *sim.Proc, size int) {
	if d.cfg.AccessLatency > 0 {
		p.Sleep(d.cfg.AccessLatency)
	}
	d.bus.Transfer(p, size)
}

// Read copies len(dst) bytes from frame f at off into dst, charging access
// latency and bus bandwidth.
func (d *Device) Read(p *sim.Proc, f FrameID, off int, dst []byte) {
	fr := d.frame(f)
	if off < 0 || off+len(dst) > len(fr) {
		panic(fmt.Sprintf("memsim: read [%d,%d) outside page of %d bytes", off, off+len(dst), len(fr)))
	}
	d.charge(p, len(dst))
	d.readBytes.Add(int64(len(dst)))
	copy(dst, fr[off:])
}

// Write copies src into frame f at off, charging access latency and bus
// bandwidth.
func (d *Device) Write(p *sim.Proc, f FrameID, off int, src []byte) {
	fr := d.frame(f)
	if off < 0 || off+len(src) > len(fr) {
		panic(fmt.Sprintf("memsim: write [%d,%d) outside page of %d bytes", off, off+len(src), len(fr)))
	}
	d.charge(p, len(src))
	d.writeBytes.Add(int64(len(src)))
	copy(fr[off:], src)
}

// CopyFrame copies the whole content of frame src into frame dst (the CoW
// copy). It charges one access latency and a read+write pass over the bus.
func (d *Device) CopyFrame(p *sim.Proc, dst, src FrameID) {
	s := d.frame(src)
	t := d.frame(dst)
	d.charge(p, 2*d.cfg.PageSize)
	d.readBytes.Add(int64(d.cfg.PageSize))
	d.writeBytes.Add(int64(d.cfg.PageSize))
	d.copies.Inc()
	copy(t, s)
}

// ZeroFrame clears a frame (on allocation), charging a write pass.
func (d *Device) ZeroFrame(p *sim.Proc, f FrameID) {
	fr := d.frame(f)
	d.charge(p, d.cfg.PageSize)
	d.writeBytes.Add(int64(d.cfg.PageSize))
	for i := range fr {
		fr[i] = 0
	}
}

// RefCount returns frame f's reference count without charging cost (the
// engine's single-runner model means no torn reads are possible).
func (d *Device) RefCount(f FrameID) int32 {
	d.frame(f) // bounds check
	return d.refcnt[f]
}

// LoadRef reads frame f's reference count as a device access (one latency,
// 4 bytes of traffic). This is the charged path used by CoW fault handling.
func (d *Device) LoadRef(p *sim.Proc, f FrameID) int32 {
	d.frame(f)
	d.charge(p, 4)
	d.readBytes.Add(4)
	d.atomics.Inc()
	return d.refcnt[f]
}

// AddRef atomically adds delta to frame f's reference count and returns the
// new value, charging one access (the paper's "ISA-supported atomic
// operations" on CXL memory, §V-B). Panics if the count would go negative —
// that is always a refcounting bug.
func (d *Device) AddRef(p *sim.Proc, f FrameID, delta int32) int32 {
	d.frame(f)
	d.charge(p, 4)
	d.writeBytes.Add(4)
	d.atomics.Inc()
	n := d.refcnt[f] + delta
	if n < 0 {
		panic(fmt.Sprintf("memsim: frame %d refcount went negative (%d)", f, n))
	}
	d.refcnt[f] = n
	return n
}

// AddRefBatch atomically adds delta to every frame in frames and returns
// the new counts. It models a pipelined sequence of atomics: the access
// latency is paid once (memory-level parallelism hides the rest) plus bus
// time for 4 bytes per frame. This is what makes batched create_ref cheap
// relative to page copying (paper Fig 7).
func (d *Device) AddRefBatch(p *sim.Proc, frames []FrameID, delta int32) []int32 {
	if len(frames) == 0 {
		return nil
	}
	for _, f := range frames {
		d.frame(f) // bounds check before charging
	}
	d.charge(p, 4*len(frames))
	d.writeBytes.Add(int64(4 * len(frames)))
	d.atomics.Add(int64(len(frames)))
	out := make([]int32, len(frames))
	for i, f := range frames {
		n := d.refcnt[f] + delta
		if n < 0 {
			panic(fmt.Sprintf("memsim: frame %d refcount went negative (%d)", f, n))
		}
		d.refcnt[f] = n
		out[i] = n
	}
	return out
}

// CopyFramesCPU copies each src frame to the corresponding dst frame using
// CPU-driven load/store at cpuBytesPerSecond (the effective bandwidth of a
// core streaming through this device, typically far below the device bus
// for uncached CXL access). Latency is paid once; the bus is charged for
// the bytes actually moved; any remaining time is CPU stall.
func (d *Device) CopyFramesCPU(p *sim.Proc, dst, src []FrameID, cpuBytesPerSecond int64) {
	if len(dst) != len(src) {
		panic("memsim: CopyFramesCPU length mismatch")
	}
	if len(dst) == 0 {
		return
	}
	if cpuBytesPerSecond <= 0 {
		panic("memsim: CopyFramesCPU needs positive bandwidth")
	}
	total := 2 * d.cfg.PageSize * len(dst)
	if d.cfg.AccessLatency > 0 {
		p.Sleep(d.cfg.AccessLatency)
	}
	busTime := d.bus.TransferTime(total)
	d.bus.Transfer(p, total)
	cpuTime := sim.Time(int64(total) * int64(sim.Second) / cpuBytesPerSecond)
	if cpuTime > busTime {
		p.Sleep(cpuTime - busTime)
	}
	for i := range dst {
		copy(d.frame(dst[i]), d.frame(src[i]))
	}
	d.readBytes.Add(int64(d.cfg.PageSize * len(dst)))
	d.writeBytes.Add(int64(d.cfg.PageSize * len(dst)))
	d.copies.Add(int64(len(dst)))
}

// SetRef sets the count outside the charged path (initialization).
func (d *Device) SetRef(f FrameID, v int32) {
	d.frame(f)
	if v < 0 {
		panic("memsim: negative refcount")
	}
	d.refcnt[f] = v
}

// Traffic reports cumulative device traffic.
type Traffic struct {
	ReadBytes  int64
	WriteBytes int64
	Atomics    int64
	PageCopies int64
}

// Total returns read+write bytes.
func (t Traffic) Total() int64 { return t.ReadBytes + t.WriteBytes }

// Traffic returns the device's cumulative traffic counters.
func (d *Device) Traffic() Traffic {
	return Traffic{
		ReadBytes:  d.readBytes.Value(),
		WriteBytes: d.writeBytes.Value(),
		Atomics:    d.atomics.Value(),
		PageCopies: d.copies.Value(),
	}
}

// ResetTraffic zeroes the traffic counters (between experiment phases).
func (d *Device) ResetTraffic() {
	d.readBytes.Reset()
	d.writeBytes.Reset()
	d.atomics.Reset()
	d.copies.Reset()
}

// BusBusyTime returns the cumulative busy time of the device's bus, for
// memory-bandwidth-occupation reporting (Fig 6).
func (d *Device) BusBusyTime() sim.Time { return d.bus.BusyTime() }

// FreeList is a FIFO of free page frames, as used by the page manager
// ("manages the pinned pages in a FIFO", §V-A1) and the per-host CXL fault
// handler (§V-B2).
type FreeList struct {
	q []FrameID
}

// NewFreeList returns a FIFO pre-filled with frames [0, n).
func NewFreeList(n int) *FreeList {
	fl := &FreeList{q: make([]FrameID, n)}
	for i := range fl.q {
		fl.q[i] = FrameID(i)
	}
	return fl
}

// NewEmptyFreeList returns an empty FIFO.
func NewEmptyFreeList() *FreeList { return &FreeList{} }

// Len returns the number of free frames.
func (fl *FreeList) Len() int { return len(fl.q) }

// Pop removes and returns the oldest free frame. ok is false if empty.
func (fl *FreeList) Pop() (f FrameID, ok bool) {
	if len(fl.q) == 0 {
		return NoFrame, false
	}
	f = fl.q[0]
	fl.q = fl.q[1:]
	return f, true
}

// PopN removes up to n frames and returns them.
func (fl *FreeList) PopN(n int) []FrameID {
	if n > len(fl.q) {
		n = len(fl.q)
	}
	out := make([]FrameID, n)
	copy(out, fl.q[:n])
	fl.q = fl.q[n:]
	return out
}

// Push appends a freed frame.
func (fl *FreeList) Push(f FrameID) { fl.q = append(fl.q, f) }

// PushAll appends all frames in fs.
func (fl *FreeList) PushAll(fs []FrameID) { fl.q = append(fl.q, fs...) }
