package live

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/dm"
	"repro/internal/faultnet"
	"repro/internal/rpc"
)

// TestBufLifecycle covers the refcount contract: one hold per lease,
// Retain for hand-offs, the final Release recycling and invalidating the
// buffer, and the package leak gauge tracking every mint and release.
func TestBufLifecycle(t *testing.T) {
	base := LeasedBufs()

	b := NewBuf([]byte("hello"))
	if got := LeasedBufs(); got != base+1 {
		t.Fatalf("gauge after mint = %d, want %d", got, base+1)
	}
	if string(b.Bytes()) != "hello" || b.Len() != 5 {
		t.Fatalf("Bytes/Len = %q/%d", b.Bytes(), b.Len())
	}
	b.Retain()
	b.Release() // drops the retained hold; still leased
	if got := LeasedBufs(); got != base+1 {
		t.Fatalf("gauge after partial release = %d, want %d", got, base+1)
	}
	if string(b.Bytes()) != "hello" {
		t.Fatal("payload invalidated before the final release")
	}
	b.Release() // final: recycles and invalidates
	if got := LeasedBufs(); got != base {
		t.Fatalf("gauge after final release = %d, want %d", got, base)
	}

	// Foreign memory: WrapBuf releases without touching the frame pool,
	// and the wrapped bytes alias the caller's slice (no copy).
	src := []byte("alias")
	w := WrapBuf(src)
	src[0] = 'A'
	if string(w.Bytes()) != "Alias" {
		t.Fatalf("WrapBuf copied instead of aliasing: %q", w.Bytes())
	}
	w.Release()
	if got := LeasedBufs(); got != base {
		t.Fatalf("gauge after WrapBuf release = %d, want %d", got, base)
	}
}

// TestBufDoubleReleasePanics: releasing more holds than were taken is a
// use-after-free in waiting and must fail loudly.
func TestBufDoubleReleasePanics(t *testing.T) {
	b := WrapBuf([]byte("x"))
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	b.Release()
}

// TestReadLeasePaths is the zero-copy happy path: ReadLease and
// ReadRefLease deliver the staged bytes without a caller-side copy, the
// lease gauge tracks the outstanding buffer, and Release balances it.
func TestReadLeasePaths(t *testing.T) {
	_, addr := startServer(t, smallConfig())
	cl := dialClient(t, addr)
	base := LeasedBufs()

	payload := bytes.Repeat([]byte("zeta"), 1024) // 4 KiB
	ref, err := cl.StageRef(payload)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cl.ReadRefLease(ref, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := LeasedBufs(); got != base+1 {
		t.Fatalf("gauge with lease held = %d, want %d", got, base+1)
	}
	if !bytes.Equal(b.Bytes(), payload[8:72]) {
		t.Fatalf("ReadRefLease window mismatch: %q", b.Bytes()[:8])
	}
	b.Release()

	ra, err := cl.Alloc(int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Write(ra, payload); err != nil {
		t.Fatal(err)
	}
	lb, err := cl.ReadLease(ra, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lb.Bytes(), payload) {
		t.Fatal("ReadLease payload mismatch")
	}
	lb.Release()
	if got := LeasedBufs(); got != base {
		t.Fatalf("gauge after releases = %d, want %d", got, base)
	}
}

// TestWireRangeValidation: offsets or sizes past the wire's uint32 fields
// must be rejected with dm.ErrOutOfRange before anything is marshalled —
// the silent-truncation bug the typed check replaces would have read the
// wrong window instead.
func TestWireRangeValidation(t *testing.T) {
	_, addr := startServer(t, smallConfig())
	cl := dialClient(t, addr)
	ref, err := cl.StageRef(make([]byte, 512))
	if err != nil {
		t.Fatal(err)
	}
	over := int64(1) << 32
	if err := cl.ReadRef(ref, over, make([]byte, 8)); !errors.Is(err, dm.ErrOutOfRange) {
		t.Fatalf("ReadRef(off=2^32) = %v, want dm.ErrOutOfRange", err)
	}
	if _, err := cl.ReadRefLease(ref, over, 8); !errors.Is(err, dm.ErrOutOfRange) {
		t.Fatalf("ReadRefLease(off=2^32) = %v, want dm.ErrOutOfRange", err)
	}
	if _, err := cl.ReadRefLease(ref, 0, over); !errors.Is(err, dm.ErrOutOfRange) {
		t.Fatalf("ReadRefLease(size=2^32) = %v, want dm.ErrOutOfRange", err)
	}
	if err := cl.ReadRefAsync(ref, over, make([]byte, 8)).Wait(); !errors.Is(err, dm.ErrOutOfRange) {
		t.Fatalf("ReadRefAsync(off=2^32) = %v, want dm.ErrOutOfRange", err)
	}
}

// TestLeaseNotLeakedOnDeadline: a zero-copy read killed by its deadline
// must leave the lease gauge at its baseline even when the response
// frame arrives late — the transport, not the application, owns a frame
// whose call already failed, and must recycle it instead of minting a
// lease nobody will release.
func TestLeaseNotLeakedOnDeadline(t *testing.T) {
	srv := NewNode()
	srv.Handle(rpc.Method(0x0502), func(net.Addr, []byte) ([]byte, error) {
		time.Sleep(500 * time.Millisecond) // past the caller's whole budget
		return make([]byte, 4096), nil
	})
	addr := startNode(t, srv)

	ccfg := DefaultNodeConfig()
	ccfg.CallTimeout = 200 * time.Millisecond
	ccfg.AttemptTimeout = 100 * time.Millisecond
	ccfg.MaxRetries = -1 // the deadline kill must surface, not retry away
	n := NewNodeWith(ccfg)
	defer n.Close()
	base := LeasedBufs()

	err := n.callConsumer(addr, rpc.Method(0x0502), nil, nil, consumer{
		own: func(frame, body []byte) error {
			newLeasedBuf(frame, body) // deliberately never released
			return nil
		},
	}, CallOpts{})
	if err == nil {
		t.Fatal("call against the slow handler beat its deadline")
	}
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("deadline kill = %v, want ErrDeadline", err)
	}
	if got := LeasedBufs(); got != base {
		t.Fatalf("a failed call minted a lease: gauge = %d, want %d", got, base)
	}

	// The response lands ~300ms after the call died; the read loop finds
	// no pending entry and must recycle the frame, never invoking own.
	time.Sleep(600 * time.Millisecond)
	if got := LeasedBufs(); got != base {
		t.Fatalf("late response leaked a lease: gauge = %d, want %d", got, base)
	}
}

// TestLeaseNotLeakedOnMidFrameCut tears the connection inside the
// request frame; whether the idempotent read retries to success or
// fails, no leased buffer may be stranded.
func TestLeaseNotLeakedOnMidFrameCut(t *testing.T) {
	_, addr := startServer(t, smallConfig())
	inj := faultnet.New()
	ccfg := DefaultClientConfig()
	ccfg.HeartbeatInterval = -1
	ccfg.Net.Dialer = injectedDialer(inj)
	ccfg.Net.AttemptTimeout = time.Second
	cl, err := DialConfig(ccfg, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register(); err != nil {
		t.Fatal(err)
	}
	ref, err := cl.StageRef(make([]byte, 4096))
	if err != nil {
		t.Fatal(err)
	}
	base := LeasedBufs()

	inj.CutAfter(7) // tear the next request inside its header
	b, err := cl.ReadRefLease(ref, 0, 4096)
	if err == nil {
		// The idempotent read retried across the cut; the lease is real.
		if b.Len() != 4096 {
			t.Fatalf("retried lease length = %d, want 4096", b.Len())
		}
		b.Release()
	}
	deadline := time.Now().Add(5 * time.Second)
	for LeasedBufs() != base {
		if time.Now().After(deadline) {
			t.Fatalf("leaked leases after mid-frame cut: %d", LeasedBufs()-base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
