package liverpc

import (
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/live"
	"repro/internal/rpc"
)

// A trimmed DeathStarBench-style social network (paper §VI-F, Fig 11)
// on real sockets: the compose-post, read-home-timeline and
// read-user-timeline paths through a frontend data mover, with post
// media as size-aware payloads. On compose, the media payload crosses
// frontend → compose → storage; with pass-by-reference only the staged
// ref travels and storage *adopts* it (re-owns the shared frames under
// its own DM session), so the post survives the composing client's exit
// or crash — the ownership-handoff half of the paper's argument. On
// read, storage returns a page of posts; by-ref timelines unwind as
// descriptors and the reader fetches media straight from the DM server,
// never through the service chain. The user-timeline tier filters the
// same store by author, exercising a second read path with a different
// storage access pattern.

// SocialNet method names.
const (
	SNCompose   = "sn.compose" // client → frontend → compose
	SNRead      = "sn.read"    // client → frontend → home
	SNUser      = "sn.user"    // client → frontend → user-timeline
	SNStore     = "sn.store"   // compose → storage
	SNFetch     = "sn.fetch"   // home → storage
	SNFetchUser = "sn.fetchu"  // user-timeline → storage
)

// snParams encodes a timeline read's (start, count) page request.
func snParams(start uint64, count uint16) Payload {
	return Inline(rpc.NewEnc(10).U64(start).U16(count).Bytes())
}

func decodeSNParams(p Payload) (uint64, uint16, error) {
	d := rpc.NewDec(p.Inline())
	start, count := d.U64(), d.U16()
	if p.IsRef() || d.Err() != nil {
		return 0, 0, fmt.Errorf("liverpc: malformed timeline params")
	}
	return start, count, nil
}

// snUserParams encodes a user-timeline read's (user, start, count) page
// request.
func snUserParams(user, start uint64, count uint16) Payload {
	return Inline(rpc.NewEnc(18).U64(user).U64(start).U16(count).Bytes())
}

func decodeSNUserParams(p Payload) (uint64, uint64, uint16, error) {
	d := rpc.NewDec(p.Inline())
	user, start, count := d.U64(), d.U64(), d.U16()
	if p.IsRef() || d.Err() != nil {
		return 0, 0, 0, fmt.Errorf("liverpc: malformed user-timeline params")
	}
	return user, start, count, nil
}

// newSNStorage deploys the post-storage service: it adopts incoming
// media (taking ownership under its own DM session) and serves pages of
// posts back to timeline reads — the whole store for home timelines,
// one author's posts for user timelines.
func newSNStorage(dmc DM, cfg Config) *Service {
	s := NewService("sn-storage", dmc, cfg)
	var mu sync.Mutex
	var posts []Payload
	byUser := make(map[uint64][]uint64) // author → post ids, compose order
	s.Handle(SNStore, func(ctx *Ctx, args []Payload) ([]Payload, error) {
		if len(args) != 1 && len(args) != 2 {
			return nil, fmt.Errorf("liverpc: sn.store wants 1 or 2 arguments, got %d", len(args))
		}
		var user uint64
		if len(args) == 2 {
			u, err := args[1].AsU64()
			if err != nil {
				return nil, err
			}
			user = u
		}
		// Adopt before publishing: inline media is copied out of the
		// transport buffer, ref media is re-owned via map_ref+create_ref
		// so the composer's session can die without losing the post.
		own, err := ctx.Adopt(args[0])
		if err != nil {
			return nil, err
		}
		mu.Lock()
		id := uint64(len(posts))
		posts = append(posts, own)
		byUser[user] = append(byUser[user], id)
		mu.Unlock()
		return []Payload{U64(id)}, nil
	})
	s.Handle(SNFetch, func(ctx *Ctx, args []Payload) ([]Payload, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("liverpc: sn.fetch wants 1 argument, got %d", len(args))
		}
		start, count, err := decodeSNParams(args[0])
		if err != nil {
			return nil, err
		}
		mu.Lock()
		defer mu.Unlock()
		if len(posts) == 0 {
			return nil, &rpc.AppError{Status: 2, Msg: "sn: no posts"}
		}
		page := make([]Payload, 0, count)
		for i := 0; i < int(count); i++ {
			page = append(page, posts[(start+uint64(i))%uint64(len(posts))])
		}
		return page, nil
	})
	s.Handle(SNFetchUser, func(ctx *Ctx, args []Payload) ([]Payload, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("liverpc: sn.fetchu wants 1 argument, got %d", len(args))
		}
		user, start, count, err := decodeSNUserParams(args[0])
		if err != nil {
			return nil, err
		}
		mu.Lock()
		defer mu.Unlock()
		ids := byUser[user]
		if len(ids) == 0 {
			return nil, &rpc.AppError{Status: 2, Msg: "sn: user has no posts"}
		}
		page := make([]Payload, 0, count)
		for i := 0; i < int(count); i++ {
			page = append(page, posts[ids[(start+uint64(i))%uint64(len(ids))]])
		}
		return page, nil
	})
	return s
}

// newSNCompose deploys the compose-post service, a thin application tier
// that persists the media argument in storage.
func newSNCompose(dmc DM, storage string, cfg Config) *Service {
	s := NewService("sn-compose", dmc, cfg)
	s.Handle(SNCompose, func(ctx *Ctx, args []Payload) ([]Payload, error) {
		return ctx.Call(storage, SNStore, args...)
	})
	return s
}

// newSNHome deploys the home-timeline service: it asks storage for a
// page of posts and forwards the result payloads unchanged — a data
// mover on the response path.
func newSNHome(dmc DM, storage string, cfg Config) *Service {
	s := NewService("sn-home", dmc, cfg)
	s.Handle(SNRead, func(ctx *Ctx, args []Payload) ([]Payload, error) {
		return ctx.Call(storage, SNFetch, args...)
	})
	return s
}

// newSNUserTimeline deploys the user-timeline service: the same mover
// shape as home, but the storage fetch filters by author.
func newSNUserTimeline(dmc DM, storage string, cfg Config) *Service {
	s := NewService("sn-user", dmc, cfg)
	s.Handle(SNUser, func(ctx *Ctx, args []Payload) ([]Payload, error) {
		return ctx.Call(storage, SNFetchUser, args...)
	})
	return s
}

// newSNFrontend deploys the frontend mover routing all three operations.
func newSNFrontend(dmc DM, compose, home, user string, cfg Config) *Service {
	s := NewService("sn-frontend", dmc, cfg)
	s.Handle(SNCompose, func(ctx *Ctx, args []Payload) ([]Payload, error) {
		return ctx.Call(compose, SNCompose, args...)
	})
	s.Handle(SNRead, func(ctx *Ctx, args []Payload) ([]Payload, error) {
		return ctx.Call(home, SNRead, args...)
	})
	s.Handle(SNUser, func(ctx *Ctx, args []Payload) ([]Payload, error) {
		return ctx.Call(user, SNUser, args...)
	})
	return s
}

// SocialNetDeployment is the running trimmed social network: frontends,
// compose, home-timeline, user-timeline and storage services on loopback
// TCP, each with its own DM session.
type SocialNetDeployment struct {
	Frontend  string   // first client-facing address
	Frontends []string // every client-facing address (load balancing)

	svcs []*Service
	dms  []io.Closer
	lns  []net.Listener
}

// DeploySocialNet starts the services against the single-server DM pool
// at dmAddrs with one frontend. Callers must Close the deployment.
func DeploySocialNet(dmAddrs []string, cfg Config) (*SocialNetDeployment, error) {
	return DeploySocialNetWith(func() (DM, error) {
		cl, err := live.Dial(dmAddrs...)
		if err != nil {
			return nil, err
		}
		if err := cl.Register(); err != nil {
			cl.Close()
			return nil, err
		}
		return cl, nil
	}, 1, cfg)
}

// DeploySocialNetWith starts the social network with every service's DM
// session minted by newSession — a live.Dial factory for a single
// server, a pool.Dial factory for a sharded cluster (mirroring
// DeployChainWith) — and frontends frontend movers sharing the same
// compose/home/user tiers, so load generators can spread clients across
// client-facing endpoints. newSession is not called when cfg.ForceInline
// is set (the by-value baseline needs no DM). Callers must Close the
// deployment.
func DeploySocialNetWith(newSession func() (DM, error), frontends int, cfg Config) (*SocialNetDeployment, error) {
	if frontends < 1 {
		frontends = 1
	}
	d := &SocialNetDeployment{}
	serve := func(build func(dmc DM) *Service) (string, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			d.Close()
			return "", err
		}
		d.lns = append(d.lns, ln)
		var dmc DM
		if !cfg.ForceInline {
			dmc, err = newSession()
			if err != nil {
				d.Close()
				return "", err
			}
			if cl, ok := dmc.(io.Closer); ok {
				d.dms = append(d.dms, cl)
			}
		}
		s := build(dmc)
		d.svcs = append(d.svcs, s)
		go s.Serve(ln)
		return ln.Addr().String(), nil
	}

	storage, err := serve(func(dmc DM) *Service { return newSNStorage(dmc, cfg) })
	if err != nil {
		return nil, err
	}
	compose, err := serve(func(dmc DM) *Service { return newSNCompose(dmc, storage, cfg) })
	if err != nil {
		return nil, err
	}
	home, err := serve(func(dmc DM) *Service { return newSNHome(dmc, storage, cfg) })
	if err != nil {
		return nil, err
	}
	user, err := serve(func(dmc DM) *Service { return newSNUserTimeline(dmc, storage, cfg) })
	if err != nil {
		return nil, err
	}
	for i := 0; i < frontends; i++ {
		front, err := serve(func(dmc DM) *Service { return newSNFrontend(dmc, compose, home, user, cfg) })
		if err != nil {
			return nil, err
		}
		d.Frontends = append(d.Frontends, front)
	}
	d.Frontend = d.Frontends[0]
	return d, nil
}

// Close tears down every service and DM session.
func (d *SocialNetDeployment) Close() {
	for _, s := range d.svcs {
		s.Close()
	}
	for _, cl := range d.dms {
		cl.Close()
	}
	for _, ln := range d.lns {
		ln.Close()
	}
}

// SocialNetClient is a workload generator for the deployment.
type SocialNetClient struct {
	caller   *Caller
	frontend string
}

// NewSocialNetClient builds a client stub against the frontend. dmc is
// any DM backend (a *live.Client session or a sharded *pool.Client).
func NewSocialNetClient(dmc DM, frontend string, cfg Config) *SocialNetClient {
	return &SocialNetClient{caller: NewCaller(dmc, cfg), frontend: frontend}
}

// Close tears down the client's transport.
func (c *SocialNetClient) Close() error { return c.caller.Close() }

// Compose publishes one post by user 0 and returns its id.
func (c *SocialNetClient) Compose(media []byte) (uint64, error) {
	return c.ComposeAs(0, media)
}

// ComposeAs publishes one post authored by user and returns its id.
// Large media is staged once; storage adopts it, so the client's own ref
// hold is released as soon as the call returns.
func (c *SocialNetClient) ComposeAs(user uint64, media []byte) (uint64, error) {
	arg, err := c.caller.Stage(media)
	if err != nil {
		return 0, err
	}
	defer c.caller.Release(arg)
	res, err := c.caller.Call(c.frontend, SNCompose, arg, U64(user))
	if err != nil {
		return 0, err
	}
	if len(res) != 1 {
		return 0, fmt.Errorf("liverpc: compose returned %d payloads, want 1", len(res))
	}
	return res[0].AsU64()
}

// ReadHome reads a page of count posts starting at start and
// materializes each one's media (by-ref posts read straight from the DM
// server). The returned buffers are the caller's.
func (c *SocialNetClient) ReadHome(start uint64, count uint16) ([][]byte, error) {
	res, err := c.caller.CallOpts(c.frontend, SNRead, CallOpts{Idempotent: true}, snParams(start, count))
	if err != nil {
		return nil, err
	}
	return c.fetchAll(res)
}

// ReadUser reads a page of count posts authored by user, starting at
// the author's start-th post, and materializes each one's media.
func (c *SocialNetClient) ReadUser(user, start uint64, count uint16) ([][]byte, error) {
	res, err := c.caller.CallOpts(c.frontend, SNUser, CallOpts{Idempotent: true}, snUserParams(user, start, count))
	if err != nil {
		return nil, err
	}
	return c.fetchAll(res)
}

func (c *SocialNetClient) fetchAll(res []Payload) ([][]byte, error) {
	out := make([][]byte, 0, len(res))
	for _, p := range res {
		buf, err := c.caller.Fetch(p)
		if err != nil {
			return nil, err
		}
		out = append(out, buf)
	}
	return out, nil
}
