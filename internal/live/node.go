package live

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/dmwire"
	"repro/internal/rpc"
)

// Handler processes one request body and returns the response body. It
// mirrors rpc.Handler for the live world (no simulation context).
type Handler func(from net.Addr, body []byte) ([]byte, error)

// Node is a live RPC endpoint: it serves registered methods over TCP and
// issues calls to other nodes, multiplexing concurrent requests per
// connection — the real-network counterpart of the simulator's rpc.Node,
// speaking the same frame format the DM protocol uses.
type Node struct {
	mu       sync.Mutex
	handlers map[rpc.Method]Handler
	peers    map[string]*conn      // lazily dialed, keyed by address
	inbound  map[net.Conn]struct{} // accepted connections, for Close
	ln       net.Listener
	closed   chan struct{}
	once     sync.Once
	conns    sync.WaitGroup
}

// NewNode returns an empty node; register handlers, then Serve and/or
// Call.
func NewNode() *Node {
	return &Node{
		handlers: make(map[rpc.Method]Handler),
		peers:    make(map[string]*conn),
		inbound:  make(map[net.Conn]struct{}),
		closed:   make(chan struct{}),
	}
}

// Handle registers h for method m. Duplicate registration panics.
func (n *Node) Handle(m rpc.Method, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.handlers[m]; dup {
		panic(fmt.Sprintf("live: duplicate handler for method %#x", uint16(m)))
	}
	n.handlers[m] = h
}

// Serve accepts connections on ln until Close; it returns nil after Close.
func (n *Node) Serve(ln net.Listener) error {
	n.mu.Lock()
	select {
	case <-n.closed:
		// Close already ran (it cannot see this listener); refuse to serve.
		n.mu.Unlock()
		ln.Close()
		return nil
	default:
	}
	n.ln = ln
	n.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return nil
			default:
				return err
			}
		}
		n.mu.Lock()
		n.inbound[c] = struct{}{}
		n.mu.Unlock()
		n.conns.Add(1)
		go func() {
			defer n.conns.Done()
			defer func() {
				n.mu.Lock()
				delete(n.inbound, c)
				n.mu.Unlock()
			}()
			n.serveConn(c)
		}()
	}
}

// Close stops serving, closes peer connections, and waits for in-flight
// request goroutines spawned by the accept loop.
func (n *Node) Close() error {
	var err error
	n.once.Do(func() {
		n.mu.Lock()
		close(n.closed)
		if n.ln != nil {
			err = n.ln.Close()
		}
		for _, c := range n.peers {
			c.c.Close()
		}
		// Accepted connections must be closed too, or their serve
		// goroutines would block in readFrame while clients linger.
		for c := range n.inbound {
			c.Close()
		}
		n.mu.Unlock()
		n.conns.Wait()
	})
	return err
}

// serveConn handles one inbound connection: one goroutine per request,
// responses serialized by a per-connection write lock.
func (n *Node) serveConn(c net.Conn) {
	defer c.Close()
	var wmu sync.Mutex
	for {
		kind, reqID, payload, err := readFrame(c)
		if err != nil {
			return
		}
		if kind != kindRequest || len(payload) < 2 {
			return
		}
		m := rpc.Method(binary.BigEndian.Uint16(payload))
		body := payload[2:]
		go func() {
			status, resp := n.dispatch(c.RemoteAddr(), m, body)
			out := make([]byte, 1+len(resp))
			out[0] = status
			copy(out[1:], resp)
			wmu.Lock()
			defer wmu.Unlock()
			_ = writeFrame(c, kindResponse, reqID, out)
		}()
	}
}

// errNoSuchMethod is the catch-all for unknown methods.
var errNoSuchMethod = errors.New("live: no such method")

func (n *Node) dispatch(from net.Addr, m rpc.Method, body []byte) (byte, []byte) {
	n.mu.Lock()
	h, ok := n.handlers[m]
	n.mu.Unlock()
	if !ok {
		return dmwire.StatusErr, []byte(errNoSuchMethod.Error())
	}
	resp, err := h(from, body)
	if err != nil {
		return dmwire.StatusOf(err), []byte(err.Error())
	}
	return dmwire.StatusOK, resp
}

// peer returns (dialing if needed) the multiplexed connection to addr.
func (n *Node) peer(addr string) (*conn, error) {
	n.mu.Lock()
	c, ok := n.peers[addr]
	n.mu.Unlock()
	if ok {
		c.pmu.Lock()
		dead := c.dead
		c.pmu.Unlock()
		if dead == nil {
			return c, nil
		}
		// Reconnect over a fresh socket.
		n.mu.Lock()
		delete(n.peers, addr)
		n.mu.Unlock()
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: dial %s: %w", addr, err)
	}
	c = &conn{c: nc, pending: make(map[uint64]chan response)}
	go c.readLoop()
	n.mu.Lock()
	if prev, raced := n.peers[addr]; raced {
		n.mu.Unlock()
		nc.Close()
		return prev, nil
	}
	n.peers[addr] = c
	n.mu.Unlock()
	return c, nil
}

// Call invokes method m at addr with body and returns the response body;
// non-OK statuses surface as the shared dm errors or *rpc.AppError.
func (n *Node) Call(addr string, m rpc.Method, body []byte) ([]byte, error) {
	c, err := n.peer(addr)
	if err != nil {
		return nil, err
	}
	return c.call(m, body)
}
