package dmwire

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/registry"
)

func TestRegPutReqRoundTrip(t *testing.T) {
	for _, ent := range []registry.Entry{
		{Key: ReplicaKeyBit | 1, Size: 4096, Epoch: 1, Replicas: []uint32{0, 2}},
		{Key: ReplicaKeyBit | 2, Size: 1, Epoch: 99, Replicas: []uint32{3}},
		{Key: 7, Size: 0, Epoch: 0, Replicas: nil},
	} {
		b := RegPutReq{Entry: ent}.Marshal()
		got, err := UnmarshalRegPutReq(b)
		if err != nil {
			t.Fatalf("%+v: %v", ent, err)
		}
		if !reflect.DeepEqual(got.Entry, ent) {
			t.Fatalf("round trip: got %+v want %+v", got.Entry, ent)
		}
	}
}

func TestRegGetRoundTrip(t *testing.T) {
	req := RegGetReq{Key: ReplicaKeyBit | 42}
	gotReq, err := UnmarshalRegGetReq(req.Marshal())
	if err != nil || gotReq != req {
		t.Fatalf("req round trip: %+v, %v", gotReq, err)
	}
	ent := registry.Entry{Key: req.Key, Size: 128, Epoch: 2, Replicas: []uint32{1, 0}}
	gotResp, err := UnmarshalRegGetResp(RegGetResp{Entry: ent}.Marshal())
	if err != nil || !reflect.DeepEqual(gotResp.Entry, ent) {
		t.Fatalf("resp round trip: %+v, %v", gotResp, err)
	}
}

func TestRegSyncRoundTrip(t *testing.T) {
	req := RegSyncReq{AfterKey: ReplicaKeyBit, Limit: 512}
	gotReq, err := UnmarshalRegSyncReq(req.Marshal())
	if err != nil || gotReq != req {
		t.Fatalf("req round trip: %+v, %v", gotReq, err)
	}
	for _, ents := range [][]registry.Entry{
		nil,
		{{Key: ReplicaKeyBit | 1, Size: 64, Epoch: 1, Replicas: []uint32{0, 1}}},
		{
			{Key: ReplicaKeyBit | 1, Size: 64, Epoch: 1, Replicas: []uint32{0, 1}},
			{Key: ReplicaKeyBit | 2, Size: 32, Epoch: 5, Replicas: []uint32{2}},
			{Key: ReplicaKeyBit | 3, Size: 16, Epoch: 2, Replicas: nil},
		},
	} {
		b := RegSyncResp{Entries: ents}.Marshal()
		got, err := UnmarshalRegSyncResp(b)
		if err != nil {
			t.Fatalf("%d entries: %v", len(ents), err)
		}
		if len(got.Entries) != len(ents) {
			t.Fatalf("entry count: got %d want %d", len(got.Entries), len(ents))
		}
		for i := range ents {
			if !reflect.DeepEqual(got.Entries[i], ents[i]) {
				t.Fatalf("entry %d: got %+v want %+v", i, got.Entries[i], ents[i])
			}
		}
		if !bytes.Equal(got.Marshal(), b) {
			t.Fatal("re-encode not canonical")
		}
	}
}

func TestRegSyncDecodeLimits(t *testing.T) {
	// A hostile count field must be rejected, not allocated.
	b := RegSyncResp{}.Marshal()
	b[0], b[1], b[2], b[3] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := UnmarshalRegSyncResp(b); err == nil {
		t.Fatal("oversized page count accepted")
	}
	// A replica count past MaxRefReplicas inside an entry likewise.
	eb := RegPutReq{Entry: registry.Entry{Key: 1, Size: 1, Epoch: 1, Replicas: []uint32{0}}}.Marshal()
	eb[24] = MaxRefReplicas + 1
	if _, err := UnmarshalRegPutReq(eb); err == nil {
		t.Fatal("oversized replica count accepted")
	}
	// Truncated fixed-prefix bodies error rather than panic.
	full := RegPutReq{Entry: registry.Entry{Key: 1, Size: 1, Epoch: 1, Replicas: []uint32{0, 1}}}.Marshal()
	for i := 0; i < regEntrySize; i++ {
		if _, err := UnmarshalRegPutReq(full[:i]); err == nil {
			t.Fatalf("truncated body of %d bytes accepted", i)
		}
	}
}
