package sim

// eventHeap is a binary min-heap of events ordered by (time, seq). The seq
// tie-break makes same-instant events fire in scheduling order, which keeps
// runs deterministic.
type eventHeap struct {
	evs []*Event
}

func (h *eventHeap) len() int { return len(h.evs) }

func (h *eventHeap) less(i, j int) bool {
	a, b := h.evs[i], h.evs[j]
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

func (h *eventHeap) swap(i, j int) { h.evs[i], h.evs[j] = h.evs[j], h.evs[i] }

func (h *eventHeap) push(ev *Event) {
	h.evs = append(h.evs, ev)
	h.up(len(h.evs) - 1)
}

func (h *eventHeap) peek() *Event { return h.evs[0] }

func (h *eventHeap) pop() *Event {
	top := h.evs[0]
	last := len(h.evs) - 1
	h.swap(0, last)
	h.evs[last] = nil
	h.evs = h.evs[:last]
	if last > 0 {
		h.down(0)
	}
	return top
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *eventHeap) down(i int) {
	n := len(h.evs)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		small := left
		if right := left + 1; right < n && h.less(right, left) {
			small = right
		}
		if !h.less(small, i) {
			return
		}
		h.swap(i, small)
		i = small
	}
}
