package live

import "time"

// Session lease reaping (DESIGN.md §D8). Each registered PID holds a
// lease renewed by client heartbeats; a PID whose lease expires is
// presumed dead (crashed, partitioned past the TTL) and its server-side
// state — VA regions, translator mappings, created refs — is reclaimed.
// Frames a dead PID shared with the living survive: reaping only drops
// the dead session's own holds, and per-frame refcounts keep any page
// still mapped or ref'd by another PID alive (invariant D6 conservation
// holds across a reap).

// reaper periodically scans for expired leases until Close.
func (s *Server) reaper() {
	defer close(s.reaperDone)
	tick := s.cfg.LeaseTTL / 4
	if tick <= 0 {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.reaperStop:
			return
		case now := <-t.C:
			s.reapExpired(now)
		}
	}
}

// reapExpired reclaims every session whose lease deadline passed.
func (s *Server) reapExpired(now time.Time) {
	nowNS := now.UnixNano()
	s.pidMu.RLock()
	var expired map[uint32]*pidState
	for pid, ps := range s.pids {
		if d := ps.lease.Load(); d != 0 && d < nowNS {
			if expired == nil {
				expired = make(map[uint32]*pidState)
			}
			expired[pid] = ps
		}
	}
	s.pidMu.RUnlock()
	for pid, ps := range expired {
		s.reapPID(pid, ps, false)
	}
}

// reapPID tears down one session. Unless force is set, a lease renewed
// between the expiry scan and the exclusive lock acquisition (a heartbeat
// racing the reaper) aborts the reap. Setting gone under the exclusive
// lock fences all in-flight ops: anything acquiring ps.mu afterwards
// observes it and bails, so nothing publishes new state for pid once the
// sweeps below begin.
func (s *Server) reapPID(pid uint32, ps *pidState, force bool) {
	ps.mu.Lock()
	if ps.gone {
		ps.mu.Unlock()
		return
	}
	if !force {
		if d := ps.lease.Load(); d == 0 || d >= time.Now().UnixNano() {
			ps.mu.Unlock()
			return
		}
	}
	ps.gone = true
	ps.mu.Unlock()

	s.pidMu.Lock()
	delete(s.pids, pid)
	s.pidMu.Unlock()

	// Drop the dead session's translator mappings. decRef reclaims frames
	// nobody else holds; shared frames (cross-PID refs or mappings) live on.
	for i := range s.trans {
		sh := &s.trans[i]
		var frames []int32
		sh.mu.Lock()
		for key, f := range sh.m {
			if key.pid == pid {
				delete(sh.m, key)
				frames = append(frames, f)
			}
		}
		sh.mu.Unlock()
		for _, f := range frames {
			s.decRef(f)
		}
	}

	// Drop the refs the dead session created. Another PID that mapped one
	// of these refs keeps its pages: map_ref took per-frame holds of its
	// own, so only the ref entry's holds are released here. Refs whose
	// key the shard's directory holds are registry-owned (DESIGN.md
	// §D16): the staging client handed placement off to the cluster, so
	// they survive their producer's reap and are released only by an
	// explicit free_ref or a migration reclaim. A forced reap (server
	// shutdown) sweeps everything — the handoff outlives sessions, not
	// the server.
	swept := 0
	for i := range s.refs {
		sh := &s.refs[i]
		var orphaned []*refEntry
		sh.mu.Lock()
		for key, ref := range sh.m {
			if ref.owner == pid {
				if !force {
					if _, held := s.reg.Get(key); held {
						continue
					}
				}
				delete(sh.m, key)
				orphaned = append(orphaned, ref)
			}
		}
		sh.mu.Unlock()
		for _, ref := range orphaned {
			for _, f := range ref.frames {
				s.decRef(f)
			}
		}
		swept += len(orphaned)
	}
	if swept > 0 {
		// Reaped refs vanished without an explicit FreeRef; advance the
		// invalidation epoch so surviving sessions drop any cached
		// payloads for them (DESIGN.md §D15).
		s.epoch.Add(1)
	}
}
