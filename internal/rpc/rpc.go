// Package rpc provides the datacenter RPC layer of the reproduction: typed
// method dispatch, nested calls, and handler worker pools over the
// eRPC-style reliable transport (paper §II-A).
//
// A Node is both RPC client and server on one endpoint, mirroring how a
// microservice simultaneously serves its own RPCs and issues nested RPCs to
// downstream services. Handlers run on a configurable pool of worker
// processes; a worker making a nested Call blocks only itself.
//
// Wire format:
//
//	request  = method(2) | body
//	response = status(1) | body            (status 0 = OK, else AppError)
package rpc

import (
	"errors"
	"fmt"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// Method identifies an RPC method on a node.
type Method uint16

// AppError is a non-zero application status returned by a handler.
type AppError struct {
	Status byte
	Msg    string
}

func (e *AppError) Error() string {
	return fmt.Sprintf("rpc: application error %d: %s", e.Status, e.Msg)
}

// ErrNoSuchMethod is returned (as an AppError status) for unregistered
// methods.
var ErrNoSuchMethod = &AppError{Status: 0xFF, Msg: "no such method"}

// Ctx carries per-request context into a handler.
type Ctx struct {
	// P is the worker process executing the handler; use it for Sleep and
	// nested Calls.
	P *sim.Proc
	// From is the calling endpoint's address.
	From simnet.Addr
	// Node is the node executing the handler.
	Node *Node
}

// Handler processes one request and returns the response body, or an error
// (an *AppError reaches the caller with its status; other errors map to
// status 1).
type Handler func(ctx *Ctx, body []byte) ([]byte, error)

// Config tunes a node.
type Config struct {
	// Transport is the underlying transport configuration.
	Transport transport.Config
	// Workers is the number of handler worker processes.
	Workers int
}

// DefaultConfig returns a node configuration with eRPC-style transport
// defaults and a small worker pool.
func DefaultConfig() Config {
	return Config{Transport: transport.DefaultConfig(), Workers: 4}
}

// Observer receives RPC lifecycle events for tracing and metrics. Start
// methods return a token passed back to the matching End; implementations
// must be cheap — they run inline with every request.
type Observer interface {
	// ServeStart fires when a handler begins executing a request.
	ServeStart(node string, m Method, from simnet.Addr, reqBytes int, at sim.Time) any
	// ServeEnd fires when the handler returns.
	ServeEnd(token any, respBytes int, at sim.Time, err error)
	// CallStart fires when an outgoing call is issued.
	CallStart(node string, to simnet.Addr, m Method, reqBytes int, at sim.Time) any
	// CallEnd fires when the call's response (or error) arrives.
	CallEnd(token any, respBytes int, at sim.Time, err error)
}

// Node is a microservice's RPC stack: one transport endpoint usable for
// both serving and calling.
type Node struct {
	name     string
	ep       *transport.Endpoint
	handlers map[Method]Handler
	sessions map[simnet.Addr]*transport.Session
	cfg      Config
	started  bool
	obs      Observer

	served stats
}

type stats struct {
	requests int64
	calls    int64
}

// NewNode binds a node named name to port on host h.
func NewNode(h *simnet.Host, port int, name string, cfg Config) *Node {
	if cfg.Workers <= 0 {
		panic(fmt.Sprintf("rpc: node %s needs at least one worker", name))
	}
	return &Node{
		name:     name,
		ep:       transport.NewEndpoint(h, port, cfg.Transport),
		handlers: make(map[Method]Handler),
		sessions: make(map[simnet.Addr]*transport.Session),
		cfg:      cfg,
	}
}

// Name returns the node name.
func (n *Node) Name() string { return n.name }

// Addr returns the node's endpoint address.
func (n *Node) Addr() simnet.Addr { return n.ep.Addr() }

// Host returns the host the node runs on.
func (n *Node) Host() *simnet.Host { return n.ep.Host() }

// Requests returns how many requests this node's handlers have served.
func (n *Node) Requests() int64 { return n.served.requests }

// Calls returns how many outgoing calls this node has issued.
func (n *Node) Calls() int64 { return n.served.calls }

// SetObserver installs an RPC lifecycle observer (tracing/metrics). Pass
// nil to remove it. Must be set before traffic flows to observe all of it.
func (n *Node) SetObserver(o Observer) { n.obs = o }

// Handle registers h for method m. Must be called before Start.
func (n *Node) Handle(m Method, h Handler) {
	if n.started {
		panic(fmt.Sprintf("rpc: node %s: Handle after Start", n.name))
	}
	if _, dup := n.handlers[m]; dup {
		panic(fmt.Sprintf("rpc: node %s: duplicate handler for method %d", n.name, m))
	}
	n.handlers[m] = h
}

// Start launches the transport dispatcher and the handler worker pool.
func (n *Node) Start() {
	if n.started {
		panic(fmt.Sprintf("rpc: node %s started twice", n.name))
	}
	n.started = true
	n.ep.Start()
	eng := n.ep.Host().Network().Engine()
	for i := 0; i < n.cfg.Workers; i++ {
		eng.Spawn(fmt.Sprintf("%s/worker%d", n.name, i), func(p *sim.Proc) {
			for {
				req := n.ep.Requests().Recv(p)
				n.serve(p, req)
			}
		})
	}
}

func (n *Node) serve(p *sim.Proc, req *transport.IncomingRequest) {
	n.served.requests++
	if len(req.Payload) < 2 {
		n.respondErr(p, req, ErrNoSuchMethod)
		return
	}
	m := Method(uint16(req.Payload[0])<<8 | uint16(req.Payload[1]))
	h, ok := n.handlers[m]
	if !ok {
		n.respondErr(p, req, ErrNoSuchMethod)
		return
	}
	var token any
	if n.obs != nil {
		token = n.obs.ServeStart(n.name, m, req.From, len(req.Payload)-2, p.Now())
	}
	ctx := &Ctx{P: p, From: req.From, Node: n}
	body, err := h(ctx, req.Payload[2:])
	if n.obs != nil {
		n.obs.ServeEnd(token, len(body), p.Now(), err)
	}
	if err != nil {
		ae, ok := err.(*AppError)
		if !ok {
			ae = &AppError{Status: 1, Msg: err.Error()}
		}
		n.respondErr(p, req, ae)
		return
	}
	resp := make([]byte, 1+len(body))
	copy(resp[1:], body)
	if err := req.Respond(p, resp); err != nil {
		panic(err) // double-respond is a programming error in this layer
	}
}

func (n *Node) respondErr(p *sim.Proc, req *transport.IncomingRequest, ae *AppError) {
	resp := make([]byte, 1+len(ae.Msg))
	resp[0] = ae.Status
	copy(resp[1:], ae.Msg)
	if err := req.Respond(p, resp); err != nil {
		panic(err)
	}
}

// session returns (creating if needed) the cached session to addr.
func (n *Node) session(to simnet.Addr) *transport.Session {
	s, ok := n.sessions[to]
	if !ok {
		s = n.ep.Connect(to)
		n.sessions[to] = s
	}
	return s
}

// Call invokes method m at node address to with body and returns the
// response body. It blocks the calling process for the full round trip.
func (n *Node) Call(p *sim.Proc, to simnet.Addr, m Method, body []byte) ([]byte, error) {
	n.served.calls++
	var token any
	if n.obs != nil {
		token = n.obs.CallStart(n.name, to, m, len(body), p.Now())
	}
	req := make([]byte, 2+len(body))
	req[0] = byte(m >> 8)
	req[1] = byte(m)
	copy(req[2:], body)
	resp, err := n.session(to).Call(p, req)
	out, err := n.finishCall(resp, err)
	if n.obs != nil {
		n.obs.CallEnd(token, len(out), p.Now(), err)
	}
	return out, err
}

func (n *Node) finishCall(resp []byte, err error) ([]byte, error) {
	if err != nil {
		return nil, err
	}
	if len(resp) < 1 {
		return nil, errors.New("rpc: malformed response")
	}
	if resp[0] != 0 {
		return nil, &AppError{Status: resp[0], Msg: string(resp[1:])}
	}
	return resp[1:], nil
}
