package loadgen

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
	"repro/internal/workload"
)

// RunConfig shapes one measured run of a scenario.
type RunConfig struct {
	// Workers is the number of concurrent simulated users.
	Workers int
	// Rate is the offered load in ops/s across all workers (open loop,
	// Poisson arrivals). 0 runs closed-loop: every worker issues
	// back-to-back.
	Rate float64
	// Warmup runs load without recording before the measure window.
	Warmup time.Duration
	// Measure is the recorded window.
	Measure time.Duration
	// Ramp linearly grows the offered rate from ~0 to Rate over this
	// span at run start (open loop only), so connection setup and cold
	// caches don't register as a latency cliff.
	Ramp time.Duration
	// MaxOutstanding bounds the open-loop arrival queue; arrivals past
	// it are dropped and counted, exactly like workload.RunOpen's
	// sim-side accounting (0 = 4096).
	MaxOutstanding int
	// Seed overrides Env.Seed for this run when nonzero.
	Seed uint64
}

// ClassResult is one request class's measured aggregate.
type ClassResult struct {
	Ops     int64
	Errors  int64
	Bytes   int64
	Latency stats.Summary
}

// RunResult is one scenario run's aggregate, ready for reporting.
type RunResult struct {
	Scenario string
	Workers  int
	Measure  time.Duration
	// Offered is the configured open-loop rate (0 for closed loop);
	// Achieved is completed ops/s over the measure window.
	Offered  float64
	Achieved float64
	Ops      int64
	Errors   int64
	Drops    int64
	Bytes    int64
	Latency  stats.Summary
	Classes  map[string]ClassResult
	// Counters merges the scenario's own counters with the session
	// counter deltas across the run (retries, timeouts, failover...).
	Counters map[string]float64
}

// workerRec accumulates one worker's measurements without locks; the
// runner merges them (stats.AtomicHistogram.Merge) after the run.
type workerRec struct {
	classes map[string]*classRec
}

type classRec struct {
	hist   stats.AtomicHistogram
	ops    int64
	errors int64
	bytes  int64
}

func (r *workerRec) rec(class string, lat time.Duration, bytes int64, err error) {
	c := r.classes[class]
	if c == nil {
		c = &classRec{}
		r.classes[class] = c
	}
	if err != nil {
		c.errors++
		return
	}
	c.ops++
	c.bytes += bytes
	c.hist.Record(lat.Nanoseconds())
}

// Run drives an already-Setup scenario with cfg's load shape and
// returns the merged result. Workers are created fresh per run and
// closed before it returns.
func Run(s Scenario, env *Env, cfg RunConfig) (RunResult, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Measure <= 0 {
		return RunResult{}, fmt.Errorf("loadgen: Measure must be positive")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = env.Seed
	}
	workers := make([]Worker, cfg.Workers)
	for i := range workers {
		w, err := s.NewWorker(env, i)
		if err != nil {
			for _, w := range workers[:i] {
				w.Close()
			}
			return RunResult{}, fmt.Errorf("loadgen: %s worker %d: %w", s.Name(), i, err)
		}
		workers[i] = w
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()

	before := env.SessionTotals()
	recs := make([]*workerRec, cfg.Workers)
	for i := range recs {
		recs[i] = &workerRec{classes: make(map[string]*classRec)}
	}

	start := time.Now()
	measureFrom := start.Add(cfg.Warmup)
	measureTo := measureFrom.Add(cfg.Measure)
	var drops atomic.Int64
	var wg sync.WaitGroup

	if cfg.Rate > 0 {
		// Open loop: one Poisson arrival process feeds a bounded queue;
		// workers complete arrivals, latency runs from the arrival
		// stamp so queueing delay is charged to the system under test.
		maxOut := cfg.MaxOutstanding
		if maxOut <= 0 {
			maxOut = 4096
		}
		jobs := make(chan time.Time, maxOut)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(jobs)
			rng := rand.New(rand.NewPCG(seed, seed^0x5851f42d4c957f2d))
			for {
				now := time.Now()
				if !now.Before(measureTo) {
					return
				}
				rate := cfg.Rate
				if cfg.Ramp > 0 {
					if into := now.Sub(start); into < cfg.Ramp {
						rate = cfg.Rate * float64(into) / float64(cfg.Ramp)
						if rate < 1 {
							rate = 1
						}
					}
				}
				// Exponential inter-arrival for a Poisson process.
				gap := time.Duration(-math.Log(1-rng.Float64()) * float64(time.Second) / rate)
				time.Sleep(gap)
				arrive := time.Now()
				if !arrive.Before(measureTo) {
					return
				}
				select {
				case jobs <- arrive:
				default:
					if !arrive.Before(measureFrom) {
						drops.Add(1)
					}
				}
			}
		}()
		for i, w := range workers {
			wg.Add(1)
			go func(w Worker, rec *workerRec) {
				defer wg.Done()
				for arrive := range jobs {
					class, n, err := w.Do()
					if !arrive.Before(measureFrom) {
						rec.rec(class, time.Since(arrive), n, err)
					}
				}
			}(w, recs[i])
		}
	} else {
		// Closed loop: each worker issues back-to-back; latency is pure
		// service time.
		for i, w := range workers {
			wg.Add(1)
			go func(w Worker, rec *workerRec) {
				defer wg.Done()
				for {
					t0 := time.Now()
					if !t0.Before(measureTo) {
						return
					}
					class, n, err := w.Do()
					if !t0.Before(measureFrom) {
						rec.rec(class, time.Since(t0), n, err)
					}
				}
			}(w, recs[i])
		}
	}
	wg.Wait()

	res := RunResult{
		Scenario: s.Name(),
		Workers:  cfg.Workers,
		Measure:  cfg.Measure,
		Offered:  cfg.Rate,
		Drops:    drops.Load(),
		Classes:  make(map[string]ClassResult),
		Counters: make(map[string]float64),
	}
	// Merge per-worker records: histograms via AtomicHistogram.Merge,
	// counters by summation.
	merged := make(map[string]*classRec)
	var total stats.AtomicHistogram
	for _, rec := range recs {
		for class, c := range rec.classes {
			m := merged[class]
			if m == nil {
				m = &classRec{}
				merged[class] = m
			}
			m.hist.Merge(&c.hist)
			total.Merge(&c.hist)
			m.ops += c.ops
			m.errors += c.errors
			m.bytes += c.bytes
		}
	}
	for class, m := range merged {
		res.Classes[class] = ClassResult{
			Ops:     m.ops,
			Errors:  m.errors,
			Bytes:   m.bytes,
			Latency: m.hist.Summarize(),
		}
		res.Ops += m.ops
		res.Errors += m.errors
		res.Bytes += m.bytes
	}
	res.Latency = total.Summarize()
	res.Achieved = float64(res.Ops) / cfg.Measure.Seconds()

	after := env.SessionTotals()
	res.Counters["retries"] = float64(after.Retries - before.Retries)
	res.Counters["timeouts"] = float64(after.Timeouts - before.Timeouts)
	res.Counters["transport-errors"] = float64(after.TransportErrors - before.TransportErrors)
	res.Counters["failures"] = float64(after.Failures - before.Failures)
	res.Counters["dedup-replays"] = float64(after.DedupReplays - before.DedupReplays)
	res.Counters["failover-reads"] = float64(after.FailoverReads - before.FailoverReads)
	res.Counters["repairs-done"] = float64(after.RepairsDone - before.RepairsDone)
	res.Counters["under-replicated"] = float64(after.UnderReplicated)
	res.Counters["migrated-refs"] = float64(after.MigratedRefs - before.MigratedRefs)
	res.Counters["migrated-bytes"] = float64(after.MigratedBytes - before.MigratedBytes)
	res.Counters["reclaimed-replicas"] = float64(after.ReclaimedReplicas - before.ReclaimedReplicas)
	if hits, misses := after.CacheHits-before.CacheHits, after.CacheMisses-before.CacheMisses; hits+misses > 0 {
		res.Counters["cache-hits"] = float64(hits)
		res.Counters["cache-misses"] = float64(misses)
		res.Counters["cache-hit-rate"] = float64(hits) / float64(hits+misses)
	}
	for k, v := range s.Counters() {
		res.Counters[k] = v
	}
	return res, nil
}

// workerKeys builds worker w's private key generator over n keys with
// the environment's skew, on an independent per-worker stream.
func workerKeys(env *Env, w int, n uint64, seed uint64) workload.KeyGen {
	ws := workload.DeriveSeed(seed, uint64(w))
	if env.ZipfS <= 0 {
		return workload.NewUniform(n, ws)
	}
	return workload.NewZipf(n, env.ZipfS, ws)
}
