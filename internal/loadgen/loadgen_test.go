package loadgen

import (
	"testing"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/live"
	"repro/internal/pool"
)

// testServerConfig mirrors the pool chaos tests' shard tuning.
func testServerConfig() live.ServerConfig {
	return live.ServerConfig{NumPages: 4096, PageSize: 4096, LeaseTTL: 400 * time.Millisecond}
}

// testEnv builds a small, fast environment over the cluster.
func testEnv(c *Cluster, replicas int) *Env {
	env := &Env{
		Shards:   c.Addrs,
		Replicas: replicas,
		Users:    8,
		Keys:     64,
		ZipfS:    0.99,
		Mix:      SocialMix{Compose: 60, ReadHome: 30, ReadUser: 10},

		MediaSize: 2 << 10,
		Frontends: 2,
		ValueSize: 1 << 10,
		ReadFrac:  0.8,
		BlobSizes: []int{4 << 10},
		Hops:      2,
	}
	env.Pool = pool.Config{
		UnhealthyAfter: 2,
		RejoinPoll:     100 * time.Millisecond,
		RepairInterval: 100 * time.Millisecond,
	}
	env.Pool.Client.HeartbeatInterval = 50 * time.Millisecond
	env.Pool.Client.Net.CallTimeout = 500 * time.Millisecond
	env.Pool.Client.Net.AttemptTimeout = 100 * time.Millisecond
	env.Pool.Client.Net.DialTimeout = 100 * time.Millisecond
	return env.Defaults()
}

// TestClosedLoopSocialNet drives the socialnet mix closed-loop against a
// 2-shard cluster and checks the merged result plus its report record.
func TestClosedLoopSocialNet(t *testing.T) {
	c, err := Launch(2, testServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	env := testEnv(c, 1)
	defer env.CloseSessions()

	s := SocialNet()
	if err := s.Setup(env); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := Run(s, env, RunConfig{
		Workers: 4,
		Warmup:  50 * time.Millisecond,
		Measure: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("closed-loop run completed zero ops")
	}
	if res.Errors != 0 {
		t.Fatalf("closed-loop run had %d errors", res.Errors)
	}
	if res.Achieved <= 0 {
		t.Fatalf("achieved rate %v, want > 0", res.Achieved)
	}
	// The 60% class must appear in a run of any length; tiny windows may
	// legitimately miss the 10% class.
	cr, ok := res.Classes["compose"]
	if !ok {
		t.Fatalf("no compose class in %v", res.Classes)
	}
	if cr.Latency.P50 <= 0 || cr.Latency.P99 < cr.Latency.P50 {
		t.Fatalf("implausible compose latency summary %+v", cr.Latency)
	}

	rep := benchfmt.NewReport()
	Append(&rep, res)
	if len(rep.Results) < 2 {
		t.Fatalf("report got %d results, want headline + classes", len(rep.Results))
	}
	if rep.Results[0].Name != "dmload/socialnet" {
		t.Fatalf("headline result name %q", rep.Results[0].Name)
	}
	if rep.Results[0].Extra["thr-ops-s"] <= 0 {
		t.Fatalf("headline throughput %v", rep.Results[0].Extra["thr-ops-s"])
	}
}

// TestOpenLoopKV offers a fixed Poisson rate to the kv scenario and
// checks offered-vs-achieved accounting and payload verification.
func TestOpenLoopKV(t *testing.T) {
	c, err := Launch(1, testServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	env := testEnv(c, 1)
	defer env.CloseSessions()

	s := KV()
	if err := s.Setup(env); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := Run(s, env, RunConfig{
		Workers: 4,
		Rate:    200,
		Warmup:  50 * time.Millisecond,
		Measure: 400 * time.Millisecond,
		Ramp:    50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("open-loop run completed zero ops")
	}
	if res.Errors != 0 {
		t.Fatalf("open-loop run had %d errors", res.Errors)
	}
	if res.Offered != 200 {
		t.Fatalf("offered rate %v, want 200", res.Offered)
	}
	if res.Counters["payload-loss"] != 0 {
		t.Fatalf("payload loss: %v", res.Counters["payload-loss"])
	}
	// Open loop on loopback at a modest rate: achieved should be within
	// a loose band of offered (drops are accounted, not silent).
	if res.Achieved < res.Offered/4 {
		t.Fatalf("achieved %v far below offered %v (drops %d)", res.Achieved, res.Offered, res.Drops)
	}
}

// TestKVCacheOnVerifiesBytes runs the kv mix with the hot-ref cache
// enabled on every harness session: the byte-for-byte read verification
// must still pass while writes churn the key space (stage new + free
// old), which exercises the epoch-driven invalidation path under real
// mixed load — and the hit counters must land in the run's report.
func TestKVCacheOnVerifiesBytes(t *testing.T) {
	c, err := Launch(2, testServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	env := testEnv(c, 1)
	env.Pool.CacheBytes = 1 << 20
	defer env.CloseSessions()

	s := KV()
	if err := s.Setup(env); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := Run(s, env, RunConfig{
		Workers: 4,
		Warmup:  50 * time.Millisecond,
		Measure: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("cache-on run completed zero ops")
	}
	if res.Errors != 0 {
		t.Fatalf("cache-on run had %d errors", res.Errors)
	}
	if res.Counters["payload-loss"] != 0 {
		t.Fatalf("payload loss with cache on: %v", res.Counters["payload-loss"])
	}
	if res.Counters["cache-hits"] <= 0 {
		t.Fatalf("cache-on run reported no hits: %v", res.Counters)
	}
	if hr := res.Counters["cache-hit-rate"]; hr <= 0 || hr > 1 {
		t.Fatalf("implausible cache-hit-rate %v", hr)
	}
}

// TestKillShardUnderLoad crashes and revives a shard mid-run at R=2 and
// requires every read that succeeded to have returned the right bytes —
// the zero-payload-loss bar for replicated failover.
func TestKillShardUnderLoad(t *testing.T) {
	c, err := Launch(3, testServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	env := testEnv(c, 2)
	defer env.CloseSessions()

	s := KV()
	if err := s.Setup(env); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const victim = 1
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(300 * time.Millisecond)
		if err := c.Kill(victim); err != nil {
			t.Errorf("kill shard %d: %v", victim, err)
			return
		}
		time.Sleep(500 * time.Millisecond)
		if err := c.Restart(victim); err != nil {
			t.Errorf("restart shard %d: %v", victim, err)
		}
	}()

	res, err := Run(s, env, RunConfig{
		Workers: 4,
		Warmup:  50 * time.Millisecond,
		Measure: 1500 * time.Millisecond,
	})
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no ops completed through the fault window")
	}
	if res.Counters["payload-loss"] != 0 {
		t.Fatalf("payload loss under failover: %v", res.Counters["payload-loss"])
	}
	t.Logf("kill-a-shard: ops=%d errors=%d retries=%v failover-reads=%v repairs=%v free-errors=%v",
		res.Ops, res.Errors, res.Counters["retries"], res.Counters["failover-reads"],
		res.Counters["repairs-done"], res.Counters["free-errors"])
}

// TestEndpointPick pins and round-robins deterministically.
func TestEndpointPick(t *testing.T) {
	if got := RoundRobin.pick(5, 3, 99); got != 2 {
		t.Fatalf("round-robin pick = %d, want 2", got)
	}
	a := Pinned.pick(0, 3, 7)
	for i := 0; i < 4; i++ {
		if Pinned.pick(0, 3, 7) != a {
			t.Fatal("pinned pick not stable")
		}
	}
	if RoundRobin.pick(2, 1, 0) != 0 {
		t.Fatal("single endpoint must map to 0")
	}
}
