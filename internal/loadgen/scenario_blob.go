package loadgen

import (
	"fmt"
	"sync/atomic"

	"repro/internal/apps"
	"repro/internal/liverpc"
	"repro/internal/workload"
)

// blobScenario is the image-pipeline shape (paper §VI-B): each op
// pushes one payload through an n-hop mover chain to a terminal
// aggregator and checks the sum that unwinds back. The size sweep
// straddles the 256 KiB crossover, so one run exercises both the
// inline path and stage-by-ref with Adopt-free forwarding.
type blobScenario struct {
	dep   *liverpc.ChainDeployment
	sizes []int

	aggLoss atomic.Int64
}

// Blob builds the blob scenario.
func Blob() Scenario { return &blobScenario{} }

func (s *blobScenario) Name() string { return "blob" }

func (s *blobScenario) Setup(env *Env) error {
	dep, err := liverpc.DeployChainWith(env.Hops, env.NewSession, env.RPC)
	if err != nil {
		return err
	}
	s.dep = dep
	s.sizes = env.BlobSizes
	return nil
}

func (s *blobScenario) NewWorker(env *Env, w int) (Worker, error) {
	sess, err := env.NewSession()
	if err != nil {
		return nil, err
	}
	max := 0
	for _, sz := range s.sizes {
		if sz > max {
			max = sz
		}
	}
	return &blobWorker{
		s:    s,
		cl:   liverpc.NewChainClient(sess, s.dep.Addrs[0], env.RPC),
		buf:  make([]byte, max),
		next: w, // stagger the sweep start so workers don't march in phase
		seed: workload.DeriveSeed(env.Seed, uint64(w)),
	}, nil
}

func (s *blobScenario) Counters() map[string]float64 {
	return map[string]float64{"agg-loss": float64(s.aggLoss.Load())}
}

func (s *blobScenario) Close() error {
	if s.dep != nil {
		s.dep.Close()
	}
	return nil
}

type blobWorker struct {
	s    *blobScenario
	cl   *liverpc.ChainClient
	buf  []byte
	next int
	seed uint64
}

func (w *blobWorker) Do() (string, int64, error) {
	size := w.s.sizes[w.next%len(w.s.sizes)]
	w.next++
	w.seed++
	buf := w.buf[:size]
	apps.FillPayload(buf, w.seed)
	class := fmt.Sprintf("blob-%dk", size>>10)
	sum, err := w.cl.Do(buf)
	if err != nil {
		return class, 0, err
	}
	if want := apps.Aggregate(buf); sum != want {
		w.s.aggLoss.Add(1)
		return class, 0, fmt.Errorf("loadgen: blob aggregate %d, want %d", sum, want)
	}
	return class, int64(size), nil
}

func (w *blobWorker) Close() error { return w.cl.Close() }
