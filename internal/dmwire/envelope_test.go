package dmwire

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/dm"
)

func sampleEnvelope() CallEnvelope {
	return CallEnvelope{
		Method:         "chain.do",
		TraceID:        0xfeedface,
		Hop:            3,
		DeadlineMillis: 1500,
		Args: []CallArg{
			{IsRef: true, Ref: dm.Ref{Server: 1, Key: 42, Size: 1 << 20}},
			{Inline: []byte("small inline value")},
		},
	}
}

func TestCallEnvelopeRoundTrip(t *testing.T) {
	env := sampleEnvelope()
	got, err := UnmarshalCallEnvelope(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != env.Method || got.TraceID != env.TraceID ||
		got.Hop != env.Hop || got.DeadlineMillis != env.DeadlineMillis {
		t.Fatalf("header fields: got %+v, want %+v", got, env)
	}
	if len(got.Args) != 2 || !got.Args[0].IsRef || got.Args[0].Ref != env.Args[0].Ref {
		t.Fatalf("ref arg: got %+v", got.Args)
	}
	if got.Args[1].IsRef || !bytes.Equal(got.Args[1].Inline, env.Args[1].Inline) {
		t.Fatalf("inline arg: got %+v", got.Args[1])
	}
}

func TestCallEnvelopeMarshalHdrBulk(t *testing.T) {
	env := sampleEnvelope()
	// Last arg inline: MarshalHdr + Bulk must reassemble to Marshal.
	joined := append(append([]byte(nil), env.MarshalHdr()...), env.Bulk()...)
	if !bytes.Equal(joined, env.Marshal()) {
		t.Fatal("MarshalHdr+Bulk != Marshal for trailing inline arg")
	}
	// Last arg a ref: MarshalHdr degrades to the full encoding, no bulk.
	env.Args[0], env.Args[1] = env.Args[1], env.Args[0]
	if env.Bulk() != nil {
		t.Fatal("Bulk non-nil with trailing ref arg")
	}
	if !bytes.Equal(env.MarshalHdr(), env.Marshal()) {
		t.Fatal("MarshalHdr != Marshal for trailing ref arg")
	}
	// No args at all.
	env.Args = nil
	if env.Bulk() != nil || !bytes.Equal(env.MarshalHdr(), env.Marshal()) {
		t.Fatal("empty-args envelope mishandled")
	}
}

func TestReturnEnvelopeRoundTrip(t *testing.T) {
	env := ReturnEnvelope{Args: []CallArg{
		{Inline: []byte{1, 2, 3}},
		{IsRef: true, Ref: dm.Ref{Server: 0, Key: 7, Size: 4096}},
	}}
	got, err := UnmarshalReturnEnvelope(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Args) != 2 || !bytes.Equal(got.Args[0].Inline, []byte{1, 2, 3}) ||
		got.Args[1].Ref != env.Args[1].Ref {
		t.Fatalf("round trip: got %+v", got.Args)
	}
	// Empty result list round-trips too.
	empty, err := UnmarshalReturnEnvelope(ReturnEnvelope{}.Marshal())
	if err != nil || len(empty.Args) != 0 {
		t.Fatalf("empty return: %+v, %v", empty, err)
	}
}

func TestCallEnvelopeCaps(t *testing.T) {
	long := CallEnvelope{Method: string(make([]byte, MaxMethodLen+1))}
	if _, err := UnmarshalCallEnvelope(long.Marshal()); !errors.Is(err, ErrMethodTooLong) {
		t.Fatalf("oversized method = %v, want ErrMethodTooLong", err)
	}
	many := CallEnvelope{Method: "m", Args: make([]CallArg, MaxCallArgs+1)}
	if _, err := UnmarshalCallEnvelope(many.Marshal()); !errors.Is(err, ErrTooManyArgs) {
		t.Fatalf("oversized arg list = %v, want ErrTooManyArgs", err)
	}
	at := CallEnvelope{Method: "m", Args: make([]CallArg, MaxCallArgs)}
	if _, err := UnmarshalCallEnvelope(at.Marshal()); err != nil {
		t.Fatalf("arg list at the cap = %v", err)
	}
}

func TestCallEnvelopeMalformed(t *testing.T) {
	env := sampleEnvelope()
	full := env.Marshal()
	for _, tc := range []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"truncated header", full[:3]},
		{"truncated args", full[:len(full)-5]},
		{"hdr-only (bulk missing)", env.MarshalHdr()},
	} {
		if _, err := UnmarshalCallEnvelope(tc.b); err == nil {
			t.Fatalf("%s: decode accepted malformed envelope", tc.name)
		}
	}
	if _, err := UnmarshalReturnEnvelope([]byte{2, 0, 0xff}); err == nil {
		t.Fatal("truncated return envelope accepted")
	}
}
