// Package stats provides latency histograms, percentile estimation and
// throughput accounting for the simulation benchmarks.
//
// Histogram uses logarithmically spaced buckets (HDR-style: power-of-two
// ranges subdivided linearly), giving bounded relative error over a huge
// dynamic range in O(1) memory, which is what datacenter tail-latency
// reporting needs.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"
)

// subBucketBits controls resolution: each power-of-two range is divided into
// 2^subBucketBits linear sub-buckets, bounding relative error to ~1/2^bits.
const subBucketBits = 5

const subBuckets = 1 << subBucketBits

// Histogram records non-negative int64 samples (typically nanoseconds) into
// log-spaced buckets. The zero value is ready to use.
type Histogram struct {
	counts  [64 * subBuckets]int64
	total   int64
	sum     int64
	min     int64
	max     int64
	hasData bool
}

// Record adds one sample. Negative samples are clamped to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.total++
	h.sum += v
	if !h.hasData || v < h.min {
		h.min = v
	}
	if !h.hasData || v > h.max {
		h.max = v
	}
	h.hasData = true
}

// bucketIndex maps a value to its bucket. Values below subBuckets map
// linearly; larger values map to (exponent, mantissa-prefix) pairs.
func bucketIndex(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(uint64(v)) // position of top bit, >= subBucketBits
	mant := int(v>>(uint(exp)-subBucketBits)) - subBuckets
	return (exp-subBucketBits+1)*subBuckets + mant
}

// bucketLow returns the smallest value mapping to bucket i, saturating at
// MaxInt64 for buckets beyond the int64 range.
func bucketLow(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	exp := i/subBuckets + subBucketBits - 1
	mant := i%subBuckets + subBuckets
	shift := uint(exp) - subBucketBits
	if shift >= 63 {
		return math.MaxInt64
	}
	v := int64(mant) << shift
	if v < 0 {
		return math.MaxInt64
	}
	return v
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.total }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the smallest recorded sample (0 if empty).
func (h *Histogram) Min() int64 {
	if !h.hasData {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 if empty).
func (h *Histogram) Max() int64 {
	if !h.hasData {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1). For q=1 the
// exact maximum is returned; for an empty histogram 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(math.Ceil(q * float64(h.total)))
	var seen int64
	for i := range h.counts {
		seen += h.counts[i]
		if seen >= rank {
			lo := bucketLow(i)
			if lo < h.min {
				lo = h.min
			}
			if lo > h.max {
				lo = h.max
			}
			return lo
		}
	}
	return h.max
}

// Percentile returns Quantile(p/100).
func (h *Histogram) Percentile(p float64) int64 { return h.Quantile(p / 100) }

// Merge adds all samples of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.total == 0 {
		return
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.sum += other.sum
	h.total += other.total
	if !h.hasData || other.min < h.min {
		h.min = other.min
	}
	if !h.hasData || other.max > h.max {
		h.max = other.max
	}
	h.hasData = true
}

// Reset discards all samples.
func (h *Histogram) Reset() { *h = Histogram{} }

// AtomicHistogram is a concurrency-safe Histogram: per-bucket atomic
// counters sharing Histogram's log-spaced layout, recordable from many
// goroutines with no lock on the hot path. Quantile math runs on a
// Snapshot. The zero value is ready to use.
//
// Snapshots taken while recorders are active are internally consistent
// per counter but not across counters (a sample may be visible in total
// before its bucket, or vice versa) — fine for monitoring and benchmark
// reporting, which read quiescent or near-quiescent histograms.
type AtomicHistogram struct {
	counts [64 * subBuckets]atomic.Int64
	total  atomic.Int64
	sum    atomic.Int64
	// mn/mx hold value+1 so the zero value means "no samples yet".
	mn atomic.Int64
	mx atomic.Int64
}

// Record adds one sample. Negative samples are clamped to zero. Safe for
// concurrent use.
func (h *AtomicHistogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
	for {
		cur := h.mn.Load()
		if cur != 0 && cur <= v+1 {
			break
		}
		if h.mn.CompareAndSwap(cur, v+1) {
			break
		}
	}
	for {
		cur := h.mx.Load()
		if cur >= v+1 {
			break
		}
		if h.mx.CompareAndSwap(cur, v+1) {
			break
		}
	}
}

// Count returns the number of recorded samples.
func (h *AtomicHistogram) Count() int64 { return h.total.Load() }

// Merge adds all of other's samples into h. It is the aggregation step
// for per-worker histograms: each worker records into its own
// AtomicHistogram with no lock or cross-worker cache traffic on the hot
// path, and the harness merges them once at report time. Safe to call
// while either histogram is still being recorded into, with the same
// cross-counter consistency caveat as Snapshot.
func (h *AtomicHistogram) Merge(other *AtomicHistogram) {
	if other.total.Load() == 0 {
		return
	}
	for i := range h.counts {
		if c := other.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.total.Add(other.total.Load())
	h.sum.Add(other.sum.Load())
	if mn := other.mn.Load(); mn != 0 {
		for {
			cur := h.mn.Load()
			if cur != 0 && cur <= mn {
				break
			}
			if h.mn.CompareAndSwap(cur, mn) {
				break
			}
		}
	}
	if mx := other.mx.Load(); mx != 0 {
		for {
			cur := h.mx.Load()
			if cur >= mx {
				break
			}
			if h.mx.CompareAndSwap(cur, mx) {
				break
			}
		}
	}
}

// Snapshot copies the current state into a plain Histogram for quantile
// estimation and merging.
func (h *AtomicHistogram) Snapshot() *Histogram {
	out := &Histogram{}
	for i := range h.counts {
		out.counts[i] = h.counts[i].Load()
	}
	out.total = h.total.Load()
	out.sum = h.sum.Load()
	if mn := h.mn.Load(); mn != 0 {
		out.min = mn - 1
		out.hasData = true
	}
	if mx := h.mx.Load(); mx != 0 {
		out.max = mx - 1
	}
	return out
}

// Summarize returns the standard percentile snapshot.
func (h *AtomicHistogram) Summarize() Summary { return h.Snapshot().Summarize() }

// Summary is a compact snapshot of a histogram.
type Summary struct {
	Count int64
	Mean  float64
	Min   int64
	P50   int64
	P90   int64
	P99   int64
	P995  int64
	P999  int64
	Max   int64
}

// Summarize returns the standard percentile snapshot.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		P50:   h.Percentile(50),
		P90:   h.Percentile(90),
		P99:   h.Percentile(99),
		P995:  h.Percentile(99.5),
		P999:  h.Percentile(99.9),
		Max:   h.Max(),
	}
}

// String formats the summary with nanosecond values rendered as durations.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p99=%s p99.9=%s max=%s",
		s.Count, Dur(int64(s.Mean)), Dur(s.P50), Dur(s.P99), Dur(s.P999), Dur(s.Max))
}

// Dur renders nanoseconds human-readably (ns/µs/ms/s).
func Dur(ns int64) string {
	switch {
	case ns < 1_000:
		return fmt.Sprintf("%dns", ns)
	case ns < 1_000_000:
		return fmt.Sprintf("%.2fµs", float64(ns)/1e3)
	case ns < 1_000_000_000:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.3fs", float64(ns)/1e9)
	}
}

// Bytes renders a byte count human-readably (B/KiB/MiB/GiB).
func Bytes(b int64) string {
	switch {
	case b < 1<<10:
		return fmt.Sprintf("%dB", b)
	case b < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	case b < 1<<30:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	}
}

// Rate renders an operations-per-second rate (ops/Kops/Mops).
func Rate(opsPerSec float64) string {
	switch {
	case opsPerSec < 1e3:
		return fmt.Sprintf("%.1f op/s", opsPerSec)
	case opsPerSec < 1e6:
		return fmt.Sprintf("%.1f Kop/s", opsPerSec/1e3)
	default:
		return fmt.Sprintf("%.2f Mop/s", opsPerSec/1e6)
	}
}

// Gbps renders bytes-over-nanoseconds as gigabits per second.
func Gbps(bytes int64, ns int64) string {
	if ns == 0 {
		return "0Gbps"
	}
	return fmt.Sprintf("%.2fGbps", float64(bytes)*8/float64(ns))
}

// Counter is a monotonically increasing event/byte counter.
type Counter struct {
	n int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Meter converts a count over a virtual-time window into a rate.
type Meter struct {
	Count int64
	Start int64 // window start, ns
	End   int64 // window end, ns
}

// PerSecond returns the count normalized to events per virtual second.
func (m Meter) PerSecond() float64 {
	d := m.End - m.Start
	if d <= 0 {
		return 0
	}
	return float64(m.Count) * 1e9 / float64(d)
}

// Table is a minimal fixed-width text table writer used by the benchmark
// harness to print paper-style result rows.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; each cell is formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, hdr := range t.header {
		width[i] = len(hdr)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// SortRowsByFirstColumn orders rows lexically; useful when experiments
// complete out of order.
func (t *Table) SortRowsByFirstColumn() {
	sort.Slice(t.rows, func(i, j int) bool { return t.rows[i][0] < t.rows[j][0] })
}
