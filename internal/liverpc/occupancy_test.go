package liverpc

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"

	"repro/internal/apps"
	"repro/internal/live"
)

// BenchmarkLiveRPCChainOccupancy verifies that DoAsync-style pipelining
// actually fills the chain, independent of whether the host has the
// cores to profit from it: a hand-built chain whose handlers carry
// in-flight gauges, driven by a ring of CallAsync futures over one
// pre-staged shared ref (the chain only reads it, so one ref serves
// every request). The maxhopN extra metrics report the peak number of
// simultaneously executing handlers per hop — at depth=16 every hop
// must reach 16, proving the futures deliver end-to-end concurrency.
// ns/op gains from that concurrency are bounded by spare cores: on a
// single-core host the chain is CPU-bound and pipelining only reclaims
// scheduler dead time between stages (see EXPERIMENTS.md).
func BenchmarkLiveRPCChainOccupancy(b *testing.B) {
	const hops = 3
	const size = 4 << 10
	dmAddr := benchDM(b)
	for _, depth := range []int{1, 16} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			var lns []net.Listener
			var addrs []string
			for i := 0; i < hops; i++ {
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				lns = append(lns, ln)
				addrs = append(addrs, ln.Addr().String())
				b.Cleanup(func() { ln.Close() })
			}
			cfg := Config{InlineThreshold: 1024}
			inflight := make([]atomic.Int64, hops)
			maxIn := make([]atomic.Int64, hops)
			for i := 0; i < hops; i++ {
				dmc, err := live.Dial(dmAddr)
				if err != nil {
					b.Fatal(err)
				}
				if err := dmc.Register(); err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { dmc.Close() })
				next := ""
				if i < hops-1 {
					next = addrs[i+1]
				}
				s := NewService(fmt.Sprintf("probe%d", i), dmc, cfg)
				s.Handle(ChainMethod, func(ctx *Ctx, args []Payload) ([]Payload, error) {
					cur := inflight[i].Add(1)
					for {
						old := maxIn[i].Load()
						if cur <= old || maxIn[i].CompareAndSwap(old, cur) {
							break
						}
					}
					defer inflight[i].Add(-1)
					if next != "" {
						return ctx.Call(next, ChainMethod, args[0])
					}
					buf, err := ctx.Fetch(args[0])
					if err != nil {
						return nil, err
					}
					return []Payload{U64(apps.Aggregate(buf))}, nil
				})
				go s.Serve(lns[i])
				b.Cleanup(func() { s.Close() })
			}
			dmc, err := live.Dial(dmAddr)
			if err != nil {
				b.Fatal(err)
			}
			if err := dmc.Register(); err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { dmc.Close() })
			caller := NewCaller(dmc, cfg)
			b.Cleanup(func() { caller.Close() })
			payload := make([]byte, size)
			apps.FillPayload(payload, uint64(size))
			want := apps.Aggregate(payload)
			arg, err := caller.Stage(payload)
			if err != nil {
				b.Fatal(err)
			}
			check := func(pc *PendingCall) {
				res, err := pc.Wait()
				if err != nil {
					b.Fatal(err)
				}
				got, err := res[0].AsU64()
				if err != nil || got != want {
					b.Fatalf("sum = %d (%v), want %d", got, err, want)
				}
			}
			b.SetBytes(size)
			b.ResetTimer()
			ring := make([]*PendingCall, 0, depth)
			for i := 0; i < b.N; i++ {
				if len(ring) == depth {
					check(ring[0])
					ring = ring[1:]
				}
				ring = append(ring, caller.CallAsync(addrs[0], ChainMethod, arg))
			}
			for _, pc := range ring {
				check(pc)
			}
			b.StopTimer()
			caller.Release(arg)
			for i := 0; i < hops; i++ {
				b.ReportMetric(float64(maxIn[i].Load()), fmt.Sprintf("maxhop%d", i))
			}
		})
	}
}
