package liverpc

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/live"
	"repro/internal/pool"
)

// TestStaleHintsResolveAfterMigration covers the zero-loss read window
// of DESIGN.md §D16 at the RPC layer: a replicated (v2) ref payload
// marshals the staging-time replica hints into its wire form, a
// migration then moves the copies onto a grown ring's wanted placement
// and reclaims the originals, and a consumer that receives the OLD wire
// bytes must still materialize the payload — the carried hints are
// advisory, and ReadRefFrom fails over through the consumer's ring and
// the cluster registry to wherever the copies live now.
func TestStaleHintsResolveAfterMigration(t *testing.T) {
	scfg := live.ServerConfig{NumPages: 1024, PageSize: 4096}
	var addrs []string
	srvs := make([]*live.Server, 4)
	for i := 0; i < 4; i++ {
		cfg := scfg
		cfg.HasShard = true
		cfg.ShardID = uint32(i)
		srv, addr := startDM(t, cfg)
		srvs[i] = srv
		addrs = append(addrs, addr)
	}
	dialPool := func(shards []string) *pool.Client {
		t.Helper()
		p, err := pool.Dial(pool.Config{
			Shards:            shards,
			ReplicaFactor:     2,
			RegistryHandoff:   true,
			RepairInterval:    -1, // no background pass; migration is explicit below
			RepairBytesPerSec: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		if err := p.Register(); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Producer sees only the original 3 shards; its payloads land on
	// that ring's successors and the wire args carry those shards as
	// replica hints.
	producer := dialPool(addrs[:3])
	const n = 16
	payloads := make([][]byte, n)
	wire := make([]Payload, n)
	for i := range payloads {
		data := make([]byte, 8<<10)
		for j := range data {
			data[j] = byte((i*31 + j) % 251)
		}
		payloads[i] = data
		ref, err := producer.StageRef(data)
		if err != nil {
			t.Fatalf("stage %d: %v", i, err)
		}
		reps := producer.Replicas(ref)
		if len(reps) != 2 {
			t.Fatalf("stage %d: want 2 replicas, got %v", i, reps)
		}
		// Round-trip through the wire form, exactly as a call envelope
		// would carry it between services.
		wire[i] = fromWire(ByReplicated(ref, reps).wireArg())
	}

	// The migrator sees all 4 shards: its sync pass adopts the handed-off
	// directory entries, and its rebalance passes migrate remapped refs
	// onto the grown ring and reclaim the now-surplus originals.
	migrator := dialPool(addrs)
	deadline := time.Now().Add(15 * time.Second)
	for {
		res := migrator.Rebalance()
		if res.TrackedRefs >= n && res.OffPlacement == 0 && migrator.UnderReplicated() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("migration did not converge: %+v", res)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if migrator.MigratedRefs() == 0 {
		t.Fatal("no refs migrated — the join should remap some of the keyspace")
	}

	// A consumer on the new topology materializes every old wire payload
	// even though the hints baked into it may now point at shards whose
	// copy was reclaimed.
	consumer := dialPool(addrs)
	for i, p := range wire {
		got, err := fetch(consumer, p)
		if err != nil {
			t.Fatalf("fetch %d with stale hints: %v", i, err)
		}
		if !bytes.Equal(got, payloads[i]) {
			t.Fatalf("fetch %d: payload corrupt after migration", i)
		}
	}

	// The consumer can free through the same resolution path, leaving
	// nothing live on any shard.
	for i, p := range wire {
		if err := consumer.FreeRef(p.Ref()); err != nil {
			t.Fatalf("free %d: %v", i, err)
		}
	}
	waitLive := time.Now().Add(5 * time.Second)
	for {
		total := 0
		for _, srv := range srvs {
			total += srv.LiveRefs()
		}
		if total == 0 {
			break
		}
		if time.Now().After(waitLive) {
			t.Fatalf("%d refs still live after freeing everything", total)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
