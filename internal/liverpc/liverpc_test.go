package liverpc

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/live"
	"repro/internal/rpc"
)

// startDM runs a live DM server on loopback and returns it with its
// address.
func startDM(t *testing.T, cfg live.ServerConfig) (*live.Server, string) {
	t.Helper()
	srv := live.NewServer(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); err != nil {
			t.Errorf("dm serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("dm close: %v", err)
		}
		<-done
	})
	return srv, ln.Addr().String()
}

func smallDM() live.ServerConfig { return live.ServerConfig{NumPages: 256, PageSize: 4096} }

// dialDM registers a fresh DM session.
func dialDM(t *testing.T, addrs ...string) *live.Client {
	t.Helper()
	cl, err := live.Dial(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if err := cl.Register(); err != nil {
		t.Fatal(err)
	}
	return cl
}

// serveService starts s on a loopback listener and returns its address.
func serveService(t *testing.T, s *Service) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return ln.Addr().String()
}

func TestInlineCallRoundTrip(t *testing.T) {
	s := NewService("echo", nil, Config{})
	s.Handle("echo", func(ctx *Ctx, args []Payload) ([]Payload, error) {
		out := make([]Payload, len(args))
		for i, a := range args {
			buf, err := ctx.Fetch(a)
			if err != nil {
				return nil, err
			}
			out[i] = Inline(append([]byte("got:"), buf...))
		}
		return out, nil
	})
	addr := serveService(t, s)

	c := NewCaller(nil, Config{})
	defer c.Close()
	res, err := c.Call(addr, "echo", Inline([]byte("a")), Inline([]byte("bb")))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || string(res[0].Inline()) != "got:a" || string(res[1].Inline()) != "got:bb" {
		t.Fatalf("echo returned %v", res)
	}
}

func TestRefPayloadStagedOnceAndMaterializedAtConsumer(t *testing.T) {
	srv, dmAddr := startDM(t, smallDM())
	sdm := dialDM(t, dmAddr)
	cdm := dialDM(t, dmAddr)

	var sawRef atomic.Bool
	s := NewService("sum", sdm, Config{})
	s.Handle("sum", func(ctx *Ctx, args []Payload) ([]Payload, error) {
		sawRef.Store(args[0].IsRef())
		buf, err := ctx.Fetch(args[0])
		if err != nil {
			return nil, err
		}
		var sum uint64
		for _, b := range buf {
			sum += uint64(b)
		}
		return []Payload{U64(sum)}, nil
	})
	addr := serveService(t, s)

	c := NewCaller(cdm, Config{InlineThreshold: 512})
	defer c.Close()
	payload := bytes.Repeat([]byte{3}, 8192)
	arg, err := c.Stage(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !arg.IsRef() {
		t.Fatalf("8 KiB payload above a 512 B threshold did not stage: %v", arg)
	}
	res, err := c.Call(addr, "sum", arg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res[0].AsU64()
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(3 * 8192); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if !sawRef.Load() {
		t.Fatal("consumer saw an inline payload, want a ref")
	}
	if err := c.Release(arg); err != nil {
		t.Fatal(err)
	}
	if n := srv.LiveRefs(); n != 0 {
		t.Fatalf("LiveRefs after release = %d, want 0", n)
	}
}

func TestStageThreshold(t *testing.T) {
	_, dmAddr := startDM(t, smallDM())
	cdm := dialDM(t, dmAddr)
	c := NewCaller(cdm, Config{InlineThreshold: 100})
	defer c.Close()

	small, err := c.Stage(make([]byte, 100))
	if err != nil || small.IsRef() {
		t.Fatalf("payload at the threshold: ref=%v err=%v", small.IsRef(), err)
	}
	big, err := c.Stage(make([]byte, 101))
	if err != nil || !big.IsRef() {
		t.Fatalf("payload above the threshold: ref=%v err=%v", big.IsRef(), err)
	}
	c.Release(big)

	forced := NewCaller(nil, Config{ForceInline: true})
	defer forced.Close()
	huge, err := forced.Stage(make([]byte, 1<<20))
	if err != nil || huge.IsRef() {
		t.Fatalf("ForceInline staged by ref: ref=%v err=%v", huge.IsRef(), err)
	}

	always := NewCaller(cdm, Config{InlineThreshold: -1})
	defer always.Close()
	tiny, err := always.Stage([]byte{1})
	if err != nil || !tiny.IsRef() {
		t.Fatalf("negative threshold kept 1 byte inline: ref=%v err=%v", tiny.IsRef(), err)
	}
	always.Release(tiny)
}

func TestDeadlinePropagation(t *testing.T) {
	// middle forwards to tail; tail reports its remaining budget. The
	// budget must shrink monotonically along the chain, and the hop and
	// trace fields must propagate.
	tail := NewService("tail", nil, Config{})
	var tailHop atomic.Uint32
	var tailTrace atomic.Uint64
	tail.Handle("probe", func(ctx *Ctx, args []Payload) ([]Payload, error) {
		tailHop.Store(uint32(ctx.Hop))
		tailTrace.Store(ctx.TraceID)
		return []Payload{U64(uint64(ctx.Remaining() / time.Millisecond))}, nil
	})
	tailAddr := serveService(t, tail)

	mid := NewService("mid", nil, Config{})
	mid.Handle("probe", func(ctx *Ctx, args []Payload) ([]Payload, error) {
		time.Sleep(30 * time.Millisecond) // burn some budget
		return ctx.Call(tailAddr, "probe", args...)
	})
	midAddr := serveService(t, mid)

	c := NewCaller(nil, Config{})
	defer c.Close()
	res, err := c.CallOpts(midAddr, "probe", CallOpts{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	remaining, err := res[0].AsU64()
	if err != nil {
		t.Fatal(err)
	}
	if remaining == 0 || remaining > 2000-25 {
		t.Fatalf("tail saw %d ms remaining, want (0, %d)", remaining, 2000-25)
	}
	if tailHop.Load() != 1 {
		t.Fatalf("tail hop = %d, want 1 (one service-to-service forward)", tailHop.Load())
	}
	if tailTrace.Load() == 0 {
		t.Fatal("trace ID did not propagate")
	}
}

func TestExpiredDeadlineFailsFast(t *testing.T) {
	tail := NewService("tail", nil, Config{})
	tailAddr := serveService(t, tail) // never called
	mid := NewService("mid", nil, Config{})
	mid.Handle("slow", func(ctx *Ctx, args []Payload) ([]Payload, error) {
		time.Sleep(150 * time.Millisecond) // overshoot the caller's budget
		return ctx.Call(tailAddr, "nothing")
	})
	midAddr := serveService(t, mid)

	cfg := Config{}
	cfg.Net.AttemptTimeout = 80 * time.Millisecond
	cfg.Net.MaxRetries = -1
	c := NewCaller(nil, cfg)
	defer c.Close()
	_, err := c.CallOpts(midAddr, "slow", CallOpts{Timeout: 80 * time.Millisecond})
	if !errors.Is(err, live.ErrDeadline) {
		t.Fatalf("expired call = %v, want ErrDeadline", err)
	}
}

func TestUnknownMethodError(t *testing.T) {
	s := NewService("svc", nil, Config{})
	s.Handle("known", func(*Ctx, []Payload) ([]Payload, error) { return nil, nil })
	addr := serveService(t, s)
	c := NewCaller(nil, Config{})
	defer c.Close()
	_, err := c.Call(addr, "unknown")
	var app *rpc.AppError
	if !errors.As(err, &app) || !strings.Contains(app.Msg, "unknown") {
		t.Fatalf("unknown method = %v, want AppError naming the method", err)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	s := NewService("svc", nil, Config{})
	s.Handle("fail", func(*Ctx, []Payload) ([]Payload, error) {
		return nil, fmt.Errorf("kaboom at depth")
	})
	addr := serveService(t, s)
	c := NewCaller(nil, Config{})
	defer c.Close()
	_, err := c.Call(addr, "fail")
	var app *rpc.AppError
	if !errors.As(err, &app) || !strings.Contains(app.Msg, "kaboom") {
		t.Fatalf("handler error = %v, want AppError carrying the message", err)
	}
}

// TestCallDedupAcrossTornWrite proves app calls reuse the transport's
// retry+dedup machinery: a torn first write retries transparently, and
// the handler still executes exactly once.
func TestCallDedupAcrossTornWrite(t *testing.T) {
	var runs atomic.Int32
	s := NewService("svc", nil, Config{})
	s.Handle("mutate", func(ctx *Ctx, args []Payload) ([]Payload, error) {
		return []Payload{U64(uint64(runs.Add(1)))}, nil
	})
	addr := serveService(t, s)

	inj := faultnet.New()
	cfg := Config{}
	cfg.Net.Dialer = func(a string, timeout time.Duration) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", a, timeout)
		if err != nil {
			return nil, err
		}
		return inj.Conn(c), nil
	}
	cfg.Net.AttemptTimeout = time.Second
	c := NewCaller(nil, cfg)
	defer c.Close()

	inj.TruncateNextWrite()
	res, err := c.Call(addr, "mutate")
	if err != nil {
		t.Fatalf("call did not survive a torn write: %v", err)
	}
	if got, _ := res[0].AsU64(); got != 1 {
		t.Fatalf("handler result = %d, want 1", got)
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("handler ran %d times across the retry, want 1", n)
	}
}

func TestRefPayloadAtDMlessEndpoint(t *testing.T) {
	_, dmAddr := startDM(t, smallDM())
	cdm := dialDM(t, dmAddr)
	stager := NewCaller(cdm, Config{InlineThreshold: 16})
	defer stager.Close()
	arg, err := stager.Stage(make([]byte, 64))
	if err != nil {
		t.Fatal(err)
	}
	defer stager.Release(arg)

	s := NewService("noDM", nil, Config{})
	s.Handle("touch", func(ctx *Ctx, args []Payload) ([]Payload, error) {
		_, err := ctx.Fetch(args[0])
		return nil, err
	})
	addr := serveService(t, s)
	c := NewCaller(cdm, Config{})
	defer c.Close()
	if _, err := c.Call(addr, "touch", arg); err == nil {
		t.Fatal("DM-less service materialized a ref payload")
	}
}
