package migrate

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/dm"
	"repro/internal/registry"
)

// fakeCluster is an in-memory ShardOps: a payload map per shard plus a
// registry per shard, with per-shard health and injectable faults.
type fakeCluster struct {
	mu       sync.Mutex
	shards   map[uint32]map[uint64][]byte
	regs     map[uint32]*registry.Registry
	down     map[uint32]bool
	failRead map[uint32]bool // ReadRef on this shard errors
	stages   int
	frees    int
}

func newFake(n int) *fakeCluster {
	f := &fakeCluster{
		shards:   make(map[uint32]map[uint64][]byte),
		regs:     make(map[uint32]*registry.Registry),
		down:     make(map[uint32]bool),
		failRead: make(map[uint32]bool),
	}
	for i := 0; i < n; i++ {
		f.shards[uint32(i)] = make(map[uint64][]byte)
		f.regs[uint32(i)] = registry.New()
	}
	return f
}

func (f *fakeCluster) put(shard uint32, key uint64, data []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shards[shard][key] = append([]byte(nil), data...)
}

func (f *fakeCluster) Healthy(shard uint32) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return !f.down[shard]
}

func (f *fakeCluster) ReadRef(shard uint32, key uint64, size, off int64, dst []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failRead[shard] {
		return fmt.Errorf("injected read fault on shard %d", shard)
	}
	data, ok := f.shards[shard][key]
	if !ok {
		return dm.ErrBadRef
	}
	copy(dst, data[off:off+int64(len(dst))])
	return nil
}

func (f *fakeCluster) StageAt(shard uint32, key uint64, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.shards[shard][key]; ok {
		return dm.ErrRefExists
	}
	f.shards[shard][key] = append([]byte(nil), data...)
	f.stages++
	return nil
}

func (f *fakeCluster) FreeRef(shard uint32, key uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.shards[shard][key]; !ok {
		return dm.ErrBadRef
	}
	delete(f.shards[shard], key)
	f.frees++
	return nil
}

func (f *fakeCluster) RegPut(shard uint32, ent registry.Entry) error {
	f.regs[shard].Put(ent)
	return nil
}

func (f *fakeCluster) holders(key uint64) []uint32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []uint32
	for id, m := range f.shards {
		if _, ok := m[key]; ok {
			out = append(out, id)
		}
	}
	return out
}

const K = uint64(1) << 63 // stand-in for the pool-minted key bit

func wantFixed(m map[uint64][]uint32) func(uint64) []uint32 {
	return func(key uint64) []uint32 { return m[key] }
}

func TestPlanDiffs(t *testing.T) {
	cur := []Placement{
		{Key: K | 1, Size: 10, Epoch: 1, Have: []uint32{0, 1}}, // on target
		{Key: K | 2, Size: 20, Epoch: 1, Have: []uint32{0, 2}}, // 2 -> 1
		{Key: K | 3, Size: 30, Epoch: 1, Have: []uint32{0}},    // under-replicated
		{Key: K | 4, Size: 40, Epoch: 1, Have: []uint32{0, 1, 2}}, // surplus only
	}
	want := wantFixed(map[uint64][]uint32{
		K | 1: {0, 1}, K | 2: {0, 1}, K | 3: {0, 1}, K | 4: {0, 1},
	})
	moves := Plan(cur, want, Limits{})
	if len(moves) != 3 {
		t.Fatalf("planned %d moves, want 3: %+v", len(moves), moves)
	}
	mv := moves[0]
	if mv.Key != K|2 || len(mv.CopyTo) != 1 || mv.CopyTo[0] != 1 || len(mv.DropFrom) != 1 || mv.DropFrom[0] != 2 {
		t.Fatalf("move for key 2: %+v", mv)
	}
	if mv := moves[1]; len(mv.CopyTo) != 1 || len(mv.DropFrom) != 0 {
		t.Fatalf("repair-only move: %+v", mv)
	}
	if mv := moves[2]; len(mv.CopyTo) != 0 || len(mv.DropFrom) != 1 {
		t.Fatalf("reclaim-only move: %+v", mv)
	}
}

func TestPlanBounded(t *testing.T) {
	var cur []Placement
	for i := 0; i < 100; i++ {
		cur = append(cur, Placement{Key: K | uint64(i), Size: 1000, Have: []uint32{0}})
	}
	want := func(uint64) []uint32 { return []uint32{0, 1} }
	if got := len(Plan(cur, want, Limits{MaxMoves: 7})); got != 7 {
		t.Fatalf("MaxMoves: planned %d, want 7", got)
	}
	if got := len(Plan(cur, want, Limits{MaxBytes: 4500})); got != 5 {
		t.Fatalf("MaxBytes: planned %d, want 5", got)
	}
}

// TestExecutorMigrates runs the full copy -> verify -> flip -> drop
// machine and checks the payload lands intact, the surplus is freed,
// and the registry flip is published at a bumped epoch.
func TestExecutorMigrates(t *testing.T) {
	f := newFake(3)
	key := K | 7
	payload := []byte("migrate me please, 23 b")
	f.put(0, key, payload)
	f.put(2, key, payload)

	moves := Plan(
		[]Placement{{Key: key, Size: int64(len(payload)), Epoch: 3, Have: []uint32{0, 2}}},
		wantFixed(map[uint64][]uint32{key: {0, 1}}), Limits{})
	var flips int
	ex := &Executor{Ops: f, Registry: true, OnFlip: func(k, ep uint64, w []uint32) {
		flips++
		if k != key || ep != 4 || len(w) != 2 {
			t.Errorf("flip %x epoch %d want %v", k, ep, w)
		}
	}}
	res := ex.Run(moves)
	if res.MovedRefs != 1 || res.MovedBytes != int64(len(payload)) || res.ReclaimedReplicas != 1 || res.Errors != 0 {
		t.Fatalf("result: %+v", res)
	}
	if flips != 1 {
		t.Fatalf("%d flips, want 1", flips)
	}
	got := f.holders(key)
	if len(got) != 2 {
		t.Fatalf("holders after migrate: %v", got)
	}
	dst := make([]byte, len(payload))
	if err := f.ReadRef(1, key, int64(len(payload)), 0, dst); err != nil || string(dst) != string(payload) {
		t.Fatalf("migrated copy: %q, %v", dst, err)
	}
	for _, id := range []uint32{0, 1} {
		ent, ok := f.regs[id].Get(key)
		if !ok || ent.Epoch != 4 {
			t.Fatalf("registry on shard %d after flip: %+v ok=%v", id, ent, ok)
		}
	}
}

// TestExecutorZeroLossGuard: when a wanted copy cannot be verified or
// re-staged, the surplus drop is skipped — a leak beats a loss.
func TestExecutorZeroLossGuard(t *testing.T) {
	f := newFake(3)
	key := K | 9
	payload := []byte("precious")
	f.put(2, key, payload) // only the surplus shard has it
	f.failRead[0] = true   // wanted shard 0 can't be probed

	moves := []Move{{
		Key: key, Size: int64(len(payload)), Epoch: 1,
		Want: []uint32{0, 1}, Sources: []uint32{2},
		CopyTo: []uint32{0, 1}, DropFrom: []uint32{2},
	}}
	// StageAt on shard 0 succeeds (only reads fail), so make staging the
	// failure instead: mark shard 0 down after staging to 1.
	f.down[0] = true
	res := (&Executor{Ops: f}).Run(moves)
	if res.ReclaimedReplicas != 0 || res.SkippedDrops == 0 {
		t.Fatalf("dropped surplus despite unverifiable placement: %+v", res)
	}
	if got := f.holders(key); len(got) < 2 {
		t.Fatalf("holders: %v (surplus must be retained)", got)
	}
	dst := make([]byte, len(payload))
	if err := f.ReadRef(2, key, int64(len(payload)), 0, dst); err != nil || string(dst) != string(payload) {
		t.Fatalf("payload lost: %v", err)
	}
}

// TestExecutorVerifyRestages: a believed copy that silently vanished
// (shard restarted) is detected by the probe and re-staged before the
// surplus is dropped.
func TestExecutorVerifyRestages(t *testing.T) {
	f := newFake(3)
	key := K | 11
	payload := []byte("verify finds the hole")
	// Believed placement says {0,1} hold it, but shard 1 lost its copy;
	// shard 2 holds a surplus copy.
	f.put(0, key, payload)
	f.put(2, key, payload)

	moves := []Move{{
		Key: key, Size: int64(len(payload)), Epoch: 1,
		Want: []uint32{0, 1}, Sources: []uint32{0, 1, 2},
		DropFrom: []uint32{2},
	}}
	res := (&Executor{Ops: f}).Run(moves)
	if res.ReclaimedReplicas != 1 || res.Errors != 0 {
		t.Fatalf("result: %+v", res)
	}
	dst := make([]byte, len(payload))
	if err := f.ReadRef(1, key, int64(len(payload)), 0, dst); err != nil || string(dst) != string(payload) {
		t.Fatalf("hole not re-staged: %v", err)
	}
	if got := f.holders(key); len(got) != 2 {
		t.Fatalf("holders: %v", got)
	}
}

// TestExecutorRacingRepairer: ErrRefExists on stage counts as a
// confirmed copy, and an already-freed surplus still counts reclaimed.
func TestExecutorRacingRepairer(t *testing.T) {
	f := newFake(2)
	key := K | 13
	payload := []byte("raced")
	f.put(0, key, payload)
	f.put(1, key, payload) // the "racing repairer" already landed it

	moves := []Move{{
		Key: key, Size: int64(len(payload)), Epoch: 1,
		Want: []uint32{1}, Sources: []uint32{0},
		CopyTo: []uint32{1}, DropFrom: []uint32{0},
	}}
	var fresh, stale int
	ex := &Executor{Ops: f, OnCopied: func(_ uint64, _ uint32, _ int64, f bool) {
		if f {
			fresh++
		} else {
			stale++
		}
	}}
	res := ex.Run(moves)
	if fresh != 0 || stale != 1 {
		t.Fatalf("fresh=%d stale=%d", fresh, stale)
	}
	if res.CopiedBytes != 0 || res.ReclaimedReplicas != 1 {
		t.Fatalf("result: %+v", res)
	}
}

func TestExecutorStopAborts(t *testing.T) {
	f := newFake(2)
	var cur []Placement
	for i := 0; i < 50; i++ {
		key := K | uint64(100+i)
		f.put(0, key, []byte("x"))
		cur = append(cur, Placement{Key: key, Size: 1, Have: []uint32{0}})
	}
	moves := Plan(cur, func(uint64) []uint32 { return []uint32{1} }, Limits{})
	stop := make(chan struct{})
	close(stop)
	res := (&Executor{Ops: f, Stop: stop}).Run(moves)
	if res.CopiedReplicas != 0 {
		t.Fatalf("executor ran despite closed stop: %+v", res)
	}
}
