package live

import (
	"errors"
	"math/rand/v2"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/dmwire"
	"repro/internal/rpc"
)

// ErrDeadline is returned when a call (or one attempt of it) exceeds its
// deadline. It matches errors.Is against os.ErrDeadlineExceeded-style
// checks only via itself; callers should test errors.Is(err, ErrDeadline).
var ErrDeadline = errors.New("live: deadline exceeded")

// errConnFailed tags transport-level failures (dial errors, dead or
// poisoned connections, failed writes). Calls that fail with it may or
// may not have executed on the server, so only idempotent or
// dedup-tokened calls retry across it.
var errConnFailed = errors.New("live: connection failed")

// CallOpts tunes one call's failure behaviour.
type CallOpts struct {
	// Timeout is the overall deadline for the call including retries.
	// 0 uses NodeConfig.CallTimeout; negative disables the deadline.
	Timeout time.Duration
	// Idempotent marks the call safe to retry without a dedup token
	// (reads, heartbeats, same-bytes writes).
	Idempotent bool
	// Token, when nonzero, rides the request frame so the server
	// deduplicates retried executions of a non-idempotent mutation
	// (at-most-once application, response replayed on duplicates).
	Token dmwire.Token
}

// isTransient reports whether err is a transport-level failure that a
// retry on a (possibly fresh) connection could cure. Application errors
// — the dm sentinels and AppError statuses — are never transient.
func isTransient(err error) bool {
	return errors.Is(err, errConnFailed) ||
		errors.Is(err, ErrDeadline) ||
		errors.Is(err, os.ErrDeadlineExceeded)
}

// consumer is how a call's response body is delivered internally. At
// most one of the two fields is set. fn borrows the body for the
// duration of the callback; the transport recycles the frame afterwards
// (the copying paths). own receives the whole pooled frame (raw) plus
// the body view into it and, by returning nil, takes ownership of raw —
// the transport then never recycles it, and the new owner must (the
// zero-copy lease paths, via Buf.Release). A non-nil return from own
// declines ownership and the transport recycles the frame as usual.
type consumer struct {
	fn  func(resp []byte) error
	own func(raw, body []byte) error
}

// CallConsumeOpts is CallConsume with explicit failure-behaviour options:
// an overall deadline spanning every attempt, per-attempt timeouts so a
// stalled server cannot absorb the whole budget, and — for idempotent or
// dedup-tokened calls — exponential-backoff retries over the node's
// reconnect path. consume runs at most once, on the successful attempt.
func (n *Node) CallConsumeOpts(addr string, m rpc.Method, hdr, payload []byte, consume func(resp []byte) error, opts CallOpts) error {
	return n.callConsumer(addr, m, hdr, payload, consumer{fn: consume}, opts)
}

// callConsumer is the consumer-typed core of CallConsumeOpts; the lease
// paths reach it directly with an owning consumer. Every synchronous
// call's submission-to-completion latency (retries included) lands in
// the node's histogram here.
func (n *Node) callConsumer(addr string, m rpc.Method, hdr, payload []byte, cons consumer, opts CallOpts) error {
	start := time.Now()
	deadline := n.overallDeadline(opts)
	attempt := func() error {
		return n.attempt(addr, m, hdr, payload, cons, deadline, opts.Token)
	}
	err := n.withRetries(opts, deadline, attempt, attempt)
	n.lat.Record(time.Since(start).Nanoseconds())
	return err
}

// overallDeadline resolves opts into the deadline spanning every attempt
// of one call (zero = unbounded).
func (n *Node) overallDeadline(opts CallOpts) time.Time {
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = n.cfg.CallTimeout
	}
	if timeout > 0 {
		return time.Now().Add(timeout)
	}
	return time.Time{}
}

// attemptDeadline caps one attempt at the sooner of the overall deadline
// and the per-attempt timeout, so a stalled server cannot absorb the
// whole retry budget.
func (n *Node) attemptDeadline(deadline time.Time) time.Time {
	if n.cfg.AttemptTimeout > 0 {
		ad := time.Now().Add(n.cfg.AttemptTimeout)
		if deadline.IsZero() || ad.Before(deadline) {
			return ad
		}
	}
	return deadline
}

// opStats counts call outcomes across the node's shared retry engine,
// one increment site for every public op (sync and async). Snapshotted
// by Client.Stats.
type opStats struct {
	calls         atomic.Int64
	retries       atomic.Int64
	tokenRetries  atomic.Int64
	failures      atomic.Int64
	timeouts      atomic.Int64
	transportErrs atomic.Int64
	creditWaits   atomic.Int64
	creditSheds   atomic.Int64
}

// classify splits one failed attempt's transient error by cause —
// deadline expiry vs transport (dial/conn/write) failure — so operators
// can tell a slow-but-alive server from a dead or unreachable one
// without parsing error strings. Non-transient (application) errors are
// deliberately uncounted here; they surface to the caller.
func (o *opStats) classify(err error) {
	switch {
	case errors.Is(err, ErrDeadline) || errors.Is(err, os.ErrDeadlineExceeded):
		o.timeouts.Add(1)
	case errors.Is(err, errConnFailed):
		o.transportErrs.Add(1)
	}
}

// snapshot reads the counters into the exported Stats form (the
// heartbeat counter lives on the Client and is filled by the caller).
func (o *opStats) snapshot() Stats {
	return Stats{
		Calls:           o.calls.Load(),
		Retries:         o.retries.Load(),
		DedupReplays:    o.tokenRetries.Load(),
		Failures:        o.failures.Load(),
		Timeouts:        o.timeouts.Load(),
		TransportErrors: o.transportErrs.Load(),
		CreditWaits:     o.creditWaits.Load(),
		CreditSheds:     o.creditSheds.Load(),
	}
}

// withRetries is the shared retry engine behind the synchronous calls and
// the async futures: it runs first once, then — while the call is
// retryable (idempotent or tokened), the error transient, the attempt
// budget unspent, and the deadline unmet — runs again after a jittered
// exponential backoff. The first/again split lets an async Wait resume an
// attempt already in flight (await only) and fall back to full re-sends.
func (n *Node) withRetries(opts CallOpts, deadline time.Time, first, again func() error) error {
	n.ops.calls.Add(1)
	canRetry := (opts.Idempotent || !opts.Token.IsZero()) && n.cfg.MaxRetries > 0
	backoff := n.cfg.RetryBackoff
	f := first
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			n.ops.retries.Add(1)
			if !opts.Token.IsZero() {
				n.ops.tokenRetries.Add(1)
			}
		}
		err := f()
		if err == nil {
			return nil
		}
		n.ops.classify(err)
		f = again
		if !canRetry || attempt >= n.cfg.MaxRetries || !isTransient(err) {
			n.ops.failures.Add(1)
			return err
		}
		// Full jitter on the exponential backoff so synchronized clients
		// don't stampede a recovering server.
		d := time.Duration(rand.Int64N(int64(backoff)) + int64(backoff)/2)
		if backoff *= 2; backoff > n.cfg.RetryBackoffMax {
			backoff = n.cfg.RetryBackoffMax
		}
		if !deadline.IsZero() {
			rem := time.Until(deadline)
			if rem <= 0 {
				n.ops.failures.Add(1)
				return err
			}
			if d >= rem {
				d = rem / 2 // leave budget for the retry itself
			}
		}
		time.Sleep(d)
	}
}

// attempt performs one request/response exchange, bounded by the sooner
// of the overall deadline and the per-attempt timeout.
func (n *Node) attempt(addr string, m rpc.Method, hdr, payload []byte, cons consumer, deadline time.Time, tok dmwire.Token) error {
	ad := n.attemptDeadline(deadline)
	c, err := n.peer(addr, ad)
	if err != nil {
		return err
	}
	return c.call(m, hdr, payload, cons, ad, tok)
}
