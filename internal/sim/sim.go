// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine drives a set of processes (goroutines) under a virtual
// nanosecond clock with strict single-runner handoff: at any instant exactly
// one goroutine — either the engine's event loop or a single process — is
// executing. Combined with FIFO waiter queues and a seeded PRNG, a run with
// the same seed is fully deterministic.
//
// Processes are spawned with Engine.Spawn and interact with virtual time
// through the Proc handle (Sleep, waiting on Chan/Resource/Cond). Plain
// timed callbacks can be scheduled with Engine.At / Engine.After.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
)

// Time is a virtual timestamp in nanoseconds since the start of the run.
type Time = int64

// Common durations in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now    Time
	heap   eventHeap
	seq    uint64
	rng    *rand.Rand
	parked chan struct{} // handoff: a running proc signals here when it yields
	closed bool
	procs  map[*Proc]struct{}
	nextID int
}

// NewEngine returns an engine with its virtual clock at zero and a PRNG
// seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng:    rand.New(rand.NewSource(seed)),
		parked: make(chan struct{}),
		procs:  make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic PRNG. It must only be used from
// event callbacks and process goroutines driven by this engine.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Event is a handle to a scheduled callback. Cancel prevents a pending event
// from firing; cancelling an already-fired event is a no-op.
type Event struct {
	t        Time
	seq      uint64
	fn       func()
	canceled bool
}

// Cancel marks the event so it will not fire.
func (ev *Event) Cancel() { ev.canceled = true }

// At schedules fn to run at virtual time t. Scheduling in the past is an
// error in the caller; the event is clamped to the current time.
func (e *Engine) At(t Time, fn func()) *Event {
	if e.closed {
		// Killed processes unwind through deferred Releases and other
		// cleanup that schedules wakeups; those are meaningless after
		// Shutdown, so return an inert, already-cancelled event.
		return &Event{canceled: true}
	}
	if t < e.now {
		t = e.now
	}
	ev := &Event{t: t, seq: e.seq, fn: fn}
	e.seq++
	e.heap.push(ev)
	return ev
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) *Event { return e.At(e.now+d, fn) }

// Run drives the simulation until no events remain. Processes blocked on
// channels or resources with no pending wakeups do not keep Run alive.
func (e *Engine) Run() { e.RunUntil(-1) }

// RunUntil drives the simulation until no events remain or until the next
// event would fire after limit (limit < 0 means no limit). The clock never
// advances past the last executed event.
func (e *Engine) RunUntil(limit Time) {
	for e.heap.len() > 0 {
		ev := e.heap.peek()
		if ev.canceled {
			e.heap.pop()
			continue
		}
		if limit >= 0 && ev.t > limit {
			e.now = limit
			return
		}
		e.heap.pop()
		e.now = ev.t
		ev.fn()
	}
}

// Shutdown terminates all parked process goroutines. After Shutdown the
// engine must not be used. It is safe to call when Run has returned.
func (e *Engine) Shutdown() {
	e.closed = true
	// Unblock every parked proc; its yield() observes closed and unwinds.
	procs := make([]*Proc, 0, len(e.procs))
	for p := range e.procs {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i].id < procs[j].id })
	for _, p := range procs {
		if p.state == procParked || p.state == procNew {
			p.state = procKilled
			p.resume <- struct{}{}
			<-e.parked
		}
	}
}

type procState int

const (
	procNew procState = iota
	procParked
	procRunning
	procDone
	procKilled
)

// Proc is a process handle passed to every spawned process function. All
// blocking operations (Sleep, Chan.Recv, Resource.Acquire, ...) take the
// Proc so the engine can park and resume the goroutine.
type Proc struct {
	eng    *Engine
	name   string
	id     int
	resume chan struct{}
	state  procState
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine driving this process.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

type killed struct{ name string }

// Spawn starts a new process executing fn. The process begins running at the
// current virtual time, after already-scheduled events at this time.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	if e.closed {
		panic("sim: Spawn on a shut-down engine")
	}
	p := &Proc{eng: e, name: name, id: e.nextID, resume: make(chan struct{}, 1)}
	e.nextID++
	e.procs[p] = struct{}{}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killed); ok {
					// Hand control back only after the whole unwind — user
					// defers included — has finished, so killed procs tear
					// down one at a time and never race on shared state.
					e.parked <- struct{}{}
					return
				}
				panic(r)
			}
		}()
		<-p.resume
		if p.state == procKilled {
			delete(e.procs, p)
			e.parked <- struct{}{}
			return
		}
		p.state = procRunning
		fn(p)
		p.state = procDone
		delete(e.procs, p)
		e.parked <- struct{}{}
	}()
	e.At(e.now, func() { e.wake(p) })
	return p
}

// wake transfers control to p and blocks the engine until p yields, exits,
// or is killed. Must be called from the engine goroutine (event callbacks).
func (e *Engine) wake(p *Proc) {
	if p.state == procDone || p.state == procKilled {
		return
	}
	p.resume <- struct{}{}
	<-e.parked
}

// yield parks the calling process and returns control to the engine. The
// process resumes when some event calls wake(p).
func (p *Proc) yield() {
	p.state = procParked
	p.eng.parked <- struct{}{}
	<-p.resume
	if p.state == procKilled || p.eng.closed {
		p.state = procKilled
		delete(p.eng.procs, p)
		// The spawn wrapper signals parked after the unwind completes
		// (user defers run before the engine resumes killing others).
		panic(killed{p.name})
	}
	p.state = procRunning
}

// Sleep suspends the process for d virtual nanoseconds. Negative durations
// sleep zero time but still yield to concurrently scheduled events.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.eng.After(d, func() { p.eng.wake(p) })
	p.yield()
}

// park suspends the process with no scheduled wakeup; some other component
// must later call eng.wakeLater(p). Used by Chan, Resource and Cond.
func (p *Proc) park() { p.yield() }

// wakeLater schedules p to resume at the current virtual time, after events
// already queued at this time. Safe to call from event callbacks and from
// other processes.
func (e *Engine) wakeLater(p *Proc) {
	e.At(e.now, func() { e.wake(p) })
}

func (p *Proc) String() string { return fmt.Sprintf("proc(%s#%d)", p.name, p.id) }
