package simnet

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

func testConfig() Config {
	c := DefaultConfig()
	c.NICBandwidth = 1_000_000_000 // 1 byte/ns for easy math
	c.LinkLatency = 100
	c.SwitchLatency = 50
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.NICBandwidth = 0 },
		func(c *Config) { c.MTU = 0 },
		func(c *Config) { c.LossRate = 1 },
		func(c *Config) { c.LossRate = -0.1 },
		func(c *Config) { c.LinkLatency = -1 },
		func(c *Config) { c.CPUCores = 0 },
		func(c *Config) { c.MemBandwidth = 0 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDatagramDelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, testConfig())
	a := n.AddHost("a")
	b := n.AddHost("b")
	inbox := b.Listen(9)
	var got Datagram
	var at sim.Time
	eng.Spawn("recv", func(p *sim.Proc) {
		got = inbox.Recv(p)
		at = p.Now()
	})
	eng.Spawn("send", func(p *sim.Proc) {
		a.Send(p, b.Addr(9), 7, []byte("ping"))
	})
	eng.Run()
	if string(got.Payload) != "ping" {
		t.Fatalf("payload %q", got.Payload)
	}
	if got.From != (Addr{Host: a.ID(), Port: 7}) || got.To != (Addr{Host: b.ID(), Port: 9}) {
		t.Fatalf("addressing %v -> %v", got.From, got.To)
	}
	// 4B tx (4ns) + 100 + 50 + 100 prop + 4B rx (4ns) = 258ns
	if at != 258 {
		t.Fatalf("delivered at %d, want 258", at)
	}
}

func TestPayloadIsCopied(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, testConfig())
	a := n.AddHost("a")
	b := n.AddHost("b")
	inbox := b.Listen(1)
	buf := []byte("immutable")
	eng.Spawn("send", func(p *sim.Proc) {
		a.Send(p, b.Addr(1), 1, buf)
		copy(buf, "clobbered")
	})
	var got []byte
	eng.Spawn("recv", func(p *sim.Proc) {
		got = inbox.Recv(p).Payload
	})
	eng.Run()
	if !bytes.Equal(got, []byte("immutable")) {
		t.Fatalf("payload %q was aliased to sender buffer", got)
	}
}

func TestOversizePayloadPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, testConfig())
	a := n.AddHost("a")
	b := n.AddHost("b")
	panicked := false
	eng.Spawn("send", func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		a.Send(p, b.Addr(1), 1, make([]byte, n.Config().MTU+1))
	})
	eng.Run()
	if !panicked {
		t.Fatal("oversize send did not panic")
	}
}

func TestUnboundPortDropsSilently(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, testConfig())
	a := n.AddHost("a")
	b := n.AddHost("b")
	eng.Spawn("send", func(p *sim.Proc) {
		a.Send(p, b.Addr(404), 1, []byte("x"))
	})
	eng.Run() // must terminate without delivery
	if n.SentPackets() != 1 {
		t.Fatalf("SentPackets = %d", n.SentPackets())
	}
}

func TestDoubleListenPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, testConfig())
	a := n.AddHost("a")
	a.Listen(5)
	defer func() {
		if recover() == nil {
			t.Fatal("double Listen did not panic")
		}
	}()
	a.Listen(5)
}

func TestTxSerializationQueues(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := testConfig()
	n := New(eng, cfg)
	a := n.AddHost("a")
	b := n.AddHost("b")
	inbox := b.Listen(1)
	var arrivals []sim.Time
	eng.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			inbox.Recv(p)
			arrivals = append(arrivals, p.Now())
		}
	})
	// Two senders on the same host contend for the tx NIC.
	for i := 0; i < 2; i++ {
		eng.Spawn("send", func(p *sim.Proc) {
			a.Send(p, b.Addr(1), 1, make([]byte, 1000))
		})
	}
	eng.Run()
	if len(arrivals) != 2 {
		t.Fatalf("got %d arrivals", len(arrivals))
	}
	// Second packet serializes 1000ns after the first on tx.
	if arrivals[1]-arrivals[0] != 1000 {
		t.Fatalf("inter-arrival %d, want 1000 (tx serialization)", arrivals[1]-arrivals[0])
	}
}

func TestRxSerializationQueuesAcrossSenders(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, testConfig())
	a := n.AddHost("a")
	b := n.AddHost("b")
	c := n.AddHost("c")
	inbox := c.Listen(1)
	var arrivals []sim.Time
	eng.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			inbox.Recv(p)
			arrivals = append(arrivals, p.Now())
		}
	})
	send := func(h *Host) {
		eng.Spawn("send", func(p *sim.Proc) {
			h.Send(p, c.Addr(1), 1, make([]byte, 1000))
		})
	}
	send(a)
	send(b)
	eng.Run()
	// Both arrive at the rx NIC at the same instant; the second must queue
	// behind the first for its rx serialization.
	if arrivals[1]-arrivals[0] != 1000 {
		t.Fatalf("inter-arrival %d, want 1000 (rx serialization)", arrivals[1]-arrivals[0])
	}
}

func TestLossInjection(t *testing.T) {
	eng := sim.NewEngine(42)
	cfg := testConfig()
	cfg.LossRate = 0.5
	n := New(eng, cfg)
	a := n.AddHost("a")
	b := n.AddHost("b")
	inbox := b.Listen(1)
	delivered := 0
	eng.Spawn("recv", func(p *sim.Proc) {
		for {
			inbox.Recv(p)
			delivered++
		}
	})
	const total = 1000
	eng.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < total; i++ {
			a.Send(p, b.Addr(1), 1, []byte("x"))
			p.Sleep(10)
		}
	})
	eng.Run()
	eng.Shutdown()
	if n.DroppedPackets() == 0 {
		t.Fatal("no packets dropped at 50% loss")
	}
	if delivered+int(n.DroppedPackets()) != total {
		t.Fatalf("delivered %d + dropped %d != %d", delivered, n.DroppedPackets(), total)
	}
	if delivered < total/3 || delivered > 2*total/3 {
		t.Fatalf("delivered %d of %d at 50%% loss", delivered, total)
	}
}

func TestTrafficCounters(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, testConfig())
	a := n.AddHost("a")
	b := n.AddHost("b")
	b.Listen(1)
	eng.Spawn("send", func(p *sim.Proc) {
		a.Send(p, b.Addr(1), 1, make([]byte, 100))
	})
	eng.Run()
	if a.TxBytes() != 100 {
		t.Fatalf("TxBytes = %d", a.TxBytes())
	}
	if b.RxBytes() != 100 {
		t.Fatalf("RxBytes = %d", b.RxBytes())
	}
}

func TestMemcpyChargesBus(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := testConfig()
	cfg.MemBandwidth = 1_000_000_000 // 1 byte/ns
	n := New(eng, cfg)
	a := n.AddHost("a")
	var done sim.Time
	eng.Spawn("cp", func(p *sim.Proc) {
		a.Memcpy(p, 500)
		done = p.Now()
	})
	eng.Run()
	if done != 1000 { // read+write pass = 2*500 bytes
		t.Fatalf("memcpy took %d, want 1000", done)
	}
	if a.MemBytesMoved() != 1000 {
		t.Fatalf("MemBytesMoved = %d", a.MemBytesMoved())
	}
}

func TestOneWayLatency(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, testConfig())
	// 1000B at 1B/ns = 1000ns serialization ×2 + 100+50+100 prop.
	if got := n.OneWayLatency(1000); got != 2250 {
		t.Fatalf("OneWayLatency = %d, want 2250", got)
	}
}

func TestHostLookupPanicsOnBadID(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, testConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("bad host id did not panic")
		}
	}()
	n.Host(3)
}

func TestHostAccessors(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, testConfig())
	h := n.AddHost("web-1")
	if h.Name() != "web-1" || h.ID() != 0 || h.Network() != n {
		t.Fatal("host accessors wrong")
	}
	if n.NumHosts() != 1 {
		t.Fatalf("NumHosts = %d", n.NumHosts())
	}
	if got := h.Addr(8).String(); got != "h0:8" {
		t.Fatalf("Addr.String() = %q", got)
	}
	if h.CPU.InUse() != 0 {
		t.Fatal("CPU should start idle")
	}
}
