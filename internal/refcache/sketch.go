package refcache

// sketch is a 4-row count-min frequency estimator with periodic aging
// (all counters halved once the sample window fills), the TinyLFU
// admission filter: cheap, fixed-size, and biased to over-estimate —
// which only ever admits too eagerly, never starves a hot key.
type sketch struct {
	rows   [4][]uint8
	mask   uint64
	adds   int
	sample int // halve every this many adds
}

// init sizes the sketch from the byte budget: one counter slot per
// ~4 KiB of cache, power-of-two, floor 256 — enough resolution that
// distinct hot keys rarely collide on all four rows.
func (s *sketch) init(maxBytes int64) {
	slots := 256
	for int64(slots) < maxBytes/4096 && slots < 1<<20 {
		slots <<= 1
	}
	for i := range s.rows {
		s.rows[i] = make([]uint8, slots)
	}
	s.mask = uint64(slots - 1)
	s.sample = slots * 10
}

// hashes spreads the key over the four rows with splitmix64-style
// mixing, one odd multiplier per row.
func (s *sketch) hashes(k Key) [4]uint64 {
	x := uint64(k.Server)<<48 ^ k.Ref
	var h [4]uint64
	for i, mul := range [4]uint64{
		0x9e3779b97f4a7c15, 0xbf58476d1ce4e5b9, 0x94d049bb133111eb, 0x2545f4914f6cdd1d,
	} {
		v := (x ^ uint64(i)<<61) * mul
		v ^= v >> 29
		v *= 0xff51afd7ed558ccd
		v ^= v >> 32
		h[i] = v & s.mask
	}
	return h
}

// add counts one access, aging all rows when the window fills.
func (s *sketch) add(k Key) {
	h := s.hashes(k)
	for i := range s.rows {
		if c := s.rows[i][h[i]]; c < 255 {
			s.rows[i][h[i]] = c + 1
		}
	}
	s.adds++
	if s.adds >= s.sample {
		s.age()
	}
}

// estimate returns the minimum counter across rows — the standard
// count-min read.
func (s *sketch) estimate(k Key) uint8 {
	h := s.hashes(k)
	min := s.rows[0][h[0]]
	for i := 1; i < len(s.rows); i++ {
		if c := s.rows[i][h[i]]; c < min {
			min = c
		}
	}
	return min
}

// age halves every counter so frequency estimates track the recent
// window rather than all history.
func (s *sketch) age() {
	for i := range s.rows {
		row := s.rows[i]
		for j := range row {
			row[j] >>= 1
		}
	}
	s.adds = 0
}
