// Live demonstrates the real-network DmRPC-net implementation: it starts
// a DM server on a loopback TCP port in-process, then runs the paper's
// Listing 1 flow over actual sockets — producer stages data, only a
// 20-byte Ref crosses the application protocol, the consumer maps the Ref,
// and copy-on-write keeps a consumer write invisible to the producer.
//
//	go run ./examples/live
package main

import (
	"fmt"
	"net"

	"repro/internal/live"
)

func main() {
	// In-process DM server on a loopback port (cmd/dmserverd runs the same
	// thing standalone).
	srv := live.NewServer(live.ServerConfig{NumPages: 4096, PageSize: 4096})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()
	fmt.Printf("DM server on %s (%d pages)\n", addr, srv.FreePages())

	// Two independent "microservices".
	producer, err := live.Dial(addr)
	check(err)
	defer producer.Close()
	check(producer.Register())
	consumer, err := live.Dial(addr)
	check(err)
	defer consumer.Close()
	check(consumer.Register())

	// Producer stages 64 KiB and gets back a tiny Ref.
	payload := make([]byte, 65536)
	for i := range payload {
		payload[i] = byte(i)
	}
	ref, err := producer.StageRef(payload)
	check(err)
	wire := ref.Marshal()
	fmt.Printf("staged %d bytes; the ref on the wire is %d bytes\n", len(payload), len(wire))

	// The Ref is what an RPC would carry. The consumer maps it and reads.
	mapped, err := consumer.MapRef(ref)
	check(err)
	got := make([]byte, len(payload))
	check(consumer.Read(mapped, got))
	for i := range got {
		if got[i] != payload[i] {
			panic("consumer read mismatch")
		}
	}
	fmt.Println("consumer read the full payload through the ref")

	// Consumer writes; copy-on-write isolates the producer's view.
	check(consumer.Write(mapped, []byte("consumer-private-write")))
	probe := make([]byte, 8)
	check(producer.ReadRef(ref, 0, probe))
	fmt.Printf("after consumer write, ref snapshot still starts %v (CoW held)\n", probe)

	// Cleanup: consumer unmaps, producer releases the ref.
	check(consumer.Free(mapped))
	check(producer.FreeRef(ref))
	fmt.Printf("all pages reclaimed: %d free\n", srv.FreePages())
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
