package pool

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/dm"
	"repro/internal/live"
)

// startShard runs one live DM server announcing shard id on loopback.
func startShard(t testing.TB, id uint32, cfg live.ServerConfig) (*live.Server, string) {
	t.Helper()
	cfg.HasShard = true
	cfg.ShardID = id
	srv := live.NewServer(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); err != nil {
			t.Errorf("shard %d serve: %v", id, err)
		}
	}()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("shard %d close: %v", id, err)
		}
		<-done
	})
	return srv, ln.Addr().String()
}

// startCluster runs k shards and a registered pool client over them.
func startCluster(t *testing.T, k int, scfg live.ServerConfig, pcfg Config) ([]*live.Server, *Client) {
	t.Helper()
	srvs := make([]*live.Server, k)
	for i := 0; i < k; i++ {
		srv, addr := startShard(t, uint32(i), scfg)
		srvs[i] = srv
		pcfg.Shards = append(pcfg.Shards, addr)
	}
	p, err := Dial(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	if err := p.Register(); err != nil {
		t.Fatal(err)
	}
	return srvs, p
}

func smallShard() live.ServerConfig { return live.ServerConfig{NumPages: 512, PageSize: 4096} }

// checkAllInvariants runs every shard's D6/D8 conservation check.
func checkAllInvariants(t *testing.T, srvs []*live.Server) {
	t.Helper()
	for i, srv := range srvs {
		if err := srv.CheckInvariants(); err != nil {
			t.Errorf("shard %d invariants: %v", i, err)
		}
	}
}

// TestPoolStageReadAcrossShards stages enough objects to land on every
// shard, reads each back through its located ref, and checks the pages
// actually spread across the cluster.
func TestPoolStageReadAcrossShards(t *testing.T) {
	const k, objects = 3, 48
	srvs, p := startCluster(t, k, smallShard(), Config{})
	refs := make([]dm.Ref, objects)
	bodies := make([][]byte, objects)
	for i := range refs {
		bodies[i] = bytes.Repeat([]byte{byte(i + 1)}, 8192)
		ref, err := p.StageRef(bodies[i])
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}
	perShard := make([]int, k)
	for i, ref := range refs {
		if int(ref.Server) >= k {
			t.Fatalf("ref %d located on unknown shard %d", i, ref.Server)
		}
		perShard[ref.Server]++
		got := make([]byte, len(bodies[i]))
		if err := p.ReadRef(ref, 0, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, bodies[i]) {
			t.Fatalf("ref %d read back wrong bytes", i)
		}
	}
	for id, n := range perShard {
		if n == 0 {
			t.Errorf("shard %d received no objects (distribution %v)", id, perShard)
		}
		if lr := srvs[id].LiveRefs(); lr != n {
			t.Errorf("shard %d holds %d live refs, want %d", id, lr, n)
		}
	}
	for _, ref := range refs {
		if err := p.FreeRef(ref); err != nil {
			t.Fatal(err)
		}
	}
	checkAllInvariants(t, srvs)
}

// TestPoolKeyedPlacement pins StageRefKeyed determinism: the same key
// lands on the same shard every time, and agrees with the ring.
func TestPoolKeyedPlacement(t *testing.T) {
	_, p := startCluster(t, 3, smallShard(), Config{})
	for key := uint64(0); key < 32; key++ {
		want, _ := p.ring.Lookup(key)
		for round := 0; round < 2; round++ {
			ref, err := p.StageRefKeyed(key, []byte("keyed"))
			if err != nil {
				t.Fatal(err)
			}
			if ref.Server != want {
				t.Fatalf("key %d round %d landed on shard %d, ring says %d", key, round, ref.Server, want)
			}
			if err := p.FreeRef(ref); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestPoolAllocWriteReadFree drives the address-based surface: the tag
// byte routes Write/Read/Free back to the owning shard, and CreateRef
// mints located refs readable by a second pool client sharing the map.
func TestPoolAllocWriteReadFree(t *testing.T) {
	srvs, p := startCluster(t, 3, smallShard(), Config{})
	body := bytes.Repeat([]byte{0xab}, 16384)
	addrs := make([]dm.RemoteAddr, 6)
	for i := range addrs {
		addr, err := p.Alloc(int64(len(body)))
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
		if err := p.Write(addr, body); err != nil {
			t.Fatal(err)
		}
	}
	// Second client over the same cluster resolves located refs made by
	// the first — the cross-process sharing the shard map enables.
	p2, err := Dial(Config{Shards: p.cfg.Shards})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if err := p2.Register(); err != nil {
		t.Fatal(err)
	}
	for _, addr := range addrs {
		got := make([]byte, len(body))
		if err := p.Read(addr, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, body) {
			t.Fatal("read back wrong bytes")
		}
		ref, err := p.CreateRef(addr, int64(len(body)))
		if err != nil {
			t.Fatal(err)
		}
		mapped, err := p2.MapRef(ref)
		if err != nil {
			t.Fatal(err)
		}
		got2 := make([]byte, len(body))
		if err := p2.Read(mapped, got2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got2, body) {
			t.Fatal("cross-client mapped read wrong bytes")
		}
		if err := p2.Free(mapped); err != nil {
			t.Fatal(err)
		}
		if err := p2.FreeRef(ref); err != nil {
			t.Fatal(err)
		}
		if err := p.Free(addr); err != nil {
			t.Fatal(err)
		}
	}
	checkAllInvariants(t, srvs)
}

// TestPoolAsyncPipelines drives the async surface: a burst of staged
// futures, then async reads back, all located.
func TestPoolAsyncPipelines(t *testing.T) {
	srvs, p := startCluster(t, 2, smallShard(), Config{})
	const burst = 16
	body := bytes.Repeat([]byte{7}, 8192)
	pend := make([]*AsyncRef, burst)
	for i := range pend {
		pend[i] = p.StageRefAsync(body)
	}
	refs := make([]dm.Ref, burst)
	for i, ar := range pend {
		ref, err := ar.Wait()
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}
	reads := make([]*AsyncOp, burst)
	bufs := make([][]byte, burst)
	for i, ref := range refs {
		bufs[i] = make([]byte, len(body))
		reads[i] = p.ReadRefAsync(ref, 0, bufs[i])
	}
	for i, op := range reads {
		if err := op.Wait(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bufs[i], body) {
			t.Fatalf("async read %d wrong bytes", i)
		}
	}
	for _, ref := range refs {
		if err := p.FreeRef(ref); err != nil {
			t.Fatal(err)
		}
	}
	checkAllInvariants(t, srvs)
}

// TestPoolShardIDVerification pins the registration safety check: a pool
// whose server list disagrees with the servers' announced shard IDs must
// refuse to register.
func TestPoolShardIDVerification(t *testing.T) {
	_, addr0 := startShard(t, 0, smallShard())
	_, addr1 := startShard(t, 1, smallShard())
	p, err := Dial(Config{Shards: []string{addr1, addr0}}) // swapped
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	err = p.Register()
	if err == nil || !strings.Contains(err.Error(), "announces shard") {
		t.Fatalf("shuffled shard list registered: %v", err)
	}
}

// TestPoolStatsAggregation checks the Stats satellite end to end: ops
// through the pool show up in the aggregate counters.
func TestPoolStatsAggregation(t *testing.T) {
	_, p := startCluster(t, 2, smallShard(), Config{})
	before := p.Stats()
	for i := 0; i < 10; i++ {
		ref, err := p.StageRef([]byte("stats"))
		if err != nil {
			t.Fatal(err)
		}
		if err := p.FreeRef(ref); err != nil {
			t.Fatal(err)
		}
	}
	after := p.Stats()
	if got := after.Calls - before.Calls; got < 20 {
		t.Fatalf("aggregate Calls grew by %d, want >= 20", got)
	}
	per := p.ShardStats()
	if len(per) != 2 {
		t.Fatalf("ShardStats returned %d entries", len(per))
	}
	var sum int64
	for _, st := range per {
		sum += st.Calls
	}
	if sum != after.Calls {
		t.Fatalf("per-shard calls sum %d != aggregate %d", sum, after.Calls)
	}
}

// TestPoolBadShardRef pins consume-side validation: a ref naming a shard
// outside the cluster fails cleanly with dm.ErrBadAddress.
func TestPoolBadShardRef(t *testing.T) {
	_, p := startCluster(t, 2, smallShard(), Config{})
	bad := dm.Ref{Server: 9, Key: 1, Size: 8}
	if err := p.ReadRef(bad, 0, make([]byte, 8)); !errors.Is(err, dm.ErrBadAddress) {
		t.Fatalf("out-of-cluster ref: %v", err)
	}
	if err := p.FreeRef(bad); !errors.Is(err, dm.ErrBadAddress) {
		t.Fatalf("out-of-cluster free: %v", err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
