package live

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// testWriteConn is a net.Conn stub for exercising the batch writer
// without sockets: per-Write delay (so the submission queue builds while
// a flush is in flight), injectable write and SetWriteDeadline errors,
// and byte/call accounting.
type testWriteConn struct {
	mu       sync.Mutex
	delay    time.Duration
	writeErr error // returned by every Write once set
	sdErr    error // returned by every SetWriteDeadline once set
	wrote    int
	writes   int
}

func (c *testWriteConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	delay, werr := c.delay, c.writeErr
	c.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if werr != nil {
		return 0, werr
	}
	c.mu.Lock()
	c.wrote += len(b)
	c.writes++
	c.mu.Unlock()
	return len(b), nil
}

func (c *testWriteConn) totals() (bytes, calls int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wrote, c.writes
}

func (c *testWriteConn) Read([]byte) (int, error)        { return 0, io.EOF }
func (c *testWriteConn) Close() error                    { return nil }
func (c *testWriteConn) LocalAddr() net.Addr             { return nil }
func (c *testWriteConn) RemoteAddr() net.Addr            { return nil }
func (c *testWriteConn) SetDeadline(time.Time) error     { return nil }
func (c *testWriteConn) SetReadDeadline(time.Time) error { return nil }
func (c *testWriteConn) SetWriteDeadline(time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sdErr
}

func testBatchConfig() batchWriterConfig {
	return batchWriterConfig{limit: 1024, batchBytes: 64 << 10, queueBytes: 256 << 10, writeTimeout: time.Second}
}

// TestBatchWriterCoalesces proves group commit: with the socket slow, a
// burst of enqueued frames drains in far fewer vectored flushes than
// frames, with every byte delivered and close() waiting for the drain.
func TestBatchWriterCoalesces(t *testing.T) {
	var stats writeStats
	tc := &testWriteConn{delay: 5 * time.Millisecond}
	bw := newBatchWriter(tc, testBatchConfig(), &stats, nil)
	const frames, frameLen = 32, 64
	for i := 0; i < frames; i++ {
		if err := bw.enqueue(getBuf(frameLen), time.Time{}); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	bw.close()
	if got := stats.frames.Load(); got != frames {
		t.Fatalf("frames flushed = %d, want %d", got, frames)
	}
	if got := stats.bytes.Load(); got != frames*frameLen {
		t.Fatalf("bytes flushed = %d, want %d", got, frames*frameLen)
	}
	if wrote, _ := tc.totals(); wrote != frames*frameLen {
		t.Fatalf("conn saw %d bytes, want %d", wrote, frames*frameLen)
	}
	if dropped := stats.dropped.Load(); dropped != 0 {
		t.Fatalf("%d frames dropped on the happy path", dropped)
	}
	// The first flush takes >=1 frame while the remaining 31 pile up
	// behind the 5 ms write; any group commit at all keeps batches well
	// under frames.
	if b := stats.batches.Load(); b >= frames/2 {
		t.Fatalf("no coalescing: %d batches for %d frames", b, frames)
	}
	if err := bw.enqueue(getBuf(8), time.Time{}); err == nil {
		t.Fatal("enqueue after close succeeded")
	}
}

// TestBatchWriterFailureDrain proves the poison path: a write error
// fires the failure hook exactly once, queued frames are dropped (and
// recycled, not written), and later submissions fail fast.
func TestBatchWriterFailureDrain(t *testing.T) {
	wantErr := errors.New("boom")
	var stats writeStats
	var hookCalls int
	var hookErr error
	tc := &testWriteConn{delay: 5 * time.Millisecond, writeErr: wantErr}
	bw := newBatchWriter(tc, testBatchConfig(), &stats, func(err error) {
		hookCalls++
		hookErr = err
	})
	const frames = 4
	for i := 0; i < frames; i++ {
		if err := bw.enqueue(getBuf(64), time.Time{}); err != nil && !errors.Is(err, wantErr) {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	bw.close() // waits for the flusher, so the failure has happened
	if hookCalls != 1 || !errors.Is(hookErr, wantErr) {
		t.Fatalf("failure hook: %d calls, err %v; want 1 call of %v", hookCalls, hookErr, wantErr)
	}
	if stats.frames.Load() != 0 {
		t.Fatalf("%d frames counted as flushed on a dead conn", stats.frames.Load())
	}
	if stats.dropped.Load() != frames {
		t.Fatalf("dropped = %d, want %d", stats.dropped.Load(), frames)
	}
	if err := bw.enqueue(getBuf(8), time.Time{}); !errors.Is(err, wantErr) {
		t.Fatalf("enqueue after death = %v, want %v", err, wantErr)
	}
	if err := bw.writeDirect(net.Buffers{[]byte("x")}, time.Time{}); !errors.Is(err, wantErr) {
		t.Fatalf("writeDirect after death = %v, want %v", err, wantErr)
	}
}

// TestBatchWriterDeadlineArmFailure is the SetWriteDeadline satellite at
// unit level: a connection whose deadline arm fails is poisoned exactly
// like a failed write, on both the flush and direct paths.
func TestBatchWriterDeadlineArmFailure(t *testing.T) {
	armErr := errors.New("deadline arm failed")
	var stats writeStats
	failed := make(chan error, 1)
	tc := &testWriteConn{sdErr: armErr}
	bw := newBatchWriter(tc, testBatchConfig(), &stats, func(err error) { failed <- err })
	if err := bw.enqueue(getBuf(16), time.Time{}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-failed:
		if !errors.Is(err, armErr) {
			t.Fatalf("poisoned with %v, want %v", err, armErr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deadline-arm failure did not poison the writer")
	}
	if _, calls := tc.totals(); calls != 0 {
		t.Fatal("wrote to the socket after the deadline arm failed")
	}
	bw.close()

	var stats2 writeStats
	bw2 := newBatchWriter(&testWriteConn{sdErr: armErr}, testBatchConfig(), &stats2, nil)
	if err := bw2.writeDirect(net.Buffers{[]byte("x")}, time.Time{}); !errors.Is(err, armErr) {
		t.Fatalf("writeDirect with failing deadline arm = %v, want %v", err, armErr)
	}
	bw2.close()
}

// TestBatchWriterInlineFastPath pins the idle fast path: with the queue
// empty and the socket lock free, enqueueInline writes from the calling
// goroutine (one conn Write, counted as a 1-frame batch); with the
// socket lock held, it falls back to the queue and the flusher delivers.
func TestBatchWriterInlineFastPath(t *testing.T) {
	var stats writeStats
	tc := &testWriteConn{}
	bw := newBatchWriter(tc, testBatchConfig(), &stats, nil)
	if err := bw.enqueueInline(getBuf(32), time.Time{}); err != nil {
		t.Fatal(err)
	}
	if wrote, calls := tc.totals(); wrote != 32 || calls != 1 {
		t.Fatalf("inline path: conn saw %d bytes in %d writes, want 32 in 1", wrote, calls)
	}
	if stats.frames.Load() != 1 || stats.inline.Load() != 1 || stats.batches.Load() != 0 {
		t.Fatalf("inline accounting: frames=%d inline=%d batches=%d, want 1/1/0",
			stats.frames.Load(), stats.inline.Load(), stats.batches.Load())
	}

	// Contended socket: the fallback must queue, not block on wmu.
	bw.wmu.Lock()
	if err := bw.enqueueInline(getBuf(16), time.Time{}); err != nil {
		t.Fatal(err)
	}
	bw.mu.Lock()
	queued := len(bw.queue)
	bw.mu.Unlock()
	if queued != 1 {
		t.Fatalf("contended inline submit queued %d frames, want 1", queued)
	}
	bw.wmu.Unlock()
	bw.close() // drains the queued frame through the flusher
	if got := stats.frames.Load(); got != 2 {
		t.Fatalf("frames after drain = %d, want 2", got)
	}
	if dropped := stats.dropped.Load(); dropped != 0 {
		t.Fatalf("%d frames dropped", dropped)
	}
}

// TestBatchWriterDirectPath checks the zero-copy path's accounting and
// the coalesce predicate, including the negative-limit (disabled) mode.
func TestBatchWriterDirectPath(t *testing.T) {
	var stats writeStats
	cfg := testBatchConfig()
	tc := &testWriteConn{}
	bw := newBatchWriter(tc, cfg, &stats, nil)
	if !bw.coalesce(cfg.limit) || bw.coalesce(cfg.limit+1) {
		t.Fatal("coalesce cutoff off by one")
	}
	body := make([]byte, cfg.limit+1)
	if err := bw.writeDirect(net.Buffers{body[:13], body[13:]}, time.Time{}); err != nil {
		t.Fatal(err)
	}
	bw.close()
	if stats.direct.Load() != 1 || stats.frames.Load() != 1 || stats.batches.Load() != 0 {
		t.Fatalf("direct write accounting: direct=%d frames=%d batches=%d",
			stats.direct.Load(), stats.frames.Load(), stats.batches.Load())
	}
	if stats.bytes.Load() != uint64(len(body)) {
		t.Fatalf("direct bytes = %d, want %d", stats.bytes.Load(), len(body))
	}

	cfg.limit = -1
	bwOff := newBatchWriter(&testWriteConn{}, cfg, &stats, nil)
	if bwOff.coalesce(1) {
		t.Fatal("negative limit must disable coalescing")
	}
	bwOff.close()
}
