package live

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"

	"repro/internal/dm"
	"repro/internal/dmwire"
	"repro/internal/rpc"
)

// Client is a process's live handle on a DM server pool: the Table II API
// over real TCP connections, with allocations round-robined across
// servers, mirroring dmnet.Client. Methods are safe for concurrent use.
type Client struct {
	mu    sync.Mutex
	node  *Node
	addrs []string
	pids  []uint32
	ready bool
	rr    int
}

// conn is one multiplexed TCP connection to a DM server.
type conn struct {
	c       net.Conn
	wmu     sync.Mutex
	pmu     sync.Mutex
	pending map[uint64]chan response
	nextID  uint64
	dead    error
}

type response struct {
	status byte
	body   []byte
}

// Dial connects to every server address in order. The order must match
// across processes sharing refs (Ref.Server is the pool index).
func Dial(addrs ...string) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("live: need at least one server address")
	}
	cl := &Client{node: NewNode(), addrs: addrs, pids: make([]uint32, len(addrs))}
	for _, a := range addrs {
		if _, err := cl.node.peer(a); err != nil {
			cl.Close()
			return nil, err
		}
	}
	return cl, nil
}

// Close tears down every connection.
func (cl *Client) Close() error { return cl.node.Close() }

// readLoop dispatches responses to waiting calls.
func (c *conn) readLoop() {
	for {
		kind, reqID, payload, err := readFrame(c.c)
		if err != nil {
			c.fail(err)
			return
		}
		if kind != kindResponse || len(payload) < 1 {
			c.fail(fmt.Errorf("live: malformed response frame"))
			return
		}
		c.pmu.Lock()
		ch, ok := c.pending[reqID]
		delete(c.pending, reqID)
		c.pmu.Unlock()
		if ok {
			ch <- response{status: payload[0], body: payload[1:]}
		}
	}
}

// fail poisons the connection and unblocks all waiters.
func (c *conn) fail(err error) {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	c.dead = err
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
}

// call performs one request/response exchange.
func (c *conn) call(m rpc.Method, body []byte) ([]byte, error) {
	ch := make(chan response, 1)
	c.pmu.Lock()
	if c.dead != nil {
		c.pmu.Unlock()
		return nil, fmt.Errorf("live: connection failed: %w", c.dead)
	}
	id := c.nextID
	c.nextID++
	c.pending[id] = ch
	c.pmu.Unlock()

	payload := make([]byte, 2+len(body))
	binary.BigEndian.PutUint16(payload, uint16(m))
	copy(payload[2:], body)

	c.wmu.Lock()
	err := writeFrame(c.c, kindRequest, id, payload)
	c.wmu.Unlock()
	if err != nil {
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		// A failed write means the connection is gone; poison it so the
		// owning Node redials on the next call.
		c.fail(err)
		return nil, err
	}

	resp, ok := <-ch
	if !ok {
		c.pmu.Lock()
		err := c.dead
		c.pmu.Unlock()
		return nil, fmt.Errorf("live: connection failed: %w", err)
	}
	if resp.status != dmwire.StatusOK {
		return nil, dmwire.ErrOf(resp.status, string(resp.body))
	}
	return resp.body, nil
}

// Register obtains a PID from every server; must complete before other
// calls.
func (cl *Client) Register() error {
	for i, a := range cl.addrs {
		body, err := cl.node.Call(a, dmwire.MRegister, nil)
		if err != nil {
			return err
		}
		r, err := dmwire.UnmarshalRegisterResp(body)
		if err != nil {
			return err
		}
		cl.pids[i] = r.PID
	}
	cl.mu.Lock()
	cl.ready = true
	cl.mu.Unlock()
	return nil
}

// server picks the pool entry for index i.
func (cl *Client) server(i int) (string, uint32, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if !cl.ready {
		return "", 0, fmt.Errorf("live: client not registered")
	}
	if i < 0 || i >= len(cl.addrs) {
		return "", 0, dm.ErrBadAddress
	}
	return cl.addrs[i], cl.pids[i], nil
}

// next round-robins the target server for allocations and staging.
func (cl *Client) next() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	i := cl.rr
	cl.rr = (cl.rr + 1) % len(cl.addrs)
	return i
}

// Address tagging matches dmnet: the pool index rides in the top byte.
const serverShift = 56

func tagAddr(server int, a dm.RemoteAddr) dm.RemoteAddr {
	return dm.RemoteAddr(uint64(server)<<serverShift | uint64(a))
}

func splitAddr(a dm.RemoteAddr) (int, dm.RemoteAddr) {
	return int(uint64(a) >> serverShift), dm.RemoteAddr(uint64(a) & (1<<serverShift - 1))
}

// Alloc reserves size bytes (ralloc).
func (cl *Client) Alloc(size int64) (dm.RemoteAddr, error) {
	idx := cl.next()
	srv, pid, err := cl.server(idx)
	if err != nil {
		return 0, err
	}
	body, err := cl.node.Call(srv, dmwire.MAlloc, dmwire.AllocReq{PID: pid, Size: size}.Marshal())
	if err != nil {
		return 0, err
	}
	r, err := dmwire.UnmarshalAllocResp(body)
	if err != nil {
		return 0, err
	}
	return tagAddr(idx, r.Addr), nil
}

// Free releases the region at addr (rfree).
func (cl *Client) Free(addr dm.RemoteAddr) error {
	idx, raw := splitAddr(addr)
	srv, pid, err := cl.server(idx)
	if err != nil {
		return err
	}
	_, err = cl.node.Call(srv, dmwire.MFree, dmwire.FreeReq{PID: pid, Addr: raw}.Marshal())
	return err
}

// CreateRef shares [addr, addr+size) read-only (create_ref).
func (cl *Client) CreateRef(addr dm.RemoteAddr, size int64) (dm.Ref, error) {
	idx, raw := splitAddr(addr)
	srv, pid, err := cl.server(idx)
	if err != nil {
		return dm.Ref{}, err
	}
	body, err := cl.node.Call(srv, dmwire.MCreateRef, dmwire.CreateRefReq{PID: pid, Addr: raw, Size: size}.Marshal())
	if err != nil {
		return dm.Ref{}, err
	}
	r, err := dmwire.UnmarshalRefKeyResp(body)
	if err != nil {
		return dm.Ref{}, err
	}
	return dm.Ref{Server: uint32(idx), Key: r.Key, Size: size}, nil
}

// MapRef maps a ref into this process's DM address space (map_ref).
func (cl *Client) MapRef(ref dm.Ref) (dm.RemoteAddr, error) {
	srv, pid, err := cl.server(int(ref.Server))
	if err != nil {
		return 0, err
	}
	body, err := cl.node.Call(srv, dmwire.MMapRef, dmwire.MapRefReq{PID: pid, Key: ref.Key}.Marshal())
	if err != nil {
		return 0, err
	}
	r, err := dmwire.UnmarshalMapRefResp(body)
	if err != nil {
		return 0, err
	}
	return tagAddr(int(ref.Server), r.Addr), nil
}

// FreeRef drops the ref's own page hold.
func (cl *Client) FreeRef(ref dm.Ref) error {
	srv, _, err := cl.server(int(ref.Server))
	if err != nil {
		return err
	}
	_, err = cl.node.Call(srv, dmwire.MFreeRef, dmwire.FreeRefReq{Key: ref.Key}.Marshal())
	return err
}

// Write stores src at addr (rwrite).
func (cl *Client) Write(addr dm.RemoteAddr, src []byte) error {
	idx, raw := splitAddr(addr)
	srv, pid, err := cl.server(idx)
	if err != nil {
		return err
	}
	_, err = cl.node.Call(srv, dmwire.MWrite, dmwire.WriteReq{PID: pid, Addr: raw, Data: src}.Marshal())
	return err
}

// Read loads len(dst) bytes from addr (rread).
func (cl *Client) Read(addr dm.RemoteAddr, dst []byte) error {
	idx, raw := splitAddr(addr)
	srv, pid, err := cl.server(idx)
	if err != nil {
		return err
	}
	body, err := cl.node.Call(srv, dmwire.MRead, dmwire.ReadReq{PID: pid, Addr: raw, Size: uint32(len(dst))}.Marshal())
	if err != nil {
		return err
	}
	if len(body) != len(dst) {
		return fmt.Errorf("live: read returned %d bytes, want %d", len(body), len(dst))
	}
	copy(dst, body)
	return nil
}

// StageRef stages data into fresh pages in one round trip.
func (cl *Client) StageRef(data []byte) (dm.Ref, error) {
	idx := cl.next()
	srv, pid, err := cl.server(idx)
	if err != nil {
		return dm.Ref{}, err
	}
	body, err := cl.node.Call(srv, dmwire.MStage, dmwire.StageReq{PID: pid, Data: data}.Marshal())
	if err != nil {
		return dm.Ref{}, err
	}
	r, err := dmwire.UnmarshalRefKeyResp(body)
	if err != nil {
		return dm.Ref{}, err
	}
	return dm.Ref{Server: uint32(idx), Key: r.Key, Size: int64(len(data))}, nil
}

// ReadRef reads the ref's snapshot without mapping it.
func (cl *Client) ReadRef(ref dm.Ref, off int64, dst []byte) error {
	srv, _, err := cl.server(int(ref.Server))
	if err != nil {
		return err
	}
	body, err := cl.node.Call(srv, dmwire.MReadRef,
		dmwire.ReadRefReq{Key: ref.Key, Off: uint32(off), Size: uint32(len(dst))}.Marshal())
	if err != nil {
		return err
	}
	if len(body) != len(dst) {
		return fmt.Errorf("live: readref returned %d bytes, want %d", len(body), len(dst))
	}
	copy(dst, body)
	return nil
}
