package live

import (
	"sync"
	"sync/atomic"
)

// Zero-copy read delivery (DESIGN.md §D12). The copying read paths
// (Read/ReadRef with a caller dst) pay one memcpy per read: pooled
// response frame -> dst. The lease paths (ReadRefLease/ReadLease) hand
// the application the pooled response frame itself, wrapped in a
// refcounted Buf — the transport's final copy disappears, at the price
// of an explicit ownership contract: every leased Buf must be Released,
// after which its bytes recycle into the frame pool and must not be
// touched.
//
// leasedBufs is the package-wide outstanding-lease gauge. Every Buf
// minted (leased from the pool, wrapped, or copied) increments it; the
// final Release decrements it. Tests assert it returns to its baseline —
// the leak detector for the zero-copy path, including the failure
// cleanups (deadline kills, mid-frame cuts) where no Buf is ever handed
// out and the transport itself must recycle the frame.
var leasedBufs atomic.Int64

// LeasedBufs reports the number of Bufs currently leased out and not yet
// released — 0 when every zero-copy read has been balanced by a Release.
func LeasedBufs() int64 { return leasedBufs.Load() }

// Buf is a refcounted, possibly pool-backed byte buffer leased to the
// application by a zero-copy read. Bytes returns the payload view;
// Release returns the buffer to the transport's frame pool. Retain adds
// a hold for hand-offs across goroutines or ownership boundaries; the
// buffer recycles when the last hold is released.
//
// A Buf is safe for concurrent Retain/Release, but the byte slice itself
// is a plain []byte — readers must not outlive their hold.
type Buf struct {
	data []byte // the payload view handed to the application
	raw  []byte // pooled backing frame; nil when the memory is foreign
	refs atomic.Int32
}

// bufStructPool recycles the Buf headers themselves, so the steady-state
// lease path allocates nothing at all: bytes come from the frame pool,
// the wrapper comes from here. A header is only returned on its final
// Release, when the ownership contract says nobody may touch it again.
var bufStructPool = sync.Pool{New: func() any { return new(Buf) }}

// leaseBuf mints a Buf from the header pool with one hold.
func leaseBuf(raw, data []byte) *Buf {
	b := bufStructPool.Get().(*Buf)
	b.data, b.raw = data, raw
	b.refs.Store(1)
	leasedBufs.Add(1)
	return b
}

// newLeasedBuf wraps a pooled frame (raw) and its payload view (data)
// into a Buf with one hold. Ownership of raw transfers to the Buf: the
// final Release recycles it via putBuf.
func newLeasedBuf(raw, data []byte) *Buf {
	return leaseBuf(raw, data)
}

// WrapBuf wraps foreign memory (not from the frame pool) in a Buf with
// one hold, so APIs that yield leased buffers can also carry bytes the
// transport does not own — inline payloads, caller-allocated copies. The
// final Release drops the reference without recycling anything.
func WrapBuf(data []byte) *Buf {
	return leaseBuf(nil, data)
}

// NewBuf copies data into a pooled buffer and returns it as a leased
// Buf — the bridge for callers that must hand out a Buf but only have
// transient bytes.
func NewBuf(data []byte) *Buf {
	raw := getBuf(len(data))
	copy(raw, data)
	return newLeasedBuf(raw, raw)
}

// Bytes returns the leased payload. Valid only until the last Release.
func (b *Buf) Bytes() []byte { return b.data }

// Len returns the payload length.
func (b *Buf) Len() int { return len(b.data) }

// Retain adds one hold.
func (b *Buf) Retain() {
	if b.refs.Add(1) <= 1 {
		panic("live: Buf retained after final release")
	}
}

// Release drops one hold; the final one recycles the backing frame into
// the pool and invalidates Bytes. Releasing more times than retained
// panics — a double release means someone still believes they own
// recycled memory.
func (b *Buf) Release() {
	n := b.refs.Add(-1)
	if n < 0 {
		panic("live: Buf released twice")
	}
	if n == 0 {
		if b.raw != nil {
			putBuf(b.raw)
			b.raw = nil
		}
		b.data = nil
		leasedBufs.Add(-1)
		bufStructPool.Put(b)
	}
}
