// Package simnet models a single-rack datacenter network: hosts with
// bandwidth-limited NICs connected by a top-of-rack switch, carrying
// unreliable unordered datagrams (the substrate eRPC-style transports are
// built on, paper §V-A: "Our networking protocol is founded upon the UDP
// and the network reliability is handled in the RPC layer").
//
// The model is the standard first-order datacenter cost model:
//
//	delivery time = tx serialization (size / NIC bw, queued per NIC)
//	              + link propagation + switch forwarding + link propagation
//	              + rx serialization (size / NIC bw, queued per NIC)
//
// Datagrams above the MTU are rejected — packetization belongs to the
// transport layer. Loss is injected with a configurable probability drawn
// from the engine's deterministic PRNG.
//
// Each host also exposes a CPU resource (for service processing time) and a
// local memory bus (for charging intra-host memcpy, which is what the Fig 6
// "memory bandwidth occupation" measurement reports).
package simnet

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// HostID identifies a host within a Network.
type HostID int

// Addr is a (host, port) datagram endpoint.
type Addr struct {
	Host HostID
	Port int
}

func (a Addr) String() string { return fmt.Sprintf("h%d:%d", a.Host, a.Port) }

// Datagram is one unreliable network packet. Payload is owned by the
// receiver once delivered; Send copies the caller's bytes.
type Datagram struct {
	From    Addr
	To      Addr
	Payload []byte
}

// Config describes the rack fabric.
type Config struct {
	// NICBandwidth is per-host, full duplex, in bytes per second.
	// 100 GbE = 12.5e9.
	NICBandwidth int64
	// LinkLatency is one-way host<->switch propagation+PHY latency.
	LinkLatency sim.Time
	// SwitchLatency is the ToR forwarding latency.
	SwitchLatency sim.Time
	// MTU is the maximum datagram payload size in bytes.
	MTU int
	// LossRate is the independent per-packet drop probability in [0,1).
	LossRate float64
	// CPUCores is the number of cores per host (capacity of Host.CPU).
	CPUCores int
	// MemBandwidth is the per-host local memory bus bandwidth in bytes/s.
	MemBandwidth int64
}

// DefaultConfig mirrors the paper's testbed (§VI-A): 100 GbE NICs, ~2 µs
// kernel-bypass RTT, 4 KiB MTU (eRPC-style), dual 24-core CPUs (we model the
// 12 usable cores per socket the paper cites), quad-channel DDR4-2400.
func DefaultConfig() Config {
	return Config{
		NICBandwidth:  12_500_000_000, // 100 Gbit/s
		LinkLatency:   350,            // ns; RTT ≈ 2*(2*350+300) = 2 µs
		SwitchLatency: 300,            // ns
		MTU:           4096,
		LossRate:      0,
		CPUCores:      12,
		MemBandwidth:  76_800_000_000, // 4ch × 2400 MT/s × 8 B
	}
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.NICBandwidth <= 0:
		return fmt.Errorf("simnet: NICBandwidth must be positive, got %d", c.NICBandwidth)
	case c.MTU <= 0:
		return fmt.Errorf("simnet: MTU must be positive, got %d", c.MTU)
	case c.LossRate < 0 || c.LossRate >= 1:
		return fmt.Errorf("simnet: LossRate must be in [0,1), got %g", c.LossRate)
	case c.LinkLatency < 0 || c.SwitchLatency < 0:
		return fmt.Errorf("simnet: latencies must be non-negative")
	case c.CPUCores <= 0:
		return fmt.Errorf("simnet: CPUCores must be positive, got %d", c.CPUCores)
	case c.MemBandwidth <= 0:
		return fmt.Errorf("simnet: MemBandwidth must be positive, got %d", c.MemBandwidth)
	}
	return nil
}

// Network is a rack of hosts behind one ToR switch.
type Network struct {
	eng   *sim.Engine
	cfg   Config
	hosts []*Host

	dropped stats.Counter
	sent    stats.Counter
}

// New creates a network. Panics on invalid config (programming error).
func New(eng *sim.Engine, cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Network{eng: eng, cfg: cfg}
}

// Engine returns the driving engine.
func (n *Network) Engine() *sim.Engine { return n.eng }

// Config returns the fabric configuration.
func (n *Network) Config() Config { return n.cfg }

// AddHost creates a new host attached to the switch and returns it.
func (n *Network) AddHost(name string) *Host {
	id := HostID(len(n.hosts))
	h := &Host{
		id:   id,
		name: name,
		net:  n,
		tx:   sim.NewPipe(n.eng, fmt.Sprintf("%s/tx", name), n.cfg.NICBandwidth),
		rx:   sim.NewPipe(n.eng, fmt.Sprintf("%s/rx", name), n.cfg.NICBandwidth),
		CPU:  sim.NewResource(n.eng, fmt.Sprintf("%s/cpu", name), n.cfg.CPUCores),
		mem:  sim.NewPipe(n.eng, fmt.Sprintf("%s/mem", name), n.cfg.MemBandwidth),

		ports: make(map[int]*sim.Chan[Datagram]),
	}
	n.hosts = append(n.hosts, h)
	return h
}

// Host returns host id, panicking if out of range.
func (n *Network) Host(id HostID) *Host {
	if int(id) < 0 || int(id) >= len(n.hosts) {
		panic(fmt.Sprintf("simnet: no host %d", id))
	}
	return n.hosts[id]
}

// NumHosts returns the number of attached hosts.
func (n *Network) NumHosts() int { return len(n.hosts) }

// DroppedPackets returns how many datagrams loss injection discarded.
func (n *Network) DroppedPackets() int64 { return n.dropped.Value() }

// SentPackets returns how many datagrams entered the fabric.
func (n *Network) SentPackets() int64 { return n.sent.Value() }

// Host is a server attached to the rack switch.
type Host struct {
	id   HostID
	name string
	net  *Network
	tx   *sim.Pipe
	rx   *sim.Pipe
	mem  *sim.Pipe

	// CPU models the host's cores; services acquire it for processing time.
	CPU *sim.Resource

	ports   map[int]*sim.Chan[Datagram]
	txBytes stats.Counter
	rxBytes stats.Counter
}

// ID returns the host's id.
func (h *Host) ID() HostID { return h.id }

// Name returns the host's name.
func (h *Host) Name() string { return h.name }

// Network returns the fabric this host is attached to.
func (h *Host) Network() *Network { return h.net }

// Addr returns an address on this host.
func (h *Host) Addr(port int) Addr { return Addr{Host: h.id, Port: port} }

// Listen binds port and returns its delivery queue. Binding a port twice is
// a programming error and panics.
func (h *Host) Listen(port int) *sim.Chan[Datagram] {
	if _, ok := h.ports[port]; ok {
		panic(fmt.Sprintf("simnet: %s port %d already bound", h.name, port))
	}
	ch := sim.NewChan[Datagram](h.net.eng)
	h.ports[port] = ch
	return ch
}

// Send transmits one datagram from this host. The calling process is
// charged tx NIC serialization (with queueing). Delivery is asynchronous:
// after propagation and switch forwarding the receiver's rx NIC serializes
// the packet and it lands in the destination port's queue. Datagrams to
// unbound ports are dropped silently, like UDP. Payload bytes are copied.
func (h *Host) Send(p *sim.Proc, to Addr, fromPort int, payload []byte) {
	if len(payload) > h.net.cfg.MTU {
		panic(fmt.Sprintf("simnet: payload %d exceeds MTU %d (transport must packetize)", len(payload), h.net.cfg.MTU))
	}
	dst := h.net.Host(to.Host) // validate before charging
	h.net.sent.Inc()
	h.txBytes.Add(int64(len(payload)))
	h.tx.Transfer(p, len(payload))

	if lr := h.net.cfg.LossRate; lr > 0 && h.net.eng.Rand().Float64() < lr {
		h.net.dropped.Inc()
		return
	}

	buf := make([]byte, len(payload))
	copy(buf, payload)
	d := Datagram{From: h.Addr(fromPort), To: to, Payload: buf}
	prop := 2*h.net.cfg.LinkLatency + h.net.cfg.SwitchLatency
	h.net.eng.After(prop, func() {
		// rx serialization happens on the receiver's NIC; run it in a
		// short-lived delivery process so it queues behind other arrivals
		// without blocking the sender.
		h.net.eng.Spawn("rxdma", func(rp *sim.Proc) {
			dst.rx.Transfer(rp, len(d.Payload))
			dst.rxBytes.Add(int64(len(d.Payload)))
			if ch, ok := dst.ports[d.To.Port]; ok {
				ch.Send(d)
			}
		})
	})
}

// Memcpy charges the host memory bus for copying size bytes within local
// DRAM (one read pass + one write pass). This is how data-touching services
// account the memory-bandwidth pressure Fig 6 measures.
func (h *Host) Memcpy(p *sim.Proc, size int) {
	h.mem.Transfer(p, 2*size)
}

// MemTouch charges a single read or write pass of size bytes on the local
// memory bus (for compute that streams over a buffer once).
func (h *Host) MemTouch(p *sim.Proc, size int) {
	h.mem.Transfer(p, size)
}

// MemBytesMoved returns cumulative bytes moved over the local memory bus.
func (h *Host) MemBytesMoved() int64 { return h.mem.BytesMoved() }

// MemBusyTime returns cumulative local memory bus busy time.
func (h *Host) MemBusyTime() sim.Time { return h.mem.BusyTime() }

// TxBytes returns cumulative bytes sent by this host.
func (h *Host) TxBytes() int64 { return h.txBytes.Value() }

// RxBytes returns cumulative bytes received by this host.
func (h *Host) RxBytes() int64 { return h.rxBytes.Value() }

// OneWayLatency returns the zero-queueing time for a payload of size bytes
// to traverse the fabric between two hosts (useful for transport RTO
// estimation).
func (n *Network) OneWayLatency(size int) sim.Time {
	ser := sim.Time(int64(size) * int64(sim.Second) / n.cfg.NICBandwidth)
	return 2*ser + 2*n.cfg.LinkLatency + n.cfg.SwitchLatency
}
