package live

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dm"
	"repro/internal/dmwire"
	"repro/internal/refcache"
	"repro/internal/registry"
	"repro/internal/rpc"
	"repro/internal/stats"
)

// ClientConfig tunes a live DM client's failure behaviour. Net holds the
// transport knobs (deadlines, retries, frame caps, dialer).
type ClientConfig struct {
	Net NodeConfig
	// HeartbeatInterval paces the lease-renewal heartbeats started after
	// Register against every leasing server. 0 derives TTL/3 from the
	// server's granted lease; negative disables heartbeats (the client
	// then survives only one TTL — test hook for crash simulation).
	HeartbeatInterval time.Duration
	// OnHeartbeatFailure, when set, is invoked from the heartbeat loop
	// after each failed lease renewal with the running count of
	// consecutive failures for that server (resetting to zero on the next
	// success), so applications can observe an expiring session before
	// data calls start failing. It must not block; see also
	// Client.SessionHealth.
	OnHeartbeatFailure func(addr string, consecutive int, err error)
	// CacheBytes enables the client-side hot-ref payload cache
	// (DESIGN.md §D15): full-object ReadRef/ReadRefLease/ReadRefAsync
	// results are retained up to this many bytes, TinyLFU-admitted, and
	// served without crossing the wire until the server's invalidation
	// epoch advances, the entry's lease-bounded TTL lapses, or a local
	// FreeRef/Write/Reregister drops them. 0 disables caching.
	CacheBytes int64
	// OnEpochAdvance, when set, is invoked from the heartbeat loop each
	// time a server's cache-invalidation epoch is observed to advance
	// (after the client's own cache entries for it are dropped) — the
	// hook the pool uses to invalidate its cluster-level cache. It must
	// not block.
	OnEpochAdvance func(addr string, epoch uint64)
}

// DefaultClientConfig returns the production defaults.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{Net: DefaultNodeConfig()}
}

// Client is a process's live handle on a DM server pool: the Table II API
// over real TCP connections, with allocations round-robined across
// servers, mirroring dmnet.Client. Methods are safe for concurrent use.
//
// Failure model (DESIGN.md §D8): every call carries a deadline; reads are
// retried as idempotent, mutations carry dedup tokens so server-side
// retry deduplication keeps them at-most-once; sessions are kept alive by
// background heartbeats, and a client that dies is reaped by the server
// within one lease TTL.
type Client struct {
	mu     sync.Mutex
	cfg    ClientConfig
	node   *Node
	addrs  []string
	pids   []uint32
	leases []time.Duration
	shards []int64 // shard ID each server announced at register; -1 = none
	ready  bool
	rr     atomic.Uint64 // round-robin cursor for Alloc/StageRef targets

	cid      uint64        // dedup token identity, stable across reconnects
	seq      atomic.Uint64 // dedup token sequence
	hbStop   chan struct{}
	hbOnce   sync.Once
	hbWG     sync.WaitGroup
	hbFails  []atomic.Int32  // per-server consecutive heartbeat failures
	hbDead   []atomic.Bool   // per-server "session reaped" latch (see SessionReaped)
	hbCancel []chan struct{} // per-server heartbeat cancel, mu-guarded (Reregister)
	hbTotal  atomic.Int64    // cumulative heartbeat failures (never resets)

	// cache is the hot-ref payload cache (nil when disabled); epochSeen
	// tracks, per server, the last invalidation epoch a heartbeat
	// carried (-1 until first observed) so an advance drops that
	// server's cached entries.
	cache     *refcache.Cache[*Buf]
	epochSeen []atomic.Int64
}

// conn is one multiplexed TCP connection to a DM server. All request
// frames leave through bw, the connection's coalescing writer
// (batchwriter.go): small frames are copied whole into its submission
// queue and group-committed, large ones ride its direct zero-copy path.
type conn struct {
	c        net.Conn
	bw       *batchWriter
	maxFrame uint32
	pmu      sync.Mutex
	pending  map[uint64]chan response
	nextID   uint64
	dead     error
}

// response carries one frame's payload (status byte + body) off the read
// loop. The payload is a pooled buffer whose ownership transfers to the
// receiving call.
type response struct {
	payload []byte
}

// Dial connects to every server address in order with the default
// configuration. The order must match across processes sharing refs
// (Ref.Server is the pool index).
func Dial(addrs ...string) (*Client, error) {
	return DialConfig(DefaultClientConfig(), addrs...)
}

// DialConfig is Dial with explicit configuration.
func DialConfig(cfg ClientConfig, addrs ...string) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("live: need at least one server address")
	}
	cid := rand.Uint64()
	if cid == 0 {
		cid = 1 // the zero token means "no dedup"
	}
	cl := &Client{
		cfg:       cfg,
		node:      NewNodeWith(cfg.Net),
		addrs:     addrs,
		pids:      make([]uint32, len(addrs)),
		leases:    make([]time.Duration, len(addrs)),
		shards:    make([]int64, len(addrs)),
		cid:       cid,
		hbStop:    make(chan struct{}),
		hbFails:   make([]atomic.Int32, len(addrs)),
		hbDead:    make([]atomic.Bool, len(addrs)),
		hbCancel:  make([]chan struct{}, len(addrs)),
		epochSeen: make([]atomic.Int64, len(addrs)),
	}
	for i := range cl.shards {
		cl.shards[i] = -1
		cl.epochSeen[i].Store(-1)
	}
	if cfg.CacheBytes > 0 {
		cl.cache = refcache.New[*Buf](refcache.Config{MaxBytes: cfg.CacheBytes})
	}
	dialDeadline := time.Time{}
	if d := cl.node.cfg.DialTimeout; d > 0 {
		dialDeadline = time.Now().Add(d)
	}
	for _, a := range addrs {
		if _, err := cl.node.peer(a, dialDeadline); err != nil {
			cl.Close()
			return nil, err
		}
	}
	return cl, nil
}

// Close stops the heartbeats, releases every cached payload, and tears
// down every connection.
func (cl *Client) Close() error {
	cl.hbOnce.Do(func() { close(cl.hbStop) })
	cl.hbWG.Wait()
	cl.cache.Flush()
	return cl.node.Close()
}

// token mints the dedup token for one non-idempotent mutation.
func (cl *Client) token() dmwire.Token {
	return dmwire.Token{CID: cl.cid, Seq: cl.seq.Add(1)}
}

// mutOpts marks a call as a tokened (at-most-once, retryable) mutation.
func (cl *Client) mutOpts() CallOpts { return CallOpts{Token: cl.token()} }

// idemOpts marks a call as idempotent (retryable without a token).
func idemOpts() CallOpts { return CallOpts{Idempotent: true} }

// readLoop dispatches responses to waiting calls. The send happens under
// pmu and every pending channel is buffered (cap 1), so a caller that
// abandoned its call (deadline) can delete its entry and drain the
// channel race-free, and the read loop can never block on a caller.
func (c *conn) readLoop() {
	br := bufio.NewReaderSize(c.c, 64<<10)
	var hdr [frameHeaderSize]byte
	for {
		kind, reqID, payload, err := readFrameBuf(br, hdr[:], c.maxFrame)
		if err != nil {
			c.fail(err)
			return
		}
		if kind != kindResponse || len(payload) < 1 {
			putBuf(payload)
			c.fail(fmt.Errorf("live: malformed response frame"))
			return
		}
		c.pmu.Lock()
		ch, ok := c.pending[reqID]
		if ok {
			delete(c.pending, reqID)
			select {
			case ch <- response{payload: payload}:
			default:
				// Defense in depth: the buffered channel receives exactly
				// one send, so this arm is unreachable unless the
				// invariant breaks — drop rather than wedge the loop.
				putBuf(payload)
			}
		}
		c.pmu.Unlock()
		if !ok {
			// Late response for an abandoned (timed-out) call.
			putBuf(payload)
		}
	}
}

// fail poisons the connection and unblocks all waiters: the coalescing
// writer is killed (queued frames recycled, blocked enqueuers released),
// the socket closed so the read loop exits, and every pending call's
// channel closed. Idempotent — the read loop, the writer's failure hook,
// and failed senders may all race into it.
func (c *conn) fail(err error) {
	c.bw.kill(err)
	c.c.Close()
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if c.dead == nil {
		c.dead = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
}

// call performs one request/response exchange bounded by deadline (zero
// means none): send ships the request, await collects the response.
func (c *conn) call(m rpc.Method, hdr, payload []byte, cons consumer, deadline time.Time, tok dmwire.Token) error {
	id, ch, err := c.send(m, hdr, payload, deadline, tok, true)
	if err != nil {
		return err
	}
	return c.await(m, id, ch, deadline, cons)
}

// send registers a pending entry and ships one request frame — frame
// header, optional dedup token, method, hdr, payload — returning the
// request id and the response channel for await. Small frames are copied
// whole into the coalescing writer's queue (send returns once the frame
// is accepted, not written — the pipelining CallAsync builds on); bodies
// above the coalesce cutoff go out synchronously as a vectored write with
// no intermediate copy of payload — the zero-copy path large rwrite/stage
// bodies ride. sync marks a caller about to block on the response: its
// frame may be written inline when the connection is idle (skipping the
// flusher handoff), while async submitters always queue so their bursts
// coalesce.
func (c *conn) send(m rpc.Method, hdr, payload []byte, deadline time.Time, tok dmwire.Token, sync bool) (uint64, chan response, error) {
	ch := make(chan response, 1)
	c.pmu.Lock()
	if dead := c.dead; dead != nil {
		c.pmu.Unlock()
		return 0, nil, fmt.Errorf("%w: %v", errConnFailed, dead)
	}
	id := c.nextID
	c.nextID++
	c.pending[id] = ch
	c.pmu.Unlock()

	tokLen := 0
	kind := byte(kindRequest)
	if !tok.IsZero() {
		tokLen = dmwire.TokenSize
		kind = kindRequestTok
	}
	head := frameHeaderSize + tokLen + 2 + len(hdr)
	total := head + len(payload)
	var err error
	if c.bw.coalesce(total) {
		// One pooled buffer holds the whole frame; ownership transfers to
		// the writer, which recycles it after the group-commit flush.
		frame := getBuf(total)
		fillRequestHead(frame, total-frameHeaderSize, kind, id, tok, tokLen, m, hdr)
		copy(frame[head:], payload)
		if sync {
			err = c.bw.enqueueInline(frame, deadline)
		} else {
			err = c.bw.enqueue(frame, deadline)
		}
	} else {
		scratch := getBuf(head)
		fillRequestHead(scratch, total-frameHeaderSize, kind, id, tok, tokLen, m, hdr)
		bufs := net.Buffers{scratch}
		if len(payload) > 0 {
			bufs = append(bufs, payload)
		}
		err = c.bw.writeDirect(bufs, deadline)
		putBuf(scratch[:cap(scratch)])
	}
	if err != nil {
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		// A failed write means the connection is gone; poison it (the
		// writer already did for errors it detected — fail is idempotent)
		// so the owning Node redials on the next call.
		c.fail(err)
		// Double-wrap so a write that died on its deadline keeps the
		// deadline in its chain: Stats classifies it as a timeout (slow
		// fabric), not a transport error, while isTransient still matches.
		return 0, nil, fmt.Errorf("%w: write: %w", errConnFailed, err)
	}
	return id, ch, nil
}

// fillRequestHead lays down everything ahead of the bulk payload: frame
// header (bodyLen, kind, request id), optional dedup token, method, and
// the request header bytes.
func fillRequestHead(buf []byte, bodyLen int, kind byte, id uint64, tok dmwire.Token, tokLen int, m rpc.Method, hdr []byte) {
	binary.BigEndian.PutUint32(buf, uint32(bodyLen))
	buf[4] = kind
	binary.BigEndian.PutUint64(buf[5:], id)
	off := frameHeaderSize
	if tokLen > 0 {
		binary.BigEndian.PutUint64(buf[off:], tok.CID)
		binary.BigEndian.PutUint64(buf[off+8:], tok.Seq)
		off += tokLen
	}
	binary.BigEndian.PutUint16(buf[off:], uint16(m))
	copy(buf[off+2:], hdr)
}

// await collects the response for a request id registered by send. A
// borrowing consumer (fn) gets the pooled response body, which is
// recycled before await returns; an owning consumer (own) gets the whole
// frame and, by returning nil, keeps it — the zero-copy lease path. On
// deadline the call is abandoned: the pending entry is removed so the
// read loop drops the late response, and anything that raced in is
// drained and recycled.
func (c *conn) await(m rpc.Method, id uint64, ch chan response, deadline time.Time, cons consumer) error {
	var timeC <-chan time.Time
	if !deadline.IsZero() {
		t := time.NewTimer(time.Until(deadline))
		defer t.Stop()
		timeC = t.C
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			c.pmu.Lock()
			err := c.dead
			c.pmu.Unlock()
			return fmt.Errorf("%w: %v", errConnFailed, err)
		}
		status, body := resp.payload[0], resp.payload[1:]
		if status != dmwire.StatusOK {
			err := dmwire.ErrOf(status, string(body))
			putBuf(resp.payload)
			return err
		}
		if cons.own != nil {
			if cerr := cons.own(resp.payload, body); cerr != nil {
				putBuf(resp.payload)
				return cerr
			}
			return nil // frame ownership transferred to the consumer
		}
		var cerr error
		if cons.fn != nil {
			cerr = cons.fn(body)
		}
		putBuf(resp.payload)
		return cerr
	case <-timeC:
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		select {
		case resp, ok := <-ch:
			if ok {
				putBuf(resp.payload)
			}
		default:
		}
		return fmt.Errorf("live: call %#x timed out: %w", uint16(m), ErrDeadline)
	}
}

// Register obtains a PID (and lease) from every server, then starts the
// lease-renewal heartbeats; must complete before other calls.
func (cl *Client) Register() error {
	for i, a := range cl.addrs {
		if err := cl.registerOne(i, a); err != nil {
			return err
		}
	}
	cl.mu.Lock()
	cl.ready = true
	cl.mu.Unlock()
	for i := range cl.addrs {
		cl.startHeartbeat(i)
	}
	return nil
}

// registerOne obtains a PID (and lease) from server i and records them,
// along with the server's invalidation-epoch baseline: captured BEFORE
// any read can populate the cache, so the first heartbeat's epoch
// compares against registration time, not against whenever the
// heartbeat loop happened to fire first (a free landing in that gap
// must still invalidate, §D15).
func (cl *Client) registerOne(i int, a string) error {
	var pid uint32
	var lease time.Duration
	var epoch uint64
	shard := int64(-1)
	err := cl.node.CallConsumeOpts(a, dmwire.MRegister, nil, nil, func(resp []byte) error {
		r, err := dmwire.UnmarshalRegisterResp(resp)
		if err != nil {
			return err
		}
		pid = r.PID
		lease = time.Duration(r.LeaseMillis) * time.Millisecond
		epoch = r.Epoch
		if r.HasShard {
			shard = int64(r.Shard)
		}
		// Adopt the server's advertised async credit window.
		cl.node.setPeerCredits(a, r.Credits)
		return nil
	}, cl.mutOpts())
	if err != nil {
		return err
	}
	cl.epochSeen[i].Store(int64(epoch))
	cl.mu.Lock()
	cl.pids[i] = pid
	cl.leases[i] = lease
	cl.shards[i] = shard
	cl.mu.Unlock()
	return nil
}

// startHeartbeat spawns the renewal loop for server i if it leases
// sessions and heartbeats are enabled.
func (cl *Client) startHeartbeat(i int) {
	if cl.cfg.HeartbeatInterval < 0 {
		return
	}
	cl.mu.Lock()
	lease := cl.leases[i]
	pid := cl.pids[i]
	addr := cl.addrs[i]
	cl.mu.Unlock()
	if lease <= 0 {
		return // server does not lease sessions
	}
	interval := cl.cfg.HeartbeatInterval
	if interval == 0 {
		interval = lease / 3
	}
	if interval <= 0 {
		return
	}
	cancel := make(chan struct{})
	cl.mu.Lock()
	cl.hbCancel[i] = cancel
	cl.mu.Unlock()
	cl.hbWG.Add(1)
	go cl.heartbeatLoop(i, addr, pid, interval, cancel)
}

// heartbeatLoop renews one server's lease until Close, Reregister
// (cancel), or until the server reports the session gone (reaped), at
// which point renewing is pointless — the hbDead latch is set so
// SessionReaped observers (the pool rejoin poller) can re-register, and
// subsequent data calls surface the dead session as dm.ErrBadAddress.
// Renewal outcomes feed the per-server consecutive failure counter behind
// SessionHealth and the OnHeartbeatFailure hook, so an expiring session
// is observable before data calls start failing.
func (cl *Client) heartbeatLoop(i int, addr string, pid uint32, interval time.Duration, cancel chan struct{}) {
	defer cl.hbWG.Done()
	req := dmwire.HeartbeatReq{PID: pid}.Marshal()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-cl.hbStop:
			return
		case <-cancel:
			return
		case <-tick.C:
			opts := idemOpts()
			opts.Timeout = interval
			err := cl.node.CallConsumeOpts(addr, dmwire.MHeartbeat, req, nil, func(resp []byte) error {
				r, err := dmwire.UnmarshalHeartbeatResp(resp)
				if err != nil {
					return err
				}
				// Refresh the async credit window from the renewal.
				cl.node.setPeerCredits(addr, r.Credits)
				cl.observeEpoch(i, addr, r.Epoch)
				return nil
			}, opts)
			if err == nil {
				cl.hbFails[i].Store(0)
				continue
			}
			n := cl.hbFails[i].Add(1)
			cl.hbTotal.Add(1)
			if cb := cl.cfg.OnHeartbeatFailure; cb != nil {
				cb(addr, int(n), err)
			}
			if errors.Is(err, dm.ErrBadAddress) {
				cl.hbDead[i].Store(true)
				// A reaped session's refs are gone server-side; cached
				// payloads must never outlive the reap (§D15).
				cl.cache.InvalidateServer(uint32(i))
				return // session reaped; the counter stays nonzero
			}
		}
	}
}

// observeEpoch folds one heartbeat's invalidation epoch into the
// per-server record: the first observation is the baseline (entries
// cached before it are covered by the one-heartbeat staleness bound),
// any advance drops the server's cached entries and fires the
// OnEpochAdvance hook.
func (cl *Client) observeEpoch(i int, addr string, epoch uint64) {
	if cl.cache == nil && cl.cfg.OnEpochAdvance == nil {
		return
	}
	prev := cl.epochSeen[i].Swap(int64(epoch))
	if prev < 0 || uint64(prev) == epoch {
		return
	}
	cl.cache.InvalidateServer(uint32(i))
	if cb := cl.cfg.OnEpochAdvance; cb != nil {
		cb(addr, epoch)
	}
}

// SessionReaped reports whether server i declared this client's session
// gone (heartbeat answered dm.ErrBadAddress — the server restarted or
// reaped the lease). A reaped session never recovers by itself; call
// Reregister to re-admit the server with a fresh PID.
func (cl *Client) SessionReaped(i int) bool {
	if i < 0 || i >= len(cl.hbDead) {
		return false
	}
	return cl.hbDead[i].Load()
}

// Reregister re-establishes the session with server i after the server
// reaped it (process restart or lease expiry): the dead heartbeat loop is
// stopped, a fresh PID and lease are obtained, and renewal restarts.
// Every resource the old PID held on that server is gone — callers (the
// pool rejoin poller) must treat the shard as empty and re-replicate.
func (cl *Client) Reregister(i int) error {
	cl.mu.Lock()
	if i < 0 || i >= len(cl.addrs) {
		cl.mu.Unlock()
		return dm.ErrBadAddress
	}
	a := cl.addrs[i]
	if c := cl.hbCancel[i]; c != nil {
		close(c)
		cl.hbCancel[i] = nil
	}
	cl.mu.Unlock()
	// The old session's server-side state is gone; drop cached payloads
	// and re-baseline the epoch (the fresh server may start from 0).
	cl.cache.InvalidateServer(uint32(i))
	cl.epochSeen[i].Store(-1)
	if err := cl.registerOne(i, a); err != nil {
		return err
	}
	cl.hbFails[i].Store(0)
	cl.hbDead[i].Store(false)
	cl.startHeartbeat(i)
	return nil
}

// SessionHealth reports the number of consecutive failed lease renewals
// per server address (0 = healthy). A count that keeps climbing toward
// TTL/interval heartbeats means the session will be reaped and data calls
// will start returning dm.ErrBadAddress.
func (cl *Client) SessionHealth() map[string]int {
	out := make(map[string]int, len(cl.addrs))
	for i, a := range cl.addrs {
		out[a] = int(cl.hbFails[i].Load())
	}
	return out
}

// ServerShard returns the cluster-wide shard ID server i announced at
// registration (ServerConfig.ShardID), and whether it announced one.
// Single-server deployments that never set a shard report false.
func (cl *Client) ServerShard(i int) (uint32, bool) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if i < 0 || i >= len(cl.shards) || cl.shards[i] < 0 {
		return 0, false
	}
	return uint32(cl.shards[i]), true
}

// Stats is a point-in-time snapshot of a client's call-level counters.
type Stats struct {
	// Calls counts calls started (every public op plus heartbeats).
	Calls int64
	// Retries counts extra attempts after a transient failure.
	Retries int64
	// DedupReplays counts retried attempts that carried a dedup token —
	// an upper bound on server-side replayed responses, since a tokened
	// retry either re-executes (first attempt never applied) or replays.
	DedupReplays int64
	// Failures counts calls that exhausted their retry budget.
	Failures int64
	// Timeouts counts attempts that failed by exceeding a deadline
	// (overall or per-attempt) — the slow-but-alive failure class.
	// Retries lumps every transient failure; Timeouts + TransportErrors
	// splits them by cause.
	Timeouts int64
	// TransportErrors counts attempts that failed at the transport —
	// dial errors, dead/poisoned connections, failed writes — the
	// unreachable-or-crashed failure class.
	TransportErrors int64
	// HeartbeatFailures counts failed lease renewals, cumulatively
	// (SessionHealth reports the resetting per-server consecutive count).
	HeartbeatFailures int64
	// CreditWaits counts async submissions that had to block for a
	// session credit; a climbing rate means the in-flight window, not
	// the wire, is the bottleneck.
	CreditWaits int64
	// CreditSheds counts async submissions shed with ErrCredits because
	// the credit window stayed exhausted for their whole attempt
	// deadline — the bounded-queueing response to a stalled server.
	CreditSheds int64
	// CacheHits .. CacheCoalesced mirror the hot-ref cache's counters
	// (DESIGN.md §D15): reads served from memory, reads that went to the
	// wire, entries admitted/evicted/invalidated, and concurrent cold
	// reads coalesced behind another caller's fetch. All zero when
	// ClientConfig.CacheBytes is 0.
	CacheHits          int64
	CacheMisses        int64
	CacheAdmits        int64
	CacheEvictions     int64
	CacheInvalidations int64
	CacheCoalesced     int64
}

// Stats snapshots the client's cumulative call counters. Counters only
// grow; subtracting two snapshots gives the interval counts.
func (cl *Client) Stats() Stats {
	s := cl.node.ops.snapshot()
	s.HeartbeatFailures = cl.hbTotal.Load()
	if cl.cache != nil {
		cs := cl.cache.Stats()
		s.CacheHits = cs.Hits
		s.CacheMisses = cs.Misses
		s.CacheAdmits = cs.Admits
		s.CacheEvictions = cs.Evictions
		s.CacheInvalidations = cs.Invalidations
		s.CacheCoalesced = cs.Coalesced
	}
	return s
}

// CacheStats snapshots the hot-ref cache's own counters and gauges
// (zero when the cache is disabled).
func (cl *Client) CacheStats() refcache.Stats { return cl.cache.Stats() }

// Latency summarizes the client's per-op latency distribution
// (submission to completion, retries included; sync and async ops, in
// nanoseconds).
func (cl *Client) Latency() stats.Summary { return cl.node.Latency() }

// LatencyHistogram snapshots the client's per-op latency histogram, for
// merging across clients or custom quantiles.
func (cl *Client) LatencyHistogram() *stats.Histogram { return cl.node.LatencyHistogram() }

// Lease returns the lease duration server i granted at registration
// (0 when the server does not lease sessions or i is out of range).
func (cl *Client) Lease(i int) time.Duration {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if i < 0 || i >= len(cl.leases) {
		return 0
	}
	return cl.leases[i]
}

// refCacheable reports whether a ref read can be served from or
// admitted to the hot-ref cache: whole-object reads of a nonempty ref
// only — partial reads bypass so the cache never stores a fragment
// under a whole-object key.
func (cl *Client) refCacheable(ref dm.Ref, off, size int64) bool {
	return cl.cache != nil && off == 0 && size > 0 && size == ref.Size
}

func refCacheKey(ref dm.Ref) refcache.Key {
	return refcache.Key{Server: ref.Server, Ref: ref.Key}
}

// cacheTTL caps a cached entry's lifetime at server i's lease so a
// missed invalidation can serve stale bytes for at most one TTL and an
// entry never outlives a reap window; sessions without leasing fall
// back to the refcache default.
func (cl *Client) cacheTTL(i int) time.Duration {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if i >= 0 && i < len(cl.leases) {
		return cl.leases[i] // 0 (no leasing) selects the refcache default
	}
	return 0
}

// cachedReadRef serves a whole-object ref read through the hot-ref
// cache, going to the wire (once, under singleflight) on a miss. The
// returned Buf is retained for the caller.
func (cl *Client) cachedReadRef(ref dm.Ref) (*Buf, error) {
	return cl.cache.GetOrLoad(refCacheKey(ref), ref.Size, cl.cacheTTL(int(ref.Server)),
		func() (*Buf, error) { return cl.readRefLeaseWire(ref, 0, ref.Size) })
}

// server picks the pool entry for index i.
func (cl *Client) server(i int) (string, uint32, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if !cl.ready {
		return "", 0, fmt.Errorf("live: client not registered")
	}
	if i < 0 || i >= len(cl.addrs) {
		return "", 0, dm.ErrBadAddress
	}
	return cl.addrs[i], cl.pids[i], nil
}

// next round-robins the target server for allocations and staging; a
// lock-free atomic cursor, since it sits on the small-op hot path.
func (cl *Client) next() int {
	return int((cl.rr.Add(1) - 1) % uint64(len(cl.addrs)))
}

// Address tagging matches dmnet: the pool index rides in the top byte.
const serverShift = 56

func tagAddr(server int, a dm.RemoteAddr) dm.RemoteAddr {
	return dm.RemoteAddr(uint64(server)<<serverShift | uint64(a))
}

func splitAddr(a dm.RemoteAddr) (int, dm.RemoteAddr) {
	return int(uint64(a) >> serverShift), dm.RemoteAddr(uint64(a) & (1<<serverShift - 1))
}

// Alloc reserves size bytes (ralloc).
func (cl *Client) Alloc(size int64) (dm.RemoteAddr, error) {
	idx := cl.next()
	srv, pid, err := cl.server(idx)
	if err != nil {
		return 0, err
	}
	var addr dm.RemoteAddr
	err = cl.node.CallConsumeOpts(srv, dmwire.MAlloc, dmwire.AllocReq{PID: pid, Size: size}.Marshal(), nil,
		func(resp []byte) error {
			r, err := dmwire.UnmarshalAllocResp(resp)
			if err != nil {
				return err
			}
			addr = r.Addr
			return nil
		}, cl.mutOpts())
	if err != nil {
		return 0, err
	}
	return tagAddr(idx, addr), nil
}

// Free releases the region at addr (rfree).
func (cl *Client) Free(addr dm.RemoteAddr) error {
	idx, raw := splitAddr(addr)
	srv, pid, err := cl.server(idx)
	if err != nil {
		return err
	}
	return cl.node.CallConsumeOpts(srv, dmwire.MFree, dmwire.FreeReq{PID: pid, Addr: raw}.Marshal(), nil, nil, cl.mutOpts())
}

// CreateRef shares [addr, addr+size) read-only (create_ref).
func (cl *Client) CreateRef(addr dm.RemoteAddr, size int64) (dm.Ref, error) {
	idx, raw := splitAddr(addr)
	srv, pid, err := cl.server(idx)
	if err != nil {
		return dm.Ref{}, err
	}
	key, err := cl.callRefKey(srv, dmwire.MCreateRef, dmwire.CreateRefReq{PID: pid, Addr: raw, Size: size}.Marshal(), nil)
	if err != nil {
		return dm.Ref{}, err
	}
	return dm.Ref{Server: uint32(idx), Key: key, Size: size}, nil
}

// callRefKey runs a tokened call whose successful response is a
// RefKeyResp.
func (cl *Client) callRefKey(srv string, m rpc.Method, hdr, payload []byte) (uint64, error) {
	var key uint64
	err := cl.node.CallConsumeOpts(srv, m, hdr, payload, func(resp []byte) error {
		r, err := dmwire.UnmarshalRefKeyResp(resp)
		if err != nil {
			return err
		}
		key = r.Key
		return nil
	}, cl.mutOpts())
	return key, err
}

// MapRef maps a ref into this process's DM address space (map_ref).
func (cl *Client) MapRef(ref dm.Ref) (dm.RemoteAddr, error) {
	srv, pid, err := cl.server(int(ref.Server))
	if err != nil {
		return 0, err
	}
	var addr dm.RemoteAddr
	err = cl.node.CallConsumeOpts(srv, dmwire.MMapRef, dmwire.MapRefReq{PID: pid, Key: ref.Key}.Marshal(), nil,
		func(resp []byte) error {
			r, err := dmwire.UnmarshalMapRefResp(resp)
			if err != nil {
				return err
			}
			addr = r.Addr
			return nil
		}, cl.mutOpts())
	if err != nil {
		return 0, err
	}
	return tagAddr(int(ref.Server), addr), nil
}

// FreeRef drops the ref's own page hold. The cached payload (if any)
// is dropped regardless of outcome: even a failed free may have
// applied server-side (retry ambiguity), and over-invalidating only
// costs a refetch.
func (cl *Client) FreeRef(ref dm.Ref) error {
	defer cl.cache.Invalidate(refCacheKey(ref))
	srv, _, err := cl.server(int(ref.Server))
	if err != nil {
		return err
	}
	return cl.node.CallConsumeOpts(srv, dmwire.MFreeRef, dmwire.FreeRefReq{Key: ref.Key}.Marshal(), nil, nil, cl.mutOpts())
}

// checkWireRange validates that off and size fit the protocol's u32
// fields before they are narrowed — the failure mode it prevents is a
// silently truncated offset or length corrupting the request into a
// well-formed read/write of the wrong range. The error wraps
// dm.ErrOutOfRange so callers can errors.Is it like any server-side
// range violation.
func checkWireRange(op string, off, size int64) error {
	if off < 0 || off > maxWireU32 || size < 0 || size > maxWireU32 {
		return fmt.Errorf("live: %s off=%d len=%d exceeds wire range: %w", op, off, size, dm.ErrOutOfRange)
	}
	return nil
}

const maxWireU32 = int64(^uint32(0))

// Write stores src at addr (rwrite). The payload is written to the socket
// straight from src — no marshal copy. Writing the same bytes twice is
// harmless, so retries treat it as idempotent.
func (cl *Client) Write(addr dm.RemoteAddr, src []byte) error {
	idx, raw := splitAddr(addr)
	srv, pid, err := cl.server(idx)
	if err != nil {
		return err
	}
	if err := checkWireRange("write", 0, int64(len(src))); err != nil {
		return err
	}
	// A local write invalidates the whole server's cached entries
	// before the next read, ahead of the epoch advance the heartbeat
	// would deliver (§D15: write-through-own-session invalidates
	// locally). CoW keeps existing refs byte-stable, so this is
	// conservatism, not correctness.
	defer cl.cache.InvalidateServer(uint32(idx))
	return cl.node.CallConsumeOpts(srv, dmwire.MWrite, dmwire.WriteReq{PID: pid, Addr: raw}.MarshalHdr(), src, nil, idemOpts())
}

// Read loads len(dst) bytes from addr (rread); the response body is
// copied once, pooled buffer to dst.
func (cl *Client) Read(addr dm.RemoteAddr, dst []byte) error {
	idx, raw := splitAddr(addr)
	srv, pid, err := cl.server(idx)
	if err != nil {
		return err
	}
	if err := checkWireRange("read", 0, int64(len(dst))); err != nil {
		return err
	}
	return cl.node.CallConsumeOpts(srv, dmwire.MRead,
		dmwire.ReadReq{PID: pid, Addr: raw, Size: uint32(len(dst))}.Marshal(), nil,
		func(resp []byte) error {
			if len(resp) != len(dst) {
				return fmt.Errorf("live: read returned %d bytes, want %d", len(resp), len(dst))
			}
			copy(dst, resp)
			return nil
		}, idemOpts())
}

// ReadLease is Read without the final copy: it loads size bytes from
// addr and leases the caller the pooled response frame itself as a Buf.
// The caller must Release it exactly once; the bytes are invalid after.
func (cl *Client) ReadLease(addr dm.RemoteAddr, size int64) (*Buf, error) {
	idx, raw := splitAddr(addr)
	srv, pid, err := cl.server(idx)
	if err != nil {
		return nil, err
	}
	if err := checkWireRange("read", 0, size); err != nil {
		return nil, err
	}
	var out *Buf
	err = cl.node.callConsumer(srv, dmwire.MRead,
		dmwire.ReadReq{PID: pid, Addr: raw, Size: uint32(size)}.Marshal(), nil,
		consumer{own: func(frame, body []byte) error {
			if int64(len(body)) != size {
				return fmt.Errorf("live: read returned %d bytes, want %d", len(body), size)
			}
			out = newLeasedBuf(frame, body)
			return nil
		}}, idemOpts())
	if err != nil {
		return nil, err
	}
	return out, nil
}

// StageRef stages data into fresh pages in one round trip; data rides the
// socket directly (no marshal copy).
func (cl *Client) StageRef(data []byte) (dm.Ref, error) {
	idx := cl.next()
	srv, pid, err := cl.server(idx)
	if err != nil {
		return dm.Ref{}, err
	}
	key, err := cl.callRefKey(srv, dmwire.MStage, dmwire.StageReq{PID: pid}.MarshalHdr(), data)
	if err != nil {
		return dm.Ref{}, err
	}
	return dm.Ref{Server: uint32(idx), Key: key, Size: int64(len(data))}, nil
}

// StageRefAt stages data on a specific server under a caller-chosen key
// (MStageAt): the replica-placement primitive behind the pool's R-way
// replication. The key must carry dmwire.ReplicaKeyBit; a key the server
// already holds fails with dm.ErrRefExists, which makes repair re-stages
// idempotent.
func (cl *Client) StageRefAt(server int, key uint64, data []byte) (dm.Ref, error) {
	srv, pid, err := cl.server(server)
	if err != nil {
		return dm.Ref{}, err
	}
	if _, err := cl.callRefKey(srv, dmwire.MStageAt, dmwire.StageAtReq{PID: pid, Key: key}.MarshalHdr(), data); err != nil {
		return dm.Ref{}, err
	}
	return dm.Ref{Server: uint32(server), Key: key, Size: int64(len(data))}, nil
}

// RegPut hands a cluster ref's directory entry to server's registry
// slice (DESIGN.md §D16): the staging client's handoff (epoch 1) or a
// migration placement flip (bumped epoch). The server merges
// higher-epoch-wins, so retries and races are idempotent.
func (cl *Client) RegPut(server int, ent registry.Entry) error {
	srv, _, err := cl.server(server)
	if err != nil {
		return err
	}
	return cl.node.CallConsumeOpts(srv, dmwire.MRegPut,
		dmwire.RegPutReq{Entry: ent}.Marshal(), nil, nil, idemOpts())
}

// RegGet queries server's directory slice for one key; dm.ErrBadRef
// when that shard holds no entry.
func (cl *Client) RegGet(server int, key uint64) (registry.Entry, error) {
	srv, _, err := cl.server(server)
	if err != nil {
		return registry.Entry{}, err
	}
	var ent registry.Entry
	err = cl.node.CallConsumeOpts(srv, dmwire.MRegGet,
		dmwire.RegGetReq{Key: key}.Marshal(), nil,
		func(resp []byte) error {
			r, err := dmwire.UnmarshalRegGetResp(resp)
			if err != nil {
				return err
			}
			ent = r.Entry
			return nil
		}, idemOpts())
	return ent, err
}

// RegSync pulls one anti-entropy page of server's directory: up to
// limit entries with keys strictly after afterKey, ascending. A short
// page ends the scan.
func (cl *Client) RegSync(server int, afterKey uint64, limit int) ([]registry.Entry, error) {
	srv, _, err := cl.server(server)
	if err != nil {
		return nil, err
	}
	if limit <= 0 || limit > dmwire.MaxRegSyncEntries {
		limit = dmwire.MaxRegSyncEntries
	}
	var ents []registry.Entry
	err = cl.node.CallConsumeOpts(srv, dmwire.MRegSync,
		dmwire.RegSyncReq{AfterKey: afterKey, Limit: uint32(limit)}.Marshal(), nil,
		func(resp []byte) error {
			r, err := dmwire.UnmarshalRegSyncResp(resp)
			if err != nil {
				return err
			}
			ents = r.Entries
			return nil
		}, idemOpts())
	return ents, err
}

// ReadRef reads the ref's snapshot without mapping it. Whole-object
// reads are served through the hot-ref cache when one is configured.
func (cl *Client) ReadRef(ref dm.Ref, off int64, dst []byte) error {
	if cl.refCacheable(ref, off, int64(len(dst))) {
		b, err := cl.cachedReadRef(ref)
		if err != nil {
			return err
		}
		copy(dst, b.Bytes())
		b.Release()
		return nil
	}
	return cl.readRefWire(ref, off, dst)
}

// readRefWire is the uncached MReadRef exchange: the response body is
// copied once, pooled buffer to dst.
func (cl *Client) readRefWire(ref dm.Ref, off int64, dst []byte) error {
	srv, _, err := cl.server(int(ref.Server))
	if err != nil {
		return err
	}
	if err := checkWireRange("readref", off, int64(len(dst))); err != nil {
		return err
	}
	return cl.node.CallConsumeOpts(srv, dmwire.MReadRef,
		dmwire.ReadRefReq{Key: ref.Key, Off: uint32(off), Size: uint32(len(dst))}.Marshal(), nil,
		func(resp []byte) error {
			if len(resp) != len(dst) {
				return fmt.Errorf("live: readref returned %d bytes, want %d", len(resp), len(dst))
			}
			copy(dst, resp)
			return nil
		}, idemOpts())
}

// ReadRefLease is ReadRef without the final copy (DESIGN.md §D12): the
// pooled frame the response arrived in is leased to the caller as a Buf
// whose Bytes are the read payload. The caller must Release it exactly
// once — the bytes recycle into the transport's frame pool and are
// invalid after. On any error (including a failed or timed-out call) no
// Buf is leased and the transport recycles the frame itself.
// Whole-object reads are served through the hot-ref cache when one is
// configured; a cached Buf's bytes are shared with other readers and
// must be treated as read-only (which leased bytes always are).
func (cl *Client) ReadRefLease(ref dm.Ref, off, size int64) (*Buf, error) {
	if cl.refCacheable(ref, off, size) {
		return cl.cachedReadRef(ref)
	}
	return cl.readRefLeaseWire(ref, off, size)
}

// readRefLeaseWire is the uncached zero-copy MReadRef exchange.
func (cl *Client) readRefLeaseWire(ref dm.Ref, off, size int64) (*Buf, error) {
	srv, _, err := cl.server(int(ref.Server))
	if err != nil {
		return nil, err
	}
	if err := checkWireRange("readref", off, size); err != nil {
		return nil, err
	}
	var out *Buf
	err = cl.node.callConsumer(srv, dmwire.MReadRef,
		dmwire.ReadRefReq{Key: ref.Key, Off: uint32(off), Size: uint32(size)}.Marshal(), nil,
		consumer{own: func(frame, body []byte) error {
			if int64(len(body)) != size {
				return fmt.Errorf("live: readref returned %d bytes, want %d", len(body), size)
			}
			out = newLeasedBuf(frame, body)
			return nil
		}}, idemOpts())
	if err != nil {
		return nil, err
	}
	return out, nil
}
