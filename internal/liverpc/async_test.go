package liverpc

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/live"
)

// TestCallerAsyncPipelines proves service-level pipelining: N futures
// issued back-to-back all reach the handler before any Wait.
func TestCallerAsyncPipelines(t *testing.T) {
	const n = 4
	arrived := make(chan struct{}, n)
	release := make(chan struct{})
	s := NewService("blocky", nil, Config{})
	s.Handle("hold", func(ctx *Ctx, args []Payload) ([]Payload, error) {
		arrived <- struct{}{}
		<-release
		buf, err := ctx.Fetch(args[0])
		if err != nil {
			return nil, err
		}
		return []Payload{Inline(append([]byte("ok:"), buf...))}, nil
	})
	addr := serveService(t, s)

	c := NewCaller(nil, Config{})
	defer c.Close()
	pcs := make([]*PendingCall, n)
	for i := range pcs {
		pcs[i] = c.CallAsyncOpts(addr, "hold", CallOpts{Timeout: 10 * time.Second},
			Inline([]byte{byte('0' + i)}))
	}
	for i := 0; i < n; i++ {
		select {
		case <-arrived:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of %d pipelined service calls arrived before any Wait", i, n)
		}
	}
	close(release)
	for i, pc := range pcs {
		res, err := pc.Wait()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		want := fmt.Sprintf("ok:%c", '0'+i)
		if len(res) != 1 || string(res[0].Inline()) != want {
			t.Fatalf("call %d returned %v, want %q", i, res, want)
		}
	}
}

// TestCtxCallAsyncFanOut has a handler fan one request out to two
// downstream services concurrently via Ctx.CallAsync and combine the
// futures — the scatter/gather shape the async nested call exists for.
// The propagated deadline still applies: an exhausted budget yields a
// fast-failing future.
func TestCtxCallAsyncFanOut(t *testing.T) {
	leaf := func(tag string) string {
		s := NewService("leaf-"+tag, nil, Config{})
		s.Handle("leaf", func(ctx *Ctx, args []Payload) ([]Payload, error) {
			return []Payload{Inline([]byte(tag))}, nil
		})
		return serveService(t, s)
	}
	a, b := leaf("A"), leaf("B")

	root := NewService("root", nil, Config{})
	root.Handle("gather", func(ctx *Ctx, args []Payload) ([]Payload, error) {
		pa := ctx.CallAsync(a, "leaf")
		pb := ctx.CallAsync(b, "leaf")
		ra, err := pa.Wait()
		if err != nil {
			return nil, err
		}
		rb, err := pb.Wait()
		if err != nil {
			return nil, err
		}
		return []Payload{Inline(append(ra[0].Inline(), rb[0].Inline()...))}, nil
	})
	rootAddr := serveService(t, root)

	c := NewCaller(nil, Config{})
	defer c.Close()
	res, err := c.Call(rootAddr, "gather")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || string(res[0].Inline()) != "AB" {
		t.Fatalf("gather returned %v, want AB", res)
	}

	// Exhausted propagated budget: the future fails without a wire trip.
	dead := &Ctx{Svc: root, Deadline: time.Now().Add(-time.Second)}
	if _, err := dead.CallAsync(a, "leaf").Wait(); err == nil {
		t.Fatal("CallAsync with an exhausted budget returned a working future")
	}
}

// TestChainDoAsyncPipelined runs the chain app with a ring of in-flight
// requests and checks every aggregate, in by-ref mode so each request
// also exercises the stage-then-call overlap.
func TestChainDoAsyncPipelined(t *testing.T) {
	_, dmAddr := startDM(t, smallDM())
	d, err := DeployChain(3, []string{dmAddr}, Config{InlineThreshold: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	payload := make([]byte, 8192)
	for i := range payload {
		payload[i] = byte(i)
	}
	want := apps.Aggregate(payload)

	const total, depth = 12, 4
	ring := make([]*ChainPending, 0, depth)
	check := func(cp *ChainPending) {
		t.Helper()
		got, err := cp.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("pipelined aggregate = %d, want %d", got, want)
		}
	}
	for i := 0; i < total; i++ {
		if len(ring) == depth {
			check(ring[0])
			ring = ring[1:]
		}
		ring = append(ring, d.Client.DoAsync(payload))
	}
	for _, cp := range ring {
		check(cp)
	}

	// The synchronous path still works on the same deployment.
	got, err := d.Client.Do(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("sync aggregate = %d, want %d", got, want)
	}
	_ = live.ErrDeadline // keep the live import tied to this test file's intent
}
