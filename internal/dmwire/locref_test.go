package dmwire

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/dm"
)

// TestLocatedRefRoundTrip pins both versions of the ref codec: v1 refs
// round-trip with their shard identity, and a legacy v0 wire form (a bare
// 20-byte dm.Ref) still parses — old single-server refs keep working.
func TestLocatedRefRoundTrip(t *testing.T) {
	v1 := Locate(dm.Ref{Server: 1234, Key: 0xdeadbeef, Size: 1 << 20})
	b := v1.Marshal()
	if len(b) != LocatedRefSize {
		t.Fatalf("v1 wire size = %d, want %d", len(b), LocatedRefSize)
	}
	got, err := UnmarshalLocatedRef(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != v1.Version || got.Ref != v1.Ref || got.Replicas != nil {
		t.Fatalf("v1 round-trip = %+v, want %+v", got, v1)
	}
	if !got.Located() || got.Shard() != 1234 {
		t.Fatalf("v1 ref not located to shard 1234: %+v", got)
	}

	legacy := dm.Ref{Server: 2, Key: 42, Size: 4096}
	got, err = UnmarshalLocatedRef(legacy.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != RefV0 || got.Ref != legacy {
		t.Fatalf("legacy ref parsed as %+v", got)
	}
	if got.Located() {
		t.Fatal("v0 ref claims to be located")
	}
	if !bytes.Equal(got.Marshal(), legacy.Marshal()) {
		t.Fatal("v0 re-encoding diverges from dm.Ref.Marshal")
	}

	if _, err := UnmarshalLocatedRef([]byte{9, 0, 0}); !errors.Is(err, ErrBadRefVersion) {
		t.Fatalf("unknown version accepted: %v", err)
	}
}

// TestReplicatedRefRoundTrip pins the v2 form: the replica shard-ID set
// rides the wire, length disambiguates it from v0/v1, and degenerate
// replica lists collapse to the v1 encoding.
func TestReplicatedRefRoundTrip(t *testing.T) {
	ref := dm.Ref{Server: 7, Key: ReplicaKeyBit | 99, Size: 1 << 16}
	v2 := LocateReplicated(ref, []uint32{7, 3})
	b := v2.Marshal()
	if want := LocatedRefSize + 1 + 4*2; len(b) != want {
		t.Fatalf("v2 wire size = %d, want %d", len(b), want)
	}
	got, err := UnmarshalLocatedRef(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != RefV2 || got.Ref != ref {
		t.Fatalf("v2 round-trip = %+v", got)
	}
	if len(got.Replicas) != 2 || got.Replicas[0] != 7 || got.Replicas[1] != 3 {
		t.Fatalf("v2 replica set = %v, want [7 3]", got.Replicas)
	}
	if !got.Located() || got.Shard() != 7 {
		t.Fatalf("v2 ref not located to primary shard 7: %+v", got)
	}

	// Fewer than two shards: no hint list is needed, collapse to v1.
	if r := LocateReplicated(ref, []uint32{7}); r.Version != RefV1 || r.Replicas != nil {
		t.Fatalf("single-shard LocateReplicated = %+v, want v1", r)
	}
	if r := LocateReplicated(ref, nil); r.Version != RefV1 {
		t.Fatalf("empty LocateReplicated = %+v, want v1", r)
	}

	// Over-long lists are truncated to the decode cap, so every encoder
	// output is decodable.
	long := make([]uint32, MaxRefReplicas+3)
	for i := range long {
		long[i] = uint32(i)
	}
	r := LocateReplicated(ref, long)
	if len(r.Replicas) != MaxRefReplicas {
		t.Fatalf("replica list not truncated: %d", len(r.Replicas))
	}
	if _, err := UnmarshalLocatedRef(r.Marshal()); err != nil {
		t.Fatalf("truncated v2 ref does not decode: %v", err)
	}

	// A wire count above the cap is rejected before allocation.
	bad := append([]byte{}, b...)
	bad[LocatedRefSize] = MaxRefReplicas + 1
	if _, err := UnmarshalLocatedRef(bad); !errors.Is(err, ErrTooManyReplicas) {
		t.Fatalf("oversized replica count accepted: %v", err)
	}
}

// TestEnvelopeReplicatedArg pins the flag-3 replicated argument form in
// call and return envelopes: the replica hint set survives the round
// trip, and an empty flag-3 list is rejected as non-canonical.
func TestEnvelopeReplicatedArg(t *testing.T) {
	env := CallEnvelope{
		Method: "m",
		Args: []CallArg{
			{IsRef: true, Located: true, Replicas: []uint32{2, 5},
				Ref: dm.Ref{Server: 2, Key: ReplicaKeyBit | 4, Size: 128}},
			{Inline: []byte("tail")},
		},
	}
	dec, err := UnmarshalCallEnvelope(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	a := dec.Args[0]
	if !a.IsRef || !a.Located || len(a.Replicas) != 2 || a.Replicas[1] != 5 {
		t.Fatalf("replicated arg lost its hint set: %+v", a)
	}
	if !bytes.Equal(dec.Marshal(), env.Marshal()) {
		t.Fatal("envelope with replicated arg does not round-trip")
	}

	ret := ReturnEnvelope{Args: []CallArg{a}}
	rdec, err := UnmarshalReturnEnvelope(ret.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(rdec.Args[0].Replicas) != 2 {
		t.Fatalf("return envelope lost replicas: %+v", rdec.Args[0])
	}

	// Flag 3 with a zero-length replica list is non-canonical (it would
	// re-encode as flag 2): decoders must reject it.
	raw := ret.Marshal()
	// arg list count | flag | version | 20-byte ref | count
	raw[1+1+1+20] = 0
	if _, err := UnmarshalReturnEnvelope(raw[:1+1+1+20+1]); err == nil {
		t.Fatal("empty flag-3 replica list accepted")
	}
}

// TestEnvelopeLocatedArg pins the flag-2 located argument form inside
// call envelopes alongside the legacy forms.
func TestEnvelopeLocatedArg(t *testing.T) {
	env := CallEnvelope{
		Method: "m",
		Args: []CallArg{
			{IsRef: true, Located: true, Ref: dm.Ref{Server: 3, Key: 7, Size: 64}},
			{IsRef: true, Ref: dm.Ref{Server: 0, Key: 8, Size: 32}},
			{Inline: []byte("tail")},
		},
	}
	dec, err := UnmarshalCallEnvelope(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Args) != 3 {
		t.Fatalf("decoded %d args, want 3", len(dec.Args))
	}
	if !dec.Args[0].Located || dec.Args[0].Ref.Server != 3 {
		t.Fatalf("located arg lost its shard: %+v", dec.Args[0])
	}
	if dec.Args[1].Located {
		t.Fatalf("v0 ref arg decoded as located: %+v", dec.Args[1])
	}
	if !bytes.Equal(dec.Marshal(), env.Marshal()) {
		t.Fatal("envelope with located arg does not round-trip")
	}
}

// FuzzLocatedRef fuzzes the versioned ref decoder: no input may panic,
// and any accepted body must re-encode prefix-identically (the codec is
// canonical per version).
func FuzzLocatedRef(f *testing.F) {
	f.Add(Locate(dm.Ref{Server: 5, Key: 11, Size: 8192}).Marshal())
	f.Add(dm.Ref{Server: 0, Key: 1, Size: 64}.Marshal())
	f.Add(LocateReplicated(dm.Ref{Server: 5, Key: ReplicaKeyBit | 11, Size: 8192}, []uint32{5, 2, 9}).Marshal())
	f.Add([]byte{RefV1})
	f.Add([]byte{RefV2})
	f.Fuzz(func(t *testing.T, body []byte) {
		r, err := UnmarshalLocatedRef(body)
		if err != nil {
			return
		}
		reenc := r.Marshal()
		if len(reenc) > len(body) || !bytes.Equal(reenc, body[:len(reenc)]) {
			t.Fatal("accepted located ref does not round-trip")
		}
	})
}
