package live

import (
	"fmt"
	"net"
	"testing"
)

// benchSetup starts a loopback server and registered client for real-time
// benchmarking.
func benchSetup(b *testing.B) (*Server, *Client) {
	b.Helper()
	srv := NewServer(ServerConfig{NumPages: 1 << 15, PageSize: 4096})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	if err := cl.Register(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		cl.Close()
		srv.Close()
	})
	return srv, cl
}

// BenchmarkLiveStageFreeRef measures the fused stage+free cycle over real
// loopback TCP at several payload sizes.
func BenchmarkLiveStageFreeRef(b *testing.B) {
	for _, size := range []int{4096, 32768, 262144} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			_, cl := benchSetup(b)
			payload := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ref, err := cl.StageRef(payload)
				if err != nil {
					b.Fatal(err)
				}
				if err := cl.FreeRef(ref); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLiveReadRef measures read-through-ref latency for a resident
// 32 KiB object.
func BenchmarkLiveReadRef(b *testing.B) {
	_, cl := benchSetup(b)
	ref, err := cl.StageRef(make([]byte, 32768))
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 32768)
	b.SetBytes(32768)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.ReadRef(ref, 0, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveCoWWrite measures a map+write+unmap cycle against a shared
// region (each iteration triggers one page copy).
func BenchmarkLiveCoWWrite(b *testing.B) {
	_, cl := benchSetup(b)
	ref, err := cl.StageRef(make([]byte, 32768))
	if err != nil {
		b.Fatal(err)
	}
	small := []byte("dirty")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr, err := cl.MapRef(ref)
		if err != nil {
			b.Fatal(err)
		}
		if err := cl.Write(addr, small); err != nil {
			b.Fatal(err)
		}
		if err := cl.Free(addr); err != nil {
			b.Fatal(err)
		}
	}
}
