package live

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/dm"
	"repro/internal/faultnet"
)

// TestCallAsyncOverlaps is the deterministic pipelining proof: one node
// issues N futures back-to-back and every request reaches the server
// BEFORE any Wait — impossible on the synchronous path, where request
// i+1 cannot ship until response i returns.
func TestCallAsyncOverlaps(t *testing.T) {
	const n = 4
	arrived := make(chan struct{}, n)
	release := make(chan struct{})
	srv := NewNode()
	srv.Handle(7, func(from net.Addr, body []byte) ([]byte, error) {
		arrived <- struct{}{}
		<-release
		return append([]byte("r:"), body...), nil
	})
	addr := startNode(t, srv)

	cli := NewNode()
	defer cli.Close()
	ps := make([]*Pending, n)
	for i := range ps {
		ps[i] = cli.CallAsync(addr, 7, nil, []byte{byte(i)}, CallOpts{Timeout: 10 * time.Second})
	}
	for i := 0; i < n; i++ {
		select {
		case <-arrived:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of %d pipelined requests arrived before any Wait", i, n)
		}
	}
	close(release)
	for i, p := range ps {
		want := []byte{'r', ':', byte(i)}
		err := p.Wait(func(resp []byte) error {
			if !bytes.Equal(resp, want) {
				return fmt.Errorf("resp %q, want %q", resp, want)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

// TestClientAsyncRoundTrip drives the Client-level futures end to end:
// a pipelined burst of StageRefAsync, ReadRefAsync verification, a
// WriteAsync, and full teardown with conservation intact.
func TestClientAsyncRoundTrip(t *testing.T) {
	srv, addr := startServer(t, smallConfig())
	cl := dialClient(t, addr)

	const k = 8
	payloads := make([][]byte, k)
	stages := make([]*AsyncRef, k)
	for i := range stages {
		payloads[i] = bytes.Repeat([]byte{byte('a' + i)}, 4096)
		stages[i] = cl.StageRefAsync(payloads[i])
	}
	refs := make([]dm.Ref, 0, k)
	for i, ar := range stages {
		ref, err := ar.Wait()
		if err != nil {
			t.Fatalf("stage %d: %v", i, err)
		}
		refs = append(refs, ref)
	}

	reads := make([]*AsyncOp, k)
	got := make([][]byte, k)
	for i, ref := range refs {
		got[i] = make([]byte, len(payloads[i]))
		reads[i] = cl.ReadRefAsync(ref, 0, got[i])
	}
	for i, op := range reads {
		if err := op.Wait(); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("read %d corrupted", i)
		}
	}

	a, err := cl.Alloc(8192)
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte("wr"), 2048)
	if err := cl.WriteAsync(a, msg).Wait(); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, len(msg))
	if err := cl.Read(a, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, msg) {
		t.Fatal("async write round trip corrupted")
	}
	if err := cl.Free(a); err != nil {
		t.Fatal(err)
	}
	for _, ref := range refs {
		if err := cl.FreeRef(ref); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if free := srv.FreePages(); free != smallConfig().NumPages {
		t.Fatalf("pages leaked: %d free of %d", free, smallConfig().NumPages)
	}
}

// TestLateResponseAfterTimeoutNoLeak regresses the abandon/drain path:
// a call whose deadline fires before the (slow) handler responds must
// leave no pending-table entry behind, the late response must be dropped
// and its pooled buffer recycled without wedging the read loop, and the
// connection must stay usable for subsequent calls.
func TestLateResponseAfterTimeoutNoLeak(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	srv := NewNode()
	srv.Handle(9, func(from net.Addr, body []byte) ([]byte, error) {
		once.Do(func() { <-release }) // only the first call is slow
		return []byte("late"), nil
	})
	addr := startNode(t, srv)

	cli := NewNodeWith(NodeConfig{MaxRetries: -1})
	defer cli.Close()
	err := cli.CallConsumeOpts(addr, 9, nil, nil, nil,
		CallOpts{Timeout: 100 * time.Millisecond, Idempotent: true})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("slow call returned %v, want ErrDeadline", err)
	}
	close(release) // the late response now races in

	// The same connection must still complete calls after the abandon.
	if _, err := cli.Call(addr, 9, nil); err != nil {
		t.Fatalf("connection unusable after an abandoned call: %v", err)
	}
	// And once the late response has been read and dropped, the pending
	// table is empty — the entry was removed at timeout, not leaked.
	cli.mu.Lock()
	c := cli.peers[addr]
	cli.mu.Unlock()
	if c == nil {
		t.Fatal("peer connection was torn down; the late response should not poison it")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.pmu.Lock()
		n, dead := len(c.pending), c.dead
		c.pmu.Unlock()
		if dead != nil {
			t.Fatalf("connection poisoned by a late response: %v", dead)
		}
		if n == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d pending entries leaked after abandon", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBatchWriterFailureUnderFaultnet exercises the coalescing writer's
// poison path on a real connection: with the link stalled, a burst of
// async writes queues up; a partition then kills the connection
// mid-flush, every future must fail (no hangs, no successes), the
// dropped-frame counter must account for the queued frames, and after
// healing a fresh call must redial and succeed.
func TestBatchWriterFailureUnderFaultnet(t *testing.T) {
	srv, addr := startServer(t, smallConfig())
	inj := faultnet.New()
	ccfg := DefaultClientConfig()
	ccfg.Net.Dialer = injectedDialer(inj)
	ccfg.Net.MaxRetries = -1 // failures must surface, not retry away
	ccfg.Net.CallTimeout = 2 * time.Second
	ccfg.Net.AttemptTimeout = 2 * time.Second
	ccfg.HeartbeatInterval = -1
	cl, err := DialConfig(ccfg, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register(); err != nil {
		t.Fatal(err)
	}
	a, err := cl.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}

	inj.Stall() // writes block in flight; the submission queue builds
	const burst = 8
	ops := make([]*AsyncOp, burst)
	src := bytes.Repeat([]byte{0xCD}, 512)
	for i := range ops {
		ops[i] = cl.WriteAsync(a, src)
	}
	inj.Partition() // cut mid-flush: the blocked write fails
	for i, op := range ops {
		if err := op.Wait(); err == nil {
			t.Fatalf("write %d succeeded across a partition with retries disabled", i)
		}
	}
	if dropped := cl.node.WriteStats().DroppedFrames; dropped == 0 {
		t.Fatal("partition mid-flush dropped no queued frames")
	}

	inj.Heal() // also clears the stall gate for the fresh dial below
	if err := cl.Write(a, src); err != nil {
		t.Fatalf("write after heal (fresh dial) failed: %v", err)
	}
	if err := cl.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := srv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionHealthObservesFailures covers the heartbeat satellite: a
// partition makes renewals fail, the consecutive-failure counter climbs
// and the callback fires; after healing the counter resets to zero.
func TestSessionHealthObservesFailures(t *testing.T) {
	cfg := smallConfig()
	cfg.LeaseTTL = 30 * time.Second // generous: the session must survive the blip
	_, addr := startServer(t, cfg)
	inj := faultnet.New()
	var cbFails, cbMax atomicMax
	ccfg := DefaultClientConfig()
	ccfg.Net.Dialer = injectedDialer(inj)
	ccfg.HeartbeatInterval = 50 * time.Millisecond
	ccfg.OnHeartbeatFailure = func(a string, consecutive int, err error) {
		if a != addr {
			t.Errorf("callback for unknown addr %q", a)
		}
		cbFails.add(1)
		cbMax.max(consecutive)
	}
	cl, err := DialConfig(ccfg, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register(); err != nil {
		t.Fatal(err)
	}
	if h := cl.SessionHealth()[addr]; h != 0 {
		t.Fatalf("health %d before any failure", h)
	}

	inj.Partition()
	waitFor(t, 10*time.Second, "two consecutive heartbeat failures", func() bool {
		return cbFails.load() >= 2 && cl.SessionHealth()[addr] >= 1
	})
	if cbMax.load() < 2 {
		t.Fatalf("callback never saw consecutive>=2 (got %d)", cbMax.load())
	}

	inj.Heal()
	waitFor(t, 10*time.Second, "health back to zero after heal", func() bool {
		return cl.SessionHealth()[addr] == 0
	})
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// atomicMax is a tiny int accumulator safe across goroutines.
type atomicMax struct {
	mu sync.Mutex
	v  int
}

func (a *atomicMax) add(n int) { a.mu.Lock(); a.v += n; a.mu.Unlock() }
func (a *atomicMax) max(n int) {
	a.mu.Lock()
	if n > a.v {
		a.v = n
	}
	a.mu.Unlock()
}
func (a *atomicMax) load() int { a.mu.Lock(); defer a.mu.Unlock(); return a.v }
