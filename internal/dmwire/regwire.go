package dmwire

import (
	"errors"

	"repro/internal/registry"
	"repro/internal/rpc"
)

// Registry directory codecs (DESIGN.md §D16). One registry.Entry rides
// the wire as:
//
//	Key u64 | Size i64 | Epoch u64 | nreps u8 | Replicas u32 x n
//
// — 25 + 4n bytes. MRegPut carries exactly one entry (the handoff /
// placement-flip unit), MRegGet returns one, MRegSync returns a
// u32-counted list. Replica lists are capped at MaxRefReplicas and sync
// pages at MaxRegSyncEntries, so no hostile count can balloon memory.

// MaxRegSyncEntries caps one anti-entropy page: a defensive decode
// limit and the natural pacing unit for the sync loop.
const MaxRegSyncEntries = 1024

// ErrRegPage reports a sync page whose entry count exceeds
// MaxRegSyncEntries.
var ErrRegPage = errors.New("dmwire: registry sync page exceeds MaxRegSyncEntries")

// regEntrySize is the fixed prefix of one encoded entry.
const regEntrySize = 25

// encodeRegEntry appends one entry to e.
func encodeRegEntry(e *rpc.Enc, ent registry.Entry) {
	reps := ent.Replicas
	if len(reps) > MaxRefReplicas {
		reps = reps[:MaxRefReplicas]
	}
	e.U64(ent.Key).I64(ent.Size).U64(ent.Epoch).U8(uint8(len(reps)))
	for _, id := range reps {
		e.U32(id)
	}
}

// decodeRegEntry reads one entry off d. The caller checks d.Err().
func decodeRegEntry(d *rpc.Dec) (registry.Entry, error) {
	ent := registry.Entry{Key: d.U64(), Size: d.I64(), Epoch: d.U64()}
	n := int(d.U8())
	if n > MaxRefReplicas {
		return ent, ErrTooManyReplicas
	}
	if n > 0 {
		ent.Replicas = make([]uint32, n)
		for i := range ent.Replicas {
			ent.Replicas[i] = d.U32()
		}
	}
	return ent, d.Err()
}

// RegPutReq is the body of an MRegPut request: one directory entry to
// merge (higher epoch wins) into the shard's registry.
type RegPutReq struct {
	Entry registry.Entry
}

// Marshal encodes the request body.
func (r RegPutReq) Marshal() []byte {
	e := rpc.NewEnc(regEntrySize + 4*len(r.Entry.Replicas))
	encodeRegEntry(e, r.Entry)
	return e.Bytes()
}

// UnmarshalRegPutReq decodes the request body.
func UnmarshalRegPutReq(b []byte) (RegPutReq, error) {
	d := rpc.NewDec(b)
	ent, err := decodeRegEntry(d)
	return RegPutReq{Entry: ent}, err
}

// RegGetReq is the body of an MRegGet request.
type RegGetReq struct {
	Key uint64
}

// Marshal encodes the request body.
func (r RegGetReq) Marshal() []byte { return rpc.NewEnc(8).U64(r.Key).Bytes() }

// UnmarshalRegGetReq decodes the request body.
func UnmarshalRegGetReq(b []byte) (RegGetReq, error) {
	d := rpc.NewDec(b)
	r := RegGetReq{Key: d.U64()}
	return r, d.Err()
}

// RegGetResp is the body of a successful MRegGet response: the full
// entry (key included, so the caller can verify the echo).
type RegGetResp struct {
	Entry registry.Entry
}

// Marshal encodes the response body.
func (r RegGetResp) Marshal() []byte {
	e := rpc.NewEnc(regEntrySize + 4*len(r.Entry.Replicas))
	encodeRegEntry(e, r.Entry)
	return e.Bytes()
}

// UnmarshalRegGetResp decodes the response body.
func UnmarshalRegGetResp(b []byte) (RegGetResp, error) {
	d := rpc.NewDec(b)
	ent, err := decodeRegEntry(d)
	return RegGetResp{Entry: ent}, err
}

// RegSyncReq is the body of an MRegSync request: return up to Limit
// entries with keys strictly greater than AfterKey, ascending.
type RegSyncReq struct {
	AfterKey uint64
	Limit    uint32
}

// Marshal encodes the request body.
func (r RegSyncReq) Marshal() []byte {
	return rpc.NewEnc(12).U64(r.AfterKey).U32(r.Limit).Bytes()
}

// UnmarshalRegSyncReq decodes the request body.
func UnmarshalRegSyncReq(b []byte) (RegSyncReq, error) {
	d := rpc.NewDec(b)
	r := RegSyncReq{AfterKey: d.U64(), Limit: d.U32()}
	return r, d.Err()
}

// RegSyncResp is the body of a successful MRegSync response: one
// directory page. A page shorter than the requested limit means the
// scan is complete.
type RegSyncResp struct {
	Entries []registry.Entry
}

// Marshal encodes the response body. Pages longer than
// MaxRegSyncEntries are truncated — canonical encoders never build
// them.
func (r RegSyncResp) Marshal() []byte {
	ents := r.Entries
	if len(ents) > MaxRegSyncEntries {
		ents = ents[:MaxRegSyncEntries]
	}
	size := 4
	for _, ent := range ents {
		n := len(ent.Replicas)
		if n > MaxRefReplicas {
			n = MaxRefReplicas
		}
		size += regEntrySize + 4*n
	}
	e := rpc.NewEnc(size)
	e.U32(uint32(len(ents)))
	for _, ent := range ents {
		encodeRegEntry(e, ent)
	}
	return e.Bytes()
}

// UnmarshalRegSyncResp decodes the response body.
func UnmarshalRegSyncResp(b []byte) (RegSyncResp, error) {
	d := rpc.NewDec(b)
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return RegSyncResp{}, err
	}
	if n > MaxRegSyncEntries {
		return RegSyncResp{}, ErrRegPage
	}
	r := RegSyncResp{}
	if n > 0 {
		r.Entries = make([]registry.Entry, 0, min(n, 64))
		for i := 0; i < n; i++ {
			ent, err := decodeRegEntry(d)
			if err != nil {
				return RegSyncResp{}, err
			}
			r.Entries = append(r.Entries, ent)
		}
	}
	return r, d.Err()
}
