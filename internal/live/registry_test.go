package live

import (
	"errors"
	"testing"
	"time"

	"repro/internal/dm"
	"repro/internal/dmwire"
	"repro/internal/registry"
)

// TestRegistryOps exercises the directory RPCs end to end: put, point
// query, higher-epoch-wins merge, paged sync, and the free_ref
// directory delete.
func TestRegistryOps(t *testing.T) {
	srv, addr := startServer(t, smallConfig())
	cl := dialClient(t, addr)

	key := dmwire.ReplicaKeyBit | 7
	if _, err := cl.RegGet(0, key); !errors.Is(err, dm.ErrBadRef) {
		t.Fatalf("RegGet on empty directory: %v, want ErrBadRef", err)
	}
	ent := registry.Entry{Key: key, Size: 64, Epoch: 1, Replicas: []uint32{0, 2}}
	if err := cl.RegPut(0, ent); err != nil {
		t.Fatal(err)
	}
	got, err := cl.RegGet(0, key)
	if err != nil || got.Epoch != 1 || len(got.Replicas) != 2 {
		t.Fatalf("RegGet: %+v, %v", got, err)
	}
	// A stale put loses; a newer epoch flips the placement.
	if err := cl.RegPut(0, registry.Entry{Key: key, Size: 64, Epoch: 0, Replicas: []uint32{9}}); err != nil {
		t.Fatal(err)
	}
	if got, _ = cl.RegGet(0, key); got.Replicas[0] != 0 {
		t.Fatalf("stale put applied: %+v", got)
	}
	if err := cl.RegPut(0, registry.Entry{Key: key, Size: 64, Epoch: 2, Replicas: []uint32{1}}); err != nil {
		t.Fatal(err)
	}
	if got, _ = cl.RegGet(0, key); got.Epoch != 2 || got.Replicas[0] != 1 {
		t.Fatalf("newer put not applied: %+v", got)
	}

	// A counter-keyed put must be rejected: the directory only tracks
	// the pool-minted half of the key space.
	if err := cl.RegPut(0, registry.Entry{Key: 7, Size: 1, Epoch: 1, Replicas: []uint32{0}}); err == nil {
		t.Fatal("counter-keyed RegPut accepted")
	}

	for k := uint64(1); k <= 5; k++ {
		if err := cl.RegPut(0, registry.Entry{Key: dmwire.ReplicaKeyBit | (100 + k), Size: 8, Epoch: 1, Replicas: []uint32{0}}); err != nil {
			t.Fatal(err)
		}
	}
	var total int
	after := uint64(0)
	for {
		page, err := cl.RegSync(0, after, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range page {
			if i > 0 && page[i-1].Key >= e.Key {
				t.Fatalf("sync page out of order: %+v", page)
			}
		}
		total += len(page)
		if len(page) < 3 {
			break
		}
		after = page[len(page)-1].Key
	}
	if total != 6 {
		t.Fatalf("sync paged %d entries, want 6", total)
	}

	// free_ref is also the directory delete, and the tombstone blocks a
	// stale re-put.
	if err := cl.FreeRef(dm.Ref{Server: 0, Key: key, Size: 64}); !errors.Is(err, dm.ErrBadRef) {
		t.Fatalf("free of directory-only key: %v, want ErrBadRef (no payload)", err)
	}
	if _, err := cl.RegGet(0, key); !errors.Is(err, dm.ErrBadRef) {
		t.Fatal("directory entry survived free_ref")
	}
	if err := cl.RegPut(0, registry.Entry{Key: key, Size: 64, Epoch: 2, Replicas: []uint32{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RegGet(0, key); !errors.Is(err, dm.ErrBadRef) {
		t.Fatal("tombstoned entry resurrected by stale put")
	}
	if srv.Registry().Len() != 5 {
		t.Fatalf("server directory size %d, want 5", srv.Registry().Len())
	}
}

// TestRegistryHandoffSurvivesReap pins the §D16 handoff contract: a
// staged ref whose key the shard's directory holds outlives its
// producer's lease reap, while an unregistered ref from the same
// session is swept as before.
func TestRegistryHandoffSurvivesReap(t *testing.T) {
	cfg := smallConfig()
	cfg.LeaseTTL = 100 * time.Millisecond
	srv, addr := startServer(t, cfg)

	producer := dialClient(t, addr)
	payload := []byte("directory-owned payload")
	keyKept := dmwire.ReplicaKeyBit | 41
	keySwept := dmwire.ReplicaKeyBit | 42
	refKept, err := producer.StageRefAt(0, keyKept, payload)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := producer.StageRefAt(0, keySwept, payload); err != nil {
		t.Fatal(err)
	}
	// Hand only keyKept off to the cluster directory.
	if err := producer.RegPut(0, registry.Entry{Key: keyKept, Size: int64(len(payload)), Epoch: 1, Replicas: []uint32{0}}); err != nil {
		t.Fatal(err)
	}

	// Kill the producer's heartbeats and wait for the reap.
	producer.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.LiveRefs() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("reap did not settle: %d live refs, want 1", srv.LiveRefs())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A second session reads the surviving ref byte-for-byte.
	consumer := dialClient(t, addr)
	dst := make([]byte, len(payload))
	if err := consumer.ReadRef(dm.Ref{Server: 0, Key: refKept.Key, Size: refKept.Size}, 0, dst); err != nil {
		t.Fatalf("read of registry-owned ref after reap: %v", err)
	}
	if string(dst) != string(payload) {
		t.Fatal("payload corrupted across reap")
	}
	// The swept sibling is gone.
	if err := consumer.ReadRef(dm.Ref{Server: 0, Key: keySwept, Size: int64(len(payload))}, 0, dst); !errors.Is(err, dm.ErrBadRef) {
		t.Fatalf("unregistered ref survived reap: %v", err)
	}

	// Explicit free releases the registry-owned ref and its entry.
	if err := consumer.FreeRef(refKept); err != nil {
		t.Fatal(err)
	}
	if srv.LiveRefs() != 0 {
		t.Fatalf("%d live refs after free", srv.LiveRefs())
	}
	if _, err := consumer.RegGet(0, keyKept); !errors.Is(err, dm.ErrBadRef) {
		t.Fatal("directory entry survived explicit free")
	}
	if err := srv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
