package dmwire

import (
	"errors"

	"repro/internal/dm"
	"repro/internal/rpc"
)

// Call-envelope codec for the application-level DmRPC framework
// (internal/liverpc). One envelope is the body of one service call frame:
// the target method name, trace/deadline propagation fields, and the
// argument list, where each argument is either inline bytes (small
// values) or a Ref descriptor into disaggregated memory (large values
// staged once by the producer). The response body is a ReturnEnvelope
// carrying the result list in the same argument codec.

// Envelope decoding limits. These are defensive caps applied before any
// per-item allocation, mirroring MaxFrameSize at the frame layer: a
// hostile count or length field must not balloon memory.
const (
	// MaxMethodLen caps a method name's wire length in bytes.
	MaxMethodLen = 255
	// MaxCallArgs caps the number of arguments (or results) per envelope.
	MaxCallArgs = 64
)

// Envelope decode errors.
var (
	ErrMethodTooLong = errors.New("dmwire: method name exceeds MaxMethodLen")
	ErrTooManyArgs   = errors.New("dmwire: envelope exceeds MaxCallArgs arguments")
	ErrBadEnvelope   = errors.New("dmwire: malformed call envelope")
)

// CallArg is one size-aware argument descriptor: inline payload bytes or
// a Ref into disaggregated memory. Exactly the paper's pass-by-value /
// pass-by-reference split, at the wire layer.
type CallArg struct {
	// IsRef selects the representation.
	IsRef bool
	// Ref names the staged pages (valid when IsRef).
	Ref dm.Ref
	// Located marks a v1 cluster-addressed ref (see locref.go): Ref.Server
	// is a cluster-wide shard ID from the pool's consistent-hash ring, not
	// a connection-local server index. Valid when IsRef.
	Located bool
	// Replicas is the v2 replica-hint list (shard IDs believed to hold a
	// copy of the payload, primary included). Non-empty only for
	// replicated located refs; implies Located.
	Replicas []uint32
	// Inline is the in-message payload (valid when !IsRef). Unmarshal
	// aliases the envelope buffer; callers that retain it must copy.
	Inline []byte
}

// Size returns the argument's logical payload length.
func (a CallArg) Size() int64 {
	if a.IsRef {
		return a.Ref.Size
	}
	return int64(len(a.Inline))
}

// wireSize returns the argument's encoded length.
func (a CallArg) wireSize() int {
	if a.IsRef {
		if len(a.Replicas) > 0 {
			return 1 + LocatedRefSize + 1 + 4*len(a.Replicas)
		}
		if a.Located {
			return 1 + LocatedRefSize
		}
		return 1 + dm.EncodedRefSize
	}
	return 1 + 4 + len(a.Inline)
}

// encode appends the argument. When skipInlineBytes is set the inline
// length prefix is written but the raw bytes are omitted (the bulk-arg
// vectored-write path).
func (a CallArg) encode(e *rpc.Enc, skipInlineBytes bool) {
	if a.IsRef {
		if len(a.Replicas) > 0 {
			// Replicated (v2) ref: flag, version byte, the standard ref
			// encoding, then the u8-counted replica shard-ID list.
			e.U8(3)
			e.U8(RefV2)
			a.Ref.Encode(e)
			e.U8(uint8(len(a.Replicas)))
			for _, id := range a.Replicas {
				e.U32(id)
			}
			return
		}
		if a.Located {
			// Located (v1) ref: flag, version byte, then the standard ref
			// encoding with Server carrying the shard ID.
			e.U8(2)
			e.U8(RefV1)
			a.Ref.Encode(e)
			return
		}
		e.U8(1)
		a.Ref.Encode(e)
		return
	}
	e.U8(0)
	if skipInlineBytes {
		e.U32(uint32(len(a.Inline)))
		return
	}
	e.Blob(a.Inline)
}

// decodeCallArg reads one argument, aliasing d's buffer for inline data.
// Flags other than 0/1/2/3 are rejected so the codec stays canonical; a
// located arg must carry the ref version matching its flag (flag 2 = v1,
// flag 3 = v2 with a non-empty replica list).
func decodeCallArg(d *rpc.Dec) (CallArg, error) {
	switch d.U8() {
	case 3:
		if d.U8() != RefV2 {
			return CallArg{}, ErrBadRefVersion
		}
		a := CallArg{IsRef: true, Located: true, Ref: dm.DecodeRef(d)}
		n := int(d.U8())
		if n > MaxRefReplicas {
			return CallArg{}, ErrTooManyReplicas
		}
		if n == 0 {
			// Canonical encoders emit flag 3 only with replicas present; an
			// empty list would re-encode as flag 2 and break canonicality.
			return CallArg{}, ErrBadEnvelope
		}
		a.Replicas = make([]uint32, n)
		for i := range a.Replicas {
			a.Replicas[i] = d.U32()
		}
		return a, nil
	case 2:
		if d.U8() != RefV1 {
			return CallArg{}, ErrBadRefVersion
		}
		return CallArg{IsRef: true, Located: true, Ref: dm.DecodeRef(d)}, nil
	case 1:
		return CallArg{IsRef: true, Ref: dm.DecodeRef(d)}, nil
	case 0:
		return CallArg{Inline: d.Blob()}, nil
	default:
		return CallArg{}, ErrBadEnvelope
	}
}

// CallEnvelope is the request body of one liverpc service call.
type CallEnvelope struct {
	// Method is the registered service method name.
	Method string
	// TraceID identifies the end-to-end request; minted at the top-level
	// caller and propagated unchanged down nested calls.
	TraceID uint64
	// Hop is the nesting depth, incremented per forwarding service.
	Hop uint8
	// DeadlineMillis is the caller's remaining deadline budget at send
	// time, in milliseconds; 0 means no deadline. Propagating the
	// remaining budget (not an absolute timestamp) keeps the field
	// meaningful across unsynchronized clocks.
	DeadlineMillis uint32
	// Args is the argument list.
	Args []CallArg
}

// marshal encodes the envelope; when hdrOnly is set and the final
// argument is inline, that argument's raw bytes are omitted so they can
// ride the socket as their own iovec.
func (env CallEnvelope) marshal(hdrOnly bool) []byte {
	n := 4 + len(env.Method) + 8 + 1 + 4 + 1
	for _, a := range env.Args {
		n += a.wireSize()
	}
	e := rpc.NewEnc(n)
	e.Str(env.Method)
	e.U64(env.TraceID)
	e.U8(env.Hop)
	e.U32(env.DeadlineMillis)
	e.U8(uint8(len(env.Args)))
	for i, a := range env.Args {
		a.encode(e, hdrOnly && i == len(env.Args)-1)
	}
	return e.Bytes()
}

// Marshal encodes the full envelope, inline bytes included.
func (env CallEnvelope) Marshal() []byte { return env.marshal(false) }

// MarshalHdr encodes the envelope with the final argument's inline bytes
// omitted (its length prefix stays), for transports that write those
// bytes as their own vectored segment:
//
//	Marshal() == append(MarshalHdr(), lastArg.Inline...)
//
// Valid only when the final argument is inline; envelopes whose last
// argument is a Ref (or that have no arguments) get the full encoding.
func (env CallEnvelope) MarshalHdr() []byte {
	if n := len(env.Args); n == 0 || env.Args[n-1].IsRef {
		return env.marshal(false)
	}
	return env.marshal(true)
}

// Bulk returns the bytes MarshalHdr omitted (nil when MarshalHdr is the
// full encoding).
func (env CallEnvelope) Bulk() []byte {
	if n := len(env.Args); n > 0 && !env.Args[n-1].IsRef {
		return env.Args[n-1].Inline
	}
	return nil
}

// UnmarshalCallEnvelope decodes a call envelope. Inline argument bytes
// alias b.
func UnmarshalCallEnvelope(b []byte) (CallEnvelope, error) {
	d := rpc.NewDec(b)
	method := d.Blob()
	if len(method) > MaxMethodLen {
		return CallEnvelope{}, ErrMethodTooLong
	}
	env := CallEnvelope{
		Method:  string(method),
		TraceID: d.U64(),
		Hop:     d.U8(),
	}
	env.DeadlineMillis = d.U32()
	args, err := decodeArgs(d)
	if err != nil {
		return CallEnvelope{}, err
	}
	env.Args = args
	if d.Err() != nil {
		return CallEnvelope{}, ErrBadEnvelope
	}
	return env, nil
}

// ReturnEnvelope is the successful response body of one liverpc call:
// the result list in the same size-aware argument codec. Errors travel
// as non-OK frame statuses, not in the envelope.
type ReturnEnvelope struct {
	Args []CallArg
}

// Marshal encodes the response body.
func (env ReturnEnvelope) Marshal() []byte {
	n := 1
	for _, a := range env.Args {
		n += a.wireSize()
	}
	e := rpc.NewEnc(n)
	e.U8(uint8(len(env.Args)))
	for _, a := range env.Args {
		a.encode(e, false)
	}
	return e.Bytes()
}

// UnmarshalReturnEnvelope decodes a response body. Inline result bytes
// alias b.
func UnmarshalReturnEnvelope(b []byte) (ReturnEnvelope, error) {
	d := rpc.NewDec(b)
	args, err := decodeArgs(d)
	if err != nil {
		return ReturnEnvelope{}, err
	}
	if d.Err() != nil {
		return ReturnEnvelope{}, ErrBadEnvelope
	}
	return ReturnEnvelope{Args: args}, nil
}

// decodeArgs reads a U8-counted argument list, enforcing MaxCallArgs.
func decodeArgs(d *rpc.Dec) ([]CallArg, error) {
	n := int(d.U8())
	if n > MaxCallArgs {
		return nil, ErrTooManyArgs
	}
	if n == 0 || d.Err() != nil {
		return nil, nil
	}
	args := make([]CallArg, 0, n)
	for i := 0; i < n; i++ {
		a, err := decodeCallArg(d)
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	return args, nil
}
