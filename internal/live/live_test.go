package live

import (
	"bytes"
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"

	"repro/internal/dm"
)

// startServer runs a live server on a loopback listener and returns its
// address plus a cleanup function.
func startServer(t *testing.T, cfg ServerConfig) (*Server, string) {
	t.Helper()
	srv := NewServer(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		<-done
	})
	return srv, ln.Addr().String()
}

func dialClient(t *testing.T, addrs ...string) *Client {
	t.Helper()
	cl, err := Dial(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if err := cl.Register(); err != nil {
		t.Fatal(err)
	}
	return cl
}

func smallConfig() ServerConfig { return ServerConfig{NumPages: 128, PageSize: 4096} }

func TestAllocWriteReadRoundTrip(t *testing.T) {
	_, addr := startServer(t, smallConfig())
	cl := dialClient(t, addr)
	a, err := cl.Alloc(10000)
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte("live-dmrpc"), 1000)
	if err := cl.Write(a, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := cl.Read(a, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round trip corrupted")
	}
	if err := cl.Free(a); err != nil {
		t.Fatal(err)
	}
}

func TestShareAndCoWAcrossClients(t *testing.T) {
	srv, addr := startServer(t, smallConfig())
	producer := dialClient(t, addr)
	consumer := dialClient(t, addr)

	a, err := producer.Alloc(8192)
	if err != nil {
		t.Fatal(err)
	}
	if err := producer.Write(a, []byte("original")); err != nil {
		t.Fatal(err)
	}
	ref, err := producer.CreateRef(a, 8192)
	if err != nil {
		t.Fatal(err)
	}
	// Ref travels by value between processes.
	ref2, err := dm.UnmarshalRef(ref.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := consumer.MapRef(ref2)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if err := consumer.Read(mapped, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Fatalf("consumer read %q", got)
	}
	// Consumer write CoWs; producer view unchanged.
	if err := consumer.Write(mapped, []byte("CLOBBER!")); err != nil {
		t.Fatal(err)
	}
	if err := producer.Read(a, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Fatalf("producer sees %q after consumer write", got)
	}
	if err := srv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFullLifecycleNoLeak(t *testing.T) {
	srv, addr := startServer(t, smallConfig())
	c1 := dialClient(t, addr)
	c2 := dialClient(t, addr)
	start := srv.FreePages()

	a, err := c1.Alloc(3 * 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Write(a, make([]byte, 3*4096)); err != nil {
		t.Fatal(err)
	}
	ref, err := c1.CreateRef(a, 3*4096)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := c2.MapRef(ref)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Write(mapped, []byte("cow")); err != nil {
		t.Fatal(err)
	}
	if err := c1.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := c2.Free(mapped); err != nil {
		t.Fatal(err)
	}
	if err := c1.FreeRef(ref); err != nil {
		t.Fatal(err)
	}
	if got := srv.FreePages(); got != start {
		t.Fatalf("page leak: %d free, started %d", got, start)
	}
	if srv.LiveRefs() != 0 {
		t.Fatalf("LiveRefs = %d", srv.LiveRefs())
	}
	if err := srv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStageAndReadRef(t *testing.T) {
	_, addr := startServer(t, smallConfig())
	cl := dialClient(t, addr)
	data := bytes.Repeat([]byte("stage"), 4000)
	ref, err := cl.StageRef(data)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Size != int64(len(data)) {
		t.Fatalf("ref.Size = %d", ref.Size)
	}
	got := make([]byte, 100)
	if err := cl.ReadRef(ref, 5000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[5000:5100]) {
		t.Fatal("readref window corrupted")
	}
	whole := make([]byte, len(data))
	if err := cl.ReadRef(ref, 0, whole); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(whole, data) {
		t.Fatal("full readref corrupted")
	}
	if err := cl.FreeRef(ref); err != nil {
		t.Fatal(err)
	}
}

func TestErrorPaths(t *testing.T) {
	_, addr := startServer(t, smallConfig())
	cl := dialClient(t, addr)
	if err := cl.Free(dm.RemoteAddr(0x999000)); !errors.Is(err, dm.ErrBadAddress) {
		t.Errorf("Free bad addr: %v", err)
	}
	if _, err := cl.MapRef(dm.Ref{Server: 0, Key: 77, Size: 1}); !errors.Is(err, dm.ErrBadRef) {
		t.Errorf("MapRef unknown: %v", err)
	}
	if _, err := cl.MapRef(dm.Ref{Server: 9, Key: 0, Size: 1}); !errors.Is(err, dm.ErrBadAddress) {
		t.Errorf("MapRef bad pool index: %v", err)
	}
	a, _ := cl.Alloc(100)
	if err := cl.Read(a, make([]byte, 8192)); !errors.Is(err, dm.ErrOutOfRange) {
		t.Errorf("Read out of range: %v", err)
	}
	if _, err := cl.CreateRef(a, 0); !errors.Is(err, dm.ErrOutOfRange) {
		t.Errorf("CreateRef zero size: %v", err)
	}
	if _, err := cl.StageRef(nil); !errors.Is(err, dm.ErrOutOfRange) {
		t.Errorf("StageRef empty: %v", err)
	}
}

func TestUnregisteredClientRejected(t *testing.T) {
	_, addr := startServer(t, smallConfig())
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Alloc(100); err == nil {
		t.Fatal("Alloc before Register succeeded")
	}
}

func TestOutOfMemory(t *testing.T) {
	_, addr := startServer(t, ServerConfig{NumPages: 2, PageSize: 4096})
	cl := dialClient(t, addr)
	a, err := cl.Alloc(3 * 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Write(a, make([]byte, 3*4096)); !errors.Is(err, dm.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestMultiServerRoundRobin(t *testing.T) {
	_, addr1 := startServer(t, smallConfig())
	_, addr2 := startServer(t, smallConfig())
	cl := dialClient(t, addr1, addr2)
	a1, err := cl.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := cl.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := splitAddr(a1)
	s2, _ := splitAddr(a2)
	if s1 != 0 || s2 != 1 {
		t.Fatalf("allocations on servers %d,%d, want 0,1", s1, s2)
	}
	// Data staged on server 1 readable through the pool-indexed ref.
	ref, err := cl.StageRef([]byte("second-server"))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 13)
	if err := cl.ReadRef(ref, 0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "second-server" {
		t.Fatalf("got %q", got)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, addr := startServer(t, ServerConfig{NumPages: 4096, PageSize: 4096})
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			if err := cl.Register(); err != nil {
				errs <- err
				return
			}
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				size := int64(rng.Intn(3*4096) + 1)
				a, err := cl.Alloc(size)
				if err != nil {
					errs <- err
					return
				}
				buf := make([]byte, size)
				rng.Read(buf)
				if err := cl.Write(a, buf); err != nil {
					errs <- err
					return
				}
				got := make([]byte, size)
				if err := cl.Read(a, got); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, buf) {
					errs <- errors.New("concurrent read mismatch")
					return
				}
				ref, err := cl.CreateRef(a, size)
				if err != nil {
					errs <- err
					return
				}
				if err := cl.Free(a); err != nil {
					errs <- err
					return
				}
				if err := cl.FreeRef(ref); err != nil {
					errs <- err
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := srv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := srv.FreePages(); got != 4096 {
		t.Fatalf("pages leaked under concurrency: %d free", got)
	}
}

func TestConcurrentCallsOnOneClient(t *testing.T) {
	_, addr := startServer(t, ServerConfig{NumPages: 4096, PageSize: 4096})
	cl := dialClient(t, addr)
	const calls = 64
	var wg sync.WaitGroup
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := bytes.Repeat([]byte{byte(i)}, 5000)
			ref, err := cl.StageRef(data)
			if err != nil {
				errs <- err
				return
			}
			got := make([]byte, len(data))
			if err := cl.ReadRef(ref, 0, got); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, data) {
				errs <- errors.New("multiplexed call cross-talk")
				return
			}
			errs <- cl.FreeRef(ref)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestLazyAllocation(t *testing.T) {
	srv, addr := startServer(t, smallConfig())
	cl := dialClient(t, addr)
	start := srv.FreePages()
	if _, err := cl.Alloc(16 * 4096); err != nil {
		t.Fatal(err)
	}
	if srv.FreePages() != start {
		t.Fatal("alloc consumed pages before first write")
	}
}

func TestReadUnwrittenReturnsZeros(t *testing.T) {
	_, addr := startServer(t, smallConfig())
	cl := dialClient(t, addr)
	a, _ := cl.Alloc(4096)
	got := []byte{0xFF, 0xFF}
	if err := cl.Read(a, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("unwritten read %v", got)
	}
}

func TestStaleFrameRejected(t *testing.T) {
	// A raw connection sending garbage must not wedge the server.
	srv, addr := startServer(t, smallConfig())
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	nc.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	nc.Close()
	// Server must still serve a well-behaved client afterwards.
	cl := dialClient(t, addr)
	if _, err := cl.Alloc(100); err != nil {
		t.Fatal(err)
	}
	_ = srv
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	if _, err := Dial(); err == nil {
		t.Fatal("dial with no addresses succeeded")
	}
}

func TestServerConfigValidate(t *testing.T) {
	if err := DefaultServerConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (ServerConfig{NumPages: 0, PageSize: 4096}).Validate(); err == nil {
		t.Fatal("zero pages accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewServer with bad config did not panic")
		}
	}()
	NewServer(ServerConfig{})
}
