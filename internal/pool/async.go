package pool

import (
	"time"

	"repro/internal/dm"
	"repro/internal/live"
)

// Asynchronous variants, mirroring live.Client's PR-4 pipelining
// surface: the pool routes up front, the shard's own client puts the
// frame on the wire immediately, and Wait carries the shard's retry and
// dedup semantics unchanged. Futures returned for located refs rewrite
// Ref.Server to the shard ID at Wait time. At ReplicaFactor > 1, stage
// futures fan the payload out to every replica shard and by-ref read
// futures fail over to the remaining replicas at Wait time.

// AsyncRef is an in-flight StageRefAsync; Wait must be called exactly
// once and yields a located ref.
type AsyncRef struct {
	inner *live.AsyncRef
	shard uint32
	rep   *repStage // replicated fan-out (replica.go); nil at R=1
	err   error
}

// Wait blocks for the staging result.
func (ar *AsyncRef) Wait() (dm.Ref, error) {
	if ar.err != nil {
		return dm.Ref{}, ar.err
	}
	if ar.rep != nil {
		return ar.rep.wait()
	}
	ref, err := ar.inner.Wait()
	if err != nil {
		return dm.Ref{}, err
	}
	ref.Server = ar.shard
	return ref, nil
}

// StageRefAsync starts staging data onto a ring-chosen shard (or, at
// ReplicaFactor > 1, onto every replica shard of a minted cluster key)
// and returns a future for the located ref. data must stay valid and
// unmodified until Wait returns.
func (p *Client) StageRefAsync(data []byte) *AsyncRef {
	if p.replicaFactor() > 1 {
		return p.stageReplicatedAsync(data, 0)
	}
	return p.StageRefKeyedAsync(p.cursor.Add(1), data)
}

// StageRefKeyedAsync is StageRefAsync with explicit placement (see
// StageRefKeyed; the key is ignored at ReplicaFactor > 1).
func (p *Client) StageRefKeyedAsync(key uint64, data []byte) *AsyncRef {
	if p.replicaFactor() > 1 {
		return p.stageReplicatedAsync(data, 0)
	}
	s, err := p.route(key)
	if err != nil {
		return &AsyncRef{err: err}
	}
	return &AsyncRef{inner: s.cl.StageRefAsync(data), shard: s.id}
}

// AsyncOp is one in-flight asynchronous pool operation; Wait must be
// called exactly once.
type AsyncOp struct {
	inner *live.AsyncOp
	// retry, when set, runs a synchronous failover pass after the
	// in-flight attempt fails with a failover-worthy error.
	retry func(firstErr error) error
	// complete, when set, is a pre-resolved result (a pool-cache hit
	// that never touched the wire); Wait runs it exactly once.
	complete func() error
	// admit, when set, offers the fetched payload for pool-cache
	// admission after a successful wait.
	admit func()
	err   error
}

// Wait blocks for the operation's result.
func (op *AsyncOp) Wait() error {
	if op.err != nil {
		return op.err
	}
	if op.complete != nil {
		return op.complete()
	}
	err := op.inner.Wait()
	if err != nil && op.retry != nil && failoverWorthy(err) {
		err = op.retry(err)
	}
	if err == nil && op.admit != nil {
		op.admit()
	}
	return err
}

// ReadRefAsync starts a by-ref read from the ref's primary shard into
// dst and returns a future; dst is filled when Wait returns nil. If the
// primary fails, Wait falls back to the ref's remaining replicas
// synchronously. A whole-object read that hits the pool cache resolves
// without touching the wire (the copy into dst is deferred to Wait); a
// cacheable miss offers the fetched payload for admission after Wait
// succeeds.
func (p *Client) ReadRefAsync(ref dm.Ref, off int64, dst []byte) *AsyncOp {
	cacheable := p.refCacheable(ref, off, int64(len(dst)))
	if cacheable {
		if b, ok := p.cache.Get(p.cacheKey(ref)); ok {
			return &AsyncOp{complete: func() error {
				copy(dst, b.Bytes())
				b.Release()
				return nil
			}}
		}
	}
	s, err := p.byID(ref.Server)
	if err != nil {
		// The primary is unresolvable; a replicated ref may still be
		// readable through its replicas.
		return &AsyncOp{err: p.readRefFailover(ref, off, dst, ref.Server, err)}
	}
	local := ref
	local.Server = 0
	op := &AsyncOp{
		inner: s.cl.ReadRefAsync(local, off, dst),
		retry: func(firstErr error) error {
			return p.readRefFailover(ref, off, dst, ref.Server, firstErr)
		},
	}
	if cacheable {
		op.admit = func() {
			// Admission copies dst (the caller's buffer cannot be
			// retained); mk runs only if the sketch admits the key.
			p.cache.Add(p.cacheKey(ref), ref.Size, time.Duration(p.cacheTTL.Load()),
				func() *live.Buf { return live.NewBuf(dst) })
		}
	}
	return op
}

// WriteAsync starts an rwrite of src at addr on its shard and returns a
// future. src must stay valid and unmodified until Wait returns.
func (p *Client) WriteAsync(addr dm.RemoteAddr, src []byte) *AsyncOp {
	id, raw := splitShard(addr)
	s, err := p.byID(id)
	if err != nil {
		return &AsyncOp{err: err}
	}
	return &AsyncOp{inner: s.cl.WriteAsync(raw, src)}
}
