// Blockstore runs the block-storage scenario the paper's introduction
// motivates (§I: block storage services move tens-to-hundreds-of-KB blocks
// over RPC): clients write 64 KiB blocks through a replicating gateway.
// Under pass-by-value the gateway's NIC and memory bus carry every block
// R+1 times; under DmRPC only ~20-byte Refs cross it and the DM pool holds
// one copy that both replicas reference.
//
//	go run ./examples/blockstore
package main

import (
	"fmt"

	"repro/internal/msvc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	const blockSize = 65536
	fmt.Printf("block store: %s blocks, 3 backends, 2 replicas\n\n", stats.Bytes(blockSize))

	for _, mode := range []msvc.Mode{msvc.ModeERPC, msvc.ModeDmNet, msvc.ModeDmCXL} {
		pl := msvc.NewPlatform(msvc.DefaultConfig(mode))
		bs := msvc.NewBlockStore(pl, 3, 2)
		pl.Start()

		block := make([]byte, blockSize)
		gwBefore := bs.Gateway().Host.MemBytesMoved()
		key := uint64(0)
		res := workload.RunClosed(pl.Eng, workload.ClosedConfig{
			Clients: 8,
			Warmup:  2 * sim.Millisecond,
			Measure: 20 * sim.Millisecond,
		}, func(p *sim.Proc) error {
			key++
			if key%4 == 0 {
				_, err := bs.Read(p, key-1)
				return err
			}
			return bs.Write(p, key%512, block)
		})
		gwPerOp := int64(0)
		if res.Ops > 0 {
			gwPerOp = (bs.Gateway().Host.MemBytesMoved() - gwBefore) / res.Ops
		}
		fmt.Printf("%-10s %-12s avg=%-10s gateway mem %s/op\n",
			mode, stats.Rate(res.Throughput()),
			stats.Dur(int64(res.Latency.Mean())), stats.Bytes(gwPerOp))
		pl.Shutdown()
	}
	fmt.Println("\nwith refs, replication holds ONE copy in the DM pool; the gateway ships pointers")
}
