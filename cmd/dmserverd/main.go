// Command dmserverd runs a live (real TCP) DmRPC-net disaggregated memory
// server: the paper's page manager and address translator over an
// in-process pinned page pool, speaking the internal/dmwire protocol.
//
// Usage:
//
//	dmserverd -listen :7640 -pages 65536 -pagesize 4096
//
// Clients connect with internal/live.Dial and use the Table II API
// (ralloc/rfree/create_ref/map_ref/rread/rwrite plus stage/read-by-ref).
// See examples/live for an end-to-end flow.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/live"
)

func main() {
	listen := flag.String("listen", ":7640", "TCP listen address")
	pages := flag.Int("pages", 1<<16, "pool size in pages")
	pageSize := flag.Int("pagesize", 4096, "page size in bytes")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "session lease TTL; an unrenewed session is reaped after this long (0 disables leasing)")
	drain := flag.Duration("drain", time.Second, "graceful drain window on shutdown before connections are cut")
	maxFrame := flag.Uint("max-frame", live.DefaultMaxFrameSize, "maximum accepted frame payload in bytes")
	maxSlow := flag.Int("max-slow", 64, "maximum concurrent slow handlers per connection")
	coalesceLimit := flag.Int("coalesce-limit", 0, "largest response coalesced into batched writes, bytes (0 = default, negative disables)")
	coalesceBatch := flag.Int("coalesce-batch", 0, "max bytes per group-commit flush (0 = default)")
	coalesceSpin := flag.Duration("coalesce-spin", 0, "adaptive spin-then-flush window cap (0 = default, negative disables)")
	credits := flag.Int("credits", 0, "per-session async credit window advertised to clients (0 = default, negative disables advertisement)")
	statsEvery := flag.Duration("stats", 0, "print free-page/live-ref/writer counters at this interval (0 disables)")
	shardID := flag.Int("shard-id", -1, "cluster-wide shard ID announced to pool clients (-1 = single-server, no shard)")
	flag.Parse()

	cfg := live.ServerConfig{
		NumPages:           *pages,
		PageSize:           *pageSize,
		LeaseTTL:           *leaseTTL,
		DrainTimeout:       *drain,
		MaxFrameSize:       uint32(*maxFrame),
		MaxSlowPerConn:     *maxSlow,
		CoalesceLimit:      *coalesceLimit,
		CoalesceBatchBytes: *coalesceBatch,
		CoalesceSpin:       *coalesceSpin,
		SessionCredits:     *credits,
	}
	if *shardID >= 0 {
		cfg.HasShard = true
		cfg.ShardID = uint32(*shardID)
	}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	srv := live.NewServer(cfg)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	shardNote := ""
	if cfg.HasShard {
		shardNote = fmt.Sprintf(" as shard %d", cfg.ShardID)
	}
	fmt.Printf("dmserverd: serving %d pages x %dB (%d MiB) on %s%s\n",
		*pages, *pageSize, *pages**pageSize>>20, ln.Addr(), shardNote)

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				ws := srv.WriteStats()
				// leased_bufs is the in-process zero-copy lease gauge
				// (live.LeasedBufs); epoch is the §D15 cache-invalidation
				// epoch piggybacked on heartbeats. leased_bufs should
				// return to zero when in-process clients go idle.
				fmt.Printf("dmserverd: free_pages=%d live_refs=%d stage_puts=%d leased_bufs=%d epoch=%d tx_frames=%d tx_batches=%d tx_inline=%d group_commit=%.1f spin_batches=%d queue_frames=%d queue_bytes=%d tx_bytes=%d\n",
					srv.FreePages(), srv.LiveRefs(), srv.StagePuts(), live.LeasedBufs(), srv.Epoch(),
					ws.Frames, ws.Batches, ws.InlineFrames,
					ws.GroupCommitFactor, ws.SpinBatches, ws.QueueFrames, ws.QueueBytes, ws.Bytes)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("dmserverd: draining and shutting down")
		srv.Close()
	}()
	if err := srv.Serve(ln); err != nil {
		log.Fatal(err)
	}
}
