package dmwire

import (
	"bytes"
	"testing"
)

// TestRegisterRespCreditForms pins the three length-disambiguated wire
// forms of the register response and their round-trips: credits force the
// 17-byte extended form (with and without a shard), no credits keep the
// legacy 8/12-byte bodies byte-identical to pre-credit servers.
func TestRegisterRespCreditForms(t *testing.T) {
	for _, tc := range []struct {
		name    string
		r       RegisterResp
		wantLen int
	}{
		{"base", RegisterResp{PID: 7, LeaseMillis: 15000}, 8},
		{"legacy shard", RegisterResp{PID: 7, LeaseMillis: 15000, HasShard: true, Shard: 3}, 12},
		{"credits", RegisterResp{PID: 7, LeaseMillis: 15000, Credits: 256}, 17},
		{"credits+shard", RegisterResp{PID: 9, LeaseMillis: 500, HasShard: true, Shard: 2, Credits: 64}, 17},
		{"credits max", RegisterResp{PID: 1, LeaseMillis: 1, Credits: 1<<32 - 1}, 17},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.r.Marshal()
			if len(b) != tc.wantLen {
				t.Fatalf("marshalled length = %d, want %d", len(b), tc.wantLen)
			}
			got, err := UnmarshalRegisterResp(b)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.r {
				t.Fatalf("round trip = %+v, want %+v", got, tc.r)
			}
		})
	}
}

// TestRegisterRespLegacyBytesStillDecode: a pre-credit server's exact
// bytes decode with Credits = 0, and the re-encoding reproduces them —
// the interop contract in both directions.
func TestRegisterRespLegacyBytesStillDecode(t *testing.T) {
	legacy := RegisterResp{PID: 42, LeaseMillis: 9000, HasShard: true, Shard: 5}
	b := legacy.Marshal()
	got, err := UnmarshalRegisterResp(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Credits != 0 || got != legacy {
		t.Fatalf("legacy decode = %+v, want %+v with zero credits", got, legacy)
	}
	if !bytes.Equal(got.Marshal(), b) {
		t.Fatal("legacy bytes not reproduced by re-encoding")
	}
}

// TestHeartbeatRespCreditForms: the renewed window rides the heartbeat
// response as a 4-byte suffix, absent when credits are off.
func TestHeartbeatRespCreditForms(t *testing.T) {
	for _, tc := range []struct {
		name    string
		r       HeartbeatResp
		wantLen int
	}{
		{"base", HeartbeatResp{LeaseMillis: 250}, 4},
		{"credits", HeartbeatResp{LeaseMillis: 250, Credits: 128}, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.r.Marshal()
			if len(b) != tc.wantLen {
				t.Fatalf("marshalled length = %d, want %d", len(b), tc.wantLen)
			}
			got, err := UnmarshalHeartbeatResp(b)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.r {
				t.Fatalf("round trip = %+v, want %+v", got, tc.r)
			}
		})
	}
}
