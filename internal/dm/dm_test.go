package dm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rpc"
)

func TestRefMarshalRoundTrip(t *testing.T) {
	r := Ref{Server: 3, Key: 0xDEADBEEF, Size: 1 << 20}
	b := r.Marshal()
	if len(b) != EncodedRefSize {
		t.Fatalf("encoded size %d, want %d", len(b), EncodedRefSize)
	}
	got, err := UnmarshalRef(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("round trip %+v != %+v", got, r)
	}
}

func TestRefUnmarshalShort(t *testing.T) {
	if _, err := UnmarshalRef([]byte{1, 2}); err == nil {
		t.Fatal("short ref accepted")
	}
}

func TestRefEncodeIntoLargerMessage(t *testing.T) {
	e := rpc.NewEnc(64)
	e.U8(9)
	Ref{Server: 1, Key: 2, Size: 3}.Encode(e)
	e.Str("tail")
	d := rpc.NewDec(e.Bytes())
	if d.U8() != 9 {
		t.Fatal("prefix lost")
	}
	if got := DecodeRef(d); got != (Ref{Server: 1, Key: 2, Size: 3}) {
		t.Fatalf("ref %+v", got)
	}
	if d.Str() != "tail" {
		t.Fatal("suffix lost")
	}
}

func TestRefPropertyRoundTrip(t *testing.T) {
	prop := func(srv uint32, key uint64, size int64) bool {
		r := Ref{Server: srv, Key: key, Size: size}
		got, err := UnmarshalRef(r.Marshal())
		return err == nil && got == r
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPageCount(t *testing.T) {
	cases := []struct {
		size int64
		want int
	}{
		{0, 0}, {-1, 0}, {1, 1}, {4095, 1}, {4096, 1}, {4097, 2}, {8192, 2}, {12289, 4},
	}
	for _, c := range cases {
		if got := PageCount(c.size, 4096); got != c.want {
			t.Errorf("PageCount(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestRemoteAddrAdd(t *testing.T) {
	a := RemoteAddr(0x1000)
	if a.Add(16) != RemoteAddr(0x1010) {
		t.Fatal("Add failed")
	}
	if a.String() != "dm:0x1000" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestVAAllocBasic(t *testing.T) {
	va := NewVAAllocator(4096, 0x1000, 0x100000)
	a, err := va.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if a != 0x1000 {
		t.Fatalf("first alloc at %v", a)
	}
	b, err := va.Alloc(5000)
	if err != nil {
		t.Fatal(err)
	}
	if b != 0x2000 { // 100B rounds to one page
		t.Fatalf("second alloc at %v, want 0x2000", b)
	}
	c, _ := va.Alloc(1)
	if c != 0x4000 { // 5000B rounds to two pages
		t.Fatalf("third alloc at %v, want 0x4000", c)
	}
}

func TestVAAllocFreeReuse(t *testing.T) {
	va := NewVAAllocator(4096, 0, 1<<20)
	a, _ := va.Alloc(4096)
	b, _ := va.Alloc(4096)
	size, err := va.Free(a)
	if err != nil || size != 4096 {
		t.Fatalf("Free: %d, %v", size, err)
	}
	c, _ := va.Alloc(4096)
	if c != a {
		t.Fatalf("freed hole not reused: got %v want %v", c, a)
	}
	_ = b
}

func TestVAFreeUnknownAddr(t *testing.T) {
	va := NewVAAllocator(4096, 0, 1<<20)
	va.Alloc(4096)
	if _, err := va.Free(RemoteAddr(0x999)); err != ErrBadAddress {
		t.Fatalf("err = %v", err)
	}
}

func TestVALookup(t *testing.T) {
	va := NewVAAllocator(4096, 0x1000, 1<<20)
	a, _ := va.Alloc(6000) // two pages: [0x1000, 0x3000)
	base, size, err := va.Lookup(a.Add(4500))
	if err != nil || base != a || size != 6000 {
		t.Fatalf("Lookup = %v,%d,%v", base, size, err)
	}
	if _, _, err := va.Lookup(RemoteAddr(0x3000)); err != ErrBadAddress {
		t.Fatalf("lookup past end: %v", err)
	}
	if _, _, err := va.Lookup(RemoteAddr(0x0500)); err != ErrBadAddress {
		t.Fatalf("lookup before base: %v", err)
	}
}

func TestVAExhaustion(t *testing.T) {
	va := NewVAAllocator(4096, 0, 3*4096)
	for i := 0; i < 3; i++ {
		if _, err := va.Alloc(4096); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := va.Alloc(1); err != ErrOutOfMemory {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestVANegativeSizeRejected(t *testing.T) {
	va := NewVAAllocator(4096, 0, 1<<20)
	if _, err := va.Alloc(-1); err == nil {
		t.Fatal("negative alloc accepted")
	}
}

func TestVAZeroSizeTakesOnePage(t *testing.T) {
	va := NewVAAllocator(4096, 0, 1<<20)
	a, err := va.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := va.Alloc(1)
	if b != a.Add(4096) {
		t.Fatalf("zero-size region extent wrong: next alloc at %v", b)
	}
}

// Property: a random alloc/free workload never produces overlapping regions
// and Lookup agrees with the allocation that produced an address.
func TestVANoOverlapProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		va := NewVAAllocator(4096, 0, 1<<24)
		type reg struct {
			base RemoteAddr
			size int64
		}
		var live []reg
		for op := 0; op < 200; op++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(live))
				if _, err := va.Free(live[i].base); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
				continue
			}
			size := int64(rng.Intn(20000) + 1)
			a, err := va.Alloc(size)
			if err != nil {
				continue // pool exhausted is fine
			}
			// Overlap check against all live regions (page-rounded).
			ext := func(s int64) uint64 {
				p := (s + 4095) / 4096
				if p == 0 {
					p = 1
				}
				return uint64(p) * 4096
			}
			for _, r := range live {
				aLo, aHi := uint64(a), uint64(a)+ext(size)
				rLo, rHi := uint64(r.base), uint64(r.base)+ext(r.size)
				if aLo < rHi && rLo < aHi {
					return false
				}
			}
			live = append(live, reg{a, size})
		}
		for _, r := range live {
			base, size, err := va.Lookup(r.base.Add(r.size / 2))
			if err != nil || base != r.base || size != r.size {
				return false
			}
		}
		return va.NumRegions() == len(live)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
