// Command dmrpc-sim runs an ad-hoc microservice topology under a chosen
// transfer backend and reports throughput and latency. It is the
// kick-the-tires tool for exploring parameters outside the paper's fixed
// experiment grid.
//
// Usage:
//
//	dmrpc-sim -app chain -mode dmnet -hops 5 -size 16384 -clients 16
//	dmrpc-sim -app lb -mode erpc -size 32768
//	dmrpc-sim -app blockstore -mode dmnet -size 65536
//	dmrpc-sim -app imageproc -mode dmcxl -size 8192 -duration 50ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/msvc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	app := flag.String("app", "chain", "application: chain | lb | imageproc | blockstore")
	modeFlag := flag.String("mode", "dmnet", "backend: erpc | dmnet | dmcxl")
	hops := flag.Int("hops", 4, "chain length (chain app)")
	size := flag.Int("size", 4096, "payload size in bytes")
	clients := flag.Int("clients", 16, "closed-loop client count")
	duration := flag.Duration("duration", 20*time.Millisecond, "virtual measurement window")
	seed := flag.Int64("seed", 1, "simulation seed")
	doTrace := flag.Bool("trace", false, "print per-service RPC telemetry after the run")
	flag.Parse()

	var mode msvc.Mode
	switch *modeFlag {
	case "erpc":
		mode = msvc.ModeERPC
	case "dmnet":
		mode = msvc.ModeDmNet
	case "dmcxl":
		mode = msvc.ModeDmCXL
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *modeFlag)
		os.Exit(2)
	}

	cfg := msvc.DefaultConfig(mode)
	cfg.Seed = *seed
	pl := msvc.NewPlatform(cfg)
	defer pl.Shutdown()

	var op workload.Op
	payload := make([]byte, *size)
	switch *app {
	case "chain":
		ch := msvc.NewChain(pl, *hops)
		op = func(p *sim.Proc) error {
			_, err := ch.Do(p, payload)
			return err
		}
	case "lb":
		lb := msvc.NewLBApp(pl, 3, 3)
		i := 0
		op = func(p *sim.Proc) error {
			i++
			return lb.Do(p, i, payload)
		}
	case "imageproc":
		ia := msvc.NewImageApp(pl, 2)
		op = func(p *sim.Proc) error {
			_, err := ia.Do(p, payload)
			return err
		}
	case "blockstore":
		bs := msvc.NewBlockStore(pl, 3, 2)
		key := uint64(0)
		op = func(p *sim.Proc) error {
			key++
			if key%4 == 0 {
				_, err := bs.Read(p, key-1)
				return err
			}
			return bs.Write(p, key%256, payload)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *app)
		os.Exit(2)
	}
	var col *trace.Collector
	if *doTrace {
		col = trace.New(0)
		pl.AttachTracer(col)
	}
	pl.Start()

	window := sim.Time(duration.Nanoseconds())
	res := workload.RunClosed(pl.Eng, workload.ClosedConfig{
		Clients: *clients,
		Warmup:  window / 10,
		Measure: window,
	}, op)

	fmt.Printf("app=%s mode=%s size=%s clients=%d window=%v\n",
		*app, mode, stats.Bytes(int64(*size)), *clients, *duration)
	fmt.Printf("throughput: %s   errors: %d\n", stats.Rate(res.Throughput()), res.Errors)
	fmt.Printf("latency:    %s\n", res.Latency.Summarize())
	if col != nil {
		fmt.Println("\nper-service RPC telemetry (sorted by total time):")
		col.Report(os.Stdout)
	}
}
