// Package repro's root benchmarks regenerate every table and figure of
// the DmRPC paper's evaluation (§VI), one testing.B benchmark per
// artifact. Each runs the corresponding experiment at Quick scale and
// reports the headline quantity as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. cmd/dmrpc-bench prints the full tables
// (and supports -scale full for paper-scale windows).
package repro

import (
	"io"
	"testing"

	"repro/internal/bench"
	"repro/internal/msvc"
)

// run executes one registered experiment end to end (output discarded;
// the numbers are visible via cmd/dmrpc-bench).
func run(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.Find(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	for i := 0; i < b.N; i++ {
		e.Run(io.Discard, bench.Quick)
	}
}

func BenchmarkFig5aNestedChainThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig5(bench.Quick)
		if row, ok := r.Get(msvc.ModeDmNet, 7); ok {
			b.ReportMetric(row.Throughput, "dmnet-req/s")
		}
		if row, ok := r.Get(msvc.ModeERPC, 7); ok {
			b.ReportMetric(row.Throughput, "erpc-req/s")
		}
	}
}

func BenchmarkFig5bNestedChainLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig5(bench.Quick)
		if row, ok := r.Get(msvc.ModeDmNet, 7); ok {
			b.ReportMetric(float64(row.AvgLatency), "dmnet-ns")
		}
		if row, ok := r.Get(msvc.ModeERPC, 7); ok {
			b.ReportMetric(float64(row.AvgLatency), "erpc-ns")
		}
	}
}

func BenchmarkFig6LoadBalancer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig6(bench.Quick)
		if row, ok := r.Get(msvc.ModeDmNet, 32768); ok {
			b.ReportMetric(row.Throughput, "dmnet-req/s")
			b.ReportMetric(float64(row.LBMemBytesPerReq), "dmnet-LBmemB/req")
		}
		if row, ok := r.Get(msvc.ModeERPC, 32768); ok {
			b.ReportMetric(float64(row.LBMemBytesPerReq), "erpc-LBmemB/req")
		}
	}
}

func BenchmarkFig7aCreateRefRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig7(bench.Quick)
		if cow, ok := r.Get("DmRPC-CXL", 262144); ok {
			b.ReportMetric(cow.Rate, "cxl-cow-req/s")
		}
		if cp, ok := r.Get("DmRPC-CXL-copy", 262144); ok {
			b.ReportMetric(cp.Rate, "cxl-copy-req/s")
		}
	}
}

func BenchmarkFig7bCreateRefLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig7(bench.Quick)
		if cow, ok := r.Get("DmRPC-net", 262144); ok {
			b.ReportMetric(float64(cow.AvgLatency), "net-cow-ns")
		}
		if cp, ok := r.Get("DmRPC-net-copy", 262144); ok {
			b.ReportMetric(float64(cp.AvgLatency), "net-copy-ns")
		}
	}
}

func BenchmarkFig7cMemTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig7(bench.Quick)
		if cow, ok := r.Get("DmRPC-CXL", 262144); ok {
			b.ReportMetric(float64(cow.TrafficPerReq), "cxl-cow-B/req")
		}
		if cp, ok := r.Get("DmRPC-CXL-copy", 262144); ok {
			b.ReportMetric(float64(cp.TrafficPerReq), "cxl-copy-B/req")
		}
	}
}

func BenchmarkFig8aVsRaySparkThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig8(bench.Quick)
		if row, ok := r.Get("DmRPC-CXL", 0); ok {
			b.ReportMetric(row.Throughput, "cxl-req/s")
		}
		if row, ok := r.Get("Ray", 0); ok {
			b.ReportMetric(row.Throughput, "ray-req/s")
		}
	}
}

func BenchmarkFig8bVsRaySparkLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig8(bench.Quick)
		if row, ok := r.Get("DmRPC-net", 0); ok {
			b.ReportMetric(float64(row.AvgLatency), "net-ns")
		}
		if row, ok := r.Get("Ray", 0); ok {
			b.ReportMetric(float64(row.AvgLatency), "ray-ns")
		}
	}
}

func BenchmarkFig10aImageProcThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig10a(bench.Quick)
		if row, ok := r.Get(msvc.ModeDmCXL, 32768); ok {
			b.ReportMetric(row.Throughput, "cxl-req/s")
		}
		if row, ok := r.Get(msvc.ModeERPC, 32768); ok {
			b.ReportMetric(row.Throughput, "erpc-req/s")
		}
	}
}

func BenchmarkFig10bImageProcLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig10b(bench.Quick)
		if row, ok := r.Get(msvc.ModeDmNet); ok {
			b.ReportMetric(row.Latency.Mean, "dmnet-avg-ns")
		}
		if row, ok := r.Get(msvc.ModeERPC); ok {
			b.ReportMetric(row.Latency.Mean, "erpc-avg-ns")
		}
	}
}

func BenchmarkFig11DeathStarBench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig11(bench.Quick)
		b.ReportMetric(r.MaxUnsaturatedRate(msvc.ModeDmNet), "dmnet-maxrate")
		b.ReportMetric(r.MaxUnsaturatedRate(msvc.ModeERPC), "erpc-maxrate")
	}
}

func BenchmarkFig12aCXLLatencyMicro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig12a(bench.Quick)
		if n := len(r.Rows); n > 0 {
			b.ReportMetric(r.Rows[n-1].Normalized, "worst-normalized")
		}
	}
}

func BenchmarkFig12bCXLLatencyImageProc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig12b(bench.Quick)
		if n := len(r.Rows); n > 0 {
			b.ReportMetric(r.Rows[n-1].Normalized, "worst-normalized")
		}
	}
}

func BenchmarkAblationTranslationOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.AblationTranslation(bench.Quick)
		b.ReportMetric(r.SharePct, "translate-%")
	}
}

func BenchmarkAblationSizeAwareThreshold(b *testing.B) {
	run(b, "abl-sizeaware")
}

func BenchmarkAblationDMScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.AblationDMScale(bench.Quick)
		if n := len(r.Rows); n > 0 && r.Rows[0].Throughput > 0 {
			b.ReportMetric(r.Rows[n-1].Throughput/r.Rows[0].Throughput, "speedup-4srv")
		}
	}
}
