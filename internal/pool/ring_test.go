package pool

import "testing"

// TestRingDeterministic pins that ring layout and lookups are pure
// functions of membership — two independently built rings agree on every
// key, which is what lets separate processes resolve the same located
// refs.
func TestRingDeterministic(t *testing.T) {
	a, b := NewRing(64), NewRing(64)
	for id := uint32(0); id < 5; id++ {
		a.Add(id)
	}
	// Different insertion order must not matter.
	for id := int32(4); id >= 0; id-- {
		b.Add(uint32(id))
	}
	for key := uint64(0); key < 10_000; key++ {
		sa, oka := a.Lookup(key)
		sb, okb := b.Lookup(key)
		if !oka || !okb || sa != sb {
			t.Fatalf("key %d: ring A -> (%d,%v), ring B -> (%d,%v)", key, sa, oka, sb, okb)
		}
	}
}

// TestRingDistribution checks placement balance: N sequential keys over
// K shards, each shard within ±15% of the uniform share. Deterministic
// (fixed hash, no seed), so a pass here is a pass everywhere.
func TestRingDistribution(t *testing.T) {
	const keys, shards = 100_000, 4
	r := NewRing(0) // DefaultVnodes
	for id := uint32(0); id < shards; id++ {
		r.Add(id)
	}
	counts := make([]int, shards)
	for key := uint64(0); key < keys; key++ {
		id, ok := r.Lookup(key)
		if !ok {
			t.Fatal("lookup failed on a populated ring")
		}
		counts[id]++
	}
	want := float64(keys) / shards
	for id, n := range counts {
		if dev := (float64(n) - want) / want; dev < -0.15 || dev > 0.15 {
			t.Fatalf("shard %d holds %d of %d keys (%.1f%% off uniform; counts %v)",
				id, n, keys, dev*100, counts)
		}
	}
}

// remapFraction measures how many of n keys move when mutate changes the
// ring.
func remapFraction(r *Ring, n uint64, mutate func()) float64 {
	before := make([]uint32, n)
	for key := uint64(0); key < n; key++ {
		before[key], _ = r.Lookup(key)
	}
	mutate()
	moved := 0
	for key := uint64(0); key < n; key++ {
		if after, ok := r.Lookup(key); !ok || after != before[key] {
			moved++
		}
	}
	return float64(moved) / float64(n)
}

// TestRingRemapFraction pins consistent hashing's stability property:
// joining a (K+1)th shard remaps about 1/(K+1) of the keyspace, and
// removing one member of K remaps about 1/K — never the wholesale
// reshuffle modulo-hashing would cause. Bounds allow 1.5x the ideal
// fraction for vnode-sampling noise.
func TestRingRemapFraction(t *testing.T) {
	const keys = 50_000
	r := NewRing(0)
	for id := uint32(0); id < 3; id++ {
		r.Add(id)
	}
	if f := remapFraction(r, keys, func() { r.Add(3) }); f > 1.5/4 {
		t.Fatalf("join remapped %.1f%% of keys, want <= %.1f%%", f*100, 100*1.5/4)
	}
	// A join can only move keys ONTO the new shard; sanity-check it got a
	// meaningful share.
	if f := remapFraction(r, keys, func() { r.Remove(1) }); f > 1.5/4 {
		t.Fatalf("leave remapped %.1f%% of keys, want <= %.1f%%", f*100, 100*1.5/4)
	}
	if r.Contains(1) || r.Size() != 3 {
		t.Fatalf("membership after remove: %v", r.Members())
	}
	// Keys never resolve to an ejected member.
	for key := uint64(0); key < keys; key++ {
		if id, _ := r.Lookup(key); id == 1 {
			t.Fatalf("key %d resolved to removed shard", key)
		}
	}
}

// TestRingEmptyAndRejoin covers the edges: empty ring lookups fail,
// and remove-then-add restores the exact prior layout.
func TestRingEmptyAndRejoin(t *testing.T) {
	r := NewRing(32)
	if _, ok := r.Lookup(1); ok {
		t.Fatal("lookup on empty ring succeeded")
	}
	for id := uint32(0); id < 3; id++ {
		r.Add(id)
	}
	before := make([]uint32, 1000)
	for key := range before {
		before[key], _ = r.Lookup(uint64(key))
	}
	r.Remove(2)
	r.Add(2)
	for key := range before {
		if after, _ := r.Lookup(uint64(key)); after != before[key] {
			t.Fatalf("key %d moved from %d to %d across remove+rejoin", key, before[key], after)
		}
	}
}
