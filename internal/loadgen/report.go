package loadgen

import (
	"sort"

	"repro/internal/benchfmt"
)

// Append folds one run into a benchfmt report: a headline result per
// scenario ("dmload/<scenario>") plus one per request class
// ("dmload/<scenario>/<class>"), so the records diff across PRs next to
// the micro-benchmark BENCH_*.json files.
func Append(rep *benchfmt.Report, res RunResult) {
	head := benchfmt.Result{
		Name:       "dmload/" + res.Scenario,
		Iterations: res.Ops,
		NsPerOp:    res.Latency.Mean,
		Extra: map[string]float64{
			"workers":       float64(res.Workers),
			"thr-ops-s":     res.Achieved,
			"offered-ops-s": res.Offered,
			"p50-ns":        float64(res.Latency.P50),
			"p99-ns":        float64(res.Latency.P99),
			"p999-ns":       float64(res.Latency.P999),
			"errors":        float64(res.Errors),
			"drops":         float64(res.Drops),
			"bytes-s":       float64(res.Bytes) / res.Measure.Seconds(),
		},
	}
	if res.Offered > 0 {
		head.Extra["achieved-frac"] = res.Achieved / res.Offered
	}
	for k, v := range res.Counters {
		head.Extra[k] = v
	}
	rep.Results = append(rep.Results, head)
	classes := make([]string, 0, len(res.Classes))
	for class := range res.Classes {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		c := res.Classes[class]
		rep.Results = append(rep.Results, benchfmt.Result{
			Name:       "dmload/" + res.Scenario + "/" + class,
			Iterations: c.Ops,
			NsPerOp:    c.Latency.Mean,
			Extra: map[string]float64{
				"thr-ops-s": float64(c.Ops) / res.Measure.Seconds(),
				"p50-ns":    float64(c.Latency.P50),
				"p99-ns":    float64(c.Latency.P99),
				"p999-ns":   float64(c.Latency.P999),
				"errors":    float64(c.Errors),
				"bytes-s":   float64(c.Bytes) / res.Measure.Seconds(),
			},
		})
	}
}
