package rpc

import (
	"encoding/binary"
	"errors"
)

// ErrShortMessage indicates a decode ran past the end of the buffer.
var ErrShortMessage = errors.New("rpc: short message")

// Enc builds a wire message by appending big-endian fields. The zero value
// is ready to use.
type Enc struct {
	b []byte
}

// NewEnc returns an encoder with capacity preallocated for n bytes.
func NewEnc(n int) *Enc { return &Enc{b: make([]byte, 0, n)} }

// Bytes returns the encoded message.
func (e *Enc) Bytes() []byte { return e.b }

// U8 appends one byte.
func (e *Enc) U8(v uint8) *Enc { e.b = append(e.b, v); return e }

// U16 appends a big-endian uint16.
func (e *Enc) U16(v uint16) *Enc { e.b = binary.BigEndian.AppendUint16(e.b, v); return e }

// U32 appends a big-endian uint32.
func (e *Enc) U32(v uint32) *Enc { e.b = binary.BigEndian.AppendUint32(e.b, v); return e }

// U64 appends a big-endian uint64.
func (e *Enc) U64(v uint64) *Enc { e.b = binary.BigEndian.AppendUint64(e.b, v); return e }

// I64 appends a big-endian int64.
func (e *Enc) I64(v int64) *Enc { return e.U64(uint64(v)) }

// Blob appends a uint32 length prefix followed by v.
func (e *Enc) Blob(v []byte) *Enc {
	e.U32(uint32(len(v)))
	e.b = append(e.b, v...)
	return e
}

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) *Enc { return e.Blob([]byte(s)) }

// Raw appends v with no length prefix (trailing payloads).
func (e *Enc) Raw(v []byte) *Enc { e.b = append(e.b, v...); return e }

// Dec consumes a wire message field by field. Decoding past the end sets a
// sticky error and returns zero values, so call sites can decode a full
// struct and check Err once.
type Dec struct {
	b   []byte
	err error
}

// NewDec returns a decoder over b (not copied).
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the sticky decode error, if any.
func (d *Dec) Err() error { return d.err }

// Remaining returns the undecoded tail.
func (d *Dec) Remaining() []byte { return d.b }

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b) < n {
		d.err = ErrShortMessage
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

// U8 decodes one byte.
func (d *Dec) U8() uint8 {
	v := d.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

// U16 decodes a big-endian uint16.
func (d *Dec) U16() uint16 {
	v := d.take(2)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint16(v)
}

// U32 decodes a big-endian uint32.
func (d *Dec) U32() uint32 {
	v := d.take(4)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint32(v)
}

// U64 decodes a big-endian uint64.
func (d *Dec) U64() uint64 {
	v := d.take(8)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint64(v)
}

// I64 decodes a big-endian int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Blob decodes a uint32-length-prefixed byte field. The returned slice
// aliases the input buffer.
func (d *Dec) Blob() []byte {
	n := d.U32()
	return d.take(int(n))
}

// Str decodes a length-prefixed string.
func (d *Dec) Str() string { return string(d.Blob()) }
