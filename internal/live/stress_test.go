package live

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestStripedServerStress hammers one striped server from many clients at
// once — alloc/write/read/create_ref/map_ref/stage/read_ref/free cycles —
// and then asserts the D6 conservation invariants quiescently: refcount
// of every frame equals its mappings plus ref holds, no frame is both
// free and held, and free + held == total (no leak). Run under -race by
// `make check`, this is the correctness net under the striped locking.
func TestStripedServerStress(t *testing.T) {
	const (
		numPages = 1 << 12
		pageSize = 1024
		workers  = 8
		rounds   = 60
	)
	srv, addr := startServer(t, ServerConfig{NumPages: numPages, PageSize: pageSize})

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			if err := cl.Register(); err != nil {
				errs <- err
				return
			}
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < rounds; i++ {
				if err := stressRound(cl, rng); err != nil {
					errs <- fmt.Errorf("worker %d round %d: %w", seed, i, err)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if err := srv.CheckInvariants(); err != nil {
		t.Fatalf("D6 invariants violated after stress: %v", err)
	}
	// Conservation: every page freed by the workers is back on the FIFO.
	if got := srv.FreePages(); got != numPages {
		t.Fatalf("free + mapped != total: %d free of %d after full teardown", got, numPages)
	}
	if got := srv.LiveRefs(); got != 0 {
		t.Fatalf("%d refs leaked", got)
	}
}

// stressRound runs one full lifecycle mixing every hot-path operation.
func stressRound(cl *Client, rng *rand.Rand) error {
	size := int64(rng.Intn(5*1024) + 1)
	buf := make([]byte, size)
	rng.Read(buf)

	// Explicit path: alloc, write, read back, share, CoW-map, free all.
	a, err := cl.Alloc(size)
	if err != nil {
		return err
	}
	if err := cl.Write(a, buf); err != nil {
		return err
	}
	got := make([]byte, size)
	if err := cl.Read(a, got); err != nil {
		return err
	}
	if !bytes.Equal(got, buf) {
		return errors.New("read/write mismatch")
	}
	ref, err := cl.CreateRef(a, size)
	if err != nil {
		return err
	}
	mapped, err := cl.MapRef(ref)
	if err != nil {
		return err
	}
	// CoW write through the mapping must not disturb the snapshot.
	if err := cl.Write(mapped, []byte{^buf[0]}); err != nil {
		return err
	}
	if err := cl.ReadRef(ref, 0, got[:1]); err != nil {
		return err
	}
	if got[0] != buf[0] {
		return errors.New("CoW isolation broken: snapshot observed a sharer's write")
	}
	if err := cl.Free(mapped); err != nil {
		return err
	}
	if err := cl.Free(a); err != nil {
		return err
	}
	if err := cl.FreeRef(ref); err != nil {
		return err
	}

	// Fused path: stage, read through the ref, release.
	ref2, err := cl.StageRef(buf)
	if err != nil {
		return err
	}
	off := int64(0)
	if size > 1 {
		off = int64(rng.Intn(int(size - 1)))
	}
	window := make([]byte, size-off)
	if err := cl.ReadRef(ref2, off, window); err != nil {
		return err
	}
	if !bytes.Equal(window, buf[off:]) {
		return errors.New("staged readref mismatch")
	}
	return cl.FreeRef(ref2)
}

// TestBatchedWriterStress hammers ONE shared client — so every worker's
// frames funnel through the same connection's coalescing writer — with a
// mix of synchronous small ops, pipelined async bursts, and payloads
// above the coalesce cutoff (direct zero-copy path), interleaving the
// queued and direct paths under -race. Afterwards the D6/D7 conservation
// invariants must hold exactly: every page free, every ref released, and
// the write counters consistent (no frame both flushed and dropped).
func TestBatchedWriterStress(t *testing.T) {
	const (
		numPages = 1 << 12
		pageSize = 1024
		workers  = 8
		rounds   = 25
	)
	srv, addr := startServer(t, ServerConfig{NumPages: numPages, PageSize: pageSize})
	cl := dialClient(t, addr) // one client: one conn, one batch writer

	big := bytes.Repeat([]byte{0x5A}, DefaultCoalesceLimit+4096) // forces the direct path

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < rounds; i++ {
				// Pipelined burst of small stages (coalesced frames).
				const burst = 4
				stages := make([]*AsyncRef, burst)
				small := make([][]byte, burst)
				for j := range stages {
					small[j] = make([]byte, rng.Intn(2048)+1)
					rng.Read(small[j])
					stages[j] = cl.StageRefAsync(small[j])
				}
				for j, ar := range stages {
					ref, err := ar.Wait()
					if err != nil {
						errs <- fmt.Errorf("worker %d round %d stage %d: %w", w, i, j, err)
						return
					}
					got := make([]byte, len(small[j]))
					if err := cl.ReadRef(ref, 0, got); err != nil {
						errs <- err
						return
					}
					if !bytes.Equal(got, small[j]) {
						errs <- errors.New("coalesced stage corrupted")
						return
					}
					if err := cl.FreeRef(ref); err != nil {
						errs <- err
						return
					}
				}
				// Large op riding the direct path between the bursts.
				ref, err := cl.StageRef(big)
				if err != nil {
					errs <- err
					return
				}
				window := make([]byte, 512)
				if err := cl.ReadRef(ref, int64(rng.Intn(len(big)-512)), window); err != nil {
					errs <- err
					return
				}
				if err := cl.FreeRef(ref); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if err := srv.CheckInvariants(); err != nil {
		t.Fatalf("D6 invariants violated under batched writers: %v", err)
	}
	if got := srv.FreePages(); got != numPages {
		t.Fatalf("pages leaked: %d free of %d", got, numPages)
	}
	if got := srv.LiveRefs(); got != 0 {
		t.Fatalf("%d refs leaked", got)
	}
	ws := cl.node.WriteStats()
	if ws.Frames == 0 || ws.Batches == 0 {
		t.Fatalf("client writer never batched: %+v", ws)
	}
	if ws.DroppedFrames != 0 {
		t.Fatalf("%d frames dropped on a healthy connection", ws.DroppedFrames)
	}
	if ws.DirectFrames == 0 {
		t.Fatalf("large payloads never took the direct path: %+v", ws)
	}
}

// TestStressSharedRefsAcrossClients shares one staged ref across many
// readers and CoW writers concurrently, then verifies the invariants and
// that teardown returns every page.
func TestStressSharedRefsAcrossClients(t *testing.T) {
	const numPages = 1 << 12
	srv, addr := startServer(t, ServerConfig{NumPages: numPages, PageSize: 1024})
	producer := dialClient(t, addr)

	payload := bytes.Repeat([]byte{0xAB}, 10*1024)
	ref, err := producer.StageRef(payload)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			if err := cl.Register(); err != nil {
				errs <- err
				return
			}
			for i := 0; i < 30; i++ {
				got := make([]byte, len(payload))
				if err := cl.ReadRef(ref, 0, got); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, payload) {
					errs <- errors.New("shared snapshot corrupted")
					return
				}
				// Map privately and dirty one page: triggers CoW against
				// the frames every other worker is reading.
				mapped, err := cl.MapRef(ref)
				if err != nil {
					errs <- err
					return
				}
				if err := cl.Write(mapped.Add(int64(i%10)*1024), []byte{byte(w)}); err != nil {
					errs <- err
					return
				}
				if err := cl.Free(mapped); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := producer.FreeRef(ref); err != nil {
		t.Fatal(err)
	}
	if err := srv.CheckInvariants(); err != nil {
		t.Fatalf("D6 invariants violated: %v", err)
	}
	if got := srv.FreePages(); got != numPages {
		t.Fatalf("pages leaked: %d free of %d", got, numPages)
	}
}
