// Package loadgen is the cluster load harness (ROADMAP: macro runs on
// the sharded pool): it drives a K-shard dmserverd cluster — launched
// in-process (Cluster) or attached over the network — with open-loop
// (Poisson) or closed-loop load from simulated users whose keys follow
// a Zipfian popularity skew, through pluggable application scenarios
// (socialnet, kv, blob) built on the same internal/liverpc services the
// micro-benchmarks use. Results aggregate per-worker AtomicHistograms
// and the transport/pool failure counters into a benchfmt JSON report
// that diffs across PRs next to the BENCH_*.json records.
//
// The open-loop machinery generalizes internal/workload's sim-only
// RunOpen (warmup, offered rate, drop accounting) to real sockets and
// wall-clock time; the key generators are shared with the simulator
// (workload.Zipf / workload.Uniform).
package loadgen

import (
	"fmt"
	"sync"

	"repro/internal/live"
	"repro/internal/liverpc"
	"repro/internal/pool"
)

// EndpointMode selects how workers map onto client-facing endpoints
// (socialnet frontends, kv pool sessions).
type EndpointMode int

const (
	// RoundRobin spreads workers evenly: worker i uses endpoint i mod E.
	RoundRobin EndpointMode = iota
	// Pinned assigns each worker a seeded-random endpoint and keeps it
	// for the whole run — the sticky-session shape, which can load
	// endpoints unevenly just like real affinity does.
	Pinned
)

// pick resolves worker w's endpoint among e choices.
func (m EndpointMode) pick(w, e int, seed uint64) int {
	if e <= 1 {
		return 0
	}
	if m == Pinned {
		return int(seed % uint64(e))
	}
	return w % e
}

// Env is the shared harness environment: the cluster under test plus
// every knob the scenarios read. Zero values mean defaults (see
// Defaults).
type Env struct {
	// Shards lists the cluster's server addresses, shard ID = index.
	Shards []string
	// Replicas is the pool replica factor R for harness sessions.
	Replicas int
	// Pool overrides session tuning (heartbeats, timeouts, repair
	// pacing); Shards and ReplicaFactor are filled from the fields
	// above at session-mint time.
	Pool pool.Config
	// RPC configures the liverpc endpoints the scenarios deploy.
	RPC liverpc.Config

	// Seed is the run's master seed; workers derive independent streams
	// from it (workload.DeriveSeed).
	Seed uint64
	// Users is the simulated-user population (socialnet authors).
	Users int
	// Keys is the kv scenario's key-space size.
	Keys int
	// ZipfS is the key/user popularity skew (0 = uniform, 0.99 = YCSB).
	ZipfS float64
	// Endpoint selects worker→endpoint mapping.
	Endpoint EndpointMode

	// Mix is the socialnet request mix in percent.
	Mix SocialMix
	// MediaSize is the socialnet post-media payload size in bytes.
	MediaSize int
	// Frontends is how many socialnet frontend movers to deploy.
	Frontends int
	// ValueSize is the kv scenario's value size in bytes.
	ValueSize int
	// ReadFrac is the kv scenario's read fraction in [0, 1].
	ReadFrac float64
	// BlobSizes is the blob scenario's payload sweep in bytes.
	BlobSizes []int
	// Hops is the blob scenario's chain length.
	Hops int

	mu       sync.Mutex
	sessions []*pool.Client
}

// SocialMix weights the socialnet request classes, in percent.
type SocialMix struct {
	Compose  int
	ReadHome int
	ReadUser int
}

// Defaults fills every zero knob with the harness default, returning e
// for chaining.
func (e *Env) Defaults() *Env {
	if e.Replicas < 1 {
		e.Replicas = 1
	}
	if e.Seed == 0 {
		e.Seed = 1
	}
	if e.Users == 0 {
		e.Users = 64
	}
	if e.Keys == 0 {
		e.Keys = 1024
	}
	if e.ZipfS == 0 {
		e.ZipfS = 0.99
	}
	if e.Mix == (SocialMix{}) {
		e.Mix = SocialMix{Compose: 60, ReadHome: 30, ReadUser: 10}
	}
	if e.MediaSize == 0 {
		e.MediaSize = 8 << 10
	}
	if e.Frontends == 0 {
		e.Frontends = 2
	}
	if e.ValueSize == 0 {
		e.ValueSize = 4 << 10
	}
	if e.ReadFrac == 0 {
		e.ReadFrac = 0.9
	}
	if len(e.BlobSizes) == 0 {
		// Crosses the 256 KiB stage-by-ref threshold from both sides.
		e.BlobSizes = []int{64 << 10, 256 << 10, 1 << 20}
	}
	if e.Hops == 0 {
		e.Hops = 3
	}
	return e
}

// NewSession mints one registered DM session over the cluster — always
// a pool.Client (located refs, failover reads, replica placement), even
// at K=1 — and tracks it so SessionTotals can aggregate its counters.
// The session is closed by CloseSessions, not by its scenario.
func (e *Env) NewSession() (liverpc.DM, error) {
	p, err := e.newPool()
	if err != nil {
		return nil, err
	}
	return p, nil
}

func (e *Env) newPool() (*pool.Client, error) {
	if len(e.Shards) == 0 {
		return nil, fmt.Errorf("loadgen: no shards configured")
	}
	cfg := e.Pool
	cfg.Shards = e.Shards
	cfg.ReplicaFactor = e.Replicas
	p, err := pool.Dial(cfg)
	if err != nil {
		return nil, err
	}
	if err := p.Register(); err != nil {
		p.Close()
		return nil, err
	}
	e.mu.Lock()
	e.sessions = append(e.sessions, p)
	e.mu.Unlock()
	return p, nil
}

// JoinShard admits a freshly launched shard (Cluster.Join) to every
// session's pool — the join-a-shard fault schedule's client half. Each
// pool assigns the same positional shard ID and kicks its rebalancer,
// which migrates remapped refs onto the newcomer (DESIGN.md §D16).
func (e *Env) JoinShard(addr string) error {
	e.mu.Lock()
	sessions := append([]*pool.Client(nil), e.sessions...)
	e.mu.Unlock()
	for _, p := range sessions {
		if _, err := p.AddShard(addr); err != nil {
			return err
		}
	}
	return nil
}

// SessionTotals sums the transport counters across every session the
// harness minted, plus the pool-level replication and migration
// counters. Gauges (UnderReplicated) take the max across sessions;
// monotonic counters sum.
type SessionTotals struct {
	live.Stats
	FailoverReads     int64
	RepairsDone       int64
	RepairErrors      int64
	UnderReplicated   int64
	MigratedRefs      int64
	MigratedBytes     int64
	ReclaimedReplicas int64
}

// SessionTotals snapshots the aggregate counters at this instant.
func (e *Env) SessionTotals() SessionTotals {
	e.mu.Lock()
	defer e.mu.Unlock()
	var t SessionTotals
	for _, p := range e.sessions {
		st := p.Stats()
		t.Calls += st.Calls
		t.Retries += st.Retries
		t.DedupReplays += st.DedupReplays
		t.Failures += st.Failures
		t.Timeouts += st.Timeouts
		t.TransportErrors += st.TransportErrors
		t.HeartbeatFailures += st.HeartbeatFailures
		t.CreditWaits += st.CreditWaits
		t.CreditSheds += st.CreditSheds
		t.CacheHits += st.CacheHits
		t.CacheMisses += st.CacheMisses
		t.CacheAdmits += st.CacheAdmits
		t.CacheEvictions += st.CacheEvictions
		t.CacheInvalidations += st.CacheInvalidations
		t.CacheCoalesced += st.CacheCoalesced
		t.FailoverReads += p.FailoverReads()
		t.RepairsDone += p.RepairsDone()
		t.RepairErrors += p.RepairErrors()
		t.MigratedRefs += p.MigratedRefs()
		t.MigratedBytes += p.MigratedBytes()
		t.ReclaimedReplicas += p.ReclaimedReplicas()
		if ur := int64(p.UnderReplicated()); ur > t.UnderReplicated {
			t.UnderReplicated = ur
		}
	}
	return t
}

// CloseSessions tears down every session the harness minted. Call once,
// after the scenarios are closed.
func (e *Env) CloseSessions() {
	e.mu.Lock()
	sessions := e.sessions
	e.sessions = nil
	e.mu.Unlock()
	for _, p := range sessions {
		p.Close()
	}
}

// Worker is one simulated user: Do issues one operation and reports the
// request class it chose (per-class latency histograms key on it), the
// payload bytes it moved, and the outcome. Workers are driven from a
// single goroutine each; Do need not be safe for concurrent use.
type Worker interface {
	Do() (class string, bytes int64, err error)
	Close() error
}

// Scenario is one pluggable request mix. Lifecycle: Setup once, then
// NewWorker per configured worker, Run drives them, Counters after the
// run, Close last.
type Scenario interface {
	Name() string
	// Setup deploys services and preloads state.
	Setup(env *Env) error
	// NewWorker builds worker w's private state (sessions, key
	// generators). Called after Setup.
	NewWorker(env *Env, w int) (Worker, error)
	// Counters reports scenario-level counters (e.g. payload-loss) for
	// the report's Extra block.
	Counters() map[string]float64
	Close() error
}
