package dmwire

import (
	"errors"

	"repro/internal/dm"
	"repro/internal/rpc"
)

// Versioned location-aware ref codec for the sharded DM cluster layer
// (internal/pool). A v0 ref is the original dm.Ref wire form, whose
// Server field is a connection-local pool index — meaningful only to the
// client that dialed the servers in that order. A v1 (located) ref marks
// the same 20 bytes as cluster-addressed: Server carries a cluster-wide
// shard ID from the pool's consistent-hash ring, so any process holding
// the shard map can resolve the ref to the server that stores its pages
// with no extra hop. The two forms are distinguished by an explicit
// version byte prefix on v1+, and — for raw buffers — by length (a bare
// v0 ref is exactly dm.EncodedRefSize bytes and carries no version byte),
// so old single-server refs still parse.

// Ref codec versions.
const (
	// RefV0 marks the legacy unversioned form: dm.Ref with a
	// connection-local Server index and no version byte.
	RefV0 = 0
	// RefV1 marks the located form: a version byte followed by dm.Ref
	// whose Server field is a cluster-wide shard ID.
	RefV1 = 1
	// RefV2 marks the replicated form: the v1 encoding followed by a
	// u8-counted list of u32 shard IDs naming every shard believed to hold
	// a copy of the payload (DESIGN.md §D13). Ref.Server remains the
	// primary (first-choice) shard; the list is a read-failover hint and
	// may be stale — readers fall back to the ring successors of Ref.Key.
	RefV2 = 2
)

// LocatedRefSize is the wire size of a v1 located ref. A v2 ref is
// LocatedRefSize + 1 + 4*len(Replicas) bytes; every form remains
// length/version-disambiguated (v0 = 20 bytes exactly, v1 = 21, v2 >= 22).
const LocatedRefSize = 1 + dm.EncodedRefSize

// MaxRefReplicas caps the replica-hint list carried by a v2 ref: a
// defensive decode limit (no hostile count may balloon memory) and far
// above any sane replication factor.
const MaxRefReplicas = 16

// ErrBadRefVersion reports an unknown located-ref version byte.
var ErrBadRefVersion = errors.New("dmwire: unknown located-ref version")

// ErrTooManyReplicas reports a v2 ref whose replica list exceeds
// MaxRefReplicas.
var ErrTooManyReplicas = errors.New("dmwire: replica list exceeds MaxRefReplicas")

// LocatedRef pairs a ref with its codec version. Located reports whether
// Ref.Server is a cluster-wide shard ID (v1) rather than a
// connection-local index (v0).
type LocatedRef struct {
	Version uint8
	Ref     dm.Ref
	// Replicas is the v2 replica-hint list: shard IDs believed to hold a
	// copy at encode time, primary included. Nil for v0/v1.
	Replicas []uint32
}

// Located reports whether the ref is cluster-addressed.
func (r LocatedRef) Located() bool { return r.Version >= RefV1 }

// Shard returns the shard ID of a located ref (Ref.Server).
func (r LocatedRef) Shard() uint32 { return r.Ref.Server }

// Locate wraps a ref whose Server field is a cluster-wide shard ID.
func Locate(ref dm.Ref) LocatedRef { return LocatedRef{Version: RefV1, Ref: ref} }

// LocateReplicated wraps a cluster-addressed ref together with its
// replica shard set. With fewer than two distinct shards the v1 form is
// returned (a single-copy ref needs no hint list); over-long lists are
// truncated to MaxRefReplicas.
func LocateReplicated(ref dm.Ref, shards []uint32) LocatedRef {
	if len(shards) < 2 {
		return Locate(ref)
	}
	if len(shards) > MaxRefReplicas {
		shards = shards[:MaxRefReplicas]
	}
	cp := make([]uint32, len(shards))
	copy(cp, shards)
	return LocatedRef{Version: RefV2, Ref: ref, Replicas: cp}
}

// Marshal encodes the ref in its version's wire form: v0 is the bare
// dm.Ref encoding (no version byte, for byte-compatibility with every
// pre-pool ref ever written); v1 prefixes the version byte.
func (r LocatedRef) Marshal() []byte {
	if r.Version == RefV0 {
		return r.Ref.Marshal()
	}
	if r.Version >= RefV2 {
		e := rpc.NewEnc(LocatedRefSize + 1 + 4*len(r.Replicas))
		e.U8(r.Version)
		r.Ref.Encode(e)
		e.U8(uint8(len(r.Replicas)))
		for _, id := range r.Replicas {
			e.U32(id)
		}
		return e.Bytes()
	}
	e := rpc.NewEnc(LocatedRefSize)
	e.U8(r.Version)
	r.Ref.Encode(e)
	return e.Bytes()
}

// UnmarshalLocatedRef decodes either form: a buffer of exactly
// dm.EncodedRefSize bytes is the legacy v0 encoding; anything longer must
// lead with a known version byte. (A v1 ref is one byte longer than a v0
// ref, so length disambiguates without reserving a Server bit.)
func UnmarshalLocatedRef(b []byte) (LocatedRef, error) {
	if len(b) == dm.EncodedRefSize {
		ref, err := dm.UnmarshalRef(b)
		if err != nil {
			return LocatedRef{}, err
		}
		return LocatedRef{Version: RefV0, Ref: ref}, nil
	}
	d := rpc.NewDec(b)
	v := d.U8()
	if v != RefV1 && v != RefV2 {
		return LocatedRef{}, ErrBadRefVersion
	}
	ref := dm.DecodeRef(d)
	if err := d.Err(); err != nil {
		return LocatedRef{}, err
	}
	r := LocatedRef{Version: v, Ref: ref}
	if v == RefV2 {
		n := int(d.U8())
		if n > MaxRefReplicas {
			return LocatedRef{}, ErrTooManyReplicas
		}
		if n > 0 {
			r.Replicas = make([]uint32, n)
			for i := range r.Replicas {
				r.Replicas[i] = d.U32()
			}
		}
		if err := d.Err(); err != nil {
			return LocatedRef{}, err
		}
	}
	return r, nil
}
