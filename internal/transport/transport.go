// Package transport implements an eRPC-style reliable request/response
// transport over simnet's unreliable datagrams (paper §II-A, §V-A: "Our
// networking protocol is founded upon the UDP and the network reliability
// is handled in the RPC layer just like eRPC").
//
// Faithful to eRPC's design points:
//
//   - Client-driven reliability: only the client keeps retransmission
//     timers; servers are stateless apart from a bounded response cache.
//   - Implicit ACK: the response acknowledges the request; no ACK packets
//     flow in the common case.
//   - Packetization at the MTU with per-message reassembly.
//   - Duplicate suppression: servers dedupe request IDs and replay the
//     cached response for already-answered requests, so handlers execute
//     exactly once per request even under loss and retransmission.
//   - Bounded in-flight requests per session (window), with cache pruning
//     driven by the client's highest-completed watermark piggybacked on
//     request headers.
//
// Cost model: every packet charges per-packet CPU on the sending and
// receiving host, NIC serialization via simnet, and one pass of local
// memory bandwidth on each side (NIC DMA), which is what makes
// pass-by-value data movement expensive in the way the paper measures.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// Errors returned by Call.
var (
	// ErrTimeout means the request exhausted its retransmission budget.
	ErrTimeout = errors.New("transport: request timed out")
	// ErrTooLarge means the message exceeds MaxMessageSize.
	ErrTooLarge = errors.New("transport: message exceeds maximum size")
)

// Config tunes the transport.
type Config struct {
	// Window is the maximum number of in-flight requests per session.
	Window int
	// RTO is the retransmission timeout.
	RTO sim.Time
	// MaxRetries is how many times a request is retransmitted before Call
	// fails with ErrTimeout.
	MaxRetries int
	// PerPacketCPU is CPU time charged per packet on each host (eRPC-scale
	// per-packet processing).
	PerPacketCPU sim.Time
	// MaxMessageSize bounds a single request or response.
	MaxMessageSize int
}

// DefaultConfig mirrors eRPC-scale constants. The RTO matches eRPC's
// documented 5 ms retransmission timeout for lossy Ethernet — far above
// any legitimate queueing delay, so congestion does not trigger spurious
// retransmission storms.
func DefaultConfig() Config {
	return Config{
		Window:         8,
		RTO:            5 * sim.Millisecond,
		MaxRetries:     7,
		PerPacketCPU:   100, // ns
		MaxMessageSize: 8 << 20,
	}
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.Window <= 0:
		return fmt.Errorf("transport: Window must be positive, got %d", c.Window)
	case c.RTO <= 0:
		return fmt.Errorf("transport: RTO must be positive, got %d", c.RTO)
	case c.MaxRetries < 0:
		return fmt.Errorf("transport: MaxRetries must be non-negative, got %d", c.MaxRetries)
	case c.PerPacketCPU < 0:
		return fmt.Errorf("transport: PerPacketCPU must be non-negative, got %d", c.PerPacketCPU)
	case c.MaxMessageSize <= 0:
		return fmt.Errorf("transport: MaxMessageSize must be positive, got %d", c.MaxMessageSize)
	}
	return nil
}

// Packet kinds.
const (
	kindRequest  = 1
	kindResponse = 2
)

// header is the on-wire packet header.
//
//	kind(1) | sessionID(4) | reqID(8) | ackedUpTo(8) | pktIdx(2) | numPkts(2) | msgSize(4)
const headerSize = 1 + 4 + 8 + 8 + 2 + 2 + 4

type header struct {
	kind      byte
	sessionID uint32
	reqID     uint64
	ackedUpTo uint64 // client's highest contiguously completed reqID
	pktIdx    uint16
	numPkts   uint16
	msgSize   uint32
}

func (h header) encode(dst []byte) {
	dst[0] = h.kind
	binary.BigEndian.PutUint32(dst[1:], h.sessionID)
	binary.BigEndian.PutUint64(dst[5:], h.reqID)
	binary.BigEndian.PutUint64(dst[13:], h.ackedUpTo)
	binary.BigEndian.PutUint16(dst[21:], h.pktIdx)
	binary.BigEndian.PutUint16(dst[23:], h.numPkts)
	binary.BigEndian.PutUint32(dst[25:], h.msgSize)
}

func decodeHeader(src []byte) (header, error) {
	if len(src) < headerSize {
		return header{}, fmt.Errorf("transport: short packet (%d bytes)", len(src))
	}
	return header{
		kind:      src[0],
		sessionID: binary.BigEndian.Uint32(src[1:]),
		reqID:     binary.BigEndian.Uint64(src[5:]),
		ackedUpTo: binary.BigEndian.Uint64(src[13:]),
		pktIdx:    binary.BigEndian.Uint16(src[21:]),
		numPkts:   binary.BigEndian.Uint16(src[23:]),
		msgSize:   binary.BigEndian.Uint32(src[25:]),
	}, nil
}

// Endpoint is a transport endpoint bound to one (host, port). It can act as
// a client (Connect), a server (Requests), or both.
type Endpoint struct {
	host  *simnet.Host
	port  int
	cfg   Config
	inbox *sim.Chan[simnet.Datagram]

	nextSessionID uint32
	// client-side sessions by our session id
	clients map[uint32]*Session
	// server-side per-peer-session state, keyed by (peer addr, session id)
	serves map[serveKey]*serveState

	reqQueue *sim.Chan[*IncomingRequest]

	// stats
	retransmits int64
	rxPackets   int64
	txPackets   int64
}

type serveKey struct {
	peer      simnet.Addr
	sessionID uint32
}

// NewEndpoint binds port on h. Call Start before use.
func NewEndpoint(h *simnet.Host, port int, cfg Config) *Endpoint {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Endpoint{
		host:     h,
		port:     port,
		cfg:      cfg,
		inbox:    h.Listen(port),
		clients:  make(map[uint32]*Session),
		serves:   make(map[serveKey]*serveState),
		reqQueue: sim.NewChan[*IncomingRequest](h.Network().Engine()),
	}
}

// Addr returns the endpoint's network address.
func (e *Endpoint) Addr() simnet.Addr { return e.host.Addr(e.port) }

// Host returns the host the endpoint runs on.
func (e *Endpoint) Host() *simnet.Host { return e.host }

// Config returns the endpoint's transport configuration.
func (e *Endpoint) Config() Config { return e.cfg }

// Retransmits returns how many packets this endpoint retransmitted.
func (e *Endpoint) Retransmits() int64 { return e.retransmits }

// Start spawns the endpoint's dispatcher process, which demultiplexes
// arriving packets to sessions and assembles requests.
func (e *Endpoint) Start() {
	eng := e.host.Network().Engine()
	eng.Spawn(fmt.Sprintf("xport@%v", e.Addr()), func(p *sim.Proc) {
		for {
			d := e.inbox.Recv(p)
			e.rxPackets++
			// Per-packet processing cost on the receiving CPU and one DMA
			// pass over local memory.
			if e.cfg.PerPacketCPU > 0 {
				e.host.CPU.Use(p, e.cfg.PerPacketCPU)
			}
			e.host.MemTouch(p, len(d.Payload))
			h, err := decodeHeader(d.Payload)
			if err != nil {
				continue // malformed; drop like a NIC would
			}
			body := d.Payload[headerSize:]
			switch h.kind {
			case kindRequest:
				e.handleRequestPacket(p, d.From, h, body)
			case kindResponse:
				e.handleResponsePacket(h, body)
			}
		}
	})
}

// Session is the client half of a connection to a remote endpoint.
type Session struct {
	ep     *Endpoint
	id     uint32
	remote simnet.Addr

	nextReqID uint64
	completed uint64 // highest contiguously completed reqID
	pending   map[uint64]*call
	window    *sim.Resource
}

type call struct {
	reqID    uint64
	reqPkts  [][]byte // encoded packets, kept for retransmission
	resp     []byte
	done     bool
	failed   bool
	doneCh   *sim.Chan[struct{}]
	rto      *sim.Event
	retries  int
	partial  *reassembly
	enqueued sim.Time
}

// Connect creates a client session to remote. The remote endpoint must have
// been created (its port bound) before any Call completes.
func (e *Endpoint) Connect(remote simnet.Addr) *Session {
	s := &Session{
		ep:      e,
		id:      e.nextSessionID,
		remote:  remote,
		pending: make(map[uint64]*call),
		window:  sim.NewResource(e.host.Network().Engine(), "xport-window", e.cfg.Window),
	}
	e.nextSessionID++
	e.clients[s.id] = s
	return s
}

// Remote returns the server address this session targets.
func (s *Session) Remote() simnet.Addr { return s.remote }

// Call sends req and blocks the calling process until the full response
// arrives or the retransmission budget is exhausted. Concurrent Calls on
// one session are allowed up to the configured window.
func (s *Session) Call(p *sim.Proc, req []byte) ([]byte, error) {
	if len(req) > s.ep.cfg.MaxMessageSize {
		return nil, ErrTooLarge
	}
	s.window.Acquire(p)
	defer s.window.Release()

	eng := s.ep.host.Network().Engine()
	c := &call{
		reqID:    s.nextReqID,
		doneCh:   sim.NewChan[struct{}](eng),
		enqueued: eng.Now(),
	}
	s.nextReqID++
	s.pending[c.reqID] = c
	c.reqPkts = s.packetize(kindRequest, c.reqID, req)

	s.sendPackets(p, c.reqPkts)
	c.rto = eng.After(s.ep.cfg.RTO, func() { s.onRTO(c) })

	c.doneCh.Recv(p)

	delete(s.pending, c.reqID)
	s.advanceCompleted()
	if c.failed {
		return nil, ErrTimeout
	}
	return c.resp, nil
}

// advanceCompleted recomputes the highest contiguously completed reqID used
// for server cache pruning.
func (s *Session) advanceCompleted() {
	for {
		if _, stillPending := s.pending[s.completed]; stillPending {
			return
		}
		if s.completed >= s.nextReqID {
			return
		}
		s.completed++
	}
}

// packetize splits msg into MTU-sized packets with headers.
func (s *Session) packetize(kind byte, reqID uint64, msg []byte) [][]byte {
	mtu := s.ep.host.Network().Config().MTU
	chunk := mtu - headerSize
	num := (len(msg) + chunk - 1) / chunk
	if num == 0 {
		num = 1
	}
	pkts := make([][]byte, 0, num)
	for i := 0; i < num; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(msg) {
			hi = len(msg)
		}
		pkt := make([]byte, headerSize+hi-lo)
		header{
			kind:      kind,
			sessionID: s.id,
			reqID:     reqID,
			ackedUpTo: s.completed,
			pktIdx:    uint16(i),
			numPkts:   uint16(num),
			msgSize:   uint32(len(msg)),
		}.encode(pkt)
		copy(pkt[headerSize:], msg[lo:hi])
		pkts = append(pkts, pkt)
	}
	return pkts
}

// sendPackets transmits pkts, charging per-packet CPU and a local memory
// pass (tx DMA) for each.
func (s *Session) sendPackets(p *sim.Proc, pkts [][]byte) {
	for _, pkt := range pkts {
		if s.ep.cfg.PerPacketCPU > 0 {
			s.ep.host.CPU.Use(p, s.ep.cfg.PerPacketCPU)
		}
		s.ep.host.MemTouch(p, len(pkt))
		s.ep.txPackets++
		s.ep.host.Send(p, s.remote, s.ep.port, pkt)
	}
}

// onRTO fires when a request's retransmission timer expires.
func (s *Session) onRTO(c *call) {
	if c.done {
		return
	}
	eng := s.ep.host.Network().Engine()
	if c.retries >= s.ep.cfg.MaxRetries {
		c.failed = true
		c.done = true
		c.doneCh.Send(struct{}{})
		return
	}
	c.retries++
	s.ep.retransmits += int64(len(c.reqPkts))
	// Retransmit from a helper process so NIC queueing does not block the
	// engine's event loop.
	eng.Spawn("retransmit", func(p *sim.Proc) {
		if c.done {
			return
		}
		s.sendPackets(p, c.reqPkts)
	})
	c.rto = eng.After(s.ep.cfg.RTO, func() { s.onRTO(c) })
}

// handleResponsePacket routes a response packet to its waiting call.
func (e *Endpoint) handleResponsePacket(h header, body []byte) {
	s, ok := e.clients[h.sessionID]
	if !ok {
		return
	}
	c, ok := s.pending[h.reqID]
	if !ok || c.done {
		return // stale or duplicate response
	}
	if c.partial == nil {
		c.partial = newReassembly(h)
	}
	if !c.partial.add(h, body) {
		return // duplicate packet
	}
	if c.partial.complete() {
		c.resp = c.partial.msg
		c.done = true
		if c.rto != nil {
			c.rto.Cancel()
		}
		c.doneCh.Send(struct{}{})
	}
}

// serveState tracks one client session on the server side.
type serveState struct {
	partials map[uint64]*reassembly
	// responded caches encoded response packets for replay on duplicate
	// requests, pruned by the client's ackedUpTo watermark.
	responded map[uint64][][]byte
	inflight  map[uint64]bool // delivered to handler, no response yet
}

// IncomingRequest is a fully reassembled request awaiting a response.
type IncomingRequest struct {
	ep     *Endpoint
	key    serveKey
	header header
	// From is the client endpoint address.
	From simnet.Addr
	// Payload is the request message.
	Payload []byte
}

// Respond sends the response message back to the client, charging the
// responding process for packetization and transmission. Each request must
// be responded to exactly once.
func (r *IncomingRequest) Respond(p *sim.Proc, resp []byte) error {
	if len(resp) > r.ep.cfg.MaxMessageSize {
		return ErrTooLarge
	}
	st := r.ep.serves[r.key]
	if st == nil || !st.inflight[r.header.reqID] {
		return fmt.Errorf("transport: duplicate or unknown Respond for req %d", r.header.reqID)
	}
	delete(st.inflight, r.header.reqID)

	pkts := r.encodeResponse(resp)
	st.responded[r.header.reqID] = pkts
	r.sendResponse(p, pkts)
	return nil
}

func (r *IncomingRequest) encodeResponse(msg []byte) [][]byte {
	mtu := r.ep.host.Network().Config().MTU
	chunk := mtu - headerSize
	num := (len(msg) + chunk - 1) / chunk
	if num == 0 {
		num = 1
	}
	pkts := make([][]byte, 0, num)
	for i := 0; i < num; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(msg) {
			hi = len(msg)
		}
		pkt := make([]byte, headerSize+hi-lo)
		header{
			kind:      kindResponse,
			sessionID: r.header.sessionID,
			reqID:     r.header.reqID,
			pktIdx:    uint16(i),
			numPkts:   uint16(num),
			msgSize:   uint32(len(msg)),
		}.encode(pkt)
		copy(pkt[headerSize:], msg[lo:hi])
		pkts = append(pkts, pkt)
	}
	return pkts
}

func (r *IncomingRequest) sendResponse(p *sim.Proc, pkts [][]byte) {
	for _, pkt := range pkts {
		if r.ep.cfg.PerPacketCPU > 0 {
			r.ep.host.CPU.Use(p, r.ep.cfg.PerPacketCPU)
		}
		r.ep.host.MemTouch(p, len(pkt))
		r.ep.txPackets++
		r.ep.host.Send(p, r.From, r.ep.port, pkt)
	}
}

// handleRequestPacket reassembles request packets and delivers complete
// requests exactly once; duplicates of answered requests replay the cached
// response.
func (e *Endpoint) handleRequestPacket(p *sim.Proc, from simnet.Addr, h header, body []byte) {
	key := serveKey{peer: from, sessionID: h.sessionID}
	st, ok := e.serves[key]
	if !ok {
		st = &serveState{
			partials:  make(map[uint64]*reassembly),
			responded: make(map[uint64][][]byte),
			inflight:  make(map[uint64]bool),
		}
		e.serves[key] = st
	}
	// Prune response cache below the client's watermark.
	for id := range st.responded {
		if id < h.ackedUpTo {
			delete(st.responded, id)
		}
	}
	if pkts, ok := st.responded[h.reqID]; ok {
		// Duplicate of an answered request: replay the response from the
		// dispatcher process (cheap; response is already encoded).
		r := &IncomingRequest{ep: e, key: key, header: h, From: from}
		r.sendResponse(p, pkts)
		return
	}
	if st.inflight[h.reqID] {
		return // handler still working; client will see the response
	}
	ra, ok := st.partials[h.reqID]
	if !ok {
		ra = newReassembly(h)
		st.partials[h.reqID] = ra
	}
	if !ra.add(h, body) {
		return
	}
	if ra.complete() {
		delete(st.partials, h.reqID)
		st.inflight[h.reqID] = true
		e.reqQueue.Send(&IncomingRequest{
			ep:      e,
			key:     key,
			header:  h,
			From:    from,
			Payload: ra.msg,
		})
	}
}

// Requests returns the queue of fully assembled incoming requests. Server
// processes Recv from it and must call Respond on every request.
func (e *Endpoint) Requests() *sim.Chan[*IncomingRequest] { return e.reqQueue }

// reassembly collects the packets of one message.
type reassembly struct {
	msg  []byte
	have []bool
	got  int
}

func newReassembly(h header) *reassembly {
	return &reassembly{
		msg:  make([]byte, h.msgSize),
		have: make([]bool, h.numPkts),
	}
}

// add stores one packet's body; it returns false for duplicates.
func (ra *reassembly) add(h header, body []byte) bool {
	if int(h.pktIdx) >= len(ra.have) || ra.have[h.pktIdx] {
		return false
	}
	ra.have[h.pktIdx] = true
	ra.got++
	// Packets are fixed-size chunks except the last, so a non-final
	// packet's body length is the chunk size and placement is pktIdx*chunk;
	// the final packet fills the tail.
	if int(h.pktIdx) == len(ra.have)-1 {
		copy(ra.msg[len(ra.msg)-len(body):], body)
	} else {
		copy(ra.msg[int(h.pktIdx)*len(body):], body)
	}
	return true
}

func (ra *reassembly) complete() bool { return ra.got == len(ra.have) }
