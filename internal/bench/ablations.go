package bench

import (
	"fmt"
	"io"

	"repro/internal/dm"
	"repro/internal/dmnet"
	"repro/internal/msvc"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TranslationResult quantifies the §V-A2 claim that the software-based
// address translation accounts for a tiny share (paper: 0.17%) of a DM
// access.
type TranslationResult struct {
	// AccessNs is the measured 4 KiB rread latency with translation on.
	AccessNs sim.Time
	// BaselineNs is the same access with TranslateTime forced to zero.
	BaselineNs sim.Time
	// SharePct is the translation share of the total access time.
	SharePct float64
}

// AblationTranslation measures the software translation overhead by
// differencing rread latency with and without the hash-table lookup cost.
func AblationTranslation(scale Scale) TranslationResult {
	warm, meas := scale.windows()
	measure := func(translate sim.Time) sim.Time {
		eng := sim.NewEngine(1)
		defer eng.Shutdown()
		net := simnet.New(eng, simnet.DefaultConfig())
		scfg := dmnet.DefaultServerConfig()
		scfg.TranslateTime = translate
		srv := dmnet.NewServer(net.AddHost("dmserver"), 1, 0, scfg)
		srv.Start()
		node := rpc.NewNode(net.AddHost("client"), 1, "client", rpc.DefaultConfig())
		node.Start()
		cl := dmnet.NewClient(node, []simnet.Addr{srv.Addr()})
		var addr dm.RemoteAddr
		eng.Spawn("setup", func(p *sim.Proc) {
			must(cl.Register(p))
			a, err := cl.Alloc(p, 4096)
			must(err)
			must(cl.Write(p, a, make([]byte, 4096)))
			addr = a
		})
		eng.Run()
		buf := make([]byte, 4096)
		r := workload.RunClosed(eng, workload.ClosedConfig{
			Clients: 1, Warmup: warm, Measure: meas,
		}, func(p *sim.Proc) error {
			return cl.Read(p, addr, buf)
		})
		return sim.Time(r.Latency.Mean())
	}
	withT := measure(dmnet.DefaultServerConfig().TranslateTime)
	withoutT := measure(0)
	res := TranslationResult{AccessNs: withT, BaselineNs: withoutT}
	if withT > 0 {
		res.SharePct = float64(withT-withoutT) / float64(withT) * 100
	}
	return res
}

// Print writes the translation ablation.
func (r TranslationResult) Print(w io.Writer) {
	header(w, "sec5a2", "software address translation share of a 4KiB DM access")
	fmt.Fprintf(w, "rread latency with translation:    %s\n", stats.Dur(r.AccessNs))
	fmt.Fprintf(w, "rread latency without translation: %s\n", stats.Dur(r.BaselineNs))
	fmt.Fprintf(w, "translation share:                 %.3f%% (paper: 0.17%%)\n", r.SharePct)
}

// SizeAwareRow is one (policy, payload size) throughput point for the
// size-aware transfer ablation (§IV-B).
type SizeAwareRow struct {
	Policy     string
	Payload    int
	Throughput float64
}

// SizeAwareResult holds the ablation sweep.
type SizeAwareResult struct {
	Rows []SizeAwareRow
}

// AblationSizeAware sweeps payload sizes under three transfer policies on
// a 3-hop chain over DmRPC-net: always pass by value, always pass by
// reference, and the size-aware default. The crossover justifies the
// paper's automatic mode selection.
func AblationSizeAware(scale Scale) SizeAwareResult {
	payloads := []int{256, 4096, 32768}
	if scale == Full {
		payloads = []int{64, 256, 1024, 4096, 16384, 65536}
	}
	warm, meas := scale.windows()
	policies := []struct {
		name string
		core func() (cfgCore coreConfig)
	}{
		{"always-value", func() coreConfig { return coreConfig{forceInline: true} }},
		{"always-ref", func() coreConfig { return coreConfig{threshold: -1} }},
		{"size-aware", func() coreConfig { return coreConfig{} }},
	}
	var res SizeAwareResult
	for _, pol := range policies {
		for _, size := range payloads {
			cfg := msvc.DefaultConfig(msvc.ModeDmNet)
			cc := pol.core()
			cfg.Core.ForceInline = cc.forceInline
			cfg.Core.InlineThreshold = cc.threshold
			if cc.forceInline {
				// Keep the DM pool out of the picture entirely.
				cfg.Mode = msvc.ModeERPC
			}
			pl := msvc.NewPlatform(cfg)
			ch := msvc.NewChain(pl, 3)
			pl.Start()
			payload := make([]byte, size)
			r := workload.RunClosed(pl.Eng, workload.ClosedConfig{
				Clients: 16, Warmup: warm, Measure: meas,
			}, func(p *sim.Proc) error {
				_, err := ch.Do(p, payload)
				return err
			})
			pl.Shutdown()
			res.Rows = append(res.Rows, SizeAwareRow{
				Policy: pol.name, Payload: size, Throughput: r.Throughput(),
			})
		}
	}
	return res
}

type coreConfig struct {
	forceInline bool
	threshold   int
}

// DMScaleRow is one pool-size point of the DM-server scaling ablation.
type DMScaleRow struct {
	Servers    int
	Throughput float64 // staged args/s
}

// DMScaleResult holds the sweep.
type DMScaleResult struct {
	Rows []DMScaleRow
}

// AblationDMScale measures how round-robin distribution across memory
// servers scales staging throughput (§VI-C: "Load-balanced distribution
// across multiple memory servers ... routed in a round-robin fashion").
// Many clients stage 32 KiB payloads against pools of 1, 2 and 4
// single-core servers.
func AblationDMScale(scale Scale) DMScaleResult {
	warm, meas := scale.windows()
	var res DMScaleResult
	for _, servers := range []int{1, 2, 4} {
		eng := sim.NewEngine(1)
		net := simnet.New(eng, simnet.DefaultConfig())
		var addrs []simnet.Addr
		for i := 0; i < servers; i++ {
			scfg := dmnet.DefaultServerConfig()
			scfg.RPC.Workers = 1
			scfg.Memory.NumPages = 1 << 14
			srv := dmnet.NewServer(net.AddHost("dmserver"), 1, uint32(i), scfg)
			srv.Start()
			addrs = append(addrs, srv.Addr())
		}
		// Several client hosts so client NICs don't bottleneck the pool.
		var clients []*dmnet.Client
		for i := 0; i < 4; i++ {
			node := rpc.NewNode(net.AddHost("client"), 1, "client", rpc.DefaultConfig())
			node.Start()
			clients = append(clients, dmnet.NewClient(node, addrs))
		}
		eng.Spawn("register", func(p *sim.Proc) {
			for _, c := range clients {
				must(c.Register(p))
			}
		})
		eng.Run()
		payload := make([]byte, 32768)
		i := 0
		r := workload.RunClosed(eng, workload.ClosedConfig{
			Clients: 16, Warmup: warm, Measure: meas,
		}, func(p *sim.Proc) error {
			c := clients[i%len(clients)]
			i++
			ref, err := c.StageRef(p, payload)
			if err != nil {
				return err
			}
			return c.FreeRef(p, ref)
		})
		eng.Shutdown()
		res.Rows = append(res.Rows, DMScaleRow{Servers: servers, Throughput: r.Throughput()})
	}
	return res
}

// Print writes the DM scaling table.
func (r DMScaleResult) Print(w io.Writer) {
	header(w, "abl-dmscale", "staging throughput vs DM pool size (32KiB, round-robin)")
	t := stats.NewTable("DM servers", "throughput", "speedup")
	base := 0.0
	for i, row := range r.Rows {
		if i == 0 {
			base = row.Throughput
		}
		speedup := 0.0
		if base > 0 {
			speedup = row.Throughput / base
		}
		t.AddRow(row.Servers, stats.Rate(row.Throughput), fmt.Sprintf("%.2fx", speedup))
	}
	io.WriteString(w, t.String())
}

// Print writes the size-aware ablation table.
func (r SizeAwareResult) Print(w io.Writer) {
	header(w, "abl-sizeaware", "size-aware transfer policy vs payload size (3-hop chain)")
	t := stats.NewTable("policy", "payload", "throughput")
	for _, row := range r.Rows {
		t.AddRow(row.Policy, stats.Bytes(int64(row.Payload)), stats.Rate(row.Throughput))
	}
	io.WriteString(w, t.String())
}

// Get returns the row for (policy, payload).
func (r SizeAwareResult) Get(policy string, payload int) (SizeAwareRow, bool) {
	for _, row := range r.Rows {
		if row.Policy == policy && row.Payload == payload {
			return row, true
		}
	}
	return SizeAwareRow{}, false
}
