package live

import (
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rpc"
)

// TestCreditGateBasics covers the window mechanics: acquisition up to the
// limit, blocking past it, release waking a waiter, and deadline sheds.
func TestCreditGateBasics(t *testing.T) {
	g := newCreditGate(2)
	for i := 0; i < 2; i++ {
		waited, err := g.acquire(time.Time{})
		if waited || err != nil {
			t.Fatalf("acquire %d under the limit: waited=%v err=%v", i, waited, err)
		}
	}
	if got := g.inUse(); got != 2 {
		t.Fatalf("inUse = %d, want 2", got)
	}

	// A full window sheds at the deadline with ErrCredits.
	waited, err := g.acquire(time.Now().Add(30 * time.Millisecond))
	if !waited || !errors.Is(err, ErrCredits) {
		t.Fatalf("acquire on full window = waited=%v err=%v, want waited ErrCredits", waited, err)
	}

	// A release hands the credit to a parked waiter.
	got := make(chan error, 1)
	go func() {
		_, err := g.acquire(time.Now().Add(5 * time.Second))
		got <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter park
	g.release()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("waiter after release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("release did not wake the waiter")
	}
	if got := g.inUse(); got != 2 {
		t.Fatalf("inUse after hand-off = %d, want 2", got)
	}
}

// TestCreditGateSetLimitGrowthWakesWaiters: a larger server advertisement
// must admit every parked waiter that now fits.
func TestCreditGateSetLimitGrowthWakesWaiters(t *testing.T) {
	g := newCreditGate(1)
	if _, err := g.acquire(time.Time{}); err != nil {
		t.Fatal(err)
	}
	const parked = 3
	errs := make(chan error, parked)
	for i := 0; i < parked; i++ {
		go func() {
			_, err := g.acquire(time.Now().Add(5 * time.Second))
			errs <- err
		}()
	}
	time.Sleep(20 * time.Millisecond)
	g.setLimit(1 + parked)
	for i := 0; i < parked; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatalf("waiter %d after growth: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("setLimit growth left a waiter parked")
		}
	}
	if got := g.inUse(); got != 1+parked {
		t.Fatalf("inUse = %d, want %d", got, 1+parked)
	}
	// Shrinking never strands state: in-flight simply drains below it.
	g.setLimit(2)
	for i := 0; i < 1+parked; i++ {
		g.release()
	}
	if got := g.inUse(); got != 0 {
		t.Fatalf("inUse after drain = %d, want 0", got)
	}
}

// TestCreditGateStress hammers acquire/release with short random-ish
// deadlines from many goroutines; under -race this exercises the
// timeout-versus-wake signal race, and afterwards the gate must be
// exactly quiescent (no held credits, no stranded waiters, no lost
// wakes).
func TestCreditGateStress(t *testing.T) {
	g := newCreditGate(4)
	var wg sync.WaitGroup
	var sheds atomic.Int64
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				// Stagger deadlines so some expire exactly as releases land.
				d := time.Duration(w%5) * 100 * time.Microsecond
				if _, err := g.acquire(time.Now().Add(d)); err != nil {
					sheds.Add(1)
					continue
				}
				runtime.Gosched()
				g.release()
			}
		}(w)
	}
	wg.Wait()
	if got := g.inUse(); got != 0 {
		t.Fatalf("inUse after stress = %d, want 0", got)
	}
	g.mu.Lock()
	stranded := len(g.waiters)
	g.mu.Unlock()
	if stranded != 0 {
		t.Fatalf("%d waiters stranded after stress", stranded)
	}
	// A lost wake would show up here as a spurious block.
	if waited, err := g.acquire(time.Now().Add(time.Second)); waited || err != nil {
		t.Fatalf("quiescent gate acquire: waited=%v err=%v", waited, err)
	}
}

// TestAsyncCreditWindowBoundsPending is the flow-control acceptance test:
// against a server whose handler stalls, a client with a 4-credit window
// that submits 16 async calls must never hold more than 4 request frames
// in flight, must record the blocked submissions as credit waits, and
// must complete everything once the server drains.
func TestAsyncCreditWindowBoundsPending(t *testing.T) {
	const window = 4
	const calls = 16
	srv := NewNode()
	release := make(chan struct{})
	srv.Handle(rpc.Method(0x0500), func(net.Addr, []byte) ([]byte, error) {
		<-release
		return []byte("ok"), nil
	})
	addr := startNode(t, srv)

	ccfg := DefaultNodeConfig()
	ccfg.AsyncCredits = window
	ccfg.CallTimeout = 30 * time.Second
	ccfg.AttemptTimeout = 30 * time.Second
	cl := NewNodeWith(ccfg)
	defer cl.Close()

	errs := make(chan error, calls)
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := cl.CallAsync(addr, rpc.Method(0x0500), nil, nil, CallOpts{})
			errs <- p.Wait(nil)
		}()
	}

	// Wait for the window to saturate, then confirm the bound holds: the
	// pending map can never exceed the credit window no matter how many
	// submissions are queued behind it.
	deadline := time.Now().Add(5 * time.Second)
	for cl.PendingCalls() < window && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 20; i++ {
		if got := cl.PendingCalls(); got > window {
			t.Fatalf("pending calls = %d, exceeds credit window %d", got, window)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if g := cl.gateFor(addr); g.inUse() != window {
		t.Fatalf("credits in use = %d during stall, want %d", g.inUse(), window)
	}

	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("async call after drain: %v", err)
		}
	}
	if g := cl.gateFor(addr); g.inUse() != 0 {
		t.Fatalf("credits in use after drain = %d, want 0", g.inUse())
	}
	if got := cl.PendingCalls(); got != 0 {
		t.Fatalf("pending calls after drain = %d, want 0", got)
	}
	// The queued submissions had to block; the waits only count once
	// acquire returns, so assert after the drain.
	if waits := cl.ops.creditWaits.Load(); waits == 0 {
		t.Fatal("no credit waits recorded despite a saturated window")
	}
}

// TestAsyncCreditShedOnStall: when the window stays exhausted for the
// whole attempt budget, queued submissions shed with ErrCredits (counted
// as sheds), the bound still holds, and no goroutines leak.
func TestAsyncCreditShedOnStall(t *testing.T) {
	const window = 2
	srv := NewNode()
	release := make(chan struct{})
	srv.Handle(rpc.Method(0x0501), func(net.Addr, []byte) ([]byte, error) {
		<-release
		return []byte("ok"), nil
	})
	addr := startNode(t, srv)
	defer close(release)

	runtime.GC()
	before := runtime.NumGoroutine()

	ccfg := DefaultNodeConfig()
	ccfg.AsyncCredits = window
	ccfg.CallTimeout = 30 * time.Second // occupiers must outlive the sheds
	ccfg.AttemptTimeout = 30 * time.Second
	cl := NewNodeWith(ccfg)

	// Fill the window; the futures are not waited yet, so their credits
	// stay held for the duration of the stall.
	occupiers := make([]*Pending, window)
	for i := range occupiers {
		occupiers[i] = cl.CallAsync(addr, rpc.Method(0x0501), nil, nil, CallOpts{})
	}
	deadline := time.Now().Add(5 * time.Second)
	for cl.PendingCalls() < window && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// Late submissions get a short budget of their own and must shed.
	const late = 4
	shedErrs := make(chan error, late)
	for i := 0; i < late; i++ {
		go func() {
			p := cl.CallAsync(addr, rpc.Method(0x0501), nil, nil,
				CallOpts{Timeout: 100 * time.Millisecond})
			shedErrs <- p.Wait(nil)
		}()
	}
	for i := 0; i < late; i++ {
		select {
		case err := <-shedErrs:
			if !errors.Is(err, ErrCredits) {
				t.Fatalf("stalled-window submission = %v, want ErrCredits", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("shed did not happen within the attempt budget")
		}
	}
	if got := cl.PendingCalls(); got > window {
		t.Fatalf("pending calls = %d, exceeds credit window %d", got, window)
	}
	if sheds := cl.ops.creditSheds.Load(); sheds < late {
		t.Fatalf("credit sheds = %d, want >= %d", sheds, late)
	}

	// Drain: the handler completes the occupiers and everything unwinds.
	release <- struct{}{}
	release <- struct{}{}
	for _, p := range occupiers {
		if err := p.Wait(nil); err != nil {
			t.Fatalf("occupier after drain: %v", err)
		}
	}
	cl.Close()

	deadline = time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerAdvertisedCreditsAdoptedAtRegister: the session window the
// server advertises in its register response resizes the client's gate.
func TestServerAdvertisedCreditsAdoptedAtRegister(t *testing.T) {
	cfg := smallConfig()
	cfg.SessionCredits = 8
	_, addr := startServer(t, cfg)
	cl := dialClient(t, addr)
	g := cl.node.gateFor(addr)
	if g == nil {
		t.Fatal("no credit gate after register")
	}
	g.mu.Lock()
	limit := g.limit
	g.mu.Unlock()
	if limit != 8 {
		t.Fatalf("credit limit after register = %d, want the advertised 8", limit)
	}
}

// TestServerCreditAdvertisementDisabled: a server with SessionCredits < 0
// advertises nothing, so the client keeps its configured default.
func TestServerCreditAdvertisementDisabled(t *testing.T) {
	cfg := smallConfig()
	cfg.SessionCredits = -1
	_, addr := startServer(t, cfg)
	cl := dialClient(t, addr)
	g := cl.node.gateFor(addr)
	if g == nil {
		t.Fatal("no credit gate after register")
	}
	g.mu.Lock()
	limit := g.limit
	g.mu.Unlock()
	if limit != DefaultSessionCredits {
		t.Fatalf("credit limit = %d, want the client default %d", limit, DefaultSessionCredits)
	}
}
