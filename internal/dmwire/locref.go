package dmwire

import (
	"errors"

	"repro/internal/dm"
	"repro/internal/rpc"
)

// Versioned location-aware ref codec for the sharded DM cluster layer
// (internal/pool). A v0 ref is the original dm.Ref wire form, whose
// Server field is a connection-local pool index — meaningful only to the
// client that dialed the servers in that order. A v1 (located) ref marks
// the same 20 bytes as cluster-addressed: Server carries a cluster-wide
// shard ID from the pool's consistent-hash ring, so any process holding
// the shard map can resolve the ref to the server that stores its pages
// with no extra hop. The two forms are distinguished by an explicit
// version byte prefix on v1+, and — for raw buffers — by length (a bare
// v0 ref is exactly dm.EncodedRefSize bytes and carries no version byte),
// so old single-server refs still parse.

// Ref codec versions.
const (
	// RefV0 marks the legacy unversioned form: dm.Ref with a
	// connection-local Server index and no version byte.
	RefV0 = 0
	// RefV1 marks the located form: a version byte followed by dm.Ref
	// whose Server field is a cluster-wide shard ID.
	RefV1 = 1
)

// LocatedRefSize is the wire size of a v1 located ref.
const LocatedRefSize = 1 + dm.EncodedRefSize

// ErrBadRefVersion reports an unknown located-ref version byte.
var ErrBadRefVersion = errors.New("dmwire: unknown located-ref version")

// LocatedRef pairs a ref with its codec version. Located reports whether
// Ref.Server is a cluster-wide shard ID (v1) rather than a
// connection-local index (v0).
type LocatedRef struct {
	Version uint8
	Ref     dm.Ref
}

// Located reports whether the ref is cluster-addressed.
func (r LocatedRef) Located() bool { return r.Version >= RefV1 }

// Shard returns the shard ID of a located ref (Ref.Server).
func (r LocatedRef) Shard() uint32 { return r.Ref.Server }

// Locate wraps a ref whose Server field is a cluster-wide shard ID.
func Locate(ref dm.Ref) LocatedRef { return LocatedRef{Version: RefV1, Ref: ref} }

// Marshal encodes the ref in its version's wire form: v0 is the bare
// dm.Ref encoding (no version byte, for byte-compatibility with every
// pre-pool ref ever written); v1 prefixes the version byte.
func (r LocatedRef) Marshal() []byte {
	if r.Version == RefV0 {
		return r.Ref.Marshal()
	}
	e := rpc.NewEnc(LocatedRefSize)
	e.U8(r.Version)
	r.Ref.Encode(e)
	return e.Bytes()
}

// UnmarshalLocatedRef decodes either form: a buffer of exactly
// dm.EncodedRefSize bytes is the legacy v0 encoding; anything longer must
// lead with a known version byte. (A v1 ref is one byte longer than a v0
// ref, so length disambiguates without reserving a Server bit.)
func UnmarshalLocatedRef(b []byte) (LocatedRef, error) {
	if len(b) == dm.EncodedRefSize {
		ref, err := dm.UnmarshalRef(b)
		if err != nil {
			return LocatedRef{}, err
		}
		return LocatedRef{Version: RefV0, Ref: ref}, nil
	}
	d := rpc.NewDec(b)
	v := d.U8()
	if v != RefV1 {
		return LocatedRef{}, ErrBadRefVersion
	}
	ref := dm.DecodeRef(d)
	if err := d.Err(); err != nil {
		return LocatedRef{}, err
	}
	return LocatedRef{Version: v, Ref: ref}, nil
}
