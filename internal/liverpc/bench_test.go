package liverpc

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/live"
)

// benchSizes is the payload sweep for the Fig 5 live reproduction:
// spanning well below and well above the inline threshold so the
// by-value / by-ref crossover falls inside the range. On loopback TCP
// the by-value baseline pays one full payload copy per hop while by-ref
// pays a fixed two bulk transfers (stage + terminal read) regardless of
// chain length, so the crossover needs enough hops and bytes to show;
// a 5-hop chain puts it around 64–256 KiB on typical hosts.
var benchSizes = []int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}

const benchHops = 5

func benchDM(b *testing.B) string {
	b.Helper()
	srv := live.NewServer(live.ServerConfig{NumPages: 1 << 14, PageSize: 4096})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	b.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

func benchChainConfig(mode string) Config {
	if mode == "value" {
		return Config{ForceInline: true}
	}
	return Config{InlineThreshold: 1024}
}

func benchChain(b *testing.B, dmAddr, mode string) *ChainDeployment {
	b.Helper()
	d, err := DeployChain(benchHops, []string{dmAddr}, benchChainConfig(mode))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(d.Close)
	return d
}

// BenchmarkLiveRPCChain sweeps payload size across the 3-hop chain app in
// both call modes over real loopback TCP: "value" ships the payload
// through every hop (the eRPC baseline), "ref" stages it once and ships a
// ~21-byte descriptor (the paper's pass-by-reference path, Fig 5). The
// same application code runs in both modes; only Config differs.
func BenchmarkLiveRPCChain(b *testing.B) {
	dmAddr := benchDM(b)
	for _, mode := range []string{"value", "ref"} {
		for _, size := range benchSizes {
			b.Run(fmt.Sprintf("mode=%s/size=%d", mode, size), func(b *testing.B) {
				d := benchChain(b, dmAddr, mode)
				payload := make([]byte, size)
				apps.FillPayload(payload, uint64(size))
				want := apps.Aggregate(payload)
				b.SetBytes(int64(size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					got, err := d.Client.Do(payload)
					if err != nil {
						b.Fatal(err)
					}
					if got != want {
						b.Fatalf("sum = %d, want %d", got, want)
					}
				}
			})
		}
	}
}

// BenchmarkLiveRPCChainCrossover probes both modes across the size sweep
// and reports the smallest payload size at which pass-by-reference beats
// pass-by-value on this host as "crossover-bytes" (0 when by-value wins
// everywhere in the sweep). The timed loop itself runs the largest
// payload by ref, so ns/op tracks the headline large-payload case.
func BenchmarkLiveRPCChainCrossover(b *testing.B) {
	dmAddr := benchDM(b)
	probe := func(mode string, size int) time.Duration {
		d := benchChain(b, dmAddr, mode)
		payload := make([]byte, size)
		apps.FillPayload(payload, uint64(size))
		const iters = 20
		// Warm the connections before timing.
		if _, err := d.Client.Do(payload); err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := d.Client.Do(payload); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(start) / iters
	}
	crossover := 0
	for _, size := range benchSizes {
		if probe("ref", size) < probe("value", size) {
			crossover = size
			break
		}
	}

	d := benchChain(b, dmAddr, "ref")
	size := benchSizes[len(benchSizes)-1]
	payload := make([]byte, size)
	apps.FillPayload(payload, uint64(size))
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Client.Do(payload); err != nil {
			b.Fatal(err)
		}
	}
	// After the timed loop: ResetTimer clears extra metrics, so the
	// crossover must be attached here to survive into the result line.
	b.ReportMetric(float64(crossover), "crossover-bytes")
}

// BenchmarkLiveRPCChainPipelined keeps a ring of `depth` chained requests
// in flight via DoAsync (4 KiB payloads by ref): request i+1's staging
// and hop traversal overlap request i's round trip, so deeper rings lift
// aggregate chain throughput without touching the services. The gain is
// bounded by spare cores: the chain's per-op cost on loopback is almost
// entirely CPU (protocol work at six endpoints), so on a single-core
// host pipelining only reclaims scheduler dead time (~1.2-1.4x) even
// though the ring genuinely fills — BenchmarkLiveRPCChainOccupancy's
// per-hop gauges prove every hop runs `depth` handlers at once.
func BenchmarkLiveRPCChainPipelined(b *testing.B) {
	dmAddr := benchDM(b)
	const size = 4 << 10
	for _, depth := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			d := benchChain(b, dmAddr, "ref")
			payload := make([]byte, size)
			apps.FillPayload(payload, uint64(size))
			want := apps.Aggregate(payload)
			check := func(cp *ChainPending) {
				got, err := cp.Wait()
				if err != nil {
					b.Fatal(err)
				}
				if got != want {
					b.Fatalf("sum = %d, want %d", got, want)
				}
			}
			b.SetBytes(int64(size))
			b.ResetTimer()
			ring := make([]*ChainPending, 0, depth)
			for i := 0; i < b.N; i++ {
				if len(ring) == depth {
					check(ring[0])
					ring = ring[1:]
				}
				ring = append(ring, d.Client.DoAsync(payload))
			}
			for _, cp := range ring {
				check(cp)
			}
		})
	}
}
