package pool

import (
	"bytes"
	"errors"
	"net"
	"testing"

	"repro/internal/live"
	"repro/internal/liverpc"
)

// serveService starts s on a loopback listener and returns its address.
func serveService(t *testing.T, s *liverpc.Service) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return ln.Addr().String()
}

// dialPool registers a fresh pool client over addrs.
func dialPool(t *testing.T, addrs []string) *Client {
	t.Helper()
	p, err := Dial(Config{Shards: addrs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	if err := p.Register(); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestLiverpcOverPool wires the RPC framework onto the sharded cluster:
// a caller stages a large argument through its pool (producing a v1
// located payload on the wire), a service with its OWN pool session
// fetches it by shard ID, adopts it, and serves it back later — the
// full Ctx.Fetch/Ctx.Adopt path over located refs.
func TestLiverpcOverPool(t *testing.T) {
	const k = 3
	srvs := make([]*live.Server, k)
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		srvs[i], addrs[i] = startShard(t, uint32(i), smallShard())
	}
	svcPool := dialPool(t, addrs)

	big := bytes.Repeat([]byte{0xcd}, 64<<10)
	var adopted liverpc.Payload
	// The service's pool arrives via Config.DM — the "flip a deployment
	// to sharded without touching constructors" path.
	svc := liverpc.NewService("store", nil, liverpc.Config{DM: svcPool})
	svc.Handle("put", func(ctx *liverpc.Ctx, args []liverpc.Payload) ([]liverpc.Payload, error) {
		if len(args) != 1 || !args[0].Located() {
			return nil, errors.New("want one located arg")
		}
		got, err := ctx.Fetch(args[0])
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(got, big) {
			return nil, errors.New("fetched wrong bytes")
		}
		adopted, err = ctx.Adopt(args[0])
		if err != nil {
			return nil, err
		}
		return []liverpc.Payload{liverpc.U64(uint64(len(got)))}, nil
	})
	svc.Handle("get", func(ctx *liverpc.Ctx, args []liverpc.Payload) ([]liverpc.Payload, error) {
		return []liverpc.Payload{adopted}, nil
	})
	addr := serveService(t, svc)

	callerPool := dialPool(t, addrs)
	caller := liverpc.NewCaller(callerPool, liverpc.Config{})
	defer caller.Close()

	arg, err := caller.Stage(big)
	if err != nil {
		t.Fatal(err)
	}
	if !arg.Located() {
		t.Fatal("pool-staged payload is not located")
	}
	res, err := caller.Call(addr, "put", arg)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := res[0].AsU64(); err != nil || n != uint64(len(big)) {
		t.Fatalf("put returned (%d, %v)", n, err)
	}
	// Producer drops its ref; the adopted copy must survive.
	if err := caller.Release(arg); err != nil {
		t.Fatal(err)
	}
	res, err = caller.Call(addr, "get")
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Located() {
		t.Fatal("adopted payload came back unlocated")
	}
	got, err := caller.Fetch(res[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("adopted payload has wrong bytes")
	}
	checkAllInvariants(t, srvs)
}

// TestLocatedRefRefusedBySingleClient pins the safety check: a located
// payload must not resolve through a plain single-server live.Client,
// whose Server fields mean dial order, not shard ID.
func TestLocatedRefRefusedBySingleClient(t *testing.T) {
	_, addr := startShard(t, 0, smallShard())
	cl, err := live.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if err := cl.Register(); err != nil {
		t.Fatal(err)
	}
	caller := liverpc.NewCaller(cl, liverpc.Config{})
	defer caller.Close()
	ref, err := cl.StageRef([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = caller.Fetch(liverpc.ByLocated(ref))
	if err == nil {
		t.Fatal("located payload resolved through a non-cluster client")
	}
}

// TestChainOverPool deploys the paper's nested-call chain with every
// hop holding its own pool session, via the DM-factory deployment.
func TestChainOverPool(t *testing.T) {
	const k = 2
	addrs := make([]string, k)
	srvs := make([]*live.Server, k)
	for i := 0; i < k; i++ {
		srvs[i], addrs[i] = startShard(t, uint32(i), smallShard())
	}
	var pools []*Client
	d, err := liverpc.DeployChainWith(3, func() (liverpc.DM, error) {
		p, err := Dial(Config{Shards: addrs})
		if err != nil {
			return nil, err
		}
		if err := p.Register(); err != nil {
			p.Close()
			return nil, err
		}
		pools = append(pools, p)
		return p, nil
	}, liverpc.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	payload := bytes.Repeat([]byte{3}, 32<<10)
	var want uint64
	for _, b := range payload {
		want += uint64(b)
	}
	for i := 0; i < 4; i++ {
		got, err := d.Client.Do(payload)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("chain aggregate = %d, want %d", got, want)
		}
	}
	checkAllInvariants(t, srvs)
}
