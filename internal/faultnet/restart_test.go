package faultnet

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// echoServe accepts connections on ln and echoes one byte per read until
// the listener dies.
func echoServe(ln net.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			defer c.Close()
			io.Copy(c, c)
		}()
	}
}

// TestRestartableCrashRestart pins the crash/restart lifecycle: a crash
// resets accepted connections and kills the accept loop; a restart
// re-listens on the same address and serves fresh dials.
func TestRestartableCrashRestart(t *testing.T) {
	r, ln, err := NewRestartable("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go echoServe(ln)

	dial := func() net.Conn {
		t.Helper()
		c, err := net.DialTimeout("tcp", r.Addr(), 2*time.Second)
		if err != nil {
			t.Fatalf("dial %s: %v", r.Addr(), err)
		}
		return c
	}
	roundTrip := func(c net.Conn) error {
		if _, err := c.Write([]byte{42}); err != nil {
			return err
		}
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		var b [1]byte
		_, err := io.ReadFull(c, b[:])
		return err
	}

	c := dial()
	defer c.Close()
	if err := roundTrip(c); err != nil {
		t.Fatalf("echo before crash: %v", err)
	}

	if _, err := r.Restart(); !errors.Is(err, ErrEndpointLive) {
		t.Fatalf("Restart of live endpoint = %v, want ErrEndpointLive", err)
	}

	r.Crash()
	r.Crash() // idempotent

	// The accepted connection was reset: the next round trip must fail.
	if err := roundTrip(c); err == nil {
		t.Fatal("connection survived Crash")
	}
	// New dials must not be served while crashed. A SYN may be accepted by
	// the OS backlog of nothing (the listener is closed), so the reliable
	// signal is that no echo comes back.
	if nc, err := net.DialTimeout("tcp", r.Addr(), 200*time.Millisecond); err == nil {
		nc.Close()
	}

	ln2, err := r.Restart()
	if err != nil {
		t.Fatal(err)
	}
	go echoServe(ln2)
	if got := ln2.Addr().String(); got != r.Addr() {
		t.Fatalf("restarted on %s, want %s", got, r.Addr())
	}

	c2 := dial()
	defer c2.Close()
	if err := roundTrip(c2); err != nil {
		t.Fatalf("echo after restart: %v", err)
	}

	r.Crash()
	if err := roundTrip(c2); err == nil {
		t.Fatal("connection survived second Crash")
	}
}
