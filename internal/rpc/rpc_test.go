package rpc

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/transport"
)

const (
	mEcho Method = iota + 1
	mUpper
	mFail
	mForward
)

type rig struct {
	eng *sim.Engine
	net *simnet.Network
}

func newRig(seed int64) *rig {
	eng := sim.NewEngine(seed)
	return &rig{eng: eng, net: simnet.New(eng, simnet.DefaultConfig())}
}

func (r *rig) node(name string) *Node {
	h := r.net.AddHost(name)
	return NewNode(h, 1, name, DefaultConfig())
}

func TestBasicCall(t *testing.T) {
	r := newRig(1)
	srv := r.node("srv")
	srv.Handle(mEcho, func(ctx *Ctx, body []byte) ([]byte, error) {
		return body, nil
	})
	srv.Start()
	cli := r.node("cli")
	cli.Start()
	var got []byte
	r.eng.Spawn("test", func(p *sim.Proc) {
		resp, err := cli.Call(p, srv.Addr(), mEcho, []byte("ping"))
		if err != nil {
			t.Errorf("Call: %v", err)
		}
		got = resp
	})
	r.eng.Run()
	r.eng.Shutdown()
	if string(got) != "ping" {
		t.Fatalf("resp %q", got)
	}
	if srv.Requests() != 1 || cli.Calls() != 1 {
		t.Fatalf("stats: served=%d calls=%d", srv.Requests(), cli.Calls())
	}
}

func TestMultipleMethods(t *testing.T) {
	r := newRig(1)
	srv := r.node("srv")
	srv.Handle(mEcho, func(ctx *Ctx, body []byte) ([]byte, error) { return body, nil })
	srv.Handle(mUpper, func(ctx *Ctx, body []byte) ([]byte, error) {
		return bytes.ToUpper(body), nil
	})
	srv.Start()
	cli := r.node("cli")
	cli.Start()
	r.eng.Spawn("test", func(p *sim.Proc) {
		a, _ := cli.Call(p, srv.Addr(), mEcho, []byte("ab"))
		b, _ := cli.Call(p, srv.Addr(), mUpper, []byte("ab"))
		if string(a) != "ab" || string(b) != "AB" {
			t.Errorf("a=%q b=%q", a, b)
		}
	})
	r.eng.Run()
	r.eng.Shutdown()
}

func TestUnknownMethod(t *testing.T) {
	r := newRig(1)
	srv := r.node("srv")
	srv.Start()
	cli := r.node("cli")
	cli.Start()
	r.eng.Spawn("test", func(p *sim.Proc) {
		_, err := cli.Call(p, srv.Addr(), 42, nil)
		var ae *AppError
		if !errors.As(err, &ae) || ae.Status != ErrNoSuchMethod.Status {
			t.Errorf("err = %v, want no-such-method", err)
		}
	})
	r.eng.Run()
	r.eng.Shutdown()
}

func TestHandlerErrorPropagates(t *testing.T) {
	r := newRig(1)
	srv := r.node("srv")
	srv.Handle(mFail, func(ctx *Ctx, body []byte) ([]byte, error) {
		return nil, &AppError{Status: 7, Msg: "nope"}
	})
	srv.Handle(mEcho, func(ctx *Ctx, body []byte) ([]byte, error) {
		return nil, errors.New("plain failure")
	})
	srv.Start()
	cli := r.node("cli")
	cli.Start()
	r.eng.Spawn("test", func(p *sim.Proc) {
		_, err := cli.Call(p, srv.Addr(), mFail, nil)
		var ae *AppError
		if !errors.As(err, &ae) || ae.Status != 7 || ae.Msg != "nope" {
			t.Errorf("AppError not propagated: %v", err)
		}
		_, err = cli.Call(p, srv.Addr(), mEcho, nil)
		if !errors.As(err, &ae) || ae.Status != 1 {
			t.Errorf("plain error not mapped to status 1: %v", err)
		}
	})
	r.eng.Run()
	r.eng.Shutdown()
}

func TestNestedCallsThroughChain(t *testing.T) {
	// cli -> mid -> srv: the classic nested RPC pattern (paper Fig 2).
	r := newRig(1)
	srv := r.node("srv")
	srv.Handle(mEcho, func(ctx *Ctx, body []byte) ([]byte, error) {
		return append(body, '!'), nil
	})
	srv.Start()
	mid := r.node("mid")
	mid.Handle(mForward, func(ctx *Ctx, body []byte) ([]byte, error) {
		return ctx.Node.Call(ctx.P, srv.Addr(), mEcho, body)
	})
	mid.Start()
	cli := r.node("cli")
	cli.Start()
	var got []byte
	r.eng.Spawn("test", func(p *sim.Proc) {
		resp, err := cli.Call(p, mid.Addr(), mForward, []byte("hop"))
		if err != nil {
			t.Errorf("Call: %v", err)
		}
		got = resp
	})
	r.eng.Run()
	r.eng.Shutdown()
	if string(got) != "hop!" {
		t.Fatalf("resp %q", got)
	}
}

func TestWorkerPoolParallelism(t *testing.T) {
	r := newRig(1)
	h := r.net.AddHost("srv")
	cfg := DefaultConfig()
	cfg.Workers = 4
	srv := NewNode(h, 1, "srv", cfg)
	srv.Handle(mEcho, func(ctx *Ctx, body []byte) ([]byte, error) {
		ctx.P.Sleep(100 * sim.Microsecond)
		return body, nil
	})
	srv.Start()
	cli := r.node("cli")
	cli.Start()
	var finish []sim.Time
	for i := 0; i < 4; i++ {
		r.eng.Spawn("caller", func(p *sim.Proc) {
			if _, err := cli.Call(p, srv.Addr(), mEcho, []byte("x")); err != nil {
				t.Errorf("Call: %v", err)
			}
			finish = append(finish, p.Now())
		})
	}
	r.eng.Run()
	r.eng.Shutdown()
	if len(finish) != 4 {
		t.Fatalf("finished %d", len(finish))
	}
	// With 4 workers all complete within ~one service time, not 4x.
	last := finish[len(finish)-1]
	if last > 150*sim.Microsecond {
		t.Fatalf("last completion %dns suggests serial handling", last)
	}
}

func TestSingleWorkerSerializes(t *testing.T) {
	r := newRig(1)
	h := r.net.AddHost("srv")
	cfg := DefaultConfig()
	cfg.Workers = 1
	srv := NewNode(h, 1, "srv", cfg)
	srv.Handle(mEcho, func(ctx *Ctx, body []byte) ([]byte, error) {
		ctx.P.Sleep(100 * sim.Microsecond)
		return body, nil
	})
	srv.Start()
	cli := r.node("cli")
	cli.Start()
	var finish []sim.Time
	for i := 0; i < 3; i++ {
		r.eng.Spawn("caller", func(p *sim.Proc) {
			if _, err := cli.Call(p, srv.Addr(), mEcho, []byte("x")); err != nil {
				t.Errorf("Call: %v", err)
			}
			finish = append(finish, p.Now())
		})
	}
	r.eng.Run()
	r.eng.Shutdown()
	last := finish[len(finish)-1]
	if last < 300*sim.Microsecond {
		t.Fatalf("last completion %dns; single worker should serialize to >= 300µs", last)
	}
}

func TestSessionReuse(t *testing.T) {
	r := newRig(1)
	srv := r.node("srv")
	srv.Handle(mEcho, func(ctx *Ctx, body []byte) ([]byte, error) { return body, nil })
	srv.Start()
	cli := r.node("cli")
	cli.Start()
	r.eng.Spawn("test", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if _, err := cli.Call(p, srv.Addr(), mEcho, []byte("x")); err != nil {
				t.Errorf("call %d: %v", i, err)
			}
		}
	})
	r.eng.Run()
	r.eng.Shutdown()
	if len(cli.sessions) != 1 {
		t.Fatalf("%d sessions created, want 1 (reuse)", len(cli.sessions))
	}
}

func TestDuplicateHandlerPanics(t *testing.T) {
	r := newRig(1)
	srv := r.node("srv")
	srv.Handle(mEcho, func(ctx *Ctx, body []byte) ([]byte, error) { return body, nil })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Handle did not panic")
		}
	}()
	srv.Handle(mEcho, func(ctx *Ctx, body []byte) ([]byte, error) { return body, nil })
}

func TestHandleAfterStartPanics(t *testing.T) {
	r := newRig(1)
	srv := r.node("srv")
	srv.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("Handle after Start did not panic")
		}
	}()
	srv.Handle(mEcho, func(ctx *Ctx, body []byte) ([]byte, error) { return body, nil })
}

func TestEncDecRoundTrip(t *testing.T) {
	e := NewEnc(64)
	e.U8(7).U16(300).U32(70000).U64(1 << 40).I64(-5).Str("hello").Blob([]byte{1, 2, 3}).Raw([]byte("tail"))
	d := NewDec(e.Bytes())
	if d.U8() != 7 || d.U16() != 300 || d.U32() != 70000 || d.U64() != 1<<40 || d.I64() != -5 {
		t.Fatal("numeric round trip failed")
	}
	if d.Str() != "hello" {
		t.Fatal("string round trip failed")
	}
	if !bytes.Equal(d.Blob(), []byte{1, 2, 3}) {
		t.Fatal("blob round trip failed")
	}
	if !bytes.Equal(d.Remaining(), []byte("tail")) {
		t.Fatal("raw tail failed")
	}
	if d.Err() != nil {
		t.Fatalf("unexpected err %v", d.Err())
	}
}

func TestDecShortMessageSticky(t *testing.T) {
	d := NewDec([]byte{1})
	_ = d.U32()
	if d.Err() != ErrShortMessage {
		t.Fatalf("err = %v", d.Err())
	}
	// Sticky: further reads keep the error and return zeros.
	if d.U64() != 0 || d.Err() != ErrShortMessage {
		t.Fatal("error not sticky")
	}
}

func TestWirePropertyRoundTrip(t *testing.T) {
	prop := func(a uint8, b uint16, c uint32, d uint64, s string, blob []byte) bool {
		e := NewEnc(0)
		e.U8(a).U16(b).U32(c).U64(d).Str(s).Blob(blob)
		dec := NewDec(e.Bytes())
		return dec.U8() == a && dec.U16() == b && dec.U32() == c && dec.U64() == d &&
			dec.Str() == s && bytes.Equal(dec.Blob(), blob) && dec.Err() == nil &&
			len(dec.Remaining()) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCallTimeoutSurfaces(t *testing.T) {
	r := newRig(1)
	h := r.net.AddHost("cli")
	cfg := DefaultConfig()
	cfg.Transport.RTO = 5 * sim.Microsecond
	cfg.Transport.MaxRetries = 1
	cli := NewNode(h, 1, "cli", cfg)
	cli.Start()
	dead := r.net.AddHost("dead") // host exists, port never bound
	r.eng.Spawn("test", func(p *sim.Proc) {
		_, err := cli.Call(p, dead.Addr(9), mEcho, nil)
		if !errors.Is(err, transport.ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
	})
	r.eng.Run()
	r.eng.Shutdown()
}
