package transport

import (
	"testing"
)

// FuzzDecodeHeader hardens the packet header decoder against arbitrary
// bytes: it must never panic, and every accepted header must re-encode to
// the same bytes.
func FuzzDecodeHeader(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, headerSize-1))
	f.Add(make([]byte, headerSize))
	good := make([]byte, headerSize)
	header{kind: kindRequest, sessionID: 7, reqID: 9, pktIdx: 1, numPkts: 2, msgSize: 5000}.encode(good)
	f.Add(good)
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := decodeHeader(data)
		if err != nil {
			return
		}
		out := make([]byte, headerSize)
		h.encode(out)
		for i := 0; i < headerSize; i++ {
			if out[i] != data[i] {
				t.Fatalf("re-encode mismatch at byte %d", i)
			}
		}
	})
}

// FuzzReassembly feeds arbitrary packet sequences to the reassembler; it
// must never panic or claim completion without all packets.
func FuzzReassembly(f *testing.F) {
	f.Add(uint16(0), uint16(1), uint32(10), []byte("0123456789"))
	f.Add(uint16(1), uint16(3), uint32(100), make([]byte, 40))
	f.Fuzz(func(t *testing.T, idx, num uint16, size uint32, body []byte) {
		if num == 0 || size > 1<<20 {
			return
		}
		h := header{pktIdx: idx, numPkts: num, msgSize: size}
		ra := newReassembly(h)
		if int(idx) < len(ra.have) && len(body) <= int(size) {
			ra.add(h, body)
		}
		if ra.complete() && num > 1 && ra.got != int(num) {
			t.Fatal("complete without all packets")
		}
	})
}
