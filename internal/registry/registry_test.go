package registry

import (
	"fmt"
	"sync"
	"testing"
)

func entry(key uint64, epoch uint64, reps ...uint32) Entry {
	return Entry{Key: key, Size: 64, Epoch: epoch, Replicas: reps}
}

func TestPutEpochWins(t *testing.T) {
	r := New()
	if !r.Put(entry(1, 1, 0, 1)) {
		t.Fatal("first put rejected")
	}
	if r.Put(entry(1, 1, 2)) {
		t.Fatal("equal-epoch put should be idempotent (first writer stays)")
	}
	if e, _ := r.Get(1); len(e.Replicas) != 2 {
		t.Fatalf("equal-epoch put overwrote: %+v", e)
	}
	if r.Put(entry(1, 0, 2)) {
		t.Fatal("lower-epoch put accepted")
	}
	if !r.Put(entry(1, 2, 2)) {
		t.Fatal("higher-epoch put rejected")
	}
	e, ok := r.Get(1)
	if !ok || e.Epoch != 2 || len(e.Replicas) != 1 || e.Replicas[0] != 2 {
		t.Fatalf("higher-epoch put not applied: %+v ok=%v", e, ok)
	}
}

func TestPutRejectsInvalid(t *testing.T) {
	r := New()
	if r.Put(Entry{Key: 0, Epoch: 1, Replicas: []uint32{0}}) {
		t.Fatal("zero key accepted")
	}
	if r.Put(Entry{Key: 1, Epoch: 1}) {
		t.Fatal("empty replica set accepted")
	}
}

func TestGetCopies(t *testing.T) {
	r := New()
	r.Put(entry(1, 1, 0, 1))
	e, _ := r.Get(1)
	e.Replicas[0] = 99
	e2, _ := r.Get(1)
	if e2.Replicas[0] != 0 {
		t.Fatal("Get aliased the stored replica slice")
	}
}

func TestDeleteTombstones(t *testing.T) {
	r := New()
	r.Put(entry(1, 3, 0))
	if !r.Delete(1, 3) {
		t.Fatal("delete of live entry reported nothing removed")
	}
	if _, ok := r.Get(1); ok {
		t.Fatal("entry survived delete")
	}
	// A stale sync page (epoch <= tombstone) must not resurrect the key.
	if r.Put(entry(1, 3, 0)) {
		t.Fatal("tombstoned key resurrected at equal epoch")
	}
	if r.Put(entry(1, 2, 0)) {
		t.Fatal("tombstoned key resurrected at lower epoch")
	}
	// A genuinely newer placement (re-staged key) wins through.
	if !r.Put(entry(1, 4, 1)) {
		t.Fatal("newer epoch blocked by tombstone")
	}
	if e, ok := r.Get(1); !ok || e.Epoch != 4 {
		t.Fatalf("re-put entry wrong: %+v ok=%v", e, ok)
	}
}

func TestDeleteStaleEpochIgnored(t *testing.T) {
	r := New()
	r.Put(entry(1, 5, 0))
	if r.Delete(1, 4) {
		t.Fatal("stale delete removed a newer entry")
	}
	if _, ok := r.Get(1); !ok {
		t.Fatal("entry lost to stale delete")
	}
}

func TestTombstoneCap(t *testing.T) {
	r := New()
	r.maxTombstones = 8
	for k := uint64(1); k <= 64; k++ {
		r.Put(entry(k, k, 0))
		r.Delete(k, k)
	}
	if len(r.tombs) > r.maxTombstones+1 {
		t.Fatalf("tombstone set unbounded: %d", len(r.tombs))
	}
	// The newest tombstone must survive every shed.
	if _, ok := r.tombs[64]; !ok {
		t.Fatal("newest tombstone shed")
	}
}

func TestPage(t *testing.T) {
	r := New()
	for k := uint64(1); k <= 10; k++ {
		r.Put(entry(k, 1, uint32(k%3)))
	}
	var got []uint64
	after := uint64(0)
	for {
		page := r.Page(after, 3)
		for i, e := range page {
			if i > 0 && page[i-1].Key >= e.Key {
				t.Fatalf("page out of order: %v", page)
			}
			got = append(got, e.Key)
		}
		if len(page) < 3 {
			break
		}
		after = page[len(page)-1].Key
	}
	if len(got) != 10 {
		t.Fatalf("paged %d entries, want 10: %v", len(got), got)
	}
	for i, k := range got {
		if k != uint64(i+1) {
			t.Fatalf("page sequence wrong at %d: %v", i, got)
		}
	}
	if r.Page(0, 0) != nil {
		t.Fatal("limit 0 returned entries")
	}
}

func TestConcurrent(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := uint64(i%50 + 1)
				r.Put(entry(k, uint64(g*200+i+1), uint32(g)))
				r.Get(k)
				if i%17 == 0 {
					r.Delete(k, uint64(g*200+i+1))
				}
				r.Page(0, 16)
			}
		}(g)
	}
	wg.Wait()
	if n := r.Len(); n < 0 || n > 50 {
		t.Fatalf("unexpected entry count %d", n)
	}
}

func BenchmarkRegistryPut(b *testing.B) {
	r := New()
	reps := []uint32{0, 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Put(Entry{Key: uint64(i%4096 + 1), Size: 64, Epoch: uint64(i + 1), Replicas: reps})
	}
	_ = fmt.Sprint(r.Len())
}
