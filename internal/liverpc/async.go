package liverpc

import (
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/dmwire"
	"repro/internal/live"
)

// Asynchronous service calls: CallAsync puts the whole request on the
// wire immediately and returns a future, so one endpoint can pipeline
// several calls over its multiplexed connection — the stage-then-call
// sequence of a chain hop overlaps with the previous request's round
// trip, and the transport's coalescing writer turns the burst into few
// vectored writes.

// PendingCall is one in-flight asynchronous service call. Wait must be
// called exactly once; it is not safe for concurrent use.
type PendingCall struct {
	p   *live.Pending
	err error
}

// Wait blocks for the call's result list, with the same retry/dedup and
// copy semantics as the synchronous CallOpts.
func (pc *PendingCall) Wait() ([]Payload, error) {
	if pc.err != nil {
		return nil, pc.err
	}
	var out []Payload
	err := pc.p.Wait(func(resp []byte) error {
		renv, err := dmwire.UnmarshalReturnEnvelope(resp)
		if err != nil {
			return err
		}
		// The response buffer is pooled and recycled after consume
		// returns, so inline results must be copied out.
		out = payloadsFromWire(renv.Args, true)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CallAsync starts method at addr with args and default options,
// returning a future for the result. Inline arg bytes must stay valid
// and unmodified until Wait returns (they are re-sent on retries).
func (c *Caller) CallAsync(addr, method string, args ...Payload) *PendingCall {
	return c.CallAsyncOpts(addr, method, CallOpts{}, args...)
}

// CallAsyncOpts is CallAsync with explicit options (see CallOpts).
func (c *Caller) CallAsyncOpts(addr, method string, opts CallOpts, args ...Payload) *PendingCall {
	env := dmwire.CallEnvelope{
		Method:  method,
		TraceID: rand.Uint64(),
		Args:    payloadsToWire(args),
	}
	return c.issueAsync(addr, env, opts)
}

// issueAsync ships one envelope and returns the future; the async
// counterpart of issue.
func (c *Caller) issueAsync(addr string, env dmwire.CallEnvelope, opts CallOpts) *PendingCall {
	lopts := c.prepare(&env, opts)
	return &PendingCall{p: c.node.CallAsync(addr, MethodCall, env.MarshalHdr(), env.Bulk(), lopts)}
}

// CallAsync issues a nested asynchronous call from a handler, with the
// same trace/hop/deadline propagation as Ctx.Call. A handler can fan a
// request out to several downstream services and collect the futures.
func (c *Ctx) CallAsync(addr, method string, args ...Payload) *PendingCall {
	return c.CallAsyncOpts(addr, method, CallOpts{}, args...)
}

// CallAsyncOpts is Ctx.CallAsync with explicit options; opts.Timeout is
// still capped by the propagated remaining budget. An already-exhausted
// budget yields a future whose Wait fails with live.ErrDeadline without
// touching the wire.
func (c *Ctx) CallAsyncOpts(addr, method string, opts CallOpts, args ...Payload) *PendingCall {
	if !c.Deadline.IsZero() {
		rem := time.Until(c.Deadline)
		if rem <= 0 {
			return &PendingCall{err: fmt.Errorf("liverpc: %s: %w", method, live.ErrDeadline)}
		}
		if opts.Timeout <= 0 || rem < opts.Timeout {
			opts.Timeout = rem
		}
	}
	env := dmwire.CallEnvelope{
		Method:  method,
		TraceID: c.TraceID,
		Hop:     c.Hop + 1,
		Args:    payloadsToWire(args),
	}
	return c.Svc.caller.issueAsync(addr, env, opts)
}
