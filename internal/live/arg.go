package live

import (
	"repro/internal/core"
	"repro/internal/dm"
)

// This file mirrors internal/core's size-aware argument layer for the live
// backend, reusing core.Arg (a pure value type) so refs marshal
// identically in both worlds: applications embed Args in their own RPC
// messages and only the ~20-byte wire form crosses the application
// protocol for large payloads.

// DefaultInlineThreshold matches core.DefaultInlineThreshold.
const DefaultInlineThreshold = core.DefaultInlineThreshold

// MakeArg stages data size-aware: payloads at or below threshold inline
// (threshold 0 means DefaultInlineThreshold; negative means always by
// reference); larger payloads are staged into DM in one round trip.
func (cl *Client) MakeArg(data []byte, threshold int) (core.Arg, error) {
	switch {
	case threshold == 0:
		threshold = DefaultInlineThreshold
	case threshold < 0:
		threshold = -1
	}
	if threshold >= 0 && len(data) <= threshold {
		return core.InlineArg(data), nil
	}
	ref, err := cl.StageRef(data)
	if err != nil {
		return core.Arg{}, err
	}
	return core.RefArg(ref), nil
}

// Data is a consumer's opened view of an Arg over the live backend:
// inline bytes, or a ref read through ReadRef with a lazy private mapping
// established on first write (copy-on-write underneath).
type Data struct {
	cl     *Client
	isRef  bool
	inline []byte
	ref    dm.Ref
	mapped bool
	addr   dm.RemoteAddr
	size   int64
}

// Open materializes an argument for access; opening a ref moves no data.
func (cl *Client) Open(a core.Arg) (*Data, error) {
	if !a.IsRef() {
		// Inline args get a private copy, matching pass-by-value
		// isolation.
		buf := make([]byte, a.Size())
		copy(buf, a.Inline())
		return &Data{cl: cl, inline: buf, size: a.Size()}, nil
	}
	return &Data{cl: cl, isRef: true, ref: a.Ref(), size: a.Ref().Size}, nil
}

// Size returns the payload length.
func (d *Data) Size() int64 { return d.size }

// Read copies len(dst) bytes from offset off.
func (d *Data) Read(off int64, dst []byte) error {
	if off < 0 || off+int64(len(dst)) > d.size {
		return dm.ErrOutOfRange
	}
	if !d.isRef {
		copy(dst, d.inline[off:])
		return nil
	}
	if d.mapped {
		return d.cl.Read(d.addr.Add(off), dst)
	}
	return d.cl.ReadRef(d.ref, off, dst)
}

// Write stores src at offset off; the first write to a ref maps it so
// copy-on-write isolates this consumer.
func (d *Data) Write(off int64, src []byte) error {
	if off < 0 || off+int64(len(src)) > d.size {
		return dm.ErrOutOfRange
	}
	if !d.isRef {
		copy(d.inline[off:], src)
		return nil
	}
	if !d.mapped {
		addr, err := d.cl.MapRef(d.ref)
		if err != nil {
			return err
		}
		d.addr = addr
		d.mapped = true
	}
	return d.cl.Write(d.addr.Add(off), src)
}

// Bytes returns the whole payload. For inline args it returns the Data's
// own buffer — already a private copy made by Open — rather than copying
// again; the caller may read it freely but must treat it as shared with
// this Data (subsequent d.Write calls mutate it). Ref args read through
// the appropriate view in a single pass into one fresh buffer.
func (d *Data) Bytes() ([]byte, error) {
	if !d.isRef {
		return d.inline, nil
	}
	out := make([]byte, d.size)
	if err := d.Read(0, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Close releases this consumer's mapping, if any.
func (d *Data) Close() error {
	if !d.mapped {
		return nil
	}
	d.mapped = false
	return d.cl.Free(d.addr)
}

// Release drops a ref argument's page hold (final consumer).
func (cl *Client) Release(a core.Arg) error {
	if !a.IsRef() {
		return nil
	}
	return cl.FreeRef(a.Ref())
}
