package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if e.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", e.Now())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	e.At(30, func() { got = append(got, e.Now()) })
	e.At(10, func() { got = append(got, e.Now()) })
	e.At(20, func() { got = append(got, e.Now()) })
	e.Run()
	want := []Time{10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at t=%d, want %d", i, got[i], want[i])
		}
	}
}

func TestSameInstantEventsFireInScheduleOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("order %v, want ascending", got)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.At(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.Run()
	if at != 150 {
		t.Fatalf("fired at %d, want 150", at)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(10, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(20, func() { fired = true })
	e.At(10, func() { ev.Cancel() })
	e.Run()
	if fired {
		t.Fatal("event canceled at t=10 still fired at t=20")
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.At(10, func() { fired++ })
	e.At(100, func() { fired++ })
	e.RunUntil(50)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 50 {
		t.Fatalf("Now() = %d, want 50", e.Now())
	}
	e.RunUntil(200)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 after second RunUntil", fired)
	}
}

func TestSchedulingInPastClampsToNow(t *testing.T) {
	e := NewEngine(1)
	var at Time = -1
	e.At(100, func() {
		e.At(10, func() { at = e.Now() })
	})
	e.Run()
	if at != 100 {
		t.Fatalf("past event fired at %d, want clamped to 100", at)
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine(1)
	var wake Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(42)
		wake = p.Now()
	})
	e.Run()
	if wake != 42 {
		t.Fatalf("woke at %d, want 42", wake)
	}
}

func TestProcSleepNegativeIsZero(t *testing.T) {
	e := NewEngine(1)
	done := false
	e.Spawn("p", func(p *Proc) {
		p.Sleep(-5)
		if p.Now() != 0 {
			t.Errorf("Now() = %d after negative sleep, want 0", p.Now())
		}
		done = true
	})
	e.Run()
	if !done {
		t.Fatal("proc never ran")
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine(7)
		var log []string
		e.Spawn("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(10)
				log = append(log, "a")
			}
		})
		e.Spawn("b", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(15)
				log = append(log, "b")
			}
		})
		e.Run()
		return log
	}
	first := run()
	for i := 0; i < 5; i++ {
		again := run()
		if len(again) != len(first) {
			t.Fatalf("run %d produced %d entries, want %d", i, len(again), len(first))
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("run %d diverged at %d: %v vs %v", i, j, first, again)
			}
		}
	}
}

func TestChanSendRecv(t *testing.T) {
	e := NewEngine(1)
	ch := NewChan[int](e)
	var got []int
	e.Spawn("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, ch.Recv(p))
		}
	})
	e.Spawn("send", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(10)
			ch.Send(i)
		}
	})
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
}

func TestChanRecvBlocksUntilSend(t *testing.T) {
	e := NewEngine(1)
	ch := NewChan[string](e)
	var recvAt Time
	e.Spawn("recv", func(p *Proc) {
		ch.Recv(p)
		recvAt = p.Now()
	})
	e.At(77, func() { ch.Send("x") })
	e.Run()
	if recvAt != 77 {
		t.Fatalf("recv completed at %d, want 77", recvAt)
	}
}

func TestChanFIFOAcrossWaiters(t *testing.T) {
	e := NewEngine(1)
	ch := NewChan[int](e)
	var order []string
	for _, name := range []string{"w0", "w1", "w2"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			ch.Recv(p)
			order = append(order, name)
		})
	}
	e.At(10, func() { ch.Send(1); ch.Send(2); ch.Send(3) })
	e.Run()
	if len(order) != 3 || order[0] != "w0" || order[1] != "w1" || order[2] != "w2" {
		t.Fatalf("waiters served %v, want FIFO [w0 w1 w2]", order)
	}
}

func TestChanTryRecv(t *testing.T) {
	e := NewEngine(1)
	ch := NewChan[int](e)
	if _, ok := ch.TryRecv(); ok {
		t.Fatal("TryRecv on empty chan returned ok")
	}
	ch.Send(9)
	v, ok := ch.TryRecv()
	if !ok || v != 9 {
		t.Fatalf("TryRecv = %d,%v want 9,true", v, ok)
	}
	if ch.Len() != 0 {
		t.Fatalf("Len = %d, want 0", ch.Len())
	}
}

func TestResourceSerializesAtCapacity(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "cpu", 1)
	var done []Time
	for i := 0; i < 3; i++ {
		e.Spawn("worker", func(p *Proc) {
			r.Use(p, 10)
			done = append(done, p.Now())
		})
	}
	e.Run()
	want := []Time{10, 20, 30}
	if len(done) != 3 {
		t.Fatalf("completions %v, want 3", done)
	}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions %v, want %v", done, want)
		}
	}
}

func TestResourceParallelismAtHigherCapacity(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "cpu", 2)
	var done []Time
	for i := 0; i < 4; i++ {
		e.Spawn("worker", func(p *Proc) {
			r.Use(p, 10)
			done = append(done, p.Now())
		})
	}
	e.Run()
	// Two run [0,10], two run [10,20].
	want := []Time{10, 10, 20, 20}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions %v, want %v", done, want)
		}
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "dev", 1)
	if !r.TryAcquire() {
		t.Fatal("TryAcquire on idle resource failed")
	}
	if r.TryAcquire() {
		t.Fatal("TryAcquire on busy resource succeeded")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestResourceBusyTime(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "dev", 1)
	e.Spawn("w", func(p *Proc) {
		r.Use(p, 30)
		p.Sleep(70)
	})
	e.Run()
	if r.BusyTime() != 30 {
		t.Fatalf("BusyTime = %d, want 30", r.BusyTime())
	}
}

func TestReleaseIdleResourcePanics(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "dev", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Release on idle resource did not panic")
		}
	}()
	r.Release()
}

// TestResourceNoBargingStarvation is a regression test: N clients looping
// acquire-hold-release on a resource with capacity < N must all make
// progress. With barging (a releaser re-acquiring before the woken waiter
// runs), the excess clients starve forever.
func TestResourceNoBargingStarvation(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "window", 8)
	const clients = 16
	counts := make([]int, clients)
	for i := 0; i < clients; i++ {
		i := i
		e.Spawn("client", func(p *Proc) {
			for p.Now() < 100*Microsecond {
				r.Acquire(p)
				p.Sleep(100)
				r.Release()
				counts[i]++
			}
		})
	}
	e.RunUntil(100 * Microsecond)
	e.Shutdown()
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min == 0 {
		t.Fatalf("starvation: counts %v", counts)
	}
	if min*2 < max {
		t.Fatalf("unfair service: counts %v", counts)
	}
}

// TestChanNoRecvStarvation: receivers in tight Recv loops must not starve
// parked receivers.
func TestChanNoRecvStarvation(t *testing.T) {
	e := NewEngine(1)
	ch := NewChan[int](e)
	const receivers = 4
	counts := make([]int, receivers)
	for i := 0; i < receivers; i++ {
		i := i
		e.Spawn("recv", func(p *Proc) {
			for {
				ch.Recv(p)
				counts[i]++
				// No sleep: a tight loop that would barge if Recv allowed.
			}
		})
	}
	e.Spawn("send", func(p *Proc) {
		for j := 0; j < 400; j++ {
			ch.Send(j)
			p.Sleep(10)
		}
	})
	e.Run()
	e.Shutdown()
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("receiver %d starved: counts %v", i, counts)
		}
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	woken := 0
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) {
			c.Wait(p)
			woken++
		})
	}
	e.At(10, func() { c.Signal() })
	e.Run()
	if woken != 1 {
		t.Fatalf("woken = %d, want 1", woken)
	}
	e.Shutdown()
}

func TestCondBroadcastWakesAll(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	woken := 0
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) {
			c.Wait(p)
			woken++
		})
	}
	e.At(10, func() { c.Broadcast() })
	e.Run()
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine(1)
	wg := NewWaitGroup(e)
	wg.Add(3)
	var doneAt Time = -1
	e.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	for i := 1; i <= 3; i++ {
		d := Time(i * 10)
		e.Spawn("worker", func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	e.Run()
	if doneAt != 30 {
		t.Fatalf("waiter finished at %d, want 30", doneAt)
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	e := NewEngine(1)
	wg := NewWaitGroup(e)
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter did not panic")
		}
	}()
	wg.Done()
}

func TestPipeChargesTransferTime(t *testing.T) {
	e := NewEngine(1)
	// 1 GB/s => 1 byte per ns.
	pp := NewPipe(e, "link", 1_000_000_000)
	var done Time
	e.Spawn("tx", func(p *Proc) {
		pp.Transfer(p, 4096)
		done = p.Now()
	})
	e.Run()
	if done != 4096 {
		t.Fatalf("transfer finished at %d, want 4096", done)
	}
	if pp.BytesMoved() != 4096 {
		t.Fatalf("BytesMoved = %d, want 4096", pp.BytesMoved())
	}
}

func TestPipeSerializesTransfers(t *testing.T) {
	e := NewEngine(1)
	pp := NewPipe(e, "link", 1_000_000_000)
	var done []Time
	for i := 0; i < 2; i++ {
		e.Spawn("tx", func(p *Proc) {
			pp.Transfer(p, 1000)
			done = append(done, p.Now())
		})
	}
	e.Run()
	if done[0] != 1000 || done[1] != 2000 {
		t.Fatalf("completions %v, want [1000 2000]", done)
	}
}

func TestPipeZeroSizeIsFree(t *testing.T) {
	e := NewEngine(1)
	pp := NewPipe(e, "link", 1000)
	e.Spawn("tx", func(p *Proc) {
		pp.Transfer(p, 0)
		if p.Now() != 0 {
			t.Errorf("zero transfer advanced clock to %d", p.Now())
		}
	})
	e.Run()
}

func TestShutdownUnblocksParkedProcs(t *testing.T) {
	e := NewEngine(1)
	ch := NewChan[int](e)
	started := 0
	for i := 0; i < 5; i++ {
		e.Spawn("stuck", func(p *Proc) {
			started++
			ch.Recv(p) // never satisfied
			t.Error("proc resumed past Recv after shutdown")
		})
	}
	e.Run()
	if started != 5 {
		t.Fatalf("started = %d, want 5", started)
	}
	e.Shutdown()
	if len(e.procs) != 0 {
		t.Fatalf("%d procs remain after Shutdown", len(e.procs))
	}
}

func TestShutdownKillsNeverStartedProcs(t *testing.T) {
	e := NewEngine(1)
	// Spawn but never Run, so the start event never fires.
	e.Spawn("never", func(p *Proc) {
		t.Error("proc body ran")
	})
	e.Shutdown()
	if len(e.procs) != 0 {
		t.Fatalf("%d procs remain after Shutdown", len(e.procs))
	}
}

func TestUseAfterShutdown(t *testing.T) {
	e := NewEngine(1)
	e.Shutdown()
	// Spawn after Shutdown is a programming error and panics loudly.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Spawn after Shutdown did not panic")
			}
		}()
		e.Spawn("late", func(p *Proc) {})
	}()
	// At after Shutdown is inert: killed procs unwind through deferred
	// cleanup (Release and friends) that schedules wakeups.
	ev := e.At(5, func() { t.Error("event on closed engine fired") })
	if ev == nil {
		t.Fatal("At returned nil")
	}
	ev.Cancel() // must be safe
}

// TestShutdownWithHeldResources: procs killed while holding resources
// unwind through deferred Releases without wedging Shutdown.
func TestShutdownWithHeldResources(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "dev", 1)
	ch := NewChan[int](e)
	for i := 0; i < 3; i++ {
		e.Spawn("holder", func(p *Proc) {
			r.Acquire(p)
			defer r.Release()
			ch.Recv(p) // parks forever
		})
	}
	e.Run()
	e.Shutdown() // must not panic or deadlock
	if len(e.procs) != 0 {
		t.Fatalf("%d procs remain", len(e.procs))
	}
}

func TestDeterministicRand(t *testing.T) {
	seq := func(seed int64) []int64 {
		e := NewEngine(seed)
		out := make([]int64, 8)
		for i := range out {
			out[i] = e.Rand().Int63()
		}
		return out
	}
	a, b := seq(42), seq(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	c := seq(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

// TestHeapOrderingProperty checks via testing/quick that arbitrary event
// times always fire in nondecreasing time order with stable ties.
func TestHeapOrderingProperty(t *testing.T) {
	prop := func(times []uint16) bool {
		e := NewEngine(1)
		type fired struct {
			t   Time
			seq int
		}
		var got []fired
		for i, tm := range times {
			i, tm := i, Time(tm)
			e.At(tm, func() { got = append(got, fired{tm, i}) })
		}
		e.Run()
		if len(got) != len(times) {
			return false
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool {
			if got[i].t != got[j].t {
				return got[i].t < got[j].t
			}
			return got[i].seq < got[j].seq
		}) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// TestResourceInvariantProperty: random acquire/release sequences never let
// inUse exceed capacity or go negative, and all waiters eventually finish
// when holds are finite.
func TestResourceInvariantProperty(t *testing.T) {
	prop := func(seed int64, capRaw uint8, nRaw uint8) bool {
		capacity := int(capRaw%4) + 1
		n := int(nRaw%16) + 1
		e := NewEngine(seed)
		r := NewResource(e, "r", capacity)
		finished := 0
		violated := false
		for i := 0; i < n; i++ {
			hold := Time(e.Rand().Intn(20) + 1)
			start := Time(e.Rand().Intn(50))
			e.At(start, func() {
				e.Spawn("w", func(p *Proc) {
					r.Acquire(p)
					if r.InUse() > capacity || r.InUse() < 1 {
						violated = true
					}
					p.Sleep(hold)
					r.Release()
					finished++
				})
			})
		}
		e.Run()
		return !violated && finished == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEventScheduling(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
}

func BenchmarkProcSleepSwitch(b *testing.B) {
	e := NewEngine(1)
	done := make(chan struct{})
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
		close(done)
	})
	b.ResetTimer()
	e.Run()
	<-done
}
