package pool

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dm"
	"repro/internal/live"
)

// TestChaosJoinShardRebalance is the live-migration gauntlet, run under
// -race in make check: a loaded K=3 R=2 cluster (registry handoff on)
// gains a fourth shard mid-burst via AddShard, and the rebalancer must
//
//   - converge remapped refs onto their ring-successor placement: the
//     off-placement audit returns to zero and the newcomer holds copies,
//   - reclaim surplus copies down to exactly R per ref (the repair-only
//     model leaked these), with the migration counters recording it,
//   - lose no data: every ref stays readable byte-identical throughout
//     the migration window (reads fail over across old and new
//     locations), and
//   - hold D6/D8 conservation on every shard, newcomer included, after
//     everything is freed.
func TestChaosJoinShardRebalance(t *testing.T) {
	const leaseTTL = 2 * time.Second
	scfg := live.ServerConfig{NumPages: 1024, PageSize: 4096, LeaseTTL: leaseTTL}
	pcfg := Config{
		UnhealthyAfter:  2,
		RejoinPoll:      100 * time.Millisecond,
		ReplicaFactor:   2,
		RepairInterval:  100 * time.Millisecond,
		RegistryHandoff: true,
	}
	pcfg.Client.HeartbeatInterval = 50 * time.Millisecond
	pcfg.Client.Net.CallTimeout = 500 * time.Millisecond
	pcfg.Client.Net.AttemptTimeout = 100 * time.Millisecond
	pcfg.Client.Net.DialTimeout = 100 * time.Millisecond
	srvs, p := startCluster(t, 3, scfg, pcfg)

	bodyOf := func(i int) []byte { return bytes.Repeat([]byte{byte(i%251 + 1)}, 4096) }
	var seeded []dm.Ref
	for i := 0; i < 32; i++ {
		ref, err := p.StageRef(bodyOf(i))
		if err != nil {
			t.Fatal(err)
		}
		seeded = append(seeded, ref)
	}

	// Concurrent stage/read burst across the join: every op must keep
	// succeeding while the rebalance drains.
	var stop atomic.Bool
	var burstMu sync.Mutex
	var burst []dm.Ref
	var opFails atomic.Int64
	var firstErr error
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				ref, err := p.StageRef(bodyOf(100 + g))
				if err != nil {
					opFails.Add(1)
					burstMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					burstMu.Unlock()
					continue
				}
				// Read our own ref back mid-migration.
				got := make([]byte, ref.Size)
				if err := p.ReadRef(ref, 0, got); err != nil || !bytes.Equal(got, bodyOf(100+g)) {
					opFails.Add(1)
					burstMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					burstMu.Unlock()
				}
				burstMu.Lock()
				keep := len(burst) < 48
				if keep {
					burst = append(burst, ref)
				}
				burstMu.Unlock()
				if !keep {
					if err := p.FreeRef(ref); err != nil {
						opFails.Add(1)
					}
				}
			}
		}(g)
	}

	time.Sleep(100 * time.Millisecond) // mid-burst

	// The newcomer: a fresh server announcing shard 3, admitted live.
	srv3, addr3 := startShard(t, 3, scfg)
	id, err := p.AddShard(addr3)
	if err != nil {
		t.Fatal(err)
	}
	if id != 3 {
		t.Fatalf("joined as shard %d, want 3", id)
	}
	if p.Shards() != 4 {
		t.Fatalf("cluster size %d after join", p.Shards())
	}
	srvs = append(srvs, srv3)

	time.Sleep(300 * time.Millisecond) // let migration overlap the burst
	stop.Store(true)
	wg.Wait()
	if n := opFails.Load(); n != 0 {
		t.Fatalf("%d ops failed across the join (first: %v)", n, firstErr)
	}

	// Migration convergence: every tracked ref sits on exactly its ring
	// successors, nothing under-replicated, and the newcomer took load.
	waitFor(t, 15*time.Second, "placement convergence after join", func() bool {
		total, off := p.AuditPlacement()
		return total > 0 && off == 0 && p.UnderReplicated() == 0 && srv3.LiveRefs() > 0
	})
	if p.MigratedRefs() == 0 {
		t.Fatal("no refs were migrated despite a join-driven remap")
	}
	if p.ReclaimedReplicas() == 0 {
		t.Fatal("no surplus replicas were reclaimed")
	}
	if p.MigratedBytes() == 0 {
		t.Fatal("migration moved refs but recorded no bytes")
	}

	// Surplus reclaimed to exactly R: total live copies across the
	// cluster equal R x tracked refs — the join did not leak the old
	// copies the way repair-only used to.
	all := append([]dm.Ref(nil), seeded...)
	burstMu.Lock()
	all = append(all, burst...)
	burstMu.Unlock()
	waitFor(t, 10*time.Second, "surplus reclaim to exactly R", func() bool {
		live := 0
		for _, srv := range srvs {
			live += srv.LiveRefs()
		}
		return live == 2*len(all)
	})

	// Zero loss: everything reads back byte-identical after the move.
	for i, ref := range seeded {
		got := make([]byte, ref.Size)
		if err := p.ReadRef(ref, 0, got); err != nil {
			t.Fatalf("seeded ref %d unreadable after rebalance: %v", i, err)
		}
		if !bytes.Equal(got, bodyOf(i)) {
			t.Fatalf("seeded ref %d read wrong bytes after rebalance", i)
		}
	}

	// Drain and check conservation everywhere, newcomer included.
	for _, ref := range all {
		if err := p.FreeRef(ref); err != nil {
			t.Fatalf("free: %v", err)
		}
	}
	waitFor(t, 5*time.Second, "all copies released", func() bool {
		for _, srv := range srvs {
			if srv.LiveRefs() != 0 {
				return false
			}
		}
		return true
	})
	checkAllInvariants(t, srvs)
}

// TestRegistryHandoffAdoption pins the §D16 ownership transfer at pool
// level: refs staged by a client that then disappears survive its lease
// reap (the shards' directories own them), and a later client adopts
// them via anti-entropy sync, serves them, and can free them — directory
// entries included.
func TestRegistryHandoffAdoption(t *testing.T) {
	const leaseTTL = 300 * time.Millisecond
	scfg := live.ServerConfig{NumPages: 512, PageSize: 4096, LeaseTTL: leaseTTL}
	pcfg := Config{
		ReplicaFactor:   2,
		RepairInterval:  50 * time.Millisecond,
		RegistryHandoff: true,
	}
	pcfg.Client.HeartbeatInterval = 50 * time.Millisecond
	srvs, producer := startCluster(t, 3, scfg, pcfg)

	payload := bytes.Repeat([]byte{0xAB}, 2048)
	var refs []dm.Ref
	for i := 0; i < 8; i++ {
		ref, err := producer.StageRef(payload)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	liveBefore := 0
	for _, srv := range srvs {
		liveBefore += srv.LiveRefs()
	}
	if liveBefore != 2*len(refs) {
		t.Fatalf("%d live copies staged, want %d", liveBefore, 2*len(refs))
	}

	// The producer vanishes; its sessions are reaped after the lease TTL,
	// but the directory-owned copies must all survive.
	producer.Close()
	time.Sleep(3 * leaseTTL)
	liveAfter := 0
	for _, srv := range srvs {
		liveAfter += srv.LiveRefs()
	}
	if liveAfter != liveBefore {
		t.Fatalf("reap claimed handed-off refs: %d live copies, want %d", liveAfter, liveBefore)
	}

	// A successor client adopts the orphaned population via sync and
	// serves it.
	heir, err := Dial(Config{
		Shards:          producerAddrs(t, producer),
		ReplicaFactor:   2,
		RepairInterval:  50 * time.Millisecond,
		RegistryHandoff: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { heir.Close() })
	if err := heir.Register(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "anti-entropy adoption", func() bool {
		return heir.TrackedRefs() >= len(refs)
	})
	for i, ref := range refs {
		got := make([]byte, ref.Size)
		if err := heir.ReadRef(ref, 0, got); err != nil {
			t.Fatalf("adopted ref %d unreadable: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("adopted ref %d corrupted", i)
		}
	}
	for _, ref := range refs {
		if err := heir.FreeRef(ref); err != nil {
			t.Fatalf("free of adopted ref: %v", err)
		}
	}
	waitFor(t, 5*time.Second, "adopted refs drained", func() bool {
		for _, srv := range srvs {
			if srv.LiveRefs() != 0 {
				return false
			}
		}
		return true
	})
	for i, srv := range srvs {
		if n := srv.Registry().Len(); n != 0 {
			t.Errorf("shard %d directory holds %d entries after drain", i, n)
		}
	}
	checkAllInvariants(t, srvs)
}

// producerAddrs recovers the shard address list from a pool client (the
// heir must dial the same cluster in the same order).
func producerAddrs(t *testing.T, p *Client) []string {
	t.Helper()
	var addrs []string
	for _, s := range p.shardList() {
		addrs = append(addrs, s.addr)
	}
	return addrs
}

// TestFreedRefDenied: after FreeRef, the negative cache short-circuits
// reads of the dead key — one map lookup, no replica probe storm — until
// the epoch watcher clears the tombstone.
func TestFreedRefDenied(t *testing.T) {
	scfg := live.ServerConfig{NumPages: 512, PageSize: 4096}
	pcfg := Config{
		ReplicaFactor:  2,
		RepairInterval: -1,
		CacheBytes:     1 << 20,
	}
	// Slow heartbeats so the epoch watcher can't clear the tombstone
	// between the free and the asserted reads.
	pcfg.Client.HeartbeatInterval = 5 * time.Second
	_, p := startCluster(t, 3, scfg, pcfg)

	payload := bytes.Repeat([]byte{7}, 1024)
	ref, err := p.StageRef(payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.FreeRef(ref); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(payload))
	wireCalls := p.Stats().Calls
	for i := 0; i < 4; i++ {
		if err := p.ReadRef(ref, 0, dst); !errors.Is(err, dm.ErrBadRef) {
			t.Fatalf("read %d of freed ref: %v, want ErrBadRef", i, err)
		}
	}
	if got := p.Stats().Calls - wireCalls; got != 0 {
		t.Fatalf("denied reads still crossed the wire %d times", got)
	}
	if st := p.CacheStats(); st.NegHits < 4 || st.NegAdds == 0 {
		t.Fatalf("negative cache did not serve the denials: %+v", st)
	}
}
