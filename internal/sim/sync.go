package sim

// Chan is an unbounded FIFO message queue between simulated processes.
// Send never blocks; Recv blocks the calling process until a message is
// available. Delivery to waiters uses direct handoff — a Send with parked
// receivers hands the value to the longest waiter rather than enqueueing
// it — so a tight Recv loop can never barge ahead of parked receivers and
// starve them.
type Chan[T any] struct {
	eng     *Engine
	q       []T
	waiters []*chanWaiter[T]
}

type chanWaiter[T any] struct {
	p   *Proc
	val T
	ok  bool
}

// NewChan returns an empty channel driven by eng.
func NewChan[T any](eng *Engine) *Chan[T] {
	return &Chan[T]{eng: eng}
}

// Len returns the number of queued messages.
func (c *Chan[T]) Len() int { return len(c.q) }

// Send delivers v to the longest-parked receiver, or enqueues it if no one
// is waiting. It may be called from processes and from event callbacks.
func (c *Chan[T]) Send(v T) {
	if len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		w.val = v
		w.ok = true
		c.eng.wakeLater(w.p)
		return
	}
	c.q = append(c.q, v)
}

// Recv blocks p until a message is available and returns it.
func (c *Chan[T]) Recv(p *Proc) T {
	// Invariant: a non-empty queue implies no parked waiters (Send hands
	// off directly when waiters exist), so taking from the queue here can
	// never bypass a parked receiver.
	if len(c.q) > 0 {
		v := c.q[0]
		var zero T
		c.q[0] = zero
		c.q = c.q[1:]
		return v
	}
	w := &chanWaiter[T]{p: p}
	c.waiters = append(c.waiters, w)
	p.park()
	if !w.ok {
		panic("sim: chan waiter woken without a value")
	}
	return w.val
}

// TryRecv returns the next message without blocking. ok is false if the
// channel is empty.
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	if len(c.q) == 0 {
		return v, false
	}
	v = c.q[0]
	var zero T
	c.q[0] = zero
	c.q = c.q[1:]
	return v, true
}

// Resource models a FIFO server with integer capacity: at most cap units
// may be held at once. Typical uses are CPU cores (capacity = cores) and
// exclusive devices (capacity = 1). Release hands the freed unit directly
// to the longest waiter (the unit stays accounted as in-use across the
// handoff), so loops that release and immediately re-acquire cannot barge
// past parked waiters and starve them.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	waiters  []*resWaiter

	// Busy accumulates total held time across all units, for utilization
	// accounting. Updated on Release.
	busy       Time
	lastChange Time
}

type resWaiter struct {
	p       *Proc
	granted bool
}

// NewResource returns a resource with the given capacity (must be >= 1).
func NewResource(eng *Engine, name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{eng: eng, name: name, capacity: capacity}
}

// Acquire blocks p until one unit of the resource is free, then holds it.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity {
		r.account()
		r.inUse++
		return
	}
	w := &resWaiter{p: p}
	r.waiters = append(r.waiters, w)
	p.park()
	if !w.granted {
		panic("sim: resource waiter woken without a grant")
	}
	// The releasing side already transferred the unit to us.
}

// TryAcquire holds one unit if immediately available and reports success.
func (r *Resource) TryAcquire() bool {
	if r.inUse >= r.capacity {
		return false
	}
	r.account()
	r.inUse++
	return true
}

// Release returns one unit. If processes are waiting, the unit is handed
// to the longest waiter without ever becoming visible as free.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource " + r.name)
	}
	r.account()
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		w.granted = true
		r.eng.wakeLater(w.p)
		return // unit transferred; inUse unchanged
	}
	r.inUse--
}

// Use acquires the resource, sleeps for d, and releases it: the common
// pattern for charging service time on a shared device.
func (r *Resource) Use(p *Proc, d Time) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// InUse returns the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// BusyTime returns the cumulative unit-nanoseconds the resource has been
// held (e.g. 2 units held for 5ns each contributes 10).
func (r *Resource) BusyTime() Time {
	r.account()
	return r.busy
}

func (r *Resource) account() {
	now := r.eng.Now()
	r.busy += Time(r.inUse) * (now - r.lastChange)
	r.lastChange = now
}

// Cond is a condition variable for simulated processes.
type Cond struct {
	eng     *Engine
	waiters []*Proc
}

// NewCond returns a condition variable driven by eng.
func NewCond(eng *Engine) *Cond { return &Cond{eng: eng} }

// Wait parks p until Signal or Broadcast wakes it. As with sync.Cond, the
// caller must re-check its predicate in a loop.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park()
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.eng.wakeLater(w)
}

// Broadcast wakes all waiting processes.
func (c *Cond) Broadcast() {
	for _, w := range c.waiters {
		c.eng.wakeLater(w)
	}
	c.waiters = nil
}

// WaitGroup counts outstanding work items; Wait blocks until the count
// reaches zero.
type WaitGroup struct {
	eng   *Engine
	count int
	cond  *Cond
}

// NewWaitGroup returns a wait group driven by eng.
func NewWaitGroup(eng *Engine) *WaitGroup {
	return &WaitGroup{eng: eng, cond: NewCond(eng)}
}

// Add adds delta (which may be negative) to the counter. A counter reaching
// zero wakes all waiters.
func (w *WaitGroup) Add(delta int) {
	w.count += delta
	if w.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.count == 0 {
		w.cond.Broadcast()
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks p until the counter is zero.
func (w *WaitGroup) Wait(p *Proc) {
	for w.count > 0 {
		w.cond.Wait(p)
	}
}

// Pipe models a serial bandwidth-limited link or bus: transfers are
// serialized and each occupies the pipe for size/bandwidth. Bytes moved are
// accumulated for traffic accounting.
type Pipe struct {
	res *Resource
	// BytesPerSecond is the pipe bandwidth.
	bytesPerSecond int64
	bytesMoved     int64
}

// NewPipe returns a pipe with the given bandwidth in bytes per (virtual)
// second.
func NewPipe(eng *Engine, name string, bytesPerSecond int64) *Pipe {
	if bytesPerSecond <= 0 {
		panic("sim: pipe bandwidth must be positive")
	}
	return &Pipe{res: NewResource(eng, name, 1), bytesPerSecond: bytesPerSecond}
}

// TransferTime returns how long moving size bytes takes at full bandwidth.
func (pp *Pipe) TransferTime(size int) Time {
	return Time(int64(size) * int64(Second) / pp.bytesPerSecond)
}

// Transfer charges p for moving size bytes through the pipe, queueing behind
// earlier transfers.
func (pp *Pipe) Transfer(p *Proc, size int) {
	if size <= 0 {
		return
	}
	pp.bytesMoved += int64(size)
	pp.res.Use(p, pp.TransferTime(size))
}

// BytesMoved returns the total bytes transferred through the pipe.
func (pp *Pipe) BytesMoved() int64 { return pp.bytesMoved }

// BusyTime returns cumulative busy time of the pipe.
func (pp *Pipe) BusyTime() Time { return pp.res.BusyTime() }
