package live

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dm"
	"repro/internal/dmwire"
	"repro/internal/faultnet"
	"repro/internal/rpc"
)

// injectedDialer routes a node's outbound connections through inj.
func injectedDialer(inj *faultnet.Injector) func(string, time.Duration) (net.Conn, error) {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return inj.Conn(c), nil
	}
}

// --- defensive framing ---

func TestFrameSizeCapUnit(t *testing.T) {
	// A cap of N admits N bytes of bulk payload plus the fixed protocol
	// overhead, and nothing more.
	const cap = 100
	limit := cap + frameOverhead
	var over, at bytes.Buffer
	if err := writeFrame(&over, kindRequest, 1, make([]byte, limit+1)); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(&at, kindRequest, 1, make([]byte, limit)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := readFrame(bytes.NewReader(over.Bytes()), cap); !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("readFrame past the cap = %v, want errFrameTooLarge", err)
	}
	var hdr [frameHeaderSize]byte
	if _, _, _, err := readFrameBuf(bytes.NewReader(over.Bytes()), hdr[:], cap); !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("readFrameBuf past the cap = %v, want errFrameTooLarge", err)
	}
	if _, _, _, err := readFrame(bytes.NewReader(at.Bytes()), cap); err != nil {
		t.Fatalf("readFrame at exactly the cap = %v", err)
	}
}

// TestOversizedFrameClosesConn sends a frame whose length prefix exceeds
// the server's cap over a raw socket; the server must drop the connection
// without allocating the claimed payload.
func TestOversizedFrameClosesConn(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxFrameSize = 4096
	_, addr := startServer(t, cfg)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hdr := make([]byte, frameHeaderSize)
	binary.BigEndian.PutUint32(hdr, 1<<20) // claims 1 MiB > 4 KiB cap
	hdr[4] = kindRequest
	if _, err := c.Write(hdr); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("server kept the connection after an oversized frame")
	}
}

// TestMalformedFrameClosesConn covers bad frame kinds and truncated
// tokened requests: the server must close the stream, not panic or hang.
func TestMalformedFrameClosesConn(t *testing.T) {
	for _, tc := range []struct {
		name    string
		payload []byte
		kind    byte
	}{
		{"unknown kind", []byte{0, 1, 2, 3}, 9},
		{"response kind to server", []byte{dmwire.StatusOK}, kindResponse},
		{"tokened request shorter than a token", []byte{1, 2, 3}, kindRequestTok},
		{"request without a method", []byte{7}, kindRequest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, addr := startServer(t, smallConfig())
			c, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			var buf bytes.Buffer
			if err := writeFrame(&buf, tc.kind, 1, tc.payload); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Write(buf.Bytes()); err != nil {
				t.Fatal(err)
			}
			c.SetReadDeadline(time.Now().Add(5 * time.Second))
			if _, err := c.Read(make([]byte, 1)); err == nil {
				t.Fatal("server kept the connection after a malformed frame")
			}
		})
	}
}

// TestSlowHandlerSemaphore verifies the per-connection cap on slow-handler
// fan-out: with MaxSlowPerConn=2, at most two handler goroutines run at
// once no matter how many requests are multiplexed on the connection.
func TestSlowHandlerSemaphore(t *testing.T) {
	const cap = 2
	scfg := DefaultNodeConfig()
	scfg.MaxSlowPerConn = cap
	srv := NewNodeWith(scfg)
	var cur, maxSeen atomic.Int32
	release := make(chan struct{})
	srv.Handle(rpc.Method(0x0300), func(net.Addr, []byte) ([]byte, error) {
		c := cur.Add(1)
		for {
			m := maxSeen.Load()
			if c <= m || maxSeen.CompareAndSwap(m, c) {
				break
			}
		}
		<-release
		cur.Add(-1)
		return []byte("ok"), nil
	})
	addr := startNode(t, srv)

	cl := NewNode()
	defer cl.Close()
	const calls = 6
	var wg sync.WaitGroup
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := cl.Call(addr, rpc.Method(0x0300), nil)
			errs <- err
		}()
	}
	// Wait until the cap is saturated, then confirm it holds.
	deadline := time.Now().Add(5 * time.Second)
	for cur.Load() < cap && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	if got := cur.Load(); got != cap {
		t.Fatalf("concurrent slow handlers = %d, want exactly %d", got, cap)
	}
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := maxSeen.Load(); got > cap {
		t.Fatalf("slow-handler concurrency peaked at %d, cap is %d", got, cap)
	}
}

// --- deadlines and retries ---

// TestStalledServerCallDeadline is the issue's acceptance criterion for
// deadlines: a Call against a server that accepts but never responds must
// return a deadline error within the configured budget and leave no
// goroutines behind.
func TestStalledServerCallDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var held []net.Conn
	var hmu sync.Mutex
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			hmu.Lock()
			held = append(held, c) // keep open, never read or respond
			hmu.Unlock()
		}
	}()
	defer func() {
		hmu.Lock()
		for _, c := range held {
			c.Close()
		}
		hmu.Unlock()
	}()

	runtime.GC()
	before := runtime.NumGoroutine()

	cfg := DefaultNodeConfig()
	cfg.CallTimeout = 300 * time.Millisecond
	cfg.AttemptTimeout = 200 * time.Millisecond
	n := NewNodeWith(cfg)
	start := time.Now()
	_, err = n.Call(ln.Addr().String(), rpc.Method(0x0400), []byte("x"))
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("Call against stalled server = %v, want ErrDeadline", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadline took %v, budget was 300ms", elapsed)
	}
	n.Close()

	// No goroutine leak: the caller, read loop, and timers must all be
	// gone once the node is closed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDedupTokenAppliesOnce exercises the at-most-once guarantee directly:
// two calls carrying the same token execute the handler once and observe
// the same response bytes; a fresh token executes again.
func TestDedupTokenAppliesOnce(t *testing.T) {
	srv := NewNode()
	var count atomic.Int32
	srv.Handle(rpc.Method(0x0301), func(net.Addr, []byte) ([]byte, error) {
		return []byte(fmt.Sprintf("run-%d", count.Add(1))), nil
	})
	addr := startNode(t, srv)

	cl := NewNode()
	defer cl.Close()
	get := func(tok dmwire.Token) string {
		var out string
		err := cl.CallConsumeOpts(addr, rpc.Method(0x0301), nil, nil, func(resp []byte) error {
			out = string(resp)
			return nil
		}, CallOpts{Token: tok})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	tok := dmwire.Token{CID: 7, Seq: 9}
	r1 := get(tok)
	r2 := get(tok)
	if r1 != "run-1" || r2 != "run-1" {
		t.Fatalf("tokened duplicate: got %q then %q, want run-1 twice", r1, r2)
	}
	if n := count.Load(); n != 1 {
		t.Fatalf("handler ran %d times for one token, want 1", n)
	}
	if r3 := get(dmwire.Token{CID: 7, Seq: 10}); r3 != "run-2" {
		t.Fatalf("fresh token: got %q, want run-2", r3)
	}
}

// TestTokenedCallRetriesAcrossTornWrite kills the client's first request
// write mid-frame; the retry path must redial and the dedup token must
// keep the mutation at-most-once.
func TestTokenedCallRetriesAcrossTornWrite(t *testing.T) {
	srv := NewNode()
	var count atomic.Int32
	srv.Handle(rpc.Method(0x0302), func(_ net.Addr, body []byte) ([]byte, error) {
		count.Add(1)
		return append([]byte("echo:"), body...), nil
	})
	addr := startNode(t, srv)

	inj := faultnet.New()
	ccfg := DefaultNodeConfig()
	ccfg.Dialer = injectedDialer(inj)
	ccfg.AttemptTimeout = time.Second
	cl := NewNodeWith(ccfg)
	defer cl.Close()

	inj.TruncateNextWrite()
	var got string
	err := cl.CallConsumeOpts(addr, rpc.Method(0x0302), nil, []byte("m1"), func(resp []byte) error {
		got = string(resp)
		return nil
	}, CallOpts{Token: dmwire.Token{CID: 3, Seq: 1}})
	if err != nil {
		t.Fatalf("tokened call did not survive a torn write: %v", err)
	}
	if got != "echo:m1" {
		t.Fatalf("got %q, want echo:m1", got)
	}
	if n := count.Load(); n != 1 {
		t.Fatalf("handler ran %d times, want 1", n)
	}

	// A call that is neither idempotent nor tokened must NOT retry: the
	// torn write surfaces as an error.
	inj.TruncateNextWrite()
	if err := cl.CallConsume(addr, rpc.Method(0x0302), nil, []byte("m2"), nil); err == nil {
		t.Fatal("unmarked call silently retried across a torn write")
	}
}

// --- session leases ---

// leaseConfig is a small pool with a short lease for reaping tests.
func leaseConfig(ttl time.Duration) ServerConfig {
	return ServerConfig{NumPages: 512, PageSize: 512, LeaseTTL: ttl, DrainTimeout: 100 * time.Millisecond}
}

// TestLeaseExpiryReapsSession: a client that never heartbeats loses its
// session after one TTL — pages and refs come back, and later calls see
// dm.ErrBadAddress.
func TestLeaseExpiryReapsSession(t *testing.T) {
	ttl := 150 * time.Millisecond
	srv, addr := startServer(t, leaseConfig(ttl))
	initial := srv.FreePages()

	cfg := DefaultClientConfig()
	cfg.HeartbeatInterval = -1 // simulate a client that dies silently
	cl, err := DialConfig(cfg, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register(); err != nil {
		t.Fatal(err)
	}
	a, err := cl.Alloc(4 * 512)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Write(a, bytes.Repeat([]byte("z"), 4*512)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.StageRef(bytes.Repeat([]byte("s"), 3*512)); err != nil {
		t.Fatal(err)
	}
	if srv.FreePages() == initial {
		t.Fatal("setup: expected pages in use")
	}

	deadline := time.Now().Add(20 * ttl)
	for srv.FreePages() != initial || srv.LiveRefs() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("lease reap incomplete: free=%d/%d refs=%d", srv.FreePages(), initial, srv.LiveRefs())
		}
		time.Sleep(ttl / 10)
	}
	if err := srv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The reaped session is gone for good.
	if _, err := cl.Alloc(512); !errors.Is(err, dm.ErrBadAddress) {
		t.Fatalf("alloc after reap = %v, want dm.ErrBadAddress", err)
	}
}

// TestHeartbeatKeepsSessionAlive: with heartbeats on, a session survives
// many TTLs of idleness.
func TestHeartbeatKeepsSessionAlive(t *testing.T) {
	ttl := 150 * time.Millisecond
	_, addr := startServer(t, leaseConfig(ttl))
	cfg := DefaultClientConfig() // HeartbeatInterval 0 -> TTL/3
	cl, err := DialConfig(cfg, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register(); err != nil {
		t.Fatal(err)
	}
	a, err := cl.Alloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * ttl) // idle across several lease windows
	if err := cl.Write(a, []byte("still here")); err != nil {
		t.Fatalf("session reaped despite heartbeats: %v", err)
	}
	got := make([]byte, 10)
	if err := cl.Read(a, got); err != nil || string(got) != "still here" {
		t.Fatalf("read after idle = %q, %v", got, err)
	}
}

// TestChaosClientKilledMidBurst is the issue's acceptance scenario: client
// A is killed mid-burst (a torn frame, then a full partition) while
// surviving client B keeps working. The server must reclaim every frame A
// held within a small multiple of the lease TTL, B must see no errors, and
// the D6/D7 conservation invariants must hold afterwards.
func TestChaosClientKilledMidBurst(t *testing.T) {
	ttl := 250 * time.Millisecond
	srv, addr := startServer(t, leaseConfig(ttl))
	initial := srv.FreePages()

	// Victim A: all traffic through a fault injector; fast failure knobs
	// so the kill doesn't stall the test.
	inj := faultnet.New()
	acfg := DefaultClientConfig()
	acfg.HeartbeatInterval = ttl / 5
	acfg.Net.Dialer = injectedDialer(inj)
	acfg.Net.CallTimeout = 500 * time.Millisecond
	acfg.Net.AttemptTimeout = 150 * time.Millisecond
	acfg.Net.DialTimeout = 150 * time.Millisecond
	acfg.Net.MaxRetries = 1
	a, err := DialConfig(acfg, addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Register(); err != nil {
		t.Fatal(err)
	}

	// Survivor B on a clean connection, hammering the server throughout.
	b := dialClient(t, addr)
	stopB := make(chan struct{})
	bErr := make(chan error, 1)
	var bWG sync.WaitGroup
	bWG.Add(1)
	go func() {
		defer bWG.Done()
		buf := make([]byte, 1024)
		got := make([]byte, 1024)
		for i := 0; ; i++ {
			select {
			case <-stopB:
				return
			default:
			}
			ra, err := b.Alloc(1024)
			if err != nil {
				bErr <- fmt.Errorf("B alloc: %w", err)
				return
			}
			for j := range buf {
				buf[j] = byte(i + j)
			}
			if err := b.Write(ra, buf); err != nil {
				bErr <- fmt.Errorf("B write: %w", err)
				return
			}
			if err := b.Read(ra, got); err != nil {
				bErr <- fmt.Errorf("B read: %w", err)
				return
			}
			if !bytes.Equal(got, buf) {
				bErr <- fmt.Errorf("B read corrupted at iter %d", i)
				return
			}
			if err := b.Free(ra); err != nil {
				bErr <- fmt.Errorf("B free: %w", err)
				return
			}
		}
	}()

	// A bursts allocations, writes, and staged refs; at iteration 20 its
	// next frame is torn mid-write, then the network partitions — the
	// moral equivalent of SIGKILL mid-burst.
	payload := bytes.Repeat([]byte("A"), 1500)
	for i := 0; i < 40; i++ {
		if i == 20 {
			inj.CutAfter(7) // tear the next frame inside its header
		}
		if i == 21 {
			inj.Partition()
		}
		if ra, err := a.Alloc(1500); err == nil {
			_ = a.Write(ra, payload)
		}
		_, _ = a.StageRef(payload)
	}
	a.Close() // the process is "dead"; its lease must lapse

	// Acceptance: everything A held is reclaimed within a few TTLs while
	// B keeps running. B churns its own pages, so first wait for A's refs
	// to vanish, then stop B and wait for full conservation.
	deadline := time.Now().Add(20 * ttl)
	for srv.LiveRefs() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("dead client's refs not reaped: %d live", srv.LiveRefs())
		}
		time.Sleep(ttl / 10)
	}
	close(stopB)
	bWG.Wait()
	select {
	case err := <-bErr:
		t.Fatalf("surviving client failed during the chaos: %v", err)
	default:
	}
	b.Close() // B stops heartbeating; its session lapses too

	for srv.FreePages() != initial {
		if time.Now().After(deadline.Add(20 * ttl)) {
			t.Fatalf("pool not conserved after reaps: free=%d, want %d", srv.FreePages(), initial)
		}
		time.Sleep(ttl / 10)
	}
	if err := srv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseForceReapsSessions: Close drains and then reclaims every
// session even when leases are disabled, so a server shuts down with a
// conserved pool.
func TestCloseForceReapsSessions(t *testing.T) {
	srv := NewServer(ServerConfig{NumPages: 64, PageSize: 512}) // LeaseTTL 0: no reaper
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }()
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register(); err != nil {
		t.Fatal(err)
	}
	ra, err := cl.Alloc(2048)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Write(ra, make([]byte, 2048)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.StageRef(make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	if srv.FreePages() == 64 {
		t.Fatal("setup: expected pages in use")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	if got := srv.FreePages(); got != 64 {
		t.Fatalf("FreePages after Close = %d, want 64", got)
	}
	if srv.LiveRefs() != 0 {
		t.Fatalf("LiveRefs after Close = %d, want 0", srv.LiveRefs())
	}
	if err := srv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestStatsTimeoutVsTransportSplit pins the per-class failure counters:
// a stalled (alive but unresponsive) server must be attributed to
// Timeouts, while a dead endpoint (dial refused) must be attributed to
// TransportErrors — Retries alone cannot tell the two apart, and the
// load harness reports them separately.
func TestStatsTimeoutVsTransportSplit(t *testing.T) {
	// Timeout class, request path: register over a faultnet conn, stage a
	// ref, then delay writes past every deadline (the server is alive but
	// the fabric is too slow) — the attempt reaches its pending-wait only
	// after its deadline has passed and dies with ErrDeadline.
	_, addr := startServer(t, smallConfig())
	inj := faultnet.New()
	ccfg := DefaultClientConfig()
	ccfg.HeartbeatInterval = -1 // keep lease renewals out of the counters
	ccfg.Net.Dialer = injectedDialer(inj)
	ccfg.Net.CallTimeout = 400 * time.Millisecond
	ccfg.Net.AttemptTimeout = 100 * time.Millisecond
	ccfg.Net.MaxRetries = 2
	ccfg.Net.RetryBackoff = 5 * time.Millisecond
	cl, err := DialConfig(ccfg, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Register(); err != nil {
		t.Fatal(err)
	}
	ref, err := cl.StageRef(make([]byte, 512))
	if err != nil {
		t.Fatal(err)
	}
	if st := cl.Stats(); st.Timeouts != 0 || st.TransportErrors != 0 {
		t.Fatalf("healthy-path stats already classified failures: %+v", st)
	}
	inj.SetWriteDelay(time.Second)
	if err := cl.ReadRef(ref, 0, make([]byte, 512)); err == nil {
		t.Fatal("read through a stalled fabric succeeded")
	}
	st := cl.Stats()
	if st.Timeouts == 0 {
		t.Fatalf("stalled read classified no timeouts: %+v", st)
	}
	if st.TransportErrors != 0 {
		t.Fatalf("stalled read misclassified as transport errors: %+v", st)
	}
	inj.SetWriteDelay(0)

	// Timeout class, submission path: a full write stall holds queued
	// async frames in the coalescing writer; the future's pending-wait
	// expires and must be attributed to Timeouts too. Retries are off on
	// this client — a sync re-send would write on the caller's goroutine
	// and park in the stall gate instead of reaching a deadline.
	acfg := DefaultClientConfig()
	acfg.HeartbeatInterval = -1
	acfg.Net.Dialer = injectedDialer(inj)
	acfg.Net.CallTimeout = 400 * time.Millisecond
	acfg.Net.AttemptTimeout = 100 * time.Millisecond
	acfg.Net.MaxRetries = 0
	acl, err := DialConfig(acfg, addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := acl.Register(); err != nil {
		t.Fatal(err)
	}
	aref, err := acl.StageRef(make([]byte, 512))
	if err != nil {
		t.Fatal(err)
	}
	inj.Stall()
	if err := acl.ReadRefAsync(aref, 0, make([]byte, 512)).Wait(); err == nil {
		t.Fatal("async op through a stalled fabric succeeded")
	}
	ast := acl.Stats()
	inj.Unstall()
	if ast.Timeouts == 0 {
		t.Fatalf("write stall classified no timeouts: %+v", ast)
	}
	if ast.TransportErrors != 0 {
		t.Fatalf("write stall misclassified as transport errors: %+v", ast)
	}
	acl.Close()

	// Transport class: connect to a live server, then kill it — the
	// poisoned conn and every refused redial fail in the transport, never
	// reaching a deadline.
	vsrv := NewServer(smallConfig())
	vln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	vdone := make(chan struct{})
	go func() {
		defer close(vdone)
		vsrv.Serve(vln)
	}()
	dcfg := DefaultClientConfig()
	dcfg.HeartbeatInterval = -1
	dcfg.Net.CallTimeout = 400 * time.Millisecond
	dcfg.Net.AttemptTimeout = 100 * time.Millisecond
	dcfg.Net.DialTimeout = 100 * time.Millisecond
	dcfg.Net.MaxRetries = 1
	dcfg.Net.RetryBackoff = 5 * time.Millisecond
	dead, err := DialConfig(dcfg, vln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer dead.Close()
	if err := dead.Register(); err != nil {
		t.Fatal(err)
	}
	if err := vsrv.Close(); err != nil {
		t.Fatal(err)
	}
	<-vdone
	time.Sleep(50 * time.Millisecond) // let the read loop poison the conn
	if _, err := dead.StageRef(make([]byte, 64)); err == nil {
		t.Fatal("stage against a dead endpoint succeeded")
	}
	dst := dead.Stats()
	if dst.TransportErrors == 0 {
		t.Fatalf("dead endpoint classified no transport errors: %+v", dst)
	}
	if dst.Timeouts != 0 {
		t.Fatalf("dead endpoint misclassified as timeouts: %+v", dst)
	}
}
