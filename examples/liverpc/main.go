// Liverpc demonstrates the application-level DmRPC framework on real
// sockets: two named services — a resizer that forwards and a terminal
// aggregator — plus a DM server, all on loopback TCP. The client stages
// a large payload once; only a ~21-byte ref crosses the two service
// hops, and the terminal service reads the bytes straight from the DM
// server. Small payloads skip staging and ride inline automatically.
//
//	go run ./examples/liverpc
package main

import (
	"fmt"
	"net"

	"repro/internal/apps"
	"repro/internal/live"
	"repro/internal/liverpc"
)

func main() {
	// DM server on a loopback port (cmd/dmserverd runs this standalone).
	srv := live.NewServer(live.ServerConfig{NumPages: 4096, PageSize: 4096})
	dmLn, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go srv.Serve(dmLn)
	defer srv.Close()
	dmAddr := dmLn.Addr().String()

	// Terminal service: materializes the payload and aggregates it.
	agg := newService("aggregate", dmAddr)
	agg.Handle("sum", func(ctx *liverpc.Ctx, args []liverpc.Payload) ([]liverpc.Payload, error) {
		buf, err := ctx.Fetch(args[0]) // by-ref payloads read from the DM server here
		if err != nil {
			return nil, err
		}
		return []liverpc.Payload{liverpc.U64(apps.Aggregate(buf))}, nil
	})
	aggAddr := serve(agg)

	// Front service: a pure data mover — with pass-by-reference it never
	// touches the payload bytes at all.
	front := newService("front", dmAddr)
	front.Handle("sum", func(ctx *liverpc.Ctx, args []liverpc.Payload) ([]liverpc.Payload, error) {
		return ctx.Call(aggAddr, "sum", args...)
	})
	frontAddr := serve(front)

	// Client: stage once, call through the chain.
	cdm, err := live.Dial(dmAddr)
	check(err)
	defer cdm.Close()
	check(cdm.Register())
	caller := liverpc.NewCaller(cdm, liverpc.Config{})
	defer caller.Close()

	payload := make([]byte, 256<<10)
	apps.FillPayload(payload, 1)
	arg, err := caller.Stage(payload) // 256 KiB > threshold: staged by ref
	check(err)
	fmt.Printf("staged %d bytes, argument travels as %v\n", len(payload), arg)

	res, err := caller.Call(frontAddr, "sum", arg)
	check(err)
	sum, err := res[0].AsU64()
	check(err)
	fmt.Printf("chain sum = %d (want %d)\n", sum, apps.Aggregate(payload))
	check(caller.Release(arg))

	// A small argument takes the same code path but stays inline.
	res, err = caller.Call(frontAddr, "sum", liverpc.Inline([]byte{1, 2, 3}))
	check(err)
	sum, _ = res[0].AsU64()
	fmt.Printf("inline sum = %d (want 6)\n", sum)
}

func newService(name, dmAddr string) *liverpc.Service {
	dmc, err := live.Dial(dmAddr)
	check(err)
	check(dmc.Register())
	return liverpc.NewService(name, dmc, liverpc.Config{})
}

func serve(s *liverpc.Service) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go s.Serve(ln)
	return ln.Addr().String()
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
