package loadgen

import (
	"fmt"
	"sync"

	"repro/internal/faultnet"
	"repro/internal/live"
)

// Cluster is a K-shard in-process dmserverd cluster behind restartable
// listeners, so fault schedules can crash and revive individual shards
// while the harness keeps offering load.
type Cluster struct {
	Addrs []string

	scfg live.ServerConfig
	mu   sync.Mutex
	rs   []*faultnet.Restartable
	srvs []*live.Server
}

// Launch starts k shard servers on loopback ports. Each shard i serves
// with HasShard/ShardID=i — the same identity a dmserverd -shard i
// process would claim — behind a faultnet.Restartable listener whose
// address survives crash/restart. Give scfg a LeaseTTL when the run
// includes faults: leasing is what drives the client heartbeats that
// pool failure detection (ejection, failover, repair) keys off.
func Launch(k int, scfg live.ServerConfig) (*Cluster, error) {
	if k < 1 {
		return nil, fmt.Errorf("loadgen: cluster needs at least 1 shard")
	}
	c := &Cluster{scfg: scfg}
	for i := 0; i < k; i++ {
		cfg := scfg
		cfg.HasShard = true
		cfg.ShardID = uint32(i)
		srv := live.NewServer(cfg)
		rst, ln, err := faultnet.NewRestartable("127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("loadgen: shard %d listen: %w", i, err)
		}
		go srv.Serve(ln)
		c.rs = append(c.rs, rst)
		c.srvs = append(c.srvs, srv)
		c.Addrs = append(c.Addrs, rst.Addr())
	}
	return c, nil
}

// Kill crashes shard i: the listener drops new dials, established conns
// are severed, and the server's in-memory pages are gone — a process
// kill, not a graceful drain.
func (c *Cluster) Kill(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.srvs) {
		return fmt.Errorf("loadgen: no shard %d", i)
	}
	c.rs[i].Crash()
	// The crash already tore the listener down, so the server's own
	// close reports the dead listener — expected, not a failure.
	c.srvs[i].Close()
	return nil
}

// Restart revives shard i on its original address with a fresh, empty
// server — recovery is the pool's job (failover reads off replicas,
// background repair re-staging lost copies).
func (c *Cluster) Restart(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.srvs) {
		return fmt.Errorf("loadgen: no shard %d", i)
	}
	cfg := c.scfg
	cfg.HasShard = true
	cfg.ShardID = uint32(i)
	srv := live.NewServer(cfg)
	ln, err := c.rs[i].Restart()
	if err != nil {
		return fmt.Errorf("loadgen: shard %d restart: %w", i, err)
	}
	go srv.Serve(ln)
	c.srvs[i] = srv
	return nil
}

// Join grows the cluster by one shard at the next index, started the
// same way Launch starts the originals (announced shard ID, restartable
// listener). It returns the newcomer's index and address; admitting it
// to running client pools is the caller's job (Env.JoinShard), after
// which the pools' rebalancers migrate remapped refs onto it.
func (c *Cluster) Join() (int, string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	i := len(c.srvs)
	cfg := c.scfg
	cfg.HasShard = true
	cfg.ShardID = uint32(i)
	srv := live.NewServer(cfg)
	rst, ln, err := faultnet.NewRestartable("127.0.0.1:0")
	if err != nil {
		return 0, "", fmt.Errorf("loadgen: joining shard %d listen: %w", i, err)
	}
	go srv.Serve(ln)
	c.rs = append(c.rs, rst)
	c.srvs = append(c.srvs, srv)
	c.Addrs = append(c.Addrs, rst.Addr())
	return i, rst.Addr(), nil
}

// Close tears the whole cluster down.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, srv := range c.srvs {
		srv.Close()
	}
	for _, rst := range c.rs {
		rst.Crash()
	}
	c.srvs, c.rs = nil, nil
}
