// Imagepipeline runs the paper's 7-tier cloud image processing
// application (§VI-E, Fig 9) — Client → Firewall → Load balance → Image
// processing → Transcoding/Compressing — under all three backends and
// prints end-to-end latency for a batch of images.
//
//	go run ./examples/imagepipeline
package main

import (
	"fmt"

	"repro/internal/msvc"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	const imageSize = 16384
	const images = 50
	fmt.Printf("7-tier image pipeline: %d images of %s each\n\n", images, stats.Bytes(imageSize))

	for _, mode := range []msvc.Mode{msvc.ModeERPC, msvc.ModeDmNet, msvc.ModeDmCXL} {
		pl := msvc.NewPlatform(msvc.DefaultConfig(mode))
		app := msvc.NewImageApp(pl, 2)
		pl.Start()

		var hist stats.Histogram
		var failed error
		pl.Eng.Spawn("driver", func(p *sim.Proc) {
			img := make([]byte, imageSize)
			for i := range img {
				img[i] = byte(i)
			}
			for i := 0; i < images; i++ {
				t0 := p.Now()
				out, err := app.Do(p, img)
				if err != nil {
					failed = err
					return
				}
				hist.Record(p.Now() - t0)
				// Verify the pipeline's transform end to end.
				if out[0] != img[0]^0x5A {
					failed = fmt.Errorf("bad transform")
					return
				}
			}
		})
		pl.Eng.Run()
		if failed != nil {
			fmt.Printf("%-10s FAILED: %v\n", mode, failed)
		} else {
			s := hist.Summarize()
			fmt.Printf("%-10s avg=%-10s p99=%-10s max=%s\n",
				mode, stats.Dur(int64(s.Mean)), stats.Dur(s.P99), stats.Dur(s.Max))
		}
		pl.Shutdown()
	}
	fmt.Println("\nimages ride the RPC chain as refs under DmRPC; only producers and codecs touch bytes")
}
