package live

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/dmwire"
	"repro/internal/rpc"
)

// Handler processes one request body and returns the response body. It
// mirrors rpc.Handler for the live world (no simulation context).
type Handler func(from net.Addr, body []byte) ([]byte, error)

// handlerEntry pairs a handler with its dispatch mode.
type handlerEntry struct {
	h Handler
	// fast handlers run to completion on the connection's read loop
	// (eRPC-style): no goroutine spawn, and their response body — if
	// pool-sized — is recycled right after the response is written. They
	// must be short, must not call back into the network, and must not
	// return a body aliasing the request.
	fast bool
}

// Node is a live RPC endpoint: it serves registered methods over TCP and
// issues calls to other nodes, multiplexing concurrent requests per
// connection — the real-network counterpart of the simulator's rpc.Node,
// speaking the same frame format the DM protocol uses.
type Node struct {
	mu       sync.Mutex
	handlers atomic.Pointer[map[rpc.Method]handlerEntry]
	peers    map[string]*conn      // lazily dialed, keyed by address
	inbound  map[net.Conn]struct{} // accepted connections, for Close
	ln       net.Listener
	closed   chan struct{}
	once     sync.Once
	conns    sync.WaitGroup
}

// NewNode returns an empty node; register handlers, then Serve and/or
// Call.
func NewNode() *Node {
	n := &Node{
		peers:   make(map[string]*conn),
		inbound: make(map[net.Conn]struct{}),
		closed:  make(chan struct{}),
	}
	empty := make(map[rpc.Method]handlerEntry)
	n.handlers.Store(&empty)
	return n
}

// Handle registers h for method m; it runs on its own goroutine per
// request. Duplicate registration panics.
func (n *Node) Handle(m rpc.Method, h Handler) { n.register(m, handlerEntry{h: h}) }

// HandleFast registers h for method m as a run-to-completion handler: it
// executes inline on the connection's read loop with no per-request
// goroutine. Fast handlers must be short, must not issue nested calls,
// and must not return a response aliasing the request body.
func (n *Node) HandleFast(m rpc.Method, h Handler) { n.register(m, handlerEntry{h: h, fast: true}) }

// register installs a handler via copy-on-write so dispatch is lock-free.
func (n *Node) register(m rpc.Method, e handlerEntry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	old := *n.handlers.Load()
	if _, dup := old[m]; dup {
		panic(fmt.Sprintf("live: duplicate handler for method %#x", uint16(m)))
	}
	next := make(map[rpc.Method]handlerEntry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[m] = e
	n.handlers.Store(&next)
}

// lookup finds the handler for m without locking.
func (n *Node) lookup(m rpc.Method) (handlerEntry, bool) {
	e, ok := (*n.handlers.Load())[m]
	return e, ok
}

// Serve accepts connections on ln until Close; it returns nil after Close.
func (n *Node) Serve(ln net.Listener) error {
	n.mu.Lock()
	select {
	case <-n.closed:
		// Close already ran (it cannot see this listener); refuse to serve.
		n.mu.Unlock()
		ln.Close()
		return nil
	default:
	}
	n.ln = ln
	n.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return nil
			default:
				return err
			}
		}
		n.mu.Lock()
		n.inbound[c] = struct{}{}
		n.mu.Unlock()
		n.conns.Add(1)
		go func() {
			defer n.conns.Done()
			defer func() {
				n.mu.Lock()
				delete(n.inbound, c)
				n.mu.Unlock()
			}()
			n.serveConn(c)
		}()
	}
}

// Close stops serving, closes peer connections, and waits for in-flight
// request goroutines spawned by the accept loop.
func (n *Node) Close() error {
	var err error
	n.once.Do(func() {
		n.mu.Lock()
		close(n.closed)
		if n.ln != nil {
			err = n.ln.Close()
		}
		for _, c := range n.peers {
			c.c.Close()
		}
		// Accepted connections must be closed too, or their serve
		// goroutines would block in readFrame while clients linger.
		for c := range n.inbound {
			c.Close()
		}
		n.mu.Unlock()
		n.conns.Wait()
	})
	return err
}

// serveConn handles one inbound connection. Fast handlers run to
// completion on this goroutine with a reused header scratch buffer; slow
// handlers get one goroutine per request, with responses serialized by a
// per-connection write lock shared with the inline path.
func (n *Node) serveConn(c net.Conn) {
	defer c.Close()
	br := bufio.NewReaderSize(c, 64<<10)
	var wmu sync.Mutex
	// Scratch for the inline path's response header: frame header + status.
	scratch := make([]byte, 0, frameHeaderSize+1)
	for {
		kind, reqID, payload, err := readFrameBuf(br, scratch[:frameHeaderSize])
		if err != nil {
			return
		}
		if kind != kindRequest || len(payload) < 2 {
			putBuf(payload)
			return
		}
		m := rpc.Method(binary.BigEndian.Uint16(payload))
		body := payload[2:]
		e, ok := n.lookup(m)
		if ok && e.fast {
			status, resp := runHandler(e.h, c.RemoteAddr(), body)
			wmu.Lock()
			err := writeFrameVec(c, scratch, kindResponse, reqID, []byte{status}, resp)
			wmu.Unlock()
			putBuf(payload)
			putBuf(resp) // fast contract: resp never aliases payload
			if err != nil {
				return
			}
			continue
		}
		go func() {
			var status byte
			var resp []byte
			if !ok {
				status, resp = dmwire.StatusErr, []byte(errNoSuchMethod.Error())
			} else {
				status, resp = runHandler(e.h, c.RemoteAddr(), body)
			}
			var hdr [frameHeaderSize + 1]byte
			wmu.Lock()
			_ = writeFrameVec(c, hdr[:0], kindResponse, reqID, []byte{status}, resp)
			wmu.Unlock()
			// The response (which may alias the request body) is fully
			// written, so the request buffer can be recycled — but the
			// response itself is handler-owned and is not.
			putBuf(payload)
		}()
	}
}

// errNoSuchMethod is the catch-all for unknown methods.
var errNoSuchMethod = errors.New("live: no such method")

// runHandler invokes h and maps its result onto a wire status.
func runHandler(h Handler, from net.Addr, body []byte) (byte, []byte) {
	resp, err := h(from, body)
	if err != nil {
		return dmwire.StatusOf(err), []byte(err.Error())
	}
	return dmwire.StatusOK, resp
}

// peer returns (dialing if needed) the multiplexed connection to addr.
func (n *Node) peer(addr string) (*conn, error) {
	n.mu.Lock()
	c, ok := n.peers[addr]
	n.mu.Unlock()
	if ok {
		c.pmu.Lock()
		dead := c.dead
		c.pmu.Unlock()
		if dead == nil {
			return c, nil
		}
		// Reconnect over a fresh socket.
		n.mu.Lock()
		delete(n.peers, addr)
		n.mu.Unlock()
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: dial %s: %w", addr, err)
	}
	c = &conn{c: nc, pending: make(map[uint64]chan response)}
	go c.readLoop()
	n.mu.Lock()
	if prev, raced := n.peers[addr]; raced {
		n.mu.Unlock()
		nc.Close()
		return prev, nil
	}
	n.peers[addr] = c
	n.mu.Unlock()
	return c, nil
}

// Call invokes method m at addr with body and returns the response body
// (a fresh buffer the caller owns); non-OK statuses surface as the shared
// dm errors or *rpc.AppError.
func (n *Node) Call(addr string, m rpc.Method, body []byte) ([]byte, error) {
	var out []byte
	err := n.CallConsume(addr, m, nil, body, func(resp []byte) error {
		out = append([]byte(nil), resp...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CallConsume invokes method m at addr, writing hdr and payload as the
// request body without an intermediate copy (vectored write), and hands
// the pooled response body to consume before recycling it. consume may be
// nil when the response body is irrelevant; it must not retain the slice.
func (n *Node) CallConsume(addr string, m rpc.Method, hdr, payload []byte, consume func(resp []byte) error) error {
	c, err := n.peer(addr)
	if err != nil {
		return err
	}
	return c.call(m, hdr, payload, consume)
}
