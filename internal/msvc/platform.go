// Package msvc provides the microservice platform used by the paper's
// applications — services deployed on simulated hosts, wired with a DmRPC
// backend (eRPC pass-by-value baseline, DmRPC-net, or DmRPC-CXL) — plus
// the four evaluation applications:
//
//	Chain      — nested RPC calls (Fig 5)
//	LB         — application-layer load balancer (Fig 6)
//	ImageApp   — 7-tier cloud image processing (Figs 9/10)
//	SocialNet  — DeathStarBench-style social network (Fig 11)
//
// The same application code runs in every mode; only the platform's
// backend changes, which is exactly the comparison the paper makes.
package msvc

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cxlsim"
	"repro/internal/dmnet"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// Mode selects the transfer backend.
type Mode int

const (
	// ModeERPC is the pass-by-value baseline: arguments always inline.
	ModeERPC Mode = iota
	// ModeDmNet is DmRPC over network-based disaggregated memory.
	ModeDmNet
	// ModeDmCXL is DmRPC over CXL-based disaggregated memory.
	ModeDmCXL
)

func (m Mode) String() string {
	switch m {
	case ModeERPC:
		return "eRPC"
	case ModeDmNet:
		return "DmRPC-net"
	case ModeDmCXL:
		return "DmRPC-CXL"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config describes a platform.
type Config struct {
	// Net is the rack fabric.
	Net simnet.Config
	// Mode selects the backend.
	Mode Mode
	// NumDMServers is the DmRPC-net pool size (paper uses two).
	NumDMServers int
	// DMServer configures each DmRPC-net server.
	DMServer dmnet.ServerConfig
	// CXL configures the fabric for ModeDmCXL.
	CXL cxlsim.Config
	// RPC configures every service node.
	RPC rpc.Config
	// Core configures the DmRPC client (thresholds).
	Core core.Config
	// SvcOverhead is baseline handler CPU time per request at every
	// service (application logic cost).
	SvcOverhead sim.Time
	// Seed seeds the simulation.
	Seed int64
}

// DefaultConfig mirrors the paper's testbed with the chosen mode.
func DefaultConfig(mode Mode) Config {
	cfg := Config{
		Net:          simnet.DefaultConfig(),
		Mode:         mode,
		NumDMServers: 2,
		DMServer:     dmnet.DefaultServerConfig(),
		CXL:          cxlsim.DefaultConfig(),
		RPC:          rpc.Config{Transport: transport.DefaultConfig(), Workers: 16},
		SvcOverhead:  1 * sim.Microsecond,
		Seed:         1,
	}
	// Application DM traffic can be heavy; give DM servers enough cores to
	// serve rread/rwrite concurrently (the paper's servers have 24).
	cfg.DMServer.RPC.Workers = 8
	return cfg
}

// Platform owns the simulation topology for one experiment.
type Platform struct {
	Eng *sim.Engine
	Net *simnet.Network
	cfg Config

	dmServers []*dmnet.Server
	dmAddrs   []simnet.Addr

	gfam    *cxlsim.GFAM
	coord   *cxlsim.Coordinator
	hostDMs map[simnet.HostID]*cxlsim.HostDM

	services  []*Service
	nextPort  map[simnet.HostID]int
	toRegiser []*dmnet.Client
	started   bool
}

// Service is one deployed microservice: its host, RPC node and DmRPC
// client.
type Service struct {
	Name string
	Host *simnet.Host
	Node *rpc.Node
	C    *core.Client
}

// Addr returns the service's RPC address.
func (s *Service) Addr() simnet.Addr { return s.Node.Addr() }

// NewPlatform builds the shared infrastructure for cfg: the network plus
// the DM pool (net mode) or CXL fabric and coordinator (CXL mode).
func NewPlatform(cfg Config) *Platform {
	eng := sim.NewEngine(cfg.Seed)
	pl := &Platform{
		Eng:      eng,
		Net:      simnet.New(eng, cfg.Net),
		cfg:      cfg,
		nextPort: make(map[simnet.HostID]int),
		hostDMs:  make(map[simnet.HostID]*cxlsim.HostDM),
	}
	switch cfg.Mode {
	case ModeDmNet:
		if cfg.NumDMServers <= 0 {
			panic("msvc: ModeDmNet needs NumDMServers >= 1")
		}
		for i := 0; i < cfg.NumDMServers; i++ {
			h := pl.Net.AddHost(fmt.Sprintf("dmserver-%d", i))
			srv := dmnet.NewServer(h, pl.port(h), uint32(i), cfg.DMServer)
			srv.Start()
			pl.dmServers = append(pl.dmServers, srv)
			pl.dmAddrs = append(pl.dmAddrs, srv.Addr())
		}
	case ModeDmCXL:
		pl.gfam = cxlsim.NewGFAM(eng, 0, cfg.CXL)
		ch := pl.Net.AddHost("cxl-coordinator")
		pl.coord = cxlsim.NewCoordinator(ch, pl.port(ch), pl.gfam, cfg.RPC)
		pl.coord.Start()
	}
	return pl
}

// Mode returns the platform's backend mode.
func (pl *Platform) Mode() Mode { return pl.cfg.Mode }

// Config returns the platform configuration.
func (pl *Platform) Config() Config { return pl.cfg }

// DMServers exposes the DmRPC-net pool (nil otherwise) for experiment
// accounting.
func (pl *Platform) DMServers() []*dmnet.Server { return pl.dmServers }

// GFAM exposes the CXL fabric device (nil otherwise).
func (pl *Platform) GFAM() *cxlsim.GFAM { return pl.gfam }

// port hands out per-host ports.
func (pl *Platform) port(h *simnet.Host) int {
	pl.nextPort[h.ID()]++
	return pl.nextPort[h.ID()]
}

// AddHost creates a bare host (for colocating services).
func (pl *Platform) AddHost(name string) *simnet.Host { return pl.Net.AddHost(name) }

// NewService deploys a service on its own fresh host.
func (pl *Platform) NewService(name string) *Service {
	return pl.NewServiceOn(pl.Net.AddHost(name), name)
}

// NewServiceOn deploys a service on an existing host (colocation, as the
// paper does to equalize server counts, §VI-E).
func (pl *Platform) NewServiceOn(h *simnet.Host, name string) *Service {
	if pl.started {
		panic("msvc: NewService after Start")
	}
	node := rpc.NewNode(h, pl.port(h), name, pl.cfg.RPC)
	var c *core.Client
	switch pl.cfg.Mode {
	case ModeERPC:
		c = core.NewInlineClient(node)
	case ModeDmNet:
		dc := dmnet.NewClient(node, pl.dmAddrs)
		pl.toRegiser = append(pl.toRegiser, dc)
		c = core.NewClient(node, dc, pl.cfg.Core)
	case ModeDmCXL:
		hd, ok := pl.hostDMs[h.ID()]
		if !ok {
			hd = cxlsim.NewHostDM(h, pl.port(h), pl.gfam, pl.coord.Addr(), pl.cfg.RPC)
			pl.hostDMs[h.ID()] = hd
		}
		c = core.NewClient(node, hd.NewSpace(), pl.cfg.Core)
	}
	s := &Service{Name: name, Host: h, Node: node, C: c}
	pl.services = append(pl.services, s)
	return s
}

// Overhead charges the per-request application logic cost on the service's
// CPU.
func (pl *Platform) Overhead(p *sim.Proc, s *Service) {
	if pl.cfg.SvcOverhead > 0 {
		s.Host.CPU.Use(p, pl.cfg.SvcOverhead)
	}
}

// AttachTracer installs o as the RPC observer on every service created so
// far (call after the topology is built, before Start).
func (pl *Platform) AttachTracer(o rpc.Observer) {
	for _, s := range pl.services {
		s.Node.SetObserver(o)
	}
}

// Start launches every service node and registers DM clients. It runs the
// engine until setup traffic quiesces; workloads run afterwards on the
// same engine.
func (pl *Platform) Start() {
	if pl.started {
		panic("msvc: Start twice")
	}
	pl.started = true
	for _, s := range pl.services {
		s.Node.Start()
	}
	var regErr error
	pl.Eng.Spawn("register-dm", func(p *sim.Proc) {
		for _, c := range pl.toRegiser {
			if err := c.Register(p); err != nil {
				regErr = err
				return
			}
		}
	})
	pl.Eng.Run()
	if regErr != nil {
		panic(fmt.Sprintf("msvc: DM registration failed: %v", regErr))
	}
}

// Shutdown tears down the simulation's goroutines.
func (pl *Platform) Shutdown() { pl.Eng.Shutdown() }

// forward re-issues the request body to next and returns its response —
// the data-mover pattern. The body is copied through application memory,
// which is what makes pass-by-value forwarding expensive and
// pass-by-reference forwarding nearly free (the body is then just a Ref).
func (pl *Platform) forward(ctx *rpc.Ctx, s *Service, next simnet.Addr, m rpc.Method, body []byte) ([]byte, error) {
	pl.Overhead(ctx.P, s)
	s.Host.Memcpy(ctx.P, len(body))
	resp, err := ctx.Node.Call(ctx.P, next, m, body)
	if err != nil {
		return nil, err
	}
	s.Host.Memcpy(ctx.P, len(resp))
	return resp, nil
}
