package workload

import (
	"errors"
	"math"
	"testing"

	"repro/internal/sim"
)

func TestClosedLoopThroughputMatchesServiceTime(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Shutdown()
	// Each op takes exactly 1ms; 4 clients => 4000 ops/s.
	res := RunClosed(eng, ClosedConfig{
		Clients: 4,
		Warmup:  10 * sim.Millisecond,
		Measure: 1 * sim.Second,
	}, func(p *sim.Proc) error {
		p.Sleep(1 * sim.Millisecond)
		return nil
	})
	thr := res.Throughput()
	if thr < 3900 || thr > 4100 {
		t.Fatalf("throughput = %f, want ~4000", thr)
	}
	if res.Latency.Percentile(99) != 1*sim.Millisecond {
		t.Fatalf("p99 = %d, want 1ms", res.Latency.Percentile(99))
	}
}

func TestClosedLoopWarmupExcluded(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Shutdown()
	calls := 0
	res := RunClosed(eng, ClosedConfig{
		Clients: 1,
		Warmup:  100 * sim.Millisecond,
		Measure: 100 * sim.Millisecond,
	}, func(p *sim.Proc) error {
		calls++
		p.Sleep(10 * sim.Millisecond)
		return nil
	})
	if res.Ops >= int64(calls) {
		t.Fatalf("window ops %d should be less than total calls %d", res.Ops, calls)
	}
	if res.Ops < 9 || res.Ops > 11 {
		t.Fatalf("Ops = %d, want ~10", res.Ops)
	}
}

func TestClosedLoopCountsErrors(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Shutdown()
	i := 0
	res := RunClosed(eng, ClosedConfig{Clients: 1, Measure: 100 * sim.Millisecond},
		func(p *sim.Proc) error {
			p.Sleep(1 * sim.Millisecond)
			i++
			if i%2 == 0 {
				return errors.New("boom")
			}
			return nil
		})
	if res.Errors == 0 {
		t.Fatal("no errors counted")
	}
	if res.Ops == 0 {
		t.Fatal("no successes counted")
	}
}

func TestOpenLoopHitsOfferedRate(t *testing.T) {
	eng := sim.NewEngine(7)
	defer eng.Shutdown()
	res := RunOpen(eng, OpenConfig{
		Rate:    10000,
		Warmup:  10 * sim.Millisecond,
		Measure: 1 * sim.Second,
	}, func(p *sim.Proc) error {
		p.Sleep(20 * sim.Microsecond)
		return nil
	})
	thr := res.Throughput()
	if thr < 9000 || thr > 11000 {
		t.Fatalf("throughput = %f, want ~10000 (offered)", thr)
	}
	if res.Dropped != 0 {
		t.Fatalf("Dropped = %d under light load", res.Dropped)
	}
}

func TestOpenLoopOverloadShowsQueueing(t *testing.T) {
	// A single server with 100µs service time saturates at 10K ops/s;
	// offering 20K must blow up latency relative to light load.
	run := func(rate float64) Result {
		eng := sim.NewEngine(3)
		defer eng.Shutdown()
		server := sim.NewResource(eng, "srv", 1)
		return RunOpen(eng, OpenConfig{
			Rate:    rate,
			Measure: 200 * sim.Millisecond,
		}, func(p *sim.Proc) error {
			server.Use(p, 100*sim.Microsecond)
			return nil
		})
	}
	light := run(2000)
	heavy := run(20000)
	if heavy.Latency.Mean() < 10*light.Latency.Mean() {
		t.Fatalf("overload mean %.0fns vs light %.0fns: queueing not visible",
			heavy.Latency.Mean(), light.Latency.Mean())
	}
}

func TestOpenLoopConcurrencyCap(t *testing.T) {
	eng := sim.NewEngine(1)
	defer eng.Shutdown()
	res := RunOpen(eng, OpenConfig{
		Rate:           100000,
		Measure:        100 * sim.Millisecond,
		MaxOutstanding: 4,
		Drain:          sim.Second,
	}, func(p *sim.Proc) error {
		p.Sleep(10 * sim.Millisecond) // service far slower than arrivals
		return nil
	})
	if res.Dropped == 0 {
		t.Fatal("cap never dropped arrivals under extreme overload")
	}
}

func TestFindCapacityLocatesServiceRate(t *testing.T) {
	// A single 100µs server has true capacity 10K ops/s; the bisection
	// must land within tolerance of it.
	mk := func() (*sim.Engine, Op) {
		eng := sim.NewEngine(5)
		srv := sim.NewResource(eng, "srv", 1)
		return eng, func(p *sim.Proc) error {
			srv.Use(p, 100*sim.Microsecond)
			return nil
		}
	}
	got := FindCapacity(CapacityConfig{
		Lo: 1000, Hi: 40000, Tolerance: 0.05,
		Open:         OpenConfig{Measure: 100 * sim.Millisecond},
		LatencyLimit: 5 * sim.Millisecond,
	}, mk)
	if got < 7000 || got > 11000 {
		t.Fatalf("capacity estimate %.0f, want ~10000", got)
	}
}

func TestFindCapacityEdges(t *testing.T) {
	instant := func() (*sim.Engine, Op) {
		eng := sim.NewEngine(1)
		return eng, func(p *sim.Proc) error { p.Sleep(1); return nil }
	}
	// Ceiling never saturates: returns Hi.
	if got := FindCapacity(CapacityConfig{
		Lo: 100, Hi: 1000,
		Open: OpenConfig{Measure: 10 * sim.Millisecond},
	}, instant); got != 1000 {
		t.Fatalf("unsaturable system: got %.0f, want Hi", got)
	}
	// Floor already saturates: returns 0.
	slow := func() (*sim.Engine, Op) {
		eng := sim.NewEngine(1)
		srv := sim.NewResource(eng, "srv", 1)
		return eng, func(p *sim.Proc) error {
			srv.Use(p, 10*sim.Millisecond)
			return nil
		}
	}
	if got := FindCapacity(CapacityConfig{
		Lo: 10000, Hi: 100000,
		Open: OpenConfig{Measure: 20 * sim.Millisecond, Drain: 20 * sim.Millisecond},
	}, slow); got != 0 {
		t.Fatalf("oversaturated floor: got %.0f, want 0", got)
	}
}

func TestMixRespectsWeights(t *testing.T) {
	eng := sim.NewEngine(11)
	defer eng.Shutdown()
	var a, b, c int
	op := Mix(eng, []Weighted{
		{Weight: 60, Name: "a", Op: func(p *sim.Proc) error { a++; return nil }},
		{Weight: 30, Name: "b", Op: func(p *sim.Proc) error { b++; return nil }},
		{Weight: 10, Name: "c", Op: func(p *sim.Proc) error { c++; return nil }},
	})
	eng.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 10000; i++ {
			if err := op(p); err != nil {
				t.Errorf("op: %v", err)
			}
		}
	})
	eng.Run()
	total := float64(a + b + c)
	if total != 10000 {
		t.Fatalf("total = %f", total)
	}
	for _, chk := range []struct {
		got  int
		want float64
	}{{a, 0.6}, {b, 0.3}, {c, 0.1}} {
		frac := float64(chk.got) / total
		if math.Abs(frac-chk.want) > 0.03 {
			t.Errorf("fraction %f, want ~%f", frac, chk.want)
		}
	}
}

func TestMixPanicsOnBadWeights(t *testing.T) {
	eng := sim.NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("bad weight accepted")
		}
	}()
	Mix(eng, []Weighted{{Weight: 0, Op: func(p *sim.Proc) error { return nil }}})
}

func TestResultString(t *testing.T) {
	var r Result
	r.Ops = 5
	r.Window = sim.Second
	if r.String() == "" {
		t.Fatal("empty String()")
	}
	if r.Throughput() != 5 {
		t.Fatalf("Throughput = %f", r.Throughput())
	}
	r.Window = 0
	if r.Throughput() != 0 {
		t.Fatal("zero window should give zero throughput")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (int64, int64) {
		eng := sim.NewEngine(42)
		defer eng.Shutdown()
		res := RunOpen(eng, OpenConfig{Rate: 5000, Measure: 100 * sim.Millisecond},
			func(p *sim.Proc) error {
				p.Sleep(sim.Time(eng.Rand().Intn(50000)))
				return nil
			})
		return res.Ops, res.Latency.Sum()
	}
	o1, s1 := run()
	o2, s2 := run()
	if o1 != o2 || s1 != s2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", o1, s1, o2, s2)
	}
}
