package msvc

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/sim"
)

// Block storage methods.
const (
	MBlockWrite rpc.Method = 0x0440 + iota
	MBlockRead
	MBlockPut
	MBlockGet
)

// BlockStore models the commodity block storage service the paper's
// introduction motivates ("the commodity block storage service uses RPC to
// transfer large data blocks (tens to hundreds of KBs)", §I): clients
// write fixed-size blocks through a gateway that replicates them across
// backends. The gateway is a pure data mover; under pass-by-value every
// write crosses its NIC and memory bus R+1 times, under DmRPC only Refs
// do, and the disaggregated pool holds the single data copy the replicas
// reference.
type BlockStore struct {
	pl       *Platform
	client   *Service
	gateway  *Service
	backends []*Service
	// Replicas is the replication factor per block (must be <= backends).
	Replicas int
	// blocks[backend][key] is each backend's durable map.
	blocks []map[uint64]core.Arg
}

// NewBlockStore deploys a gateway plus numBackends storage services.
// Call before Platform.Start.
func NewBlockStore(pl *Platform, numBackends, replicas int) *BlockStore {
	if numBackends < 1 || replicas < 1 || replicas > numBackends {
		panic("msvc: blockstore needs 1 <= replicas <= backends")
	}
	bs := &BlockStore{
		pl:       pl,
		client:   pl.NewService("bs-client"),
		gateway:  pl.NewService("bs-gateway"),
		Replicas: replicas,
		blocks:   make([]map[uint64]core.Arg, numBackends),
	}
	for i := 0; i < numBackends; i++ {
		bs.backends = append(bs.backends, pl.NewService(fmt.Sprintf("bs-backend%d", i)))
		bs.blocks[i] = make(map[uint64]core.Arg)
	}

	// Gateway: replicate writes, route reads. Never touches block data.
	bs.gateway.Node.Handle(MBlockWrite, func(ctx *rpc.Ctx, body []byte) ([]byte, error) {
		pl.Overhead(ctx.P, bs.gateway)
		d := rpc.NewDec(body)
		key := d.U64()
		if err := d.Err(); err != nil {
			return nil, err
		}
		for r := 0; r < bs.Replicas; r++ {
			idx := bs.replica(key, r)
			if _, err := pl.forward(ctx, bs.gateway, bs.backends[idx].Addr(), MBlockPut, body); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
	bs.gateway.Node.Handle(MBlockRead, func(ctx *rpc.Ctx, body []byte) ([]byte, error) {
		pl.Overhead(ctx.P, bs.gateway)
		d := rpc.NewDec(body)
		key := d.U64()
		if err := d.Err(); err != nil {
			return nil, err
		}
		primary := bs.replica(key, 0)
		return pl.forward(ctx, bs.gateway, bs.backends[primary].Addr(), MBlockGet, body)
	})

	// Backends: persist and serve blocks. A ref argument is retained as-is
	// — the disaggregated pool is the storage tier, so replication holds
	// one copy plus references; inline data is copied into the backend's
	// memory like a conventional store.
	for i, b := range bs.backends {
		i, b := i, b
		b.Node.Handle(MBlockPut, func(ctx *rpc.Ctx, body []byte) ([]byte, error) {
			pl.Overhead(ctx.P, b)
			d := rpc.NewDec(body)
			key := d.U64()
			arg := core.DecodeArg(d)
			if err := d.Err(); err != nil {
				return nil, err
			}
			if !arg.IsRef() {
				buf := make([]byte, arg.Size())
				data, err := b.C.Open(ctx.P, arg)
				if err != nil {
					return nil, err
				}
				if err := data.Read(ctx.P, 0, buf); err != nil {
					return nil, err
				}
				arg = core.InlineArg(buf)
			} else {
				// Durability scrub: the backend verifies it can reach the
				// referenced data (first page) before acking the write.
				data, err := b.C.Open(ctx.P, arg)
				if err != nil {
					return nil, err
				}
				probe := make([]byte, min(512, int(arg.Size())))
				if err := data.Read(ctx.P, 0, probe); err != nil {
					return nil, err
				}
				if err := data.Close(ctx.P); err != nil {
					return nil, err
				}
			}
			if old, dup := bs.blocks[i][key]; dup && old.IsRef() && bs.replica(key, 0) == i {
				// Overwrite: the primary replica owns the ref lifecycle
				// (the replica set of a key is deterministic, so exactly
				// one backend releases the superseded version).
				if err := b.C.Release(ctx.P, old); err != nil {
					return nil, err
				}
			}
			bs.blocks[i][key] = arg
			return nil, nil
		})
		b.Node.Handle(MBlockGet, func(ctx *rpc.Ctx, body []byte) ([]byte, error) {
			pl.Overhead(ctx.P, b)
			d := rpc.NewDec(body)
			key := d.U64()
			if err := d.Err(); err != nil {
				return nil, err
			}
			arg, ok := bs.blocks[i][key]
			if !ok {
				return nil, &rpc.AppError{Status: 2, Msg: "no such block"}
			}
			if !arg.IsRef() {
				b.Host.MemTouch(ctx.P, int(arg.Size()))
			}
			e := rpc.NewEnc(arg.WireSize())
			arg.Encode(e)
			return e.Bytes(), nil
		})
	}
	return bs
}

// replica maps (key, rank) onto a backend index.
func (bs *BlockStore) replica(key uint64, rank int) int {
	return int((key + uint64(rank)) % uint64(len(bs.backends)))
}

// Client returns the client-side service.
func (bs *BlockStore) Client() *Service { return bs.client }

// Gateway returns the gateway service (the data mover whose NIC/memory
// pressure the design relieves).
func (bs *BlockStore) Gateway() *Service { return bs.gateway }

// StoredOn reports which backends hold block key.
func (bs *BlockStore) StoredOn(key uint64) []int {
	var out []int
	for i := range bs.backends {
		if _, ok := bs.blocks[i][key]; ok {
			out = append(out, i)
		}
	}
	return out
}

// Write stores block as key with the configured replication.
func (bs *BlockStore) Write(p *sim.Proc, key uint64, block []byte) error {
	arg, err := bs.client.C.MakeArg(p, block)
	if err != nil {
		return err
	}
	e := rpc.NewEnc(8 + arg.WireSize())
	e.U64(key)
	arg.Encode(e)
	if _, err := bs.client.Node.Call(p, bs.gateway.Addr(), MBlockWrite, e.Bytes()); err != nil {
		return err
	}
	// Ownership of the ref passes to the storage tier: the primary replica
	// releases it when the block is overwritten. The writer never frees.
	return nil
}

// Read fetches block key into a fresh buffer.
func (bs *BlockStore) Read(p *sim.Proc, key uint64) ([]byte, error) {
	resp, err := bs.client.Node.Call(p, bs.gateway.Addr(), MBlockRead,
		rpc.NewEnc(8).U64(key).Bytes())
	if err != nil {
		return nil, err
	}
	arg := core.DecodeArg(rpc.NewDec(resp))
	d, err := bs.client.C.Open(p, arg)
	if err != nil {
		return nil, err
	}
	out, err := d.Bytes(p)
	if err != nil {
		return nil, err
	}
	if err := d.Close(p); err != nil {
		return nil, err
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
