// Socialnetwork runs the DeathStarBench-style social network (paper
// §VI-F, Fig 11) under the eRPC baseline and DmRPC-net at the same offered
// load, showing the data-mover effect: every request crosses 3-5 services
// that only forward the post media.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"

	"repro/internal/msvc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	const mediaSize = 8192
	const rate = 100_000
	fmt.Printf("social network: 60%% read-home / 30%% read-user / 10%% compose, %s media, %s offered\n\n",
		stats.Bytes(mediaSize), stats.Rate(rate))

	for _, mode := range []msvc.Mode{msvc.ModeERPC, msvc.ModeDmNet} {
		pl := msvc.NewPlatform(msvc.DefaultConfig(mode))
		sn := msvc.NewSocialNet(pl, msvc.SocialNetConfig{MediaSize: mediaSize})
		pl.Start()
		if err := sn.Prepopulate(64); err != nil {
			panic(err)
		}
		res := workload.RunOpen(pl.Eng, workload.OpenConfig{
			Rate:    rate,
			Warmup:  2 * sim.Millisecond,
			Measure: 20 * sim.Millisecond,
		}, sn.MixedOp())
		s := res.Latency.Summarize()
		fmt.Printf("%-10s achieved %-12s avg=%-10s p99=%-10s p99.9=%s\n",
			mode, stats.Rate(res.Throughput()),
			stats.Dur(int64(s.Mean)), stats.Dur(s.P99), stats.Dur(s.P999))
		pl.Shutdown()
	}
	fmt.Println("\nDmRPC-net forwards refs through the data movers; eRPC re-ships the media at every hop")
}
