package workload

import (
	"math"
	"testing"
)

// Same seed must reproduce the identical sequence; different seeds must
// diverge — run reproducibility depends on it.
func TestKeyGenDeterministic(t *testing.T) {
	gens := map[string]func(seed uint64) KeyGen{
		"uniform":  func(seed uint64) KeyGen { return NewUniform(1000, seed) },
		"zipf0.99": func(seed uint64) KeyGen { return NewZipf(1000, 0.99, seed) },
		"zipf1.2":  func(seed uint64) KeyGen { return NewZipf(1000, 1.2, seed) },
	}
	for name, mk := range gens {
		a, b, c := mk(42), mk(42), mk(43)
		diverged := false
		for i := 0; i < 1000; i++ {
			x, y := a.Next(), b.Next()
			if x != y {
				t.Fatalf("%s: same seed diverged at draw %d: %d vs %d", name, i, x, y)
			}
			if x >= a.N() {
				t.Fatalf("%s: draw %d out of range: %d", name, i, x)
			}
			if c.Next() != x {
				diverged = true
			}
		}
		if !diverged {
			t.Errorf("%s: different seeds produced identical sequences", name)
		}
	}
}

func TestDeriveSeedSpreads(t *testing.T) {
	seen := make(map[uint64]bool)
	for w := uint64(0); w < 1000; w++ {
		s := DeriveSeed(7, w)
		if seen[s] {
			t.Fatalf("worker %d collides with an earlier worker seed", w)
		}
		seen[s] = true
	}
	if DeriveSeed(7, 0) == DeriveSeed(8, 0) {
		t.Fatal("different run seeds map worker 0 to the same stream seed")
	}
}

// The skew contract: the hottest 1% of ranks must absorb the analytic
// top-1% mass (zeta(n/100)/zeta(n)) within sampling tolerance. At
// s=0.99 over 10k keys that is ~63% of all accesses — the property the
// whole harness exists to model.
func TestZipfTopOnePercentMass(t *testing.T) {
	const n = 10000
	const draws = 200000
	for _, s := range []float64{0.5, 0.99} {
		z := NewZipf(n, s, 1)
		hot := uint64(n / 100)
		want := z.TopMass(hot)
		var inTop int
		for i := 0; i < draws; i++ {
			if z.Next() < hot {
				inTop++
			}
		}
		got := float64(inTop) / draws
		if math.Abs(got-want) > 0.02 {
			t.Errorf("s=%v: top-1%% mass %.4f, want %.4f ±0.02", s, got, want)
		}
		if s == 0.99 && want < 0.5 {
			t.Errorf("s=0.99 analytic top-1%% mass %.4f implausibly low", want)
		}
	}
}

// s=0 must be uniform: top 1% of ranks gets ~1% of draws.
func TestZipfZeroIsUniform(t *testing.T) {
	const n = 10000
	const draws = 100000
	z := NewZipf(n, 0, 1)
	var inTop int
	for i := 0; i < draws; i++ {
		if z.Next() < n/100 {
			inTop++
		}
	}
	got := float64(inTop) / draws
	if math.Abs(got-0.01) > 0.005 {
		t.Errorf("s=0 top-1%% mass %.4f, want ~0.01", got)
	}
}

// Rank 0 must be the hottest and the mass must decay with rank.
func TestZipfRankOrdering(t *testing.T) {
	const n = 1000
	const draws = 100000
	z := NewZipf(n, 0.99, 3)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[1] || counts[1] <= counts[10] || counts[10] <= counts[100] {
		t.Errorf("mass not decaying with rank: c0=%d c1=%d c10=%d c100=%d",
			counts[0], counts[1], counts[10], counts[100])
	}
}
