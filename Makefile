# DmRPC reproduction — standard workflows.

GO ?= go

.PHONY: all build vet test test-short bench experiments experiments-full fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full suite: unit, property, invariant and paper-shape tests (~4 min).
test:
	$(GO) test ./...

# Short mode skips the heavy simulation shape tests (~10 s).
test-short:
	$(GO) test -short ./...

# One benchmark per paper table/figure plus package micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every figure as text tables (quick windows).
experiments:
	$(GO) run ./cmd/dmrpc-bench -experiment all -scale quick

# Paper-scale windows; expect tens of minutes.
experiments-full:
	$(GO) run ./cmd/dmrpc-bench -experiment all -scale full

# Brief fuzzing passes over every wire-facing decoder.
fuzz:
	$(GO) test ./internal/live -run='^$$' -fuzz=FuzzReadFrame -fuzztime=30s
	$(GO) test ./internal/live -run='^$$' -fuzz=FuzzServerDispatch -fuzztime=30s
	$(GO) test ./internal/transport -run='^$$' -fuzz=FuzzDecodeHeader -fuzztime=30s
	$(GO) test ./internal/rpc -run='^$$' -fuzz=FuzzDec -fuzztime=30s
	$(GO) test ./internal/dm -run='^$$' -fuzz=FuzzUnmarshalRef -fuzztime=30s

clean:
	$(GO) clean ./...
