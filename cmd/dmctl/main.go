// Command dmctl pokes a live DM server (cmd/dmserverd) from the command
// line: stage data, read it back through a ref, and micro-benchmark the
// real round-trip costs of the protocol.
//
// Usage:
//
//	dmctl -server localhost:7640 stage -text "hello disaggregated world"
//	dmctl -server localhost:7640 bench -size 32768 -n 1000
//	dmctl -server localhost:7640 roundtrip -size 65536
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/dm"
	"repro/internal/dmwire"
	"repro/internal/live"
	"repro/internal/liverpc"
	"repro/internal/pool"
	"repro/internal/stats"
)

func main() {
	server := flag.String("server", "localhost:7640", "DM server address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	// chain deploys its own service processes and DM sessions (the
	// -server flag may name a comma-separated DM pool for it).
	if args[0] == "chain" {
		cmdChain(strings.Split(*server, ","), args[1:])
		return
	}
	// pool commands drive the sharded cluster layer: -server lists the
	// shard addresses in shard-ID order.
	if args[0] == "pool" {
		cmdPool(strings.Split(*server, ","), args[1:])
		return
	}

	cl, err := live.Dial(*server)
	exitOn(err)
	defer cl.Close()
	exitOn(cl.Register())

	switch args[0] {
	case "stage":
		cmdStage(cl, args[1:])
	case "roundtrip":
		cmdRoundtrip(cl, args[1:])
	case "bench":
		cmdBench(cl, args[1:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: dmctl [-server host:port[,host:port...]] <command>
commands:
  stage     -text <s>           stage a string, print its ref
  roundtrip -size <n>           stage n bytes, read them back, verify
  bench     -size <n> -n <ops>  measure stage/readref/free latency
  chain     -hops <h> -size <n> -n <ops>
                                run the liverpc chain app against the
                                server pool by value and by ref, compare
  pool [-replicas <R>] [-cache-bytes <B>] <subcommand>
                                drive the sharded cluster layer; -server
                                lists shard addresses in shard-ID order,
                                -replicas stages R copies of every
                                payload on its key's ring successors,
                                -cache-bytes enables the hot-ref payload
                                cache (whole-object reads from memory):
    pool stage -text <s>          stage onto a ring-chosen shard, print
                                  the located ref and its v1 wire form
    pool read  -size <n> -n <k>   stage k objects, read each back via its
                                  located ref, print the shard spread
    pool chain -hops <h> -size <n> -n <ops>
                                  chain app with every hop on its own
                                  pool session (located refs end-to-end)
    pool stats -size <n> -n <k> [-json]
                                  run a burst, print aggregate and
                                  per-shard client counters (-json emits
                                  one machine-readable document)
    pool rebalance [-n <k> -size <b>] [-keep] [-json]
                                  stage an optional burst, run one
                                  sync+rebalance pass (adopt handed-off
                                  refs, migrate onto the ring's wanted
                                  placement, reclaim surplus replicas),
                                  print the result and placement audit
    pool registry [-key <k>] [-json]
                                  dump every shard's cluster ref
                                  directory, or query one key across
                                  the shards`)
	os.Exit(2)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmctl:", err)
		os.Exit(1)
	}
}

func cmdStage(cl *live.Client, args []string) {
	fs := flag.NewFlagSet("stage", flag.ExitOnError)
	text := fs.String("text", "hello", "payload to stage")
	fs.Parse(args)
	ref, err := cl.StageRef([]byte(*text))
	exitOn(err)
	fmt.Printf("staged %d bytes as %v (wire form %d bytes)\n", len(*text), ref, len(ref.Marshal()))
}

func cmdRoundtrip(cl *live.Client, args []string) {
	fs := flag.NewFlagSet("roundtrip", flag.ExitOnError)
	size := fs.Int("size", 65536, "payload size")
	fs.Parse(args)
	payload := make([]byte, *size)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	start := time.Now()
	ref, err := cl.StageRef(payload)
	exitOn(err)
	staged := time.Since(start)

	got := make([]byte, *size)
	start = time.Now()
	exitOn(cl.ReadRef(ref, 0, got))
	read := time.Since(start)
	for i := range got {
		if got[i] != payload[i] {
			exitOn(fmt.Errorf("verification failed at byte %d", i))
		}
	}
	exitOn(cl.FreeRef(ref))
	fmt.Printf("staged %s in %v, read back in %v, verified\n",
		stats.Bytes(int64(*size)), staged, read)
}

func cmdBench(cl *live.Client, args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	size := fs.Int("size", 32768, "payload size")
	n := fs.Int("n", 1000, "operations")
	fs.Parse(args)
	payload := make([]byte, *size)
	var stage, read, free stats.Histogram
	buf := make([]byte, *size)
	total := time.Now()
	for i := 0; i < *n; i++ {
		t0 := time.Now()
		ref, err := cl.StageRef(payload)
		exitOn(err)
		stage.Record(time.Since(t0).Nanoseconds())

		t0 = time.Now()
		exitOn(cl.ReadRef(ref, 0, buf))
		read.Record(time.Since(t0).Nanoseconds())

		t0 = time.Now()
		exitOn(cl.FreeRef(ref))
		free.Record(time.Since(t0).Nanoseconds())
	}
	elapsed := time.Since(total)
	fmt.Printf("%d ops of %s over real TCP in %v (%.0f cycles/s)\n",
		*n, stats.Bytes(int64(*size)), elapsed.Round(time.Millisecond),
		float64(*n)/elapsed.Seconds())
	fmt.Printf("stage:    %s\n", stage.Summarize())
	fmt.Printf("read_ref: %s\n", read.Summarize())
	fmt.Printf("free_ref: %s\n", free.Summarize())
}

// cmdChain runs the liverpc chain application (paper Fig 5) against the
// DM pool, once passing the payload by value through every hop and once
// passing it by reference, then prints the side-by-side latencies.
func cmdChain(dmAddrs []string, args []string) {
	fs := flag.NewFlagSet("chain", flag.ExitOnError)
	hops := fs.Int("hops", 3, "chain length (services)")
	size := fs.Int("size", 65536, "payload size in bytes")
	n := fs.Int("n", 200, "calls per mode")
	fs.Parse(args)

	payload := make([]byte, *size)
	apps.FillPayload(payload, uint64(*size))
	want := apps.Aggregate(payload)

	run := func(mode string, cfg liverpc.Config) *stats.Histogram {
		d, err := liverpc.DeployChain(*hops, dmAddrs, cfg)
		exitOn(err)
		defer d.Close()
		var h stats.Histogram
		for i := 0; i < *n; i++ {
			t0 := time.Now()
			got, err := d.Client.Do(payload)
			exitOn(err)
			h.Record(time.Since(t0).Nanoseconds())
			if got != want {
				exitOn(fmt.Errorf("%s chain returned sum %d, want %d", mode, got, want))
			}
		}
		fmt.Printf("%-8s  %s\n", mode, h.Summarize())
		return &h
	}

	fmt.Printf("chain: %d hops, %s payload, %d calls per mode\n",
		*hops, stats.Bytes(int64(*size)), *n)
	val := run("by-value", liverpc.Config{ForceInline: true})
	ref := run("by-ref", liverpc.Config{})
	vm, rm := val.Mean(), ref.Mean()
	switch {
	case rm < vm:
		fmt.Printf("by-ref wins: %.2fx faster at this size\n", vm/rm)
	default:
		fmt.Printf("by-value wins: %.2fx faster at this size (payload below crossover)\n", rm/vm)
	}
}

// cmdPool dispatches the sharded-cluster subcommands. Pool-level flags
// (before the subcommand) shape the client every subcommand shares:
//
//	dmctl -server a,b,c pool -replicas 2 stats -n 500
//
// Every subcommand registers one pool client over the shard list
// (shard ID = position).
func cmdPool(addrs []string, args []string) {
	fs := flag.NewFlagSet("pool", flag.ExitOnError)
	replicas := fs.Int("replicas", 1, "replica factor R: copies of every staged payload, placed on the R ring successors of its key")
	cacheBytes := fs.Int64("cache-bytes", 0, "pool-level hot-ref cache budget in bytes (0 disables); whole-object reads hit memory before any shard RPC")
	registry := fs.Bool("registry", false, "publish staged refs to the shard-side cluster registry, so they survive this session and other sessions can adopt them (DESIGN.md §D16)")
	fs.Parse(args)
	args = fs.Args()
	if len(args) == 0 {
		usage()
	}
	if args[0] == "chain" {
		cmdPoolChain(addrs, args[1:])
		return
	}
	// The registry and rebalance subcommands only make sense with the
	// registry machinery on; flip it for them regardless of -registry.
	handoff := *registry || args[0] == "registry" || args[0] == "rebalance"
	p, err := pool.Dial(pool.Config{Shards: addrs, ReplicaFactor: *replicas, CacheBytes: *cacheBytes, RegistryHandoff: handoff})
	exitOn(err)
	defer p.Close()
	exitOn(p.Register())
	switch args[0] {
	case "stage":
		cmdPoolStage(p, args[1:])
	case "read":
		cmdPoolRead(p, args[1:])
	case "stats":
		cmdPoolStats(p, args[1:])
	case "rebalance":
		cmdPoolRebalance(p, args[1:])
	case "registry":
		cmdPoolRegistry(p, args[1:])
	default:
		usage()
	}
}

func cmdPoolStage(p *pool.Client, args []string) {
	fs := flag.NewFlagSet("pool stage", flag.ExitOnError)
	text := fs.String("text", "hello", "payload to stage")
	fs.Parse(args)
	ref, err := p.StageRef([]byte(*text))
	exitOn(err)
	if reps := p.Replicas(ref); len(reps) >= 2 {
		wire := dmwire.LocateReplicated(ref, reps).Marshal()
		fmt.Printf("staged %d bytes on shards %v as %v (replicated wire form %d bytes: %x)\n",
			len(*text), reps, ref, len(wire), wire)
		return
	}
	wire := dmwire.Locate(ref).Marshal()
	fmt.Printf("staged %d bytes on shard %d as %v (located wire form %d bytes: %x)\n",
		len(*text), ref.Server, ref, len(wire), wire)
}

func cmdPoolRead(p *pool.Client, args []string) {
	fs := flag.NewFlagSet("pool read", flag.ExitOnError)
	size := fs.Int("size", 32768, "payload size per object")
	n := fs.Int("n", 64, "objects to stage and read back")
	fs.Parse(args)
	payload := make([]byte, *size)
	apps.FillPayload(payload, uint64(*size))
	perShard := make(map[uint32]int)
	buf := make([]byte, *size)
	start := time.Now()
	for i := 0; i < *n; i++ {
		ref, err := p.StageRef(payload)
		exitOn(err)
		perShard[ref.Server]++
		exitOn(p.ReadRef(ref, 0, buf))
		for j := range buf {
			if buf[j] != payload[j] {
				exitOn(fmt.Errorf("object %d corrupt at byte %d", i, j))
			}
		}
		exitOn(p.FreeRef(ref))
	}
	elapsed := time.Since(start)
	fmt.Printf("%d objects of %s staged+read+verified across %d shards in %v\n",
		*n, stats.Bytes(int64(*size)), p.Shards(), elapsed.Round(time.Millisecond))
	for id := uint32(0); int(id) < p.Shards(); id++ {
		fmt.Printf("  shard %d: %d objects\n", id, perShard[id])
	}
	fmt.Printf("healthy shards: %v\n", p.Healthy())
}

// cmdPoolRebalance stages an optional burst, then triggers one
// synchronous sync+rebalance pass and prints what it did: refs
// migrated onto their wanted ring placement, surplus replicas
// reclaimed, and the placement audit (off_placement 0 = converged).
// With the registry machinery on, the sync half first adopts any
// directory entries other sessions handed off to the shards.
func cmdPoolRebalance(p *pool.Client, args []string) {
	fs := flag.NewFlagSet("pool rebalance", flag.ExitOnError)
	size := fs.Int("size", 32768, "payload size per staged object")
	n := fs.Int("n", 0, "objects to stage before rebalancing (0 = rebalance what's already there)")
	keep := fs.Bool("keep", false, "leave staged objects behind (registry handoff keeps them alive for other sessions)")
	asJSON := fs.Bool("json", false, "emit the result as one JSON document")
	fs.Parse(args)
	payload := make([]byte, *size)
	apps.FillPayload(payload, uint64(*size))
	var staged []dm.Ref
	for i := 0; i < *n; i++ {
		ref, err := p.StageRef(payload)
		exitOn(err)
		staged = append(staged, ref)
	}
	res := p.Rebalance()
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		exitOn(enc.Encode(res))
	} else {
		fmt.Printf("rebalance: migrated_refs=%d migrated_bytes=%d reclaimed_replicas=%d repairs_done=%d errors=%d\n",
			res.MigratedRefs, res.MigratedBytes, res.ReclaimedReplicas, res.RepairsDone, res.Errors)
		fmt.Printf("placement: tracked_refs=%d off_placement=%d under_replicated=%d healthy=%v\n",
			res.TrackedRefs, res.OffPlacement, p.UnderReplicated(), p.Healthy())
	}
	if !*keep {
		for _, ref := range staged {
			exitOn(p.FreeRef(ref))
		}
	}
}

// cmdPoolRegistry dumps the shard-side cluster ref directory — every
// shard's authoritative slice, paged over the anti-entropy sync RPC —
// or, with -key, queries each shard for one entry.
func cmdPoolRegistry(p *pool.Client, args []string) {
	fs := flag.NewFlagSet("pool registry", flag.ExitOnError)
	key := fs.Uint64("key", 0, "query this cluster key instead of dumping everything")
	asJSON := fs.Bool("json", false, "emit the dump as one JSON document")
	fs.Parse(args)
	type regRow struct {
		Shard    uint32   `json:"shard"`
		Key      uint64   `json:"key"`
		Size     int64    `json:"size"`
		Epoch    uint64   `json:"epoch"`
		Replicas []uint32 `json:"replicas"`
	}
	var rows []regRow
	for id := uint32(0); int(id) < p.Shards(); id++ {
		if *key != 0 {
			ent, err := p.RegistryLookup(id, *key)
			if err != nil {
				continue // no entry on this shard (or shard down)
			}
			rows = append(rows, regRow{id, ent.Key, ent.Size, ent.Epoch, ent.Replicas})
			continue
		}
		after := uint64(0)
		for {
			page, err := p.RegistryEntries(id, after, dmwire.MaxRegSyncEntries)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dmctl: shard %d registry: %v\n", id, err)
				break
			}
			for _, ent := range page {
				rows = append(rows, regRow{id, ent.Key, ent.Size, ent.Epoch, ent.Replicas})
			}
			if len(page) < dmwire.MaxRegSyncEntries {
				break
			}
			after = page[len(page)-1].Key
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		exitOn(enc.Encode(rows))
		return
	}
	if len(rows) == 0 {
		fmt.Println("registry: no entries")
		return
	}
	for _, r := range rows {
		fmt.Printf("shard %d: key=%#x size=%d epoch=%d replicas=%v\n",
			r.Shard, r.Key, r.Size, r.Epoch, r.Replicas)
	}
}

// cmdPoolChain is cmdChain with every hop holding its own POOL session:
// refs cross the chain in the v1 located wire form, so any hop can fetch
// from whichever shard the payload landed on.
func cmdPoolChain(addrs []string, args []string) {
	fs := flag.NewFlagSet("pool chain", flag.ExitOnError)
	hops := fs.Int("hops", 3, "chain length (services)")
	size := fs.Int("size", 65536, "payload size in bytes")
	n := fs.Int("n", 200, "calls per mode")
	fs.Parse(args)

	payload := make([]byte, *size)
	apps.FillPayload(payload, uint64(*size))
	want := apps.Aggregate(payload)

	newSession := func() (liverpc.DM, error) {
		p, err := pool.Dial(pool.Config{Shards: addrs})
		if err != nil {
			return nil, err
		}
		if err := p.Register(); err != nil {
			p.Close()
			return nil, err
		}
		return p, nil
	}
	run := func(mode string, cfg liverpc.Config) *stats.Histogram {
		d, err := liverpc.DeployChainWith(*hops, newSession, cfg)
		exitOn(err)
		defer d.Close()
		var h stats.Histogram
		for i := 0; i < *n; i++ {
			t0 := time.Now()
			got, err := d.Client.Do(payload)
			exitOn(err)
			h.Record(time.Since(t0).Nanoseconds())
			if got != want {
				exitOn(fmt.Errorf("%s chain returned sum %d, want %d", mode, got, want))
			}
		}
		fmt.Printf("%-8s  %s\n", mode, h.Summarize())
		return &h
	}

	fmt.Printf("pool chain: %d hops over %d shards, %s payload, %d calls per mode\n",
		*hops, len(addrs), stats.Bytes(int64(*size)), *n)
	val := run("by-value", liverpc.Config{ForceInline: true})
	ref := run("by-ref", liverpc.Config{})
	vm, rm := val.Mean(), ref.Mean()
	switch {
	case rm < vm:
		fmt.Printf("by-ref wins: %.2fx faster at this size\n", vm/rm)
	default:
		fmt.Printf("by-value wins: %.2fx faster at this size (payload below crossover)\n", rm/vm)
	}
}

// poolStatsDoc is the `pool stats -json` document: the same counters the
// human-readable print shows, in a machine-diffable shape (latencies in
// nanoseconds) so scripts and the load harness can consume them.
type poolStatsDoc struct {
	Aggregate   poolCounters    `json:"aggregate"`
	Shards      []poolShardDoc  `json:"shards"`
	Sessions    map[string]int  `json:"sessions"` // addr -> consecutive heartbeat failures
	Replication *poolReplicaDoc `json:"replication,omitempty"`
	Cache       *poolCacheDoc   `json:"cache,omitempty"`
	Healthy     []uint32        `json:"healthy_shards"`
}

// poolCacheDoc is the pool-level hot-ref cache section (§D15), present
// only when -cache-bytes enabled it.
type poolCacheDoc struct {
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	Admits        int64   `json:"admits"`
	Rejects       int64   `json:"rejects"`
	Evictions     int64   `json:"evictions"`
	Invalidations int64   `json:"invalidations"`
	Coalesced     int64   `json:"coalesced"`
	Bytes         int64   `json:"bytes"`
	Entries       int64   `json:"entries"`
	HitRate       float64 `json:"hit_rate"`
}

type poolCounters struct {
	Calls             int64 `json:"calls"`
	Retries           int64 `json:"retries"`
	DedupReplays      int64 `json:"dedup_replays"`
	Failures          int64 `json:"failures"`
	Timeouts          int64 `json:"timeouts"`
	TransportErrors   int64 `json:"transport_errors"`
	HeartbeatFailures int64 `json:"heartbeat_failures"`
	CreditWaits       int64 `json:"credit_waits"`
	CreditSheds       int64 `json:"credit_sheds"`
	CacheHits         int64 `json:"cache_hits"`
	CacheMisses       int64 `json:"cache_misses"`
	CacheAdmits       int64 `json:"cache_admits"`
	CacheEvictions    int64 `json:"cache_evictions"`
	CacheInvalidation int64 `json:"cache_invalidations"`
	CacheCoalesced    int64 `json:"cache_coalesced"`
	P50Ns             int64 `json:"p50_ns"`
	P99Ns             int64 `json:"p99_ns"`
	P999Ns            int64 `json:"p999_ns"`
}

type poolShardDoc struct {
	ID uint32 `json:"id"`
	poolCounters
}

type poolReplicaDoc struct {
	R                 int                `json:"r"`
	TrackedRefs       int                `json:"tracked_refs"`
	UnderReplicated   int                `json:"under_replicated"`
	FailoverReads     int64              `json:"failover_reads"`
	RepairsDone       int64              `json:"repairs_done"`
	RepairErrors      int64              `json:"repair_errors"`
	RepairBytes       int64              `json:"repair_bytes"`
	MigratedRefs      int64              `json:"migrated_refs"`
	MigratedBytes     int64              `json:"migrated_bytes"`
	ReclaimedReplicas int64              `json:"reclaimed_replicas"`
	Shards            []pool.ReplicaStat `json:"shards"`
}

func poolCountersOf(st live.Stats, lat stats.Summary) poolCounters {
	return poolCounters{
		Calls:             st.Calls,
		Retries:           st.Retries,
		DedupReplays:      st.DedupReplays,
		Failures:          st.Failures,
		Timeouts:          st.Timeouts,
		TransportErrors:   st.TransportErrors,
		HeartbeatFailures: st.HeartbeatFailures,
		CreditWaits:       st.CreditWaits,
		CreditSheds:       st.CreditSheds,
		CacheHits:         st.CacheHits,
		CacheMisses:       st.CacheMisses,
		CacheAdmits:       st.CacheAdmits,
		CacheEvictions:    st.CacheEvictions,
		CacheInvalidation: st.CacheInvalidations,
		CacheCoalesced:    st.CacheCoalesced,
		P50Ns:             lat.P50,
		P99Ns:             lat.P99,
		P999Ns:            lat.P999,
	}
}

func cmdPoolStats(p *pool.Client, args []string) {
	fs := flag.NewFlagSet("pool stats", flag.ExitOnError)
	size := fs.Int("size", 32768, "payload size per op")
	n := fs.Int("n", 200, "stage/read/free cycles to run")
	asJSON := fs.Bool("json", false, "emit one machine-readable JSON document instead of text")
	fs.Parse(args)
	payload := make([]byte, *size)
	buf := make([]byte, *size)
	for i := 0; i < *n; i++ {
		ref, err := p.StageRef(payload)
		exitOn(err)
		exitOn(p.ReadRef(ref, 0, buf))
		if p.CacheEnabled() {
			// A second read of the same ref: the first populated the
			// hot-ref cache, so this one should hit — making the cache
			// counters below meaningful.
			exitOn(p.ReadRef(ref, 0, buf))
		}
		exitOn(p.FreeRef(ref))
	}
	agg := p.Stats()
	lat := p.Latency()
	shardLat := p.ShardLatency()
	shardStats := p.ShardStats()

	if *asJSON {
		doc := poolStatsDoc{
			Aggregate: poolCountersOf(agg, lat),
			Sessions:  p.SessionHealth(),
			Healthy:   p.Healthy(),
		}
		for id, st := range shardStats {
			doc.Shards = append(doc.Shards, poolShardDoc{
				ID:           uint32(id),
				poolCounters: poolCountersOf(st, shardLat[id]),
			})
		}
		if p.ReplicaFactorEffective() > 1 {
			doc.Replication = &poolReplicaDoc{
				R:                 p.ReplicaFactorEffective(),
				TrackedRefs:       p.TrackedRefs(),
				UnderReplicated:   p.UnderReplicated(),
				FailoverReads:     p.FailoverReads(),
				RepairsDone:       p.RepairsDone(),
				RepairErrors:      p.RepairErrors(),
				RepairBytes:       p.RepairBytes(),
				MigratedRefs:      p.MigratedRefs(),
				MigratedBytes:     p.MigratedBytes(),
				ReclaimedReplicas: p.ReclaimedReplicas(),
				Shards:            p.ReplicaStats(),
			}
		}
		if p.CacheEnabled() {
			cs := p.CacheStats()
			doc.Cache = &poolCacheDoc{
				Hits:          cs.Hits,
				Misses:        cs.Misses,
				Admits:        cs.Admits,
				Rejects:       cs.Rejects,
				Evictions:     cs.Evictions,
				Invalidations: cs.Invalidations,
				Coalesced:     cs.Coalesced,
				Bytes:         cs.Bytes,
				Entries:       cs.Entries,
				HitRate:       hitRate(cs.Hits, cs.Misses),
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		exitOn(enc.Encode(doc))
		return
	}

	fmt.Printf("aggregate: calls=%d retries=%d dedup_replays=%d failures=%d timeouts=%d transport_errors=%d heartbeat_failures=%d credit_waits=%d credit_sheds=%d p50=%s p99=%s\n",
		agg.Calls, agg.Retries, agg.DedupReplays, agg.Failures, agg.Timeouts, agg.TransportErrors,
		agg.HeartbeatFailures, agg.CreditWaits, agg.CreditSheds, stats.Dur(lat.P50), stats.Dur(lat.P99))
	for id, st := range shardStats {
		fmt.Printf("  shard %d: calls=%d retries=%d dedup_replays=%d failures=%d timeouts=%d transport_errors=%d heartbeat_failures=%d p50=%s p99=%s\n",
			id, st.Calls, st.Retries, st.DedupReplays, st.Failures, st.Timeouts, st.TransportErrors,
			st.HeartbeatFailures, stats.Dur(shardLat[id].P50), stats.Dur(shardLat[id].P99))
	}
	for addr, consec := range p.SessionHealth() {
		fmt.Printf("  session %s: consecutive heartbeat failures %d\n", addr, consec)
	}
	if p.ReplicaFactorEffective() > 1 {
		fmt.Printf("replication: R=%d tracked_refs=%d under_replicated=%d failover_reads=%d repairs_done=%d repair_errors=%d repair_bytes=%d\n",
			p.ReplicaFactorEffective(), p.TrackedRefs(), p.UnderReplicated(),
			p.FailoverReads(), p.RepairsDone(), p.RepairErrors(), p.RepairBytes())
		fmt.Printf("migration: migrated_refs=%d migrated_bytes=%d reclaimed_replicas=%d\n",
			p.MigratedRefs(), p.MigratedBytes(), p.ReclaimedReplicas())
		for _, st := range p.ReplicaStats() {
			fmt.Printf("  shard %d: healthy=%v refs_primary=%d refs_replica=%d failover_reads=%d repairs_in=%d\n",
				st.Shard, st.Healthy, st.RefsPrimary, st.RefsReplica, st.FailoverReads, st.RepairsIn)
		}
	}
	if p.CacheEnabled() {
		cs := p.CacheStats()
		fmt.Printf("cache: hits=%d misses=%d hit_rate=%.2f admits=%d rejects=%d evictions=%d invalidations=%d coalesced=%d bytes=%d entries=%d\n",
			cs.Hits, cs.Misses, hitRate(cs.Hits, cs.Misses),
			cs.Admits, cs.Rejects, cs.Evictions, cs.Invalidations, cs.Coalesced, cs.Bytes, cs.Entries)
	}
}

// hitRate is hits/(hits+misses), 0 when no lookups ran.
func hitRate(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}
