package transport

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// testEnv wires a client endpoint and an echo-style server endpoint.
type testEnv struct {
	eng    *sim.Engine
	net    *simnet.Network
	client *Endpoint
	server *Endpoint
}

func newEnv(seed int64, mutate func(*simnet.Config, *Config)) *testEnv {
	eng := sim.NewEngine(seed)
	ncfg := simnet.DefaultConfig()
	tcfg := DefaultConfig()
	if mutate != nil {
		mutate(&ncfg, &tcfg)
	}
	n := simnet.New(eng, ncfg)
	ch := n.AddHost("client")
	sh := n.AddHost("server")
	ce := NewEndpoint(ch, 1, tcfg)
	se := NewEndpoint(sh, 1, tcfg)
	ce.Start()
	se.Start()
	return &testEnv{eng: eng, net: n, client: ce, server: se}
}

// startEcho runs a server loop that responds to every request by applying fn.
func (env *testEnv) startEcho(fn func([]byte) []byte) {
	env.eng.Spawn("server", func(p *sim.Proc) {
		for {
			r := env.server.Requests().Recv(p)
			if err := r.Respond(p, fn(r.Payload)); err != nil {
				panic(err)
			}
		}
	})
}

func TestSmallRequestResponse(t *testing.T) {
	env := newEnv(1, nil)
	env.startEcho(func(b []byte) []byte { return append([]byte("echo:"), b...) })
	sess := env.client.Connect(env.server.Addr())
	var got []byte
	env.eng.Spawn("client", func(p *sim.Proc) {
		resp, err := sess.Call(p, []byte("hello"))
		if err != nil {
			t.Errorf("Call: %v", err)
		}
		got = resp
	})
	env.eng.Run()
	env.eng.Shutdown()
	if string(got) != "echo:hello" {
		t.Fatalf("response %q", got)
	}
}

func TestLargeMessagePacketizes(t *testing.T) {
	env := newEnv(1, nil)
	env.startEcho(func(b []byte) []byte { return b })
	sess := env.client.Connect(env.server.Addr())
	msg := make([]byte, 100_000) // ~25 packets at 4 KiB MTU
	rand.New(rand.NewSource(2)).Read(msg)
	var got []byte
	env.eng.Spawn("client", func(p *sim.Proc) {
		resp, err := sess.Call(p, msg)
		if err != nil {
			t.Errorf("Call: %v", err)
		}
		got = resp
	})
	env.eng.Run()
	env.eng.Shutdown()
	if !bytes.Equal(got, msg) {
		t.Fatalf("large echo corrupted: got %d bytes, want %d", len(got), len(msg))
	}
	if env.net.SentPackets() < 50 {
		t.Fatalf("SentPackets = %d, expected >= 50 for 2x100KB", env.net.SentPackets())
	}
}

func TestEmptyMessage(t *testing.T) {
	env := newEnv(1, nil)
	env.startEcho(func(b []byte) []byte { return []byte{} })
	sess := env.client.Connect(env.server.Addr())
	done := false
	env.eng.Spawn("client", func(p *sim.Proc) {
		resp, err := sess.Call(p, nil)
		if err != nil {
			t.Errorf("Call: %v", err)
		}
		if len(resp) != 0 {
			t.Errorf("resp = %v, want empty", resp)
		}
		done = true
	})
	env.eng.Run()
	env.eng.Shutdown()
	if !done {
		t.Fatal("call never completed")
	}
}

func TestTooLargeMessageRejected(t *testing.T) {
	env := newEnv(1, func(_ *simnet.Config, tc *Config) { tc.MaxMessageSize = 100 })
	sess := env.client.Connect(env.server.Addr())
	env.eng.Spawn("client", func(p *sim.Proc) {
		if _, err := sess.Call(p, make([]byte, 101)); err != ErrTooLarge {
			t.Errorf("err = %v, want ErrTooLarge", err)
		}
	})
	env.eng.Run()
	env.eng.Shutdown()
}

func TestConcurrentCallsOnOneSession(t *testing.T) {
	env := newEnv(1, nil)
	env.startEcho(func(b []byte) []byte { return b })
	sess := env.client.Connect(env.server.Addr())
	const calls = 32
	ok := 0
	for i := 0; i < calls; i++ {
		msg := []byte(fmt.Sprintf("msg-%02d", i))
		env.eng.Spawn("client", func(p *sim.Proc) {
			resp, err := sess.Call(p, msg)
			if err != nil {
				t.Errorf("Call: %v", err)
				return
			}
			if !bytes.Equal(resp, msg) {
				t.Errorf("cross-talk: got %q want %q", resp, msg)
				return
			}
			ok++
		})
	}
	env.eng.Run()
	env.eng.Shutdown()
	if ok != calls {
		t.Fatalf("%d/%d calls succeeded", ok, calls)
	}
}

func TestWindowLimitsInflight(t *testing.T) {
	env := newEnv(1, func(_ *simnet.Config, tc *Config) { tc.Window = 2 })
	// Server that delays responses so requests pile up.
	env.eng.Spawn("server", func(p *sim.Proc) {
		for {
			r := env.server.Requests().Recv(p)
			p.Sleep(10 * sim.Microsecond)
			if err := r.Respond(p, r.Payload); err != nil {
				panic(err)
			}
		}
	})
	sess := env.client.Connect(env.server.Addr())
	var finished []sim.Time
	for i := 0; i < 4; i++ {
		env.eng.Spawn("client", func(p *sim.Proc) {
			if _, err := sess.Call(p, []byte("x")); err != nil {
				t.Errorf("Call: %v", err)
			}
			finished = append(finished, p.Now())
		})
	}
	env.eng.Run()
	env.eng.Shutdown()
	if len(finished) != 4 {
		t.Fatalf("finished %d calls", len(finished))
	}
	// With window 2 and a serial 10µs server, the last completion is >= 2
	// server batches after the first two.
	if finished[3] < 30*sim.Microsecond {
		t.Fatalf("window not enforced: last completion at %s", fmtDur(finished[3]))
	}
}

func fmtDur(t sim.Time) string { return fmt.Sprintf("%dns", t) }

func TestRetransmissionUnderLoss(t *testing.T) {
	env := newEnv(7, func(nc *simnet.Config, tc *Config) {
		nc.LossRate = 0.2
		tc.RTO = 50 * sim.Microsecond
		tc.MaxRetries = 50
	})
	handled := 0
	env.eng.Spawn("server", func(p *sim.Proc) {
		for {
			r := env.server.Requests().Recv(p)
			handled++
			if err := r.Respond(p, r.Payload); err != nil {
				panic(err)
			}
		}
	})
	sess := env.client.Connect(env.server.Addr())
	const calls = 100
	ok := 0
	env.eng.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < calls; i++ {
			msg := []byte(fmt.Sprintf("payload-%d", i))
			resp, err := sess.Call(p, msg)
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				continue
			}
			if !bytes.Equal(resp, msg) {
				t.Errorf("call %d corrupted: %q", i, resp)
				continue
			}
			ok++
		}
	})
	env.eng.Run()
	env.eng.Shutdown()
	if ok != calls {
		t.Fatalf("%d/%d calls succeeded under loss", ok, calls)
	}
	// Exactly-once delivery to the handler despite retransmissions.
	if handled != calls {
		t.Fatalf("handler ran %d times for %d requests", handled, calls)
	}
	if env.client.Retransmits() == 0 {
		t.Fatal("expected retransmissions under 20% loss")
	}
}

func TestMultiPacketUnderLoss(t *testing.T) {
	env := newEnv(11, func(nc *simnet.Config, tc *Config) {
		nc.LossRate = 0.1
		tc.RTO = 100 * sim.Microsecond
		tc.MaxRetries = 60
	})
	env.startEcho(func(b []byte) []byte { return b })
	sess := env.client.Connect(env.server.Addr())
	msg := make([]byte, 50_000)
	rand.New(rand.NewSource(3)).Read(msg)
	okCh := false
	env.eng.Spawn("client", func(p *sim.Proc) {
		resp, err := sess.Call(p, msg)
		if err != nil {
			t.Errorf("Call: %v", err)
			return
		}
		if !bytes.Equal(resp, msg) {
			t.Error("multi-packet message corrupted under loss")
			return
		}
		okCh = true
	})
	env.eng.Run()
	env.eng.Shutdown()
	if !okCh {
		t.Fatal("call did not complete")
	}
}

func TestTimeoutAfterMaxRetries(t *testing.T) {
	env := newEnv(1, func(nc *simnet.Config, tc *Config) {
		tc.RTO = 10 * sim.Microsecond
		tc.MaxRetries = 2
	})
	// No server loop: requests reach the endpoint but are never responded.
	// Use an unstarted far endpoint by sending to an unbound port instead.
	sess := env.client.Connect(simnet.Addr{Host: env.server.Host().ID(), Port: 999})
	var err error
	env.eng.Spawn("client", func(p *sim.Proc) {
		_, err = sess.Call(p, []byte("void"))
	})
	env.eng.Run()
	env.eng.Shutdown()
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestDuplicateRespondRejected(t *testing.T) {
	env := newEnv(1, nil)
	var dupErr error
	env.eng.Spawn("server", func(p *sim.Proc) {
		r := env.server.Requests().Recv(p)
		if err := r.Respond(p, []byte("a")); err != nil {
			t.Errorf("first Respond: %v", err)
		}
		dupErr = r.Respond(p, []byte("b"))
	})
	sess := env.client.Connect(env.server.Addr())
	env.eng.Spawn("client", func(p *sim.Proc) {
		if _, err := sess.Call(p, []byte("x")); err != nil {
			t.Errorf("Call: %v", err)
		}
	})
	env.eng.Run()
	env.eng.Shutdown()
	if dupErr == nil {
		t.Fatal("second Respond succeeded")
	}
}

func TestTwoSessionsAreIsolated(t *testing.T) {
	env := newEnv(1, nil)
	env.startEcho(func(b []byte) []byte { return b })
	s1 := env.client.Connect(env.server.Addr())
	s2 := env.client.Connect(env.server.Addr())
	results := map[string]string{}
	call := func(s *Session, msg string) {
		env.eng.Spawn("client", func(p *sim.Proc) {
			resp, err := s.Call(p, []byte(msg))
			if err != nil {
				t.Errorf("Call: %v", err)
				return
			}
			results[msg] = string(resp)
		})
	}
	call(s1, "one")
	call(s2, "two")
	env.eng.Run()
	env.eng.Shutdown()
	if results["one"] != "one" || results["two"] != "two" {
		t.Fatalf("results %v", results)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	prop := func(kind byte, sid uint32, rid, acked uint64, idx, num uint16, size uint32) bool {
		h := header{kind: kind, sessionID: sid, reqID: rid, ackedUpTo: acked, pktIdx: idx, numPkts: num, msgSize: size}
		buf := make([]byte, headerSize)
		h.encode(buf)
		got, err := decodeHeader(buf)
		return err == nil && got == h
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestShortPacketRejected(t *testing.T) {
	if _, err := decodeHeader(make([]byte, headerSize-1)); err == nil {
		t.Fatal("short packet accepted")
	}
}

// Property: for any payload size, echo round trip preserves content exactly.
func TestEchoRoundTripProperty(t *testing.T) {
	prop := func(seed int64, sizeRaw uint16) bool {
		size := int(sizeRaw) % 20000
		env := newEnv(seed, nil)
		env.startEcho(func(b []byte) []byte { return b })
		sess := env.client.Connect(env.server.Addr())
		msg := make([]byte, size)
		rand.New(rand.NewSource(seed)).Read(msg)
		ok := false
		env.eng.Spawn("client", func(p *sim.Proc) {
			resp, err := sess.Call(p, msg)
			ok = err == nil && bytes.Equal(resp, msg)
		})
		env.eng.Run()
		env.eng.Shutdown()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRTTMatchesCostModel(t *testing.T) {
	env := newEnv(1, nil)
	env.startEcho(func(b []byte) []byte { return b })
	sess := env.client.Connect(env.server.Addr())
	var rtt sim.Time
	env.eng.Spawn("client", func(p *sim.Proc) {
		start := p.Now()
		if _, err := sess.Call(p, make([]byte, 32)); err != nil {
			t.Errorf("Call: %v", err)
		}
		rtt = p.Now() - start
	})
	env.eng.Run()
	env.eng.Shutdown()
	// Paper-scale kernel-bypass RPC RTT is a few microseconds.
	if rtt < 1*sim.Microsecond || rtt > 10*sim.Microsecond {
		t.Fatalf("32B RTT = %dns, want 1-10µs", rtt)
	}
}
