// Package bench is the experiment harness: one function per table/figure
// of the paper's evaluation (§VI), each returning typed rows and able to
// print itself in the paper's shape. The root bench_test.go exposes every
// experiment as a testing.B benchmark; cmd/dmrpc-bench runs them with full
// windows and regenerates EXPERIMENTS.md data.
package bench

import (
	"fmt"
	"io"

	"repro/internal/sim"
)

// Scale selects measurement windows.
type Scale int

const (
	// Quick uses short windows: suitable for go test -bench and CI.
	Quick Scale = iota
	// Full uses paper-scale windows; used by cmd/dmrpc-bench.
	Full
)

// windows returns (warmup, measure) for the scale.
func (s Scale) windows() (sim.Time, sim.Time) {
	if s == Full {
		return 20 * sim.Millisecond, 200 * sim.Millisecond
	}
	return 2 * sim.Millisecond, 20 * sim.Millisecond
}

// Experiment identifies one reproducible artifact.
type Experiment struct {
	// ID is the figure/table id from DESIGN.md (e.g. "fig5a").
	ID string
	// Title is a one-line description.
	Title string
	// Run executes the experiment and writes its table to w.
	Run func(w io.Writer, scale Scale)
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "fig5a", Title: "Nested RPC chain: throughput vs chain length", Run: func(w io.Writer, s Scale) { Fig5(s).Print(w) }},
		{ID: "fig5b", Title: "Nested RPC chain: average latency vs chain length", Run: func(w io.Writer, s Scale) { Fig5(s).PrintLatency(w) }},
		{ID: "fig6", Title: "Application-layer LB: throughput and memory bandwidth", Run: func(w io.Writer, s Scale) { Fig6(s).Print(w) }},
		{ID: "fig7a", Title: "create_ref request rate: CoW vs unconditional copy", Run: func(w io.Writer, s Scale) { Fig7(s).PrintRate(w) }},
		{ID: "fig7b", Title: "create_ref response time: CoW vs unconditional copy", Run: func(w io.Writer, s Scale) { Fig7(s).PrintLatency(w) }},
		{ID: "fig7c", Title: "DM memory traffic per request", Run: func(w io.Writer, s Scale) { Fig7(s).PrintTraffic(w) }},
		{ID: "fig8a", Title: "vs Ray/Spark: throughput vs write percentage", Run: func(w io.Writer, s Scale) { Fig8(s).PrintThroughput(w) }},
		{ID: "fig8b", Title: "vs Ray/Spark: latency vs write percentage", Run: func(w io.Writer, s Scale) { Fig8(s).PrintLatency(w) }},
		{ID: "fig10a", Title: "Cloud image processing: throughput vs image size", Run: func(w io.Writer, s Scale) { Fig10a(s).Print(w) }},
		{ID: "fig10b", Title: "Cloud image processing: latency percentiles at 4KiB", Run: func(w io.Writer, s Scale) { Fig10b(s).Print(w) }},
		{ID: "fig11", Title: "DeathStarBench social network: latency vs request rate", Run: func(w io.Writer, s Scale) { Fig11(s).Print(w) }},
		{ID: "fig12a", Title: "DmRPC-CXL micro-benchmark vs CXL latency", Run: func(w io.Writer, s Scale) { Fig12a(s).Print(w) }},
		{ID: "fig12b", Title: "DmRPC-CXL image processing vs CXL latency", Run: func(w io.Writer, s Scale) { Fig12b(s).Print(w) }},
		{ID: "sec5a2", Title: "Ablation: software address translation share of DM access", Run: func(w io.Writer, s Scale) { AblationTranslation(s).Print(w) }},
		{ID: "abl-sizeaware", Title: "Ablation: size-aware transfer threshold", Run: func(w io.Writer, s Scale) { AblationSizeAware(s).Print(w) }},
		{ID: "abl-dmscale", Title: "Ablation: DM pool scaling (round-robin across memory servers)", Run: func(w io.Writer, s Scale) { AblationDMScale(s).Print(w) }},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// header prints a figure banner.
func header(w io.Writer, id, title string) {
	fmt.Fprintf(w, "\n=== %s: %s ===\n", id, title)
}
