package refcache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeBuf is a refcounted test value mirroring live.Buf's contract:
// Retain/Release panic on misuse and the live count is observable.
type fakeBuf struct {
	refs atomic.Int32
	live *atomic.Int64 // package-wide gauge stand-in
}

func newFake(gauge *atomic.Int64) *fakeBuf {
	b := &fakeBuf{live: gauge}
	b.refs.Store(1)
	gauge.Add(1)
	return b
}

func (b *fakeBuf) Retain() {
	if b.refs.Add(1) <= 1 {
		panic("refcache_test: retain on dead buf")
	}
}

func (b *fakeBuf) Release() {
	n := b.refs.Add(-1)
	if n < 0 {
		panic("refcache_test: release past zero")
	}
	if n == 0 {
		b.live.Add(-1)
	}
}

func TestGetOrLoadHitAndRefcounts(t *testing.T) {
	var gauge atomic.Int64
	c := New[*fakeBuf](Config{MaxBytes: 1 << 20})
	k := Key{Server: 1, Ref: 42}

	loads := 0
	load := func() (*fakeBuf, error) { loads++; return newFake(&gauge), nil }

	v1, err := c.GetOrLoad(k, 100, time.Minute, load)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := c.GetOrLoad(k, 100, time.Minute, load)
	if err != nil {
		t.Fatal(err)
	}
	if loads != 1 {
		t.Fatalf("loads = %d, want 1", loads)
	}
	if v1 != v2 {
		t.Fatal("hit returned a different value")
	}
	v1.Release()
	v2.Release()
	if gauge.Load() != 1 {
		t.Fatalf("gauge = %d after caller releases, want 1 (cache hold)", gauge.Load())
	}
	c.Flush()
	if gauge.Load() != 0 {
		t.Fatalf("gauge = %d after Flush, want 0", gauge.Load())
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Admits != 1 || st.Invalidations != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	var gauge atomic.Int64
	c := New[*fakeBuf](Config{MaxBytes: 1 << 20})
	k := Key{Server: 0, Ref: 7}

	gate := make(chan struct{})
	var loads atomic.Int32
	load := func() (*fakeBuf, error) {
		loads.Add(1)
		<-gate
		return newFake(&gauge), nil
	}

	const n = 8
	var wg sync.WaitGroup
	vals := make([]*fakeBuf, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], errs[i] = c.GetOrLoad(k, 64, time.Minute, load)
		}(i)
	}
	// Wait until one loader is in flight and the rest are queued behind
	// it, then open the gate.
	deadline := time.Now().Add(2 * time.Second)
	for {
		c.mu.Lock()
		f := c.flights[k]
		waiting := f != nil && f.waiters == n-1
		c.mu.Unlock()
		if waiting {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiters never queued")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := loads.Load(); got != 1 {
		t.Fatalf("loader ran %d times, want 1", got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if vals[i] != vals[0] {
			t.Fatal("coalesced waiter got a different value")
		}
		vals[i].Release()
	}
	if st := c.Stats(); st.Coalesced != n-1 {
		t.Fatalf("coalesced = %d, want %d", st.Coalesced, n-1)
	}
	c.Flush()
	if gauge.Load() != 0 {
		t.Fatalf("gauge = %d, want 0", gauge.Load())
	}
}

func TestLoadErrorNotCached(t *testing.T) {
	var gauge atomic.Int64
	c := New[*fakeBuf](Config{MaxBytes: 1 << 20})
	k := Key{Ref: 1}
	boom := errors.New("boom")
	if _, err := c.GetOrLoad(k, 10, 0, func() (*fakeBuf, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Next call must run the loader again.
	ran := false
	v, err := c.GetOrLoad(k, 10, 0, func() (*fakeBuf, error) { ran = true; return newFake(&gauge), nil })
	if err != nil || !ran {
		t.Fatalf("err=%v ran=%v", err, ran)
	}
	v.Release()
	c.Flush()
}

func TestAdmissionPrefersHotKeys(t *testing.T) {
	var gauge atomic.Int64
	// Room for exactly two 100-byte entries.
	c := New[*fakeBuf](Config{MaxBytes: 200})
	hot, warm, cold := Key{Ref: 1}, Key{Ref: 2}, Key{Ref: 3}

	mk := func() (*fakeBuf, error) { return newFake(&gauge), nil }
	// Make hot and warm genuinely frequent.
	for i := 0; i < 10; i++ {
		v, _ := c.GetOrLoad(hot, 100, time.Minute, mk)
		v.Release()
		v, _ = c.GetOrLoad(warm, 100, time.Minute, mk)
		v.Release()
	}
	// A one-hit wonder must not displace either.
	v, err := c.GetOrLoad(cold, 100, time.Minute, mk)
	if err != nil {
		t.Fatal(err)
	}
	v.Release()
	h, ok := c.Get(hot)
	if !ok {
		t.Fatal("hot key evicted by a cold candidate")
	}
	h.Release()
	st := c.Stats()
	if st.Rejects == 0 {
		t.Fatalf("expected admission rejects, stats = %+v", st)
	}
	c.Flush()
	if gauge.Load() != 0 {
		t.Fatalf("gauge = %d after Flush, want 0", gauge.Load())
	}
}

func TestEvictionRespectsBudget(t *testing.T) {
	var gauge atomic.Int64
	c := New[*fakeBuf](Config{MaxBytes: 300})
	mk := func() (*fakeBuf, error) { return newFake(&gauge), nil }
	// Three entries fill the budget; a fourth (equally frequent) forces
	// an eviction of the LRU victim.
	for r := 0; r < 3; r++ { // equalize sketch frequencies
		for i := uint64(1); i <= 4; i++ {
			v, err := c.GetOrLoad(Key{Ref: i}, 100, time.Minute, mk)
			if err != nil {
				t.Fatal(err)
			}
			v.Release()
		}
	}
	st := c.Stats()
	if st.Bytes > 300 {
		t.Fatalf("bytes = %d over budget", st.Bytes)
	}
	if st.Entries > 3 {
		t.Fatalf("entries = %d, want <= 3", st.Entries)
	}
	if st.Evictions == 0 && st.Rejects == 0 {
		t.Fatalf("no displacement recorded: %+v", st)
	}
	c.Flush()
	if gauge.Load() != 0 {
		t.Fatalf("gauge = %d, want 0", gauge.Load())
	}
}

func TestTTLExpiry(t *testing.T) {
	var gauge atomic.Int64
	c := New[*fakeBuf](Config{MaxBytes: 1 << 20})
	k := Key{Ref: 9}
	v, err := c.GetOrLoad(k, 10, 10*time.Millisecond, func() (*fakeBuf, error) { return newFake(&gauge), nil })
	if err != nil {
		t.Fatal(err)
	}
	v.Release()
	time.Sleep(20 * time.Millisecond)
	if _, ok := c.Get(k); ok {
		t.Fatal("expired entry served")
	}
	if gauge.Load() != 0 {
		t.Fatalf("gauge = %d after expiry, want 0", gauge.Load())
	}
}

func TestInvalidateKeyAndServer(t *testing.T) {
	var gauge atomic.Int64
	c := New[*fakeBuf](Config{MaxBytes: 1 << 20})
	mk := func() (*fakeBuf, error) { return newFake(&gauge), nil }
	for s := uint32(0); s < 2; s++ {
		for i := uint64(0); i < 3; i++ {
			v, err := c.GetOrLoad(Key{Server: s, Ref: i}, 10, time.Minute, mk)
			if err != nil {
				t.Fatal(err)
			}
			v.Release()
		}
	}
	if !c.Invalidate(Key{Server: 0, Ref: 1}) {
		t.Fatal("Invalidate missed a cached key")
	}
	if n := c.InvalidateServer(1); n != 3 {
		t.Fatalf("InvalidateServer dropped %d, want 3", n)
	}
	st := c.Stats()
	if st.Entries != 2 || st.Invalidations != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if _, ok := c.Get(Key{Server: 1, Ref: 0}); ok {
		t.Fatal("server-invalidated entry served")
	}
	c.Flush()
	if gauge.Load() != 0 {
		t.Fatalf("gauge = %d, want 0", gauge.Load())
	}
}

func TestInvalidateDuringFlightPoisonsAdmit(t *testing.T) {
	var gauge atomic.Int64
	c := New[*fakeBuf](Config{MaxBytes: 1 << 20})
	k := Key{Server: 3, Ref: 5}
	gate := make(chan struct{})
	done := make(chan *fakeBuf)
	go func() {
		v, _ := c.GetOrLoad(k, 10, time.Minute, func() (*fakeBuf, error) {
			<-gate
			return newFake(&gauge), nil
		})
		done <- v
	}()
	// Wait for the flight, then invalidate mid-load.
	deadline := time.Now().Add(2 * time.Second)
	for {
		c.mu.Lock()
		inFlight := c.flights[k] != nil
		c.mu.Unlock()
		if inFlight {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flight never started")
		}
		time.Sleep(time.Millisecond)
	}
	c.InvalidateServer(k.Server)
	close(gate)
	v := <-done
	if v == nil {
		t.Fatal("loader value lost")
	}
	v.Release()
	if _, ok := c.Get(k); ok {
		t.Fatal("poisoned flight was admitted")
	}
	if gauge.Load() != 0 {
		t.Fatalf("gauge = %d, want 0 (value not cached)", gauge.Load())
	}
}

func TestNilCacheIsSafe(t *testing.T) {
	var c *Cache[*fakeBuf]
	if _, ok := c.Get(Key{}); ok {
		t.Fatal("nil cache hit")
	}
	c.Invalidate(Key{})
	c.InvalidateServer(0)
	c.Flush()
	c.Add(Key{}, 1, 0, func() *fakeBuf { t.Fatal("mk ran"); return nil })
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAddAdmitsWithoutRead(t *testing.T) {
	var gauge atomic.Int64
	c := New[*fakeBuf](Config{MaxBytes: 1 << 20})
	k := Key{Ref: 77}
	made := false
	c.Add(k, 10, time.Minute, func() *fakeBuf { made = true; return newFake(&gauge) })
	if !made {
		t.Fatal("mk not invoked on admit")
	}
	v, ok := c.Get(k)
	if !ok {
		t.Fatal("Add'ed entry not served")
	}
	v.Release()
	// Oversized offers must be rejected without invoking mk.
	c.Add(Key{Ref: 78}, 2<<20, time.Minute, func() *fakeBuf { t.Fatal("mk ran for oversized"); return nil })
	c.Flush()
	if gauge.Load() != 0 {
		t.Fatalf("gauge = %d, want 0", gauge.Load())
	}
}

// TestDenyShortCircuits: a freed-ref tombstone denies the key, drops
// any cached payload, and expires by TTL.
func TestDenyShortCircuits(t *testing.T) {
	var gauge atomic.Int64
	c := New[*fakeBuf](Config{MaxBytes: 1 << 20})
	k := Key{Server: 2, Ref: 99}
	v, err := c.GetOrLoad(k, 10, time.Minute, func() (*fakeBuf, error) { return newFake(&gauge), nil })
	if err != nil {
		t.Fatal(err)
	}
	v.Release()

	c.Deny(k, 50*time.Millisecond)
	if !c.Denied(k) {
		t.Fatal("freshly denied key not denied")
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("denied key still served a cached payload")
	}
	st := c.Stats()
	if st.NegAdds != 1 || st.NegHits != 1 || st.NegEntries != 1 {
		t.Fatalf("neg stats: %+v", st)
	}
	time.Sleep(60 * time.Millisecond)
	if c.Denied(k) {
		t.Fatal("tombstone survived its TTL")
	}
}

// TestDenyClearedByEpochWatcher: InvalidateServer (the epoch-advance
// path) clears that server's tombstones and no others.
func TestDenyClearedByEpochWatcher(t *testing.T) {
	c := New[*fakeBuf](Config{MaxBytes: 1 << 20})
	kA := Key{Server: 1, Ref: 7}
	kB := Key{Server: 2, Ref: 7}
	c.Deny(kA, time.Minute)
	c.Deny(kB, time.Minute)
	c.InvalidateServer(1)
	if c.Denied(kA) {
		t.Fatal("epoch advance did not clear the server's tombstone")
	}
	if !c.Denied(kB) {
		t.Fatal("epoch advance cleared an unrelated server's tombstone")
	}
	c.Flush()
	if c.Denied(kB) {
		t.Fatal("Flush left a tombstone behind")
	}
}

// TestDenyBounded: the tombstone set caps at MaxNegEntries, shedding
// the entry closest to expiry.
func TestDenyBounded(t *testing.T) {
	c := New[*fakeBuf](Config{MaxBytes: 1 << 20})
	short := Key{Server: 0, Ref: 1}
	c.Deny(short, time.Second) // closest to expiry -> first shed
	for i := 0; i < MaxNegEntries; i++ {
		c.Deny(Key{Server: 0, Ref: uint64(100 + i)}, time.Hour)
	}
	if got := c.Stats().NegEntries; got != MaxNegEntries {
		t.Fatalf("tombstone set grew to %d, cap %d", got, MaxNegEntries)
	}
	if c.Denied(short) {
		t.Fatal("soonest-expiring tombstone not shed at cap")
	}
	if !c.Denied(Key{Server: 0, Ref: 100}) {
		t.Fatal("long-TTL tombstone shed instead")
	}
}

// TestDeniedNilCache: nil-cache Denied/Deny are safe no-ops.
func TestDeniedNilCache(t *testing.T) {
	var c *Cache[*fakeBuf]
	c.Deny(Key{Server: 1, Ref: 1}, time.Minute)
	if c.Denied(Key{Server: 1, Ref: 1}) {
		t.Fatal("nil cache denied a key")
	}
}
