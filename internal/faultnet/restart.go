package faultnet

import (
	"errors"
	"net"
	"sync"
)

// Restartable models a crash-restartable listening process for chaos
// tests: Crash abruptly kills the accept loop and every accepted
// connection (peers observe resets, as with SIGKILL — never a graceful
// shutdown), and Restart re-listens on the same address so a fresh server
// instance can take over the endpoint. Whatever state the previous
// instance held in memory is gone, which is exactly the failure mode
// R-way replication (internal/pool) exists to survive; Partition, by
// contrast, models a fabric loss where the process and its memory live
// on.
type Restartable struct {
	mu      sync.Mutex
	addr    string
	ln      net.Listener
	conns   map[net.Conn]struct{}
	crashed bool
}

// ErrEndpointLive reports a Restart of an endpoint that was never
// crashed.
var ErrEndpointLive = errors.New("faultnet: restart of a live endpoint")

// NewRestartable listens on addr (use "127.0.0.1:0" for an ephemeral
// port) and returns the endpoint plus its first listener, ready for a
// server's Serve loop.
func NewRestartable(addr string) (*Restartable, net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	r := &Restartable{addr: ln.Addr().String(), conns: make(map[net.Conn]struct{})}
	tl := &restartListener{Listener: ln, r: r}
	r.ln = tl
	return r, tl, nil
}

// Addr returns the bound address; it is stable across Crash/Restart, so
// clients that re-dial reach the restarted instance.
func (r *Restartable) Addr() string { return r.addr }

// Crash kills the endpoint abruptly: the listener closes (Serve returns)
// and every accepted connection is reset. Idempotent.
func (r *Restartable) Crash() {
	r.mu.Lock()
	ln := r.ln
	r.ln = nil
	r.crashed = true
	conns := make([]net.Conn, 0, len(r.conns))
	for c := range r.conns {
		conns = append(conns, c)
	}
	r.conns = make(map[net.Conn]struct{})
	r.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
}

// Restart re-listens on the crashed endpoint's address and returns the
// new listener for a fresh server instance's Serve loop. Restarting an
// endpoint that is still live fails with ErrEndpointLive.
func (r *Restartable) Restart() (net.Listener, error) {
	r.mu.Lock()
	if r.ln != nil {
		r.mu.Unlock()
		return nil, ErrEndpointLive
	}
	r.mu.Unlock()
	ln, err := net.Listen("tcp", r.addr)
	if err != nil {
		return nil, err
	}
	tl := &restartListener{Listener: ln, r: r}
	r.mu.Lock()
	r.ln = tl
	r.crashed = false
	r.mu.Unlock()
	return tl, nil
}

// track records an accepted connection so Crash can reset it. A
// connection that races past Accept while the endpoint is crashing is
// closed on arrival instead of surviving the crash.
func (r *Restartable) track(c net.Conn) bool {
	r.mu.Lock()
	if r.crashed {
		r.mu.Unlock()
		c.Close()
		return false
	}
	r.conns[c] = struct{}{}
	r.mu.Unlock()
	return true
}

func (r *Restartable) untrack(c net.Conn) {
	r.mu.Lock()
	delete(r.conns, c)
	r.mu.Unlock()
}

type restartListener struct {
	net.Listener
	r *Restartable
}

func (l *restartListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if !l.r.track(c) {
		return nil, net.ErrClosed
	}
	return &restartConn{Conn: c, r: l.r}, nil
}

// restartConn untracks itself on Close so the conn set doesn't grow
// without bound across a long-lived endpoint.
type restartConn struct {
	net.Conn
	r    *Restartable
	once sync.Once
}

func (c *restartConn) Close() error {
	err := c.Conn.Close()
	c.once.Do(func() { c.r.untrack(c.Conn) })
	return err
}
