package cxlsim

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dm"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// rig builds a fabric: coordinator + two compute hosts, one space each.
type rig struct {
	eng    *sim.Engine
	net    *simnet.Network
	gfam   *GFAM
	coord  *Coordinator
	hosts  []*HostDM
	s1, s2 *Space
}

func newRig(t *testing.T, seed int64, mutate func(*Config)) *rig {
	t.Helper()
	eng := sim.NewEngine(seed)
	net := simnet.New(eng, simnet.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Memory.NumPages = 2048
	cfg.ReserveBatch = 16
	cfg.HighWater = 64
	if mutate != nil {
		mutate(&cfg)
	}
	gfam := NewGFAM(eng, 0, cfg)
	coord := NewCoordinator(net.AddHost("coord"), 1, gfam, rpc.DefaultConfig())
	coord.Start()
	h1 := NewHostDM(net.AddHost("compute1"), 2, gfam, coord.Addr(), rpc.DefaultConfig())
	h2 := NewHostDM(net.AddHost("compute2"), 2, gfam, coord.Addr(), rpc.DefaultConfig())
	return &rig{
		eng: eng, net: net, gfam: gfam, coord: coord,
		hosts: []*HostDM{h1, h2},
		s1:    h1.NewSpace(), s2: h2.NewSpace(),
	}
}

func (r *rig) run(t *testing.T, fn func(p *sim.Proc) error) {
	t.Helper()
	var err error
	r.eng.Spawn("test", func(p *sim.Proc) { err = fn(p) })
	r.eng.Run()
	r.eng.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
}

func (r *rig) checkInvariants(t *testing.T) {
	t.Helper()
	if err := CheckInvariants(r.gfam, r.coord, r.hosts); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.CopyBytesPerSecond = 0 },
		func(c *Config) { c.PTETime = -1 },
		func(c *Config) { c.ReserveBatch = 0 },
		func(c *Config) { c.HighWater = 0 },
		func(c *Config) { c.Memory.NumPages = 0 },
	}
	for i, m := range bad {
		c := DefaultConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestAllocWriteReadRoundTrip(t *testing.T) {
	r := newRig(t, 1, nil)
	r.run(t, func(p *sim.Proc) error {
		addr, err := r.s1.Alloc(p, 10000)
		if err != nil {
			return err
		}
		msg := bytes.Repeat([]byte("cxl"), 3000)
		if err := r.s1.Write(p, addr, msg); err != nil {
			return err
		}
		got := make([]byte, len(msg))
		if err := r.s1.Read(p, addr, got); err != nil {
			return err
		}
		if !bytes.Equal(got, msg) {
			t.Error("round trip corrupted")
		}
		return r.s1.Free(p, addr)
	})
	r.checkInvariants(t)
}

func TestLoadIsCheaperThanNetworkRPC(t *testing.T) {
	// A 4 KiB CXL read should land in sub-µs territory (265ns + bus), far
	// below any network RTT — the heart of the paper's CXL advantage.
	r := newRig(t, 1, nil)
	var dur sim.Time
	r.run(t, func(p *sim.Proc) error {
		addr, _ := r.s1.Alloc(p, 4096)
		if err := r.s1.Write(p, addr, make([]byte, 4096)); err != nil {
			return err
		}
		start := p.Now()
		if err := r.s1.Read(p, addr, make([]byte, 4096)); err != nil {
			return err
		}
		dur = p.Now() - start
		return nil
	})
	if dur <= 0 || dur >= 2*sim.Microsecond {
		t.Fatalf("4KiB CXL read took %dns, want sub-2µs", dur)
	}
}

func TestCoordinatorBatchingAmortizesOwnership(t *testing.T) {
	r := newRig(t, 1, nil)
	r.run(t, func(p *sim.Proc) error {
		// Touch 32 pages; with ReserveBatch=16 only 2 coordinator trips.
		addr, _ := r.s1.Alloc(p, 32*4096)
		if err := r.s1.Write(p, addr, make([]byte, 32*4096)); err != nil {
			return err
		}
		return nil
	})
	if got := r.coord.ReserveCalls(); got != 2 {
		t.Fatalf("ReserveCalls = %d, want 2 (batch of 16)", got)
	}
}

func TestHighWaterReturnsPagesToCoordinator(t *testing.T) {
	r := newRig(t, 1, func(c *Config) { c.ReserveBatch = 8; c.HighWater = 8 })
	r.run(t, func(p *sim.Proc) error {
		addr, _ := r.s1.Alloc(p, 20*4096)
		if err := r.s1.Write(p, addr, make([]byte, 20*4096)); err != nil {
			return err
		}
		return r.s1.Free(p, addr)
	})
	if r.coord.ReturnCalls() == 0 {
		t.Fatal("no pages returned past high water")
	}
	if r.hosts[0].LocalFreePages() > 8 {
		t.Fatalf("local FIFO %d pages, above high water 8", r.hosts[0].LocalFreePages())
	}
	r.checkInvariants(t)
}

func TestShareAcrossHostsViaRef(t *testing.T) {
	r := newRig(t, 1, nil)
	r.run(t, func(p *sim.Proc) error {
		addr, _ := r.s1.Alloc(p, 8192)
		if err := r.s1.Write(p, addr, []byte("fabric-shared")); err != nil {
			return err
		}
		ref, err := r.s1.CreateRef(p, addr, 8192)
		if err != nil {
			return err
		}
		mapped, err := r.s2.MapRef(p, ref)
		if err != nil {
			return err
		}
		got := make([]byte, 13)
		if err := r.s2.Read(p, mapped, got); err != nil {
			return err
		}
		if string(got) != "fabric-shared" {
			t.Errorf("host2 read %q", got)
		}
		return nil
	})
	r.checkInvariants(t)
}

func TestDistributedCoWIsolation(t *testing.T) {
	r := newRig(t, 1, nil)
	r.run(t, func(p *sim.Proc) error {
		addr, _ := r.s1.Alloc(p, 4096)
		if err := r.s1.Write(p, addr, []byte("original")); err != nil {
			return err
		}
		ref, err := r.s1.CreateRef(p, addr, 4096)
		if err != nil {
			return err
		}
		mapped, err := r.s2.MapRef(p, ref)
		if err != nil {
			return err
		}
		if err := r.s2.Write(p, mapped, []byte("CLOBBER!")); err != nil {
			return err
		}
		got1 := make([]byte, 8)
		if err := r.s1.Read(p, addr, got1); err != nil {
			return err
		}
		if string(got1) != "original" {
			t.Errorf("creator sees %q", got1)
		}
		got2 := make([]byte, 8)
		if err := r.s2.Read(p, mapped, got2); err != nil {
			return err
		}
		if string(got2) != "CLOBBER!" {
			t.Errorf("writer sees %q", got2)
		}
		if r.s2.CoWCopies() != 1 {
			t.Errorf("CoWCopies = %d", r.s2.CoWCopies())
		}
		return nil
	})
	r.checkInvariants(t)
}

func TestCreatorWriteCoWsAfterCreateRef(t *testing.T) {
	r := newRig(t, 1, nil)
	r.run(t, func(p *sim.Proc) error {
		addr, _ := r.s1.Alloc(p, 4096)
		if err := r.s1.Write(p, addr, []byte("original")); err != nil {
			return err
		}
		ref, err := r.s1.CreateRef(p, addr, 4096)
		if err != nil {
			return err
		}
		// Creator's PTE is now read-only; this write must CoW.
		if err := r.s1.Write(p, addr, []byte("mutated!")); err != nil {
			return err
		}
		if r.s1.CoWCopies() != 1 {
			t.Errorf("creator CoWCopies = %d, want 1", r.s1.CoWCopies())
		}
		mapped, err := r.s2.MapRef(p, ref)
		if err != nil {
			return err
		}
		got := make([]byte, 8)
		if err := r.s2.Read(p, mapped, got); err != nil {
			return err
		}
		if string(got) != "original" {
			t.Errorf("ref content %q", got)
		}
		return nil
	})
	r.checkInvariants(t)
}

func TestSoleOwnerWriteFlipsWritableWithoutCopy(t *testing.T) {
	// create_ref, free the ref: the creator is sole owner again; its next
	// write must NOT copy, only flip the permission flag (§V-B3 case 2b).
	r := newRig(t, 1, nil)
	r.run(t, func(p *sim.Proc) error {
		addr, _ := r.s1.Alloc(p, 4096)
		if err := r.s1.Write(p, addr, []byte("original")); err != nil {
			return err
		}
		ref, err := r.s1.CreateRef(p, addr, 4096)
		if err != nil {
			return err
		}
		if err := r.s1.FreeRef(p, ref); err != nil {
			return err
		}
		if err := r.s1.Write(p, addr, []byte("again")); err != nil {
			return err
		}
		if r.s1.CoWCopies() != 0 {
			t.Errorf("CoWCopies = %d, want 0 (sole owner)", r.s1.CoWCopies())
		}
		return nil
	})
	r.checkInvariants(t)
}

func TestPageGranularCoW(t *testing.T) {
	r := newRig(t, 1, nil)
	r.run(t, func(p *sim.Proc) error {
		const pages = 8
		addr, _ := r.s1.Alloc(p, pages*4096)
		if err := r.s1.Write(p, addr, make([]byte, pages*4096)); err != nil {
			return err
		}
		ref, err := r.s1.CreateRef(p, addr, pages*4096)
		if err != nil {
			return err
		}
		mapped, err := r.s2.MapRef(p, ref)
		if err != nil {
			return err
		}
		if err := r.s2.Write(p, mapped.Add(2*4096), []byte("x")); err != nil {
			return err
		}
		if r.s2.CoWCopies() != 1 {
			t.Errorf("CoWCopies = %d, want 1 of %d pages", r.s2.CoWCopies(), pages)
		}
		return nil
	})
	r.checkInvariants(t)
}

func TestUnconditionalCopyMode(t *testing.T) {
	r := newRig(t, 1, func(c *Config) { c.UnconditionalCopy = true })
	r.run(t, func(p *sim.Proc) error {
		addr, _ := r.s1.Alloc(p, 4*4096)
		if err := r.s1.Write(p, addr, bytes.Repeat([]byte("q"), 4*4096)); err != nil {
			return err
		}
		ref, err := r.s1.CreateRef(p, addr, 4*4096)
		if err != nil {
			return err
		}
		if got := r.gfam.Device().Traffic().PageCopies; got != 4 {
			t.Errorf("PageCopies = %d, want 4", got)
		}
		// Creator writes freely (no read-only flip in copy mode).
		if err := r.s1.Write(p, addr, []byte("mutated")); err != nil {
			return err
		}
		mapped, err := r.s2.MapRef(p, ref)
		if err != nil {
			return err
		}
		got := make([]byte, 4)
		if err := r.s2.Read(p, mapped, got); err != nil {
			return err
		}
		if string(got) != "qqqq" {
			t.Errorf("snapshot %q", got)
		}
		return nil
	})
	r.checkInvariants(t)
}

func TestCreateRefCheaperThanCopy(t *testing.T) {
	// The core Fig 7 claim, functionally: CoW create_ref over N pages must
	// be much faster than -copy create_ref.
	timeIt := func(uncond bool) sim.Time {
		r := newRig(t, 1, func(c *Config) { c.UnconditionalCopy = uncond })
		var dur sim.Time
		r.run(t, func(p *sim.Proc) error {
			const pages = 64
			addr, _ := r.s1.Alloc(p, pages*4096)
			if err := r.s1.Write(p, addr, make([]byte, pages*4096)); err != nil {
				return err
			}
			start := p.Now()
			if _, err := r.s1.CreateRef(p, addr, pages*4096); err != nil {
				return err
			}
			dur = p.Now() - start
			return nil
		})
		return dur
	}
	cow := timeIt(false)
	cp := timeIt(true)
	if cp < 5*cow {
		t.Fatalf("copy create_ref %dns vs CoW %dns: want >= 5x gap", cp, cow)
	}
}

func TestFullLifecycleNoLeak(t *testing.T) {
	r := newRig(t, 1, nil)
	start := r.coord.FreePages()
	r.run(t, func(p *sim.Proc) error {
		addr, _ := r.s1.Alloc(p, 3*4096)
		if err := r.s1.Write(p, addr, make([]byte, 3*4096)); err != nil {
			return err
		}
		ref, err := r.s1.CreateRef(p, addr, 3*4096)
		if err != nil {
			return err
		}
		mapped, err := r.s2.MapRef(p, ref)
		if err != nil {
			return err
		}
		if err := r.s2.Write(p, mapped, []byte("cow")); err != nil {
			return err
		}
		if err := r.s1.Free(p, addr); err != nil {
			return err
		}
		if err := r.s2.Free(p, mapped); err != nil {
			return err
		}
		return r.s1.FreeRef(p, ref)
	})
	total := r.coord.FreePages() + r.hosts[0].LocalFreePages() + r.hosts[1].LocalFreePages()
	if total != start {
		t.Fatalf("page leak: %d free (coord+hosts), started %d", total, start)
	}
	if r.gfam.LiveRefs() != 0 {
		t.Fatalf("LiveRefs = %d", r.gfam.LiveRefs())
	}
	r.checkInvariants(t)
}

func TestErrorPaths(t *testing.T) {
	r := newRig(t, 1, nil)
	r.run(t, func(p *sim.Proc) error {
		if err := r.s1.Free(p, dm.RemoteAddr(0xABC000)); !errors.Is(err, dm.ErrBadAddress) {
			t.Errorf("Free bad addr: %v", err)
		}
		if _, err := r.s1.MapRef(p, dm.Ref{Server: 0, Key: 77, Size: 1}); !errors.Is(err, dm.ErrBadRef) {
			t.Errorf("MapRef unknown: %v", err)
		}
		if _, err := r.s1.MapRef(p, dm.Ref{Server: 5, Key: 0, Size: 1}); !errors.Is(err, dm.ErrBadAddress) {
			t.Errorf("MapRef wrong device: %v", err)
		}
		addr, _ := r.s1.Alloc(p, 100)
		if err := r.s1.Read(p, addr, make([]byte, 8192)); !errors.Is(err, dm.ErrOutOfRange) {
			t.Errorf("Read out of range: %v", err)
		}
		if _, err := r.s1.CreateRef(p, addr, -1); !errors.Is(err, dm.ErrOutOfRange) {
			t.Errorf("CreateRef bad size: %v", err)
		}
		if err := r.s1.FreeRef(p, dm.Ref{Server: 0, Key: 99, Size: 1}); !errors.Is(err, dm.ErrBadRef) {
			t.Errorf("FreeRef unknown: %v", err)
		}
		return nil
	})
}

func TestFabricExhaustion(t *testing.T) {
	r := newRig(t, 1, func(c *Config) {
		c.Memory.NumPages = 8
		c.ReserveBatch = 4
		c.HighWater = 8
	})
	r.run(t, func(p *sim.Proc) error {
		addr, err := r.s1.Alloc(p, 16*4096)
		if err != nil {
			return err
		}
		err = r.s1.Write(p, addr, make([]byte, 16*4096))
		if !errors.Is(err, dm.ErrOutOfMemory) {
			t.Errorf("err = %v, want ErrOutOfMemory", err)
		}
		return nil
	})
}

func TestReadUnmappedReturnsZeros(t *testing.T) {
	r := newRig(t, 1, nil)
	r.run(t, func(p *sim.Proc) error {
		addr, _ := r.s1.Alloc(p, 4096)
		got := []byte{0xAA, 0xBB}
		if err := r.s1.Read(p, addr.Add(100), got); err != nil {
			return err
		}
		if got[0] != 0 || got[1] != 0 {
			t.Errorf("unmapped read %v", got)
		}
		// No physical page consumed.
		if r.hosts[0].LocalFreePages() != 0 && r.s1.Faults() > 1 {
			t.Error("read fault consumed pages")
		}
		return nil
	})
}

func TestStageRefAndReadRefCXL(t *testing.T) {
	r := newRig(t, 1, nil)
	r.run(t, func(p *sim.Proc) error {
		data := bytes.Repeat([]byte("gfam"), 3000) // 12KB, 3 pages
		ref, err := r.s1.StageRef(p, data)
		if err != nil {
			return err
		}
		// Another host reads straight through the ref.
		got := make([]byte, 200)
		if err := r.s2.ReadRef(p, ref, 4000, got); err != nil {
			return err
		}
		if !bytes.Equal(got, data[4000:4200]) {
			t.Error("readref window corrupted")
		}
		// Error paths.
		if _, err := r.s1.StageRef(p, nil); !errors.Is(err, dm.ErrOutOfRange) {
			t.Errorf("empty stage: %v", err)
		}
		if err := r.s2.ReadRef(p, dm.Ref{Server: 0, Key: 999, Size: 1}, 0, got); !errors.Is(err, dm.ErrBadRef) {
			t.Errorf("unknown readref: %v", err)
		}
		if err := r.s2.ReadRef(p, dm.Ref{Server: 7, Key: 0, Size: 1}, 0, got); !errors.Is(err, dm.ErrBadAddress) {
			t.Errorf("wrong device readref: %v", err)
		}
		if err := r.s2.ReadRef(p, ref, ref.Size-10, got); !errors.Is(err, dm.ErrOutOfRange) {
			t.Errorf("readref past end: %v", err)
		}
		return r.s1.FreeRef(p, ref)
	})
	r.checkInvariants(t)
}

func TestLDFamBlocksCrossHostSharing(t *testing.T) {
	// §II-B2: LD-FAM exposes each logical device to a single host, so refs
	// created on one host are unreachable from another — the reason DmRPC
	// builds on G-FAM.
	r := newRig(t, 1, func(c *Config) { c.LDFam = true })
	r.run(t, func(p *sim.Proc) error {
		addr, err := r.s1.Alloc(p, 4096)
		if err != nil {
			return err
		}
		if err := r.s1.Write(p, addr, []byte("mine")); err != nil {
			return err
		}
		ref, err := r.s1.CreateRef(p, addr, 4096)
		if err != nil {
			return err
		}
		// Same host: fine.
		same := r.hosts[0].NewSpace()
		if _, err := same.MapRef(p, ref); err != nil {
			t.Errorf("same-host map under LD-FAM failed: %v", err)
		}
		// Foreign host: rejected.
		if _, err := r.s2.MapRef(p, ref); !errors.Is(err, dm.ErrBadAddress) {
			t.Errorf("cross-host map under LD-FAM: %v", err)
		}
		if err := r.s2.ReadRef(p, ref, 0, make([]byte, 4)); !errors.Is(err, dm.ErrBadAddress) {
			t.Errorf("cross-host readref under LD-FAM: %v", err)
		}
		return nil
	})
}

func TestLDFamPartitionsCapacity(t *testing.T) {
	// Two logical devices over a 64-page device: each host owns 32 pages
	// and cannot draw from the other's partition.
	r := newRig(t, 1, func(c *Config) {
		c.LDFam = true
		c.MaxLogicalDevices = 2
		c.Memory.NumPages = 64
		c.ReserveBatch = 8
		c.HighWater = 64
	})
	r.run(t, func(p *sim.Proc) error {
		addr, err := r.s1.Alloc(p, 64*4096)
		if err != nil {
			return err
		}
		// Host 1 can fault at most its 32-page partition.
		err = r.s1.Write(p, addr, make([]byte, 64*4096))
		if !errors.Is(err, dm.ErrOutOfMemory) {
			t.Errorf("partition overflow: %v", err)
		}
		// Host 2 still has its own partition available.
		addr2, err := r.s2.Alloc(p, 8*4096)
		if err != nil {
			return err
		}
		if err := r.s2.Write(p, addr2, make([]byte, 8*4096)); err != nil {
			t.Errorf("host2 partition unusable: %v", err)
		}
		return nil
	})
}

func TestLDFamGFamDefaultSharesGlobally(t *testing.T) {
	// Sanity: without LDFam the same flow shares fine (covered elsewhere,
	// asserted here as the direct contrast).
	r := newRig(t, 1, nil)
	r.run(t, func(p *sim.Proc) error {
		ref, err := r.s1.StageRef(p, []byte("global"))
		if err != nil {
			return err
		}
		got := make([]byte, 6)
		if err := r.s2.ReadRef(p, ref, 0, got); err != nil {
			return err
		}
		if string(got) != "global" {
			t.Errorf("got %q", got)
		}
		return nil
	})
}

func TestAccessors(t *testing.T) {
	r := newRig(t, 1, nil)
	if r.gfam.DeviceID() != 0 {
		t.Fatal("DeviceID wrong")
	}
	if r.hosts[0].Host().Name() != "compute1" {
		t.Fatalf("Host() = %q", r.hosts[0].Host().Name())
	}
	r.run(t, func(p *sim.Proc) error {
		addr, _ := r.s1.Alloc(p, 4096)
		if err := r.s1.Write(p, addr, []byte("x")); err != nil {
			return err
		}
		if r.s1.Faults() != 1 {
			t.Errorf("Faults = %d", r.s1.Faults())
		}
		return nil
	})
}

func TestNewGFAMPanicsOnBadConfig(t *testing.T) {
	eng := sim.NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("bad config accepted")
		}
	}()
	NewGFAM(eng, 0, Config{})
}

// TestAlternatePageSize runs the share/CoW flow at a 2 KiB page size.
func TestAlternatePageSize(t *testing.T) {
	r := newRig(t, 1, func(c *Config) {
		c.Memory.PageSize = 2048
		c.Memory.NumPages = 4096
	})
	r.run(t, func(p *sim.Proc) error {
		addr, err := r.s1.Alloc(p, 5*2048)
		if err != nil {
			return err
		}
		if err := r.s1.Write(p, addr, bytes.Repeat([]byte("q"), 5*2048)); err != nil {
			return err
		}
		ref, err := r.s1.CreateRef(p, addr, 5*2048)
		if err != nil {
			return err
		}
		mapped, err := r.s2.MapRef(p, ref)
		if err != nil {
			return err
		}
		if err := r.s2.Write(p, mapped.Add(3000), []byte("z")); err != nil {
			return err
		}
		if r.s2.CoWCopies() != 1 {
			t.Errorf("CoWCopies = %d, want 1", r.s2.CoWCopies())
		}
		got := make([]byte, 1)
		if err := r.s1.Read(p, addr.Add(3000), got); err != nil {
			return err
		}
		if got[0] != 'q' {
			t.Errorf("creator view changed: %q", got)
		}
		return nil
	})
	r.checkInvariants(t)
}

// TestConcurrentSharersCoW: many processes across both hosts map the same
// ref and write to it concurrently (interleaved by the engine); every
// writer must end with a private view and the fabric bookkeeping intact
// (§VI-C: concurrent requests handled by atomics on the client side).
func TestConcurrentSharersCoW(t *testing.T) {
	r := newRig(t, 3, nil)
	const sharers = 6
	var ref dm.Ref
	var setupErr error
	// Setup runs on the same engine lifetime as the sharers (rig.run would
	// shut the engine down).
	r.eng.Spawn("setup", func(p *sim.Proc) {
		addr, err := r.s1.Alloc(p, 4*4096)
		if err != nil {
			setupErr = err
			return
		}
		if err := r.s1.Write(p, addr, bytes.Repeat([]byte{0xEE}, 4*4096)); err != nil {
			setupErr = err
			return
		}
		ref, setupErr = r.s1.CreateRef(p, addr, 4*4096)
	})
	r.eng.Run()
	if setupErr != nil {
		t.Fatal(setupErr)
	}
	results := make([]byte, sharers)
	errs := make([]error, sharers)
	for i := 0; i < sharers; i++ {
		i := i
		hd := r.hosts[i%2]
		sp := hd.NewSpace()
		r.eng.Spawn("sharer", func(p *sim.Proc) {
			mapped, err := sp.MapRef(p, ref)
			if err != nil {
				errs[i] = err
				return
			}
			// Stagger writes so CoW faults interleave across sharers.
			p.Sleep(sim.Time(i) * 100)
			if err := sp.Write(p, mapped.Add(int64(i%4)*4096), []byte{byte(i)}); err != nil {
				errs[i] = err
				return
			}
			got := make([]byte, 1)
			if err := sp.Read(p, mapped.Add(int64(i%4)*4096), got); err != nil {
				errs[i] = err
				return
			}
			results[i] = got[0]
			errs[i] = sp.Free(p, mapped)
		})
	}
	r.eng.Run()
	r.eng.Shutdown()
	for i := 0; i < sharers; i++ {
		if errs[i] != nil {
			t.Fatalf("sharer %d: %v", i, errs[i])
		}
		if results[i] != byte(i) {
			t.Fatalf("sharer %d read %d, want its own write", i, results[i])
		}
	}
	r.checkInvariants(t)
}

// TestRandomOpsAgainstModel mirrors dmnet's model test for the CXL
// backend: random cross-host DM traffic versus a pure-Go content model,
// with fabric invariants checked throughout.
func TestRandomOpsAgainstModel(t *testing.T) {
	prop := func(seed int64) bool {
		r := newRig(t, seed, nil)
		rng := rand.New(rand.NewSource(seed))
		type region struct {
			sp   *Space
			addr dm.RemoteAddr
			size int64
			want []byte
		}
		var regions []*region
		ok := true
		fail := func(msg string, args ...any) {
			if ok {
				t.Logf("seed %d: "+msg, append([]any{seed}, args...)...)
			}
			ok = false
		}
		spaces := []*Space{r.s1, r.s2}
		r.run(t, func(p *sim.Proc) error {
			for step := 0; step < 100 && ok; step++ {
				switch op := rng.Intn(10); {
				case op < 3:
					sp := spaces[rng.Intn(2)]
					size := int64(rng.Intn(4*4096) + 1)
					addr, err := sp.Alloc(p, size)
					if err != nil {
						continue
					}
					regions = append(regions, &region{sp: sp, addr: addr, size: size, want: make([]byte, size)})
				case op < 6 && len(regions) > 0:
					reg := regions[rng.Intn(len(regions))]
					off := int64(rng.Intn(int(reg.size)))
					n := int64(rng.Intn(int(reg.size-off)) + 1)
					buf := make([]byte, n)
					rng.Read(buf)
					if err := reg.sp.Write(p, reg.addr.Add(off), buf); err != nil {
						fail("write: %v", err)
						continue
					}
					copy(reg.want[off:], buf)
				case op < 8 && len(regions) > 0:
					reg := regions[rng.Intn(len(regions))]
					off := int64(rng.Intn(int(reg.size)))
					n := int64(rng.Intn(int(reg.size-off)) + 1)
					got := make([]byte, n)
					if err := reg.sp.Read(p, reg.addr.Add(off), got); err != nil {
						fail("read: %v", err)
						continue
					}
					if !bytes.Equal(got, reg.want[off:off+n]) {
						fail("step %d: read mismatch", step)
					}
				case op == 8 && len(regions) > 0:
					reg := regions[rng.Intn(len(regions))]
					ref, err := reg.sp.CreateRef(p, reg.addr, reg.size)
					if err != nil {
						continue
					}
					other := spaces[0]
					if reg.sp == spaces[0] {
						other = spaces[1]
					}
					mapped, err := other.MapRef(p, ref)
					if err != nil {
						fail("mapref: %v", err)
						continue
					}
					snap := make([]byte, reg.size)
					copy(snap, reg.want)
					regions = append(regions, &region{sp: other, addr: mapped, size: reg.size, want: snap})
				case op == 9 && len(regions) > 0:
					i := rng.Intn(len(regions))
					reg := regions[i]
					if err := reg.sp.Free(p, reg.addr); err != nil {
						fail("free: %v", err)
					}
					regions = append(regions[:i], regions[i+1:]...)
				}
				if err := CheckInvariants(r.gfam, r.coord, r.hosts); err != nil {
					fail("step %d: %v", step, err)
				}
			}
			return nil
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}
