package liverpc

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/live"
	"repro/internal/rpc"
)

// A trimmed DeathStarBench-style social network (paper §VI-F, Fig 11)
// on real sockets: the compose-post and read-home-timeline paths through
// a frontend data mover, with post media as size-aware payloads. On
// compose, the media payload crosses frontend → compose → storage; with
// pass-by-reference only the staged ref travels and storage *adopts* it
// (re-owns the shared frames under its own DM session), so the post
// survives the composing client's exit or crash — the ownership-handoff
// half of the paper's argument. On read, storage returns a page of
// posts; by-ref timelines unwind as descriptors and the reader fetches
// media straight from the DM server, never through the service chain.

// SocialNet method names.
const (
	SNCompose = "sn.compose" // client → frontend → compose
	SNRead    = "sn.read"    // client → frontend → home
	SNStore   = "sn.store"   // compose → storage
	SNFetch   = "sn.fetch"   // home → storage
)

// snParams encodes a timeline read's (start, count) page request.
func snParams(start uint64, count uint16) Payload {
	return Inline(rpc.NewEnc(10).U64(start).U16(count).Bytes())
}

func decodeSNParams(p Payload) (uint64, uint16, error) {
	d := rpc.NewDec(p.Inline())
	start, count := d.U64(), d.U16()
	if p.IsRef() || d.Err() != nil {
		return 0, 0, fmt.Errorf("liverpc: malformed timeline params")
	}
	return start, count, nil
}

// newSNStorage deploys the post-storage service: it adopts incoming
// media (taking ownership under its own DM session) and serves pages of
// posts back to timeline reads.
func newSNStorage(dmc *live.Client, cfg Config) *Service {
	s := NewService("sn-storage", dmc, cfg)
	var mu sync.Mutex
	var posts []Payload
	s.Handle(SNStore, func(ctx *Ctx, args []Payload) ([]Payload, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("liverpc: sn.store wants 1 argument, got %d", len(args))
		}
		// Adopt before publishing: inline media is copied out of the
		// transport buffer, ref media is re-owned via map_ref+create_ref
		// so the composer's session can die without losing the post.
		own, err := ctx.Adopt(args[0])
		if err != nil {
			return nil, err
		}
		mu.Lock()
		id := uint64(len(posts))
		posts = append(posts, own)
		mu.Unlock()
		return []Payload{U64(id)}, nil
	})
	s.Handle(SNFetch, func(ctx *Ctx, args []Payload) ([]Payload, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("liverpc: sn.fetch wants 1 argument, got %d", len(args))
		}
		start, count, err := decodeSNParams(args[0])
		if err != nil {
			return nil, err
		}
		mu.Lock()
		defer mu.Unlock()
		if len(posts) == 0 {
			return nil, &rpc.AppError{Status: 2, Msg: "sn: no posts"}
		}
		page := make([]Payload, 0, count)
		for i := 0; i < int(count); i++ {
			page = append(page, posts[(start+uint64(i))%uint64(len(posts))])
		}
		return page, nil
	})
	return s
}

// newSNCompose deploys the compose-post service, a thin application tier
// that persists the media argument in storage.
func newSNCompose(dmc *live.Client, storage string, cfg Config) *Service {
	s := NewService("sn-compose", dmc, cfg)
	s.Handle(SNCompose, func(ctx *Ctx, args []Payload) ([]Payload, error) {
		return ctx.Call(storage, SNStore, args...)
	})
	return s
}

// newSNHome deploys the home-timeline service: it asks storage for a
// page of posts and forwards the result payloads unchanged — a data
// mover on the response path.
func newSNHome(dmc *live.Client, storage string, cfg Config) *Service {
	s := NewService("sn-home", dmc, cfg)
	s.Handle(SNRead, func(ctx *Ctx, args []Payload) ([]Payload, error) {
		return ctx.Call(storage, SNFetch, args...)
	})
	return s
}

// newSNFrontend deploys the frontend mover routing both operations.
func newSNFrontend(dmc *live.Client, compose, home string, cfg Config) *Service {
	s := NewService("sn-frontend", dmc, cfg)
	s.Handle(SNCompose, func(ctx *Ctx, args []Payload) ([]Payload, error) {
		return ctx.Call(compose, SNCompose, args...)
	})
	s.Handle(SNRead, func(ctx *Ctx, args []Payload) ([]Payload, error) {
		return ctx.Call(home, SNRead, args...)
	})
	return s
}

// SocialNetDeployment is the running trimmed social network: frontend,
// compose, home-timeline and storage services on loopback TCP, each with
// its own DM session.
type SocialNetDeployment struct {
	Frontend string // client-facing address

	svcs []*Service
	dms  []*live.Client
	lns  []net.Listener
}

// DeploySocialNet starts the four services against the DM pool at
// dmAddrs. Callers must Close the deployment.
func DeploySocialNet(dmAddrs []string, cfg Config) (*SocialNetDeployment, error) {
	d := &SocialNetDeployment{}
	listen := func() (net.Listener, string, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			d.Close()
			return nil, "", err
		}
		d.lns = append(d.lns, ln)
		return ln, ln.Addr().String(), nil
	}
	newDM := func() (*live.Client, error) {
		if cfg.ForceInline {
			return nil, nil
		}
		cl, err := live.Dial(dmAddrs...)
		if err != nil {
			d.Close()
			return nil, err
		}
		if err := cl.Register(); err != nil {
			cl.Close()
			d.Close()
			return nil, err
		}
		d.dms = append(d.dms, cl)
		return cl, nil
	}
	serve := func(build func(dmc *live.Client) *Service) (string, error) {
		ln, addr, err := listen()
		if err != nil {
			return "", err
		}
		dmc, err := newDM()
		if err != nil {
			return "", err
		}
		s := build(dmc)
		d.svcs = append(d.svcs, s)
		go s.Serve(ln)
		return addr, nil
	}

	storage, err := serve(func(dmc *live.Client) *Service { return newSNStorage(dmc, cfg) })
	if err != nil {
		return nil, err
	}
	compose, err := serve(func(dmc *live.Client) *Service { return newSNCompose(dmc, storage, cfg) })
	if err != nil {
		return nil, err
	}
	home, err := serve(func(dmc *live.Client) *Service { return newSNHome(dmc, storage, cfg) })
	if err != nil {
		return nil, err
	}
	front, err := serve(func(dmc *live.Client) *Service { return newSNFrontend(dmc, compose, home, cfg) })
	if err != nil {
		return nil, err
	}
	d.Frontend = front
	return d, nil
}

// Close tears down every service and DM session.
func (d *SocialNetDeployment) Close() {
	for _, s := range d.svcs {
		s.Close()
	}
	for _, cl := range d.dms {
		cl.Close()
	}
	for _, ln := range d.lns {
		ln.Close()
	}
}

// SocialNetClient is a workload generator for the deployment.
type SocialNetClient struct {
	caller   *Caller
	frontend string
}

// NewSocialNetClient builds a client stub against the frontend.
func NewSocialNetClient(dmc *live.Client, frontend string, cfg Config) *SocialNetClient {
	return &SocialNetClient{caller: NewCaller(dmc, cfg), frontend: frontend}
}

// Close tears down the client's transport.
func (c *SocialNetClient) Close() error { return c.caller.Close() }

// Compose publishes one post and returns its id. Large media is staged
// once; storage adopts it, so the client's own ref hold is released as
// soon as the call returns.
func (c *SocialNetClient) Compose(media []byte) (uint64, error) {
	arg, err := c.caller.Stage(media)
	if err != nil {
		return 0, err
	}
	defer c.caller.Release(arg)
	res, err := c.caller.Call(c.frontend, SNCompose, arg)
	if err != nil {
		return 0, err
	}
	if len(res) != 1 {
		return 0, fmt.Errorf("liverpc: compose returned %d payloads, want 1", len(res))
	}
	return res[0].AsU64()
}

// ReadHome reads a page of count posts starting at start and
// materializes each one's media (by-ref posts read straight from the DM
// server). The returned buffers are the caller's.
func (c *SocialNetClient) ReadHome(start uint64, count uint16) ([][]byte, error) {
	res, err := c.caller.CallOpts(c.frontend, SNRead, CallOpts{Idempotent: true}, snParams(start, count))
	if err != nil {
		return nil, err
	}
	out := make([][]byte, 0, len(res))
	for _, p := range res {
		buf, err := c.caller.Fetch(p)
		if err != nil {
			return nil, err
		}
		out = append(out, buf)
	}
	return out, nil
}
