package core

import (
	"bytes"
	"testing"

	"repro/internal/cxlsim"
	"repro/internal/dm"
	"repro/internal/dmnet"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// rig builds two DmRPC clients (producer, consumer) over a chosen backend.
type rig struct {
	eng      *sim.Engine
	net      *simnet.Network
	p1, p2   *Client
	dmserver *dmnet.Server // nil for cxl / inline
}

// newNetRig backs the clients with a DmRPC-net pool of one server.
func newNetRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	eng := sim.NewEngine(1)
	net := simnet.New(eng, simnet.DefaultConfig())
	scfg := dmnet.DefaultServerConfig()
	scfg.Memory.NumPages = 512
	srv := dmnet.NewServer(net.AddHost("dmserver"), 1, 0, scfg)
	srv.Start()
	mk := func(name string) (*rpc.Node, *dmnet.Client) {
		n := rpc.NewNode(net.AddHost(name), 1, name, rpc.DefaultConfig())
		n.Start()
		return n, dmnet.NewClient(n, []simnet.Addr{srv.Addr()})
	}
	n1, c1 := mk("svc1")
	n2, c2 := mk("svc2")
	r := &rig{eng: eng, net: net, dmserver: srv}
	r.p1 = NewClient(n1, c1, cfg)
	r.p2 = NewClient(n2, c2, cfg)
	eng.Spawn("register", func(p *sim.Proc) {
		if err := c1.Register(p); err != nil {
			t.Errorf("register: %v", err)
		}
		if err := c2.Register(p); err != nil {
			t.Errorf("register: %v", err)
		}
	})
	eng.Run()
	return r
}

// newCXLRig backs the clients with a shared CXL fabric.
func newCXLRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	eng := sim.NewEngine(1)
	net := simnet.New(eng, simnet.DefaultConfig())
	ccfg := cxlsim.DefaultConfig()
	ccfg.Memory.NumPages = 2048
	gfam := cxlsim.NewGFAM(eng, 0, ccfg)
	coord := cxlsim.NewCoordinator(net.AddHost("coord"), 1, gfam, rpc.DefaultConfig())
	coord.Start()
	mk := func(name string) (*rpc.Node, dm.Space) {
		h := net.AddHost(name)
		n := rpc.NewNode(h, 1, name, rpc.DefaultConfig())
		n.Start()
		hd := cxlsim.NewHostDM(h, 2, gfam, coord.Addr(), rpc.DefaultConfig())
		return n, hd.NewSpace()
	}
	n1, s1 := mk("svc1")
	n2, s2 := mk("svc2")
	return &rig{eng: eng, net: net,
		p1: NewClient(n1, s1, cfg),
		p2: NewClient(n2, s2, cfg),
	}
}

func (r *rig) run(t *testing.T, fn func(p *sim.Proc) error) {
	t.Helper()
	var err error
	r.eng.Spawn("test", func(p *sim.Proc) { err = fn(p) })
	r.eng.Run()
	r.eng.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
}

func TestSizeAwareSmallInlines(t *testing.T) {
	r := newNetRig(t, Config{InlineThreshold: 1024})
	r.run(t, func(p *sim.Proc) error {
		a, err := r.p1.MakeArg(p, make([]byte, 512))
		if err != nil {
			return err
		}
		if a.IsRef() {
			t.Error("512B arg became a ref under 1KiB threshold")
		}
		if a.Size() != 512 {
			t.Errorf("Size = %d", a.Size())
		}
		return nil
	})
}

func TestSizeAwareLargeBecomesRef(t *testing.T) {
	for _, mk := range []func(*testing.T, Config) *rig{newNetRig, newCXLRig} {
		r := mk(t, Config{InlineThreshold: 1024})
		r.run(t, func(p *sim.Proc) error {
			a, err := r.p1.MakeArg(p, make([]byte, 8192))
			if err != nil {
				return err
			}
			if !a.IsRef() {
				t.Error("8KiB arg inlined above threshold")
			}
			if a.Size() != 8192 {
				t.Errorf("Size = %d", a.Size())
			}
			if a.WireSize() > 64 {
				t.Errorf("ref WireSize = %d, want tiny", a.WireSize())
			}
			return nil
		})
	}
}

func TestForceInlineBaseline(t *testing.T) {
	eng := sim.NewEngine(1)
	net := simnet.New(eng, simnet.DefaultConfig())
	n := rpc.NewNode(net.AddHost("svc"), 1, "svc", rpc.DefaultConfig())
	n.Start()
	c := NewInlineClient(n)
	var a Arg
	eng.Spawn("t", func(p *sim.Proc) {
		var err error
		a, err = c.MakeArg(p, make([]byte, 1<<20))
		if err != nil {
			t.Errorf("MakeArg: %v", err)
		}
	})
	eng.Run()
	eng.Shutdown()
	if a.IsRef() {
		t.Fatal("ForceInline produced a ref")
	}
	if a.WireSize() < 1<<20 {
		t.Fatalf("WireSize = %d, want >= payload", a.WireSize())
	}
}

func TestNegativeThresholdAlwaysRefs(t *testing.T) {
	r := newNetRig(t, Config{InlineThreshold: -1})
	r.run(t, func(p *sim.Proc) error {
		a, err := r.p1.MakeArg(p, []byte("tiny"))
		if err != nil {
			return err
		}
		if !a.IsRef() {
			t.Error("negative threshold should force pass-by-reference")
		}
		return nil
	})
}

func TestArgEncodeDecodeRoundTrip(t *testing.T) {
	inline := InlineArg([]byte("hello"))
	ref := RefArg(dm.Ref{Server: 2, Key: 42, Size: 9000})
	for _, a := range []Arg{inline, ref} {
		e := rpc.NewEnc(64)
		e.U16(7) // surrounding message fields
		a.Encode(e)
		e.Str("tail")
		d := rpc.NewDec(e.Bytes())
		if d.U16() != 7 {
			t.Fatal("prefix lost")
		}
		got := DecodeArg(d)
		if got.IsRef() != a.IsRef() || got.Size() != a.Size() {
			t.Fatalf("round trip %v -> %v", a, got)
		}
		if a.IsRef() && got.Ref() != a.Ref() {
			t.Fatalf("ref changed: %v", got.Ref())
		}
		if d.Str() != "tail" {
			t.Fatal("suffix lost")
		}
	}
}

func TestProducerConsumerThroughRef(t *testing.T) {
	for name, mk := range map[string]func(*testing.T, Config) *rig{"net": newNetRig, "cxl": newCXLRig} {
		t.Run(name, func(t *testing.T) {
			r := mk(t, Config{})
			r.run(t, func(p *sim.Proc) error {
				payload := bytes.Repeat([]byte("payload!"), 2048) // 16 KiB
				a, err := r.p1.MakeArg(p, payload)
				if err != nil {
					return err
				}
				// The Arg travels through an RPC message.
				e := rpc.NewEnc(64)
				a.Encode(e)
				a2 := DecodeArg(rpc.NewDec(e.Bytes()))

				d, err := r.p2.Open(p, a2)
				if err != nil {
					return err
				}
				got, err := d.Bytes(p)
				if err != nil {
					return err
				}
				if !bytes.Equal(got, payload) {
					t.Error("consumer read wrong bytes")
				}
				if err := d.Close(p); err != nil {
					return err
				}
				return r.p2.Release(p, a2)
			})
		})
	}
}

func TestConsumerWriteDoesNotAffectProducerView(t *testing.T) {
	r := newNetRig(t, Config{})
	r.run(t, func(p *sim.Proc) error {
		payload := bytes.Repeat([]byte("x"), 8192)
		a, err := r.p1.MakeArg(p, payload)
		if err != nil {
			return err
		}
		d1, err := r.p1.Open(p, a)
		if err != nil {
			return err
		}
		d2, err := r.p2.Open(p, a)
		if err != nil {
			return err
		}
		if err := d2.Write(p, 0, []byte("CLOBBER")); err != nil {
			return err
		}
		head := make([]byte, 7)
		if err := d1.Read(p, 0, head); err != nil {
			return err
		}
		if string(head) != "xxxxxxx" {
			t.Errorf("producer view changed to %q after consumer write", head)
		}
		return nil
	})
}

func TestNoPageLeakAcrossFullFlow(t *testing.T) {
	r := newNetRig(t, Config{})
	start := r.dmserver.FreePages()
	r.run(t, func(p *sim.Proc) error {
		a, err := r.p1.MakeArg(p, make([]byte, 16384))
		if err != nil {
			return err
		}
		d, err := r.p2.Open(p, a)
		if err != nil {
			return err
		}
		if err := d.Write(p, 0, []byte("force a CoW copy")); err != nil {
			return err
		}
		if err := d.Close(p); err != nil {
			return err
		}
		return r.p2.Release(p, a)
	})
	if got := r.dmserver.FreePages(); got != start {
		t.Fatalf("page leak: %d free, started %d", got, start)
	}
	if err := r.dmserver.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInlineDataReadWrite(t *testing.T) {
	r := newNetRig(t, Config{})
	r.run(t, func(p *sim.Proc) error {
		a, err := r.p1.MakeArg(p, []byte("small"))
		if err != nil {
			return err
		}
		d, err := r.p2.Open(p, a)
		if err != nil {
			return err
		}
		if err := d.Write(p, 0, []byte("SMALL")); err != nil {
			return err
		}
		got := make([]byte, 5)
		if err := d.Read(p, 0, got); err != nil {
			return err
		}
		if string(got) != "SMALL" {
			t.Errorf("inline write/read %q", got)
		}
		// Out of range access rejected.
		if err := d.Read(p, 3, make([]byte, 10)); err != dm.ErrOutOfRange {
			t.Errorf("out of range read: %v", err)
		}
		if err := d.Close(p); err != nil {
			return err
		}
		return r.p2.Release(p, a) // no-op for inline
	})
}

func TestOpenRefOnInlineClientFails(t *testing.T) {
	eng := sim.NewEngine(1)
	net := simnet.New(eng, simnet.DefaultConfig())
	n := rpc.NewNode(net.AddHost("svc"), 1, "svc", rpc.DefaultConfig())
	n.Start()
	c := NewInlineClient(n)
	eng.Spawn("t", func(p *sim.Proc) {
		if _, err := c.Open(p, RefArg(dm.Ref{Size: 10})); err == nil {
			t.Error("Open(ref) on inline client succeeded")
		}
		if err := c.Release(p, RefArg(dm.Ref{Size: 10})); err == nil {
			t.Error("Release(ref) on inline client succeeded")
		}
	})
	eng.Run()
	eng.Shutdown()
}

func TestNewClientRequiresSpace(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewClient(nil space) did not panic")
		}
	}()
	NewClient(nil, nil, Config{})
}

// plainSpace hides the fast-path interfaces so core's compositional
// Alloc+Write+CreateRef+Free staging and MapRef-on-Open paths run.
type plainSpace struct {
	inner dm.Space
}

func (s plainSpace) Alloc(p *sim.Proc, size int64) (dm.RemoteAddr, error) {
	return s.inner.Alloc(p, size)
}
func (s plainSpace) Free(p *sim.Proc, a dm.RemoteAddr) error { return s.inner.Free(p, a) }
func (s plainSpace) CreateRef(p *sim.Proc, a dm.RemoteAddr, n int64) (dm.Ref, error) {
	return s.inner.CreateRef(p, a, n)
}
func (s plainSpace) MapRef(p *sim.Proc, r dm.Ref) (dm.RemoteAddr, error) {
	return s.inner.MapRef(p, r)
}
func (s plainSpace) FreeRef(p *sim.Proc, r dm.Ref) error { return s.inner.FreeRef(p, r) }
func (s plainSpace) Write(p *sim.Proc, a dm.RemoteAddr, b []byte) error {
	return s.inner.Write(p, a, b)
}
func (s plainSpace) Read(p *sim.Proc, a dm.RemoteAddr, b []byte) error {
	return s.inner.Read(p, a, b)
}

func TestSlowPathWithoutFastInterfaces(t *testing.T) {
	r := newNetRig(t, Config{})
	slow := NewClient(r.p1.Node(), plainSpace{inner: r.p1.Space()}, Config{})
	r.run(t, func(p *sim.Proc) error {
		payload := bytes.Repeat([]byte("slowpath"), 1024)
		arg, err := slow.MakeArg(p, payload) // compositional staging
		if err != nil {
			return err
		}
		if !arg.IsRef() {
			t.Fatal("large arg inlined")
		}
		d, err := slow.Open(p, arg) // must map eagerly (no RefReader)
		if err != nil {
			return err
		}
		got, err := d.Bytes(p)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			t.Error("slow path read mismatch")
		}
		if err := d.Close(p); err != nil {
			return err
		}
		return slow.Release(p, arg)
	})
	if err := r.dmserver.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseAsync(t *testing.T) {
	r := newNetRig(t, Config{})
	start := r.dmserver.FreePages()
	r.run(t, func(p *sim.Proc) error {
		arg, err := r.p1.MakeArg(p, make([]byte, 8192))
		if err != nil {
			return err
		}
		r.p1.ReleaseAsync(arg)
		r.p1.ReleaseAsync(InlineArg([]byte("no-op"))) // inline: nothing to do
		return nil
	})
	// run() drives the engine until idle, so the async release completed.
	if got := r.dmserver.FreePages(); got != start {
		t.Fatalf("async release leaked: %d free, started %d", got, start)
	}
}

func TestClientAccessorsAndCall(t *testing.T) {
	r := newNetRig(t, Config{})
	if r.p1.Node() == nil || r.p1.Space() == nil || r.p1.Host() == nil {
		t.Fatal("accessors returned nil")
	}
	// Call proxies to the node: no handler registered => app error.
	r.run(t, func(p *sim.Proc) error {
		if _, err := r.p1.Call(p, r.p2.Node().Addr(), 0x0F00, nil); err == nil {
			t.Error("call to unregistered method succeeded")
		}
		return nil
	})
}

func TestArgString(t *testing.T) {
	if s := InlineArg([]byte("abc")).String(); s != "arg(inline 3B)" {
		t.Fatalf("inline String = %q", s)
	}
	if s := RefArg(dm.Ref{Server: 1, Key: 2, Size: 3}).String(); s == "" {
		t.Fatal("ref String empty")
	}
}

func TestDataSize(t *testing.T) {
	r := newNetRig(t, Config{})
	r.run(t, func(p *sim.Proc) error {
		d, err := r.p1.Open(p, InlineArg([]byte("12345")))
		if err != nil {
			return err
		}
		if d.Size() != 5 {
			t.Errorf("Size = %d", d.Size())
		}
		return nil
	})
}

func TestForwardingCostIndependentOfPayload(t *testing.T) {
	// A forwarder that never Opens the Arg sends only the small ref; wire
	// size must not grow with payload.
	r := newNetRig(t, Config{})
	r.run(t, func(p *sim.Proc) error {
		small, err := r.p1.MakeArg(p, make([]byte, 4096))
		if err != nil {
			return err
		}
		big, err := r.p1.MakeArg(p, make([]byte, 1<<20))
		if err != nil {
			return err
		}
		if small.WireSize() != big.WireSize() {
			t.Errorf("ref wire sizes differ: %d vs %d", small.WireSize(), big.WireSize())
		}
		return nil
	})
}
