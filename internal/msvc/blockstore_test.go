package msvc

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

func TestBlockStoreWriteReadAllModes(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			pl := NewPlatform(DefaultConfig(mode))
			defer pl.Shutdown()
			bs := NewBlockStore(pl, 3, 2)
			pl.Start()
			block := bytes.Repeat([]byte("blockdata"), 7282) // ~64 KiB
			runProc(t, pl, func(p *sim.Proc) error {
				if err := bs.Write(p, 42, block); err != nil {
					return err
				}
				got, err := bs.Read(p, 42)
				if err != nil {
					return err
				}
				if !bytes.Equal(got, block) {
					t.Error("read back differs")
				}
				return nil
			})
			if got := bs.StoredOn(42); len(got) != 2 {
				t.Fatalf("block on %d backends, want 2 replicas", len(got))
			}
		})
	}
}

func TestBlockStoreReplicaPlacement(t *testing.T) {
	pl := NewPlatform(DefaultConfig(ModeERPC))
	defer pl.Shutdown()
	bs := NewBlockStore(pl, 3, 2)
	pl.Start()
	runProc(t, pl, func(p *sim.Proc) error {
		for key := uint64(0); key < 3; key++ {
			if err := bs.Write(p, key, make([]byte, 4096)); err != nil {
				return err
			}
		}
		return nil
	})
	// Keys 0,1,2 land on backends {0,1},{1,2},{2,0}.
	for key := uint64(0); key < 3; key++ {
		on := bs.StoredOn(key)
		want := []int{bs.replica(key, 0), bs.replica(key, 1)}
		if want[0] > want[1] {
			want[0], want[1] = want[1], want[0]
		}
		if len(on) != 2 || on[0] != want[0] || on[1] != want[1] {
			t.Fatalf("key %d on %v, want %v", key, on, want)
		}
	}
}

func TestBlockStoreOverwriteNoLeak(t *testing.T) {
	pl := NewPlatform(DefaultConfig(ModeDmNet))
	defer pl.Shutdown()
	bs := NewBlockStore(pl, 3, 2)
	pl.Start()
	free := func() int {
		total := 0
		for _, s := range pl.DMServers() {
			total += s.FreePages()
		}
		return total
	}
	runProc(t, pl, func(p *sim.Proc) error {
		return bs.Write(p, 7, bytes.Repeat([]byte("v1"), 8192))
	})
	afterFirst := free()
	runProc(t, pl, func(p *sim.Proc) error {
		for i := 0; i < 5; i++ {
			if err := bs.Write(p, 7, bytes.Repeat([]byte("vN"), 8192)); err != nil {
				return err
			}
		}
		got, err := bs.Read(p, 7)
		if err != nil {
			return err
		}
		if string(got[:2]) != "vN" {
			t.Errorf("read stale version %q", got[:2])
		}
		return nil
	})
	if got := free(); got != afterFirst {
		t.Fatalf("overwrites leaked pages: %d free, want %d", got, afterFirst)
	}
	for _, s := range pl.DMServers() {
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBlockStoreGatewayNeverTouchesData(t *testing.T) {
	memPerWrite := func(mode Mode) int64 {
		pl := NewPlatform(DefaultConfig(mode))
		defer pl.Shutdown()
		bs := NewBlockStore(pl, 3, 2)
		pl.Start()
		const writes = 8
		block := make([]byte, 65536)
		before := bs.Gateway().Host.MemBytesMoved()
		runProc(t, pl, func(p *sim.Proc) error {
			for i := 0; i < writes; i++ {
				if err := bs.Write(p, uint64(i), block); err != nil {
					return err
				}
			}
			return nil
		})
		return (bs.Gateway().Host.MemBytesMoved() - before) / writes
	}
	erpc := memPerWrite(ModeERPC)
	dm := memPerWrite(ModeDmNet)
	// Pass-by-value replication moves the block through the gateway R+1
	// times; refs keep it off the gateway entirely.
	if erpc < 2*65536 {
		t.Fatalf("eRPC gateway moved %dB/write, want >= 2 blocks", erpc)
	}
	if dm > 8192 {
		t.Fatalf("DmRPC gateway moved %dB/write, want tiny", dm)
	}
}

func TestBlockStoreMissingBlock(t *testing.T) {
	pl := NewPlatform(DefaultConfig(ModeERPC))
	defer pl.Shutdown()
	bs := NewBlockStore(pl, 2, 1)
	pl.Start()
	var err error
	pl.Eng.Spawn("t", func(p *sim.Proc) { _, err = bs.Read(p, 404) })
	pl.Eng.Run()
	if err == nil {
		t.Fatal("read of missing block succeeded")
	}
}

func TestBlockStoreValidation(t *testing.T) {
	pl := NewPlatform(DefaultConfig(ModeERPC))
	defer pl.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("replicas > backends accepted")
		}
	}()
	NewBlockStore(pl, 2, 3)
}
