// Quickstart reproduces the paper's Listing 1 end to end on the simulated
// datacenter: a Client stages an integer array in disaggregated memory,
// sends only a Ref through a Load-balancer microservice, and an idle
// Worker maps the Ref and aggregates the array — the canonical
// pass-by-reference flow of DmRPC-net.
//
//	go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"

	"repro/internal/dm"
	"repro/internal/dmnet"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stats"
)

const (
	mLB     rpc.Method = 1 // load balancer: forwards the Ref
	mWorker rpc.Method = 2 // worker: maps the Ref and aggregates
)

func main() {
	eng := sim.NewEngine(42)
	defer eng.Shutdown()
	net := simnet.New(eng, simnet.DefaultConfig())

	// One DM server (the disaggregated memory pool).
	srv := dmnet.NewServer(net.AddHost("dm-server"), 1, 0, dmnet.DefaultServerConfig())
	srv.Start()
	pool := []simnet.Addr{srv.Addr()}

	// Three microservices on three compute servers.
	clientNode := rpc.NewNode(net.AddHost("client"), 1, "client", rpc.DefaultConfig())
	lbNode := rpc.NewNode(net.AddHost("lb"), 1, "lb", rpc.DefaultConfig())
	worker1 := rpc.NewNode(net.AddHost("worker1"), 1, "worker1", rpc.DefaultConfig())
	worker2 := rpc.NewNode(net.AddHost("worker2"), 1, "worker2", rpc.DefaultConfig())

	clientDM := dmnet.NewClient(clientNode, pool)
	w1DM := dmnet.NewClient(worker1, pool)
	w2DM := dmnet.NewClient(worker2, pool)

	// @Load balancer: forwards requests without touching arguments.
	busy := false
	lbNode.Handle(mLB, func(ctx *rpc.Ctx, body []byte) ([]byte, error) {
		target := worker1.Addr()
		if busy {
			target = worker2.Addr()
		}
		busy = !busy
		return ctx.Node.Call(ctx.P, target, mWorker, body)
	})

	// @Worker: map ref to a DM virtual address, rread into a local buffer,
	// aggregate, rfree.
	workerHandler := func(dmc *dmnet.Client) rpc.Handler {
		return func(ctx *rpc.Ctx, body []byte) ([]byte, error) {
			ref, err := dm.UnmarshalRef(body)
			if err != nil {
				return nil, err
			}
			rAddr, err := dmc.MapRef(ctx.P, ref)
			if err != nil {
				return nil, err
			}
			local := make([]byte, ref.Size)
			if err := dmc.Read(ctx.P, rAddr, local); err != nil {
				return nil, err
			}
			var sum uint64
			for i := 0; i+8 <= len(local); i += 8 {
				sum += binary.LittleEndian.Uint64(local[i:])
			}
			if err := dmc.Free(ctx.P, rAddr); err != nil {
				return nil, err
			}
			return rpc.NewEnc(8).U64(sum).Bytes(), nil
		}
	}
	worker1.Handle(mWorker, workerHandler(w1DM))
	worker2.Handle(mWorker, workerHandler(w2DM))

	for _, n := range []*rpc.Node{clientNode, lbNode, worker1, worker2} {
		n.Start()
	}

	// @Client: the Listing 1 sequence.
	eng.Spawn("client", func(p *sim.Proc) {
		for _, c := range []*dmnet.Client{clientDM, w1DM, w2DM} {
			if err := c.Register(p); err != nil {
				panic(err)
			}
		}

		const n = 1024
		local := make([]byte, n*8)
		var want uint64
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(local[i*8:], uint64(i))
			want += uint64(i)
		}

		start := p.Now()
		rAddr, err := clientDM.Alloc(p, int64(len(local))) // ralloc
		check(err)
		check(clientDM.Write(p, rAddr, local))                      // rwrite: fill the DM
		ref, err := clientDM.CreateRef(p, rAddr, int64(len(local))) // create_ref
		check(err)
		resp, err := clientNode.Call(p, lbNode.Addr(), mLB, ref.Marshal()) // RPC_LB(ref)
		check(err)
		check(clientDM.Free(p, rAddr)) // rfree
		check(clientDM.FreeRef(p, ref))
		elapsed := p.Now() - start

		sum := rpc.NewDec(resp).U64()
		fmt.Printf("aggregated sum over DM: %d (want %d)\n", sum, want)
		fmt.Printf("ref wire size: %dB for a %s array\n", dm.EncodedRefSize, stats.Bytes(int64(len(local))))
		fmt.Printf("end-to-end virtual time: %s\n", stats.Dur(elapsed))
		if sum != want {
			panic("aggregation mismatch")
		}
	})
	eng.Run()
	fmt.Println("ok: client -> LB -> worker flow completed with pass-by-reference")
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
