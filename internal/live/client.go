package live

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"

	"repro/internal/dm"
	"repro/internal/dmwire"
	"repro/internal/rpc"
)

// Client is a process's live handle on a DM server pool: the Table II API
// over real TCP connections, with allocations round-robined across
// servers, mirroring dmnet.Client. Methods are safe for concurrent use.
type Client struct {
	mu    sync.Mutex
	node  *Node
	addrs []string
	pids  []uint32
	ready bool
	rr    int
}

// conn is one multiplexed TCP connection to a DM server.
type conn struct {
	c       net.Conn
	wmu     sync.Mutex
	pmu     sync.Mutex
	pending map[uint64]chan response
	nextID  uint64
	dead    error
}

// response carries one frame's payload (status byte + body) off the read
// loop. The payload is a pooled buffer whose ownership transfers to the
// receiving call.
type response struct {
	payload []byte
}

// Dial connects to every server address in order. The order must match
// across processes sharing refs (Ref.Server is the pool index).
func Dial(addrs ...string) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("live: need at least one server address")
	}
	cl := &Client{node: NewNode(), addrs: addrs, pids: make([]uint32, len(addrs))}
	for _, a := range addrs {
		if _, err := cl.node.peer(a); err != nil {
			cl.Close()
			return nil, err
		}
	}
	return cl, nil
}

// Close tears down every connection.
func (cl *Client) Close() error { return cl.node.Close() }

// readLoop dispatches responses to waiting calls.
func (c *conn) readLoop() {
	br := bufio.NewReaderSize(c.c, 64<<10)
	var hdr [frameHeaderSize]byte
	for {
		kind, reqID, payload, err := readFrameBuf(br, hdr[:])
		if err != nil {
			c.fail(err)
			return
		}
		if kind != kindResponse || len(payload) < 1 {
			putBuf(payload)
			c.fail(fmt.Errorf("live: malformed response frame"))
			return
		}
		c.pmu.Lock()
		ch, ok := c.pending[reqID]
		delete(c.pending, reqID)
		c.pmu.Unlock()
		if !ok {
			putBuf(payload)
			continue
		}
		// Every pending channel is buffered (cap 1) and receives exactly
		// one send — the id is deleted above before the send — so the
		// read loop can never block on a caller, even one that has given
		// up. The default arm is pure defense in depth: if the invariant
		// were ever broken, drop the response rather than wedge every
		// call multiplexed on this connection.
		select {
		case ch <- response{payload: payload}:
		default:
			putBuf(payload)
		}
	}
}

// fail poisons the connection and unblocks all waiters.
func (c *conn) fail(err error) {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	c.dead = err
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
}

// call performs one request/response exchange. The request goes out as a
// single vectored write — frame header, method, hdr, payload — with no
// intermediate copy of payload, which is the zero-copy path large
// rwrite/stage bodies ride. The pooled response body is handed to consume
// (which must not retain it) and recycled before call returns.
func (c *conn) call(m rpc.Method, hdr, payload []byte, consume func(resp []byte) error) error {
	ch := make(chan response, 1)
	c.pmu.Lock()
	if c.dead != nil {
		c.pmu.Unlock()
		return fmt.Errorf("live: connection failed: %w", c.dead)
	}
	id := c.nextID
	c.nextID++
	c.pending[id] = ch
	c.pmu.Unlock()

	// Frame header + method + request header in one scratch buffer; the
	// bulk payload rides as its own iovec.
	scratch := getBuf(frameHeaderSize + 2 + len(hdr))
	fh := scratch[:frameHeaderSize]
	binary.BigEndian.PutUint32(fh, uint32(2+len(hdr)+len(payload)))
	fh[4] = kindRequest
	binary.BigEndian.PutUint64(fh[5:], id)
	binary.BigEndian.PutUint16(scratch[frameHeaderSize:], uint16(m))
	copy(scratch[frameHeaderSize+2:], hdr)

	bufs := net.Buffers{scratch}
	if len(payload) > 0 {
		bufs = append(bufs, payload)
	}
	c.wmu.Lock()
	_, err := bufs.WriteTo(c.c)
	c.wmu.Unlock()
	putBuf(scratch[:cap(scratch)])
	if err != nil {
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		// A failed write means the connection is gone; poison it so the
		// owning Node redials on the next call.
		c.fail(err)
		return err
	}

	resp, ok := <-ch
	if !ok {
		c.pmu.Lock()
		err := c.dead
		c.pmu.Unlock()
		return fmt.Errorf("live: connection failed: %w", err)
	}
	status, body := resp.payload[0], resp.payload[1:]
	if status != dmwire.StatusOK {
		err := dmwire.ErrOf(status, string(body))
		putBuf(resp.payload)
		return err
	}
	if consume != nil {
		err = consume(body)
	}
	putBuf(resp.payload)
	return err
}

// Register obtains a PID from every server; must complete before other
// calls.
func (cl *Client) Register() error {
	for i, a := range cl.addrs {
		var pid uint32
		err := cl.node.CallConsume(a, dmwire.MRegister, nil, nil, func(resp []byte) error {
			r, err := dmwire.UnmarshalRegisterResp(resp)
			if err != nil {
				return err
			}
			pid = r.PID
			return nil
		})
		if err != nil {
			return err
		}
		cl.pids[i] = pid
	}
	cl.mu.Lock()
	cl.ready = true
	cl.mu.Unlock()
	return nil
}

// server picks the pool entry for index i.
func (cl *Client) server(i int) (string, uint32, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if !cl.ready {
		return "", 0, fmt.Errorf("live: client not registered")
	}
	if i < 0 || i >= len(cl.addrs) {
		return "", 0, dm.ErrBadAddress
	}
	return cl.addrs[i], cl.pids[i], nil
}

// next round-robins the target server for allocations and staging.
func (cl *Client) next() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	i := cl.rr
	cl.rr = (cl.rr + 1) % len(cl.addrs)
	return i
}

// Address tagging matches dmnet: the pool index rides in the top byte.
const serverShift = 56

func tagAddr(server int, a dm.RemoteAddr) dm.RemoteAddr {
	return dm.RemoteAddr(uint64(server)<<serverShift | uint64(a))
}

func splitAddr(a dm.RemoteAddr) (int, dm.RemoteAddr) {
	return int(uint64(a) >> serverShift), dm.RemoteAddr(uint64(a) & (1<<serverShift - 1))
}

// Alloc reserves size bytes (ralloc).
func (cl *Client) Alloc(size int64) (dm.RemoteAddr, error) {
	idx := cl.next()
	srv, pid, err := cl.server(idx)
	if err != nil {
		return 0, err
	}
	var addr dm.RemoteAddr
	err = cl.node.CallConsume(srv, dmwire.MAlloc, dmwire.AllocReq{PID: pid, Size: size}.Marshal(), nil,
		func(resp []byte) error {
			r, err := dmwire.UnmarshalAllocResp(resp)
			if err != nil {
				return err
			}
			addr = r.Addr
			return nil
		})
	if err != nil {
		return 0, err
	}
	return tagAddr(idx, addr), nil
}

// Free releases the region at addr (rfree).
func (cl *Client) Free(addr dm.RemoteAddr) error {
	idx, raw := splitAddr(addr)
	srv, pid, err := cl.server(idx)
	if err != nil {
		return err
	}
	return cl.node.CallConsume(srv, dmwire.MFree, dmwire.FreeReq{PID: pid, Addr: raw}.Marshal(), nil, nil)
}

// CreateRef shares [addr, addr+size) read-only (create_ref).
func (cl *Client) CreateRef(addr dm.RemoteAddr, size int64) (dm.Ref, error) {
	idx, raw := splitAddr(addr)
	srv, pid, err := cl.server(idx)
	if err != nil {
		return dm.Ref{}, err
	}
	key, err := cl.callRefKey(srv, dmwire.MCreateRef, dmwire.CreateRefReq{PID: pid, Addr: raw, Size: size}.Marshal(), nil)
	if err != nil {
		return dm.Ref{}, err
	}
	return dm.Ref{Server: uint32(idx), Key: key, Size: size}, nil
}

// callRefKey runs a call whose successful response is a RefKeyResp.
func (cl *Client) callRefKey(srv string, m rpc.Method, hdr, payload []byte) (uint64, error) {
	var key uint64
	err := cl.node.CallConsume(srv, m, hdr, payload, func(resp []byte) error {
		r, err := dmwire.UnmarshalRefKeyResp(resp)
		if err != nil {
			return err
		}
		key = r.Key
		return nil
	})
	return key, err
}

// MapRef maps a ref into this process's DM address space (map_ref).
func (cl *Client) MapRef(ref dm.Ref) (dm.RemoteAddr, error) {
	srv, pid, err := cl.server(int(ref.Server))
	if err != nil {
		return 0, err
	}
	var addr dm.RemoteAddr
	err = cl.node.CallConsume(srv, dmwire.MMapRef, dmwire.MapRefReq{PID: pid, Key: ref.Key}.Marshal(), nil,
		func(resp []byte) error {
			r, err := dmwire.UnmarshalMapRefResp(resp)
			if err != nil {
				return err
			}
			addr = r.Addr
			return nil
		})
	if err != nil {
		return 0, err
	}
	return tagAddr(int(ref.Server), addr), nil
}

// FreeRef drops the ref's own page hold.
func (cl *Client) FreeRef(ref dm.Ref) error {
	srv, _, err := cl.server(int(ref.Server))
	if err != nil {
		return err
	}
	return cl.node.CallConsume(srv, dmwire.MFreeRef, dmwire.FreeRefReq{Key: ref.Key}.Marshal(), nil, nil)
}

// Write stores src at addr (rwrite). The payload is written to the socket
// straight from src — no marshal copy.
func (cl *Client) Write(addr dm.RemoteAddr, src []byte) error {
	idx, raw := splitAddr(addr)
	srv, pid, err := cl.server(idx)
	if err != nil {
		return err
	}
	return cl.node.CallConsume(srv, dmwire.MWrite, dmwire.WriteReq{PID: pid, Addr: raw}.MarshalHdr(), src, nil)
}

// Read loads len(dst) bytes from addr (rread); the response body is
// copied once, pooled buffer to dst.
func (cl *Client) Read(addr dm.RemoteAddr, dst []byte) error {
	idx, raw := splitAddr(addr)
	srv, pid, err := cl.server(idx)
	if err != nil {
		return err
	}
	return cl.node.CallConsume(srv, dmwire.MRead,
		dmwire.ReadReq{PID: pid, Addr: raw, Size: uint32(len(dst))}.Marshal(), nil,
		func(resp []byte) error {
			if len(resp) != len(dst) {
				return fmt.Errorf("live: read returned %d bytes, want %d", len(resp), len(dst))
			}
			copy(dst, resp)
			return nil
		})
}

// StageRef stages data into fresh pages in one round trip; data rides the
// socket directly (no marshal copy).
func (cl *Client) StageRef(data []byte) (dm.Ref, error) {
	idx := cl.next()
	srv, pid, err := cl.server(idx)
	if err != nil {
		return dm.Ref{}, err
	}
	key, err := cl.callRefKey(srv, dmwire.MStage, dmwire.StageReq{PID: pid}.MarshalHdr(), data)
	if err != nil {
		return dm.Ref{}, err
	}
	return dm.Ref{Server: uint32(idx), Key: key, Size: int64(len(data))}, nil
}

// ReadRef reads the ref's snapshot without mapping it.
func (cl *Client) ReadRef(ref dm.Ref, off int64, dst []byte) error {
	srv, _, err := cl.server(int(ref.Server))
	if err != nil {
		return err
	}
	return cl.node.CallConsume(srv, dmwire.MReadRef,
		dmwire.ReadRefReq{Key: ref.Key, Off: uint32(off), Size: uint32(len(dst))}.Marshal(), nil,
		func(resp []byte) error {
			if len(resp) != len(dst) {
				return fmt.Errorf("live: readref returned %d bytes, want %d", len(resp), len(dst))
			}
			copy(dst, resp)
			return nil
		})
}
