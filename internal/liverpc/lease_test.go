package liverpc

import (
	"bytes"
	"testing"

	"repro/internal/dm"
	"repro/internal/live"
)

// copyOnlyDM wraps a DM backend and hides its ReadRefLease method, so
// FetchLease must take the copying-bridge path.
type copyOnlyDM struct {
	inner DM
}

func (c copyOnlyDM) StageRef(data []byte) (dm.Ref, error)        { return c.inner.StageRef(data) }
func (c copyOnlyDM) ReadRef(r dm.Ref, off int64, d []byte) error { return c.inner.ReadRef(r, off, d) }
func (c copyOnlyDM) FreeRef(r dm.Ref) error                      { return c.inner.FreeRef(r) }
func (c copyOnlyDM) MapRef(r dm.Ref) (dm.RemoteAddr, error)      { return c.inner.MapRef(r) }
func (c copyOnlyDM) CreateRef(a dm.RemoteAddr, s int64) (dm.Ref, error) {
	return c.inner.CreateRef(a, s)
}
func (c copyOnlyDM) Free(a dm.RemoteAddr) error { return c.inner.Free(a) }

// TestFetchLeaseInlineAliases: an inline payload's lease wraps the
// envelope bytes without copying, and Release drops the hold without
// touching the frame pool.
func TestFetchLeaseInlineAliases(t *testing.T) {
	c := NewCaller(nil, Config{})
	defer c.Close()
	base := live.LeasedBufs()

	src := []byte("inline payload")
	b, err := c.FetchLease(Inline(src))
	if err != nil {
		t.Fatal(err)
	}
	src[0] = 'I' // aliasing is the contract: no copy happened
	if string(b.Bytes()) != "Inline payload" {
		t.Fatalf("inline lease copied instead of aliasing: %q", b.Bytes())
	}
	if got := live.LeasedBufs(); got != base+1 {
		t.Fatalf("gauge with inline lease = %d, want %d", got, base+1)
	}
	b.Release()
	if got := live.LeasedBufs(); got != base {
		t.Fatalf("gauge after release = %d, want %d", got, base)
	}
}

// TestFetchLeaseZeroCopyBackend: with a BufDM backend (*live.Client) the
// staged bytes come back through ReadRefLease — one leased pooled frame,
// balanced by Release.
func TestFetchLeaseZeroCopyBackend(t *testing.T) {
	_, addr := startDM(t, smallDM())
	cdm := dialDM(t, addr)
	c := NewCaller(cdm, Config{InlineThreshold: 512})
	defer c.Close()

	payload := bytes.Repeat([]byte("big"), 2048) // 6 KiB: passes by ref
	p, err := c.Stage(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsRef() {
		t.Fatal("payload above the threshold did not stage by ref")
	}
	base := live.LeasedBufs()
	b, err := c.FetchLease(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := live.LeasedBufs(); got != base+1 {
		t.Fatalf("gauge with ref lease = %d, want %d", got, base+1)
	}
	if !bytes.Equal(b.Bytes(), payload) {
		t.Fatal("leased ref payload mismatch")
	}
	b.Release()
	if got := live.LeasedBufs(); got != base {
		t.Fatalf("gauge after release = %d, want %d", got, base)
	}
	if err := c.Release(p); err != nil {
		t.Fatal(err)
	}
}

// TestFetchLeaseCopyBridge: a backend without ReadRefLease still serves
// FetchLease through the copying bridge, with the same ownership
// contract (one lease, one Release).
func TestFetchLeaseCopyBridge(t *testing.T) {
	_, addr := startDM(t, smallDM())
	cdm := dialDM(t, addr)
	bridged := copyOnlyDM{inner: cdm}
	if _, ok := DM(bridged).(BufDM); ok {
		t.Fatal("test wrapper unexpectedly satisfies BufDM")
	}
	c := NewCaller(bridged, Config{InlineThreshold: 512})
	defer c.Close()

	payload := bytes.Repeat([]byte("xyz"), 1024) // 3 KiB: by ref
	p, err := c.Stage(payload)
	if err != nil {
		t.Fatal(err)
	}
	base := live.LeasedBufs()
	b, err := c.FetchLease(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), payload) {
		t.Fatal("bridged lease payload mismatch")
	}
	b.Release()
	if got := live.LeasedBufs(); got != base {
		t.Fatalf("gauge after bridged release = %d, want %d", got, base)
	}
	if err := c.Release(p); err != nil {
		t.Fatal(err)
	}
}
