package bench

import (
	"io"

	"repro/internal/msvc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig11Row is one (mode, offered rate) measurement of the DeathStarBench
// social-network experiment (§VI-F, Fig 11) under the 60/30/10 mix.
type Fig11Row struct {
	Mode      msvc.Mode
	Offered   float64 // requests/s offered (open loop)
	Achieved  float64 // requests/s completed
	AvgNs     int64
	P99Ns     int64
	P999Ns    int64
	Saturated bool // achieved < 90% of offered
}

// Fig11Result holds the Fig 11 sweep.
type Fig11Result struct {
	Rows []Fig11Row
}

// fig11MediaSize is the post media payload.
const fig11MediaSize = 8192

// Fig11 reproduces Fig 11: average and tail latency versus request rate
// for eRPC and DmRPC-net on the social-network mixed workload.
func Fig11(scale Scale) Fig11Result {
	rates := []float64{100_000, 500_000, 1_000_000, 2_000_000}
	if scale == Full {
		// 1.5M/s already saturates both systems; higher offered rates only
		// lengthen the run without adding information.
		rates = []float64{100_000, 250_000, 500_000, 750_000, 1_000_000, 1_500_000}
	}
	warm, meas := scale.windows()
	var res Fig11Result
	for _, mode := range []msvc.Mode{msvc.ModeERPC, msvc.ModeDmNet} {
		for _, rate := range rates {
			cfg := msvc.DefaultConfig(mode)
			// The social-network services are event-driven in the original
			// benchmark; a generous worker pool keeps saturation bound by
			// data movement (NICs, memory) rather than thread counts.
			cfg.RPC.Workers = 64
			pl := msvc.NewPlatform(cfg)
			sn := msvc.NewSocialNet(pl, msvc.SocialNetConfig{MediaSize: fig11MediaSize})
			pl.Start()
			if err := sn.Prepopulate(64); err != nil {
				panic(err)
			}
			r := workload.RunOpen(pl.Eng, workload.OpenConfig{
				Rate:    rate,
				Warmup:  warm,
				Measure: meas,
				Drain:   meas,
				// A deep arrival buffer so saturation throughput reflects
				// the system, not the generator's concurrency cap.
				MaxOutstanding: 16384,
			}, sn.MixedOp())
			s := r.Latency.Summarize()
			achieved := r.Throughput()
			res.Rows = append(res.Rows, Fig11Row{
				Mode:     mode,
				Offered:  rate,
				Achieved: achieved,
				AvgNs:    int64(s.Mean),
				P99Ns:    s.P99,
				P999Ns:   s.P999,
				// Saturated when completions fall behind the offered rate
				// or queueing blows latency past 1 ms (requests take tens
				// of µs unloaded).
				Saturated: achieved < 0.9*rate || s.Mean > float64(sim.Millisecond),
			})
			pl.Shutdown()
		}
	}
	return res
}

// Print writes the Fig 11 table.
func (r Fig11Result) Print(w io.Writer) {
	header(w, "fig11", "DeathStarBench social network: latency vs request rate (60/30/10 mix)")
	t := stats.NewTable("system", "offered", "achieved", "avg", "p99", "p99.9", "saturated")
	for _, row := range r.Rows {
		t.AddRow(row.Mode, stats.Rate(row.Offered), stats.Rate(row.Achieved),
			stats.Dur(row.AvgNs), stats.Dur(row.P99Ns), stats.Dur(row.P999Ns), row.Saturated)
	}
	io.WriteString(w, t.String())
}

// MaxUnsaturatedRate returns the highest offered rate a mode sustained
// (achieved >= 90% of offered); used for the 3.1x headline comparison.
func (r Fig11Result) MaxUnsaturatedRate(mode msvc.Mode) float64 {
	best := 0.0
	for _, row := range r.Rows {
		if row.Mode == mode && !row.Saturated && row.Offered > best {
			best = row.Offered
		}
	}
	return best
}

// Get returns the row for (mode, offered rate).
func (r Fig11Result) Get(mode msvc.Mode, rate float64) (Fig11Row, bool) {
	for _, row := range r.Rows {
		if row.Mode == mode && row.Offered == rate {
			return row, true
		}
	}
	return Fig11Row{}, false
}
