package bench

import (
	"io"

	"repro/internal/msvc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig5Row is one (mode, chain length) measurement of the nested-RPC-calls
// experiment (§VI-B): a 4 KiB array forwarded down a service chain and
// aggregated at the end.
type Fig5Row struct {
	Mode       msvc.Mode
	Hops       int
	Throughput float64 // requests/s, pipelined closed loop
	// AvgLatency is measured during the same loaded run, matching the
	// paper's methodology of reporting throughput and latency from one
	// experiment (data-movement pressure shows up as queueing delay).
	AvgLatency sim.Time
}

// Fig5Result holds the Fig 5 sweep.
type Fig5Result struct {
	Rows []Fig5Row
}

const fig5Payload = 4096

// Fig5 reproduces Fig 5a/5b: throughput and average latency of nested RPC
// chains of increasing length for eRPC, DmRPC-net and DmRPC-CXL.
func Fig5(scale Scale) Fig5Result {
	hopsList := []int{1, 3, 5, 7}
	if scale == Full {
		hopsList = []int{1, 2, 3, 4, 5, 6, 7}
	}
	warm, meas := scale.windows()
	var res Fig5Result
	for _, mode := range []msvc.Mode{msvc.ModeERPC, msvc.ModeDmNet, msvc.ModeDmCXL} {
		for _, hops := range hopsList {
			pl := msvc.NewPlatform(msvc.DefaultConfig(mode))
			ch := msvc.NewChain(pl, hops)
			pl.Start()
			payload := make([]byte, fig5Payload)
			r := workload.RunClosed(pl.Eng, workload.ClosedConfig{
				Clients: 16, Warmup: warm, Measure: meas,
			}, func(p *sim.Proc) error {
				_, err := ch.Do(p, payload)
				return err
			})
			pl.Shutdown()
			res.Rows = append(res.Rows, Fig5Row{
				Mode:       mode,
				Hops:       hops,
				Throughput: r.Throughput(),
				AvgLatency: sim.Time(r.Latency.Mean()),
			})
		}
	}
	return res
}

// Print writes the Fig 5a table (throughput).
func (r Fig5Result) Print(w io.Writer) {
	header(w, "fig5a", "nested RPC chain throughput (4KiB argument)")
	t := stats.NewTable("system", "hops", "throughput")
	for _, row := range r.Rows {
		t.AddRow(row.Mode, row.Hops, stats.Rate(row.Throughput))
	}
	io.WriteString(w, t.String())
}

// PrintLatency writes the Fig 5b table (average latency).
func (r Fig5Result) PrintLatency(w io.Writer) {
	header(w, "fig5b", "nested RPC chain average latency (4KiB argument)")
	t := stats.NewTable("system", "hops", "avg latency")
	for _, row := range r.Rows {
		t.AddRow(row.Mode, row.Hops, stats.Dur(row.AvgLatency))
	}
	io.WriteString(w, t.String())
}

// Get returns the row for (mode, hops), for shape assertions in tests.
func (r Fig5Result) Get(mode msvc.Mode, hops int) (Fig5Row, bool) {
	for _, row := range r.Rows {
		if row.Mode == mode && row.Hops == hops {
			return row, true
		}
	}
	return Fig5Row{}, false
}
