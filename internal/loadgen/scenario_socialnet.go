package loadgen

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/apps"
	"repro/internal/liverpc"
	"repro/internal/workload"
)

// socialNet drives the trimmed DeathStarBench social network (paper
// §VI-F): compose-post, read-home-timeline and read-user-timeline at a
// configurable percentage mix, with Zipf-skewed author popularity so a
// few hot users absorb most composes and user-timeline reads.
type socialNet struct {
	dep   *liverpc.SocialNetDeployment
	users int
}

// SocialNet builds the socialnet scenario.
func SocialNet() Scenario { return &socialNet{} }

func (s *socialNet) Name() string { return "socialnet" }

func (s *socialNet) Setup(env *Env) error {
	if t := env.Mix.Compose + env.Mix.ReadHome + env.Mix.ReadUser; t != 100 {
		return fmt.Errorf("loadgen: socialnet mix %d/%d/%d must sum to 100",
			env.Mix.Compose, env.Mix.ReadHome, env.Mix.ReadUser)
	}
	dep, err := liverpc.DeploySocialNetWith(env.NewSession, env.Frontends, env.RPC)
	if err != nil {
		return err
	}
	s.dep = dep
	// Preload one post per author so read-user never pages an empty
	// timeline (capped: the preload is serial).
	s.users = env.Users
	if s.users > 1024 {
		s.users = 1024
	}
	sess, err := env.NewSession()
	if err != nil {
		return err
	}
	cl := liverpc.NewSocialNetClient(sess, dep.Frontend, env.RPC)
	defer cl.Close()
	media := make([]byte, env.MediaSize)
	for u := 0; u < s.users; u++ {
		apps.FillPayload(media, uint64(u))
		if _, err := cl.ComposeAs(uint64(u), media); err != nil {
			return fmt.Errorf("loadgen: socialnet preload user %d: %w", u, err)
		}
	}
	return nil
}

func (s *socialNet) NewWorker(env *Env, w int) (Worker, error) {
	sess, err := env.NewSession()
	if err != nil {
		return nil, err
	}
	ws := workload.DeriveSeed(env.Seed, uint64(w))
	front := s.dep.Frontends[env.Endpoint.pick(w, len(s.dep.Frontends), ws)]
	return &snWorker{
		cl:    liverpc.NewSocialNetClient(sess, front, env.RPC),
		rng:   rand.New(rand.NewPCG(ws, ws^0x9e3779b97f4a7c15)),
		users: workerKeys(env, w, uint64(s.users), env.Seed),
		mix:   env.Mix,
		media: make([]byte, env.MediaSize),
	}, nil
}

func (s *socialNet) Counters() map[string]float64 { return nil }

func (s *socialNet) Close() error {
	if s.dep != nil {
		s.dep.Close()
	}
	return nil
}

type snWorker struct {
	cl    *liverpc.SocialNetClient
	rng   *rand.Rand
	users workload.KeyGen
	mix   SocialMix
	media []byte
}

func (w *snWorker) Do() (string, int64, error) {
	const page = 4
	p := w.rng.IntN(100)
	switch {
	case p < w.mix.Compose:
		// Hot authors compose most — same skew as the read side.
		u := w.users.Next()
		apps.FillPayload(w.media, w.rng.Uint64())
		_, err := w.cl.ComposeAs(u, w.media)
		return "compose", int64(len(w.media)), err
	case p < w.mix.Compose+w.mix.ReadHome:
		posts, err := w.cl.ReadHome(w.rng.Uint64(), page)
		return "read-home", payloadBytes(posts), err
	default:
		u := w.users.Next()
		posts, err := w.cl.ReadUser(u, w.rng.Uint64(), page)
		return "read-user", payloadBytes(posts), err
	}
}

func (w *snWorker) Close() error { return w.cl.Close() }

func payloadBytes(bufs [][]byte) int64 {
	var n int64
	for _, b := range bufs {
		n += int64(len(b))
	}
	return n
}
