package dmwire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/dm"
	"repro/internal/rpc"
)

func TestStatusRoundTrip(t *testing.T) {
	for _, err := range []error{dm.ErrOutOfMemory, dm.ErrBadAddress, dm.ErrBadRef, dm.ErrOutOfRange} {
		status := StatusOf(err)
		back := ErrOf(status, err.Error())
		if !errors.Is(back, err) {
			t.Errorf("round trip lost %v (status %d, got %v)", err, status, back)
		}
	}
	if StatusOf(nil) != StatusOK {
		t.Error("nil error should map to StatusOK")
	}
	if ErrOf(StatusOK, "") != nil {
		t.Error("StatusOK should map to nil")
	}
	// Unknown errors survive as AppError with the message.
	odd := errors.New("weird")
	back := ErrOf(StatusOf(odd), odd.Error())
	var ae *rpc.AppError
	if !errors.As(back, &ae) || ae.Msg != "weird" {
		t.Errorf("unknown error mapped to %v", back)
	}
}

func TestBodyCodecsRoundTrip(t *testing.T) {
	{
		r, err := UnmarshalRegisterResp(RegisterResp{PID: 7, LeaseMillis: 15000}.Marshal())
		if err != nil || r.PID != 7 || r.LeaseMillis != 15000 {
			t.Errorf("RegisterResp: %+v %v", r, err)
		}
	}
	{
		r, err := UnmarshalHeartbeatReq(HeartbeatReq{PID: 11}.Marshal())
		if err != nil || r.PID != 11 {
			t.Errorf("HeartbeatReq: %+v %v", r, err)
		}
	}
	{
		r, err := UnmarshalHeartbeatResp(HeartbeatResp{LeaseMillis: 250}.Marshal())
		if err != nil || r.LeaseMillis != 250 {
			t.Errorf("HeartbeatResp: %+v %v", r, err)
		}
	}
	{
		tok, err := UnmarshalToken(Token{CID: 0xDEAD, Seq: 42}.Marshal())
		if err != nil || tok.CID != 0xDEAD || tok.Seq != 42 {
			t.Errorf("Token: %+v %v", tok, err)
		}
		if tok.IsZero() || !(Token{}).IsZero() {
			t.Error("IsZero misclassifies tokens")
		}
		if len(tok.Marshal()) != TokenSize {
			t.Errorf("Token width %d, want %d", len(tok.Marshal()), TokenSize)
		}
	}
	{
		r, err := UnmarshalAllocReq(AllocReq{PID: 1, Size: 1 << 40}.Marshal())
		if err != nil || r.PID != 1 || r.Size != 1<<40 {
			t.Errorf("AllocReq: %+v %v", r, err)
		}
	}
	{
		r, err := UnmarshalAllocResp(AllocResp{Addr: 0xABC}.Marshal())
		if err != nil || r.Addr != 0xABC {
			t.Errorf("AllocResp: %+v %v", r, err)
		}
	}
	{
		r, err := UnmarshalFreeReq(FreeReq{PID: 2, Addr: 0x1000}.Marshal())
		if err != nil || r.PID != 2 || r.Addr != 0x1000 {
			t.Errorf("FreeReq: %+v %v", r, err)
		}
	}
	{
		r, err := UnmarshalCreateRefReq(CreateRefReq{PID: 3, Addr: 0x2000, Size: 555}.Marshal())
		if err != nil || r.PID != 3 || r.Addr != 0x2000 || r.Size != 555 {
			t.Errorf("CreateRefReq: %+v %v", r, err)
		}
	}
	{
		r, err := UnmarshalRefKeyResp(RefKeyResp{Key: 99}.Marshal())
		if err != nil || r.Key != 99 {
			t.Errorf("RefKeyResp: %+v %v", r, err)
		}
	}
	{
		r, err := UnmarshalMapRefReq(MapRefReq{PID: 4, Key: 88}.Marshal())
		if err != nil || r.PID != 4 || r.Key != 88 {
			t.Errorf("MapRefReq: %+v %v", r, err)
		}
	}
	{
		r, err := UnmarshalMapRefResp(MapRefResp{Addr: 0x3000, Size: 777}.Marshal())
		if err != nil || r.Addr != 0x3000 || r.Size != 777 {
			t.Errorf("MapRefResp: %+v %v", r, err)
		}
	}
	{
		r, err := UnmarshalFreeRefReq(FreeRefReq{Key: 66}.Marshal())
		if err != nil || r.Key != 66 {
			t.Errorf("FreeRefReq: %+v %v", r, err)
		}
	}
	{
		r, err := UnmarshalReadReq(ReadReq{PID: 5, Addr: 0x4000, Size: 4096}.Marshal())
		if err != nil || r.PID != 5 || r.Addr != 0x4000 || r.Size != 4096 {
			t.Errorf("ReadReq: %+v %v", r, err)
		}
	}
	{
		r, err := UnmarshalWriteReq(WriteReq{PID: 6, Addr: 0x5000, Data: []byte("abc")}.Marshal())
		if err != nil || r.PID != 6 || r.Addr != 0x5000 || !bytes.Equal(r.Data, []byte("abc")) {
			t.Errorf("WriteReq: %+v %v", r, err)
		}
	}
	{
		r, err := UnmarshalStageReq(StageReq{PID: 7, Data: []byte("xyz")}.Marshal())
		if err != nil || r.PID != 7 || !bytes.Equal(r.Data, []byte("xyz")) {
			t.Errorf("StageReq: %+v %v", r, err)
		}
	}
	{
		r, err := UnmarshalReadRefReq(ReadRefReq{Key: 9, Off: 100, Size: 200}.Marshal())
		if err != nil || r.Key != 9 || r.Off != 100 || r.Size != 200 {
			t.Errorf("ReadRefReq: %+v %v", r, err)
		}
	}
}

func TestShortBodiesRejected(t *testing.T) {
	short := []byte{1, 2}
	if _, err := UnmarshalAllocReq(short); err == nil {
		t.Error("short AllocReq accepted")
	}
	if _, err := UnmarshalCreateRefReq(short); err == nil {
		t.Error("short CreateRefReq accepted")
	}
	if _, err := UnmarshalMapRefResp(short); err == nil {
		t.Error("short MapRefResp accepted")
	}
	if _, err := UnmarshalReadRefReq(short); err == nil {
		t.Error("short ReadRefReq accepted")
	}
	if _, err := UnmarshalRegisterResp(nil); err == nil {
		t.Error("empty RegisterResp accepted")
	}
}

func TestWriteReqProperty(t *testing.T) {
	prop := func(pid uint32, addr uint64, data []byte) bool {
		r, err := UnmarshalWriteReq(WriteReq{PID: pid, Addr: dm.RemoteAddr(addr), Data: data}.Marshal())
		return err == nil && r.PID == pid && uint64(r.Addr) == addr && bytes.Equal(r.Data, data)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMethodsAreDistinct(t *testing.T) {
	seen := map[rpc.Method]bool{}
	for _, m := range []rpc.Method{MRegister, MAlloc, MFree, MCreateRef, MMapRef,
		MFreeRef, MRead, MWrite, MStage, MReadRef, MHeartbeat} {
		if seen[m] {
			t.Fatalf("duplicate method id %d", m)
		}
		seen[m] = true
	}
	if len(seen) != 11 {
		t.Fatalf("expected 11 methods, got %d", len(seen))
	}
}

// TestMarshalHdrMatchesMarshal pins the zero-copy framing contract: for
// the two payload-carrying requests, Marshal() must equal MarshalHdr()
// followed by Data, so a transport writing (hdr, data) as separate
// vectored segments produces the identical wire body.
func TestMarshalHdrMatchesMarshal(t *testing.T) {
	wprop := func(pid uint32, addr uint64, data []byte) bool {
		r := WriteReq{PID: pid, Addr: dm.RemoteAddr(addr), Data: data}
		return bytes.Equal(r.Marshal(), append(r.MarshalHdr(), data...))
	}
	if err := quick.Check(wprop, nil); err != nil {
		t.Fatalf("WriteReq: %v", err)
	}
	sprop := func(pid uint32, data []byte) bool {
		r := StageReq{PID: pid, Data: data}
		return bytes.Equal(r.Marshal(), append(r.MarshalHdr(), data...))
	}
	if err := quick.Check(sprop, nil); err != nil {
		t.Fatalf("StageReq: %v", err)
	}
}
