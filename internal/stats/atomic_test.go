package stats

import (
	"sync"
	"testing"
)

// TestAtomicHistogramMatchesHistogram: concurrent lock-free recording
// must land every sample in the same bucket the locked Histogram uses, so
// a Snapshot is indistinguishable from sequentially recording the same
// values.
func TestAtomicHistogramMatchesHistogram(t *testing.T) {
	values := []int64{0, 1, 5, 17, 100, 999, 12_345, 1_000_000, 1 << 40}
	var ah AtomicHistogram
	ref := &Histogram{}
	for _, v := range values {
		ah.Record(v)
		ref.Record(v)
	}
	snap := ah.Snapshot()
	if snap.total != ref.total || snap.sum != ref.sum || snap.min != ref.min || snap.max != ref.max {
		t.Fatalf("snapshot totals = %+v, want %+v", snap, ref)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if got, want := snap.Quantile(q), ref.Quantile(q); got != want {
			t.Fatalf("q%.3f = %d, want %d", q, got, want)
		}
	}
}

// TestAtomicHistogramConcurrent hammers Record from many goroutines and
// checks nothing is lost: the count, sum, and extrema are exact (they are
// the atomically-maintained parts), and the percentile summary is sane.
func TestAtomicHistogramConcurrent(t *testing.T) {
	const workers = 8
	const perWorker = 10_000
	var h AtomicHistogram
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Record(int64(w*perWorker + i))
			}
		}(w)
	}
	wg.Wait()

	const total = workers * perWorker
	if got := h.Count(); got != total {
		t.Fatalf("count = %d, want %d", got, total)
	}
	snap := h.Snapshot()
	if want := int64(total) * (total - 1) / 2; snap.sum != want {
		t.Fatalf("sum = %d, want %d", snap.sum, want)
	}
	if snap.min != 0 || snap.max != total-1 {
		t.Fatalf("extrema = [%d, %d], want [0, %d]", snap.min, snap.max, total-1)
	}
	s := h.Summarize()
	if s.P50 <= 0 || s.P50 >= s.P99 || s.P99 > s.P999 || s.P999 > s.Max {
		t.Fatalf("percentiles not ordered: %+v", s)
	}
	// The log-linear buckets guarantee a relative error bound; p50 of a
	// uniform 0..79999 distribution must land near 40000.
	if s.P50 < total/4 || s.P50 > total {
		t.Fatalf("p50 = %d, wildly off for a uniform 0..%d load", s.P50, total-1)
	}
}

// TestAtomicHistogramMerge: merging per-worker histograms must be
// indistinguishable from one histogram that recorded every sample — the
// property the load harness's report aggregation leans on.
func TestAtomicHistogramMerge(t *testing.T) {
	const workers = 4
	const perWorker = 5_000
	parts := make([]*AtomicHistogram, workers)
	var combined AtomicHistogram
	for w := range parts {
		parts[w] = &AtomicHistogram{}
		for i := 0; i < perWorker; i++ {
			// Disjoint, worker-skewed ranges so each part has distinct
			// extrema and quantiles.
			v := int64((w + 1) * (i + 1))
			parts[w].Record(v)
			combined.Record(v)
		}
	}
	var merged AtomicHistogram
	for _, p := range parts {
		merged.Merge(p)
	}
	got, want := merged.Snapshot(), combined.Snapshot()
	if got.total != want.total || got.sum != want.sum || got.min != want.min || got.max != want.max {
		t.Fatalf("merged totals = (n=%d sum=%d min=%d max=%d), want (n=%d sum=%d min=%d max=%d)",
			got.total, got.sum, got.min, got.max, want.total, want.sum, want.min, want.max)
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		if g, w := got.Quantile(q), want.Quantile(q); g != w {
			t.Fatalf("merged q%.3f = %d, want %d", q, g, w)
		}
	}

	// Merging an empty histogram is a no-op, and merging into an empty
	// one reproduces the source.
	var empty, fresh AtomicHistogram
	merged.Merge(&empty)
	if s := merged.Snapshot(); s.total != want.total {
		t.Fatalf("merging an empty histogram changed count to %d", s.total)
	}
	fresh.Merge(parts[0])
	if g, w := fresh.Snapshot(), parts[0].Snapshot(); g.total != w.total || g.min != w.min || g.max != w.max {
		t.Fatalf("merge into empty = (n=%d min=%d max=%d), want (n=%d min=%d max=%d)",
			g.total, g.min, g.max, w.total, w.min, w.max)
	}
}

// TestAtomicHistogramEmpty: an unused histogram summarizes to zeros
// rather than garbage (mn/mx hold value+1 internally; 0 means unset).
func TestAtomicHistogramEmpty(t *testing.T) {
	var h AtomicHistogram
	s := h.Summarize()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.P99 != 0 {
		t.Fatalf("empty summary = %+v, want zeros", s)
	}
}
