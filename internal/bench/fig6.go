package bench

import (
	"fmt"
	"io"

	"repro/internal/msvc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig6Row is one (mode, request size) measurement of the application-layer
// load balancer experiment (§VI-B, Fig 6): 3 senders → LB → 3 receivers.
type Fig6Row struct {
	Mode       msvc.Mode
	ReqSize    int
	Throughput float64 // requests/s through the LB
	// LBMemBytesPerReq is the LB server's memory-bus traffic per request —
	// the "memory bandwidth occupation" of Fig 6b.
	LBMemBytesPerReq int64
	// LBMemGBps is the LB's memory-bus bandwidth averaged over the window.
	LBMemGBps float64
}

// Fig6Result holds the Fig 6 sweep.
type Fig6Result struct {
	Rows []Fig6Row
}

// Fig6 reproduces Fig 6: LB throughput and LB memory bandwidth for request
// sizes 4–32 KiB under eRPC, DmRPC-net and DmRPC-CXL.
func Fig6(scale Scale) Fig6Result {
	sizes := []int{4096, 32768}
	if scale == Full {
		sizes = []int{4096, 8192, 16384, 32768}
	}
	warm, meas := scale.windows()
	var res Fig6Result
	for _, mode := range []msvc.Mode{msvc.ModeERPC, msvc.ModeDmNet, msvc.ModeDmCXL} {
		for _, size := range sizes {
			pl := msvc.NewPlatform(msvc.DefaultConfig(mode))
			app := msvc.NewLBApp(pl, 3, 3)
			pl.Start()
			payload := make([]byte, size)
			memBefore := app.LB().Host.MemBytesMoved()
			next := 0
			r := workload.RunClosed(pl.Eng, workload.ClosedConfig{
				Clients: 12, Warmup: warm, Measure: meas,
			}, func(p *sim.Proc) error {
				idx := next
				next++
				return app.Do(p, idx, payload)
			})
			memAfter := app.LB().Host.MemBytesMoved()
			row := Fig6Row{Mode: mode, ReqSize: size, Throughput: r.Throughput()}
			// Window accounting is approximate (warmup traffic included in
			// the delta is amortized by the longer measure window).
			total := float64(memAfter - memBefore)
			if r.Ops > 0 {
				row.LBMemBytesPerReq = int64(total / float64(r.Ops))
			}
			row.LBMemGBps = total / float64(warm+meas)
			pl.Shutdown()
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// Print writes the Fig 6 table.
func (r Fig6Result) Print(w io.Writer) {
	header(w, "fig6", "application-layer load balancer (3 senders -> LB -> 3 receivers)")
	t := stats.NewTable("system", "req size", "LB throughput", "LB mem/req", "LB mem GB/s")
	for _, row := range r.Rows {
		t.AddRow(row.Mode, stats.Bytes(int64(row.ReqSize)), stats.Rate(row.Throughput),
			stats.Bytes(row.LBMemBytesPerReq), fmt.Sprintf("%.2f", row.LBMemGBps))
	}
	io.WriteString(w, t.String())
}

// Get returns the row for (mode, size).
func (r Fig6Result) Get(mode msvc.Mode, size int) (Fig6Row, bool) {
	for _, row := range r.Rows {
		if row.Mode == mode && row.ReqSize == size {
			return row, true
		}
	}
	return Fig6Row{}, false
}
