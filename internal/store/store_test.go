package store

import (
	"bytes"
	"testing"

	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/simnet"
)

type rig struct {
	eng    *sim.Engine
	net    *simnet.Network
	n1, n2 *Node
	c1, c2 *Client
}

func newRig(cfg Config) *rig {
	eng := sim.NewEngine(1)
	net := simnet.New(eng, simnet.DefaultConfig())
	n1 := NewNode(net.AddHost("h1"), 1, cfg)
	n2 := NewNode(net.AddHost("h2"), 1, cfg)
	n1.Start()
	n2.Start()
	return &rig{eng: eng, net: net, n1: n1, n2: n2, c1: NewClient(n1), c2: NewClient(n2)}
}

func (r *rig) run(t *testing.T, fn func(p *sim.Proc) error) {
	t.Helper()
	var err error
	r.eng.Spawn("test", func(p *sim.Proc) { err = fn(p) })
	r.eng.Run()
	r.eng.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutGetLocal(t *testing.T) {
	r := newRig(RayConfig())
	r.run(t, func(p *sim.Proc) error {
		data := []byte("plasma object")
		ref, err := r.c1.Put(p, data)
		if err != nil {
			return err
		}
		if ref.Size != int64(len(data)) {
			t.Errorf("ref.Size = %d", ref.Size)
		}
		got, err := r.c1.Get(p, ref)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, data) {
			t.Errorf("got %q", got)
		}
		return nil
	})
}

func TestGetReturnsPrivateCopy(t *testing.T) {
	r := newRig(RayConfig())
	r.run(t, func(p *sim.Proc) error {
		ref, err := r.c1.Put(p, []byte("immutable"))
		if err != nil {
			return err
		}
		got, err := r.c1.Get(p, ref)
		if err != nil {
			return err
		}
		copy(got, "MUTATED!!")
		again, err := r.c1.Get(p, ref)
		if err != nil {
			return err
		}
		if string(again) != "immutable" {
			t.Errorf("store object mutated through heap copy: %q", again)
		}
		return nil
	})
}

func TestRemoteGetFetchesWholeObject(t *testing.T) {
	r := newRig(RayConfig())
	r.run(t, func(p *sim.Proc) error {
		data := bytes.Repeat([]byte("y"), 32768)
		ref, err := r.c1.Put(p, data)
		if err != nil {
			return err
		}
		got, err := r.c2.Get(p, ref)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, data) {
			t.Error("remote get corrupted")
		}
		if r.n1.FetchesServed() != 1 {
			t.Errorf("FetchesServed = %d", r.n1.FetchesServed())
		}
		// The whole 32 KiB crossed the network even though the consumer
		// might have wanted one byte — the §III-A inefficiency.
		if r.n1.BytesServed() != 32768 {
			t.Errorf("BytesServed = %d", r.n1.BytesServed())
		}
		return nil
	})
}

func TestRemoteGetCachesReplica(t *testing.T) {
	r := newRig(RayConfig())
	r.run(t, func(p *sim.Proc) error {
		ref, err := r.c1.Put(p, []byte("cache me"))
		if err != nil {
			return err
		}
		if _, err := r.c2.Get(p, ref); err != nil {
			return err
		}
		if _, err := r.c2.Get(p, ref); err != nil {
			return err
		}
		if r.n1.FetchesServed() != 1 {
			t.Errorf("second get refetched: FetchesServed = %d", r.n1.FetchesServed())
		}
		return nil
	})
}

func TestNoIDCollisionAcrossOwners(t *testing.T) {
	r := newRig(RayConfig())
	r.run(t, func(p *sim.Proc) error {
		refA, err := r.c1.Put(p, []byte("from-h1"))
		if err != nil {
			return err
		}
		refB, err := r.c2.Put(p, []byte("from-h2"))
		if err != nil {
			return err
		}
		// h2 caches h1's object, then reads its own: both must survive.
		if _, err := r.c2.Get(p, refA); err != nil {
			return err
		}
		got, err := r.c2.Get(p, refB)
		if err != nil {
			return err
		}
		if string(got) != "from-h2" {
			t.Errorf("replica clobbered local primary: %q", got)
		}
		return nil
	})
}

func TestGetMissingObject(t *testing.T) {
	r := newRig(RayConfig())
	r.run(t, func(p *sim.Proc) error {
		// Local miss on the owner.
		if _, err := r.c1.Get(p, ObjectRef{Owner: r.n1.Addr(), ID: 999, Size: 1}); err != ErrNoObject {
			t.Errorf("local miss: %v", err)
		}
		// Remote miss.
		if _, err := r.c2.Get(p, ObjectRef{Owner: r.n1.Addr(), ID: 999, Size: 1}); err != ErrNoObject {
			t.Errorf("remote miss: %v", err)
		}
		return nil
	})
}

func TestDelete(t *testing.T) {
	r := newRig(RayConfig())
	r.run(t, func(p *sim.Proc) error {
		ref, err := r.c1.Put(p, []byte("temp"))
		if err != nil {
			return err
		}
		r.c1.Delete(ref)
		if _, err := r.c1.Get(p, ref); err != ErrNoObject {
			t.Errorf("deleted object still present: %v", err)
		}
		return nil
	})
}

func TestSparkSerializationCostsMore(t *testing.T) {
	timeFlow := func(cfg Config) sim.Time {
		r := newRig(cfg)
		var dur sim.Time
		r.run(t, func(p *sim.Proc) error {
			data := make([]byte, 256*1024)
			start := p.Now()
			ref, err := r.c1.Put(p, data)
			if err != nil {
				return err
			}
			if _, err := r.c2.Get(p, ref); err != nil {
				return err
			}
			dur = p.Now() - start
			return nil
		})
		return dur
	}
	ray := timeFlow(RayConfig())
	spark := timeFlow(SparkConfig())
	if spark <= ray {
		t.Fatalf("spark flow %dns not slower than ray %dns", spark, ray)
	}
}

func TestObjectRefWireRoundTrip(t *testing.T) {
	ref := ObjectRef{Owner: simnet.Addr{Host: 3, Port: 7}, ID: 1<<40 | 5, Size: 777}
	e := rpc.NewEnc(32)
	ref.Encode(e)
	got := DecodeObjectRef(rpc.NewDec(e.Bytes()))
	if got != ref {
		t.Fatalf("round trip %+v != %+v", got, ref)
	}
}

func TestRayFlowLatencyIsTensOfMicroseconds(t *testing.T) {
	// Sanity-pin the cost model: a single-threaded put+remote-get of 32 KiB
	// should land in the ~100µs+ range that makes Fig 8's 34× gap over a
	// ~5µs DmRPC flow plausible.
	r := newRig(RayConfig())
	var dur sim.Time
	r.run(t, func(p *sim.Proc) error {
		data := make([]byte, 32768)
		start := p.Now()
		ref, err := r.c1.Put(p, data)
		if err != nil {
			return err
		}
		if _, err := r.c2.Get(p, ref); err != nil {
			return err
		}
		dur = p.Now() - start
		return nil
	})
	if dur < 50*sim.Microsecond || dur > 1*sim.Millisecond {
		t.Fatalf("ray 32KiB flow = %dns, want 50µs-1ms", dur)
	}
}
