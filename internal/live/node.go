package live

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dmwire"
	"repro/internal/rpc"
	"repro/internal/stats"
)

// Handler processes one request body and returns the response body. It
// mirrors rpc.Handler for the live world (no simulation context).
type Handler func(from net.Addr, body []byte) ([]byte, error)

// handlerEntry pairs a handler with its dispatch mode.
type handlerEntry struct {
	h Handler
	// fast handlers run to completion on the connection's read loop
	// (eRPC-style): no goroutine spawn, and their response body — if
	// pool-sized — is recycled right after the response is written. They
	// must be short, must not call back into the network, and must not
	// return a body aliasing the request.
	fast bool
}

// NodeConfig bounds a live endpoint's resource use and failure behaviour
// (DESIGN.md §D8). The zero value of any field means "use the default".
type NodeConfig struct {
	// MaxFrameSize caps one frame's payload; frames claiming more are
	// rejected before any allocation, so a corrupt or hostile length
	// prefix cannot balloon memory. Default 16 MiB.
	MaxFrameSize uint32
	// MaxSlowPerConn caps concurrent goroutine-per-request (slow)
	// handlers on one connection; past the cap the connection's read
	// loop blocks, backpressuring the peer instead of exhausting server
	// memory. Default 64.
	MaxSlowPerConn int
	// WriteTimeout bounds one response write, so a peer that stops
	// reading cannot wedge a serving loop forever. Default 30s.
	WriteTimeout time.Duration
	// CallTimeout is the default overall deadline for one Call,
	// including every retry. Default 15s. Negative disables.
	CallTimeout time.Duration
	// AttemptTimeout bounds a single request/response attempt inside a
	// Call, so retries can fire before the overall deadline. Default 3s.
	AttemptTimeout time.Duration
	// DialTimeout bounds connection establishment. Default 3s.
	DialTimeout time.Duration
	// MaxRetries is how many times a failed attempt is retried (beyond
	// the first attempt). Only idempotent or dedup-tokened calls retry.
	// Default 3. Negative disables retries.
	MaxRetries int
	// RetryBackoff is the first retry's backoff; it doubles per attempt
	// (with jitter) up to RetryBackoffMax. Defaults 5ms / 500ms.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// DedupRetention is how long a completed tokened mutation's response
	// stays replayable. Default 60s.
	DedupRetention time.Duration
	// Dialer replaces net.DialTimeout, letting tests route connections
	// through fault injectors (internal/faultnet). Nil uses TCP.
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
	// CoalesceLimit is the frame-size cutoff (total bytes, header
	// included) at or below which frames are copied into the
	// per-connection coalescing queue and group-committed in one vectored
	// write (DESIGN.md §D10); larger frames take the synchronous zero-copy
	// path. 0 uses DefaultCoalesceLimit; negative disables coalescing
	// entirely (every frame writes directly — the per-frame-syscall
	// baseline the batching benchmarks compare against).
	CoalesceLimit int
	// CoalesceBatchBytes caps how many queued bytes one coalesced flush
	// may drain into a single vectored write; the submission queue admits
	// up to four times this before enqueuers block (backpressure).
	// 0 uses DefaultCoalesceBatchBytes.
	CoalesceBatchBytes int
	// CoalesceSpin caps the adaptive spin-then-flush window: when the
	// observed submission rate is high (EWMA of the inter-enqueue gap at
	// or below this value), the flusher lingers up to min(8×gap, this)
	// before committing, letting a burst coalesce into one vectored
	// write. Idle and low-rate connections never spin, preserving the
	// inline fast path. 0 uses DefaultCoalesceSpin; negative disables the
	// spin (flush-immediately, the pre-adaptive behaviour).
	CoalesceSpin time.Duration
	// AsyncCredits is the client-side default for the per-peer credit
	// window bounding in-flight asynchronous calls; servers override it
	// per session via register/heartbeat advertisements. Async
	// submissions past the window block (or shed with ErrCredits at
	// their attempt deadline). 0 uses DefaultSessionCredits; negative
	// disables credit gating entirely.
	AsyncCredits int
}

// DefaultNodeConfig returns the production defaults described per field.
func DefaultNodeConfig() NodeConfig {
	return NodeConfig{
		MaxFrameSize:       DefaultMaxFrameSize,
		MaxSlowPerConn:     64,
		WriteTimeout:       30 * time.Second,
		CallTimeout:        15 * time.Second,
		AttemptTimeout:     3 * time.Second,
		DialTimeout:        3 * time.Second,
		MaxRetries:         3,
		RetryBackoff:       5 * time.Millisecond,
		RetryBackoffMax:    500 * time.Millisecond,
		DedupRetention:     60 * time.Second,
		CoalesceLimit:      DefaultCoalesceLimit,
		CoalesceBatchBytes: DefaultCoalesceBatchBytes,
		CoalesceSpin:       DefaultCoalesceSpin,
		AsyncCredits:       DefaultSessionCredits,
	}
}

// withDefaults fills zero fields with the defaults.
func (c NodeConfig) withDefaults() NodeConfig {
	d := DefaultNodeConfig()
	if c.MaxFrameSize == 0 {
		c.MaxFrameSize = d.MaxFrameSize
	}
	if c.MaxSlowPerConn == 0 {
		c.MaxSlowPerConn = d.MaxSlowPerConn
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = d.WriteTimeout
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = d.CallTimeout
	}
	if c.AttemptTimeout == 0 {
		c.AttemptTimeout = d.AttemptTimeout
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = d.DialTimeout
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = d.MaxRetries
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = d.RetryBackoff
	}
	if c.RetryBackoffMax == 0 {
		c.RetryBackoffMax = d.RetryBackoffMax
	}
	if c.DedupRetention == 0 {
		c.DedupRetention = d.DedupRetention
	}
	if c.CoalesceLimit == 0 {
		c.CoalesceLimit = d.CoalesceLimit
	}
	if c.CoalesceBatchBytes == 0 {
		c.CoalesceBatchBytes = d.CoalesceBatchBytes
	}
	if c.CoalesceSpin == 0 {
		c.CoalesceSpin = d.CoalesceSpin
	}
	if c.AsyncCredits == 0 {
		c.AsyncCredits = d.AsyncCredits
	}
	return c
}

// batchConfig derives one connection's coalescing-writer sizing from the
// node configuration.
func (c NodeConfig) batchConfig() batchWriterConfig {
	return batchWriterConfig{
		limit:        c.CoalesceLimit,
		batchBytes:   c.CoalesceBatchBytes,
		queueBytes:   4 * c.CoalesceBatchBytes,
		writeTimeout: c.WriteTimeout,
		spin:         c.CoalesceSpin,
	}
}

// Node is a live RPC endpoint: it serves registered methods over TCP and
// issues calls to other nodes, multiplexing concurrent requests per
// connection — the real-network counterpart of the simulator's rpc.Node,
// speaking the same frame format the DM protocol uses.
type Node struct {
	cfg      NodeConfig
	mu       sync.Mutex
	handlers atomic.Pointer[map[rpc.Method]handlerEntry]
	peers    map[string]*conn      // lazily dialed, keyed by address
	inbound  map[net.Conn]struct{} // accepted connections, for Close
	ln       net.Listener
	closed   chan struct{}
	once     sync.Once
	conns    sync.WaitGroup
	dedup    dedupTable
	wstats   writeStats
	ops      opStats
	credits  map[string]*creditGate // per-peer async credit windows
	lat      stats.AtomicHistogram  // per-call latency, ns, sync + async
}

// WriteStats snapshots the node's wire-write counters, aggregated across
// every connection (outbound and serving) it has owned. The group-commit
// derivatives (CoalescedFrames, GroupCommitFactor) are computed here so
// readers get them consistently instead of re-deriving them.
func (n *Node) WriteStats() WriteStats {
	ws := WriteStats{
		Frames:        n.wstats.frames.Load(),
		Batches:       n.wstats.batches.Load(),
		InlineFrames:  n.wstats.inline.Load(),
		DirectFrames:  n.wstats.direct.Load(),
		Bytes:         n.wstats.bytes.Load(),
		DroppedFrames: n.wstats.dropped.Load(),
		SpinBatches:   n.wstats.spins.Load(),
		QueueFrames:   n.wstats.qframes.Load(),
		QueueBytes:    n.wstats.qbytes.Load(),
	}
	ws.CoalescedFrames = ws.Frames - ws.InlineFrames - ws.DirectFrames
	if ws.Batches > 0 {
		ws.GroupCommitFactor = float64(ws.CoalescedFrames) / float64(ws.Batches)
	}
	return ws
}

// Latency summarizes the node's per-call latency distribution
// (submission to completion, retries included; sync and async calls).
func (n *Node) Latency() stats.Summary { return n.lat.Summarize() }

// LatencyHistogram snapshots the node's per-call latency histogram for
// merging or custom quantiles.
func (n *Node) LatencyHistogram() *stats.Histogram { return n.lat.Snapshot() }

// NewNode returns an empty node with default configuration; register
// handlers, then Serve and/or Call.
func NewNode() *Node { return NewNodeWith(NodeConfig{}) }

// NewNodeWith returns an empty node with cfg (zero fields defaulted).
func NewNodeWith(cfg NodeConfig) *Node {
	n := &Node{
		cfg:     cfg.withDefaults(),
		peers:   make(map[string]*conn),
		inbound: make(map[net.Conn]struct{}),
		closed:  make(chan struct{}),
		credits: make(map[string]*creditGate),
	}
	n.dedup.retention = n.cfg.DedupRetention
	empty := make(map[rpc.Method]handlerEntry)
	n.handlers.Store(&empty)
	return n
}

// Handle registers h for method m; it runs on its own goroutine per
// request. Duplicate registration panics.
func (n *Node) Handle(m rpc.Method, h Handler) { n.register(m, handlerEntry{h: h}) }

// HandleFast registers h for method m as a run-to-completion handler: it
// executes inline on the connection's read loop with no per-request
// goroutine. Fast handlers must be short, must not issue nested calls,
// and must not return a response aliasing the request body.
func (n *Node) HandleFast(m rpc.Method, h Handler) { n.register(m, handlerEntry{h: h, fast: true}) }

// register installs a handler via copy-on-write so dispatch is lock-free.
func (n *Node) register(m rpc.Method, e handlerEntry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	old := *n.handlers.Load()
	if _, dup := old[m]; dup {
		panic(fmt.Sprintf("live: duplicate handler for method %#x", uint16(m)))
	}
	next := make(map[rpc.Method]handlerEntry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[m] = e
	n.handlers.Store(&next)
}

// lookup finds the handler for m without locking.
func (n *Node) lookup(m rpc.Method) (handlerEntry, bool) {
	e, ok := (*n.handlers.Load())[m]
	return e, ok
}

// Serve accepts connections on ln until Close; it returns nil after Close.
func (n *Node) Serve(ln net.Listener) error {
	n.mu.Lock()
	select {
	case <-n.closed:
		// Close already ran (it cannot see this listener); refuse to serve.
		n.mu.Unlock()
		ln.Close()
		return nil
	default:
	}
	n.ln = ln
	n.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return nil
			default:
				return err
			}
		}
		n.mu.Lock()
		n.inbound[c] = struct{}{}
		n.mu.Unlock()
		n.conns.Add(1)
		go func() {
			defer n.conns.Done()
			defer func() {
				n.mu.Lock()
				delete(n.inbound, c)
				n.mu.Unlock()
			}()
			n.serveConn(c)
		}()
	}
}

// Close stops serving, closes peer connections, and waits for in-flight
// request goroutines spawned by the accept loop. It is Shutdown with no
// drain grace: inbound connections are cut immediately.
func (n *Node) Close() error { return n.Shutdown(0) }

// Shutdown stops accepting, closes peer connections, then lets inbound
// connections drain naturally for up to grace before cutting the
// stragglers; it always waits for every serving goroutine to finish.
func (n *Node) Shutdown(grace time.Duration) error {
	var err error
	n.once.Do(func() {
		n.mu.Lock()
		close(n.closed)
		if n.ln != nil {
			err = n.ln.Close()
		}
		for _, c := range n.peers {
			c.c.Close()
		}
		n.mu.Unlock()
		if grace > 0 {
			drained := make(chan struct{})
			go func() {
				n.conns.Wait()
				close(drained)
			}()
			t := time.NewTimer(grace)
			select {
			case <-drained:
			case <-t.C:
			}
			t.Stop()
		}
		// Cut whatever is left, or their serve goroutines would block in
		// readFrame while clients linger.
		n.mu.Lock()
		for c := range n.inbound {
			c.Close()
		}
		n.mu.Unlock()
		n.conns.Wait()
	})
	return err
}

// serveConn handles one inbound connection. Fast handlers run to
// completion on this goroutine; slow handlers get one goroutine per
// request — at most MaxSlowPerConn at a time. All responses go out
// through the connection's coalescing writer (batchwriter.go): small
// ones are copied into the submission queue and group-committed, large
// ones take the direct zero-copy path.
func (n *Node) serveConn(c net.Conn) {
	defer c.Close()
	// On a write failure the writer closes the socket so this read loop
	// unblocks; teardown then drains the writer (close flushes whatever
	// was accepted before the socket dies — LIFO defers: close runs
	// before c.Close).
	bw := newBatchWriter(c, n.cfg.batchConfig(), &n.wstats, func(error) { c.Close() })
	defer bw.close()
	br := bufio.NewReaderSize(c, 64<<10)
	var sem chan struct{}
	if n.cfg.MaxSlowPerConn > 0 {
		sem = make(chan struct{}, n.cfg.MaxSlowPerConn)
	}
	var hdr [frameHeaderSize]byte
	for {
		kind, reqID, payload, err := readFrameBuf(br, hdr[:], n.cfg.MaxFrameSize)
		if err != nil {
			return
		}
		body := payload
		var tok dmwire.Token
		switch kind {
		case kindRequest:
		case kindRequestTok:
			if len(body) < dmwire.TokenSize {
				putBuf(payload)
				return
			}
			tok, _ = dmwire.UnmarshalToken(body[:dmwire.TokenSize])
			body = body[dmwire.TokenSize:]
		default:
			putBuf(payload)
			return
		}
		if len(body) < 2 {
			putBuf(payload)
			return
		}
		m := rpc.Method(binary.BigEndian.Uint16(body))
		reqBody := body[2:]
		e, ok := n.lookup(m)
		if ok && e.fast {
			status, resp, cached := n.dedup.run(tok, func() (byte, []byte) {
				return runHandler(e.h, c.RemoteAddr(), reqBody)
			})
			// fast contract: resp never aliases payload, so the request
			// buffer recycles immediately; resp recycles unless the dedup
			// table retained it (writeResponse handles both paths). The
			// response may write inline only when no further request is
			// already buffered: with a pipeline behind this request, it
			// queues instead so reading overlaps the flusher's writes.
			werr := n.writeResponse(bw, reqID, status, resp, !cached, br.Buffered() == 0)
			putBuf(payload)
			if werr != nil {
				return
			}
			continue
		}
		if sem != nil {
			// Blocking here backpressures this connection's read loop —
			// the frame-level cap on slow-handler fan-out.
			sem <- struct{}{}
		}
		go func() {
			defer func() {
				if sem != nil {
					<-sem
				}
			}()
			var status byte
			var resp []byte
			if !ok {
				status, resp = dmwire.StatusErr, []byte(errNoSuchMethod.Error())
			} else {
				status, resp, _ = n.dedup.run(tok, func() (byte, []byte) {
					return runHandler(e.h, c.RemoteAddr(), reqBody)
				})
			}
			// writeResponse consumes resp synchronously (small: copied
			// into a queued frame; large: fully written) before returning,
			// so the request buffer — which resp may alias — recycles
			// safely after it. resp itself is handler-owned (or
			// dedup-cached) and is not recycled here.
			_ = n.writeResponse(bw, reqID, status, resp, false, false)
			putBuf(payload)
		}()
	}
}

// writeResponse ships one response frame through the connection's
// coalescing writer: frames at or below the coalesce cutoff are copied
// into a single pooled buffer (header + status + body) and enqueued for
// group commit; larger ones are written synchronously as a zero-copy
// vectored write. resp is consumed before return either way. own marks
// resp as pool-recyclable once consumed (fast-path responses the dedup
// table did not retain). idle marks a connection with nothing further
// buffered to read — only then may the response write inline from this
// goroutine instead of riding the queue.
func (n *Node) writeResponse(bw *batchWriter, reqID uint64, status byte, resp []byte, own, idle bool) error {
	total := frameHeaderSize + 1 + len(resp)
	if bw.coalesce(total) {
		frame := getBuf(total)
		binary.BigEndian.PutUint32(frame, uint32(1+len(resp)))
		frame[4] = kindResponse
		binary.BigEndian.PutUint64(frame[5:], reqID)
		frame[frameHeaderSize] = status
		copy(frame[frameHeaderSize+1:], resp)
		if own {
			putBuf(resp)
		}
		// Responses carry no per-frame deadline: the writer's write
		// timeout bounds the flush (same bound armWriteDeadline used to
		// provide per write).
		if idle {
			return bw.enqueueInline(frame, time.Time{})
		}
		return bw.enqueue(frame, time.Time{})
	}
	fh := getBuf(frameHeaderSize + 1)
	binary.BigEndian.PutUint32(fh, uint32(1+len(resp)))
	fh[4] = kindResponse
	binary.BigEndian.PutUint64(fh[5:], reqID)
	fh[frameHeaderSize] = status
	bufs := net.Buffers{fh}
	if len(resp) > 0 {
		bufs = append(bufs, resp)
	}
	err := bw.writeDirect(bufs, time.Time{})
	putBuf(fh[:cap(fh)])
	if own {
		putBuf(resp)
	}
	return err
}

// errNoSuchMethod is the catch-all for unknown methods.
var errNoSuchMethod = errors.New("live: no such method")

// runHandler invokes h and maps its result onto a wire status.
func runHandler(h Handler, from net.Addr, body []byte) (byte, []byte) {
	resp, err := h(from, body)
	if err != nil {
		return dmwire.StatusOf(err), []byte(err.Error())
	}
	return dmwire.StatusOK, resp
}

// peer returns (dialing if needed) the multiplexed connection to addr.
// deadline, when nonzero, bounds the dial along with cfg.DialTimeout.
func (n *Node) peer(addr string, deadline time.Time) (*conn, error) {
	n.mu.Lock()
	c, ok := n.peers[addr]
	n.mu.Unlock()
	if ok {
		c.pmu.Lock()
		dead := c.dead
		c.pmu.Unlock()
		if dead == nil {
			return c, nil
		}
		// Reconnect over a fresh socket.
		n.mu.Lock()
		if n.peers[addr] == c {
			delete(n.peers, addr)
		}
		n.mu.Unlock()
	}
	timeout := n.cfg.DialTimeout
	if !deadline.IsZero() {
		if rem := time.Until(deadline); rem <= 0 {
			return nil, fmt.Errorf("%w: dial %s: %v", errConnFailed, addr, ErrDeadline)
		} else if timeout <= 0 || rem < timeout {
			timeout = rem
		}
	}
	var nc net.Conn
	var err error
	if n.cfg.Dialer != nil {
		nc, err = n.cfg.Dialer(addr, timeout)
	} else {
		nc, err = net.DialTimeout("tcp", addr, timeout)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", errConnFailed, addr, err)
	}
	c = &conn{c: nc, maxFrame: n.cfg.MaxFrameSize, pending: make(map[uint64]chan response)}
	// The writer's failure hook poisons the whole conn (and closes the
	// socket), so a flush error surfaces to every pending call, not just
	// the frames that were in the failed batch.
	c.bw = newBatchWriter(nc, n.cfg.batchConfig(), &n.wstats, c.fail)
	go c.readLoop()
	n.mu.Lock()
	select {
	case <-n.closed:
		// The node closed while we dialed; don't leak the socket.
		n.mu.Unlock()
		nc.Close()
		return nil, fmt.Errorf("%w: %s: node closed", errConnFailed, addr)
	default:
	}
	if prev, raced := n.peers[addr]; raced {
		n.mu.Unlock()
		nc.Close()
		return prev, nil
	}
	n.peers[addr] = c
	n.mu.Unlock()
	return c, nil
}

// Call invokes method m at addr with body and returns the response body
// (a fresh buffer the caller owns); non-OK statuses surface as the shared
// dm errors or *rpc.AppError.
func (n *Node) Call(addr string, m rpc.Method, body []byte) ([]byte, error) {
	var out []byte
	err := n.CallConsume(addr, m, nil, body, func(resp []byte) error {
		out = append([]byte(nil), resp...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CallConsume invokes method m at addr, writing hdr and payload as the
// request body without an intermediate copy (vectored write), and hands
// the pooled response body to consume before recycling it. consume may be
// nil when the response body is irrelevant; it must not retain the slice.
func (n *Node) CallConsume(addr string, m rpc.Method, hdr, payload []byte, consume func(resp []byte) error) error {
	return n.CallConsumeOpts(addr, m, hdr, payload, consume, CallOpts{})
}
