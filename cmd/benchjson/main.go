// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON perf record, echoing the input through so it still
// reads normally in a terminal or CI log.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkLive -benchmem ./internal/live | benchjson -out BENCH_live.json
//
// Each benchmark result line becomes one record with whatever metrics the
// line carried (ns/op always; MB/s, B/op, allocs/op when present), so
// BENCH_*.json files can track the perf trajectory across PRs.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/benchfmt"
)

func main() {
	out := flag.String("out", "", "path of the JSON report to write (required)")
	requireExtra := flag.String("require-extra", "", "comma-separated Extra metric units every result must carry (e.g. p50-ns,p99-ns,p999-ns); a name:unit entry scopes the requirement to results whose name starts with name (e.g. BenchmarkPoolRepair:repair-secs) and fails if no result matches; missing metrics fail the run so reports stay comparable across PRs")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}

	report := benchfmt.NewReport()
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			report.Env = append(report.Env, line)
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				report.Results = append(report.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	if len(report.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines found")
		os.Exit(1)
	}
	if *requireExtra != "" {
		missing := false
		for _, entry := range strings.Split(*requireExtra, ",") {
			entry = strings.TrimSpace(entry)
			if entry == "" {
				continue
			}
			// "name:unit" scopes the requirement to benchmarks whose name
			// starts with name; a bare unit applies to every result.
			scope, unit := "", entry
			if i := strings.IndexByte(entry, ':'); i >= 0 {
				scope, unit = entry[:i], entry[i+1:]
			}
			matched := false
			for _, r := range report.Results {
				if scope != "" && !strings.HasPrefix(r.Name, scope) {
					continue
				}
				matched = true
				if _, ok := r.Extra[unit]; !ok {
					fmt.Fprintf(os.Stderr, "benchjson: result %s is missing required extra metric %q\n", r.Name, unit)
					missing = true
				}
			}
			if !matched {
				// A scope that matches nothing means the benchmark itself
				// vanished (or errored out) — that's the regression the
				// requirement exists to catch.
				fmt.Fprintf(os.Stderr, "benchjson: no result matches required scope %q\n", entry)
				missing = true
			}
		}
		if missing {
			os.Exit(1)
		}
	}
	if err := report.WriteFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("[benchjson: wrote %d results to %s]\n", len(report.Results), *out)
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkLiveReadRef-8  75049  16067 ns/op  2039.43 MB/s  392 B/op  12 allocs/op
func parseLine(line string) (benchfmt.Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return benchfmt.Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchfmt.Result{}, false
	}
	r := benchfmt.Result{Name: fields[0], Iterations: iters}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "MB/s":
			r.MBPerSec = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[fields[i+1]] = v
		}
	}
	if r.NsPerOp == 0 {
		return benchfmt.Result{}, false
	}
	return r, true
}
