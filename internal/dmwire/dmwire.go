// Package dmwire defines the DmRPC-net DM protocol: method identifiers,
// status codes and request/response body codecs. Two transports speak it —
// the simulated backend (internal/dmnet over internal/transport) and the
// live TCP implementation (internal/live) — so the protocol lives in one
// place and cannot drift.
package dmwire

import (
	"repro/internal/dm"
	"repro/internal/rpc"
)

// Methods served by a DM server. Kept in a dedicated range so application
// nodes can share a method space if they ever co-locate.
const (
	MRegister rpc.Method = 0x0100 + iota
	MAlloc
	MFree
	MCreateRef
	MMapRef
	MFreeRef
	MRead
	MWrite
	// MStage fuses ralloc+rwrite+create_ref+rfree into one round trip: the
	// request carries the data, the response carries the ref key. The
	// staged pages are held only by the ref.
	MStage
	// MReadRef reads through a ref key without a mapping (read-only
	// consumers skip the map_ref round trip).
	MReadRef
	// MHeartbeat renews a session lease. Servers that lease sessions
	// return a TTL from MRegister; a client must heartbeat within the TTL
	// or the server reclaims every resource the PID holds (DESIGN.md §D8).
	MHeartbeat
	// MStageAt is MStage with a caller-chosen ref key — the replica-
	// placement primitive (DESIGN.md §D13): the pool client mints one
	// cluster-wide key (ReplicaKeyBit set) and stages the same payload
	// under it on every replica shard, so a single 8-byte key resolves the
	// data on any of them. Staging an already-present key fails with
	// StatusRefExists instead of overwriting.
	MStageAt
	// MRegPut hands a cluster ref's registry entry (key -> replica set,
	// size, epoch) to the shard's directory (DESIGN.md §D16). The staging
	// client puts at epoch 1 right after a replicated stage — the handoff
	// that lets the ref survive its producer's lease reap — and the
	// migration engine puts at a bumped epoch to flip placement. The
	// server merges higher-epoch-wins and always answers StatusOK.
	MRegPut
	// MRegGet queries one registry entry by key; StatusBadRef when the
	// shard's directory has no entry. Last-resort located-ref resolution:
	// a reader whose candidate shards all miss asks the key's ring
	// successors where the payload lives now.
	MRegGet
	// MRegSync pages the shard's registry in ascending key order — the
	// anti-entropy unit. Clients and shards feed the last key of each
	// page back in until a short page; higher-epoch-wins merging on the
	// puller's side makes the exchange convergent and restartable.
	MRegSync
)

// ReplicaKeyBit partitions the ref-key space: keys minted by a server's
// own counter have the top bit clear, keys minted by pool clients for
// replicated placement (MStageAt) have it set. The bit is what lets a
// reader recognize a replicated ref from the bare dm.Ref alone and fail
// over across the key's ring successors.
const ReplicaKeyBit = uint64(1) << 63

// Application error statuses returned by a DM server.
const (
	StatusOK      = 0
	StatusErr     = 1
	StatusOOM     = 2
	StatusBadAddr = 3
	StatusBadRef  = 4
	StatusRange   = 5
	// StatusRefExists reports an MStageAt key collision: the server
	// already holds a ref under the requested key.
	StatusRefExists = 6
)

// StatusOf maps the shared dm errors onto wire statuses.
func StatusOf(err error) byte {
	switch err {
	case nil:
		return StatusOK
	case dm.ErrOutOfMemory:
		return StatusOOM
	case dm.ErrBadAddress:
		return StatusBadAddr
	case dm.ErrBadRef:
		return StatusBadRef
	case dm.ErrOutOfRange:
		return StatusRange
	case dm.ErrRefExists:
		return StatusRefExists
	default:
		return StatusErr
	}
}

// ErrOf maps a wire status back to the shared dm errors, so clients on
// either transport can compare against dm.Err* sentinels.
func ErrOf(status byte, msg string) error {
	switch status {
	case StatusOK:
		return nil
	case StatusOOM:
		return dm.ErrOutOfMemory
	case StatusBadAddr:
		return dm.ErrBadAddress
	case StatusBadRef:
		return dm.ErrBadRef
	case StatusRange:
		return dm.ErrOutOfRange
	case StatusRefExists:
		return dm.ErrRefExists
	default:
		return &rpc.AppError{Status: status, Msg: msg}
	}
}

// RegisterResp is the body of a successful MRegister response.
// LeaseMillis is the session lease TTL granted to the PID, in
// milliseconds; 0 means the server does not lease sessions and the PID
// lives until the server shuts down (the pre-lease behaviour).
//
// HasShard/Shard report the server's cluster shard identity
// (dmserverd -shard-id): a server deployed as one shard of a
// consistent-hash pool (internal/pool) advertises its shard ID so
// clients can verify their ring configuration against reality. The field
// is appended to the original 8-byte body only when set, so pre-shard
// clients still parse the prefix and pre-shard servers still satisfy new
// clients (HasShard simply stays false).
//
// Credits is the per-session async credit window the server grants
// (live credit-based flow control): a client should keep at most this
// many asynchronous calls in flight per session. 0 means the server does
// not advertise credits (pre-credit servers, or crediting disabled) and
// the client falls back to its own configured limit.
//
// Epoch is the server's cache-invalidation epoch at registration (§D15):
// the hot-ref cache's coherence baseline, so a client observing a LATER
// epoch on a heartbeat knows something it may have cached was freed,
// overwritten, or reaped. 0 means the server has never invalidated (or
// predates epochs — indistinguishable, and equally safe as a baseline).
//
// Wire forms, disambiguated by body length:
//
//	8 bytes:  PID | LeaseMillis                          (base)
//	12 bytes: PID | LeaseMillis | Shard                  (legacy shard)
//	17 bytes: PID | LeaseMillis | flags u8 | Shard | Credits
//	25 bytes: PID | LeaseMillis | flags u8 | Shard | Credits | Epoch
//
// The 17-byte form is emitted only when Credits > 0; the 25-byte form
// only when Epoch > 0 (flags bit2 set). The flags byte (bit1 always set
// as the extended-form marker, bit0 = HasShard, bit2 = epoch present)
// can never collide with a legacy 12-byte body, which is exactly 12
// bytes.
type RegisterResp struct {
	PID         uint32
	LeaseMillis uint32
	HasShard    bool
	Shard       uint32
	Credits     uint32
	Epoch       uint64
}

// registerRespExt marks the extended register-response form (flags bit1);
// registerRespEpoch marks the epoch-carrying form (flags bit2).
const (
	registerRespExt   = 0x02
	registerRespEpoch = 0x04
)

// Marshal encodes the response body in its shortest canonical form.
func (r RegisterResp) Marshal() []byte {
	if r.Epoch > 0 {
		flags := byte(registerRespExt | registerRespEpoch)
		if r.HasShard {
			flags |= 1
		}
		return rpc.NewEnc(25).U32(r.PID).U32(r.LeaseMillis).U8(flags).U32(r.Shard).U32(r.Credits).U64(r.Epoch).Bytes()
	}
	if r.Credits > 0 {
		flags := byte(registerRespExt)
		if r.HasShard {
			flags |= 1
		}
		return rpc.NewEnc(17).U32(r.PID).U32(r.LeaseMillis).U8(flags).U32(r.Shard).U32(r.Credits).Bytes()
	}
	if !r.HasShard {
		return rpc.NewEnc(8).U32(r.PID).U32(r.LeaseMillis).Bytes()
	}
	return rpc.NewEnc(12).U32(r.PID).U32(r.LeaseMillis).U32(r.Shard).Bytes()
}

// UnmarshalRegisterResp decodes the response body (any of the four
// length-disambiguated forms).
func UnmarshalRegisterResp(b []byte) (RegisterResp, error) {
	d := rpc.NewDec(b)
	r := RegisterResp{PID: d.U32(), LeaseMillis: d.U32()}
	if err := d.Err(); err != nil {
		return r, err
	}
	rem := d.Remaining()
	if len(rem) >= 9 && rem[0]&registerRespExt != 0 && rem[0]>>3 == 0 {
		flags := d.U8()
		r.Shard = d.U32()
		r.Credits = d.U32()
		if flags&registerRespEpoch != 0 {
			r.Epoch = d.U64()
		}
		if err := d.Err(); err != nil {
			return r, err
		}
		if flags&registerRespEpoch != 0 && r.Epoch == 0 {
			// Canonical encoders never emit the epoch form with a zero
			// epoch; decode it as the base form so re-encoding stays a
			// prefix of the input.
			return RegisterResp{PID: r.PID, LeaseMillis: r.LeaseMillis}, nil
		}
		if flags&registerRespEpoch == 0 && r.Credits == 0 {
			// Likewise for the credit form with zero credits.
			return RegisterResp{PID: r.PID, LeaseMillis: r.LeaseMillis}, nil
		}
		r.HasShard = flags&1 != 0
		return r, nil
	}
	if len(rem) >= 4 {
		r.Shard = d.U32()
		r.HasShard = true
	}
	return r, d.Err()
}

// HeartbeatReq is the body of an MHeartbeat request.
type HeartbeatReq struct {
	PID uint32
}

// Marshal encodes the request body.
func (r HeartbeatReq) Marshal() []byte { return rpc.NewEnc(4).U32(r.PID).Bytes() }

// UnmarshalHeartbeatReq decodes the request body.
func UnmarshalHeartbeatReq(b []byte) (HeartbeatReq, error) {
	d := rpc.NewDec(b)
	r := HeartbeatReq{PID: d.U32()}
	return r, d.Err()
}

// HeartbeatResp is the body of a successful MHeartbeat response: the
// renewed lease TTL in milliseconds, plus — when the server advertises
// credit-based flow control — the refreshed per-session async credit
// window, plus — once the server has ever freed, overwritten or reaped
// a ref — its cache-invalidation epoch (DESIGN.md §D15). Like the
// credit extension, each field is appended only when nonzero and the
// forms are length-disambiguated, so peers from any era interoperate:
// 4 bytes (lease), 8 (lease+credits), 16 (lease+credits+epoch).
type HeartbeatResp struct {
	LeaseMillis uint32
	Credits     uint32
	Epoch       uint64
}

// Marshal encodes the response body in its shortest canonical form.
func (r HeartbeatResp) Marshal() []byte {
	if r.Epoch > 0 {
		return rpc.NewEnc(16).U32(r.LeaseMillis).U32(r.Credits).U64(r.Epoch).Bytes()
	}
	if r.Credits > 0 {
		return rpc.NewEnc(8).U32(r.LeaseMillis).U32(r.Credits).Bytes()
	}
	return rpc.NewEnc(4).U32(r.LeaseMillis).Bytes()
}

// UnmarshalHeartbeatResp decodes the response body, folding
// non-canonical long forms (explicit zero epoch) back to the shorter
// canonical value so decode∘encode is always a prefix of the input.
func UnmarshalHeartbeatResp(b []byte) (HeartbeatResp, error) {
	d := rpc.NewDec(b)
	r := HeartbeatResp{LeaseMillis: d.U32()}
	if err := d.Err(); err != nil {
		return r, err
	}
	if len(d.Remaining()) >= 12 {
		r.Credits = d.U32()
		r.Epoch = d.U64()
		return r, d.Err()
	}
	if len(d.Remaining()) >= 4 {
		r.Credits = d.U32()
	}
	return r, d.Err()
}

// TokenSize is the wire width of a dedup Token.
const TokenSize = 16

// Token identifies one logical mutation for at-most-once retry
// deduplication: CID is a client-chosen random identity stable across
// reconnects, Seq a per-client monotonic sequence number. A retried
// non-idempotent request carries the same Token as the original, so a
// server that already executed it replays the recorded response instead
// of applying the mutation twice. The zero Token means "no dedup".
type Token struct {
	CID uint64
	Seq uint64
}

// IsZero reports whether the token is absent.
func (t Token) IsZero() bool { return t == Token{} }

// Marshal encodes the token as 16 big-endian bytes.
func (t Token) Marshal() []byte { return rpc.NewEnc(TokenSize).U64(t.CID).U64(t.Seq).Bytes() }

// UnmarshalToken decodes a token from the first TokenSize bytes of b.
func UnmarshalToken(b []byte) (Token, error) {
	d := rpc.NewDec(b)
	t := Token{CID: d.U64(), Seq: d.U64()}
	return t, d.Err()
}

// AllocReq is the body of an MAlloc request.
type AllocReq struct {
	PID  uint32
	Size int64
}

// Marshal encodes the request body.
func (r AllocReq) Marshal() []byte { return rpc.NewEnc(12).U32(r.PID).I64(r.Size).Bytes() }

// UnmarshalAllocReq decodes the request body.
func UnmarshalAllocReq(b []byte) (AllocReq, error) {
	d := rpc.NewDec(b)
	r := AllocReq{PID: d.U32(), Size: d.I64()}
	return r, d.Err()
}

// AllocResp is the body of a successful MAlloc response.
type AllocResp struct {
	Addr dm.RemoteAddr
}

// Marshal encodes the response body.
func (r AllocResp) Marshal() []byte { return rpc.NewEnc(8).U64(uint64(r.Addr)).Bytes() }

// UnmarshalAllocResp decodes the response body.
func UnmarshalAllocResp(b []byte) (AllocResp, error) {
	d := rpc.NewDec(b)
	r := AllocResp{Addr: dm.RemoteAddr(d.U64())}
	return r, d.Err()
}

// FreeReq is the body of an MFree request.
type FreeReq struct {
	PID  uint32
	Addr dm.RemoteAddr
}

// Marshal encodes the request body.
func (r FreeReq) Marshal() []byte { return rpc.NewEnc(12).U32(r.PID).U64(uint64(r.Addr)).Bytes() }

// UnmarshalFreeReq decodes the request body.
func UnmarshalFreeReq(b []byte) (FreeReq, error) {
	d := rpc.NewDec(b)
	r := FreeReq{PID: d.U32(), Addr: dm.RemoteAddr(d.U64())}
	return r, d.Err()
}

// CreateRefReq is the body of an MCreateRef request.
type CreateRefReq struct {
	PID  uint32
	Addr dm.RemoteAddr
	Size int64
}

// Marshal encodes the request body.
func (r CreateRefReq) Marshal() []byte {
	return rpc.NewEnc(20).U32(r.PID).U64(uint64(r.Addr)).I64(r.Size).Bytes()
}

// UnmarshalCreateRefReq decodes the request body.
func UnmarshalCreateRefReq(b []byte) (CreateRefReq, error) {
	d := rpc.NewDec(b)
	r := CreateRefReq{PID: d.U32(), Addr: dm.RemoteAddr(d.U64()), Size: d.I64()}
	return r, d.Err()
}

// RefKeyResp is the body of a successful MCreateRef or MStage response.
type RefKeyResp struct {
	Key uint64
}

// Marshal encodes the response body.
func (r RefKeyResp) Marshal() []byte { return rpc.NewEnc(8).U64(r.Key).Bytes() }

// UnmarshalRefKeyResp decodes the response body.
func UnmarshalRefKeyResp(b []byte) (RefKeyResp, error) {
	d := rpc.NewDec(b)
	r := RefKeyResp{Key: d.U64()}
	return r, d.Err()
}

// MapRefReq is the body of an MMapRef request.
type MapRefReq struct {
	PID uint32
	Key uint64
}

// Marshal encodes the request body.
func (r MapRefReq) Marshal() []byte { return rpc.NewEnc(12).U32(r.PID).U64(r.Key).Bytes() }

// UnmarshalMapRefReq decodes the request body.
func UnmarshalMapRefReq(b []byte) (MapRefReq, error) {
	d := rpc.NewDec(b)
	r := MapRefReq{PID: d.U32(), Key: d.U64()}
	return r, d.Err()
}

// MapRefResp is the body of a successful MMapRef response.
type MapRefResp struct {
	Addr dm.RemoteAddr
	Size int64
}

// Marshal encodes the response body.
func (r MapRefResp) Marshal() []byte {
	return rpc.NewEnc(16).U64(uint64(r.Addr)).I64(r.Size).Bytes()
}

// UnmarshalMapRefResp decodes the response body.
func UnmarshalMapRefResp(b []byte) (MapRefResp, error) {
	d := rpc.NewDec(b)
	r := MapRefResp{Addr: dm.RemoteAddr(d.U64()), Size: d.I64()}
	return r, d.Err()
}

// FreeRefReq is the body of an MFreeRef request.
type FreeRefReq struct {
	Key uint64
}

// Marshal encodes the request body.
func (r FreeRefReq) Marshal() []byte { return rpc.NewEnc(8).U64(r.Key).Bytes() }

// UnmarshalFreeRefReq decodes the request body.
func UnmarshalFreeRefReq(b []byte) (FreeRefReq, error) {
	d := rpc.NewDec(b)
	r := FreeRefReq{Key: d.U64()}
	return r, d.Err()
}

// ReadReq is the body of an MRead request.
type ReadReq struct {
	PID  uint32
	Addr dm.RemoteAddr
	Size uint32
}

// Marshal encodes the request body.
func (r ReadReq) Marshal() []byte {
	return rpc.NewEnc(16).U32(r.PID).U64(uint64(r.Addr)).U32(r.Size).Bytes()
}

// UnmarshalReadReq decodes the request body.
func UnmarshalReadReq(b []byte) (ReadReq, error) {
	d := rpc.NewDec(b)
	r := ReadReq{PID: d.U32(), Addr: dm.RemoteAddr(d.U64()), Size: d.U32()}
	return r, d.Err()
}

// WriteReq is the body of an MWrite request; Data aliases the message
// buffer.
type WriteReq struct {
	PID  uint32
	Addr dm.RemoteAddr
	Data []byte
}

// Marshal encodes the request body.
func (r WriteReq) Marshal() []byte {
	e := rpc.NewEnc(12 + len(r.Data))
	return e.U32(r.PID).U64(uint64(r.Addr)).Raw(r.Data).Bytes()
}

// MarshalHdr encodes only the fixed-size prefix of the request body, for
// transports that write Data as its own vectored segment (zero-copy
// framing): Marshal() == append(MarshalHdr(), Data...).
func (r WriteReq) MarshalHdr() []byte {
	return rpc.NewEnc(12).U32(r.PID).U64(uint64(r.Addr)).Bytes()
}

// UnmarshalWriteReq decodes the request body.
func UnmarshalWriteReq(b []byte) (WriteReq, error) {
	d := rpc.NewDec(b)
	r := WriteReq{PID: d.U32(), Addr: dm.RemoteAddr(d.U64())}
	r.Data = d.Remaining()
	return r, d.Err()
}

// StageReq is the body of an MStage request; Data aliases the message
// buffer.
type StageReq struct {
	PID  uint32
	Data []byte
}

// Marshal encodes the request body.
func (r StageReq) Marshal() []byte {
	e := rpc.NewEnc(4 + len(r.Data))
	return e.U32(r.PID).Raw(r.Data).Bytes()
}

// MarshalHdr encodes only the fixed-size prefix of the request body, for
// transports that write Data as its own vectored segment (zero-copy
// framing): Marshal() == append(MarshalHdr(), Data...).
func (r StageReq) MarshalHdr() []byte {
	return rpc.NewEnc(4).U32(r.PID).Bytes()
}

// UnmarshalStageReq decodes the request body.
func UnmarshalStageReq(b []byte) (StageReq, error) {
	d := rpc.NewDec(b)
	r := StageReq{PID: d.U32()}
	r.Data = d.Remaining()
	return r, d.Err()
}

// StageAtReq is the body of an MStageAt request: stage Data under the
// caller-chosen Key (which must have ReplicaKeyBit set). Data aliases
// the message buffer.
type StageAtReq struct {
	PID  uint32
	Key  uint64
	Data []byte
}

// Marshal encodes the request body.
func (r StageAtReq) Marshal() []byte {
	e := rpc.NewEnc(12 + len(r.Data))
	return e.U32(r.PID).U64(r.Key).Raw(r.Data).Bytes()
}

// MarshalHdr encodes only the fixed-size prefix of the request body, for
// transports that write Data as its own vectored segment (zero-copy
// framing): Marshal() == append(MarshalHdr(), Data...).
func (r StageAtReq) MarshalHdr() []byte {
	return rpc.NewEnc(12).U32(r.PID).U64(r.Key).Bytes()
}

// UnmarshalStageAtReq decodes the request body.
func UnmarshalStageAtReq(b []byte) (StageAtReq, error) {
	d := rpc.NewDec(b)
	r := StageAtReq{PID: d.U32(), Key: d.U64()}
	r.Data = d.Remaining()
	return r, d.Err()
}

// ReadRefReq is the body of an MReadRef request.
type ReadRefReq struct {
	Key  uint64
	Off  uint32
	Size uint32
}

// Marshal encodes the request body.
func (r ReadRefReq) Marshal() []byte {
	return rpc.NewEnc(16).U64(r.Key).U32(r.Off).U32(r.Size).Bytes()
}

// UnmarshalReadRefReq decodes the request body.
func UnmarshalReadRefReq(b []byte) (ReadRefReq, error) {
	d := rpc.NewDec(b)
	r := ReadRefReq{Key: d.U64(), Off: d.U32(), Size: d.U32()}
	return r, d.Err()
}
