package liverpc

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/faultnet"
	"repro/internal/live"
)

// TestMidChainCrashReclaimsRefs is the liverpc chaos test: a 3-service
// chain where the middle service adopts (takes DM ownership of) every
// payload it forwards, then dies abruptly while holding those refs and
// while the client's network is misbehaving. The server's lease reaper
// must reclaim every frame the dead service held within a few TTLs —
// refcount conservation (D6) and lease-reaping (D8) hold end to end
// through the application layer, with zero leaked pages.
func TestMidChainCrashReclaimsRefs(t *testing.T) {
	ttl := 150 * time.Millisecond
	srv, dmAddr := startDM(t, live.ServerConfig{
		NumPages: 512, PageSize: 4096,
		LeaseTTL: ttl, DrainTimeout: 100 * time.Millisecond,
	})
	initialFree := srv.FreePages()
	cfg := Config{InlineThreshold: 256}

	// Tail: terminal aggregator.
	tdm := dialDM(t, dmAddr)
	tail := NewService("tail", tdm, cfg)
	tail.Handle("sum", func(ctx *Ctx, args []Payload) ([]Payload, error) {
		buf, err := ctx.Fetch(args[0])
		if err != nil {
			return nil, err
		}
		return []Payload{U64(apps.Aggregate(buf))}, nil
	})
	tailAddr := serveService(t, tail)

	// Mid: adopts every payload (accumulating ref holds it never frees,
	// as a caching tier would) before forwarding the original.
	mdm, err := live.Dial(dmAddr)
	if err != nil {
		t.Fatal(err)
	}
	if err := mdm.Register(); err != nil {
		t.Fatal(err)
	}
	var held atomic.Int32
	mid := NewService("mid", mdm, cfg)
	mid.Handle("sum", func(ctx *Ctx, args []Payload) ([]Payload, error) {
		if _, err := ctx.Adopt(args[0]); err != nil {
			return nil, err
		}
		held.Add(1)
		return ctx.Call(tailAddr, "sum", args...)
	})
	midLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go mid.Serve(midLn)
	midAddr := midLn.Addr().String()

	// Client with fault injection on its transport.
	inj := faultnet.New()
	cdm := dialDM(t, dmAddr)
	ccfg := cfg
	ccfg.Net.Dialer = injDialer(inj)
	ccfg.Net.AttemptTimeout = time.Second
	c := NewCaller(cdm, ccfg)
	defer c.Close()

	payload := make([]byte, 8*1024)
	apps.FillPayload(payload, 3)
	want := apps.Aggregate(payload)
	doCall := func() (uint64, error) {
		arg, err := c.Stage(payload)
		if err != nil {
			return 0, err
		}
		defer c.Release(arg)
		res, err := c.CallOpts(midAddr, "sum", CallOpts{Timeout: 2 * time.Second}, arg)
		if err != nil {
			return 0, err
		}
		return res[0].AsU64()
	}

	// Healthy phase, with one torn write mid-stream to keep the retry
	// machinery honest under load.
	for i := 0; i < 6; i++ {
		if i == 3 {
			inj.TruncateNextWrite()
		}
		got, err := doCall()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("call %d: sum = %d, want %d", i, got, want)
		}
	}
	if held.Load() != 6 {
		t.Fatalf("mid adopted %d refs, want 6", held.Load())
	}
	if srv.LiveRefs() != 6 { // client released its stages; only mid's holds remain
		t.Fatalf("LiveRefs before crash = %d, want 6", srv.LiveRefs())
	}

	// Crash mid while it holds 6 adopted refs: kill its listener and node
	// so in-flight work dies, and close its DM transport without freeing
	// anything — heartbeats stop, the lease runs out, the reaper collects.
	mid.Close()
	mdm.Close()

	// Calls through the dead hop must fail, not hang.
	if _, err := doCall(); err == nil {
		t.Fatal("call through crashed mid unexpectedly succeeded")
	}

	// The reaper must reclaim every frame mid held: zero live refs and
	// every page back in the free list within a few TTLs.
	deadline := time.Now().Add(20 * ttl)
	for time.Now().Before(deadline) {
		if srv.LiveRefs() == 0 && srv.FreePages() == initialFree {
			break
		}
		time.Sleep(ttl / 4)
	}
	if n := srv.LiveRefs(); n != 0 {
		t.Fatalf("LiveRefs after reap = %d, want 0 (ref leak)", n)
	}
	if free := srv.FreePages(); free != initialFree {
		t.Fatalf("FreePages after reap = %d, want %d (frame leak)", free, initialFree)
	}
	if err := srv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// The surviving tail still works when addressed directly.
	arg, err := c.Stage(payload)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Release(arg)
	res, err := c.Call(tailAddr, "sum", arg)
	if err != nil {
		t.Fatalf("surviving tail after crash: %v", err)
	}
	if got, _ := res[0].AsU64(); got != want {
		t.Fatalf("tail sum after crash = %d, want %d", got, want)
	}
}

// injDialer adapts a faultnet injector into a live.NodeConfig dialer.
func injDialer(inj *faultnet.Injector) func(string, time.Duration) (net.Conn, error) {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return inj.Conn(c), nil
	}
}
