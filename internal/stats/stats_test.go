package stats

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Record(1234)
	if h.Count() != 1 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != 1234 || h.Max() != 1234 {
		t.Fatalf("min/max = %d/%d, want 1234", h.Min(), h.Max())
	}
	if h.Mean() != 1234 {
		t.Fatalf("Mean = %f", h.Mean())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < 1200 || got > 1234 {
			t.Fatalf("Quantile(%f) = %d, want ~1234", q, got)
		}
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative sample recorded as %d..%d, want 0..0", h.Min(), h.Max())
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	// Values below subBuckets land in exact unit buckets.
	var h Histogram
	for v := int64(0); v < subBuckets; v++ {
		h.Record(v)
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("Q0 = %d", got)
	}
	if got := h.Quantile(1); got != subBuckets-1 {
		t.Fatalf("Q1 = %d, want %d", got, subBuckets-1)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	samples := make([]int64, 10000)
	for i := range samples {
		samples[i] = int64(rng.Intn(1_000_000))
		h.Record(samples[i])
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := samples[int(q*float64(len(samples)))-1]
		got := h.Quantile(q)
		// Log-bucketed histogram has bounded relative error (~2^-5).
		relerr := float64(got-exact) / float64(exact)
		if relerr < -0.05 || relerr > 0.05 {
			t.Errorf("Quantile(%g) = %d, exact %d, relerr %.3f", q, got, exact, relerr)
		}
	}
}

func TestHistogramMergePreservesTotals(t *testing.T) {
	var a, b Histogram
	for i := int64(0); i < 100; i++ {
		a.Record(i * 3)
		b.Record(i * 7)
	}
	sum := a.Sum() + b.Sum()
	cnt := a.Count() + b.Count()
	max := b.Max()
	a.Merge(&b)
	if a.Count() != cnt || a.Sum() != sum {
		t.Fatalf("merge lost samples: count=%d sum=%d", a.Count(), a.Sum())
	}
	if a.Max() != max {
		t.Fatalf("merge Max = %d, want %d", a.Max(), max)
	}
	if a.Min() != 0 {
		t.Fatalf("merge Min = %d, want 0", a.Min())
	}
}

func TestHistogramMergeEmptyIsNoop(t *testing.T) {
	var a, b Histogram
	a.Record(5)
	a.Merge(&b)
	if a.Count() != 1 || a.Min() != 5 {
		t.Fatal("merging empty histogram changed state")
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(10)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("Reset did not clear histogram")
	}
}

func TestBucketRoundTripProperty(t *testing.T) {
	// Property: bucketLow(bucketIndex(v)) <= v and the bucket width bounds
	// the error to ~3.2% of v.
	prop := func(raw uint64) bool {
		v := int64(raw >> 1) // keep positive
		i := bucketIndex(v)
		lo := bucketLow(i)
		if lo > v {
			return false
		}
		if i+1 < len((&Histogram{}).counts) {
			hi := bucketLow(i + 1)
			if hi <= v && v >= subBuckets {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	prop := func(vals []uint32) bool {
		var h Histogram
		for _, v := range vals {
			h.Record(int64(v))
		}
		prev := int64(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 1000)
	}
	s := h.Summarize()
	if s.Count != 1000 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.P50 < 400_000 || s.P50 > 520_000 {
		t.Fatalf("P50 = %d, want ~500000", s.P50)
	}
	if s.P999 < 950_000 {
		t.Fatalf("P999 = %d, want >= 950000", s.P999)
	}
	if !strings.Contains(s.String(), "n=1000") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestDurFormatting(t *testing.T) {
	cases := map[int64]string{
		5:             "5ns",
		1500:          "1.50µs",
		2_000_000:     "2.00ms",
		3_500_000_000: "3.500s",
	}
	for in, want := range cases {
		if got := Dur(in); got != want {
			t.Errorf("Dur(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestBytesFormatting(t *testing.T) {
	cases := map[int64]string{
		12:      "12B",
		2048:    "2.0KiB",
		3 << 20: "3.0MiB",
		5 << 30: "5.00GiB",
	}
	for in, want := range cases {
		if got := Bytes(in); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestRateFormatting(t *testing.T) {
	if got := Rate(500); got != "500.0 op/s" {
		t.Errorf("Rate(500) = %q", got)
	}
	if got := Rate(1500); got != "1.5 Kop/s" {
		t.Errorf("Rate(1500) = %q", got)
	}
	if got := Rate(2_500_000); got != "2.50 Mop/s" {
		t.Errorf("Rate(2.5e6) = %q", got)
	}
}

func TestGbps(t *testing.T) {
	// 1250 bytes in 100ns = 100 Gbps.
	if got := Gbps(1250, 100); got != "100.00Gbps" {
		t.Errorf("Gbps = %q", got)
	}
	if got := Gbps(100, 0); got != "0Gbps" {
		t.Errorf("Gbps zero-time = %q", got)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("Value = %d", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestMeterPerSecond(t *testing.T) {
	m := Meter{Count: 100, Start: 0, End: 1_000_000_000}
	if got := m.PerSecond(); got != 100 {
		t.Fatalf("PerSecond = %f", got)
	}
	m = Meter{Count: 100, Start: 5, End: 5}
	if got := m.PerSecond(); got != 0 {
		t.Fatalf("zero window PerSecond = %f", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("size", "throughput")
	tb.AddRow("4KiB", 100)
	tb.AddRow("32KiB", 42)
	out := tb.String()
	if !strings.Contains(out, "size") || !strings.Contains(out, "32KiB") {
		t.Fatalf("table output %q missing content", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
	tb.SortRowsByFirstColumn()
	out = tb.String()
	if strings.Index(out, "32KiB") > strings.Index(out, "4KiB") {
		t.Fatal("rows not sorted")
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}

func BenchmarkHistogramQuantile(b *testing.B) {
	var h Histogram
	for i := int64(0); i < 100000; i++ {
		h.Record(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Quantile(0.99)
	}
}
