package dmnet

import (
	"fmt"

	"repro/internal/dm"
	"repro/internal/dmwire"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// defaultTransport returns the transport tuning used by DM traffic.
func defaultTransport() transport.Config { return transport.DefaultConfig() }

// Addresses returned by the client pool carry the owning server's pool
// index in the top byte, so every later operation routes to the right
// server without client-side region tables.
const serverShift = 56

func tagAddr(server int, a dm.RemoteAddr) dm.RemoteAddr {
	return dm.RemoteAddr(uint64(server)<<serverShift | uint64(a))
}

func splitAddr(a dm.RemoteAddr) (server int, raw dm.RemoteAddr) {
	return int(uint64(a) >> serverShift), dm.RemoteAddr(uint64(a) & (1<<serverShift - 1))
}

// Client is a process's handle on the disaggregated memory pool. It
// implements dm.Space by issuing DM RPCs through the process's rpc.Node;
// allocation requests are "routed in a round-robin fashion" across the
// pool's servers (§VI-C). Request and response bodies are the shared
// dmwire codecs, identical to the live TCP client's.
type Client struct {
	node    *rpc.Node
	servers []simnet.Addr
	pids    []uint32
	ready   bool
	rr      int
}

// Statically assert the interfaces.
var (
	_ dm.Space     = (*Client)(nil)
	_ dm.RefStager = (*Client)(nil)
	_ dm.RefReader = (*Client)(nil)
)

// NewClient creates a pool client that calls through node. The server list
// must be identical (same order) in every process sharing refs, since Ref
// carries the pool index.
func NewClient(node *rpc.Node, servers []simnet.Addr) *Client {
	if len(servers) == 0 {
		panic("dmnet: client needs at least one DM server")
	}
	return &Client{node: node, servers: servers, pids: make([]uint32, len(servers))}
}

// Register obtains a global PID from every DM server. It must complete
// before any other call ("the global PID is assigned by our software
// running on DM servers", §V-A).
func (c *Client) Register(p *sim.Proc) error {
	for i, srv := range c.servers {
		resp, err := c.node.Call(p, srv, MRegister, nil)
		if err != nil {
			return fmt.Errorf("dmnet: register with server %d: %w", i, err)
		}
		r, err := dmwire.UnmarshalRegisterResp(resp)
		if err != nil {
			return err
		}
		c.pids[i] = r.PID
	}
	c.ready = true
	return nil
}

func (c *Client) server(i int) (simnet.Addr, uint32, error) {
	if !c.ready {
		return simnet.Addr{}, 0, fmt.Errorf("dmnet: client not registered")
	}
	if i < 0 || i >= len(c.servers) {
		return simnet.Addr{}, 0, dm.ErrBadAddress
	}
	return c.servers[i], c.pids[i], nil
}

// Alloc reserves size bytes on the next server in round-robin order.
func (c *Client) Alloc(p *sim.Proc, size int64) (dm.RemoteAddr, error) {
	idx := c.rr
	c.rr = (c.rr + 1) % len(c.servers)
	srv, pid, err := c.server(idx)
	if err != nil {
		return 0, err
	}
	resp, err := c.node.Call(p, srv, MAlloc, dmwire.AllocReq{PID: pid, Size: size}.Marshal())
	if err != nil {
		return 0, fromAppError(err)
	}
	r, err := dmwire.UnmarshalAllocResp(resp)
	if err != nil {
		return 0, err
	}
	return tagAddr(idx, r.Addr), nil
}

// Free releases the region based at addr.
func (c *Client) Free(p *sim.Proc, addr dm.RemoteAddr) error {
	idx, raw := splitAddr(addr)
	srv, pid, err := c.server(idx)
	if err != nil {
		return err
	}
	_, err = c.node.Call(p, srv, MFree, dmwire.FreeReq{PID: pid, Addr: raw}.Marshal())
	return fromAppError(err)
}

// CreateRef marks [addr, addr+size) shared read-only and returns its Ref.
func (c *Client) CreateRef(p *sim.Proc, addr dm.RemoteAddr, size int64) (dm.Ref, error) {
	idx, raw := splitAddr(addr)
	srv, pid, err := c.server(idx)
	if err != nil {
		return dm.Ref{}, err
	}
	resp, err := c.node.Call(p, srv, MCreateRef,
		dmwire.CreateRefReq{PID: pid, Addr: raw, Size: size}.Marshal())
	if err != nil {
		return dm.Ref{}, fromAppError(err)
	}
	r, err := dmwire.UnmarshalRefKeyResp(resp)
	if err != nil {
		return dm.Ref{}, err
	}
	return dm.Ref{Server: uint32(idx), Key: r.Key, Size: size}, nil
}

// MapRef maps the pages named by ref into this process's DM address space.
func (c *Client) MapRef(p *sim.Proc, ref dm.Ref) (dm.RemoteAddr, error) {
	srv, pid, err := c.server(int(ref.Server))
	if err != nil {
		return 0, err
	}
	resp, err := c.node.Call(p, srv, MMapRef,
		dmwire.MapRefReq{PID: pid, Key: ref.Key}.Marshal())
	if err != nil {
		return 0, fromAppError(err)
	}
	r, err := dmwire.UnmarshalMapRefResp(resp)
	if err != nil {
		return 0, err
	}
	return tagAddr(int(ref.Server), r.Addr), nil
}

// FreeRef releases the reference's own hold on the shared pages. This is a
// repo extension over the paper's Table II: without it the +1 taken by
// create_ref can never be returned and pages leak (see DESIGN.md D-notes).
func (c *Client) FreeRef(p *sim.Proc, ref dm.Ref) error {
	srv, _, err := c.server(int(ref.Server))
	if err != nil {
		return err
	}
	_, err = c.node.Call(p, srv, MFreeRef, dmwire.FreeRefReq{Key: ref.Key}.Marshal())
	return fromAppError(err)
}

// StageRef stages data into fresh DM pages and returns a ref holding them,
// in a single round trip (the fused fast path; see dm.RefStager). The
// target server is chosen round-robin like Alloc.
func (c *Client) StageRef(p *sim.Proc, data []byte) (dm.Ref, error) {
	idx := c.rr
	c.rr = (c.rr + 1) % len(c.servers)
	srv, pid, err := c.server(idx)
	if err != nil {
		return dm.Ref{}, err
	}
	resp, err := c.node.Call(p, srv, MStage, dmwire.StageReq{PID: pid, Data: data}.Marshal())
	if err != nil {
		return dm.Ref{}, fromAppError(err)
	}
	r, err := dmwire.UnmarshalRefKeyResp(resp)
	if err != nil {
		return dm.Ref{}, err
	}
	return dm.Ref{Server: uint32(idx), Key: r.Key, Size: int64(len(data))}, nil
}

// ReadRef reads [off, off+len(dst)) of the ref's snapshot without mapping
// it (see dm.RefReader).
func (c *Client) ReadRef(p *sim.Proc, ref dm.Ref, off int64, dst []byte) error {
	srv, _, err := c.server(int(ref.Server))
	if err != nil {
		return err
	}
	resp, err := c.node.Call(p, srv, MReadRef,
		dmwire.ReadRefReq{Key: ref.Key, Off: uint32(off), Size: uint32(len(dst))}.Marshal())
	if err != nil {
		return fromAppError(err)
	}
	if len(resp) != len(dst) {
		return fmt.Errorf("dmnet: readref returned %d bytes, want %d", len(resp), len(dst))
	}
	copy(dst, resp)
	return nil
}

// Write stores src at addr (the paper's rwrite: explicit API, data moves
// over the network to the DM server).
func (c *Client) Write(p *sim.Proc, addr dm.RemoteAddr, src []byte) error {
	idx, raw := splitAddr(addr)
	srv, pid, err := c.server(idx)
	if err != nil {
		return err
	}
	_, err = c.node.Call(p, srv, MWrite, dmwire.WriteReq{PID: pid, Addr: raw, Data: src}.Marshal())
	return fromAppError(err)
}

// Read loads len(dst) bytes from addr into dst (the paper's rread).
func (c *Client) Read(p *sim.Proc, addr dm.RemoteAddr, dst []byte) error {
	idx, raw := splitAddr(addr)
	srv, pid, err := c.server(idx)
	if err != nil {
		return err
	}
	resp, err := c.node.Call(p, srv, MRead,
		dmwire.ReadReq{PID: pid, Addr: raw, Size: uint32(len(dst))}.Marshal())
	if err != nil {
		return fromAppError(err)
	}
	if len(resp) != len(dst) {
		return fmt.Errorf("dmnet: read returned %d bytes, want %d", len(resp), len(dst))
	}
	copy(dst, resp)
	return nil
}
