// Package trace collects RPC-level telemetry from a simulation run: per
// (service, method) request counts, service time, payload bytes, and an
// optional bounded span log. It answers "where did the time and the bytes
// go" for any experiment — the observability layer a production RPC stack
// ships with.
//
// Attach a Collector to rpc nodes via Node.SetObserver (or to every
// service at once with msvc.Platform.AttachTracer), run the workload, then
// render with Report.
package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// Kind distinguishes server-side handling from client-side calls.
type Kind byte

const (
	// KindServe is a handler execution on the receiving node.
	KindServe Kind = iota
	// KindCall is an outgoing call observed at the issuing node.
	KindCall
)

func (k Kind) String() string {
	if k == KindCall {
		return "call"
	}
	return "serve"
}

// Span is one completed RPC operation.
type Span struct {
	Kind      Kind
	Node      string
	Method    rpc.Method
	Peer      simnet.Addr
	Start     sim.Time
	End       sim.Time
	ReqBytes  int
	RespBytes int
	Err       bool
}

// Duration returns the span's elapsed virtual time.
func (s Span) Duration() sim.Time { return s.End - s.Start }

// aggKey groups spans for the summary table.
type aggKey struct {
	kind   Kind
	node   string
	method rpc.Method
}

// agg is the per-key accumulator.
type agg struct {
	count     int64
	errors    int64
	totalNs   int64
	reqBytes  int64
	respBytes int64
	lat       stats.Histogram
}

// Collector implements rpc.Observer. The zero value is not usable; create
// one with New. Methods are safe only under the simulation's single-runner
// model (like everything else in the simulator).
type Collector struct {
	byKey map[aggKey]*agg

	// spans is a bounded log of completed spans (most recent kept).
	spans    []Span
	maxSpans int

	// MethodName renders method ids in reports; defaults to hex.
	MethodName func(rpc.Method) string
}

var _ rpc.Observer = (*Collector)(nil)

// New returns a collector keeping at most maxSpans recent spans
// (0 disables span logging; aggregation is always on).
func New(maxSpans int) *Collector {
	return &Collector{
		byKey:    make(map[aggKey]*agg),
		maxSpans: maxSpans,
	}
}

type token struct {
	span Span
}

// ServeStart implements rpc.Observer.
func (c *Collector) ServeStart(node string, m rpc.Method, from simnet.Addr, reqBytes int, at sim.Time) any {
	return &token{span: Span{Kind: KindServe, Node: node, Method: m, Peer: from, Start: at, ReqBytes: reqBytes}}
}

// ServeEnd implements rpc.Observer.
func (c *Collector) ServeEnd(tok any, respBytes int, at sim.Time, err error) {
	c.end(tok, respBytes, at, err)
}

// CallStart implements rpc.Observer.
func (c *Collector) CallStart(node string, to simnet.Addr, m rpc.Method, reqBytes int, at sim.Time) any {
	return &token{span: Span{Kind: KindCall, Node: node, Method: m, Peer: to, Start: at, ReqBytes: reqBytes}}
}

// CallEnd implements rpc.Observer.
func (c *Collector) CallEnd(tok any, respBytes int, at sim.Time, err error) {
	c.end(tok, respBytes, at, err)
}

func (c *Collector) end(tok any, respBytes int, at sim.Time, err error) {
	t, ok := tok.(*token)
	if !ok {
		return
	}
	s := t.span
	s.End = at
	s.RespBytes = respBytes
	s.Err = err != nil
	key := aggKey{kind: s.Kind, node: s.Node, method: s.Method}
	a := c.byKey[key]
	if a == nil {
		a = &agg{}
		c.byKey[key] = a
	}
	a.count++
	if s.Err {
		a.errors++
	}
	a.totalNs += int64(s.Duration())
	a.reqBytes += int64(s.ReqBytes)
	a.respBytes += int64(s.RespBytes)
	a.lat.Record(int64(s.Duration()))
	if c.maxSpans > 0 {
		if len(c.spans) == c.maxSpans {
			copy(c.spans, c.spans[1:])
			c.spans = c.spans[:c.maxSpans-1]
		}
		c.spans = append(c.spans, s)
	}
}

// Spans returns the retained span log, oldest first.
func (c *Collector) Spans() []Span { return c.spans }

// Row is one line of the aggregate report.
type Row struct {
	Kind      Kind
	Node      string
	Method    rpc.Method
	Count     int64
	Errors    int64
	AvgNs     int64
	P99Ns     int64
	ReqBytes  int64
	RespBytes int64
}

// Rows returns the aggregated telemetry sorted by total time descending —
// the "where did the time go" ordering.
func (c *Collector) Rows() []Row {
	type kv struct {
		k aggKey
		a *agg
	}
	all := make([]kv, 0, len(c.byKey))
	for k, a := range c.byKey {
		all = append(all, kv{k, a})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].a.totalNs != all[j].a.totalNs {
			return all[i].a.totalNs > all[j].a.totalNs
		}
		if all[i].k.node != all[j].k.node {
			return all[i].k.node < all[j].k.node
		}
		return all[i].k.method < all[j].k.method
	})
	rows := make([]Row, 0, len(all))
	for _, e := range all {
		r := Row{
			Kind:      e.k.kind,
			Node:      e.k.node,
			Method:    e.k.method,
			Count:     e.a.count,
			Errors:    e.a.errors,
			ReqBytes:  e.a.reqBytes,
			RespBytes: e.a.respBytes,
			P99Ns:     e.a.lat.Percentile(99),
		}
		if e.a.count > 0 {
			r.AvgNs = e.a.totalNs / e.a.count
		}
		rows = append(rows, r)
	}
	return rows
}

// Get returns the aggregate for one (kind, node, method), if present.
func (c *Collector) Get(kind Kind, node string, m rpc.Method) (Row, bool) {
	for _, r := range c.Rows() {
		if r.Kind == kind && r.Node == node && r.Method == m {
			return r, true
		}
	}
	return Row{}, false
}

// Report writes the aggregate table.
func (c *Collector) Report(w io.Writer) {
	name := c.MethodName
	if name == nil {
		name = func(m rpc.Method) string { return fmt.Sprintf("0x%04x", uint16(m)) }
	}
	t := stats.NewTable("kind", "service", "method", "count", "err", "avg", "p99", "req bytes", "resp bytes")
	for _, r := range c.Rows() {
		t.AddRow(r.Kind, r.Node, name(r.Method), r.Count, r.Errors,
			stats.Dur(r.AvgNs), stats.Dur(r.P99Ns),
			stats.Bytes(r.ReqBytes), stats.Bytes(r.RespBytes))
	}
	io.WriteString(w, t.String())
}

// DumpSpans writes the retained span log chronologically by completion —
// a poor man's request waterfall for debugging a run.
func (c *Collector) DumpSpans(w io.Writer) {
	name := c.MethodName
	if name == nil {
		name = func(m rpc.Method) string { return fmt.Sprintf("0x%04x", uint16(m)) }
	}
	t := stats.NewTable("start", "dur", "kind", "node", "method", "peer", "req", "resp", "err")
	for _, s := range c.spans {
		errMark := ""
		if s.Err {
			errMark = "!"
		}
		t.AddRow(stats.Dur(s.Start), stats.Dur(s.Duration()), s.Kind, s.Node, name(s.Method),
			s.Peer, stats.Bytes(int64(s.ReqBytes)), stats.Bytes(int64(s.RespBytes)), errMark)
	}
	io.WriteString(w, t.String())
}

// Reset discards all collected data.
func (c *Collector) Reset() {
	c.byKey = make(map[aggKey]*agg)
	c.spans = c.spans[:0]
}
