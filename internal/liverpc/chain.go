package liverpc

import (
	"fmt"
	"io"
	"net"

	"repro/internal/apps"
	"repro/internal/live"
)

// The nested-RPC-calls application of paper §VI-B (Fig 5), ported from
// internal/msvc onto real sockets: a client calls service 0 with one
// payload argument; services 0..n-2 are pure data movers forwarding it
// untouched; the final service materializes the payload, aggregates it,
// and the 8-byte sum unwinds back up the chain. In by-ref mode each hop
// moves a ~21-byte Ref descriptor; in by-value mode each hop re-copies
// the whole payload — exactly the comparison Fig 5 makes.

// ChainMethod is the chain's service method name.
const ChainMethod = "chain.do"

// NewChainHop deploys one chain service. next is the downstream
// service's address; empty marks the terminal aggregator. dmc may be nil
// on pure movers running by-value (they never touch payload bytes) but
// the terminal needs one to materialize ref payloads.
func NewChainHop(name string, dmc DM, next string, cfg Config) *Service {
	s := NewService(name, dmc, cfg)
	s.Handle(ChainMethod, func(ctx *Ctx, args []Payload) ([]Payload, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("liverpc: chain.do wants 1 argument, got %d", len(args))
		}
		if next != "" {
			// Pure data mover: forward the argument without touching it
			// (the paper's ~60%-of-datacenter-traffic case). A ref payload
			// forwards as its descriptor; an inline one re-serializes.
			return ctx.Call(next, ChainMethod, args[0])
		}
		buf, err := ctx.Fetch(args[0])
		if err != nil {
			return nil, err
		}
		return []Payload{U64(apps.Aggregate(buf))}, nil
	})
	return s
}

// ChainClient drives a deployed chain.
type ChainClient struct {
	caller *Caller
	first  string
}

// NewChainClient builds a client stub targeting the chain's first hop.
func NewChainClient(dmc DM, first string, cfg Config) *ChainClient {
	return &ChainClient{caller: NewCaller(dmc, cfg), first: first}
}

// Close tears down the client's transport.
func (cc *ChainClient) Close() error { return cc.caller.Close() }

// Do issues one end-to-end chained request carrying payload and returns
// the terminal service's aggregate. Large payloads are staged once; the
// staged ref is released when the chain completes (even on error), since
// the chain only reads it.
func (cc *ChainClient) Do(payload []byte) (uint64, error) {
	arg, err := cc.caller.Stage(payload)
	if err != nil {
		return 0, err
	}
	defer cc.caller.Release(arg)
	res, err := cc.caller.Call(cc.first, ChainMethod, arg)
	if err != nil {
		return 0, err
	}
	if len(res) != 1 {
		return 0, fmt.Errorf("liverpc: chain returned %d payloads, want 1", len(res))
	}
	return res[0].AsU64()
}

// ChainPending is one in-flight pipelined chain request (see DoAsync).
type ChainPending struct {
	cc  *ChainClient
	arg Payload
	pc  *PendingCall
	err error
}

// DoAsync starts one chained request and returns a future: the payload is
// staged (one synchronous round trip to the DM pool when large), the call
// ships immediately, and Wait collects the aggregate later. Keeping a few
// requests in flight pipelines the chain — request i+1's staging and hop
// traversal overlap request i's — which is how a real producer drives it;
// payload must stay valid until Wait returns.
func (cc *ChainClient) DoAsync(payload []byte) *ChainPending {
	arg, err := cc.caller.Stage(payload)
	if err != nil {
		return &ChainPending{err: err}
	}
	return &ChainPending{cc: cc, arg: arg, pc: cc.caller.CallAsync(cc.first, ChainMethod, arg)}
}

// Wait blocks for one pipelined request's aggregate, releasing the staged
// ref (the chain only reads it). Call exactly once.
func (cp *ChainPending) Wait() (uint64, error) {
	if cp.err != nil {
		return 0, cp.err
	}
	res, err := cp.pc.Wait()
	cp.cc.caller.Release(cp.arg)
	if err != nil {
		return 0, err
	}
	if len(res) != 1 {
		return 0, fmt.Errorf("liverpc: chain returned %d payloads, want 1", len(res))
	}
	return res[0].AsU64()
}

// ChainDeployment is an in-process deployment of the whole chain app:
// one Service per hop (each with its own DM session, as separate
// processes would have) plus a client. Every piece talks over real
// loopback TCP, so the same code also runs split across processes — the
// hop and client constructors above are all a main() needs.
type ChainDeployment struct {
	Client *ChainClient
	Addrs  []string // per-hop service addresses, in chain order

	svcs []*Service
	dms  []io.Closer
	lns  []net.Listener
}

// DeployChain starts hops chain services on loopback listeners against
// the single-pool DM servers at dmAddrs and returns the running
// deployment. When cfg.ForceInline is set no DM sessions are opened at
// all (the by-value baseline needs none). Callers must Close the
// deployment.
func DeployChain(hops int, dmAddrs []string, cfg Config) (*ChainDeployment, error) {
	return DeployChainWith(hops, func() (DM, error) {
		cl, err := live.Dial(dmAddrs...)
		if err != nil {
			return nil, err
		}
		if err := cl.Register(); err != nil {
			cl.Close()
			return nil, err
		}
		return cl, nil
	}, cfg)
}

// DeployChainWith is DeployChain over an arbitrary DM-session factory —
// each hop (and the client) gets its own session, as separate processes
// would, so a sharded deployment passes a factory dialing a pool.Client.
// The factory is not called when cfg.ForceInline is set; sessions whose
// backend implements io.Closer are closed with the deployment.
func DeployChainWith(hops int, newSession func() (DM, error), cfg Config) (*ChainDeployment, error) {
	if hops < 1 {
		return nil, fmt.Errorf("liverpc: chain needs at least one hop")
	}
	d := &ChainDeployment{}
	// Listeners first, so every hop knows its successor's address.
	for i := 0; i < hops; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			d.Close()
			return nil, err
		}
		d.lns = append(d.lns, ln)
		d.Addrs = append(d.Addrs, ln.Addr().String())
	}
	newDM := func() (DM, error) {
		if cfg.ForceInline {
			return nil, nil
		}
		dmc, err := newSession()
		if err != nil {
			return nil, err
		}
		if cl, ok := dmc.(io.Closer); ok {
			d.dms = append(d.dms, cl)
		}
		return dmc, nil
	}
	for i := 0; i < hops; i++ {
		dmc, err := newDM()
		if err != nil {
			d.Close()
			return nil, err
		}
		next := ""
		if i < hops-1 {
			next = d.Addrs[i+1]
		}
		s := NewChainHop(fmt.Sprintf("chain-svc%d", i), dmc, next, cfg)
		d.svcs = append(d.svcs, s)
		go s.Serve(d.lns[i])
	}
	dmc, err := newDM()
	if err != nil {
		d.Close()
		return nil, err
	}
	d.Client = NewChainClient(dmc, d.Addrs[0], cfg)
	return d, nil
}

// Close tears down the client, every service, and their DM sessions.
func (d *ChainDeployment) Close() {
	if d.Client != nil {
		d.Client.Close()
	}
	for _, s := range d.svcs {
		s.Close()
	}
	for _, cl := range d.dms {
		cl.Close()
	}
	for _, ln := range d.lns {
		ln.Close()
	}
}
