package msvc

import (
	"bytes"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// TestAllApplicationsShareOnePlatform deploys every application on a
// single platform and interleaves traffic across them: method ids, ports
// and the DM pool must not collide, and each app must still behave.
func TestAllApplicationsShareOnePlatform(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation")
	}
	for _, mode := range []Mode{ModeDmNet, ModeDmCXL} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := DefaultConfig(mode)
			pl := NewPlatform(cfg)
			defer pl.Shutdown()

			ch := NewChain(pl, 3)
			lb := NewLBApp(pl, 2, 2)
			img := NewImageApp(pl, 2)
			sn := NewSocialNet(pl, SocialNetConfig{MediaSize: 4096, Clients: 1})
			bs := NewBlockStore(pl, 3, 2)
			pl.Start()
			if err := sn.Prepopulate(4); err != nil {
				t.Fatal(err)
			}

			payload := bytes.Repeat([]byte("mix"), 4096)
			img4k := payload[:4096]
			ops := []workload.Op{
				func(p *sim.Proc) error {
					sum, err := ch.Do(p, img4k)
					if err == nil && sum == 0 {
						t.Error("chain sum zero for nonzero payload")
					}
					return err
				},
				func(p *sim.Proc) error { return lb.Do(p, 0, img4k) },
				func(p *sim.Proc) error {
					out, err := img.Do(p, img4k)
					if err == nil && out[0] != img4k[0]^0x5A {
						t.Error("image transform wrong under mixed load")
					}
					return err
				},
				sn.ReadHome,
				sn.Compose,
				func(p *sim.Proc) error { return bs.Write(p, 5, payload) },
				func(p *sim.Proc) error {
					if _, err := bs.Read(p, 5); err != nil {
						return err
					}
					return nil
				},
			}
			var firstErr error
			for i, op := range ops {
				i, op := i, op
				pl.Eng.Spawn("mixed", func(p *sim.Proc) {
					// Seed the block before readers race it.
					if i == 6 {
						p.Sleep(sim.Millisecond)
					}
					for round := 0; round < 5; round++ {
						if err := op(p); err != nil && firstErr == nil {
							firstErr = err
							return
						}
					}
				})
			}
			pl.Eng.Run()
			if firstErr != nil {
				t.Fatal(firstErr)
			}
			// DM conservation still holds with five apps sharing the pool.
			for _, s := range pl.DMServers() {
				if err := s.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}
