package msvc

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/sim"
)

// MChain is the nested-chain forwarding method.
const MChain rpc.Method = 0x0400

// Chain is the nested-RPC-calls application of §VI-B: a client calls
// service 0 with an array argument; services 0..n-2 forward it untouched;
// the final service aggregates the array and the result unwinds back up
// the chain.
type Chain struct {
	pl     *Platform
	client *Service
	svcs   []*Service
}

// NewChain deploys a chain of hops services plus a client, each on its own
// host (one microservice per server, §VI-B). Call before Platform.Start.
func NewChain(pl *Platform, hops int) *Chain {
	if hops < 1 {
		panic("msvc: chain needs at least one hop")
	}
	ch := &Chain{pl: pl, client: pl.NewService("chain-client")}
	for i := 0; i < hops; i++ {
		ch.svcs = append(ch.svcs, pl.NewService(fmt.Sprintf("chain-svc%d", i)))
	}
	for i, s := range ch.svcs {
		if i < hops-1 {
			next := ch.svcs[i+1]
			s := s
			s.Node.Handle(MChain, func(ctx *rpc.Ctx, body []byte) ([]byte, error) {
				// Pure data mover: forwards the argument without touching
				// it (the paper's ~60% of datacenter traffic case).
				return pl.forward(ctx, s, next.Addr(), MChain, body)
			})
			continue
		}
		last := s
		last.Node.Handle(MChain, func(ctx *rpc.Ctx, body []byte) ([]byte, error) {
			pl.Overhead(ctx.P, last)
			arg := core.DecodeArg(rpc.NewDec(body))
			d, err := last.C.Open(ctx.P, arg)
			if err != nil {
				return nil, err
			}
			buf, err := d.Bytes(ctx.P)
			if err != nil {
				return nil, err
			}
			// Aggregate over local memory (Listing 1's worker loop); the
			// reduction itself is shared with the live port (internal/apps).
			last.Host.MemTouch(ctx.P, len(buf))
			sum := apps.Aggregate(buf)
			if err := d.Close(ctx.P); err != nil {
				return nil, err
			}
			return rpc.NewEnc(8).U64(sum).Bytes(), nil
		})
	}
	return ch
}

// Client returns the chain's client-side service (for workload generators
// that need its host).
func (ch *Chain) Client() *Service { return ch.client }

// Hops returns the number of services in the chain.
func (ch *Chain) Hops() int { return len(ch.svcs) }

// Do issues one end-to-end chained request carrying payload and returns
// the aggregate computed by the final service.
func (ch *Chain) Do(p *sim.Proc, payload []byte) (uint64, error) {
	arg, err := ch.client.C.MakeArg(p, payload)
	if err != nil {
		return 0, err
	}
	e := rpc.NewEnc(arg.WireSize())
	arg.Encode(e)
	resp, err := ch.client.Node.Call(p, ch.svcs[0].Addr(), MChain, e.Bytes())
	if err != nil {
		return 0, err
	}
	sum := rpc.NewDec(resp).U64()
	ch.client.C.ReleaseAsync(arg)
	return sum, nil
}
