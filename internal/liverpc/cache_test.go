package liverpc

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/live"
)

// dialCachedDM registers a DM session with a hot-ref cache enabled.
func dialCachedDM(t *testing.T, cacheBytes int64, addrs ...string) *live.Client {
	t.Helper()
	cl, err := live.DialConfig(live.ClientConfig{CacheBytes: cacheBytes}, addrs...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if err := cl.Register(); err != nil {
		t.Fatal(err)
	}
	return cl
}

// TestFetchRepeatHitsCache: a consumer that fetches the same ref payload
// repeatedly — the fan-out pattern where one staged argument feeds many
// calls — pays the wire once; every later Fetch and FetchLease is served
// from the session's hot-ref cache, byte-identical.
func TestFetchRepeatHitsCache(t *testing.T) {
	_, dmAddr := startDM(t, live.ServerConfig{NumPages: 256, PageSize: 4096, LeaseTTL: 2 * time.Second})
	producer := dialDM(t, dmAddr)
	consumer := dialCachedDM(t, 1<<20, dmAddr)

	pc := NewCaller(producer, Config{})
	defer pc.Close()
	cc := NewCaller(consumer, Config{})
	defer cc.Close()

	body := bytes.Repeat([]byte{0x5a}, 8192) // above the inline threshold
	p, err := pc.Stage(body)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsRef() {
		t.Fatal("payload inlined; the cache path needs a ref")
	}

	for i := 0; i < 3; i++ {
		got, err := cc.Fetch(p)
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("fetch %d returned wrong bytes", i)
		}
	}
	cs := consumer.CacheStats()
	if cs.Misses != 1 || cs.Hits < 2 {
		t.Fatalf("3 fetches should be 1 miss + 2 hits, got %+v", cs)
	}

	// FetchLease rides the same cache: the leased Buf is a retained hold
	// on the cached payload, released independently.
	b, err := cc.FetchLease(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), body) {
		t.Fatal("FetchLease returned wrong bytes")
	}
	b.Release()
	if after := consumer.CacheStats(); after.Hits <= cs.Hits {
		t.Fatalf("FetchLease did not hit the cache: %+v", after)
	}

	if err := pc.Release(p); err != nil {
		t.Fatal(err)
	}
}

// TestForceInlineBypassesCache pins the ForceInline contract: with
// pass-by-reference disabled nothing is ever staged, so no ref exists
// for the hot-ref cache to key on — CacheBytes is inert and every
// payload round-trips by value.
func TestForceInlineBypassesCache(t *testing.T) {
	_, dmAddr := startDM(t, smallDM())
	cdm := dialCachedDM(t, 1<<20, dmAddr)

	c := NewCaller(cdm, Config{ForceInline: true})
	defer c.Close()

	body := bytes.Repeat([]byte{0x11}, 8192)
	p, err := c.Stage(body)
	if err != nil {
		t.Fatal(err)
	}
	if p.IsRef() {
		t.Fatal("ForceInline staged a ref")
	}
	got, err := c.Fetch(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("inline fetch returned wrong bytes")
	}
	if cs := cdm.CacheStats(); cs.Hits != 0 || cs.Misses != 0 || cs.Admits != 0 {
		t.Fatalf("inline-only traffic touched the cache: %+v", cs)
	}
}
