// Package store implements the "distributed in-memory data store" baseline
// the paper compares against (§III-A, §VI-D): a Ray/Plasma-style object
// store service on every host, plus a Spark-flavoured variant with
// serialization costs.
//
// The architecture is deliberately the one the paper criticizes:
//
//   - Put: the caller copies the whole object from its heap into its local
//     store service over IPC (copy #1) and receives an immutable ObjectRef.
//   - Get on a remote host: the callee's local store fetches the *entire*
//     object from the owner's store across the network — even if only a
//     small portion is needed — and the callee then copies it from the
//     local store into its heap (copy #2).
//   - Objects are immutable: mutation happens on the private heap copy;
//     sharing a mutation means Putting a brand-new object.
//
// The IPC latency and copy costs are what give DmRPC its Fig 8 margins; the
// network fetch of the full object is what the paper's "even if the callee
// only needs to access a small portion" argument refers to.
package store

import (
	"fmt"

	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// MFetch is the store-to-store object fetch method.
const MFetch rpc.Method = 0x0300

const statusNoObject = 2

// ErrNoObject is returned when a ref points to a missing object.
var ErrNoObject = fmt.Errorf("store: no such object")

// Config tunes a store node.
type Config struct {
	// IPCLatency is charged per client<->store interaction (Plasma-style
	// create/seal/get round trips).
	IPCLatency sim.Time
	// SerializeBandwidth, when positive, charges serialization on Put and
	// deserialization on Get at this many bytes per second (the Spark
	// flavour). Zero disables it (the Ray flavour, raw bytes).
	SerializeBandwidth int64
	// RPC configures the store service node.
	RPC rpc.Config
}

// RayConfig models Ray's Plasma store as observed from a driver: each
// client<->store interaction is a create/seal/get sequence of IPC round
// trips plus driver-side bookkeeping, which lands in the ~100 µs range per
// interaction in published measurements. Raw buffers skip serialization.
func RayConfig() Config {
	return Config{
		IPCLatency: 100 * sim.Microsecond,
		RPC:        rpc.DefaultConfig(),
	}
}

// SparkConfig models Spark's BlockTransferService: a heavier JVM-side
// management path and per-byte serialization.
func SparkConfig() Config {
	return Config{
		IPCLatency:         250 * sim.Microsecond,
		SerializeBandwidth: 1_000_000_000, // 1 GB/s ser/deser
		RPC:                rpc.DefaultConfig(),
	}
}

// ObjectRef names an immutable object in some host's store.
type ObjectRef struct {
	Owner simnet.Addr // store service holding the primary copy
	ID    uint64
	Size  int64
}

// Encode appends the ref to an RPC message.
func (r ObjectRef) Encode(e *rpc.Enc) {
	e.U32(uint32(r.Owner.Host)).U32(uint32(r.Owner.Port)).U64(r.ID).I64(r.Size)
}

// DecodeObjectRef reads an ObjectRef from an RPC message.
func DecodeObjectRef(d *rpc.Dec) ObjectRef {
	return ObjectRef{
		Owner: simnet.Addr{Host: simnet.HostID(d.U32()), Port: int(d.U32())},
		ID:    d.U64(),
		Size:  d.I64(),
	}
}

// Node is the object store service running on one host.
type Node struct {
	node    *rpc.Node
	cfg     Config
	objects map[uint64][]byte
	nextID  uint64

	fetchesServed int64
	bytesServed   int64
}

// NewNode creates a store service on host h at port.
func NewNode(h *simnet.Host, port int, cfg Config) *Node {
	n := &Node{
		node:    rpc.NewNode(h, port, h.Name()+"/store", cfg.RPC),
		cfg:     cfg,
		objects: make(map[uint64][]byte),
	}
	n.node.Handle(MFetch, n.handleFetch)
	return n
}

// Start launches the store's RPC stack.
func (n *Node) Start() { n.node.Start() }

// Addr returns the store service's address.
func (n *Node) Addr() simnet.Addr { return n.node.Addr() }

// Host returns the host this store runs on.
func (n *Node) Host() *simnet.Host { return n.node.Host() }

// Objects returns how many objects the store holds.
func (n *Node) Objects() int { return len(n.objects) }

// FetchesServed returns how many remote fetches this store answered.
func (n *Node) FetchesServed() int64 { return n.fetchesServed }

// BytesServed returns how many object bytes this store shipped remotely.
func (n *Node) BytesServed() int64 { return n.bytesServed }

func (n *Node) handleFetch(ctx *rpc.Ctx, body []byte) ([]byte, error) {
	d := rpc.NewDec(body)
	id := d.U64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	obj, ok := n.objects[id]
	if !ok {
		return nil, &rpc.AppError{Status: statusNoObject, Msg: ErrNoObject.Error()}
	}
	n.fetchesServed++
	n.bytesServed += int64(len(obj))
	// The store streams the object out of its memory.
	n.node.Host().MemTouch(ctx.P, len(obj))
	return obj, nil
}

// serdes charges Spark-style serialization time for size bytes, if enabled.
func (n *Node) serdes(p *sim.Proc, size int) {
	if n.cfg.SerializeBandwidth > 0 {
		p.Sleep(sim.Time(int64(size) * int64(sim.Second) / n.cfg.SerializeBandwidth))
	}
}

// Client is a process's handle on its host-local store service. A client
// must live on the same host as its store (Plasma is a local daemon).
type Client struct {
	local *Node
}

// NewClient returns a client of the host-local store node.
func NewClient(local *Node) *Client { return &Client{local: local} }

// Put copies data from the process heap into the local store and returns
// an immutable reference (IPC round trip + one full copy + optional
// serialization).
func (c *Client) Put(p *sim.Proc, data []byte) (ObjectRef, error) {
	n := c.local
	p.Sleep(n.cfg.IPCLatency)
	n.serdes(p, len(data))
	n.node.Host().Memcpy(p, len(data)) // heap -> store copy
	buf := make([]byte, len(data))
	copy(buf, data)
	// IDs embed the owner host so replicas cached under the same id on
	// other stores can never collide with their local primaries.
	id := uint64(n.Addr().Host)<<32 | n.nextID
	n.nextID++
	n.objects[id] = buf
	return ObjectRef{Owner: n.Addr(), ID: id, Size: int64(len(buf))}, nil
}

// Get returns a private heap copy of the referenced object. A local hit
// costs an IPC round trip plus the store->heap copy; a remote object is
// first fetched whole into the local store across the network, then copied
// to the heap — the two unconditional copies of §III-A.
func (c *Client) Get(p *sim.Proc, ref ObjectRef) ([]byte, error) {
	n := c.local
	p.Sleep(n.cfg.IPCLatency)
	obj, ok := n.objects[ref.ID]
	if !ok {
		if n.Addr() == ref.Owner {
			return nil, ErrNoObject
		}
		resp, err := n.node.Call(p, ref.Owner, MFetch, rpc.NewEnc(8).U64(ref.ID).Bytes())
		if err != nil {
			if ae, isApp := err.(*rpc.AppError); isApp && ae.Status == statusNoObject {
				return nil, ErrNoObject
			}
			return nil, err
		}
		// Land the replica in the local store (write pass). IDs are
		// owner-qualified, so replicas never collide with local primaries.
		n.node.Host().MemTouch(p, len(resp))
		obj = resp
		n.objects[ref.ID] = obj
	}
	n.serdes(p, len(obj))
	n.node.Host().Memcpy(p, len(obj)) // store -> heap copy
	out := make([]byte, len(obj))
	copy(out, obj)
	return out, nil
}

// Delete removes the local copy of an object (owner-side eviction).
func (c *Client) Delete(ref ObjectRef) {
	delete(c.local.objects, ref.ID)
}
