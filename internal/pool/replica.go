package pool

import (
	"errors"
	"math/rand/v2"
	"sort"
	"time"

	"repro/internal/dm"
	"repro/internal/dmwire"
	"repro/internal/live"
)

// R-way replication for staged payloads (DESIGN.md §D13).
//
// Placement invariant: a replicated ref's copies live on the R distinct
// ring successors of its key — a pure function of (key, membership), so
// any client holding the cluster map can locate every replica from the
// bare 8-byte key, with no directory service. The pool mints the key
// itself (dmwire.ReplicaKeyBit set, so it can never collide with a
// server's own counter-minted keys) and stages the same payload under it
// on every successor via MStageAt.
//
// The model is the Kademlia one (K-closest placement + republish to the
// CURRENT closest nodes): each staging client tracks its own replicated
// refs and keeps them fully replicated as membership changes. Read
// failover is stateless — any reader probes the successors — but repair
// responsibility follows the ref's producer.

// refMeta is the tracked state of one replicated ref staged by this
// client. replicas is guarded by Client.refMu.
type refMeta struct {
	size     int64
	replicas []uint32 // shards believed to hold a copy
}

// replicaFactor returns the effective R (>= 1).
func (p *Client) replicaFactor() int {
	if p.cfg.ReplicaFactor <= 1 {
		return 1
	}
	return p.cfg.ReplicaFactor
}

// mintKey mints a cluster-wide replica key: uniformly random with
// dmwire.ReplicaKeyBit set, re-drawn on the (vanishing) chance it is
// already tracked locally. Cross-client collisions surface as
// dm.ErrRefExists at stage time and re-mint there.
func (p *Client) mintKey() uint64 {
	for {
		k := rand.Uint64() | dmwire.ReplicaKeyBit
		p.refMu.Lock()
		_, dup := p.refs[k]
		p.refMu.Unlock()
		if !dup {
			return k
		}
	}
}

// track records a freshly staged replicated ref for the repairer.
func (p *Client) track(key uint64, size int64, replicas []uint32) {
	cp := append([]uint32(nil), replicas...)
	p.refMu.Lock()
	p.refs[key] = &refMeta{size: size, replicas: cp}
	p.refMu.Unlock()
}

// untrack forgets a ref (FreeRef).
func (p *Client) untrack(key uint64) {
	p.refMu.Lock()
	delete(p.refs, key)
	p.refMu.Unlock()
}

// addReplica records that shard id now holds a copy of key.
func (p *Client) addReplica(key uint64, id uint32) {
	p.refMu.Lock()
	if m, ok := p.refs[key]; ok {
		have := false
		for _, r := range m.replicas {
			if r == id {
				have = true
				break
			}
		}
		if !have {
			m.replicas = append(m.replicas, id)
		}
	}
	p.refMu.Unlock()
}

// invalidateShard drops shard id from every tracked replica set: the
// server restarted with a fresh session, so the copies it held are gone.
// Pool-cached payloads homed on it go too — the fresh session starts a
// new epoch history, so cached entries can no longer be tied to it
// (§D15).
func (p *Client) invalidateShard(id uint32) {
	p.cache.InvalidateServer(id)
	p.refMu.Lock()
	for _, m := range p.refs {
		kept := m.replicas[:0]
		for _, r := range m.replicas {
			if r != id {
				kept = append(kept, r)
			}
		}
		m.replicas = kept
	}
	p.refMu.Unlock()
}

// Replicas returns the shard IDs believed to hold ref, primary first
// where known: the tracked set for refs staged by this client, else —
// for replicated refs minted elsewhere — the current ring successors of
// the key. Single-copy refs (server-minted key) return nil.
func (p *Client) Replicas(ref dm.Ref) []uint32 {
	if ref.Key&dmwire.ReplicaKeyBit == 0 {
		return nil
	}
	p.refMu.Lock()
	if m, ok := p.refs[ref.Key]; ok {
		out := append([]uint32(nil), m.replicas...)
		p.refMu.Unlock()
		return out
	}
	p.refMu.Unlock()
	r := p.replicaFactor()
	if r < 2 {
		r = 2 // a foreign replicated ref has at least 2 copies to probe
	}
	return p.ring.Successors(ref.Key, r)
}

// candidates builds the read-failover order for ref: the ref's own
// Server field, then the tracked/derived replica set, then any wire
// hints (a v2 ref's shard list, possibly stale), then the current ring
// successors — deduplicated, healthy shards first. Unhealthy candidates
// stay at the tail: an ejected shard may still answer (ejection is a
// heartbeat verdict, not proof of death), and trying it last costs
// nothing when everything else failed.
func (p *Client) candidates(ref dm.Ref, hints []uint32) []uint32 {
	ids := make([]uint32, 0, 8)
	ids = append(ids, ref.Server)
	ids = append(ids, p.Replicas(ref)...)
	ids = append(ids, hints...)
	if ref.Key&dmwire.ReplicaKeyBit != 0 {
		r := p.replicaFactor()
		if r < 2 {
			r = 2
		}
		ids = append(ids, p.ring.Successors(ref.Key, r)...)
	}
	seen := make(map[uint32]struct{}, len(ids))
	healthy := make([]uint32, 0, len(ids))
	var sick []uint32
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		// Out-of-cluster IDs stay in the list (classified unhealthy) so
		// byID can surface dm.ErrBadAddress instead of silently skipping.
		if int(id) < len(p.shards) && p.shards[id].healthy.Load() {
			healthy = append(healthy, id)
		} else {
			sick = append(sick, id)
		}
	}
	return append(healthy, sick...)
}

// failoverWorthy reports whether err on one replica justifies trying the
// next: range violations are deterministic (every replica holds the same
// snapshot), everything else — unknown ref (restarted shard), reaped
// session, connection loss, deadline — may be replica-local.
func failoverWorthy(err error) bool {
	return !errors.Is(err, dm.ErrOutOfRange)
}

// ReadRefFrom is ReadRef with explicit replica hints (e.g. the shard
// list carried by a v2 wire ref from another process). Whole-object
// reads are served through the pool's hot-ref cache when enabled —
// checked before shard routing, so a hit costs no RPC at all; a miss
// runs the wire path below, which still fails over across replicas.
func (p *Client) ReadRefFrom(ref dm.Ref, hints []uint32, off int64, dst []byte) error {
	if p.refCacheable(ref, off, int64(len(dst))) {
		b, err := p.cachedRead(ref, hints)
		if err != nil {
			return err
		}
		copy(dst, b.Bytes())
		b.Release()
		return nil
	}
	return p.readRefFromWire(ref, hints, off, dst)
}

// readRefFromWire is ReadRefFrom's wire path: candidates are tried in
// failover order; a success on any non-first candidate counts as a
// failover read.
func (p *Client) readRefFromWire(ref dm.Ref, hints []uint32, off int64, dst []byte) error {
	local := ref
	local.Server = 0
	var lastErr error
	for _, id := range p.candidates(ref, hints) {
		s, err := p.byID(id)
		if err != nil {
			lastErr = err
			continue
		}
		if err := s.cl.ReadRef(local, off, dst); err == nil {
			// Served by anyone but the ref's own primary = a failover
			// read (an ejected primary is skipped, not "tried first").
			if id != ref.Server {
				p.failoverReads.Add(1)
				s.failoverServed.Add(1)
			}
			return nil
		} else {
			lastErr = err
			if !failoverWorthy(err) {
				return err
			}
		}
	}
	if lastErr == nil {
		lastErr = dm.ErrBadRef
	}
	return lastErr
}

// readRefFailover finishes a by-ref read whose first attempt (against
// shard `tried`) already failed with firstErr: the remaining candidates
// are probed in failover order. Used by ReadRefAsync's Wait path.
func (p *Client) readRefFailover(ref dm.Ref, off int64, dst []byte, tried uint32, firstErr error) error {
	if !failoverWorthy(firstErr) {
		return firstErr
	}
	local := ref
	local.Server = 0
	lastErr := firstErr
	for _, id := range p.candidates(ref, nil) {
		if id == tried {
			continue
		}
		s, err := p.byID(id)
		if err != nil {
			lastErr = err
			continue
		}
		if err := s.cl.ReadRef(local, off, dst); err == nil {
			p.failoverReads.Add(1)
			s.failoverServed.Add(1)
			return nil
		} else {
			lastErr = err
			if !failoverWorthy(err) {
				return err
			}
		}
	}
	return lastErr
}

// ReadRefLeaseFrom is ReadRefLease with explicit replica hints and the
// same failover order as ReadRefFrom. A whole-object read that hits the
// pool cache returns the cached Buf retained — zero copies, zero RPCs;
// the caller must Release it exactly once either way.
func (p *Client) ReadRefLeaseFrom(ref dm.Ref, hints []uint32, off, size int64) (*live.Buf, error) {
	if p.refCacheable(ref, off, size) {
		return p.cachedRead(ref, hints)
	}
	return p.readRefLeaseFromWire(ref, hints, off, size)
}

// readRefLeaseFromWire is ReadRefLeaseFrom's wire path (also the cache
// loader, which is why it must not consult the cache itself).
func (p *Client) readRefLeaseFromWire(ref dm.Ref, hints []uint32, off, size int64) (*live.Buf, error) {
	local := ref
	local.Server = 0
	var lastErr error
	for _, id := range p.candidates(ref, hints) {
		s, err := p.byID(id)
		if err != nil {
			lastErr = err
			continue
		}
		b, err := s.cl.ReadRefLease(local, off, size)
		if err == nil {
			if id != ref.Server {
				p.failoverReads.Add(1)
				s.failoverServed.Add(1)
			}
			return b, nil
		}
		lastErr = err
		if !failoverWorthy(err) {
			return nil, err
		}
	}
	if lastErr == nil {
		lastErr = dm.ErrBadRef
	}
	return nil, lastErr
}

// freeReplicated frees a replicated ref on every shard that may hold a
// copy. Replicas the repairer already lost race-free report dm.ErrBadRef
// and are ignored; the free succeeds when at least one copy was
// released.
func (p *Client) freeReplicated(ref dm.Ref) error {
	cands := p.candidates(ref, nil)
	p.untrack(ref.Key)
	local := ref
	local.Server = 0
	freed := false
	var lastErr error
	for _, id := range cands {
		s, err := p.byID(id)
		if err != nil {
			continue
		}
		switch err := s.cl.FreeRef(local); {
		case err == nil:
			freed = true
		case errors.Is(err, dm.ErrBadRef):
			// this shard never got (or already lost) its copy
		default:
			lastErr = err
		}
	}
	if freed {
		return nil
	}
	if lastErr != nil {
		return lastErr
	}
	return dm.ErrBadRef
}

// --- replicated staging ---

// maxStageAttempts bounds key re-mints on cross-client key collisions
// (a random 63-bit draw matching a foreign live ref — astronomically
// rare, but the loop must terminate).
const maxStageAttempts = 3

// repStage is an in-flight replicated stage: one minted key, one
// pipelined MStageAt fan-out to the key's ring successors.
type repStage struct {
	p       *Client
	key     uint64
	data    []byte
	attempt int
	targets []uint32
	futs    []*live.AsyncRef
}

// stageReplicatedAsync mints a cluster key and starts the fan-out; the
// returned AsyncRef's Wait collects the copies and tracks the ref.
func (p *Client) stageReplicatedAsync(data []byte, attempt int) *AsyncRef {
	key := p.mintKey()
	targets := p.ring.Successors(key, p.replicaFactor())
	if len(targets) == 0 {
		return &AsyncRef{err: ErrNoShards}
	}
	rs := &repStage{p: p, key: key, data: data, attempt: attempt, targets: targets}
	rs.futs = make([]*live.AsyncRef, len(targets))
	for i, id := range targets {
		s, err := p.byID(id)
		if err != nil {
			continue
		}
		// Index 0: each shard's live client is single-address.
		rs.futs[i] = s.cl.StageRefAtAsync(0, key, data)
	}
	return &AsyncRef{rep: rs}
}

// wait collects the fan-out. The stage succeeds when at least one copy
// lands (missing replicas are handed to the repairer); a key collision
// frees what landed and retries under a fresh key.
func (rs *repStage) wait() (dm.Ref, error) {
	var placed []uint32
	var collided bool
	var lastErr error
	for i, f := range rs.futs {
		if f == nil {
			continue
		}
		switch _, err := f.Wait(); {
		case err == nil:
			placed = append(placed, rs.targets[i])
		case errors.Is(err, dm.ErrRefExists):
			collided = true
		default:
			lastErr = err
		}
	}
	if collided {
		// Another client owns this key. Roll back our copies and re-mint.
		local := dm.Ref{Key: rs.key, Size: int64(len(rs.data))}
		for _, id := range placed {
			if s, err := rs.p.byID(id); err == nil {
				s.cl.FreeRef(local)
			}
		}
		if rs.attempt+1 >= maxStageAttempts {
			return dm.Ref{}, dm.ErrRefExists
		}
		return rs.p.stageReplicatedAsync(rs.data, rs.attempt+1).Wait()
	}
	if len(placed) == 0 {
		if lastErr == nil {
			lastErr = ErrNoShards
		}
		return dm.Ref{}, lastErr
	}
	ref := dm.Ref{Server: placed[0], Key: rs.key, Size: int64(len(rs.data))}
	rs.p.track(rs.key, ref.Size, placed)
	if len(placed) < len(rs.targets) {
		rs.p.kickRepair() // born under-replicated
	}
	return ref, nil
}

// --- repair ---

// kickRepair schedules an immediate repair pass (coalescing with any
// pass already pending).
func (p *Client) kickRepair() {
	select {
	case p.repairKick <- struct{}{}:
	default:
	}
}

// repairBPS returns the effective repair bandwidth bound in bytes/sec
// (0 = unlimited).
func (p *Client) repairBPS() int64 {
	switch b := p.cfg.RepairBytesPerSec; {
	case b == 0:
		return 32 << 20
	case b < 0:
		return 0
	default:
		return b
	}
}

// repairLoop is the background repairer: woken by topology changes
// (ejection and rejoin kick it) and by the periodic scan, it walks the
// tracked refs and restores full replication.
func (p *Client) repairLoop() {
	defer p.wg.Done()
	interval := p.cfg.RepairInterval
	if interval == 0 {
		interval = 2 * time.Second
	}
	var tickC <-chan time.Time
	if interval > 0 {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		tickC = tick.C
	}
	for {
		select {
		case <-p.stop:
			return
		case <-p.repairKick:
		case <-tickC:
		}
		p.repairPass()
	}
}

// repairPass walks every tracked ref once: for each, the wanted set is
// the CURRENT ring successors of its key (the Kademlia republish rule),
// the repair targets are wanted shards without a copy, and the source is
// any healthy shard that has one. Copies are paced against the
// repair-bandwidth budget so a large backlog can't starve foreground
// traffic. A re-stage answered with dm.ErrRefExists means another
// repairer (or the races rejoined shard itself) beat us — that is
// success, not failure.
func (p *Client) repairPass() {
	r := p.replicaFactor()
	if r <= 1 {
		return
	}
	bps := p.repairBPS()

	p.refMu.Lock()
	keys := make([]uint64, 0, len(p.refs))
	for k := range p.refs {
		keys = append(keys, k)
	}
	p.refMu.Unlock()
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	for _, key := range keys {
		select {
		case <-p.stop:
			return
		default:
		}
		p.refMu.Lock()
		m, ok := p.refs[key]
		var have []uint32
		var size int64
		if ok {
			have = append([]uint32(nil), m.replicas...)
			size = m.size
		}
		p.refMu.Unlock()
		if !ok {
			continue // freed since the snapshot
		}

		haveSet := make(map[uint32]struct{}, len(have))
		var sources []uint32
		for _, id := range have {
			haveSet[id] = struct{}{}
			if int(id) < len(p.shards) && p.shards[id].healthy.Load() {
				sources = append(sources, id)
			}
		}
		want := p.ring.Successors(key, r)
		var targets []uint32
		for _, id := range want {
			if _, has := haveSet[id]; !has {
				targets = append(targets, id)
			}
		}
		if len(targets) == 0 || len(sources) == 0 {
			continue // fully replicated, or nothing live to copy from
		}

		buf := make([]byte, size)
		local := dm.Ref{Key: key, Size: size}
		got := false
		for _, src := range sources {
			if err := p.shards[src].cl.ReadRef(local, 0, buf); err == nil {
				got = true
				break
			}
		}
		if !got {
			p.repairErrors.Add(1)
			continue
		}
		copied := int64(0)
		for _, tgt := range targets {
			s := p.shards[tgt]
			if !s.healthy.Load() {
				continue
			}
			switch _, err := s.cl.StageRefAt(0, key, buf); {
			case err == nil:
				copied += size
				p.repairBytes.Add(size)
				fallthrough
			case err != nil && errors.Is(err, dm.ErrRefExists):
				p.repairsDone.Add(1)
				s.repairsIn.Add(1)
				p.addReplica(key, tgt)
			default:
				p.repairErrors.Add(1)
			}
		}
		// Bandwidth budget: sleep off the bytes just copied before the
		// next ref, bounding sustained repair throughput at ~bps.
		if bps > 0 && copied > 0 {
			d := time.Duration(float64(copied) / float64(bps) * float64(time.Second))
			t := time.NewTimer(d)
			select {
			case <-p.stop:
				t.Stop()
				return
			case <-t.C:
			}
		}
	}
}

// --- observability ---

// UnderReplicated is the repair-progress gauge: the number of tracked
// replicated refs with fewer live replicas than the target (R, or the
// current member count when the ring has shrunk below R). It returns to
// zero when repair has converged.
func (p *Client) UnderReplicated() int {
	r := p.replicaFactor()
	if r <= 1 {
		return 0
	}
	members := p.ring.Size()
	want := r
	if members < want {
		want = members
	}
	if want == 0 {
		return 0
	}
	n := 0
	p.refMu.Lock()
	defer p.refMu.Unlock()
	for _, m := range p.refs {
		alive := 0
		for _, id := range m.replicas {
			if int(id) < len(p.shards) && p.shards[id].healthy.Load() {
				alive++
			}
		}
		if alive < want {
			n++
		}
	}
	return n
}

// ReplicaFactorEffective returns the effective replica factor (>= 1;
// the configured R clamped into its valid range at Dial).
func (p *Client) ReplicaFactorEffective() int { return p.replicaFactor() }

// TrackedRefs returns the number of replicated refs this client is
// responsible for repairing.
func (p *Client) TrackedRefs() int {
	p.refMu.Lock()
	defer p.refMu.Unlock()
	return len(p.refs)
}

// FailoverReads returns how many reads were served by a non-primary
// replica after the first-choice shard failed.
func (p *Client) FailoverReads() int64 { return p.failoverReads.Load() }

// RepairsDone returns how many replica copies the repairer has restored
// (including re-stages another repairer won).
func (p *Client) RepairsDone() int64 { return p.repairsDone.Load() }

// RepairErrors returns how many repair reads/stages failed.
func (p *Client) RepairErrors() int64 { return p.repairErrors.Load() }

// RepairBytes returns the payload bytes the repairer has copied.
func (p *Client) RepairBytes() int64 { return p.repairBytes.Load() }

// ReplicaStat is one shard's replication counters (dmctl pool stats).
type ReplicaStat struct {
	Shard   uint32
	Healthy bool
	// RefsPrimary counts tracked refs whose first replica (the Server
	// field handed to the application) is this shard.
	RefsPrimary int
	// RefsReplica counts tracked replica copies on this shard, primary
	// included.
	RefsReplica int
	// FailoverReads counts reads this shard served as a fallback replica.
	FailoverReads int64
	// RepairsIn counts replica copies repaired onto this shard.
	RepairsIn int64
}

// ReplicaStats snapshots per-shard replication counters, indexed by
// shard ID.
func (p *Client) ReplicaStats() []ReplicaStat {
	out := make([]ReplicaStat, len(p.shards))
	for i, s := range p.shards {
		out[i] = ReplicaStat{
			Shard:         s.id,
			Healthy:       s.healthy.Load(),
			FailoverReads: s.failoverServed.Load(),
			RepairsIn:     s.repairsIn.Load(),
		}
	}
	p.refMu.Lock()
	for _, m := range p.refs {
		for j, id := range m.replicas {
			if int(id) >= len(out) {
				continue
			}
			out[id].RefsReplica++
			if j == 0 {
				out[id].RefsPrimary++
			}
		}
	}
	p.refMu.Unlock()
	return out
}
