package live

import (
	"fmt"
	"time"

	"repro/internal/dm"
	"repro/internal/dmwire"
	"repro/internal/rpc"
)

// Asynchronous calls: CallAsync ships the request immediately (through
// the connection's coalescing writer, so a burst of futures issued
// back-to-back group-commits into few vectored writes) and returns a
// future; Wait collects the response later, with the same deadline,
// retry, and dedup semantics as the synchronous path. Pipelining several
// calls per connection is what turns the batch writer's group commit
// from a possibility into a certainty — one caller, many frames in
// flight.

// Pending is one in-flight asynchronous call. It is not safe for
// concurrent use, and Wait must be called exactly once: an abandoned
// Pending leaks its pending-table entry until the connection dies.
type Pending struct {
	n        *Node
	addr     string
	m        rpc.Method
	hdr      []byte
	payload  []byte
	opts     CallOpts
	deadline time.Time // overall, spans retries
	attDL    time.Time // first attempt's deadline
	start    time.Time // submission instant, for the latency histogram
	gate     *creditGate
	c        *conn
	id       uint64
	ch       chan response
	err      error // submission failure, surfaced (and maybe retried) in Wait
}

// CallAsync starts method m at addr and returns a future for the
// response. The request is handed to the wire immediately; errors —
// including submission failures — surface from Wait, which also runs the
// retry loop, so hdr and payload must stay valid and unmodified until
// Wait returns. opts follows CallConsumeOpts.
//
// Submission first acquires one session credit for addr (credit.go):
// past the server-advertised window of in-flight async calls, CallAsync
// blocks until a completion frees a credit, or sheds with ErrCredits at
// the attempt deadline — bounded queueing instead of an unbounded
// pending map when the server stalls. The credit is returned when Wait
// completes.
func (n *Node) CallAsync(addr string, m rpc.Method, hdr, payload []byte, opts CallOpts) *Pending {
	p := &Pending{n: n, addr: addr, m: m, hdr: hdr, payload: payload, opts: opts, start: time.Now()}
	p.deadline = n.overallDeadline(opts)
	p.attDL = n.attemptDeadline(p.deadline)
	if g := n.gateFor(addr); g != nil {
		waited, err := g.acquire(p.attDL)
		if waited {
			n.ops.creditWaits.Add(1)
		}
		if err != nil {
			n.ops.creditSheds.Add(1)
			p.err = err
			return p
		}
		p.gate = g
	}
	c, err := n.peer(addr, p.attDL)
	if err != nil {
		p.err = err
		return p
	}
	p.c = c
	p.id, p.ch, p.err = c.send(m, hdr, payload, p.attDL, opts.Token, false)
	return p
}

// Wait blocks for the response and hands the pooled body to consume
// (which must not retain it), exactly like CallConsumeOpts. A transient
// failure of the in-flight attempt — including a submission error from
// CallAsync — is retried with full re-sends when the call is idempotent
// or tokened.
func (p *Pending) Wait(consume func(resp []byte) error) error {
	return p.wait(consumer{fn: consume})
}

// wait is Wait's consumer-typed core; it also releases the session
// credit held since CallAsync and records the call's submission-to-
// completion latency.
func (p *Pending) wait(cons consumer) error {
	first := func() error {
		if p.err != nil {
			return p.err
		}
		return p.c.await(p.m, p.id, p.ch, p.attDL, cons)
	}
	again := func() error {
		return p.n.attempt(p.addr, p.m, p.hdr, p.payload, cons, p.deadline, p.opts.Token)
	}
	err := p.n.withRetries(p.opts, p.deadline, first, again)
	if p.gate != nil {
		p.gate.release()
		p.gate = nil
	}
	p.n.lat.Record(time.Since(p.start).Nanoseconds())
	return err
}

// AsyncOp is one in-flight asynchronous Client operation; Wait must be
// called exactly once.
type AsyncOp struct {
	p       *Pending
	err     error
	consume func(resp []byte) error
	// complete, when set, is a pre-resolved result (a hot-ref cache hit
	// that never touched the wire); Wait runs it exactly once, which is
	// where the cached Buf's hold is consumed.
	complete func() error
}

// Wait blocks for the operation's result.
func (op *AsyncOp) Wait() error {
	if op.err != nil {
		return op.err
	}
	if op.complete != nil {
		return op.complete()
	}
	return op.p.Wait(op.consume)
}

// WriteAsync starts an rwrite of src at addr and returns a future. src
// rides the socket with no marshal copy (or is coalesced when small) and
// must stay valid and unmodified until Wait returns — it is re-sent if
// the call retries. Issue several and Wait in order to pipeline writes
// over one connection.
func (cl *Client) WriteAsync(addr dm.RemoteAddr, src []byte) *AsyncOp {
	idx, raw := splitAddr(addr)
	srv, pid, err := cl.server(idx)
	if err != nil {
		return &AsyncOp{err: err}
	}
	if err := checkWireRange("write", 0, int64(len(src))); err != nil {
		return &AsyncOp{err: err}
	}
	return &AsyncOp{p: cl.node.CallAsync(srv, dmwire.MWrite,
		dmwire.WriteReq{PID: pid, Addr: raw}.MarshalHdr(), src, idemOpts())}
}

// ReadRefAsync starts a by-ref read into dst and returns a future; dst is
// filled when Wait returns nil and must not be read before that. A
// whole-object read that hits the hot-ref cache resolves without
// touching the wire (the copy into dst is deferred to Wait); a cacheable
// miss offers the fetched payload for admission.
func (cl *Client) ReadRefAsync(ref dm.Ref, off int64, dst []byte) *AsyncOp {
	cacheable := cl.refCacheable(ref, off, int64(len(dst)))
	if cacheable {
		if b, ok := cl.cache.Get(refCacheKey(ref)); ok {
			return &AsyncOp{complete: func() error {
				copy(dst, b.Bytes())
				b.Release()
				return nil
			}}
		}
	}
	srv, _, err := cl.server(int(ref.Server))
	if err != nil {
		return &AsyncOp{err: err}
	}
	if err := checkWireRange("readref", off, int64(len(dst))); err != nil {
		return &AsyncOp{err: err}
	}
	return &AsyncOp{
		p: cl.node.CallAsync(srv, dmwire.MReadRef,
			dmwire.ReadRefReq{Key: ref.Key, Off: uint32(off), Size: uint32(len(dst))}.Marshal(), nil, idemOpts()),
		consume: func(resp []byte) error {
			if len(resp) != len(dst) {
				return fmt.Errorf("live: readref returned %d bytes, want %d", len(resp), len(dst))
			}
			copy(dst, resp)
			if cacheable {
				// Admission copies the payload (the pooled resp cannot be
				// retained); mk runs only if the sketch admits the key.
				cl.cache.Add(refCacheKey(ref), ref.Size, cl.cacheTTL(int(ref.Server)),
					func() *Buf { return NewBuf(resp) })
			}
			return nil
		},
	}
}

// AsyncRef is an in-flight StageRefAsync; Wait must be called exactly
// once and yields the staged ref.
type AsyncRef struct {
	op     AsyncOp
	server uint32
	size   int64
	key    uint64
}

// StageRefAsync starts staging data into fresh pages and returns a
// future for the ref. data must stay valid and unmodified until Wait
// returns (it is re-sent if the tokened call retries).
func (cl *Client) StageRefAsync(data []byte) *AsyncRef {
	idx := cl.next()
	srv, pid, err := cl.server(idx)
	if err != nil {
		return &AsyncRef{op: AsyncOp{err: err}}
	}
	ar := &AsyncRef{server: uint32(idx), size: int64(len(data))}
	ar.op = AsyncOp{
		p: cl.node.CallAsync(srv, dmwire.MStage, dmwire.StageReq{PID: pid}.MarshalHdr(), data, cl.mutOpts()),
		consume: func(resp []byte) error {
			r, err := dmwire.UnmarshalRefKeyResp(resp)
			if err != nil {
				return err
			}
			ar.key = r.Key
			return nil
		},
	}
	return ar
}

// StageRefAtAsync starts a caller-keyed stage on a specific server
// (MStageAt — the replica-placement primitive) and returns a future for
// the ref. data must stay valid and unmodified until Wait returns.
func (cl *Client) StageRefAtAsync(server int, key uint64, data []byte) *AsyncRef {
	srv, pid, err := cl.server(server)
	if err != nil {
		return &AsyncRef{op: AsyncOp{err: err}}
	}
	ar := &AsyncRef{server: uint32(server), size: int64(len(data)), key: key}
	ar.op = AsyncOp{
		p: cl.node.CallAsync(srv, dmwire.MStageAt,
			dmwire.StageAtReq{PID: pid, Key: key}.MarshalHdr(), data, cl.mutOpts()),
		consume: func(resp []byte) error {
			_, err := dmwire.UnmarshalRefKeyResp(resp)
			return err
		},
	}
	return ar
}

// Wait blocks for the staging result.
func (ar *AsyncRef) Wait() (dm.Ref, error) {
	if err := ar.op.Wait(); err != nil {
		return dm.Ref{}, err
	}
	return dm.Ref{Server: ar.server, Key: ar.key, Size: ar.size}, nil
}
