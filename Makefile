# DmRPC reproduction — standard workflows.

GO ?= go

.PHONY: all build vet check test test-short bench bench-smoke bench-live bench-liverpc bench-pool bench-transport bench-diff pool-demo load-demo load-smoke bench-load experiments experiments-full fuzz fuzz-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fast correctness gate: static checks plus the live-path, wire-protocol,
# and fault-injection packages under the race detector (the striped DM
# server's concurrency — and the chaos/lease-reaping tests — are only
# trustworthy raced).
check: vet
	$(GO) test -race ./internal/live/... ./internal/liverpc/... ./internal/dmwire/... ./internal/faultnet/... ./internal/pool/... ./internal/loadgen/... ./internal/registry/... ./internal/migrate/... ./internal/refcache/...

# Full suite: unit, property, invariant and paper-shape tests (~4 min),
# gated on the race-checked hot path and a brief fuzz pass over every
# wire-facing decoder.
test: check fuzz-smoke
	$(GO) test ./...

# Short mode skips the heavy simulation shape tests (~10 s).
test-short:
	$(GO) test -short ./...

# One benchmark per paper table/figure plus package micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every live + liverpc benchmark: proves the bench
# harnesses still build, run, and verify their results — cheap enough to
# gate CI on, so a perf-measurement bitrot is caught like a test failure.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkLive' -benchtime=1x ./internal/live ./internal/liverpc
	$(GO) test -run '^$$' -bench 'BenchmarkPool' -benchtime=1x ./internal/pool
	$(GO) test -run '^$$' -bench 'BenchmarkTransport' -benchmem -benchtime=1x ./internal/live | $(GO) run ./cmd/benchjson -require-extra p50-ns,p99-ns,p999-ns -out /dev/null

# Live TCP hot-path benchmarks, recorded to BENCH_live.json so the perf
# trajectory is tracked across PRs.
bench-live:
	$(GO) test -run '^$$' -bench 'BenchmarkLive' -benchmem ./internal/live | $(GO) run ./cmd/benchjson -out BENCH_live.json

# Application-level chain RPC benchmark (live Fig 5): payload sweep in
# by-value and by-ref modes plus the measured crossover size, recorded to
# BENCH_liverpc.json.
bench-liverpc:
	$(GO) test -run '^$$' -bench 'BenchmarkLiveRPC' -benchmem ./internal/liverpc | $(GO) run ./cmd/benchjson -out BENCH_liverpc.json

# Sharded-cluster scaling and replication benchmarks: weak-scaling stage
# and by-ref read bandwidth (1 -> 2 -> 4 shards) plus the ring's remap
# fraction, R=1 vs R=2 stage throughput, the Zipf-skewed hot-ref cache
# probe (cache=off baseline vs cache=on), and the repair-convergence
# probe, and the join-a-shard rebalance probe — all recorded to
# BENCH_pool.json. The repair benchmark must carry its repair-secs /
# under-replicated-max extras, the Zipf probe its hit-rate / p50-ns /
# p99-ns extras, and the rebalance probe its migrate-secs / moved-bytes /
# remap-frac-after extras, or the run fails — so neither a repair-path,
# cache-path nor migration-path regression can slip out of the record.
bench-pool:
	$(GO) test -run '^$$' -bench 'BenchmarkPool' -benchtime=2s -benchmem ./internal/pool | $(GO) run ./cmd/benchjson -require-extra 'BenchmarkPoolRepair:repair-secs,BenchmarkPoolRepair:under-replicated-max,BenchmarkPoolZipfRead:hit-rate,BenchmarkPoolZipfRead:p50-ns,BenchmarkPoolZipfRead:p99-ns,BenchmarkPoolRebalance:migrate-secs,BenchmarkPoolRebalance:moved-bytes,BenchmarkPoolRebalance:remap-frac-after' -out BENCH_pool.json

# Diff two benchfmt perf records and fail on >10% regressions in the
# named metrics — run a fresh bench-pool to a scratch file, then compare
# it against the checked-in baseline:
#   make bench-diff OLD=BENCH_pool.json NEW=/tmp/BENCH_pool.json
# The default self-compare (NEW = OLD) is the CI smoke: it proves the
# tool still parses the committed record and its metric plumbing works.
bench-diff:
	$(GO) run ./cmd/benchdiff -metrics ns_per_op,mb_per_sec,hit-rate,p99-ns,repair-secs,migrate-secs \
		$(or $(OLD),BENCH_pool.json) $(or $(NEW),$(or $(OLD),BENCH_pool.json))

# Transport latency-distribution benchmarks (eRPC-lean path): closed-loop
# and open-loop probes plus the copy-vs-lease delivery comparison. Every
# result must carry p50/p99/p999 extras — benchjson fails the run if a
# percentile report goes missing, so BENCH_transport.json stays
# comparable across PRs.
bench-transport:
	$(GO) test -run '^$$' -bench 'BenchmarkTransport' -benchtime=2s -benchmem ./internal/live | $(GO) run ./cmd/benchjson -require-extra p50-ns,p99-ns,p999-ns -out BENCH_transport.json

# Launch a local K-shard cluster (dmserverd on sequential ports) and run
# dmctl pool smoke traffic against it. K and BASE_PORT are overridable:
#   make pool-demo K=4 BASE_PORT=7800
pool-demo: build
	./scripts/pool-demo.sh $(or $(K),3) $(or $(BASE_PORT),7740)

# Launch a K-shard cluster as real dmserverd processes, attach the dmload
# harness (socialnet/kv/blob mixes), then run the in-process kill-a-shard
# schedule at R=2 and require zero payload loss. Overridable:
#   make load-demo K=4 BASE_PORT=7900 DURATION=10s
load-demo: build
	./scripts/dmload-demo.sh $(or $(K),3) $(or $(BASE_PORT),7860)

# Two-second load-harness pass over an in-process single shard: proves
# cmd/dmload end to end (cluster launch, socialnet + kv scenarios, JSON
# report) — cheap enough to gate CI on. The shard gets 256 MiB: composed
# posts accumulate for the whole window (timelines retain their refs),
# and a fast host can push ~30 MiB/s of media through compose — the
# default 64 MiB shard OOMs mid-window and fails the smoke spuriously.
load-smoke: build
	$(GO) run ./cmd/dmload -launch 1 -pages 65536 -scenarios socialnet,kv -workers 4 \
		-warmup 300ms -duration 2s -out /dev/null

# Full load-harness record for the PR: the three scenarios against an
# in-process 4-shard R=2 cluster with the hot-ref cache on (4 MiB per
# session) and the join-a-shard schedule armed — each scenario's run
# admits one new shard mid-window, so the record carries live-migration
# counters (migrated-refs/bytes, reclaimed-replicas) next to the
# cache-hit counters in BENCH_load.json.
bench-load: build
	$(GO) run ./cmd/dmload -launch 4 -replicas 2 -scenarios socialnet,kv,blob \
		-workers 8 -cache-bytes 4194304 -warmup 1s -duration 5s \
		-join-shard -join-at 2s -out BENCH_load.json

# Regenerate every figure as text tables (quick windows).
experiments:
	$(GO) run ./cmd/dmrpc-bench -experiment all -scale quick

# Paper-scale windows; expect tens of minutes.
experiments-full:
	$(GO) run ./cmd/dmrpc-bench -experiment all -scale full

# 5-second smoke pass per wire-facing fuzz target; cheap enough to gate
# make test on, catching framing/codec regressions early.
fuzz-smoke:
	$(GO) test ./internal/live -run='^$$' -fuzz=FuzzReadFrame -fuzztime=5s
	$(GO) test ./internal/live -run='^$$' -fuzz=FuzzServerDispatch -fuzztime=5s
	$(GO) test ./internal/dmwire -run='^$$' -fuzz=FuzzUnmarshal -fuzztime=5s
	$(GO) test ./internal/dmwire -run='^$$' -fuzz=FuzzStatusRoundTrip -fuzztime=5s
	$(GO) test ./internal/dmwire -run='^$$' -fuzz=FuzzCallEnvelope -fuzztime=5s
	$(GO) test ./internal/dmwire -run='^$$' -fuzz=FuzzLocatedRef -fuzztime=5s

# Brief fuzzing passes over every wire-facing decoder.
fuzz:
	$(GO) test ./internal/live -run='^$$' -fuzz=FuzzReadFrame -fuzztime=30s
	$(GO) test ./internal/live -run='^$$' -fuzz=FuzzServerDispatch -fuzztime=30s
	$(GO) test ./internal/transport -run='^$$' -fuzz=FuzzDecodeHeader -fuzztime=30s
	$(GO) test ./internal/rpc -run='^$$' -fuzz=FuzzDec -fuzztime=30s
	$(GO) test ./internal/dm -run='^$$' -fuzz=FuzzUnmarshalRef -fuzztime=30s
	$(GO) test ./internal/dmwire -run='^$$' -fuzz=FuzzCallEnvelope -fuzztime=30s
	$(GO) test ./internal/dmwire -run='^$$' -fuzz=FuzzLocatedRef -fuzztime=30s

clean:
	$(GO) clean ./...
