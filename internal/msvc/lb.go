package msvc

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/sim"
)

// Load balancer methods.
const (
	MLBForward rpc.Method = 0x0410 + iota
	MLBWork
)

// LBApp is the application-layer load balancer experiment of §VI-B: three
// sender hosts push requests through one LB host, which forwards them
// round-robin to three receiver hosts without touching the payload. The
// interesting measurements are the LB server's request rate and its
// memory-bandwidth occupation (Fig 6).
type LBApp struct {
	pl      *Platform
	senders []*Service
	lb      *Service
	workers []*Service
	rr      int
}

// NewLBApp deploys the §VI-B topology (3 senders + 1 LB + 3 receivers by
// default). Call before Platform.Start.
func NewLBApp(pl *Platform, numSenders, numWorkers int) *LBApp {
	if numSenders < 1 || numWorkers < 1 {
		panic("msvc: LB needs senders and workers")
	}
	app := &LBApp{pl: pl, lb: pl.NewService("lb")}
	for i := 0; i < numSenders; i++ {
		app.senders = append(app.senders, pl.NewService(fmt.Sprintf("lb-sender%d", i)))
	}
	for i := 0; i < numWorkers; i++ {
		app.workers = append(app.workers, pl.NewService(fmt.Sprintf("lb-worker%d", i)))
	}
	for _, w := range app.workers {
		w := w
		w.Node.Handle(MLBWork, func(ctx *rpc.Ctx, body []byte) ([]byte, error) {
			pl.Overhead(ctx.P, w)
			arg := core.DecodeArg(rpc.NewDec(body))
			d, err := w.C.Open(ctx.P, arg)
			if err != nil {
				return nil, err
			}
			buf, err := d.Bytes(ctx.P)
			if err != nil {
				return nil, err
			}
			w.Host.MemTouch(ctx.P, len(buf))
			if err := d.Close(ctx.P); err != nil {
				return nil, err
			}
			return rpc.NewEnc(1).U8(1).Bytes(), nil
		})
	}
	app.lb.Node.Handle(MLBForward, func(ctx *rpc.Ctx, body []byte) ([]byte, error) {
		// Round-robin to an "unloaded" worker; the LB never reads the
		// argument, so in DmRPC modes only the tiny Ref transits its NIC
		// and memory bus.
		w := app.workers[app.rr%len(app.workers)]
		app.rr++
		return pl.forward(ctx, app.lb, w.Addr(), MLBWork, body)
	})
	return app
}

// LB returns the load balancer service (its host carries the measured
// memory-bandwidth counters).
func (app *LBApp) LB() *Service { return app.lb }

// Senders returns the sender services.
func (app *LBApp) Senders() []*Service { return app.senders }

// Do pushes one request with payload from sender senderIdx through the LB.
func (app *LBApp) Do(p *sim.Proc, senderIdx int, payload []byte) error {
	s := app.senders[senderIdx%len(app.senders)]
	arg, err := s.C.MakeArg(p, payload)
	if err != nil {
		return err
	}
	e := rpc.NewEnc(arg.WireSize())
	arg.Encode(e)
	if _, err := s.Node.Call(p, app.lb.Addr(), MLBForward, e.Bytes()); err != nil {
		return err
	}
	s.C.ReleaseAsync(arg)
	return nil
}
