// Package live is a real-network implementation of the DmRPC-net
// disaggregated memory protocol (internal/dmwire) over TCP: a DM server
// holding a pinned page pool with page-granular copy-on-write, and a
// client exposing the paper's Table II API (ralloc/rfree/create_ref/
// map_ref/rread/rwrite) plus the fused stage/read-by-ref fast paths.
//
// It exists so the library is usable outside the simulator: the simulated
// backend (internal/dmnet) validates the paper's performance claims under
// a calibrated cost model, while this package provides the same semantics
// on real sockets. Both speak the identical wire protocol, enforced by
// shared codecs and by cross-checked tests.
//
// Concurrency model (DESIGN.md §4 D7): no global lock. Metadata is
// striped — per-PID VA allocators behind a registration table, a sharded
// (pid, vpage) translator map, sharded ref tables — and per-frame
// refcounts are atomics. Bulk pool copies run outside exclusive locks,
// made safe by pinning frames (a transient refcount hold) so a frame
// being copied can never be reclaimed and reused mid-copy. The fused
// MStage/MReadRef fast paths touch no allocator lock at all.
package live

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dm"
	"repro/internal/dmwire"
	"repro/internal/registry"
	"repro/internal/rpc"
)

// Frame layout: length-prefixed messages on a TCP stream.
//
//	u32 payloadLen | u8 kind | u64 reqID | payload
//	request payload:           u16 method | body
//	tokened request payload:   16-byte dedup token | u16 method | body
//	response payload:          u8 status  | body
//
// kindRequestTok carries a dedup token (dmwire.Token) ahead of the
// method, marking the request as a retryable non-idempotent mutation the
// server must apply at most once (DESIGN.md §D8).
const (
	frameHeaderSize = 4 + 1 + 8
	kindRequest     = 1
	kindResponse    = 2
	kindRequestTok  = 3
)

// DefaultMaxFrameSize is the default cap on one frame's bulk payload
// (guards against corrupt or hostile length prefixes). Tunable per
// endpoint via NodeConfig.MaxFrameSize / ServerConfig.MaxFrameSize. The
// frame reader grants frameOverhead on top, so a cap of N admits an
// N-byte DM transfer despite the token/method/status/codec bytes riding
// in the same frame.
const DefaultMaxFrameSize = 16 << 20

// frameOverhead is the fixed allowance added to the frame-size cap for
// protocol bytes: dedup token (16), method (2) or status (1), and the
// largest fixed-size codec header.
const frameOverhead = 128

// errFrameTooLarge reports a corrupt or hostile length prefix.
var errFrameTooLarge = errors.New("live: frame exceeds maximum message size")

// writeFrame writes one frame; the caller serializes writers per conn.
func writeFrame(w io.Writer, kind byte, reqID uint64, payload []byte) error {
	hdr := make([]byte, frameHeaderSize)
	binary.BigEndian.PutUint32(hdr, uint32(len(payload)))
	hdr[4] = kind
	binary.BigEndian.PutUint64(hdr[5:], reqID)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame into a freshly allocated payload (slow path,
// retained for the fuzz harness; hot paths use readFrameBuf). max caps
// the payload length and is checked before any allocation.
func readFrame(r io.Reader, max uint32) (kind byte, reqID uint64, payload []byte, err error) {
	hdr := make([]byte, frameHeaderSize)
	if _, err = io.ReadFull(r, hdr); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if uint64(n) > uint64(max)+frameOverhead {
		return 0, 0, nil, errFrameTooLarge
	}
	kind = hdr[4]
	reqID = binary.BigEndian.Uint64(hdr[5:])
	payload = make([]byte, n)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, err
	}
	return kind, reqID, payload, nil
}

// readFrameBuf reads one frame into a pooled payload buffer. Ownership of
// the returned payload passes to the caller, who must putBuf it after the
// last use (see bufpool.go for the ownership rules). max caps the payload
// length and is checked before any allocation.
func readFrameBuf(r io.Reader, hdr []byte, max uint32) (kind byte, reqID uint64, payload []byte, err error) {
	hdr = hdr[:frameHeaderSize]
	if _, err = io.ReadFull(r, hdr); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if uint64(n) > uint64(max)+frameOverhead {
		return 0, 0, nil, errFrameTooLarge
	}
	kind = hdr[4]
	reqID = binary.BigEndian.Uint64(hdr[5:])
	payload = getBuf(int(n))
	if _, err = io.ReadFull(r, payload); err != nil {
		putBuf(payload)
		return 0, 0, nil, err
	}
	return kind, reqID, payload, nil
}

// ServerConfig sizes a live DM server and tunes its failure behaviour.
type ServerConfig struct {
	// NumPages is the pinned pool size in pages.
	NumPages int
	// PageSize is the page granularity in bytes.
	PageSize int
	// LeaseTTL is the session lease granted to each registered PID.
	// A PID whose lease expires without a heartbeat is presumed dead and
	// reaped: its VA regions, translator mappings, and created refs are
	// reclaimed (frames still held by other PIDs' mappings survive via
	// their refcounts). 0 disables leasing — sessions live forever, as
	// before this knob existed.
	LeaseTTL time.Duration
	// DrainTimeout bounds the graceful phase of Close: accepting stops
	// immediately, in-flight connections get this long to finish, then
	// stragglers are cut. 0 cuts immediately.
	DrainTimeout time.Duration
	// MaxFrameSize caps one request frame's payload (0 = 16 MiB default).
	MaxFrameSize uint32
	// MaxSlowPerConn caps per-connection slow-handler goroutines
	// (0 = default 64). The DM ops themselves are fast handlers; this
	// guards extra Handle-registered methods.
	MaxSlowPerConn int
	// CoalesceLimit / CoalesceBatchBytes / CoalesceSpin tune the
	// per-connection response coalescing writer (NodeConfig fields of the
	// same names): frames up to CoalesceLimit bytes are group-committed
	// in vectored writes capped at CoalesceBatchBytes, with an adaptive
	// spin-then-flush window capped at CoalesceSpin. 0 = defaults;
	// negative CoalesceLimit disables coalescing (per-frame writes, the
	// pre-batching behaviour); negative CoalesceSpin disables the spin.
	CoalesceLimit      int
	CoalesceBatchBytes int
	CoalesceSpin       time.Duration
	// SessionCredits is the per-session window of in-flight asynchronous
	// calls advertised to every client at register time and refreshed on
	// each heartbeat (credit-based flow control, DESIGN.md §D12). Clients
	// honoring it bound their pending maps to this many calls per
	// session. 0 advertises DefaultSessionCredits; negative advertises
	// nothing (clients fall back to their own configured window).
	SessionCredits int
	// HasShard / ShardID announce this server's cluster-wide shard identity
	// in every register response, so pool clients can verify that the server
	// they dialed is the shard their ring expects. Unset (the zero value)
	// preserves the single-server wire form.
	HasShard bool
	ShardID  uint32
}

// DefaultServerConfig returns a 256 MiB pool of 4 KiB pages with a 15 s
// session lease and a 1 s drain on Close.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		NumPages:     1 << 16,
		PageSize:     4096,
		LeaseTTL:     15 * time.Second,
		DrainTimeout: time.Second,
	}
}

// Validate reports a configuration error, if any.
func (c ServerConfig) Validate() error {
	if c.NumPages <= 0 || c.PageSize <= 0 {
		return fmt.Errorf("live: NumPages and PageSize must be positive")
	}
	return nil
}

// Stripe counts. Powers of two so the index is a mask. Sized for tens of
// concurrent clients: contention on a shard requires two clients to touch
// the same (pid, vpage) hash bucket at the same instant.
const (
	transShardCount = 64
	refShardCount   = 16
)

// transShard is one stripe of the (pid, vpage) -> frame translator.
type transShard struct {
	mu sync.RWMutex
	m  map[transKey]int32
}

// refShard is one stripe of the ref-key table.
type refShard struct {
	mu sync.RWMutex
	m  map[uint64]*refEntry
}

// pidState is one process's registration. Its lock is the outermost level
// of the hierarchy: VA mutations (Alloc/Free) take it exclusively, while
// VA-range-dependent data ops (rread/rwrite/create_ref) hold it shared for
// their whole duration so a racing rfree cannot strand translator entries
// for a region that no longer exists.
//
// The lease reaper takes mu exclusively, rechecks the lease, and sets
// gone before reclaiming anything — so every op that acquires mu (shared
// or exclusive) checks gone first and bails with dm.ErrBadAddress,
// guaranteeing no op publishes new state for a session being torn down.
type pidState struct {
	mu    sync.RWMutex
	va    *dm.VAAllocator
	gone  bool         // set (under mu) when the session is reaped
	lease atomic.Int64 // lease deadline, unixnano; 0 = leasing disabled
}

// renewLease extends the lease to now+ttl.
func (ps *pidState) renewLease(ttl time.Duration) {
	ps.lease.Store(time.Now().Add(ttl).UnixNano())
}

// Server is a live DM server: the paper's page manager and address
// translator over real memory and TCP, striped for multi-client
// parallelism.
type Server struct {
	cfg  ServerConfig
	pool []byte
	// refcnt is the per-frame reference count: one per translator mapping,
	// one per ref hold, plus transient pins taken around bulk copies.
	// Dropping it to zero reclaims the frame onto the free list.
	refcnt []atomic.Int32

	freeMu sync.Mutex
	free   []int32 // FIFO of free frames

	pidMu   sync.RWMutex
	pids    map[uint32]*pidState
	nextPID atomic.Uint32

	trans   [transShardCount]transShard
	refs    [refShardCount]refShard
	nextKey atomic.Uint64
	// stagePuts counts successful MStageAt operations (replica placements
	// and repair traffic landing on this shard; dmserverd -stats).
	stagePuts atomic.Int64
	// epoch is the cache-invalidation epoch (DESIGN.md §D15): bumped on
	// any operation that could make a previously read ref payload stale
	// — FreeRef, a write (CoW makes refs immutable, but the bump keeps
	// the contract conservative), or a lease reap sweeping refs — and
	// piggybacked on every heartbeat so clients drop cached payloads
	// within one heartbeat of the change.
	epoch atomic.Uint64
	// reg is this shard's slice of the cluster ref directory (DESIGN.md
	// §D16): cluster-keyed refs handed off by their staging clients so
	// placement survives the producer's lease reap, merged
	// higher-epoch-wins via MRegPut/MRegSync. A ref with a directory
	// entry is registry-owned: the lease reaper skips it (only an
	// explicit free_ref — which also drops the entry — or a migration
	// reclaim releases its pages).
	reg *registry.Registry

	node       *Node
	closeOnce  sync.Once
	closeErr   error
	reaperStop chan struct{}
	reaperDone chan struct{}
}

type transKey struct {
	pid   uint32
	vpage uint64
}

type refEntry struct {
	frames []int32 // immutable after publication
	size   int64
	owner  uint32 // creating PID, so the lease reaper can reclaim its refs
}

// transShardOf picks the translator stripe for a key.
func (s *Server) transShardOf(key transKey) *transShard {
	h := (uint64(key.pid)<<32 ^ key.vpage) * 0x9E3779B97F4A7C15
	return &s.trans[h>>(64-6)] // top 6 bits: transShardCount == 64
}

// refShardOf picks the ref-table stripe for a key.
func (s *Server) refShardOf(key uint64) *refShard {
	return &s.refs[key&(refShardCount-1)]
}

// NewServer builds a server with an allocated (and thereby "pinned") pool.
func NewServer(cfg ServerConfig) *Server {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Server{
		cfg:    cfg,
		pool:   make([]byte, cfg.NumPages*cfg.PageSize),
		refcnt: make([]atomic.Int32, cfg.NumPages),
		free:   make([]int32, cfg.NumPages),
		pids:   make(map[uint32]*pidState),
		node: NewNodeWith(NodeConfig{
			MaxFrameSize:       cfg.MaxFrameSize,
			MaxSlowPerConn:     cfg.MaxSlowPerConn,
			CoalesceLimit:      cfg.CoalesceLimit,
			CoalesceBatchBytes: cfg.CoalesceBatchBytes,
			CoalesceSpin:       cfg.CoalesceSpin,
		}),
		reg:        registry.New(),
		reaperStop: make(chan struct{}),
		reaperDone: make(chan struct{}),
	}
	for i := range s.free {
		s.free[i] = int32(i)
	}
	for i := range s.trans {
		s.trans[i].m = make(map[transKey]int32)
	}
	for i := range s.refs {
		s.refs[i].m = make(map[uint64]*refEntry)
	}
	for _, m := range []rpc.Method{
		dmwire.MRegister, dmwire.MAlloc, dmwire.MFree, dmwire.MCreateRef,
		dmwire.MMapRef, dmwire.MFreeRef, dmwire.MRead, dmwire.MWrite,
		dmwire.MStage, dmwire.MReadRef, dmwire.MHeartbeat, dmwire.MStageAt,
		dmwire.MRegPut, dmwire.MRegGet, dmwire.MRegSync,
	} {
		m := m
		// DM operations are short and never block on other RPCs, so they
		// run to completion on the connection's read loop (eRPC-style)
		// instead of paying a goroutine spawn per request.
		s.node.HandleFast(m, func(from net.Addr, body []byte) ([]byte, error) {
			return s.handle(m, body)
		})
	}
	if cfg.LeaseTTL > 0 {
		go s.reaper()
	} else {
		close(s.reaperDone)
	}
	return s
}

// Serve accepts connections on ln until Close. It returns nil after Close.
func (s *Server) Serve(ln net.Listener) error { return s.node.Serve(ln) }

// Close gracefully drains the server: it stops accepting immediately,
// gives in-flight connections DrainTimeout to finish, cuts stragglers,
// stops the lease reaper, and finally force-reaps every remaining session
// so the pool returns to a fully-free state. Idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.closeErr = s.node.Shutdown(s.cfg.DrainTimeout)
		if s.cfg.LeaseTTL > 0 {
			close(s.reaperStop)
		}
		<-s.reaperDone
		// Every handler has finished (Shutdown waits for serving
		// goroutines), so the force-reap below races nothing.
		s.pidMu.RLock()
		pids := make(map[uint32]*pidState, len(s.pids))
		for pid, ps := range s.pids {
			pids[pid] = ps
		}
		s.pidMu.RUnlock()
		for pid, ps := range pids {
			s.reapPID(pid, ps, true)
		}
	})
	return s.closeErr
}

// FreePages returns the number of free frames (tests, monitoring).
func (s *Server) FreePages() int {
	s.freeMu.Lock()
	defer s.freeMu.Unlock()
	return len(s.free)
}

// WriteStats snapshots the server's wire-write counters (frames, batches,
// direct writes, bytes, drops) aggregated across its connections.
func (s *Server) WriteStats() WriteStats { return s.node.WriteStats() }

// LiveRefs returns the number of outstanding refs.
func (s *Server) LiveRefs() int {
	n := 0
	for i := range s.refs {
		sh := &s.refs[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// methodOf converts a raw wire value to an rpc.Method (fuzzing hook).
func methodOf(m uint16) rpc.Method { return rpc.Method(m) }

// dispatch runs one DM operation and returns (status, response body);
// kept as a direct entry point for fuzzing the page manager.
func (s *Server) dispatch(m rpc.Method, body []byte) (byte, []byte) {
	resp, err := s.handle(m, body)
	if err != nil {
		return dmwire.StatusOf(err), []byte(err.Error())
	}
	return dmwire.StatusOK, resp
}

func (s *Server) handle(m rpc.Method, body []byte) ([]byte, error) {
	switch m {
	case dmwire.MRegister:
		return s.register()
	case dmwire.MAlloc:
		return s.alloc(body)
	case dmwire.MFree:
		return s.freeRegion(body)
	case dmwire.MCreateRef:
		return s.createRef(body)
	case dmwire.MMapRef:
		return s.mapRef(body)
	case dmwire.MFreeRef:
		return s.freeRef(body)
	case dmwire.MRead:
		return s.read(body)
	case dmwire.MWrite:
		return s.write(body)
	case dmwire.MStage:
		return s.stage(body)
	case dmwire.MStageAt:
		return s.stageAt(body)
	case dmwire.MReadRef:
		return s.readRef(body)
	case dmwire.MHeartbeat:
		return s.heartbeat(body)
	case dmwire.MRegPut:
		return s.regPut(body)
	case dmwire.MRegGet:
		return s.regGet(body)
	case dmwire.MRegSync:
		return s.regSync(body)
	default:
		return nil, errNoSuchMethod
	}
}

func (s *Server) pageSize() int64 { return int64(s.cfg.PageSize) }

func (s *Server) frame(f int32) []byte {
	off := int(f) * s.cfg.PageSize
	return s.pool[off : off+s.cfg.PageSize : off+s.cfg.PageSize]
}

// popFrame takes one frame off the free FIFO.
func (s *Server) popFrame() (int32, bool) {
	s.freeMu.Lock()
	defer s.freeMu.Unlock()
	if len(s.free) == 0 {
		return -1, false
	}
	f := s.free[0]
	s.free = s.free[1:]
	return f, true
}

// popFrames takes n frames in one lock acquisition, or none at all.
func (s *Server) popFrames(n int) []int32 {
	s.freeMu.Lock()
	defer s.freeMu.Unlock()
	if len(s.free) < n {
		return nil
	}
	out := make([]int32, n)
	copy(out, s.free[:n])
	s.free = s.free[n:]
	return out
}

// pushFrames returns frames to the free FIFO.
func (s *Server) pushFrames(frames ...int32) {
	s.freeMu.Lock()
	s.free = append(s.free, frames...)
	s.freeMu.Unlock()
}

// pin takes a transient hold on f so it cannot be reclaimed (and its
// storage reused) while a bulk copy is in flight. Release with decRef.
func (s *Server) pin(f int32) { s.refcnt[f].Add(1) }

// decRef drops one reference and reclaims the frame at zero.
func (s *Server) decRef(f int32) {
	n := s.refcnt[f].Add(-1)
	if n < 0 {
		panic(fmt.Sprintf("live: frame %d refcount negative", f))
	}
	if n == 0 {
		s.pushFrames(f)
	}
}

// --- operations ---

// leaseMillis is the granted TTL on the wire (0 = leasing disabled).
func (s *Server) leaseMillis() uint32 {
	return uint32(s.cfg.LeaseTTL / time.Millisecond)
}

// sessionCredits is the advertised async credit window on the wire
// (0 = no advertisement).
func (s *Server) sessionCredits() uint32 {
	switch {
	case s.cfg.SessionCredits > 0:
		return uint32(s.cfg.SessionCredits)
	case s.cfg.SessionCredits == 0:
		return DefaultSessionCredits
	default:
		return 0
	}
}

func (s *Server) register() ([]byte, error) {
	pid := s.nextPID.Add(1) - 1
	ps := &pidState{va: dm.NewVAAllocator(s.cfg.PageSize, 1<<16, 1<<40)}
	if s.cfg.LeaseTTL > 0 {
		ps.renewLease(s.cfg.LeaseTTL)
	}
	s.pidMu.Lock()
	s.pids[pid] = ps
	s.pidMu.Unlock()
	return dmwire.RegisterResp{
		PID:         pid,
		LeaseMillis: s.leaseMillis(),
		HasShard:    s.cfg.HasShard,
		Shard:       s.cfg.ShardID,
		Credits:     s.sessionCredits(),
		// The invalidation-epoch baseline (§D15): anything the client
		// caches from now on is covered by epoch advances piggybacked on
		// its heartbeats.
		Epoch: s.epoch.Load(),
	}.Marshal(), nil
}

// heartbeat renews pid's lease. A reaped (or never-registered) session
// gets dm.ErrBadAddress, telling the client its state is gone for good.
func (s *Server) heartbeat(body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalHeartbeatReq(body)
	if err != nil {
		return nil, err
	}
	ps, err := s.pidState(req.PID)
	if err != nil {
		return nil, err
	}
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	if ps.gone {
		return nil, dm.ErrBadAddress
	}
	if s.cfg.LeaseTTL > 0 {
		ps.renewLease(s.cfg.LeaseTTL)
	}
	return dmwire.HeartbeatResp{
		LeaseMillis: s.leaseMillis(),
		Credits:     s.sessionCredits(),
		Epoch:       s.epoch.Load(),
	}.Marshal(), nil
}

// Epoch returns the current cache-invalidation epoch (0 until the
// first free/write/reap).
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

func (s *Server) pidState(pid uint32) (*pidState, error) {
	s.pidMu.RLock()
	ps, ok := s.pids[pid]
	s.pidMu.RUnlock()
	if !ok {
		return nil, dm.ErrBadAddress
	}
	return ps, nil
}

func (s *Server) alloc(body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalAllocReq(body)
	if err != nil {
		return nil, err
	}
	ps, err := s.pidState(req.PID)
	if err != nil {
		return nil, err
	}
	ps.mu.Lock()
	if ps.gone {
		ps.mu.Unlock()
		return nil, dm.ErrBadAddress
	}
	addr, err := ps.va.Alloc(req.Size)
	ps.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return dmwire.AllocResp{Addr: addr}.Marshal(), nil
}

func (s *Server) freeRegion(body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalFreeReq(body)
	if err != nil {
		return nil, err
	}
	ps, err := s.pidState(req.PID)
	if err != nil {
		return nil, err
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.gone {
		return nil, dm.ErrBadAddress
	}
	size, err := ps.va.Free(req.Addr)
	if err != nil {
		return nil, err
	}
	pages := dm.PageCount(size, s.cfg.PageSize)
	if pages == 0 {
		pages = 1
	}
	base := uint64(req.Addr) / uint64(s.pageSize())
	for i := 0; i < pages; i++ {
		key := transKey{pid: req.PID, vpage: base + uint64(i)}
		sh := s.transShardOf(key)
		sh.mu.Lock()
		f, ok := sh.m[key]
		if ok {
			delete(sh.m, key)
		}
		sh.mu.Unlock()
		if ok {
			s.decRef(f)
		}
	}
	return nil, nil
}

// materialize backs key with a zeroed frame on first touch and returns it
// with a transient pin, so the caller may copy into/out of it after the
// shard lock is gone.
func (s *Server) materialize(key transKey) (int32, error) {
	sh := s.transShardOf(key)
	sh.mu.Lock()
	if f, ok := sh.m[key]; ok {
		s.pin(f)
		sh.mu.Unlock()
		return f, nil
	}
	f, ok := s.popFrame()
	if !ok {
		sh.mu.Unlock()
		return -1, dm.ErrOutOfMemory
	}
	clear(s.frame(f))
	s.refcnt[f].Store(2) // the mapping's hold + the caller's pin
	sh.m[key] = f
	sh.mu.Unlock()
	return f, nil
}

func (s *Server) checkRange(ps *pidState, addr dm.RemoteAddr, size int64) error {
	base, regSize, err := ps.va.Lookup(addr)
	if err != nil {
		return err
	}
	extent := int64(dm.PageCount(regSize, s.cfg.PageSize)) * s.pageSize()
	if extent == 0 {
		extent = s.pageSize()
	}
	if int64(addr)-int64(base)+size > extent {
		return dm.ErrOutOfRange
	}
	return nil
}

func (s *Server) createRef(body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalCreateRefReq(body)
	if err != nil {
		return nil, err
	}
	if req.Size <= 0 {
		return nil, dm.ErrOutOfRange
	}
	ps, err := s.pidState(req.PID)
	if err != nil {
		return nil, err
	}
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	if ps.gone {
		return nil, dm.ErrBadAddress
	}
	if err := s.checkRange(ps, req.Addr, req.Size); err != nil {
		return nil, err
	}
	basePage := uint64(req.Addr) / uint64(s.pageSize())
	pages := dm.PageCount(int64(uint64(req.Addr)%uint64(s.pageSize()))+req.Size, s.cfg.PageSize)
	frames := make([]int32, 0, pages)
	for i := 0; i < pages; i++ {
		f, err := s.materialize(transKey{pid: req.PID, vpage: basePage + uint64(i)})
		if err != nil {
			// Roll back the holds taken for earlier pages so a partial
			// create_ref cannot leak refcounts.
			for _, g := range frames {
				s.decRef(g)
			}
			return nil, err
		}
		// materialize's pin becomes the ref's own hold (CoW protection).
		frames = append(frames, f)
	}
	key := s.nextKey.Add(1) - 1
	sh := s.refShardOf(key)
	sh.mu.Lock()
	sh.m[key] = &refEntry{frames: frames, size: req.Size, owner: req.PID}
	sh.mu.Unlock()
	return dmwire.RefKeyResp{Key: key}.Marshal(), nil
}

func (s *Server) mapRef(body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalMapRefReq(body)
	if err != nil {
		return nil, err
	}
	ps, err := s.pidState(req.PID)
	if err != nil {
		return nil, err
	}
	rsh := s.refShardOf(req.Key)
	rsh.mu.RLock()
	ref, ok := rsh.m[req.Key]
	if !ok {
		rsh.mu.RUnlock()
		return nil, dm.ErrBadRef
	}
	// Take the new mapping's holds while the ref entry still pins its
	// frames; after RUnlock a concurrent free_ref can no longer reclaim
	// them out from under us.
	for _, f := range ref.frames {
		s.pin(f)
	}
	frames, size := ref.frames, ref.size
	rsh.mu.RUnlock()

	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.gone {
		// The mapping holds taken above roll back; the ref itself (if it
		// belonged to another live PID) is untouched.
		for _, f := range frames {
			s.decRef(f)
		}
		return nil, dm.ErrBadAddress
	}
	addr, err := ps.va.Alloc(size)
	if err != nil {
		for _, f := range frames {
			s.decRef(f)
		}
		return nil, err
	}
	basePage := uint64(addr) / uint64(s.pageSize())
	for i, f := range frames {
		key := transKey{pid: req.PID, vpage: basePage + uint64(i)}
		sh := s.transShardOf(key)
		sh.mu.Lock()
		sh.m[key] = f
		sh.mu.Unlock()
	}
	return dmwire.MapRefResp{Addr: addr, Size: size}.Marshal(), nil
}

func (s *Server) freeRef(body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalFreeRefReq(body)
	if err != nil {
		return nil, err
	}
	sh := s.refShardOf(req.Key)
	sh.mu.Lock()
	ref, ok := sh.m[req.Key]
	if ok {
		delete(sh.m, req.Key)
	}
	sh.mu.Unlock()
	// An explicit free also retires the key's directory entry (with a
	// tombstone, so a stale anti-entropy page cannot resurrect it) —
	// free_ref is the directory-delete op; there is no separate RegDelete
	// on the wire. This runs even when the payload is absent, so the pool
	// can scrub a stale entry off a shard that no longer holds a copy.
	if req.Key&dmwire.ReplicaKeyBit != 0 {
		if ent, held := s.reg.Get(req.Key); held {
			s.reg.Delete(req.Key, ent.Epoch)
		}
	}
	if !ok {
		return nil, dm.ErrBadRef
	}
	for _, f := range ref.frames {
		s.decRef(f)
	}
	s.epoch.Add(1)
	return nil, nil
}

// lookupPage returns the frame backing key with a transient pin, or false
// if the page was never materialized.
func (s *Server) lookupPage(key transKey) (int32, bool) {
	sh := s.transShardOf(key)
	sh.mu.RLock()
	f, ok := sh.m[key]
	if ok {
		s.pin(f)
	}
	sh.mu.RUnlock()
	return f, ok
}

func (s *Server) read(body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalReadReq(body)
	if err != nil {
		return nil, err
	}
	ps, err := s.pidState(req.PID)
	if err != nil {
		return nil, err
	}
	size := int64(req.Size)
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	if ps.gone {
		return nil, dm.ErrBadAddress
	}
	if err := s.checkRange(ps, req.Addr, size); err != nil {
		return nil, err
	}
	// Response body from the frame pool; the serve loop recycles it after
	// the response hits the socket.
	out := getBuf(int(size))
	off := int64(0)
	for off < size {
		vpage := (uint64(req.Addr) + uint64(off)) / uint64(s.pageSize())
		pageOff := (int64(req.Addr) + off) % s.pageSize()
		n := s.pageSize() - pageOff
		if n > size-off {
			n = size - off
		}
		if f, ok := s.lookupPage(transKey{pid: req.PID, vpage: vpage}); ok {
			copy(out[off:off+n], s.frame(f)[pageOff:])
			s.decRef(f)
		} else {
			// Unmaterialized pages read as zeros; the pooled buffer may
			// hold stale bytes, so zero explicitly.
			clear(out[off : off+n])
		}
		off += n
	}
	return out, nil
}

func (s *Server) write(body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalWriteReq(body)
	if err != nil {
		return nil, err
	}
	ps, err := s.pidState(req.PID)
	if err != nil {
		return nil, err
	}
	size := int64(len(req.Data))
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	if ps.gone {
		return nil, dm.ErrBadAddress
	}
	if err := s.checkRange(ps, req.Addr, size); err != nil {
		return nil, err
	}
	off := int64(0)
	for off < size {
		vpage := (uint64(req.Addr) + uint64(off)) / uint64(s.pageSize())
		pageOff := (int64(req.Addr) + off) % s.pageSize()
		n := s.pageSize() - pageOff
		if n > size-off {
			n = size - off
		}
		f, err := s.writableFrame(transKey{pid: req.PID, vpage: vpage})
		if err != nil {
			return nil, err
		}
		// The payload copy runs outside the shard lock: the pin from
		// writableFrame keeps f alive, and a frame writable in place
		// (refcount 1 + pin) is reachable only through this mapping.
		copy(s.frame(f)[pageOff:], req.Data[off:off+n])
		s.decRef(f)
		off += n
	}
	s.epoch.Add(1)
	return nil, nil
}

// writableFrame runs the copy-on-write protocol of §V-A2 and returns a
// frame this writer may mutate, with a transient pin for the caller's
// payload copy. Shared frames (refcount > 1) are duplicated; the
// page-granular CoW copy happens under the shard lock so the new frame is
// never visible half-initialized, while the caller's payload copy happens
// after unlock.
func (s *Server) writableFrame(key transKey) (int32, error) {
	sh := s.transShardOf(key)
	sh.mu.Lock()
	f, ok := sh.m[key]
	if !ok {
		nf, popped := s.popFrame()
		if !popped {
			sh.mu.Unlock()
			return -1, dm.ErrOutOfMemory
		}
		clear(s.frame(nf))
		s.refcnt[nf].Store(2) // mapping hold + caller pin
		sh.m[key] = nf
		sh.mu.Unlock()
		return nf, nil
	}
	if s.refcnt[f].Load() > 1 {
		nf, popped := s.popFrame()
		if !popped {
			sh.mu.Unlock()
			return -1, dm.ErrOutOfMemory
		}
		copy(s.frame(nf), s.frame(f))
		s.refcnt[nf].Store(2) // mapping hold + caller pin
		sh.m[key] = nf
		sh.mu.Unlock()
		s.decRef(f) // the mapping's hold moves to nf
		return nf, nil
	}
	s.pin(f)
	sh.mu.Unlock()
	return f, nil
}

func (s *Server) stage(body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalStageReq(body)
	if err != nil {
		return nil, err
	}
	if len(req.Data) == 0 {
		return nil, dm.ErrOutOfRange
	}
	ps, err := s.pidState(req.PID)
	if err != nil {
		return nil, err
	}
	pages := dm.PageCount(int64(len(req.Data)), s.cfg.PageSize)
	frames := s.popFrames(pages)
	if frames == nil {
		return nil, dm.ErrOutOfMemory
	}
	// The frames are invisible to every other request until the ref is
	// published below, so the bulk copy needs no lock at all.
	for i, f := range frames {
		lo := i * s.cfg.PageSize
		hi := lo + s.cfg.PageSize
		if hi > len(req.Data) {
			hi = len(req.Data)
		}
		fr := s.frame(f)
		n := copy(fr, req.Data[lo:hi])
		clear(fr[n:])
		s.refcnt[f].Store(1)
	}
	key := s.nextKey.Add(1) - 1
	// Publish under the owner's shared lock: the lease reaper holds
	// ps.mu exclusively, so either it already ran (gone — roll the frames
	// back, nothing leaks) or the entry lands in the shard before the
	// reaper's ref sweep can start and is reclaimed by it normally.
	ps.mu.RLock()
	if ps.gone {
		ps.mu.RUnlock()
		for _, f := range frames {
			s.decRef(f)
		}
		return nil, dm.ErrBadAddress
	}
	sh := s.refShardOf(key)
	sh.mu.Lock()
	sh.m[key] = &refEntry{frames: frames, size: int64(len(req.Data)), owner: req.PID}
	sh.mu.Unlock()
	ps.mu.RUnlock()
	return dmwire.RefKeyResp{Key: key}.Marshal(), nil
}

// errStageAtKeySpace rejects stage_at keys outside the pool-minted half
// of the key space (dmwire.ReplicaKeyBit clear): such a key could collide
// with this server's own counter-minted keys.
var errStageAtKeySpace = errors.New("live: stage_at key outside replica key space")

// stageAt is stage with a caller-chosen key: the replica-placement
// primitive. The key must come from the pool-minted half of the key space
// (dmwire.ReplicaKeyBit set) so it can never collide with this server's
// own counter; staging a key the server already holds fails with
// dm.ErrRefExists and leaves the existing ref untouched, which makes
// repair re-stages idempotent.
func (s *Server) stageAt(body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalStageAtReq(body)
	if err != nil {
		return nil, err
	}
	if len(req.Data) == 0 {
		return nil, dm.ErrOutOfRange
	}
	if req.Key&dmwire.ReplicaKeyBit == 0 {
		return nil, errStageAtKeySpace
	}
	ps, err := s.pidState(req.PID)
	if err != nil {
		return nil, err
	}
	sh := s.refShardOf(req.Key)
	// Early existence probe: don't burn frames and a bulk copy on a key
	// that is already present (the common repair race). The authoritative
	// check re-runs under the publish lock below.
	sh.mu.RLock()
	_, exists := sh.m[req.Key]
	sh.mu.RUnlock()
	if exists {
		return nil, dm.ErrRefExists
	}
	pages := dm.PageCount(int64(len(req.Data)), s.cfg.PageSize)
	frames := s.popFrames(pages)
	if frames == nil {
		return nil, dm.ErrOutOfMemory
	}
	for i, f := range frames {
		lo := i * s.cfg.PageSize
		hi := lo + s.cfg.PageSize
		if hi > len(req.Data) {
			hi = len(req.Data)
		}
		fr := s.frame(f)
		n := copy(fr, req.Data[lo:hi])
		clear(fr[n:])
		s.refcnt[f].Store(1)
	}
	// Publish under the owner's shared lock exactly like stage(); on any
	// failure past this point the frames roll back to the free list.
	ps.mu.RLock()
	if ps.gone {
		ps.mu.RUnlock()
		for _, f := range frames {
			s.decRef(f)
		}
		return nil, dm.ErrBadAddress
	}
	sh.mu.Lock()
	if _, dup := sh.m[req.Key]; dup {
		sh.mu.Unlock()
		ps.mu.RUnlock()
		for _, f := range frames {
			s.decRef(f)
		}
		return nil, dm.ErrRefExists
	}
	sh.m[req.Key] = &refEntry{frames: frames, size: int64(len(req.Data)), owner: req.PID}
	sh.mu.Unlock()
	ps.mu.RUnlock()
	s.stagePuts.Add(1)
	return dmwire.RefKeyResp{Key: req.Key}.Marshal(), nil
}

// StagePuts returns the number of caller-keyed stages (MStageAt) this
// server has accepted: replica placements plus repair re-stages.
func (s *Server) StagePuts() int64 { return s.stagePuts.Load() }

// regPut merges one directory entry (DESIGN.md §D16). Higher epoch
// wins; a stale or duplicate put is a silent no-op so handoff retries
// and anti-entropy pushes are idempotent.
func (s *Server) regPut(body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalRegPutReq(body)
	if err != nil {
		return nil, err
	}
	if req.Entry.Key&dmwire.ReplicaKeyBit == 0 {
		return nil, errStageAtKeySpace
	}
	s.reg.Put(req.Entry)
	return nil, nil
}

// regGet answers a directory point query; ErrBadRef when this shard's
// slice has no entry for the key.
func (s *Server) regGet(body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalRegGetReq(body)
	if err != nil {
		return nil, err
	}
	ent, ok := s.reg.Get(req.Key)
	if !ok {
		return nil, dm.ErrBadRef
	}
	return dmwire.RegGetResp{Entry: ent}.Marshal(), nil
}

// regSync serves one anti-entropy page of the directory, ascending by
// key from strictly after the cursor.
func (s *Server) regSync(body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalRegSyncReq(body)
	if err != nil {
		return nil, err
	}
	limit := int(req.Limit)
	if limit <= 0 || limit > dmwire.MaxRegSyncEntries {
		limit = dmwire.MaxRegSyncEntries
	}
	return dmwire.RegSyncResp{Entries: s.reg.Page(req.AfterKey, limit)}.Marshal(), nil
}

// Registry exposes the shard's directory slice (tests, invariants).
func (s *Server) Registry() *registry.Registry { return s.reg }

func (s *Server) readRef(body []byte) ([]byte, error) {
	req, err := dmwire.UnmarshalReadRefReq(body)
	if err != nil {
		return nil, err
	}
	sh := s.refShardOf(req.Key)
	sh.mu.RLock()
	ref, ok := sh.m[req.Key]
	if !ok {
		sh.mu.RUnlock()
		return nil, dm.ErrBadRef
	}
	off, size := int64(req.Off), int64(req.Size)
	if off < 0 || size < 0 || off+size > ref.size {
		sh.mu.RUnlock()
		return nil, dm.ErrOutOfRange
	}
	// Pin the overlapped frames while the entry still holds them; after
	// RUnlock a concurrent free_ref may reclaim the rest of the ref but
	// not the pages this read is copying.
	first := off / s.pageSize()
	last := int64(0)
	if size > 0 {
		last = (off + size - 1) / s.pageSize()
	} else {
		last = first - 1
	}
	for p := first; p <= last; p++ {
		s.pin(ref.frames[p])
	}
	frames := ref.frames
	sh.mu.RUnlock()

	out := getBuf(int(size))
	pos := int64(0)
	for pos < size {
		page := (off + pos) / s.pageSize()
		pageOff := (off + pos) % s.pageSize()
		n := s.pageSize() - pageOff
		if n > size-pos {
			n = size - pos
		}
		copy(out[pos:pos+n], s.frame(frames[page])[pageOff:])
		pos += n
	}
	for p := first; p <= last; p++ {
		s.decRef(frames[p])
	}
	return out, nil
}

// CheckInvariants validates the page manager bookkeeping. It requires the
// server to be quiescent (no in-flight operations), as stress tests are
// after their workers join; it takes every stripe lock for a consistent
// snapshot.
func (s *Server) CheckInvariants() error {
	for i := range s.trans {
		s.trans[i].mu.RLock()
		defer s.trans[i].mu.RUnlock()
	}
	for i := range s.refs {
		s.refs[i].mu.RLock()
		defer s.refs[i].mu.RUnlock()
	}
	s.freeMu.Lock()
	defer s.freeMu.Unlock()

	holds := make(map[int32]int32)
	for i := range s.trans {
		for _, f := range s.trans[i].m {
			holds[f]++
		}
	}
	for i := range s.refs {
		for _, ref := range s.refs[i].m {
			for _, f := range ref.frames {
				holds[f]++
			}
		}
	}
	for f, want := range holds {
		if got := s.refcnt[f].Load(); got != want {
			return fmt.Errorf("frame %d refcount %d, want %d", f, got, want)
		}
	}
	freeSet := make(map[int32]bool, len(s.free))
	for _, f := range s.free {
		if freeSet[f] {
			return fmt.Errorf("frame %d free twice", f)
		}
		freeSet[f] = true
		if holds[f] != 0 {
			return fmt.Errorf("frame %d free but held", f)
		}
	}
	if len(freeSet)+len(holds) != s.cfg.NumPages {
		return fmt.Errorf("frames leak: %d free + %d held != %d", len(freeSet), len(holds), s.cfg.NumPages)
	}
	return nil
}
