package bench

import (
	"io"

	"repro/internal/msvc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// fig12Latencies is the CXL pool access latency sweep (the paper tunes
// uncore frequency to move this; §VI-G). 265 ns is the paper's default
// emulation point.
var fig12Latencies = []sim.Time{165, 265, 365, 465, 565}

// Fig12Row is one latency point: absolute and normalized throughput.
type Fig12Row struct {
	LatencyNs  sim.Time
	Throughput float64
	Normalized float64 // relative to the first (lowest-latency) point
}

// Fig12Result holds one Fig 12 sweep.
type Fig12Result struct {
	Title string
	Rows  []Fig12Row
}

// Fig12a reproduces Fig 12a: the Fig 8 micro-benchmark (write 50%)
// throughput of DmRPC-CXL under increasing CXL memory access latency.
func Fig12a(scale Scale) Fig12Result {
	warm, meas := scale.windows()
	lats := fig12Latencies
	if scale == Quick {
		lats = []sim.Time{165, 265, 565}
	}
	res := Fig12Result{Title: "micro-benchmark (32KiB, 50% writes)"}
	for _, lat := range lats {
		sys := setupFig8CXL(50, lat)
		r := workload.RunClosed(sys.eng, workload.ClosedConfig{
			Clients: 1, Warmup: warm, Measure: meas,
		}, sys.op)
		sys.shutdown()
		res.Rows = append(res.Rows, Fig12Row{LatencyNs: lat, Throughput: r.Throughput()})
	}
	res.normalize()
	return res
}

// Fig12b reproduces Fig 12b: the cloud image processing application
// (4 KiB images) on DmRPC-CXL under the same latency sweep.
func Fig12b(scale Scale) Fig12Result {
	warm, meas := scale.windows()
	lats := fig12Latencies
	if scale == Quick {
		lats = []sim.Time{165, 265, 565}
	}
	res := Fig12Result{Title: "cloud image processing (4KiB images)"}
	for _, lat := range lats {
		cfg := msvc.DefaultConfig(msvc.ModeDmCXL)
		cfg.CXL.Memory.AccessLatency = lat
		pl := msvc.NewPlatform(cfg)
		app := msvc.NewImageApp(pl, 2)
		pl.Start()
		img := make([]byte, 4096)
		r := workload.RunClosed(pl.Eng, workload.ClosedConfig{
			Clients: 16, Warmup: warm, Measure: meas,
		}, func(p *sim.Proc) error {
			_, err := app.Do(p, img)
			return err
		})
		pl.Shutdown()
		res.Rows = append(res.Rows, Fig12Row{LatencyNs: lat, Throughput: r.Throughput()})
	}
	res.normalize()
	return res
}

func (r *Fig12Result) normalize() {
	if len(r.Rows) == 0 || r.Rows[0].Throughput == 0 {
		return
	}
	base := r.Rows[0].Throughput
	for i := range r.Rows {
		r.Rows[i].Normalized = r.Rows[i].Throughput / base
	}
}

// Print writes a Fig 12 table.
func (r Fig12Result) Print(w io.Writer) {
	header(w, "fig12", "DmRPC-CXL throughput vs CXL memory latency: "+r.Title)
	t := stats.NewTable("CXL latency", "throughput", "normalized")
	for _, row := range r.Rows {
		t.AddRow(stats.Dur(row.LatencyNs), stats.Rate(row.Throughput),
			float64(int(row.Normalized*1000))/1000)
	}
	io.WriteString(w, t.String())
}
